#include "stats/multiple_testing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/distributions.h"
#include "stats/special_functions.h"
#include "util/check.h"

namespace dash {

Vector BonferroniAdjust(const Vector& p_values) {
  int64_t m = 0;
  for (const double p : p_values) m += !std::isnan(p);
  Vector out(p_values.size());
  for (size_t i = 0; i < p_values.size(); ++i) {
    out[i] = std::isnan(p_values[i])
                 ? p_values[i]
                 : std::min(1.0, static_cast<double>(m) * p_values[i]);
  }
  return out;
}

Vector BenjaminiHochbergAdjust(const Vector& p_values) {
  std::vector<size_t> finite;
  for (size_t i = 0; i < p_values.size(); ++i) {
    if (!std::isnan(p_values[i])) finite.push_back(i);
  }
  const double m = static_cast<double>(finite.size());
  // Sort finite indices by p ascending.
  std::sort(finite.begin(), finite.end(),
            [&](size_t a, size_t b) { return p_values[a] < p_values[b]; });
  Vector out(p_values.size(), std::nan(""));
  // Step-up: adjusted[k] = min over j >= k of p_(j) * m / (j+1).
  double running_min = 1.0;
  for (size_t rank = finite.size(); rank-- > 0;) {
    const size_t idx = finite[rank];
    const double candidate =
        p_values[idx] * m / static_cast<double>(rank + 1);
    running_min = std::min(running_min, candidate);
    out[idx] = std::min(1.0, running_min);
  }
  return out;
}

std::vector<int64_t> SignificantAt(const Vector& adjusted_p, double alpha) {
  std::vector<int64_t> hits;
  for (size_t i = 0; i < adjusted_p.size(); ++i) {
    if (!std::isnan(adjusted_p[i]) && adjusted_p[i] < alpha) {
      hits.push_back(static_cast<int64_t>(i));
    }
  }
  return hits;
}

double StudentTQuantile(double p, double dof) {
  DASH_CHECK(p > 0.0 && p < 1.0) << "p=" << p;
  DASH_CHECK_GT(dof, 0.0);
  if (p == 0.5) return 0.0;
  // Normal start, then Newton on the exact CDF. The t density is
  // log-concave, so this converges fast and monotonically near the root.
  double x = NormalQuantile(p);
  for (int iter = 0; iter < 100; ++iter) {
    const double f = StudentTCdf(x, dof) - p;
    // t density at x.
    const double log_density =
        LogGamma(0.5 * (dof + 1.0)) - LogGamma(0.5 * dof) -
        0.5 * std::log(dof * M_PI) -
        0.5 * (dof + 1.0) * std::log1p(x * x / dof);
    const double density = std::exp(log_density);
    const double step = f / density;
    x -= step;
    if (std::fabs(step) < 1e-13 * (1.0 + std::fabs(x))) break;
  }
  return x;
}

double ConfidenceHalfWidth(double se, int64_t dof, double level) {
  DASH_CHECK(level > 0.0 && level < 1.0) << "level=" << level;
  DASH_CHECK_GT(dof, 0);
  const double t_crit =
      StudentTQuantile(0.5 * (1.0 + level), static_cast<double>(dof));
  return t_crit * se;
}

}  // namespace dash
