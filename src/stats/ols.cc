#include "stats/ols.h"

#include <cmath>
#include <string>

#include "linalg/qr.h"
#include "stats/distributions.h"

namespace dash {

Result<OlsFit> FitOls(const Matrix& design, const Vector& y) {
  const int64_t n = design.rows();
  const int64_t p = design.cols();
  if (n != static_cast<int64_t>(y.size())) {
    return InvalidArgumentError("design has " + std::to_string(n) +
                                " rows but y has " +
                                std::to_string(y.size()) + " entries");
  }
  if (n <= p) {
    return InvalidArgumentError(
        "OLS needs more observations than coefficients (n=" +
        std::to_string(n) + ", p=" + std::to_string(p) + ")");
  }

  DASH_ASSIGN_OR_RETURN(QrDecomposition qr, ThinQr(design));
  const Vector qty = TransposeMatVec(qr.q, y);
  DASH_ASSIGN_OR_RETURN(Vector coef, SolveUpperTriangular(qr.r, qty));

  // Residuals: y - Q Qᵀ y has the same norm as the residual because the
  // fitted values are Q Qᵀ y.
  const Vector fitted = MatVec(qr.q, qty);
  double rss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double r = y[static_cast<size_t>(i)] - fitted[static_cast<size_t>(i)];
    rss += r * r;
  }

  OlsFit fit;
  fit.dof = n - p;
  fit.rss = rss;
  fit.sigma2 = rss / static_cast<double>(fit.dof);
  fit.coefficients = std::move(coef);

  // (AᵀA)^{-1} = R^{-1} R^{-T}; its diagonal entries are the squared row
  // norms of R^{-1}.
  DASH_ASSIGN_OR_RETURN(Matrix rinv, InvertUpperTriangular(qr.r));
  fit.standard_errors.resize(static_cast<size_t>(p));
  fit.t_statistics.resize(static_cast<size_t>(p));
  fit.p_values.resize(static_cast<size_t>(p));
  for (int64_t j = 0; j < p; ++j) {
    double row_norm2 = 0.0;
    for (int64_t k = j; k < p; ++k) row_norm2 += rinv(j, k) * rinv(j, k);
    const double se = std::sqrt(fit.sigma2 * row_norm2);
    const double t = fit.coefficients[static_cast<size_t>(j)] / se;
    fit.standard_errors[static_cast<size_t>(j)] = se;
    fit.t_statistics[static_cast<size_t>(j)] = t;
    fit.p_values[static_cast<size_t>(j)] =
        StudentTTwoSidedPValue(t, static_cast<double>(fit.dof));
  }
  return fit;
}

Result<SingleCoefficientFit> FitTransientCoefficient(const Vector& x,
                                                     const Matrix& c,
                                                     const Vector& y) {
  if (static_cast<int64_t>(x.size()) != c.rows()) {
    return InvalidArgumentError("x and C disagree on sample count");
  }
  Matrix design(c.rows(), c.cols() + 1);
  for (int64_t i = 0; i < c.rows(); ++i) {
    design(i, 0) = x[static_cast<size_t>(i)];
    for (int64_t j = 0; j < c.cols(); ++j) design(i, j + 1) = c(i, j);
  }
  DASH_ASSIGN_OR_RETURN(OlsFit fit, FitOls(design, y));
  SingleCoefficientFit out;
  out.beta = fit.coefficients[0];
  out.standard_error = fit.standard_errors[0];
  out.t_statistic = fit.t_statistics[0];
  out.p_value = fit.p_values[0];
  out.dof = fit.dof;
  return out;
}

}  // namespace dash
