// Meta-analysis of per-party estimates: the status-quo baseline.
//
// The paper motivates DASH by noting that without secure pooling,
// "analysts typically have no recourse but to meta-analyze within-party
// estimates, with loss of power due to noisy standard errors as well as
// between-group heterogeneity (c.f. Simpson's paradox)". This module
// implements that baseline so experiment E5 can quantify the gap:
//  * fixed-effect inverse-variance weighting,
//  * Cochran's Q heterogeneity statistic and its chi-square p-value,
//  * DerSimonian-Laird random-effects as the standard remedy.

#ifndef DASH_STATS_META_ANALYSIS_H_
#define DASH_STATS_META_ANALYSIS_H_

#include "linalg/vector_ops.h"
#include "util/status.h"

namespace dash {

struct MetaAnalysisResult {
  double beta = 0.0;      // combined effect estimate
  double se = 0.0;        // standard error of the combined estimate
  double z = 0.0;         // beta / se
  double p_value = 0.0;   // two-sided normal p-value
  double cochran_q = 0.0; // heterogeneity statistic (fixed-effect only)
  double q_p_value = 1.0; // chi-square p-value of Q with P-1 dof
  double tau2 = 0.0;      // between-study variance (random-effects only)
};

// Fixed-effect inverse-variance meta-analysis of per-party (beta_p, se_p).
// Requires >= 1 study and strictly positive standard errors.
Result<MetaAnalysisResult> FixedEffectMeta(const Vector& betas,
                                           const Vector& standard_errors);

// DerSimonian-Laird random-effects meta-analysis.
Result<MetaAnalysisResult> RandomEffectsMeta(const Vector& betas,
                                             const Vector& standard_errors);

}  // namespace dash

#endif  // DASH_STATS_META_ANALYSIS_H_
