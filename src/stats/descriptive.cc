#include "stats/descriptive.h"

#include <cmath>

#include "util/check.h"

namespace dash {

double SampleVariance(const Vector& v) {
  DASH_CHECK_GE(v.size(), 2u);
  const double m = Mean(v);
  double ss = 0.0;
  for (const double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(v.size() - 1);
}

double SampleStdDev(const Vector& v) { return std::sqrt(SampleVariance(v)); }

double PearsonCorrelation(const Vector& a, const Vector& b) {
  DASH_CHECK_EQ(a.size(), b.size());
  DASH_CHECK_GE(a.size(), 2u);
  const double ma = Mean(a);
  const double mb = Mean(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  DASH_CHECK_GT(saa, 0.0);
  DASH_CHECK_GT(sbb, 0.0);
  return sab / std::sqrt(saa * sbb);
}

}  // namespace dash
