// Special functions underlying the distribution code: log-gamma,
// regularized incomplete beta (for the Student-t CDF) and regularized
// incomplete gamma (for the chi-square CDF). Implementations follow the
// classic Lentz continued-fraction / series forms and are accurate to
// ~1e-12 over the parameter ranges the library uses.

#ifndef DASH_STATS_SPECIAL_FUNCTIONS_H_
#define DASH_STATS_SPECIAL_FUNCTIONS_H_

namespace dash {

// ln Γ(x) for x > 0.
double LogGamma(double x);

// I_x(a, b): the regularized incomplete beta function, a,b > 0,
// x in [0, 1].
double RegularizedIncompleteBeta(double a, double b, double x);

// P(a, x): the regularized lower incomplete gamma function, a > 0, x >= 0.
double RegularizedLowerGamma(double a, double x);

// Q(a, x) = 1 - P(a, x).
double RegularizedUpperGamma(double a, double x);

}  // namespace dash

#endif  // DASH_STATS_SPECIAL_FUNCTIONS_H_
