// Top-k principal components of a symmetric kernel (GRM / kinship).
//
// The paper's preface positions DASH as the regression half of secure
// GWAS, with secure multiparty PCA (Cho, Wu, Berger 2018) supplying the
// ancestry components used as permanent covariates. This module is the
// plaintext PCA substitute for that substrate: subspace (block power)
// iteration with QR re-orthonormalization, which is exactly the kind of
// matrix iteration the secure PCA literature implements under MPC.
//
// Also provides the genomic-control inflation factor lambda_GC, the
// standard diagnostic the population-structure experiment (example
// `population_structure`) uses to show PCs de-confound the scan.

#ifndef DASH_STATS_PCA_H_
#define DASH_STATS_PCA_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

struct PcaResult {
  Vector eigenvalues;  // descending, length k
  Matrix components;   // N x k, orthonormal columns
  int iterations = 0;
};

struct PcaOptions {
  int max_iterations = 500;
  double tolerance = 1e-10;  // relative eigenvalue change per sweep
  uint64_t seed = 0x9ca;
};

// Computes the k dominant eigenpairs of a symmetric PSD kernel.
// Requires 1 <= k <= kernel.rows(). Reports Internal if the iteration
// fails to converge within max_iterations (pathological spectra only).
Result<PcaResult> TopPrincipalComponents(const Matrix& kernel, int64_t k,
                                         const PcaOptions& options = {});

// Genomic-control inflation factor: median(t²) / median(chi²_1).
// ~1 for a calibrated scan, > 1 under confounding. NaN t-statistics are
// skipped; requires at least one finite entry.
double GenomicControlLambda(const Vector& t_statistics);

}  // namespace dash

#endif  // DASH_STATS_PCA_H_
