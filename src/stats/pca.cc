#include "stats/pca.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "linalg/qr.h"
#include "util/random.h"

namespace dash {

Result<PcaResult> TopPrincipalComponents(const Matrix& kernel, int64_t k,
                                         const PcaOptions& options) {
  const int64_t n = kernel.rows();
  if (kernel.cols() != n) {
    return InvalidArgumentError("kernel must be square");
  }
  if (k < 1 || k > n) {
    return InvalidArgumentError("need 1 <= k <= N, got k=" + std::to_string(k));
  }

  // Random start with orthonormal columns.
  Rng rng(options.seed);
  Matrix v(n, k);
  for (int64_t i = 0; i < v.size(); ++i) v.data()[i] = rng.Gaussian();
  {
    DASH_ASSIGN_OR_RETURN(QrDecomposition qr, ThinQr(v));
    v = std::move(qr.q);
  }

  Vector prev(static_cast<size_t>(k), 0.0);
  PcaResult out;
  out.eigenvalues.assign(static_cast<size_t>(k), 0.0);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    Matrix w = MatMul(kernel, v);
    // Rayleigh quotients before re-orthonormalization.
    for (int64_t j = 0; j < k; ++j) {
      double num = 0.0;
      for (int64_t i = 0; i < n; ++i) num += v(i, j) * w(i, j);
      out.eigenvalues[static_cast<size_t>(j)] = num;
    }
    DASH_ASSIGN_OR_RETURN(QrDecomposition qr, ThinQr(w));
    v = std::move(qr.q);
    out.iterations = iter;

    double worst_rel = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      const double cur = out.eigenvalues[static_cast<size_t>(j)];
      const double rel = std::fabs(cur - prev[static_cast<size_t>(j)]) /
                         (std::fabs(cur) + 1e-30);
      worst_rel = std::max(worst_rel, rel);
    }
    prev = out.eigenvalues;
    if (worst_rel < options.tolerance) {
      out.components = std::move(v);
      // Descending eigenvalue order (subspace iteration converges that
      // way already; enforce for safety).
      for (int64_t a = 0; a < k; ++a) {
        for (int64_t b = a + 1; b < k; ++b) {
          if (out.eigenvalues[static_cast<size_t>(b)] >
              out.eigenvalues[static_cast<size_t>(a)]) {
            std::swap(out.eigenvalues[static_cast<size_t>(a)],
                      out.eigenvalues[static_cast<size_t>(b)]);
            for (int64_t i = 0; i < n; ++i) {
              std::swap(out.components(i, a), out.components(i, b));
            }
          }
        }
      }
      return out;
    }
  }
  return InternalError("PCA subspace iteration did not converge");
}

double GenomicControlLambda(const Vector& t_statistics) {
  // Median of chi-square with 1 dof.
  constexpr double kChi1Median = 0.45493642311957185;
  Vector chis;
  chis.reserve(t_statistics.size());
  for (const double t : t_statistics) {
    if (!std::isnan(t)) chis.push_back(t * t);
  }
  DASH_CHECK(!chis.empty()) << "no finite t-statistics";
  std::sort(chis.begin(), chis.end());
  const size_t n = chis.size();
  const double median = (n % 2 == 1)
                            ? chis[n / 2]
                            : 0.5 * (chis[n / 2 - 1] + chis[n / 2]);
  return median / kChi1Median;
}

}  // namespace dash
