#include "stats/special_functions.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace dash {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEpsilon;

// Continued fraction for the incomplete beta (modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) <= kEpsilon) break;
  }
  return h;
}

// Series form of P(a, x), valid for x < a + 1.
double LowerGammaSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction form of Q(a, x), valid for x >= a + 1.
double UpperGammaContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) <= kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double LogGamma(double x) {
  DASH_CHECK_GT(x, 0.0);
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the process-global `signgam`, so concurrent
  // parties finalizing p-values race on it (TSan: "Location is global
  // 'signgam'"). The POSIX reentrant variant returns the sign through
  // an out-param instead. The sign is always +1 here since x > 0.
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  DASH_CHECK_GT(a, 0.0);
  DASH_CHECK_GT(b, 0.0);
  DASH_CHECK(x >= 0.0 && x <= 1.0) << "x=" << x;
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry that keeps the continued fraction rapidly convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double RegularizedLowerGamma(double a, double x) {
  DASH_CHECK_GT(a, 0.0);
  DASH_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return LowerGammaSeries(a, x);
  return 1.0 - UpperGammaContinuedFraction(a, x);
}

double RegularizedUpperGamma(double a, double x) {
  DASH_CHECK_GT(a, 0.0);
  DASH_CHECK_GE(x, 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - LowerGammaSeries(a, x);
  return UpperGammaContinuedFraction(a, x);
}

}  // namespace dash
