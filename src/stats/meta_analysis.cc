#include "stats/meta_analysis.h"

#include <cmath>

#include "stats/distributions.h"

namespace dash {
namespace {

Status ValidateInputs(const Vector& betas, const Vector& ses) {
  if (betas.empty()) return InvalidArgumentError("no studies to combine");
  if (betas.size() != ses.size()) {
    return InvalidArgumentError("betas and standard errors disagree in size");
  }
  for (const double se : ses) {
    if (!(se > 0.0) || !std::isfinite(se)) {
      return InvalidArgumentError("standard errors must be finite and > 0");
    }
  }
  return Status::Ok();
}

// Core inverse-variance combine with an optional between-study variance.
MetaAnalysisResult Combine(const Vector& betas, const Vector& ses,
                           double tau2) {
  double wsum = 0.0;
  double wbsum = 0.0;
  for (size_t i = 0; i < betas.size(); ++i) {
    const double w = 1.0 / (ses[i] * ses[i] + tau2);
    wsum += w;
    wbsum += w * betas[i];
  }
  MetaAnalysisResult out;
  out.beta = wbsum / wsum;
  out.se = std::sqrt(1.0 / wsum);
  out.z = out.beta / out.se;
  out.p_value = NormalTwoSidedPValue(out.z);
  out.tau2 = tau2;
  return out;
}

double CochranQ(const Vector& betas, const Vector& ses, double pooled_beta) {
  double q = 0.0;
  for (size_t i = 0; i < betas.size(); ++i) {
    const double w = 1.0 / (ses[i] * ses[i]);
    const double d = betas[i] - pooled_beta;
    q += w * d * d;
  }
  return q;
}

}  // namespace

Result<MetaAnalysisResult> FixedEffectMeta(const Vector& betas,
                                           const Vector& standard_errors) {
  DASH_RETURN_IF_ERROR(ValidateInputs(betas, standard_errors));
  MetaAnalysisResult out = Combine(betas, standard_errors, /*tau2=*/0.0);
  out.cochran_q = CochranQ(betas, standard_errors, out.beta);
  const size_t p = betas.size();
  out.q_p_value = (p > 1)
                      ? ChiSquareSf(out.cochran_q, static_cast<double>(p - 1))
                      : 1.0;
  return out;
}

Result<MetaAnalysisResult> RandomEffectsMeta(const Vector& betas,
                                             const Vector& standard_errors) {
  DASH_RETURN_IF_ERROR(ValidateInputs(betas, standard_errors));
  const size_t p = betas.size();
  MetaAnalysisResult fixed = Combine(betas, standard_errors, /*tau2=*/0.0);
  const double q = CochranQ(betas, standard_errors, fixed.beta);

  // DerSimonian-Laird moment estimator of the between-study variance.
  double tau2 = 0.0;
  if (p > 1) {
    double wsum = 0.0;
    double w2sum = 0.0;
    for (const double se : standard_errors) {
      const double w = 1.0 / (se * se);
      wsum += w;
      w2sum += w * w;
    }
    const double denom = wsum - w2sum / wsum;
    if (denom > 0.0) {
      tau2 = (q - static_cast<double>(p - 1)) / denom;
      if (tau2 < 0.0) tau2 = 0.0;
    }
  }

  MetaAnalysisResult out = Combine(betas, standard_errors, tau2);
  out.cochran_q = q;
  out.q_p_value =
      (p > 1) ? ChiSquareSf(q, static_cast<double>(p - 1)) : 1.0;
  return out;
}

}  // namespace dash
