#include "stats/distributions.h"

#include <cmath>

#include "stats/special_functions.h"
#include "util/check.h"

namespace dash {

double StudentTCdf(double t, double dof) {
  DASH_CHECK_GT(dof, 0.0);
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(0.5 * dof, 0.5, x);
  return (t > 0.0) ? 1.0 - tail : tail;
}

double StudentTSf(double t, double dof) { return StudentTCdf(-t, dof); }

double StudentTTwoSidedPValue(double t, double dof) {
  DASH_CHECK_GT(dof, 0.0);
  if (std::isnan(t)) return std::nan("");
  const double at = std::fabs(t);
  if (std::isinf(at)) return 0.0;
  const double x = dof / (dof + at * at);
  return RegularizedIncompleteBeta(0.5 * dof, 0.5, x);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double NormalTwoSidedPValue(double z) {
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

double NormalQuantile(double p) {
  DASH_CHECK(p > 0.0 && p < 1.0) << "p=" << p;
  // Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Newton step against the exact CDF tightens to ~1e-15.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

double FCdf(double f, double d1, double d2) {
  DASH_CHECK_GT(d1, 0.0);
  DASH_CHECK_GT(d2, 0.0);
  if (f <= 0.0) return 0.0;
  if (std::isinf(f)) return 1.0;
  const double x = d1 * f / (d1 * f + d2);
  return RegularizedIncompleteBeta(0.5 * d1, 0.5 * d2, x);
}

double FSf(double f, double d1, double d2) {
  DASH_CHECK_GT(d1, 0.0);
  DASH_CHECK_GT(d2, 0.0);
  if (f <= 0.0) return 1.0;
  if (std::isinf(f)) return 0.0;
  // Complementary form avoids cancellation for large f.
  const double x = d2 / (d2 + d1 * f);
  return RegularizedIncompleteBeta(0.5 * d2, 0.5 * d1, x);
}

double ChiSquareCdf(double x, double k) {
  DASH_CHECK_GT(k, 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedLowerGamma(0.5 * k, 0.5 * x);
}

double ChiSquareSf(double x, double k) {
  DASH_CHECK_GT(k, 0.0);
  if (x <= 0.0) return 1.0;
  return RegularizedUpperGamma(0.5 * k, 0.5 * x);
}

}  // namespace dash
