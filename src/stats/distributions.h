// Probability distributions for test statistics.
//
// The association scan turns each (beta_hat, sigma_hat) into a t-statistic
// with N-K-1 degrees of freedom and the two-sided p-value
// 2 * pt(-|t|, dof) — exactly the paper's §4 finale. Normal and
// chi-square CDFs support the meta-analysis baseline (z-tests, Cochran's
// Q heterogeneity test) and power calculations in the benches.

#ifndef DASH_STATS_DISTRIBUTIONS_H_
#define DASH_STATS_DISTRIBUTIONS_H_

namespace dash {

// --- Student t with `dof` degrees of freedom (dof > 0) ---

// P(T <= t).
double StudentTCdf(double t, double dof);

// P(T > t).
double StudentTSf(double t, double dof);

// Two-sided p-value 2 * P(T > |t|).
double StudentTTwoSidedPValue(double t, double dof);

// --- Standard normal ---

// P(Z <= z).
double NormalCdf(double z);

// P(Z > z).
double NormalSf(double z);

// Two-sided p-value 2 * P(Z > |z|).
double NormalTwoSidedPValue(double z);

// Inverse CDF (Acklam's rational approximation + one Newton polish);
// p must lie strictly inside (0, 1).
double NormalQuantile(double p);

// --- F distribution with (d1, d2) degrees of freedom (both > 0) ---
// Used by the grouped scan's joint tests (multiple transient covariates,
// e.g. genotype x environment interactions).

// P(F <= f).
double FCdf(double f, double d1, double d2);

// P(F > f).
double FSf(double f, double d1, double d2);

// --- Chi-square with k degrees of freedom (k > 0) ---

// P(X <= x).
double ChiSquareCdf(double x, double k);

// P(X > x).
double ChiSquareSf(double x, double k);

}  // namespace dash

#endif  // DASH_STATS_DISTRIBUTIONS_H_
