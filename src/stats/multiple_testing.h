// Multiple-testing corrections for scan output: an M-variant scan is an
// M-fold testing problem. Bonferroni family-wise control and
// Benjamini-Hochberg FDR, plus the t quantile used for per-variant Wald
// confidence intervals. NaN p-values (untestable variants) pass through
// as NaN.

#ifndef DASH_STATS_MULTIPLE_TESTING_H_
#define DASH_STATS_MULTIPLE_TESTING_H_

#include "linalg/vector_ops.h"
#include "util/status.h"

namespace dash {

// min(1, m * p) per entry, m = number of finite p-values.
Vector BonferroniAdjust(const Vector& p_values);

// Benjamini-Hochberg step-up adjusted p-values (monotone, capped at 1).
Vector BenjaminiHochbergAdjust(const Vector& p_values);

// Indices with adjusted p < alpha (NaNs never selected).
std::vector<int64_t> SignificantAt(const Vector& adjusted_p, double alpha);

// Inverse CDF of Student t with `dof` degrees of freedom; p in (0, 1).
// Newton iteration on the exact CDF from a normal-quantile start.
double StudentTQuantile(double p, double dof);

// Two-sided Wald interval half-width at the given confidence level
// (e.g. 0.95): t_{(1+level)/2, dof} * se.
double ConfidenceHalfWidth(double se, int64_t dof, double level);

}  // namespace dash

#endif  // DASH_STATS_MULTIPLE_TESTING_H_
