// Full multiple-regression OLS via QR: the "primary analysis" reference.
//
// This is the C++ analogue of the paper's §4 ground truth
// `lm(y ~ X[,m] + C - 1)`: a dense least-squares fit returning per-
// coefficient estimates, standard errors, t-statistics, and two-sided
// p-values. The association scan is validated against it
// coefficient-for-coefficient.

#ifndef DASH_STATS_OLS_H_
#define DASH_STATS_OLS_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

struct OlsFit {
  Vector coefficients;     // length p
  Vector standard_errors;  // length p
  Vector t_statistics;     // length p
  Vector p_values;         // length p
  double sigma2 = 0.0;     // residual variance estimate (RSS / dof)
  double rss = 0.0;        // residual sum of squares
  int64_t dof = 0;         // N - p
};

// Fits y ~ design (no implicit intercept; include a ones column if you
// want one). Requires design.rows() == y.size(), rows > cols, and full
// column rank; otherwise returns InvalidArgument / FailedPrecondition.
Result<OlsFit> FitOls(const Matrix& design, const Vector& y);

// Convenience used throughout tests: fits y ~ [x, C] and returns the fit
// restricted to the x coefficient (index 0), matching the paper's scan
// semantics for transient covariate x.
struct SingleCoefficientFit {
  double beta = 0.0;
  double standard_error = 0.0;
  double t_statistic = 0.0;
  double p_value = 0.0;
  int64_t dof = 0;
};
Result<SingleCoefficientFit> FitTransientCoefficient(const Vector& x,
                                                     const Matrix& c,
                                                     const Vector& y);

}  // namespace dash

#endif  // DASH_STATS_OLS_H_
