// Descriptive statistics used by the workload generators and benches.

#ifndef DASH_STATS_DESCRIPTIVE_H_
#define DASH_STATS_DESCRIPTIVE_H_

#include "linalg/vector_ops.h"

namespace dash {

// Unbiased sample variance (n-1 denominator). Requires size >= 2.
double SampleVariance(const Vector& v);

// sqrt(SampleVariance).
double SampleStdDev(const Vector& v);

// Pearson correlation; requires equal sizes >= 2 and nonzero variance.
double PearsonCorrelation(const Vector& a, const Vector& b);

}  // namespace dash

#endif  // DASH_STATS_DESCRIPTIVE_H_
