#include "util/lock_rank.h"

#include "util/check.h"

namespace dash {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kControlServerConns:
      return "kControlServerConns";
    case LockRank::kMeshManager:
      return "kMeshManager";
    case LockRank::kJobScheduler:
      return "kJobScheduler";
    case LockRank::kPhase1Cache:
      return "kPhase1Cache";
    case LockRank::kSessionMux:
      return "kSessionMux";
    case LockRank::kThreadPool:
      return "kThreadPool";
    case LockRank::kTransportStats:
      return "kTransportStats";
    case LockRank::kSecrecyAudit:
      return "kSecrecyAudit";
    case LockRank::kPanelPrefetch:
      return "kPanelPrefetch";
    case LockRank::kLeaf:
      return "kLeaf";
  }
  return "unknown";
}

#ifndef NDEBUG

namespace lock_rank_internal {
namespace {

// Deepest legal nesting today is 2 (scheduler→mux, mesh→mux); 16 leaves
// room for growth without heap traffic on the lock path.
constexpr int kMaxHeldLocks = 16;

struct HeldStack {
  LockRank ranks[kMaxHeldLocks];
  int depth = 0;
};

thread_local HeldStack held_stack;

}  // namespace

void NoteAcquire(LockRank rank) {
  HeldStack& held = held_stack;
  DASH_CHECK(held.depth < kMaxHeldLocks)
      << "lock-rank stack overflow; no code path should hold this many "
         "mutexes at once";
  if (held.depth > 0) {
    const LockRank top = held.ranks[held.depth - 1];
    DASH_CHECK(static_cast<int32_t>(rank) > static_cast<int32_t>(top))
        << "lock-rank violation: acquiring " << LockRankName(rank) << " ("
        << static_cast<int32_t>(rank) << ") while holding "
        << LockRankName(top) << " (" << static_cast<int32_t>(top)
        << "); the total order in util/lock_rank.h forbids this nesting "
           "because the reverse order elsewhere would deadlock";
  }
  held.ranks[held.depth++] = rank;
}

void NoteRelease(LockRank rank) {
  HeldStack& held = held_stack;
  DASH_CHECK(held.depth > 0)
      << "lock-rank underflow: releasing " << LockRankName(rank)
      << " on a thread that holds no dash::Mutex";
  DASH_CHECK(held.ranks[held.depth - 1] == rank)
      << "non-LIFO mutex release: releasing " << LockRankName(rank)
      << " while " << LockRankName(held.ranks[held.depth - 1])
      << " is the innermost held lock; use scoped MutexLock";
  --held.depth;
}

int HeldCountForTest() { return held_stack.depth; }

}  // namespace lock_rank_internal

#endif  // NDEBUG

}  // namespace dash
