// A fixed-size worker pool with a blocking ParallelFor.
//
// The association scan parallelizes over the M columns of X; ParallelFor
// shards [begin, end) into contiguous chunks so each worker touches a
// contiguous column range (cache friendly, matches the paper's
// "columns of X distributed across machines with C total cores").
//
// Chunking is cost-based rather than one-chunk-per-thread: by default a
// range is split into ~4 chunks per worker (subject to a minimum grain),
// so uneven per-item cost — sparse columns with wildly different nnz,
// NUMA effects — load-balances across the pool instead of serializing on
// the slowest shard. Callers with a known natural grain (e.g. one cache
// block of columns) pass it via ParallelForOptions::min_chunk.
//
// A pool with num_threads == 1 spawns no workers and runs everything
// inline on the caller — including Schedule(), which would otherwise
// enqueue work nobody drains and deadlock the next Wait().
//
// Nesting rules (enforced, not just documented):
//  * ParallelFor called from inside one of the pool's own tasks runs the
//    whole range inline on that worker. Blocking in Wait() there would
//    deadlock: the worker's own task counts as in flight and can never
//    retire while the worker is parked inside it.
//  * Schedule from a worker is fine (it only enqueues).
//  * Wait from a worker of the same pool is a programmer error and
//    DASH_CHECK-fails with a diagnostic instead of hanging.

#ifndef DASH_UTIL_THREAD_POOL_H_
#define DASH_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace dash {

// Tuning for ParallelFor's shard computation.
struct ParallelForOptions {
  // Never split the range into chunks smaller than this many items
  // (except that the final chunk may be a remainder). Use the natural
  // unit of the workload, e.g. one cache block of columns.
  int64_t min_chunk = 1;

  // Target number of chunks per pool thread. The default of 1 keeps
  // the long-standing contract that a pool of T threads splits a range
  // into at most T contiguous shards (callers index per-shard scratch
  // by a running counter). Raise it to let the queue load-balance
  // uneven per-item cost at the price of more enqueue traffic.
  int64_t chunks_per_thread = 1;
};

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers (the calling thread participates in
  // ParallelFor). Requires num_threads >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(range_begin, range_end) over a partition of [begin, end)
  // into contiguous chunks (see ParallelForOptions) and blocks until all
  // complete. fn must be safe to invoke concurrently on disjoint ranges.
  // An empty or inverted range is a no-op. Called from one of this
  // pool's workers, the whole range runs inline (see nesting rules).
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& fn);
  void ParallelFor(int64_t begin, int64_t end,
                   const ParallelForOptions& options,
                   const std::function<void(int64_t, int64_t)>& fn);

  // Schedules fn on a worker; used by protocol drivers and the block
  // pipeline. With num_threads == 1 (no workers) fn runs inline before
  // Schedule returns. Wait() joins all outstanding scheduled work; it
  // must not be called from one of this pool's own workers.
  void Schedule(std::function<void()> fn);
  void Wait();

  // True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  Mutex mu_{LockRank::kThreadPool};
  CondVar work_cv_;
  CondVar done_cv_;
  std::queue<std::function<void()>> queue_ DASH_GUARDED_BY(mu_);
  int64_t in_flight_ DASH_GUARDED_BY(mu_) = 0;
  bool shutdown_ DASH_GUARDED_BY(mu_) = false;
};

}  // namespace dash

#endif  // DASH_UTIL_THREAD_POOL_H_
