// A fixed-size worker pool with a blocking ParallelFor.
//
// The association scan parallelizes over the M columns of X; ParallelFor
// shards [begin, end) into contiguous chunks so each worker touches a
// contiguous column range (cache friendly, matches the paper's
// "columns of X distributed across machines with C total cores").
//
// A pool with num_threads == 1 runs everything inline on the caller,
// which keeps single-core environments free of thread overhead.

#ifndef DASH_UTIL_THREAD_POOL_H_
#define DASH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dash {

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers (the calling thread participates in
  // ParallelFor). Requires num_threads >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(range_begin, range_end) over a partition of [begin, end) into
  // at most num_threads contiguous chunks and blocks until all complete.
  // fn must be safe to invoke concurrently on disjoint ranges.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& fn);

  // Schedules fn on a worker; used by protocol drivers. Wait() joins all
  // outstanding scheduled work.
  void Schedule(std::function<void()> fn);
  void Wait();

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> queue_;
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace dash

#endif  // DASH_UTIL_THREAD_POOL_H_
