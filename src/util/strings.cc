#include "util/strings.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace dash {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\r' ||
                   text[b] == '\n')) {
    ++b;
  }
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' ||
                   text[e - 1] == '\r' || text[e - 1] == '\n')) {
    --e;
  }
  return text.substr(b, e - b);
}

Result<double> ParseDouble(std::string_view text) {
  const std::string s(StripWhitespace(text));
  if (s.empty()) return InvalidArgumentError("empty string is not a double");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    return InvalidArgumentError("cannot parse double: '" + s + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string s(StripWhitespace(text));
  if (s.empty()) return InvalidArgumentError("empty string is not an integer");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    return InvalidArgumentError("cannot parse integer: '" + s + "'");
  }
  return static_cast<int64_t>(v);
}

std::string DoubleToString(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace dash
