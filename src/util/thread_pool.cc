#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace dash {
namespace {

// The pool whose WorkerLoop the current thread is running, if any.
// Worker threads belong to exactly one pool for their whole lifetime.
thread_local const ThreadPool* current_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  DASH_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads - 1);
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  // Notify outside the lock: every waiter re-checks shutdown_ under mu_
  // after waking, so there is no lost wakeup, and the woken workers can
  // take mu_ immediately instead of bouncing off the notifier
  // (DESIGN.md §14).
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::InWorkerThread() const {
  return current_worker_pool == this;
}

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(&mu_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::Schedule(std::function<void()> fn) {
  // No workers to drain the queue: run inline so a later Wait() cannot
  // hang on work nobody will ever execute.
  if (workers_.empty()) {
    fn();
    return;
  }
  {
    MutexLock lock(&mu_);
    queue_.push(std::move(fn));
    ++in_flight_;
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  DASH_CHECK(!InWorkerThread())
      << "ThreadPool::Wait() called from one of the pool's own workers; "
         "the caller's task is still in flight, so this would deadlock. "
         "Restructure so only the owning thread joins scheduled work.";
  MutexLock lock(&mu_);
  while (in_flight_ != 0) done_cv_.Wait(&mu_);
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t, int64_t)>& fn) {
  ParallelFor(begin, end, ParallelForOptions{}, fn);
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const ParallelForOptions& options,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  const int64_t total = end - begin;
  // Nested ParallelFor from a worker runs inline: blocking in Wait()
  // here would deadlock (the worker's own task never retires while the
  // worker is parked inside it).
  if (num_threads_ == 1 || InWorkerThread()) {
    fn(begin, end);
    return;
  }
  const int64_t min_chunk = std::max<int64_t>(1, options.min_chunk);
  const int64_t target_chunks =
      std::max<int64_t>(1, options.chunks_per_thread) * num_threads_;
  const int64_t chunk =
      std::max(min_chunk, (total + target_chunks - 1) / target_chunks);
  const int64_t shards = (total + chunk - 1) / chunk;
  if (shards == 1) {
    fn(begin, end);
    return;
  }
  // The calling thread runs the first shard itself; the rest go to workers.
  for (int64_t s = 1; s < shards; ++s) {
    const int64_t lo = begin + s * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) continue;
    Schedule([&fn, lo, hi] { fn(lo, hi); });
  }
  fn(begin, std::min(end, begin + chunk));
  Wait();
}

}  // namespace dash
