#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace dash {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  DASH_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads - 1);
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(fn));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t, int64_t)>& fn) {
  DASH_CHECK_LE(begin, end);
  const int64_t total = end - begin;
  if (total == 0) return;
  const int64_t shards = std::min<int64_t>(num_threads_, total);
  if (shards == 1) {
    fn(begin, end);
    return;
  }
  const int64_t chunk = (total + shards - 1) / shards;
  // The calling thread runs the first shard itself; the rest go to workers.
  for (int64_t s = 1; s < shards; ++s) {
    const int64_t lo = begin + s * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) continue;
    Schedule([&fn, lo, hi] { fn(lo, hi); });
  }
  fn(begin, std::min(end, begin + chunk));
  Wait();
}

}  // namespace dash
