// Small string helpers (split/join/trim/parse) used by CSV I/O and the
// bench harnesses. Parsing returns Result rather than throwing.

#ifndef DASH_UTIL_STRINGS_H_
#define DASH_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dash {

// Splits on every occurrence of `sep`; empty fields are preserved.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Joins with `sep` between elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Strict numeric parsing of the full string.
Result<double> ParseDouble(std::string_view text);
Result<int64_t> ParseInt64(std::string_view text);

// Formats a double with enough digits to round-trip ("%.17g" trimmed).
std::string DoubleToString(double value);

}  // namespace dash

#endif  // DASH_UTIL_STRINGS_H_
