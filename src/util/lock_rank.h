// Compile-time lock-rank registry (DESIGN.md §14).
//
// Clang's thread-safety analysis proves that guarded state is touched
// with the right mutex held, but it cannot see cross-class acquisition
// CYCLES (scheduler→mux on one thread, mux→scheduler on another is a
// deadlock no per-field annotation detects). The rank registry closes
// that hole: every dash::Mutex is constructed with a rank from the
// total order below, and debug builds keep a per-thread stack of held
// ranks, DASH_CHECK-failing the moment a thread acquires a mutex whose
// rank is not strictly greater than everything it already holds.
//
// The order is the ACQUISITION order — outermost (acquired first)
// ranks are smallest. It encodes every legal nesting in the tree today:
//
//   rank  mutex                                 nests into (higher ranks)
//   ----  ------------------------------------  -------------------------
//    10   ControlServer::conn_mu_               (leaf in practice)
//    15   partyd MeshManager::mu_               SessionMux::mu_ (health
//                                               probe under the mesh lock)
//    20   JobScheduler::mu_                     SessionMux::mu_ (abort of
//                                               a running job's session)
//    30   Phase1Cache::mu_                      (leaf)
//    40   SessionMux::mu_                       (leaf)
//    50   ThreadPool::mu_                       (leaf)
//    60   TcpTransport::stats_mutex_            (leaf)
//    70   SecrecyAudit registry                 (leaf)
//    80   PanelPrefetcher::mu_                  (leaf; hand-off between
//                                               the prefetch I/O thread
//                                               and the scan loop)
//    90   kLeaf — innermost; tests and one-off  (nothing)
//         mutexes that never call out
//
// Two mutexes of EQUAL rank may never be held together (that is how a
// future second instance of the same class cannot form an A→B→A cycle
// unnoticed). Adding a mutex means adding a rank here and a row to the
// DESIGN.md table; DL007 rejects a dash::Mutex member without one.

#ifndef DASH_UTIL_LOCK_RANK_H_
#define DASH_UTIL_LOCK_RANK_H_

#include <cstdint>

namespace dash {

enum class LockRank : int32_t {
  kControlServerConns = 10,
  kMeshManager = 15,
  kJobScheduler = 20,
  kPhase1Cache = 30,
  kSessionMux = 40,
  kThreadPool = 50,
  kTransportStats = 60,
  kSecrecyAudit = 70,
  kPanelPrefetch = 80,
  kLeaf = 90,
};

// Diagnostic name for a rank ("kSessionMux"), or "unknown".
const char* LockRankName(LockRank rank);

namespace lock_rank_internal {

#ifdef NDEBUG

// Release builds: rank checking compiles away entirely (the mutex still
// stores its rank, so the registry stays total even where unchecked).
inline void NoteAcquire(LockRank) {}
inline void NoteRelease(LockRank) {}
inline int HeldCountForTest() { return 0; }

#else

// Debug builds: per-thread stack of held ranks. NoteAcquire
// DASH_CHECK-fails unless `rank` is strictly greater than every rank
// the calling thread already holds; NoteRelease expects LIFO release
// (scoped MutexLock guarantees it).
void NoteAcquire(LockRank rank);
void NoteRelease(LockRank rank);

// Depth of the calling thread's held-rank stack (tests only).
int HeldCountForTest();

#endif  // NDEBUG

}  // namespace lock_rank_internal
}  // namespace dash

#endif  // DASH_UTIL_LOCK_RANK_H_
