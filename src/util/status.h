// Error model for the DASH library.
//
// The library does not use C++ exceptions. Recoverable errors (bad user
// input, dimension mismatches, I/O failures) are reported through
// dash::Status and dash::Result<T>; programmer errors abort through the
// DASH_CHECK macros in util/check.h.
//
// Example:
//   dash::Result<ScanResult> r = SecureScan::Run(parties, opts);
//   if (!r.ok()) return r.status();
//   Use(r.value());

#ifndef DASH_UTIL_STATUS_H_
#define DASH_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/check.h"

namespace dash {

// Canonical error codes, loosely following absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kOutOfRange = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
  kDataLoss = 11,
};

// Returns a stable human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// A Status is either OK or carries an error code plus a message.
// Statuses are cheap to copy and compare equal iff code and message match.
//
// [[nodiscard]]: a dropped Status is a swallowed error. Deliberately
// ignoring one requires a visible `(void)` cast (tools/dash_lint.py
// additionally audits those sites).
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors mirroring absl.
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status IoError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);

// Result<T> is a value-or-Status union (a minimal absl::StatusOr).
// Accessing value() on an error result aborts via DASH_CHECK.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return SomeError(...);` without ceremony.
  Result(T value) : status_(), value_(std::move(value)), has_value_(true) {}
  Result(Status status) : status_(std::move(status)), has_value_(false) {
    DASH_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    DASH_CHECK(has_value_) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    DASH_CHECK(has_value_) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DASH_CHECK(has_value_) << "Result::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
  bool has_value_;
};

// Propagates an error Status from an expression, mirroring
// RETURN_IF_ERROR in Google codebases.
#define DASH_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::dash::Status _dash_status = (expr);            \
    if (!_dash_status.ok()) return _dash_status;     \
  } while (false)

// Assigns the value of a Result expression or propagates its error:
//   DASH_ASSIGN_OR_RETURN(auto q, ComputeQr(c));
#define DASH_ASSIGN_OR_RETURN(lhs, expr)                        \
  DASH_ASSIGN_OR_RETURN_IMPL_(                                  \
      DASH_STATUS_CONCAT_(_dash_result, __LINE__), lhs, expr)

#define DASH_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#define DASH_STATUS_CONCAT_INNER_(a, b) a##b
#define DASH_STATUS_CONCAT_(a, b) DASH_STATUS_CONCAT_INNER_(a, b)

}  // namespace dash

#endif  // DASH_UTIL_STATUS_H_
