// ChaCha20 stream cipher (RFC 8439 block function) used as a
// cryptographic PRG for pairwise masks in the secure-sum protocols.
//
// Two parties that share a 32-byte key derive identical mask streams, so
// masks added by one party and subtracted by the other cancel exactly in
// an aggregate. Key agreement is provided by mpc/key_exchange.h.

#ifndef DASH_UTIL_CHACHA20_H_
#define DASH_UTIL_CHACHA20_H_

#include <array>
#include <cstdint>

namespace dash {

// Deterministic cryptographic pseudo-random stream from a 256-bit key and
// 64-bit stream id (mapped into the ChaCha20 nonce).
class ChaCha20Rng {
 public:
  using Key = std::array<uint8_t, 32>;

  ChaCha20Rng(const Key& key, uint64_t stream_id);

  // Derives a Key from a 64-bit seed (for tests and simulations where a
  // full key-exchange is not under test).
  static Key KeyFromSeed(uint64_t seed);

  // Next 64 pseudo-random bits of the keystream.
  uint64_t NextU64();

 private:
  void Refill();

  std::array<uint32_t, 16> state_;
  std::array<uint32_t, 16> block_;
  int next_word_ = 16;  // forces Refill on first use
};

}  // namespace dash

#endif  // DASH_UTIL_CHACHA20_H_
