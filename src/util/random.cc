#include "util/random.h"

#include <cmath>

namespace dash {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 top bits -> [0,1) with full double resolution.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  DASH_CHECK_GT(n, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = n * ((~uint64_t{0}) / n);
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % n;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller on (0,1] uniforms to avoid log(0).
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gamma(double shape) {
  DASH_CHECK_GT(shape, 0.0);
  // Marsaglia & Tsang (2000). For shape < 1 use the boosting identity
  // Gamma(a) = Gamma(a+1) * U^(1/a).
  if (shape < 1.0) {
    const double u = [&] {
      double v;
      do {
        v = UniformDouble();
      } while (v <= 0.0);
      return v;
    }();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double a, double b) {
  DASH_CHECK_GT(a, 0.0);
  DASH_CHECK_GT(b, 0.0);
  const double x = Gamma(a);
  const double y = Gamma(b);
  const double sum = x + y;
  if (sum <= 0.0) return 0.5;  // both underflowed; a, b are tiny
  return x / sum;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace dash
