// Leveled logging to stderr. Quiet by default (warnings and errors);
// set SetLogLevel(LogLevel::kInfo) or DASH_LOG_LEVEL=info to see
// protocol progress from the scan drivers.

#ifndef DASH_UTIL_LOGGING_H_
#define DASH_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dash {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets / reads the global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {

// Emits on destruction if `level` passes the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace dash

#define DASH_LOG(level)                                          \
  ::dash::internal_log::LogMessage(::dash::LogLevel::k##level,   \
                                   __FILE__, __LINE__)

#endif  // DASH_UTIL_LOGGING_H_
