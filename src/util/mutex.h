// Annotated mutex / scoped lock / condition variable wrappers
// (DESIGN.md §14).
//
// std::mutex is invisible to clang's thread-safety analysis, so every
// lock in the tree outside this directory is a dash::Mutex (DL007).
// The wrappers add exactly two things over the std types:
//
//  * the DASH_CAPABILITY / DASH_ACQUIRE / DASH_RELEASE annotations the
//    static analysis needs to prove guarded fields are touched under
//    their lock; and
//  * a mandatory LockRank (util/lock_rank.h) checked at acquire time in
//    debug builds, which catches cross-class lock-order inversions the
//    static analysis cannot see.
//
// CondVar deliberately has NO predicate overloads: the analysis cannot
// look through a predicate lambda (it would flag the guarded reads
// inside it as unlocked), so waits are written as explicit
// `while (!condition) cv.Wait(&mu);` loops, which it reads natively.
// The std wait-loop semantics are unchanged — Wait atomically releases
// the mutex, sleeps, and reacquires before returning, so the condition
// re-check always runs under the lock.

#ifndef DASH_UTIL_MUTEX_H_
#define DASH_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace dash {

class CondVar;

class DASH_CAPABILITY("mutex") Mutex {
 public:
  // Every mutex declares its place in the global acquisition order;
  // there is intentionally no default. See util/lock_rank.h.
  explicit Mutex(LockRank rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DASH_ACQUIRE() {
    lock_rank_internal::NoteAcquire(rank_);
    raw_.lock();
  }

  void Unlock() DASH_RELEASE() {
    raw_.unlock();
    lock_rank_internal::NoteRelease(rank_);
  }

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex raw_;
  const LockRank rank_;
};

// RAII holder; the only way the rest of the tree takes a Mutex (scoped
// release keeps the rank stack LIFO and the analysis's lock sets exact).
class DASH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DASH_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DASH_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to a dash::Mutex at each wait. All waits
// require the mutex held (DASH_REQUIRES) and return with it held; the
// held-rank stack is left untouched across the internal release/
// reacquire because the sleeping thread cannot acquire anything else
// meanwhile.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) DASH_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->raw_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex* mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      DASH_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->raw_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex* mu, const std::chrono::time_point<Clock, Duration>& deadline)
      DASH_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->raw_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  // Like the std types, notification does not require the mutex; the
  // waiter's predicate re-check under the lock is what makes the
  // pattern race-free (see DESIGN.md §14 on notify-outside-lock).
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dash

#endif  // DASH_UTIL_MUTEX_H_
