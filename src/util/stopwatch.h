// Wall-clock timing for benches and protocol cost accounting.

#ifndef DASH_UTIL_STOPWATCH_H_
#define DASH_UTIL_STOPWATCH_H_

#include <chrono>

namespace dash {

// Measures elapsed wall time from construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dash

#endif  // DASH_UTIL_STOPWATCH_H_
