// Deterministic pseudo-random number generation.
//
// Rng is a xoshiro256** generator (Blackman & Vigna) seeded through
// SplitMix64, with helpers for the distributions the library needs.
// It is fast and statistically strong but NOT cryptographic; secure
// masking in src/mpc uses ChaCha20 (util/chacha20.h) instead.
//
// All generators are deterministic given their seed, which keeps tests,
// benches, and the paper's seed-0 demo reproducible.

#ifndef DASH_UTIL_RANDOM_H_
#define DASH_UTIL_RANDOM_H_

#include <cstdint>

#include "util/check.h"

namespace dash {

// Mixes a 64-bit value; used for seeding and hashing small integers.
uint64_t SplitMix64(uint64_t* state);

// xoshiro256** pseudo-random generator with distribution helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 uniform bits.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double UniformDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal via Box-Muller (caches the second variate).
  double Gaussian();

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Gamma(shape, 1) via Marsaglia-Tsang; requires shape > 0.
  double Gamma(double shape);

  // Beta(a, b) via two Gamma draws; requires a, b > 0. Used by the
  // Balding-Nichols ancestry model in data/population_structure.h.
  double Beta(double a, double b);

  // Creates an independent generator derived from this one's stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace dash

#endif  // DASH_UTIL_RANDOM_H_
