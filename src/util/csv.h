// Minimal delimited-table I/O for writing scan results and bench series
// and for loading small fixtures. Handles plain (unquoted) fields, which
// is all this library emits.

#ifndef DASH_UTIL_CSV_H_
#define DASH_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace dash {

// An in-memory delimited table: a header row plus data rows of equal width.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return header_.size(); }

  // Appends a row; width must match the header (checked).
  void AddRow(std::vector<std::string> row);

  // Column index by header name.
  Result<size_t> ColumnIndex(const std::string& name) const;

  // Typed cell access.
  Result<double> DoubleAt(size_t row, size_t col) const;

  // Serializes to delimiter-separated text (header first).
  std::string ToString(char sep = ',') const;

  // Writes to a file, replacing its contents.
  Status WriteFile(const std::string& path, char sep = ',') const;

  // Parses text whose first line is a header.
  static Result<CsvTable> Parse(const std::string& text, char sep = ',');

  // Reads and parses a file.
  static Result<CsvTable> ReadFile(const std::string& path, char sep = ',');

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dash

#endif  // DASH_UTIL_CSV_H_
