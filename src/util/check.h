// Abort-on-failure assertion macros for programmer errors.
//
// DASH_CHECK and friends are always on; DASH_DCHECK compiles away in
// NDEBUG builds. Failures print the condition, optional streamed message,
// and source location, then abort. Use Status (util/status.h) for
// recoverable errors instead.

#ifndef DASH_UTIL_CHECK_H_
#define DASH_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dash {
namespace internal_check {

// Accumulates the streamed message and aborts on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* condition, const char* file, int line) {
    stream_ << "DASH_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Lets the ternary in DASH_CHECK produce void on both branches while the
// streamed message still binds (<< has higher precedence than &).
class Voidify {
 public:
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal_check
}  // namespace dash

#define DASH_CHECK(cond)                                   \
  (cond) ? (void)0                                         \
         : ::dash::internal_check::Voidify() &             \
               ::dash::internal_check::CheckFailStream(    \
                   #cond, __FILE__, __LINE__)

// Binary comparison checks; evaluate operands once.
#define DASH_CHECK_OP_(name, op, a, b)                                     \
  do {                                                                     \
    auto&& _dash_a = (a);                                                  \
    auto&& _dash_b = (b);                                                  \
    if (!(_dash_a op _dash_b)) {                                           \
      ::dash::internal_check::CheckFailStream(#a " " #op " " #b, __FILE__, \
                                              __LINE__)                    \
          << "(" << _dash_a << " vs " << _dash_b << ") ";                  \
    }                                                                      \
  } while (false)

#define DASH_CHECK_EQ(a, b) DASH_CHECK_OP_(EQ, ==, a, b)
#define DASH_CHECK_NE(a, b) DASH_CHECK_OP_(NE, !=, a, b)
#define DASH_CHECK_LT(a, b) DASH_CHECK_OP_(LT, <, a, b)
#define DASH_CHECK_LE(a, b) DASH_CHECK_OP_(LE, <=, a, b)
#define DASH_CHECK_GT(a, b) DASH_CHECK_OP_(GT, >, a, b)
#define DASH_CHECK_GE(a, b) DASH_CHECK_OP_(GE, >=, a, b)

#ifdef NDEBUG
#define DASH_DCHECK(cond) \
  while (false) ::dash::internal_check::NullStream()
#define DASH_DCHECK_EQ(a, b) DASH_DCHECK((a) == (b))
#define DASH_DCHECK_LT(a, b) DASH_DCHECK((a) < (b))
#define DASH_DCHECK_LE(a, b) DASH_DCHECK((a) <= (b))
#else
#define DASH_DCHECK(cond) DASH_CHECK(cond)
#define DASH_DCHECK_EQ(a, b) DASH_CHECK_EQ(a, b)
#define DASH_DCHECK_LT(a, b) DASH_CHECK_LT(a, b)
#define DASH_DCHECK_LE(a, b) DASH_CHECK_LE(a, b)
#endif

#endif  // DASH_UTIL_CHECK_H_
