#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace dash {

void CsvTable::AddRow(std::vector<std::string> row) {
  DASH_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

Result<size_t> CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return NotFoundError("no column named '" + name + "'");
}

Result<double> CsvTable::DoubleAt(size_t row, size_t col) const {
  if (row >= rows_.size() || col >= header_.size()) {
    return OutOfRangeError("cell out of range");
  }
  return ParseDouble(rows_[row][col]);
}

std::string CsvTable::ToString(char sep) const {
  std::ostringstream os;
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) os << sep;
    os << header_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << sep;
      os << row[i];
    }
    os << '\n';
  }
  return os.str();
}

Status CsvTable::WriteFile(const std::string& path, char sep) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return IoError("cannot open '" + path + "' for writing");
  out << ToString(sep);
  if (!out) return IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Result<CsvTable> CsvTable::Parse(const std::string& text, char sep) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return InvalidArgumentError("empty table: missing header");
  }
  CsvTable table(StrSplit(std::string(StripWhitespace(line)), sep));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    auto row = StrSplit(std::string(stripped), sep);
    if (row.size() != table.header_.size()) {
      return InvalidArgumentError("row " + std::to_string(line_no) + " has " +
                                  std::to_string(row.size()) +
                                  " fields; header has " +
                                  std::to_string(table.header_.size()));
    }
    table.rows_.push_back(std::move(row));
  }
  return table;
}

Result<CsvTable> CsvTable::ReadFile(const std::string& path, char sep) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str(), sep);
}

}  // namespace dash
