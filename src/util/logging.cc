#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace dash {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("DASH_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

std::atomic<int>& LevelVar() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelVar().load(std::memory_order_relaxed));
}

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep just the basename to reduce noise.
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      static_cast<int>(GetLogLevel())) {
    return;
  }
  std::cerr << stream_.str() << std::endl;
}

}  // namespace internal_log
}  // namespace dash
