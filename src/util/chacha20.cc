#include "util/chacha20.h"

#include "util/check.h"
#include "util/random.h"

namespace dash {
namespace {

inline uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = Rotl32(d, 16);
  c += d; b ^= c; b = Rotl32(b, 12);
  a += b; d ^= a; d = Rotl32(d, 8);
  c += d; b ^= c; b = Rotl32(b, 7);
}

}  // namespace

ChaCha20Rng::ChaCha20Rng(const Key& key, uint64_t stream_id) {
  // "expand 32-byte k" constants per RFC 8439.
  state_[0] = 0x61707865u;
  state_[1] = 0x3320646eu;
  state_[2] = 0x79622d32u;
  state_[3] = 0x6b206574u;
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = static_cast<uint32_t>(key[4 * i]) |
                    static_cast<uint32_t>(key[4 * i + 1]) << 8 |
                    static_cast<uint32_t>(key[4 * i + 2]) << 16 |
                    static_cast<uint32_t>(key[4 * i + 3]) << 24;
  }
  state_[12] = 0;  // block counter
  state_[13] = 0;  // nonce word 0 (reserved)
  state_[14] = static_cast<uint32_t>(stream_id);
  state_[15] = static_cast<uint32_t>(stream_id >> 32);
}

ChaCha20Rng::Key ChaCha20Rng::KeyFromSeed(uint64_t seed) {
  Key key;
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) {
    const uint64_t w = SplitMix64(&sm);
    for (int b = 0; b < 8; ++b) {
      key[8 * i + b] = static_cast<uint8_t>(w >> (8 * b));
    }
  }
  return key;
}

void ChaCha20Rng::Refill() {
  std::array<uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {  // 20 rounds = 10 double rounds
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) block_[i] = x[i] + state_[i];
  state_[12] += 1;
  DASH_CHECK(state_[12] != 0) << "ChaCha20 block counter wrapped";
  next_word_ = 0;
}

uint64_t ChaCha20Rng::NextU64() {
  if (next_word_ >= 16) Refill();
  const uint64_t lo = block_[next_word_];
  const uint64_t hi = block_[next_word_ + 1];
  next_word_ += 2;
  return lo | (hi << 32);
}

}  // namespace dash
