// Clang Thread Safety Analysis attribute macros (DESIGN.md §14).
//
// The analysis (-Wthread-safety -Wthread-safety-beta, promoted to
// errors in clang builds) proves at compile time that every access to a
// DASH_GUARDED_BY field happens with its mutex held and that every
// DASH_REQUIRES method is only called under the right lock. std::mutex
// and friends are invisible to it, so all lockable state goes through
// the annotated wrappers in util/mutex.h — DL007 enforces that outside
// src/util/.
//
// Under gcc (which has no thread-safety analysis) every macro expands
// to nothing; the runtime lock-rank checker (util/lock_rank.h) still
// runs there, so debug builds on either compiler catch lock-order
// inversions dynamically even where the static analysis is unavailable.

#ifndef DASH_UTIL_THREAD_ANNOTATIONS_H_
#define DASH_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define DASH_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DASH_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// On the lockable class itself: declares it a capability the analysis
// tracks ("mutex" is the diagnostic noun clang prints).
#define DASH_CAPABILITY(x) DASH_THREAD_ANNOTATION_(capability(x))

// On an RAII lock holder: acquisition in the constructor, release in
// the destructor (util/mutex.h MutexLock).
#define DASH_SCOPED_CAPABILITY DASH_THREAD_ANNOTATION_(scoped_lockable)

// On a data member: reads and writes require holding the named mutex
// (constructors and destructors are exempt — no concurrent access can
// exist there).
#define DASH_GUARDED_BY(x) DASH_THREAD_ANNOTATION_(guarded_by(x))

// On a pointer member: the POINTED-TO data is guarded, the pointer
// itself is not.
#define DASH_PT_GUARDED_BY(x) DASH_THREAD_ANNOTATION_(pt_guarded_by(x))

// On a function: callers must already hold the named mutex(es). This is
// the contract of every private *Locked helper.
#define DASH_REQUIRES(...) \
  DASH_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// On a function: acquires / releases the named mutex(es) (or, with no
// argument on a capability's own methods, `this`).
#define DASH_ACQUIRE(...) \
  DASH_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DASH_RELEASE(...) \
  DASH_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DASH_TRY_ACQUIRE(...) \
  DASH_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// On a function: callers must NOT hold the named mutex(es) — the
// function acquires them itself and would self-deadlock otherwise.
#define DASH_EXCLUDES(...) DASH_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On a function returning a reference to a capability.
#define DASH_RETURN_CAPABILITY(x) DASH_THREAD_ANNOTATION_(lock_returned(x))

// Opts one function out of the analysis. The reason string is
// MANDATORY (enforced by the string concatenation below under clang and
// by DL007 everywhere): every opt-out must say why the analysis cannot
// see the pattern — e.g. lock ownership handed across threads, or the
// adopt/release dance inside CondVar. "it warned" is not a reason.
#if defined(__clang__)
#define DASH_NO_THREAD_SAFETY_ANALYSIS(reason)              \
  __attribute__((no_thread_safety_analysis))                \
  __attribute__((annotate("dash-no-tsa: " reason)))
#else
#define DASH_NO_THREAD_SAFETY_ANALYSIS(reason)
#endif

#endif  // DASH_UTIL_THREAD_ANNOTATIONS_H_
