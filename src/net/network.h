// In-process simulated network between P parties.
//
// The Network is the only channel through which party-local protocol code
// exchanges data, which makes the privacy boundary explicit in the code:
// anything a party learns, it learned from a Message. Every message is
// counted, so benches can report exact per-link and total traffic — the
// quantity behind the paper's O(M) inter-party communication claim.
//
// Delivery is FIFO per ordered (from, to) pair. The protocols in this
// library are synchronous-round protocols driven from a single thread, so
// Receive on an empty queue is a protocol bug and reports
// FailedPrecondition rather than blocking.
//
// A LinkCostModel converts counted traffic into modeled wall-clock time
// for WAN settings (benches only; it never affects protocol results).

#ifndef DASH_NET_NETWORK_H_
#define DASH_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "net/message.h"
#include "util/status.h"

namespace dash {
class ProtocolTrace;
}  // namespace dash

namespace dash {

// Cumulative traffic counters kept by the Network.
class TrafficMetrics {
 public:
  explicit TrafficMetrics(int num_parties);

  void Record(const Message& msg);
  void BumpRound() { ++rounds_; }
  void Reset();

  int64_t total_bytes() const { return total_bytes_; }
  int64_t total_messages() const { return total_messages_; }
  int rounds() const { return rounds_; }
  int64_t LinkBytes(int from, int to) const;

  // Largest bytes sent over any single directed link.
  int64_t MaxLinkBytes() const;

  // Bytes sent by one party over all its outgoing links.
  int64_t BytesSentBy(int party) const;

 private:
  int num_parties_;
  int64_t total_bytes_ = 0;
  int64_t total_messages_ = 0;
  int rounds_ = 0;
  std::vector<int64_t> link_bytes_;  // num_parties^2, row-major [from][to]
};

// Latency/bandwidth cost model: time = rounds * latency + bytes/bandwidth.
struct LinkCostModel {
  double latency_seconds = 0.0;
  double bandwidth_bytes_per_second = 1.0;

  double EstimateSeconds(const TrafficMetrics& m) const {
    return m.rounds() * latency_seconds +
           static_cast<double>(m.total_bytes()) / bandwidth_bytes_per_second;
  }
};

class Network {
 public:
  // A network among parties 0..num_parties-1. Requires num_parties >= 1.
  explicit Network(int num_parties);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int num_parties() const { return num_parties_; }

  // Queues a message; from/to must be distinct valid party ids.
  Status Send(int from, int to, MessageTag tag, std::vector<uint8_t> payload);

  // Sends the same payload to every other party.
  Status Broadcast(int from, MessageTag tag,
                   const std::vector<uint8_t>& payload);

  // Pops the next message queued from -> to; fails if the queue is empty
  // or the tag does not match the protocol's expectation.
  Result<Message> Receive(int to, int from, MessageTag expected_tag);

  // True if a message from -> to is waiting.
  bool HasPending(int to, int from) const;

  // Marks the start of a new synchronous protocol round (metrics only).
  void BeginRound() { metrics_.BumpRound(); }

  // Attaches a transcript recorder (net/trace.h); nullptr detaches. The
  // recorder must outlive the network or be detached first.
  void AttachTrace(ProtocolTrace* trace) { trace_ = trace; }

  TrafficMetrics& metrics() { return metrics_; }
  const TrafficMetrics& metrics() const { return metrics_; }

 private:
  Status ValidateParty(int id, const char* what) const;

  int num_parties_;
  // queues_[from * num_parties_ + to]
  std::vector<std::deque<Message>> queues_;
  TrafficMetrics metrics_;
  ProtocolTrace* trace_ = nullptr;
};

}  // namespace dash

#endif  // DASH_NET_NETWORK_H_
