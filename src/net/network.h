// In-process simulated network between P parties — the InProcessTransport
// backend of transport/transport.h.
//
// The transport is the only channel through which party-local protocol
// code exchanges data, which makes the privacy boundary explicit in the
// code: anything a party learns, it learned from a Message. Every message
// is counted, so benches can report exact per-link and total traffic —
// the quantity behind the paper's O(M) inter-party communication claim.
//
// Delivery is FIFO per ordered (from, to) pair. This backend is
// SINGLE-THREAD SYNCHRONOUS: it keeps no locks, and all P parties'
// protocol code must be driven from one thread in protocol order.
// Receive on an empty queue is therefore a protocol bug and reports
// FailedPrecondition rather than blocking. For genuinely concurrent
// parties (one OS process each), use TcpTransport
// (transport/tcp_transport.h), whose Receive blocks with a deadline and
// whose counters are mutex-guarded.
//
// A LinkCostModel converts counted traffic into modeled wall-clock time
// for WAN settings (benches only; it never affects protocol results).

#ifndef DASH_NET_NETWORK_H_
#define DASH_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "net/message.h"
#include "transport/transport.h"
#include "util/status.h"

namespace dash {

// Latency/bandwidth cost model: time = rounds * latency + bytes/bandwidth.
struct LinkCostModel {
  double latency_seconds = 0.0;
  double bandwidth_bytes_per_second = 1.0;

  double EstimateSeconds(const TrafficMetrics& m) const {
    return m.rounds() * latency_seconds +
           static_cast<double>(m.total_bytes()) / bandwidth_bytes_per_second;
  }
};

class Network : public Transport {
 public:
  // A network among parties 0..num_parties-1. Requires num_parties >= 1.
  explicit Network(int num_parties);

  // Carries every party in-process (see transport/transport.h).
  int local_party() const override { return -1; }

  // Queues a message; from/to must be distinct valid party ids.
  Status Send(int from, int to, MessageTag tag,
              std::vector<uint8_t> payload) override;

  // Pops the next message queued from -> to; fails if the queue is empty
  // or the tag does not match the protocol's expectation.
  Result<Message> Receive(int to, int from, MessageTag expected_tag) override;

  // True if a message from -> to is waiting.
  bool HasPending(int to, int from) override;

 private:
  // queues_[from * num_parties() + to]
  std::vector<std::deque<Message>> queues_;
};

// The name the transport layer knows this backend by.
using InProcessTransport = Network;

}  // namespace dash

#endif  // DASH_NET_NETWORK_H_
