// Protocol message: a tagged byte payload between two parties.
//
// Tags disambiguate protocol phases so a mis-sequenced protocol fails
// loudly (Receive checks the expected tag) instead of silently
// misinterpreting bytes.

#ifndef DASH_NET_MESSAGE_H_
#define DASH_NET_MESSAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dash {

// Wire-visible message tags used by the protocols in this library.
enum class MessageTag : uint32_t {
  kRFactor = 1,          // a party's K x K local R factor
  kPlainStats = 2,       // plaintext sufficient-statistic contribution
  kAdditiveShare = 3,    // one additive share of a secret vector
  kPartialSum = 4,       // partial (share) sum during reveal
  kMaskedValue = 5,      // PRG-masked contribution (masked aggregation)
  kShamirShare = 6,      // Shamir share vector
  kPublicKey = 7,        // Diffie-Hellman public value
  kAggregate = 8,        // aggregated result broadcast
  kTreeR = 9,            // tree-TSQR intermediate R factor
  kSampleCount = 10,     // a party's public per-party sample count N_p
  kCommit = 11,          // result-checksum cross-check (commit round)
  kAbort = 12,           // abort notification {origin, round, Status}
  kPhase1Probe = 13,     // Phase-1 cache agreement bit (u32 0/1, public)
};

struct Message {
  int from = -1;
  int to = -1;
  // Logical session the message belongs to; 0 is the sessionless
  // default stream (every pre-session protocol run). Carried in the
  // frame header's former reserved halfword, so it costs no wire bytes
  // and does not change WireSize().
  uint32_t session = 0;
  MessageTag tag = MessageTag::kPlainStats;
  std::vector<uint8_t> payload;

  // Bytes a real wire would carry: payload plus a fixed 16-byte header
  // (from, to, tag, length).
  size_t WireSize() const { return payload.size() + kHeaderBytes; }

  static constexpr size_t kHeaderBytes = 16;
};

// Human-readable tag name for diagnostics.
const char* MessageTagName(MessageTag tag);

}  // namespace dash

#endif  // DASH_NET_MESSAGE_H_
