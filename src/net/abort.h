// Abort-notification payloads (MessageTag::kAbort).
//
// When a party's secure scan fails mid-protocol (a peer vanished, a
// frame was corrupted, a receive timed out), it best-effort broadcasts
// one kAbort message naming itself, the round it failed in, and the
// Status it observed. Peers that are still blocked in Receive surface
// the notification as their own error — carrying the ORIGINATOR's
// status code — so every surviving party terminates with a consistent
// code instead of a mix of secondary timeouts. The propagation rule is
// documented in PROTOCOL.md ("Failure modes").

#ifndef DASH_NET_ABORT_H_
#define DASH_NET_ABORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dash {

struct AbortInfo {
  int origin = -1;  // party that first observed the failure
  int round = 0;    // its round counter at failure time
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

// Payload layout: u32 origin, u32 round, u32 code, u32 text length,
// then the (truncated) status text.
std::vector<uint8_t> EncodeAbortPayload(const AbortInfo& info);

// Never fails outright: a payload too mangled to decode yields an
// AbortInfo with origin -1 / kInternal, which is still a clean abort.
AbortInfo DecodeAbortPayload(const std::vector<uint8_t>& payload);

// The Status a party reports after receiving `info` from a peer:
// the originator's code with an "aborted by party N (round R): ..."
// message.
Status MakeAbortStatus(const AbortInfo& info);

// True for statuses minted by MakeAbortStatus — used to avoid
// re-broadcasting an abort that was itself caused by one.
bool IsAbortStatus(const Status& status);

}  // namespace dash

#endif  // DASH_NET_ABORT_H_
