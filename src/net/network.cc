#include "net/network.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace dash {

Network::Network(int num_parties)
    : Transport(num_parties),
      queues_(static_cast<size_t>(num_parties) * num_parties) {}

Status Network::Send(int from, int to, MessageTag tag,
                     std::vector<uint8_t> payload) {
  DASH_RETURN_IF_ERROR(ValidateParty(from, "sender"));
  DASH_RETURN_IF_ERROR(ValidateParty(to, "receiver"));
  if (from == to) {
    return InvalidArgumentError("party " + std::to_string(from) +
                                " attempted to send a message to itself");
  }
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.tag = tag;
  msg.payload = std::move(payload);
  RecordSend(msg);
  queues_[static_cast<size_t>(from) * num_parties() + to].push_back(
      std::move(msg));
  return Status::Ok();
}

Result<Message> Network::Receive(int to, int from, MessageTag expected_tag) {
  DASH_RETURN_IF_ERROR(ValidateParty(to, "receiver"));
  DASH_RETURN_IF_ERROR(ValidateParty(from, "sender"));
  auto& q = queues_[static_cast<size_t>(from) * num_parties() + to];
  if (q.empty()) {
    return FailedPreconditionError(
        "party " + std::to_string(to) + " expected a message from " +
        std::to_string(from) + " but none is pending");
  }
  Message msg = std::move(q.front());
  q.pop_front();
  if (msg.tag != expected_tag) {
    return FailedPreconditionError(
        std::string("protocol desync: expected tag ") +
        MessageTagName(expected_tag) + " but received " +
        MessageTagName(msg.tag));
  }
  return msg;
}

bool Network::HasPending(int to, int from) {
  DASH_CHECK(0 <= to && to < num_parties());
  DASH_CHECK(0 <= from && from < num_parties());
  return !queues_[static_cast<size_t>(from) * num_parties() + to].empty();
}

}  // namespace dash
