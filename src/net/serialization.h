// Byte-level serialization for protocol messages.
//
// All multi-byte values are little-endian; doubles travel as their IEEE-754
// bit patterns. The writers/readers are deliberately explicit (no
// reflection) so that the byte counts the Network reports are exactly the
// bytes a real wire implementation would carry.

#ifndef DASH_NET_SERIALIZATION_H_
#define DASH_NET_SERIALIZATION_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace dash {

// Appends typed values to a byte buffer.
class ByteWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);

  // Length-prefixed sequences.
  void PutU64Vector(const std::vector<uint64_t>& v);
  void PutDoubleVector(const Vector& v);
  void PutMatrix(const Matrix& m);

  size_t size() const { return buffer_.size(); }

  // Moves the accumulated bytes out; the writer becomes empty.
  std::vector<uint8_t> Take() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

// Reads typed values back; every getter fails with InvalidArgument on
// truncated or malformed input rather than reading out of bounds.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buffer)
      : buffer_(buffer) {}

  // The reader only borrows the buffer; reading from a temporary would
  // dangle, so it is rejected at compile time.
  explicit ByteReader(std::vector<uint8_t>&&) = delete;

  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::vector<uint64_t>> GetU64Vector();
  Result<Vector> GetDoubleVector();
  Result<Matrix> GetMatrix();

  // True when every byte has been consumed.
  bool AtEnd() const { return pos_ == buffer_.size(); }
  size_t remaining() const { return buffer_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  const std::vector<uint8_t>& buffer_;
  size_t pos_ = 0;
};

}  // namespace dash

#endif  // DASH_NET_SERIALIZATION_H_
