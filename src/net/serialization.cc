#include "net/serialization.h"

#include <bit>
#include <cstring>
#include <string>

namespace dash {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void ByteWriter::PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

void ByteWriter::PutU64Vector(const std::vector<uint64_t>& v) {
  PutU64(v.size());
  for (const uint64_t x : v) PutU64(x);
}

void ByteWriter::PutDoubleVector(const Vector& v) {
  PutU64(v.size());
  for (const double x : v) PutDouble(x);
}

void ByteWriter::PutMatrix(const Matrix& m) {
  PutI64(m.rows());
  PutI64(m.cols());
  for (int64_t i = 0; i < m.size(); ++i) PutDouble(m.data()[i]);
}

Status ByteReader::Need(size_t n) const {
  if (pos_ + n > buffer_.size()) {
    return InvalidArgumentError("truncated message: need " +
                                std::to_string(n) + " bytes, have " +
                                std::to_string(buffer_.size() - pos_));
  }
  return Status::Ok();
}

Result<uint32_t> ByteReader::GetU32() {
  DASH_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buffer_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  DASH_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buffer_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::GetI64() {
  DASH_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::GetDouble() {
  DASH_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return std::bit_cast<double>(v);
}

Result<std::vector<uint64_t>> ByteReader::GetU64Vector() {
  DASH_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  // Bound the count by the bytes actually present BEFORE allocating:
  // a corrupted length prefix like 2^61 would make 8 * n wrap around,
  // slip past Need() and then abort inside the huge vector allocation.
  if (n > remaining() / 8) {
    return InvalidArgumentError("truncated message: vector length " +
                                std::to_string(n) + " exceeds the " +
                                std::to_string(remaining()) +
                                " bytes remaining");
  }
  std::vector<uint64_t> out(n);
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = GetU64().value();
  }
  return out;
}

Result<Vector> ByteReader::GetDoubleVector() {
  DASH_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  if (n > remaining() / 8) {  // see GetU64Vector: 8 * n may wrap
    return InvalidArgumentError("truncated message: vector length " +
                                std::to_string(n) + " exceeds the " +
                                std::to_string(remaining()) +
                                " bytes remaining");
  }
  Vector out(n);
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = GetDouble().value();
  }
  return out;
}

Result<Matrix> ByteReader::GetMatrix() {
  DASH_ASSIGN_OR_RETURN(int64_t rows, GetI64());
  DASH_ASSIGN_OR_RETURN(int64_t cols, GetI64());
  if (rows < 0 || cols < 0 || (cols > 0 && rows > (1LL << 40) / cols)) {
    return InvalidArgumentError("implausible matrix shape in message");
  }
  DASH_RETURN_IF_ERROR(Need(8 * static_cast<size_t>(rows * cols)));
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = GetDouble().value();
  return m;
}

}  // namespace dash
