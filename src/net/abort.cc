#include "net/abort.h"

#include <algorithm>
#include <cstddef>
#include <string>

#include "net/serialization.h"

namespace dash {
namespace {

constexpr char kAbortPrefix[] = "aborted by party ";
constexpr size_t kMaxAbortText = 512;

bool IsTransportCode(uint32_t code) {
  return code > static_cast<uint32_t>(StatusCode::kOk) &&
         code <= static_cast<uint32_t>(StatusCode::kDataLoss);
}

}  // namespace

std::vector<uint8_t> EncodeAbortPayload(const AbortInfo& info) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(info.origin));
  w.PutU32(static_cast<uint32_t>(info.round));
  w.PutU32(static_cast<uint32_t>(info.code));
  const size_t len = std::min(info.message.size(), kMaxAbortText);
  w.PutU32(static_cast<uint32_t>(len));
  std::vector<uint8_t> out = w.Take();
  out.insert(out.end(), info.message.begin(),
             info.message.begin() + static_cast<ptrdiff_t>(len));
  return out;
}

AbortInfo DecodeAbortPayload(const std::vector<uint8_t>& payload) {
  AbortInfo info;
  info.message = "unparseable abort payload";
  ByteReader r(payload);
  auto origin = r.GetU32();
  auto round = r.GetU32();
  auto code = r.GetU32();
  auto len = r.GetU32();
  if (!origin.ok() || !round.ok() || !code.ok() || !len.ok()) return info;
  info.origin = static_cast<int>(origin.value());
  info.round = static_cast<int>(round.value());
  // A hostile or mangled code field must not turn the abort into OK.
  info.code = IsTransportCode(code.value())
                  ? static_cast<StatusCode>(code.value())
                  : StatusCode::kInternal;
  const size_t n = std::min<size_t>(len.value(),
                                    std::min(r.remaining(), kMaxAbortText));
  info.message.assign(payload.end() - static_cast<ptrdiff_t>(r.remaining()),
                      payload.end() - static_cast<ptrdiff_t>(r.remaining()) +
                          static_cast<ptrdiff_t>(n));
  return info;
}

Status MakeAbortStatus(const AbortInfo& info) {
  return Status(info.code, kAbortPrefix + std::to_string(info.origin) +
                               " (round " + std::to_string(info.round) +
                               "): " + info.message);
}

bool IsAbortStatus(const Status& status) {
  return status.message().rfind(kAbortPrefix, 0) == 0;
}

}  // namespace dash
