// Protocol transcript recording for audit and debugging.
//
// Attach a ProtocolTrace to a Network and every message's metadata
// (sequence, round, endpoints, tag, wire bytes — never payloads) is
// captured. Deployments use such transcripts to verify after the fact
// that a protocol run exchanged exactly the message pattern it was
// supposed to: the privacy argument of the paper is precisely a claim
// about which bytes flow where.

#ifndef DASH_NET_TRACE_H_
#define DASH_NET_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"
#include "util/status.h"

namespace dash {

struct TraceEvent {
  int64_t sequence = 0;  // global send order
  int round = 0;         // protocol round at send time
  int from = -1;
  int to = -1;
  MessageTag tag = MessageTag::kPlainStats;
  int64_t wire_bytes = 0;
};

class ProtocolTrace {
 public:
  void Record(int round, const Message& msg);
  void Clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }
  int64_t size() const { return static_cast<int64_t>(events_.size()); }

  // Events carrying a particular tag.
  int64_t CountTag(MessageTag tag) const;

  // Writes sequence,round,from,to,tag,bytes rows.
  Status WriteCsv(const std::string& path) const;

  // One line per (round, tag): "round 2: 6x AdditiveShare (1824 B)".
  std::string Summary() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace dash

#endif  // DASH_NET_TRACE_H_
