#include "net/message.h"

namespace dash {

const char* MessageTagName(MessageTag tag) {
  switch (tag) {
    case MessageTag::kRFactor:
      return "RFactor";
    case MessageTag::kPlainStats:
      return "PlainStats";
    case MessageTag::kAdditiveShare:
      return "AdditiveShare";
    case MessageTag::kPartialSum:
      return "PartialSum";
    case MessageTag::kMaskedValue:
      return "MaskedValue";
    case MessageTag::kShamirShare:
      return "ShamirShare";
    case MessageTag::kPublicKey:
      return "PublicKey";
    case MessageTag::kAggregate:
      return "Aggregate";
    case MessageTag::kTreeR:
      return "TreeR";
    case MessageTag::kSampleCount:
      return "SampleCount";
    case MessageTag::kCommit:
      return "Commit";
    case MessageTag::kAbort:
      return "Abort";
    case MessageTag::kPhase1Probe:
      return "Phase1Probe";
  }
  return "Unknown";
}

}  // namespace dash
