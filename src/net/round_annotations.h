// DASH_ROUND: source-level annotations binding wire call sites to the
// protocol round model in tools/protocol_model.yaml.
//
// Every Send/Receive/Broadcast call site in a protocol implementation
// file (the files listed under `runners:` in the model) must be
// preceded by a DASH_ROUND(round_key, tag) annotation naming the model
// round it implements and the MessageTag it moves. tools/dash_proto.py
// extracts these annotations, matches them against the call's
// MessageTag literal, and checks the reconstructed round choreography
// against the model (PC001-PC005; see DESIGN.md §16).
//
// The annotation is zero-cost: it expands to a static_assert that only
// validates (at compile time) that `tag` names a real MessageTag
// enumerator, so an annotation can never drift from net/message.h.
// The round key is a bare identifier; dash_proto validates it against
// tools/protocol_model.yaml (an unknown key is a PC000 finding).
//
// Placement: on its own line, directly above the statement containing
// the wire call (within a few lines; dash_proto binds an annotation to
// the next wire call in the same function). One annotation covers
// exactly one call site.
//
// DASH_ROUND_DRAIN marks a late symmetric drain of an earlier round
// (e.g. the in-process driver consuming redundant copies after the
// canonical view was computed). Drain sites count toward the model's
// site census but are exempt from PC003 round-ordering, because a
// drain legitimately re-touches an earlier round's tag after later
// rounds have begun.

#ifndef DASH_NET_ROUND_ANNOTATIONS_H_
#define DASH_NET_ROUND_ANNOTATIONS_H_

#include "net/message.h"

// static_assert(sizeof(enumerator) > 0) is always true when it
// compiles, but fails to compile when `tag` does not name a
// MessageTag enumerator — so annotations cannot name phantom tags.
#define DASH_ROUND(round_key, tag)                                        \
  static_assert(sizeof(::dash::MessageTag::tag) > 0,                      \
                "DASH_ROUND tag must name a MessageTag from net/message.h")

#define DASH_ROUND_DRAIN(round_key, tag)                                  \
  static_assert(sizeof(::dash::MessageTag::tag) > 0,                      \
                "DASH_ROUND_DRAIN tag must name a MessageTag from "       \
                "net/message.h")

#endif  // DASH_NET_ROUND_ANNOTATIONS_H_
