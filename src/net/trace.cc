#include "net/trace.h"

#include <map>
#include <sstream>

#include "util/csv.h"

namespace dash {

void ProtocolTrace::Record(int round, const Message& msg) {
  TraceEvent e;
  e.sequence = static_cast<int64_t>(events_.size());
  e.round = round;
  e.from = msg.from;
  e.to = msg.to;
  e.tag = msg.tag;
  e.wire_bytes = static_cast<int64_t>(msg.WireSize());
  events_.push_back(e);
}

int64_t ProtocolTrace::CountTag(MessageTag tag) const {
  int64_t count = 0;
  for (const auto& e : events_) count += (e.tag == tag);
  return count;
}

Status ProtocolTrace::WriteCsv(const std::string& path) const {
  CsvTable table({"sequence", "round", "from", "to", "tag", "bytes"});
  for (const auto& e : events_) {
    table.AddRow({std::to_string(e.sequence), std::to_string(e.round),
                  std::to_string(e.from), std::to_string(e.to),
                  MessageTagName(e.tag), std::to_string(e.wire_bytes)});
  }
  return table.WriteFile(path);
}

std::string ProtocolTrace::Summary() const {
  // (round, tag) -> (count, bytes); std::map keeps deterministic order.
  std::map<std::pair<int, uint32_t>, std::pair<int64_t, int64_t>> buckets;
  for (const auto& e : events_) {
    auto& bucket = buckets[{e.round, static_cast<uint32_t>(e.tag)}];
    bucket.first += 1;
    bucket.second += e.wire_bytes;
  }
  std::ostringstream os;
  for (const auto& [key, value] : buckets) {
    os << "round " << key.first << ": " << value.first << "x "
       << MessageTagName(static_cast<MessageTag>(key.second)) << " ("
       << value.second << " B)\n";
  }
  return os.str();
}

}  // namespace dash
