#include "core/multi_phenotype_scan.h"

#include <memory>
#include <string>
#include <utility>

#include "core/distributed_qr.h"
#include "core/party_local.h"
#include "linalg/qr.h"
#include "net/network.h"
#include "util/thread_pool.h"

namespace dash {
namespace {

// Phenotype-side statistics for one block: for each phenotype t, the
// scalar y_t.y_t, the K-vector Qᵀy_t, and the M-vector X.y_t. The
// X-side statistics (X.X, QᵀX) live in ScanSufficientStats and are
// shared across phenotypes.
struct PhenotypeSideStats {
  Vector yy;    // length T
  Matrix qty;   // K x T
  Matrix xy;    // M x T
};

PhenotypeSideStats ComputePhenotypeSide(const Matrix& x, const Matrix& ys,
                                        const Matrix& q) {
  PhenotypeSideStats s;
  const int64_t t_count = ys.cols();
  s.yy.assign(static_cast<size_t>(t_count), 0.0);
  for (int64_t t = 0; t < t_count; ++t) {
    double acc = 0.0;
    for (int64_t i = 0; i < ys.rows(); ++i) acc += ys(i, t) * ys(i, t);
    s.yy[static_cast<size_t>(t)] = acc;
  }
  s.qty = TransposeMatMul(q, ys);   // K x T
  s.xy = TransposeMatMul(x, ys);    // M x T
  return s;
}

// Flat layout: [T, then per t: yy | qty(K) | xy(M)] ++ [xx(M) | qtx(K*M)].
Vector FlattenMulti(const PhenotypeSideStats& ps, const Vector& xx,
                    const Matrix& qtx) {
  const int64_t t_count = static_cast<int64_t>(ps.yy.size());
  const int64_t k = ps.qty.rows();
  const int64_t m = ps.xy.rows();
  Vector flat;
  flat.reserve(static_cast<size_t>(t_count * (1 + k + m) + m + k * m));
  for (int64_t t = 0; t < t_count; ++t) {
    flat.push_back(ps.yy[static_cast<size_t>(t)]);
    for (int64_t kk = 0; kk < k; ++kk) flat.push_back(ps.qty(kk, t));
    for (int64_t j = 0; j < m; ++j) flat.push_back(ps.xy(j, t));
  }
  flat.insert(flat.end(), xx.begin(), xx.end());
  flat.insert(flat.end(), qtx.data(), qtx.data() + qtx.size());
  return flat;
}

Status ValidateMultiParties(
    const std::vector<MultiPhenotypePartyData>& parties) {
  if (parties.empty()) return InvalidArgumentError("no parties given");
  const int64_t m = parties[0].x.cols();
  const int64_t k = parties[0].c.cols();
  const int64_t t_count = parties[0].ys.cols();
  if (t_count < 1) return InvalidArgumentError("need at least one phenotype");
  for (size_t p = 0; p < parties.size(); ++p) {
    const auto& pd = parties[p];
    if (pd.x.cols() != m || pd.c.cols() != k || pd.ys.cols() != t_count ||
        pd.ys.rows() != pd.x.rows() || pd.c.rows() != pd.x.rows()) {
      return InvalidArgumentError("party " + std::to_string(p) +
                                  " has inconsistent shapes");
    }
    if (pd.x.rows() < k) {
      return InvalidArgumentError("party " + std::to_string(p) +
                                  " has fewer samples than covariates");
    }
  }
  return Status::Ok();
}

Result<std::vector<ScanResult>> FinalizeAll(const Vector& flat, int64_t n,
                                            int64_t m, int64_t k,
                                            int64_t t_count) {
  const int64_t expected = t_count * (1 + k + m) + m + k * m;
  if (static_cast<int64_t>(flat.size()) != expected) {
    return InternalError("multi-phenotype aggregate has wrong length");
  }
  // Shared X-side block sits at the tail.
  const size_t x_side = static_cast<size_t>(t_count * (1 + k + m));
  std::vector<ScanResult> results;
  results.reserve(static_cast<size_t>(t_count));
  for (int64_t t = 0; t < t_count; ++t) {
    ScanSufficientStats s;
    s.num_samples = n;
    size_t pos = static_cast<size_t>(t * (1 + k + m));
    s.yy = flat[pos++];
    s.qty.assign(flat.begin() + pos, flat.begin() + pos + k);
    pos += static_cast<size_t>(k);
    s.xy.assign(flat.begin() + pos, flat.begin() + pos + m);
    s.xx.assign(flat.begin() + x_side, flat.begin() + x_side + m);
    s.qtx = Matrix(k, m);
    for (int64_t i = 0; i < s.qtx.size(); ++i) {
      s.qtx.data()[i] = flat[x_side + static_cast<size_t>(m + i)];
    }
    DASH_ASSIGN_OR_RETURN(ScanResult r, FinalizeScan(s));
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace

Result<std::vector<ScanResult>> MultiPhenotypeScan(const Matrix& x,
                                                   const Matrix& ys,
                                                   const Matrix& c,
                                                   const ScanOptions& options) {
  if (x.rows() != ys.rows() || c.rows() != x.rows()) {
    return InvalidArgumentError("x, ys, c disagree on sample count");
  }
  if (x.rows() <= c.cols() + 1) {
    return InvalidArgumentError("need N > K + 1 samples");
  }
  Matrix q(x.rows(), 0);
  if (c.cols() > 0) {
    DASH_ASSIGN_OR_RETURN(QrDecomposition qr, ThinQr(c));
    q = std::move(qr.q);
  }
  // Shared X-side statistics (dummy y).
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  const Vector zero_y(static_cast<size_t>(x.rows()), 0.0);
  ScanSufficientStats shared = ComputeLocalStats(x, zero_y, q, pool.get());
  const PhenotypeSideStats ps = ComputePhenotypeSide(x, ys, q);
  const Vector flat = FlattenMulti(ps, shared.xx, shared.qtx);
  return FinalizeAll(flat, x.rows(), x.cols(), c.cols(), ys.cols());
}

Result<SecureMultiPhenotypeOutput> SecureMultiPhenotypeScan(
    const std::vector<MultiPhenotypePartyData>& parties,
    const SecureScanOptions& options) {
  DASH_RETURN_IF_ERROR(ValidateMultiParties(parties));
  const int num_parties = static_cast<int>(parties.size());
  const int64_t m = parties[0].x.cols();
  const int64_t k = parties[0].c.cols();
  const int64_t t_count = parties[0].ys.cols();

  Network network(num_parties);

  // R combination (as in the single-phenotype protocol).
  Matrix r_inverse(0, 0);
  if (k > 0) {
    std::vector<Matrix> local_r;
    for (const auto& p : parties) {
      DASH_ASSIGN_OR_RETURN(Matrix r, QrRFactor(p.c));
      local_r.push_back(std::move(r));
    }
    DASH_ASSIGN_OR_RETURN(
        DistributedQrResult qr,
        CombineRFactorsOverNetwork(&network, local_r, options.r_combine));
    r_inverse = std::move(qr.r_inverse);
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  std::vector<Vector> flattened;
  int64_t total_samples = 0;
  for (const auto& p : parties) {
    const Matrix q_p =
        (k > 0) ? MatMul(p.c, r_inverse) : Matrix(p.num_samples(), 0);
    const Vector zero_y(static_cast<size_t>(p.num_samples()), 0.0);
    const ScanSufficientStats shared =
        ComputeLocalStats(p.x, zero_y, q_p, pool.get());
    const PhenotypeSideStats ps = ComputePhenotypeSide(p.x, p.ys, q_p);
    flattened.push_back(FlattenMulti(ps, shared.xx, shared.qtx));
    total_samples += p.num_samples();
  }

  SecureSumOptions sum_options;
  sum_options.mode = options.aggregation;
  sum_options.frac_bits = options.frac_bits;
  sum_options.seed = options.seed;
  SecureVectorSum secure_sum(&network, sum_options);
  DASH_ASSIGN_OR_RETURN(Vector flat_totals,
                        secure_sum.Run(ToSecretInputs(std::move(flattened))));

  SecureMultiPhenotypeOutput out;
  DASH_ASSIGN_OR_RETURN(
      out.results, FinalizeAll(flat_totals, total_samples, m, k, t_count));
  out.metrics.total_bytes = network.metrics().total_bytes();
  out.metrics.total_messages = network.metrics().total_messages();
  out.metrics.max_link_bytes = network.metrics().MaxLinkBytes();
  out.metrics.rounds = network.metrics().rounds();
  return out;
}

}  // namespace dash
