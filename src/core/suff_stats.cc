#include "core/suff_stats.h"

#include <string>

#include "util/check.h"

namespace dash {

void ScanSufficientStats::Add(const ScanSufficientStats& other) {
  if (xy.empty() && qty.empty()) {
    *this = other;
    return;
  }
  DASH_CHECK_EQ(num_variants(), other.num_variants());
  DASH_CHECK_EQ(num_covariates(), other.num_covariates());
  num_samples += other.num_samples;
  yy += other.yy;
  for (size_t i = 0; i < qty.size(); ++i) qty[i] += other.qty[i];
  for (size_t i = 0; i < xy.size(); ++i) xy[i] += other.xy[i];
  for (size_t i = 0; i < xx.size(); ++i) xx[i] += other.xx[i];
  for (int64_t i = 0; i < qtx.size(); ++i) qtx.data()[i] += other.qtx.data()[i];
}

ScanSufficientStats ComputeLocalStats(const Matrix& x, const Vector& y,
                                      const Matrix& q, ThreadPool* pool) {
  const int64_t n = x.rows();
  const int64_t m = x.cols();
  const int64_t k = q.cols();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);

  ScanSufficientStats s;
  s.num_samples = n;
  s.yy = SquaredNorm(y);
  s.qty = TransposeMatVec(q, y);
  s.xy.assign(static_cast<size_t>(m), 0.0);
  s.xx.assign(static_cast<size_t>(m), 0.0);
  s.qtx = Matrix(k, m);

  // Column-sharded loop: each worker owns a contiguous range of variants.
  const auto work = [&](int64_t lo, int64_t hi) {
    for (int64_t i = 0; i < n; ++i) {
      const double* xi = x.row_data(i);
      const double yi = y[static_cast<size_t>(i)];
      const double* qi = q.row_data(i);
      for (int64_t j = lo; j < hi; ++j) {
        const double v = xi[j];
        if (v == 0.0) continue;
        s.xy[static_cast<size_t>(j)] += v * yi;
        s.xx[static_cast<size_t>(j)] += v * v;
        for (int64_t kk = 0; kk < k; ++kk) s.qtx(kk, j) += v * qi[kk];
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(0, m, work);
  } else {
    work(0, m);
  }
  return s;
}

ScanSufficientStats ComputeLocalStatsSparse(const SparseColumnMatrix& x,
                                            const Vector& y, const Matrix& q,
                                            ThreadPool* pool) {
  const int64_t n = x.rows();
  const int64_t m = x.cols();
  const int64_t k = q.cols();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);

  ScanSufficientStats s;
  s.num_samples = n;
  s.yy = SquaredNorm(y);
  s.qty = TransposeMatVec(q, y);
  s.xy.assign(static_cast<size_t>(m), 0.0);
  s.xx.assign(static_cast<size_t>(m), 0.0);
  s.qtx = Matrix(k, m);

  const auto work = [&](int64_t lo, int64_t hi) {
    for (int64_t j = lo; j < hi; ++j) {
      double xy = 0.0;
      double xx = 0.0;
      for (const auto& e : x.ColumnEntries(j)) {
        xy += e.value * y[static_cast<size_t>(e.row)];
        xx += e.value * e.value;
        const double* qrow = q.row_data(e.row);
        for (int64_t kk = 0; kk < k; ++kk) s.qtx(kk, j) += e.value * qrow[kk];
      }
      s.xy[static_cast<size_t>(j)] = xy;
      s.xx[static_cast<size_t>(j)] = xx;
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(0, m, work);
  } else {
    work(0, m);
  }
  return s;
}

Vector FlattenStats(const ScanSufficientStats& stats) {
  const int64_t m = stats.num_variants();
  const int64_t k = stats.num_covariates();
  Vector flat;
  flat.reserve(static_cast<size_t>(1 + k + 2 * m + k * m));
  flat.push_back(stats.yy);
  flat.insert(flat.end(), stats.qty.begin(), stats.qty.end());
  flat.insert(flat.end(), stats.xy.begin(), stats.xy.end());
  flat.insert(flat.end(), stats.xx.begin(), stats.xx.end());
  flat.insert(flat.end(), stats.qtx.data(), stats.qtx.data() + stats.qtx.size());
  return flat;
}

Result<ScanSufficientStats> UnflattenStats(const Vector& flat,
                                           int64_t num_variants,
                                           int64_t num_covariates) {
  const int64_t expected = 1 + num_covariates + 2 * num_variants +
                           num_covariates * num_variants;
  if (static_cast<int64_t>(flat.size()) != expected) {
    return InvalidArgumentError(
        "flattened statistics have length " + std::to_string(flat.size()) +
        "; expected " + std::to_string(expected));
  }
  ScanSufficientStats s;
  size_t pos = 0;
  s.yy = flat[pos++];
  s.qty.assign(flat.begin() + pos, flat.begin() + pos + num_covariates);
  pos += static_cast<size_t>(num_covariates);
  s.xy.assign(flat.begin() + pos, flat.begin() + pos + num_variants);
  pos += static_cast<size_t>(num_variants);
  s.xx.assign(flat.begin() + pos, flat.begin() + pos + num_variants);
  pos += static_cast<size_t>(num_variants);
  s.qtx = Matrix(num_covariates, num_variants);
  for (int64_t i = 0; i < s.qtx.size(); ++i) s.qtx.data()[i] = flat[pos++];
  return s;
}

}  // namespace dash
