#include "core/suff_stats.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>

#include "core/kernels/stats_kernels.h"
#include "util/check.h"

namespace dash {
namespace {

// --- Blocked kernel ---------------------------------------------------
//
// One column block owns accumulators for kStatsColBlock columns:
// xy/xx (w doubles each) plus a QᵀX tile laid out covariate-major
// [K x w] (tile[kk * w + jj]), so the hot per-row update is K
// independent length-w axpys over the row's contiguous column slice,
// with q(i, kk) hoisted to a scalar. The tile lands in the wire-order
// K x M destination as K contiguous row copies once per block, after
// the full row sweep.
//
// The dense row-panel micro-kernel comes from the runtime ISA dispatch
// table (src/core/kernels/); blocks whose values all lie in {0, 1, 2}
// are instead repacked into a 2-bit scratch and run through the
// popcount kernel (see ComputeStatsColumnsImpl). Every micro-kernel
// adds to every accumulator element in identical row order (a skipped
// zero contributes exactly nothing; an added ±0.0 term cannot change
// an accumulator that starts at +0.0 under IEEE-754 round-to-nearest),
// so the choice — and the panel boundaries — never change a single
// output bit.

// Sparse micro-kernel: skips zeros, so a mostly-zero genotype panel
// pays O(nnz * K) instead of O(rows * w * K).
void SparsePanel(const double* DASH_RESTRICT x, int64_t x_stride, int64_t rows,
                 const double* DASH_RESTRICT y, const double* DASH_RESTRICT q,
                 int64_t k, int64_t w, double* DASH_RESTRICT xy,
                 double* DASH_RESTRICT xx, double* DASH_RESTRICT tile) {
  for (int64_t i = 0; i < rows; ++i) {
    const double* DASH_RESTRICT xi = x + i * x_stride;
    const double yi = y[i];
    const double* DASH_RESTRICT qi = q + i * k;
    for (int64_t jj = 0; jj < w; ++jj) {
      const double v = xi[jj];
      if (v == 0.0) continue;
      xy[jj] += v * yi;
      xx[jj] += v * v;
      // Strided within the tile, but the tile is L1-resident; per
      // output element the row-ordered add chain matches DensePanel's.
      for (int64_t kk = 0; kk < k; ++kk) tile[kk * w + jj] += v * qi[kk];
    }
  }
}

// Full row sweep for columns [j0, j1); accumulators stay resident for
// the whole sweep so every output element sees one unbroken,
// row-ordered accumulation chain. The block accumulators are SEEDED
// from `out` (the kernel accumulates into its destination; callers
// zero the arena before the first call), so out-of-core sweeps that
// feed row panels through repeated calls continue the identical
// per-element add chain of one full-matrix sweep.
void ComputeColumnBlock(const Matrix& x, const Vector& y, const Matrix& q,
                        int64_t j0, int64_t j1, int64_t col_begin,
                        const StatsBlockView& out, double* tile,
                        const kernels::StatsKernelTable& table) {
  const int64_t n = x.rows();
  const int64_t k = q.cols();
  const int64_t w = j1 - j0;
  const int64_t off = j0 - col_begin;
  double xy_blk[kStatsColBlock];
  double xx_blk[kStatsColBlock];
  std::memcpy(xy_blk, out.xy + off, static_cast<size_t>(w) * sizeof(double));
  std::memcpy(xx_blk, out.xx + off, static_cast<size_t>(w) * sizeof(double));
  for (int64_t kk = 0; kk < k; ++kk) {
    std::memcpy(tile + kk * w, out.qtx + kk * out.qtx_stride + off,
                static_cast<size_t>(w) * sizeof(double));
  }

  for (int64_t p0 = 0; p0 < n; p0 += kStatsRowPanel) {
    const int64_t p1 = std::min(n, p0 + kStatsRowPanel);
    // Measure the panel's density to pick a micro-kernel. The counting
    // pass costs one extra streaming read of the panel — ~1/(K+2) of
    // the compute it steers — and warms the cache for the real pass.
    int64_t nnz = 0;
    for (int64_t i = p0; i < p1; ++i) {
      const double* DASH_RESTRICT xi = x.row_data(i) + j0;
      for (int64_t jj = 0; jj < w; ++jj) nnz += (xi[jj] != 0.0) ? 1 : 0;
    }
    const double* panel_x = x.row_data(p0) + j0;
    const double* panel_y = y.data() + p0;
    const double* panel_q = q.data() + p0 * k;
    const int64_t panel_rows = p1 - p0;
    // Below ~25% density the zero-skipping scalar kernel beats the
    // vectorized branchless one (it drops the whole K-loop per zero).
    if (nnz * 4 >= panel_rows * w) {
      table.dense_panel(panel_x, x.cols(), panel_rows, panel_y, panel_q, k, w,
                        xy_blk, xx_blk, tile);
    } else {
      SparsePanel(panel_x, x.cols(), panel_rows, panel_y, panel_q, k, w,
                  xy_blk, xx_blk, tile);
    }
  }

  std::memcpy(out.xy + off, xy_blk, static_cast<size_t>(w) * sizeof(double));
  std::memcpy(out.xx + off, xx_blk, static_cast<size_t>(w) * sizeof(double));
  // The covariate-major tile rows are already wire order: K contiguous
  // row copies into the K x M destination.
  for (int64_t kk = 0; kk < k; ++kk) {
    std::memcpy(out.qtx + kk * out.qtx_stride + off, tile + kk * w,
                static_cast<size_t>(w) * sizeof(double));
  }
}

// How many consecutive dosage column blocks accumulate into one pack
// scratch before a single popcount-kernel call covers them all. Larger
// groups amortize the kernel's per-call padded-Q build; 8 blocks keeps
// that under ~2% of kernel time while the scratch stays modest
// (N / 4 KiB).
constexpr int64_t kStatsPackGroupBlocks = 8;

// Cheap prefilter before paying for a pack attempt: checks ~64 leading
// values of the block. Float-valued data fails almost immediately;
// PackColumnBlockAt still validates every value it packs.
bool BlockLooksLikeDosage(const Matrix& x, int64_t j0, int64_t j1) {
  const int64_t n = x.rows();
  const int64_t w = j1 - j0;
  int64_t checked = 0;
  for (int64_t i = 0; i < n; ++i) {
    const double* DASH_RESTRICT row = x.row_data(i) + j0;
    for (int64_t jj = 0; jj < w; ++jj) {
      if (!PackedGenotypeMatrix::IsDosageValue(row[jj])) return false;
      if (++checked >= 64) return true;
    }
  }
  return true;
}

// Packs columns [j0, j1) of x into column slots [slot, slot + j1 - j0)
// of `packed`, assembling each 32-row word in a stack buffer and then
// ASSIGNING it (never OR-ing), so the scratch needs no clearing between
// reuses. Returns false when a non-dosage value is hit; the slots
// touched by the failed attempt hold garbage, but a slot is only ever
// read after a later successful pack fully overwrites it.
bool PackColumnBlockAt(const Matrix& x, int64_t j0, int64_t j1, int64_t slot,
                       PackedGenotypeMatrix* packed) {
  const int64_t n = x.rows();
  const int64_t w = j1 - j0;
  const int64_t wpc = packed->words_per_column();
  uint64_t* const words0 = packed->mutable_column_words(0);
  uint64_t buf[kStatsColBlock];
  for (int64_t wi = 0; wi < wpc; ++wi) {
    for (int64_t jj = 0; jj < w; ++jj) buf[jj] = 0;
    const int64_t r0 = wi * PackedGenotypeMatrix::kRowsPerWord;
    const int64_t r1 = std::min(n, r0 + PackedGenotypeMatrix::kRowsPerWord);
    for (int64_t i = r0; i < r1; ++i) {
      const double* DASH_RESTRICT row = x.row_data(i) + j0;
      const int shift =
          static_cast<int>(2 * (i % PackedGenotypeMatrix::kRowsPerWord));
      for (int64_t jj = 0; jj < w; ++jj) {
        const double v = row[jj];
        if (!PackedGenotypeMatrix::IsDosageValue(v)) return false;
        buf[jj] |= static_cast<uint64_t>(v) << shift;
      }
    }
    for (int64_t jj = 0; jj < w; ++jj) {
      words0[(slot + jj) * wpc + wi] = buf[jj];
    }
  }
  return true;
}

// The shared column-block driver behind the dense entry points. When
// allow_pack is set, each column block whose values all lie in {0,1,2}
// is repacked into a lazily allocated per-task 2-bit scratch; runs of
// consecutive packed blocks are flushed to the popcount kernel in
// groups (one padded-Q build per group). Everything else takes the
// dense row-panel sweep. Both paths are bit-identical, so the probe
// can never change an output bit — only the speed.
void ComputeStatsColumnsImpl(const Matrix& x, const Vector& y, const Matrix& q,
                             int64_t col_begin, int64_t col_end,
                             const StatsBlockView& out, ThreadPool* pool,
                             bool allow_pack) {
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), x.rows());
  DASH_CHECK_EQ(q.rows(), x.rows());
  DASH_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= x.cols());
  const int64_t width = col_end - col_begin;
  if (width == 0) return;
  const int64_t k = q.cols();
  const int64_t num_blocks = (width + kStatsColBlock - 1) / kStatsColBlock;
  const kernels::StatsKernelTable& table = kernels::ActiveStatsKernels();

  const auto work = [&](int64_t blk_lo, int64_t blk_hi) {
    // One tile per task, reused across its blocks.
    std::vector<double> tile(static_cast<size_t>(kStatsColBlock) *
                             static_cast<size_t>(std::max<int64_t>(k, 1)));
    // Lazy per-task pack scratch: allocated on the first dosage block,
    // then reused (fully overwritten) by every later group.
    std::optional<PackedGenotypeMatrix> packed;
    int64_t group_j0 = 0;    // first source column of the pending group
    int64_t group_cols = 0;  // packed columns awaiting a kernel call
    const auto flush_group = [&] {
      if (group_cols == 0) return;
      const int64_t off = group_j0 - col_begin;
      const StatsBlockView sub{out.xy + off, out.xx + off, out.qtx + off,
                               out.qtx_stride};
      table.packed_columns(*packed, y.data(), q, 0, group_cols, sub);
      group_cols = 0;
    };
    for (int64_t b = blk_lo; b < blk_hi; ++b) {
      const int64_t j0 = col_begin + b * kStatsColBlock;
      const int64_t j1 = std::min(col_end, j0 + kStatsColBlock);
      bool handled = false;
      if (allow_pack && BlockLooksLikeDosage(x, j0, j1)) {
        if (!packed.has_value()) {
          packed.emplace(x.rows(), kStatsColBlock * kStatsPackGroupBlocks);
        }
        if (group_cols == 0) group_j0 = j0;
        if (PackColumnBlockAt(x, j0, j1, group_cols, &*packed)) {
          group_cols += j1 - j0;
          handled = true;
          if (group_cols + kStatsColBlock > packed->cols()) flush_group();
        }
      }
      if (!handled) {
        flush_group();
        ComputeColumnBlock(x, y, q, j0, j1, col_begin, out, tile.data(),
                           table);
      }
    }
    flush_group();
  };
  if (pool != nullptr && pool->num_threads() > 1 && num_blocks > 1) {
    ParallelForOptions opts;
    opts.min_chunk = 1;  // one cache block is already a coarse grain
    opts.chunks_per_thread = 4;
    pool->ParallelFor(0, num_blocks, opts, work);
  } else {
    work(0, num_blocks);
  }
}

void FillHeader(const Vector& y, const Matrix& q, double* yy, double* qty) {
  *yy = SquaredNorm(y);
  const Vector qty_vec = TransposeMatVec(q, y);
  std::copy(qty_vec.begin(), qty_vec.end(), qty);
}

}  // namespace

void ScanSufficientStats::Add(const ScanSufficientStats& other) {
  // Only a never-assigned accumulator (no samples AND no shape) copies;
  // a genuine M==0 or K==0 summand still carries num_samples/yy and
  // must accumulate. The old `xy.empty() && qty.empty()` test treated
  // any M==0 summand chain as "empty" and dropped accumulated state.
  const bool never_assigned = num_samples == 0 && yy == 0.0 && qty.empty() &&
                              xy.empty() && xx.empty() && qtx.size() == 0;
  if (never_assigned) {
    *this = other;
    return;
  }
  DASH_CHECK_EQ(num_variants(), other.num_variants());
  DASH_CHECK_EQ(num_covariates(), other.num_covariates());
  num_samples += other.num_samples;
  yy += other.yy;
  for (size_t i = 0; i < qty.size(); ++i) qty[i] += other.qty[i];
  for (size_t i = 0; i < xy.size(); ++i) xy[i] += other.xy[i];
  for (size_t i = 0; i < xx.size(); ++i) xx[i] += other.xx[i];
  for (int64_t i = 0; i < qtx.size(); ++i) qtx.data()[i] += other.qtx.data()[i];
}

void ComputeStatsColumns(const Matrix& x, const Vector& y, const Matrix& q,
                         int64_t col_begin, int64_t col_end,
                         const StatsBlockView& out, ThreadPool* pool) {
  ComputeStatsColumnsImpl(x, y, q, col_begin, col_end, out, pool,
                          /*allow_pack=*/true);
}

void ComputeStatsColumnsPacked(const PackedGenotypeMatrix& x, const Vector& y,
                               const Matrix& q, int64_t col_begin,
                               int64_t col_end, const StatsBlockView& out,
                               ThreadPool* pool) {
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), x.rows());
  DASH_CHECK_EQ(q.rows(), x.rows());
  DASH_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= x.cols());
  const int64_t width = col_end - col_begin;
  if (width == 0) return;
  const int64_t num_blocks = (width + kStatsColBlock - 1) / kStatsColBlock;
  const kernels::StatsKernelTable& table = kernels::ActiveStatsKernels();

  // One kernel call per chunk of column blocks (the kernel blocks
  // internally), so its padded-Q build amortizes over the whole chunk.
  const auto work = [&](int64_t blk_lo, int64_t blk_hi) {
    const int64_t lo = col_begin + blk_lo * kStatsColBlock;
    const int64_t hi = std::min(col_end, col_begin + blk_hi * kStatsColBlock);
    const int64_t off = lo - col_begin;
    const StatsBlockView sub{out.xy + off, out.xx + off, out.qtx + off,
                             out.qtx_stride};
    table.packed_columns(x, y.data(), q, lo, hi, sub);
  };
  if (pool != nullptr && pool->num_threads() > 1 && num_blocks > 1) {
    ParallelForOptions opts;
    opts.min_chunk = 1;
    opts.chunks_per_thread = 4;
    pool->ParallelFor(0, num_blocks, opts, work);
  } else {
    work(0, num_blocks);
  }
}

void ComputeStatsColumnsSparse(const SparseColumnMatrix& x, const Vector& y,
                               const Matrix& q, int64_t col_begin,
                               int64_t col_end, const StatsBlockView& out,
                               ThreadPool* pool) {
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), x.rows());
  DASH_CHECK_EQ(q.rows(), x.rows());
  DASH_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= x.cols());
  if (col_end == col_begin) return;
  const int64_t k = q.cols();

  const auto work = [&](int64_t lo, int64_t hi) {
    std::vector<double> proj(static_cast<size_t>(std::max<int64_t>(k, 1)));
    for (int64_t j = lo; j < hi; ++j) {
      // Seeded from `out`: like the blocked and packed kernels, this
      // path accumulates into its destination (a left-fold continued
      // from the caller's arena), keeping streamed row partitions
      // bit-identical to one full sweep.
      const int64_t seed_off = j - col_begin;
      double xyv = out.xy[seed_off];
      double xxv = out.xx[seed_off];
      for (int64_t kk = 0; kk < k; ++kk) {
        proj[static_cast<size_t>(kk)] = out.qtx[kk * out.qtx_stride + seed_off];
      }
      double* DASH_RESTRICT pr = proj.data();
      for (const auto& e : x.ColumnEntries(j)) {
        xyv += e.value * y[static_cast<size_t>(e.row)];
        xxv += e.value * e.value;
        const double* DASH_RESTRICT qrow = q.row_data(e.row);
        for (int64_t kk = 0; kk < k; ++kk) pr[kk] += e.value * qrow[kk];
      }
      const int64_t off = j - col_begin;
      out.xy[off] = xyv;
      out.xx[off] = xxv;
      for (int64_t kk = 0; kk < k; ++kk) {
        out.qtx[kk * out.qtx_stride + off] = proj[static_cast<size_t>(kk)];
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    // Column nnz varies wildly with allele frequency; oversubscribe the
    // chunking so the queue load-balances it.
    ParallelForOptions opts;
    opts.chunks_per_thread = 8;
    pool->ParallelFor(col_begin, col_end, opts, work);
  } else {
    work(col_begin, col_end);
  }
}

ScanSufficientStats ComputeLocalStats(const Matrix& x, const Vector& y,
                                      const Matrix& q, ThreadPool* pool) {
  const int64_t n = x.rows();
  const int64_t m = x.cols();
  const int64_t k = q.cols();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);

  ScanSufficientStats s;
  s.num_samples = n;
  s.yy = SquaredNorm(y);
  s.qty = TransposeMatVec(q, y);
  s.xy.assign(static_cast<size_t>(m), 0.0);
  s.xx.assign(static_cast<size_t>(m), 0.0);
  s.qtx = Matrix(k, m);
  const StatsBlockView out{s.xy.data(), s.xx.data(), s.qtx.data(), m};
  ComputeStatsColumns(x, y, q, 0, m, out, pool);
  return s;
}

ScanSufficientStats ComputeLocalStatsSparse(const SparseColumnMatrix& x,
                                            const Vector& y, const Matrix& q,
                                            ThreadPool* pool) {
  const int64_t n = x.rows();
  const int64_t m = x.cols();
  const int64_t k = q.cols();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);

  ScanSufficientStats s;
  s.num_samples = n;
  s.yy = SquaredNorm(y);
  s.qty = TransposeMatVec(q, y);
  s.xy.assign(static_cast<size_t>(m), 0.0);
  s.xx.assign(static_cast<size_t>(m), 0.0);
  s.qtx = Matrix(k, m);
  const StatsBlockView out{s.xy.data(), s.xx.data(), s.qtx.data(), m};
  // Dosage-valued sparse data repacks into the 2-bit popcount kernel:
  // bit-identical to the legacy per-column path (same ascending-row
  // accumulation order; an explicitly stored zero adds exactly 0.0)
  // and far faster. Anything else falls back to the legacy path.
  if (const auto packed = PackedGenotypeMatrix::TryFromSparse(x)) {
    ComputeStatsColumnsPacked(*packed, y, q, 0, m, out, pool);
  } else {
    ComputeStatsColumnsSparse(x, y, q, 0, m, out, pool);
  }
  return s;
}

ScanSufficientStats ComputeLocalStatsPacked(const PackedGenotypeMatrix& x,
                                            const Vector& y, const Matrix& q,
                                            ThreadPool* pool) {
  const int64_t n = x.rows();
  const int64_t m = x.cols();
  const int64_t k = q.cols();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);

  ScanSufficientStats s;
  s.num_samples = n;
  s.yy = SquaredNorm(y);
  s.qty = TransposeMatVec(q, y);
  s.xy.assign(static_cast<size_t>(m), 0.0);
  s.xx.assign(static_cast<size_t>(m), 0.0);
  s.qtx = Matrix(k, m);
  const StatsBlockView out{s.xy.data(), s.xx.data(), s.qtx.data(), m};
  ComputeStatsColumnsPacked(x, y, q, 0, m, out, pool);
  return s;
}

ScanSufficientStats ComputeLocalStatsDense(const Matrix& x, const Vector& y,
                                           const Matrix& q, ThreadPool* pool) {
  const int64_t n = x.rows();
  const int64_t m = x.cols();
  const int64_t k = q.cols();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);

  ScanSufficientStats s;
  s.num_samples = n;
  s.yy = SquaredNorm(y);
  s.qty = TransposeMatVec(q, y);
  s.xy.assign(static_cast<size_t>(m), 0.0);
  s.xx.assign(static_cast<size_t>(m), 0.0);
  s.qtx = Matrix(k, m);
  const StatsBlockView out{s.xy.data(), s.xx.data(), s.qtx.data(), m};
  ComputeStatsColumnsImpl(x, y, q, 0, m, out, pool, /*allow_pack=*/false);
  return s;
}

Vector ComputeLocalStatsFlat(const Matrix& x, const Vector& y, const Matrix& q,
                             ThreadPool* pool) {
  const int64_t n = x.rows();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);
  const StatsWireLayout layout{x.cols(), q.cols()};
  Vector flat(static_cast<size_t>(layout.total_len()), 0.0);
  FillHeader(y, q, flat.data() + layout.yy_offset(),
             flat.data() + layout.qty_offset());
  const StatsBlockView out{flat.data() + layout.xy_offset(),
                           flat.data() + layout.xx_offset(),
                           flat.data() + layout.qtx_offset(), layout.m};
  ComputeStatsColumns(x, y, q, 0, layout.m, out, pool);
  return flat;
}

Vector ComputeLocalStatsSparseFlat(const SparseColumnMatrix& x, const Vector& y,
                                   const Matrix& q, ThreadPool* pool) {
  const int64_t n = x.rows();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);
  const StatsWireLayout layout{x.cols(), q.cols()};
  Vector flat(static_cast<size_t>(layout.total_len()), 0.0);
  FillHeader(y, q, flat.data() + layout.yy_offset(),
             flat.data() + layout.qty_offset());
  const StatsBlockView out{flat.data() + layout.xy_offset(),
                           flat.data() + layout.xx_offset(),
                           flat.data() + layout.qtx_offset(), layout.m};
  // Same dosage repack as ComputeLocalStatsSparse (bit-identical).
  if (const auto packed = PackedGenotypeMatrix::TryFromSparse(x)) {
    ComputeStatsColumnsPacked(*packed, y, q, 0, layout.m, out, pool);
  } else {
    ComputeStatsColumnsSparse(x, y, q, 0, layout.m, out, pool);
  }
  return flat;
}

Vector ComputeLocalStatsPackedFlat(const PackedGenotypeMatrix& x,
                                   const Vector& y, const Matrix& q,
                                   ThreadPool* pool) {
  const int64_t n = x.rows();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);
  const StatsWireLayout layout{x.cols(), q.cols()};
  Vector flat(static_cast<size_t>(layout.total_len()), 0.0);
  FillHeader(y, q, flat.data() + layout.yy_offset(),
             flat.data() + layout.qty_offset());
  const StatsBlockView out{flat.data() + layout.xy_offset(),
                           flat.data() + layout.xx_offset(),
                           flat.data() + layout.qtx_offset(), layout.m};
  ComputeStatsColumnsPacked(x, y, q, 0, layout.m, out, pool);
  return flat;
}

ScanSufficientStats ComputeLocalStatsScalar(const Matrix& x, const Vector& y,
                                            const Matrix& q, ThreadPool* pool) {
  const int64_t n = x.rows();
  const int64_t m = x.cols();
  const int64_t k = q.cols();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);

  ScanSufficientStats s;
  s.num_samples = n;
  s.yy = SquaredNorm(y);
  s.qty = TransposeMatVec(q, y);
  s.xy.assign(static_cast<size_t>(m), 0.0);
  s.xx.assign(static_cast<size_t>(m), 0.0);
  s.qtx = Matrix(k, m);

  // Column-sharded loop: each worker owns a contiguous range of variants.
  const auto work = [&](int64_t lo, int64_t hi) {
    for (int64_t i = 0; i < n; ++i) {
      const double* xi = x.row_data(i);
      const double yi = y[static_cast<size_t>(i)];
      const double* qi = q.row_data(i);
      for (int64_t j = lo; j < hi; ++j) {
        const double v = xi[j];
        if (v == 0.0) continue;
        s.xy[static_cast<size_t>(j)] += v * yi;
        s.xx[static_cast<size_t>(j)] += v * v;
        for (int64_t kk = 0; kk < k; ++kk) s.qtx(kk, j) += v * qi[kk];
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(0, m, work);
  } else {
    work(0, m);
  }
  return s;
}

ScanSufficientStats ComputeLocalStatsSparseScalar(const SparseColumnMatrix& x,
                                                  const Vector& y,
                                                  const Matrix& q,
                                                  ThreadPool* pool) {
  const int64_t n = x.rows();
  const int64_t m = x.cols();
  const int64_t k = q.cols();
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  DASH_CHECK_EQ(q.rows(), n);

  ScanSufficientStats s;
  s.num_samples = n;
  s.yy = SquaredNorm(y);
  s.qty = TransposeMatVec(q, y);
  s.xy.assign(static_cast<size_t>(m), 0.0);
  s.xx.assign(static_cast<size_t>(m), 0.0);
  s.qtx = Matrix(k, m);

  const auto work = [&](int64_t lo, int64_t hi) {
    for (int64_t j = lo; j < hi; ++j) {
      double xy = 0.0;
      double xx = 0.0;
      for (const auto& e : x.ColumnEntries(j)) {
        xy += e.value * y[static_cast<size_t>(e.row)];
        xx += e.value * e.value;
        const double* qrow = q.row_data(e.row);
        for (int64_t kk = 0; kk < k; ++kk) s.qtx(kk, j) += e.value * qrow[kk];
      }
      s.xy[static_cast<size_t>(j)] = xy;
      s.xx[static_cast<size_t>(j)] = xx;
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(0, m, work);
  } else {
    work(0, m);
  }
  return s;
}

Vector FlattenStats(const ScanSufficientStats& stats) {
  const int64_t m = stats.num_variants();
  const int64_t k = stats.num_covariates();
  const StatsWireLayout layout{m, k};
  Vector flat;
  flat.reserve(static_cast<size_t>(layout.total_len()));
  flat.push_back(stats.yy);
  flat.insert(flat.end(), stats.qty.begin(), stats.qty.end());
  flat.insert(flat.end(), stats.xy.begin(), stats.xy.end());
  flat.insert(flat.end(), stats.xx.begin(), stats.xx.end());
  flat.insert(flat.end(), stats.qtx.data(), stats.qtx.data() + stats.qtx.size());
  return flat;
}

Result<ScanSufficientStats> UnflattenStats(const Vector& flat,
                                           int64_t num_variants,
                                           int64_t num_covariates) {
  const StatsWireLayout layout{num_variants, num_covariates};
  if (static_cast<int64_t>(flat.size()) != layout.total_len()) {
    return InvalidArgumentError(
        "flattened statistics have length " + std::to_string(flat.size()) +
        "; expected " + std::to_string(layout.total_len()));
  }
  ScanSufficientStats s;
  size_t pos = 0;
  s.yy = flat[pos++];
  s.qty.assign(flat.begin() + pos, flat.begin() + pos + num_covariates);
  pos += static_cast<size_t>(num_covariates);
  s.xy.assign(flat.begin() + pos, flat.begin() + pos + num_variants);
  pos += static_cast<size_t>(num_variants);
  s.xx.assign(flat.begin() + pos, flat.begin() + pos + num_variants);
  pos += static_cast<size_t>(num_variants);
  s.qtx = Matrix(num_covariates, num_variants);
  for (int64_t i = 0; i < s.qtx.size(); ++i) s.qtx.data()[i] = flat[pos++];
  return s;
}

uint64_t WireChecksum(const Vector& flat) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const double d : flat) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;  // FNV prime
    }
  }
  return h;
}

uint64_t StatsChecksum(const ScanSufficientStats& stats) {
  return WireChecksum(FlattenStats(stats));
}

}  // namespace dash
