// Grouped association scan: multiple transient covariates per test
// (paper §5: "This approach efficiently generalizes to the case of
// multiple transient covariates (such as interaction terms)").
//
// X holds G groups of T consecutive columns; for each group g the model
//
//   y ~ Normal(X_g B_g + C Gamma, tau² I),   B_g ∈ R^T
//
// is fit jointly and H0: B_g = 0 is tested with the exact F statistic on
// (T, N − K − T) degrees of freedom. The closed form mirrors Lemma 2.1
// with the scalars replaced by T x T residual Gram blocks:
//
//   G_g = X_gᵀX_g − (QᵀX_g)ᵀ(QᵀX_g)     b_g = X_gᵀy − (QᵀX_g)ᵀQᵀy
//   B̂_g = G_g⁻¹ b_g                      F = (b_gᵀB̂_g / T) / (RSS/(N−K−T))
//
// Everything is additive over the horizontal partition, so the secure
// multi-party version aggregates O(G (T² + T K)) values — still
// independent of N and parallel in g.

#ifndef DASH_CORE_GROUPED_SCAN_H_
#define DASH_CORE_GROUPED_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/association_scan.h"
#include "core/secure_scan.h"
#include "data/party_split.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

struct GroupedScanResult {
  Matrix beta;   // T x G joint estimates
  Matrix se;     // T x G per-coefficient standard errors
  Vector fstat;  // length G
  Vector pval;   // length G (F test of the whole group)
  int64_t dof1 = 0;  // T
  int64_t dof2 = 0;  // N - K - T
  int64_t num_untestable = 0;  // groups with singular residual Gram

  int64_t num_groups() const { return static_cast<int64_t>(fstat.size()); }
};

// Single-site grouped scan. x.cols() must be a positive multiple of
// group_size; group g owns columns [g*T, (g+1)*T).
Result<GroupedScanResult> GroupedScan(const Matrix& x, int64_t group_size,
                                      const Vector& y, const Matrix& c,
                                      const ScanOptions& options = {});

struct SecureGroupedScanOutput {
  GroupedScanResult result;
  SecureScanMetrics metrics;
};

// Secure multi-party grouped scan over the usual protocol substrate.
Result<SecureGroupedScanOutput> SecureGroupedScan(
    const std::vector<PartyData>& parties, int64_t group_size,
    const SecureScanOptions& options = {});

// Builds the classic gene-environment interaction design: for each
// column x_m, the pair (x_m, x_m * e) — group_size 2. e must have one
// entry per sample.
Result<Matrix> WithInteractionTerms(const Matrix& x, const Vector& e);

}  // namespace dash

#endif  // DASH_CORE_GROUPED_SCAN_H_
