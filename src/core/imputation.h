// Secure multi-party mean imputation of missing genotypes.
//
// Each party holds NaN-marked missing entries. The global per-variant
// mean dosage is sum_p(column sums) / sum_p(non-missing counts) — two
// more additive statistics, aggregated with the same secure-sum
// machinery as the scan itself. Each party then imputes locally and the
// usual protocol proceeds; the only values revealed are the per-variant
// means and call rates, which the scan's output discloses in spirit
// anyway (a variant's mean dosage is 2x its allele frequency, a
// routinely published quantity — parties preferring otherwise can run
// the aggregation under any of the secure modes).

#ifndef DASH_CORE_IMPUTATION_H_
#define DASH_CORE_IMPUTATION_H_

#include <vector>

#include "core/secure_scan.h"
#include "data/party_split.h"
#include "util/status.h"

namespace dash {

struct SecureImputationOutput {
  Vector means;       // per-variant global mean of the observed entries
  Vector call_rates;  // fraction observed per variant
  int64_t total_missing = 0;
  SecureScanMetrics metrics;
};

// Aggregates global column means over `network`-free in-process parties
// using the configured aggregation mode, then imputes every party's X in
// place. Columns with no observed entries anywhere impute to 0 (and will
// be flagged untestable by the scan). Parties must already validate
// (consistent M).
Result<SecureImputationOutput> SecureMeanImpute(
    std::vector<PartyData>* parties, const SecureScanOptions& options = {});

}  // namespace dash

#endif  // DASH_CORE_IMPUTATION_H_
