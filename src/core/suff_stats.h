// The six sufficient statistics of the association scan (paper §3).
//
// Everything the scan needs beyond public shape information is:
//
//   y.y (scalar)     Qᵀy (K)          — response statistics
//   X.y (M)          X.X (M)          — per-column transient statistics
//   QᵀX (K x M)                        — projected transient covariates
//
// Each party computes its local summand from its own rows; the summands
// add across parties (exactly for the first four by orthogonality of the
// row partition, and by plain linearity for Qᵀy and QᵀX). The total is
// all that FinalizeScan (scan_result.h) consumes — raw data never moves.
//
// Flatten/Unflatten pack a party's summand into one contiguous vector of
// length 1 + K + 2M + K*M so a single secure-sum round aggregates
// everything.

#ifndef DASH_CORE_SUFF_STATS_H_
#define DASH_CORE_SUFF_STATS_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dash {

struct ScanSufficientStats {
  int64_t num_samples = 0;  // public: rows contributing to this summand
  double yy = 0.0;          // y.y
  Vector qty;               // length K
  Vector xy;                // length M
  Vector xx;                // length M
  Matrix qtx;               // K x M

  int64_t num_variants() const { return static_cast<int64_t>(xy.size()); }
  int64_t num_covariates() const { return static_cast<int64_t>(qty.size()); }

  // Element-wise accumulation; shapes must agree (or *this be empty).
  void Add(const ScanSufficientStats& other);
};

// Computes one party's summand given its rows of Q. `pool` may be null
// (serial); otherwise columns of x are sharded across its threads.
ScanSufficientStats ComputeLocalStats(const Matrix& x, const Vector& y,
                                      const Matrix& q,
                                      ThreadPool* pool = nullptr);

// Sparse-X variant: per column costs O(nnz * K) instead of O(N * K).
ScanSufficientStats ComputeLocalStatsSparse(const SparseColumnMatrix& x,
                                            const Vector& y, const Matrix& q,
                                            ThreadPool* pool = nullptr);

// Packs [yy, qty, xy, xx, vec(qtx)] into one vector (num_samples is
// public and travels outside the secure sum).
Vector FlattenStats(const ScanSufficientStats& stats);

// Inverse of FlattenStats given the public shape (M, K).
Result<ScanSufficientStats> UnflattenStats(const Vector& flat,
                                           int64_t num_variants,
                                           int64_t num_covariates);

}  // namespace dash

#endif  // DASH_CORE_SUFF_STATS_H_
