// The six sufficient statistics of the association scan (paper §3).
//
// Everything the scan needs beyond public shape information is:
//
//   y.y (scalar)     Qᵀy (K)          — response statistics
//   X.y (M)          X.X (M)          — per-column transient statistics
//   QᵀX (K x M)                        — projected transient covariates
//
// Each party computes its local summand from its own rows; the summands
// add across parties (exactly for the first four by orthogonality of the
// row partition, and by plain linearity for Qᵀy and QᵀX). The total is
// all that FinalizeScan (scan_result.h) consumes — raw data never moves.
//
// Flatten/Unflatten pack a party's summand into one contiguous vector of
// length 1 + K + 2M + K*M so a single secure-sum round aggregates
// everything. StatsWireLayout fixes the offsets; ComputeLocalStatsFlat
// computes the summand directly into a wire-order arena so nothing is
// copied between the kernel and the transport ("zero-copy flatten").
//
// Kernels. ComputeLocalStats runs the cache-blocked kernel of
// ComputeStatsColumns: columns are tiled into blocks of kStatsColBlock,
// each block's accumulators (X.y, X.X and a covariate-major K×w QᵀX
// tile, so each row's update is K contiguous length-w axpys) live in
// L1 for the whole N-row sweep. Per column block the kernel picks one
// of two paths:
//
//   - Hard-call dosage data (every value in {0, 1, 2}, probed cheaply
//     and verified during packing) is repacked into a per-task 2-bit
//     PackedGenotypeMatrix scratch and handed to the popcount kernel,
//     whose flop count is proportional to the block's nonzeros (claim
//     C6) — it beats the dense path at every genotype density.
//   - Anything else runs the dense row-panel sweep, strip-mined into
//     panels of kStatsRowPanel rows that dispatch to a branchless dense
//     micro-kernel or a zero-skipping sparse one by measured density.
//
// The inner kernels of both paths are runtime ISA-dispatched (portable
// / AVX2 / AVX-512; src/core/kernels/stats_kernels.h, DESIGN.md §13).
// The scalar reference kernels (the original implementation) are kept
// as ComputeLocalStatsScalar / ComputeLocalStatsSparseScalar; every
// dispatchable kernel is BIT-IDENTICAL to them for finite inputs:
// every output element is accumulated over rows in the same order,
// SIMD lanes map to distinct output columns, skipped zeros / added
// ±0.0 contributions cannot change an IEEE-754 accumulator that starts
// at +0.0, and no reduction is ever reassociated
// (tests/core_kernel_identity_test.cc pins this).

#ifndef DASH_CORE_SUFF_STATS_H_
#define DASH_CORE_SUFF_STATS_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/packed_matrix.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dash {

struct ScanSufficientStats {
  int64_t num_samples = 0;  // public: rows contributing to this summand
  double yy = 0.0;          // y.y
  Vector qty;               // length K
  Vector xy;                // length M
  Vector xx;                // length M
  Matrix qtx;               // K x M

  int64_t num_variants() const { return static_cast<int64_t>(xy.size()); }
  int64_t num_covariates() const { return static_cast<int64_t>(qty.size()); }

  // Element-wise accumulation; shapes must agree (or *this be empty).
  // "Empty" means never-assigned (the default-constructed accumulator):
  // no samples AND no shape. A real M==0 or K==0 summand still carries
  // num_samples/yy and accumulates instead of overwriting.
  void Add(const ScanSufficientStats& other);
};

// --- Wire layout ------------------------------------------------------
// Offsets of the statistic blocks inside the flattened vector:
//   [0]                    yy
//   [1, 1+K)               qty
//   [1+K, 1+K+M)           xy
//   [1+K+M, 1+K+2M)        xx
//   [1+K+2M, 1+K+2M+K*M)   qtx, row-major K x M
struct StatsWireLayout {
  int64_t m = 0;  // variants
  int64_t k = 0;  // covariates

  int64_t yy_offset() const { return 0; }
  int64_t qty_offset() const { return 1; }
  int64_t xy_offset() const { return 1 + k; }
  int64_t xx_offset() const { return 1 + k + m; }
  int64_t qtx_offset() const { return 1 + k + 2 * m; }
  int64_t total_len() const { return 1 + k + 2 * m + k * m; }
};

// Destination slices for the column-range kernels, in wire order.
// Column j of the range writes xy[j - col_begin], xx[j - col_begin] and
// qtx[kk * qtx_stride + (j - col_begin)] for each covariate kk.
struct StatsBlockView {
  double* xy = nullptr;
  double* xx = nullptr;
  double* qtx = nullptr;
  int64_t qtx_stride = 0;
};

// Cache-block geometry of the dense kernel. One column block's working
// set is kStatsColBlock * (K + 2) doubles of accumulators — ~10 KiB for
// K = 8 — which stays L1-resident across the whole row sweep; row
// panels of kStatsRowPanel rows are the granularity of the
// dense/sparse micro-kernel dispatch.
inline constexpr int64_t kStatsColBlock = 128;
inline constexpr int64_t kStatsRowPanel = 256;

// ACCUMULATES xy/xx/qtx for columns [col_begin, col_end) of x into
// `out` with the blocked kernel; the caller zeroes the destination
// before the first call. The accumulate contract (shared by all three
// ComputeStatsColumns* entry points) is what lets the out-of-core path
// stream X in row panels: repeated calls over a row partition continue
// each output element's left-folded add chain exactly where the
// previous call left it, so the streamed result is bit-identical to
// one full in-memory sweep (core/streaming_stats.h). Requires finite
// inputs for the bit-identity guarantee (no NaN/Inf in x, y, q).
// `pool` may be null; otherwise column blocks are cost-chunked across
// its threads.
void ComputeStatsColumns(const Matrix& x, const Vector& y, const Matrix& q,
                         int64_t col_begin, int64_t col_end,
                         const StatsBlockView& out, ThreadPool* pool = nullptr);

// Sparse-X variant: per column costs O(nnz * K) instead of O(N * K).
// Same accumulate-into-out contract as ComputeStatsColumns.
void ComputeStatsColumnsSparse(const SparseColumnMatrix& x, const Vector& y,
                               const Matrix& q, int64_t col_begin,
                               int64_t col_end, const StatsBlockView& out,
                               ThreadPool* pool = nullptr);

// Packed-genotype variant: consumes an already 2-bit-packed X with the
// popcount kernel — O(nnz) flops plus one popcount per 32 genotypes.
// Bit-identical to the dense paths on the expanded matrix (missing
// calls expand to 0.0). Same accumulate-into-out contract.
void ComputeStatsColumnsPacked(const PackedGenotypeMatrix& x, const Vector& y,
                               const Matrix& q, int64_t col_begin,
                               int64_t col_end, const StatsBlockView& out,
                               ThreadPool* pool = nullptr);

// Computes one party's summand given its rows of Q. `pool` may be null
// (serial); otherwise column blocks are sharded across its threads.
ScanSufficientStats ComputeLocalStats(const Matrix& x, const Vector& y,
                                      const Matrix& q,
                                      ThreadPool* pool = nullptr);

// Sparse-X variant. Dosage-valued sparse data (every stored value in
// {0, 1, 2} — the common genotype case) is repacked once into the
// 2-bit popcount kernel; anything else runs the legacy per-column
// sparse path. Both are bit-identical to ComputeLocalStatsSparseScalar.
ScanSufficientStats ComputeLocalStatsSparse(const SparseColumnMatrix& x,
                                            const Vector& y, const Matrix& q,
                                            ThreadPool* pool = nullptr);

// Packed-X form for callers that keep genotypes 2-bit packed (the
// steady state of a resident scan service: pack once, scan many).
ScanSufficientStats ComputeLocalStatsPacked(const PackedGenotypeMatrix& x,
                                            const Vector& y, const Matrix& q,
                                            ThreadPool* pool = nullptr);

// Dense-only form of ComputeLocalStats: the same blocked row-panel
// sweep (still ISA-dispatched) but never repacking dosage blocks into
// the 2-bit kernel. The bench baseline ("blocked/*" entries) and an
// escape hatch if a workload's pack probe ever misfires.
ScanSufficientStats ComputeLocalStatsDense(const Matrix& x, const Vector& y,
                                           const Matrix& q,
                                           ThreadPool* pool = nullptr);

// Zero-copy form: the summand computed directly into a contiguous
// wire-order arena (StatsWireLayout), ready for the secure sum with no
// intermediate FlattenStats copy. num_samples is public and travels
// outside the secure sum.
Vector ComputeLocalStatsFlat(const Matrix& x, const Vector& y, const Matrix& q,
                             ThreadPool* pool = nullptr);
Vector ComputeLocalStatsSparseFlat(const SparseColumnMatrix& x, const Vector& y,
                                   const Matrix& q, ThreadPool* pool = nullptr);
Vector ComputeLocalStatsPackedFlat(const PackedGenotypeMatrix& x,
                                   const Vector& y, const Matrix& q,
                                   ThreadPool* pool = nullptr);

// The original scalar kernels, kept as the bit-identity reference for
// tests and as the bench baseline. Semantics match ComputeLocalStats /
// ComputeLocalStatsSparse exactly.
ScanSufficientStats ComputeLocalStatsScalar(const Matrix& x, const Vector& y,
                                            const Matrix& q,
                                            ThreadPool* pool = nullptr);
ScanSufficientStats ComputeLocalStatsSparseScalar(const SparseColumnMatrix& x,
                                                  const Vector& y,
                                                  const Matrix& q,
                                                  ThreadPool* pool = nullptr);

// Packs [yy, qty, xy, xx, vec(qtx)] into one vector (num_samples is
// public and travels outside the secure sum).
Vector FlattenStats(const ScanSufficientStats& stats);

// Inverse of FlattenStats given the public shape (M, K).
Result<ScanSufficientStats> UnflattenStats(const Vector& flat,
                                           int64_t num_variants,
                                           int64_t num_covariates);

// FNV-1a over the IEEE-754 bytes of a flat vector / a summand's wire
// image. Equal checksums <=> bit-identical statistics; benches and the
// kernel-identity tests report these.
uint64_t WireChecksum(const Vector& flat);
uint64_t StatsChecksum(const ScanSufficientStats& stats);

}  // namespace dash

#endif  // DASH_CORE_SUFF_STATS_H_
