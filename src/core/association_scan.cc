#include "core/association_scan.h"

#include <memory>
#include <string>

#include "core/suff_stats.h"
#include "linalg/qr.h"
#include "util/thread_pool.h"

namespace dash {
namespace {

Status ValidateShapes(int64_t x_rows, int64_t y_size, int64_t c_rows,
                      int64_t k) {
  if (x_rows != y_size || c_rows != x_rows) {
    return InvalidArgumentError("x, y, c disagree on sample count");
  }
  if (x_rows <= k + 1) {
    return InvalidArgumentError(
        "need N > K + 1 samples (N=" + std::to_string(x_rows) +
        ", K=" + std::to_string(k) + ")");
  }
  return Status::Ok();
}

std::unique_ptr<ThreadPool> MakePool(const ScanOptions& options) {
  if (options.num_threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(options.num_threads);
}

// Orthonormal basis of col(c); the K = 0 case (no covariates, e.g. the
// per-party-centering mode) yields an empty N x 0 basis.
Result<Matrix> CovariateBasis(const Matrix& c) {
  if (c.cols() == 0) return Matrix(c.rows(), 0);
  DASH_ASSIGN_OR_RETURN(QrDecomposition qr, ThinQr(c));
  return std::move(qr.q);
}

}  // namespace

Result<ScanResult> AssociationScan(const Matrix& x, const Vector& y,
                                   const Matrix& c,
                                   const ScanOptions& options) {
  DASH_RETURN_IF_ERROR(ValidateShapes(x.rows(), static_cast<int64_t>(y.size()),
                                      c.rows(), c.cols()));
  DASH_ASSIGN_OR_RETURN(Matrix q, CovariateBasis(c));
  std::unique_ptr<ThreadPool> pool = MakePool(options);
  const ScanSufficientStats stats = ComputeLocalStats(x, y, q, pool.get());
  return FinalizeScan(stats);
}

Result<ScanResult> AssociationScanSparse(const SparseColumnMatrix& x,
                                         const Vector& y, const Matrix& c,
                                         const ScanOptions& options) {
  DASH_RETURN_IF_ERROR(ValidateShapes(x.rows(), static_cast<int64_t>(y.size()),
                                      c.rows(), c.cols()));
  DASH_ASSIGN_OR_RETURN(Matrix q, CovariateBasis(c));
  std::unique_ptr<ThreadPool> pool = MakePool(options);
  const ScanSufficientStats stats =
      ComputeLocalStatsSparse(x, y, q, pool.get());
  return FinalizeScan(stats);
}

}  // namespace dash
