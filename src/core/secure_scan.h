// DASH: the secure multi-party association scan (paper §3).
//
// P parties hold horizontal slices (X_p, y_p, C_p) of a pooled study.
// The protocol computes exactly the pooled scan's beta-hat, standard
// errors, t-statistics and p-values while exchanging only:
//
//   1. K x K local R factors (combined by broadcast-stack or binary
//      tree) — independent of N;
//   2. one secure-sum aggregation of the sufficient statistics
//      (1 + K + 2M + K*M values) — O(M) per link, independent of N.
//
// Per-party computation is the same ComputeLocalStats kernel the
// plaintext scan uses, which is the paper's "plaintext speed" property;
// the traffic counters exported in SecureScanOutput back the O(M)
// communication claim (experiments E2 and E3).

#ifndef DASH_CORE_SECURE_SCAN_H_
#define DASH_CORE_SECURE_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/distributed_qr.h"
#include "net/trace.h"
#include "core/scan_result.h"
#include "data/party_split.h"
#include "mpc/secure_sum.h"
#include "util/status.h"

namespace dash {

// What the protocol reveals about the projected statistics.
enum class ProjectionSecurity {
  // Reveal the aggregated K-vectors Qᵀy and QᵀX (the paper's baseline:
  // "sharing them to sum or applying an SMC sum protocol").
  kRevealProjectedSums = 0,
  // Reveal only the dot products Lemma 2.1 consumes, via Beaver-triple
  // multiplication on the summands (the paper's "for even greater
  // security" variant). Costs O(KM) traffic instead of O(M).
  kBeaverDotProducts = 1,
};

const char* ProjectionSecurityName(ProjectionSecurity security);

struct SecureScanOptions {
  // How the sufficient-statistic summands are aggregated.
  AggregationMode aggregation = AggregationMode::kMasked;

  // How the per-party R factors are combined.
  RCombineMode r_combine = RCombineMode::kBroadcastStack;

  // Whether the projected statistics are revealed as sums or only as
  // the final dot products.
  ProjectionSecurity projection = ProjectionSecurity::kRevealProjectedSums;

  // Fixed-point bits for the Beaver products (results carry 2x this;
  // see mpc/secure_projection.h for the headroom trade-off).
  int projection_frac_bits = 20;

  // Fixed-point precision for the ring/field secure sums.
  int frac_bits = FixedPointCodec::kDefaultFracBits;

  // Threads for the per-party statistics pass.
  int num_threads = 1;

  // > 0 enables the block-pipelined aggregation (reveal-sums only): the
  // variants are partitioned into blocks of this many columns and the
  // single statistics secure-sum is replaced by a header round
  // [yy, qty] plus one round per block [xy, xx, qtx columns], letting a
  // party compute block b+1 while block b's aggregate is in flight on
  // the transport (core/scan_pipeline.h). The revealed result is
  // bit-identical to the one-shot aggregation in every mode; rounds and
  // message counts grow with the block count. 0 = one-shot (default).
  int64_t pipeline_block_variants = 0;

  // Center y, C, and X within each party before scanning. Exactly
  // equivalent to adding one batch-indicator covariate per party (the
  // paper's closing §3 note); supply C WITHOUT an intercept column in
  // this mode. Degrees of freedom account for the P absorbed indicators.
  bool center_per_party = false;

  // Run a final commit round: every party broadcasts the FNV-1a
  // checksum of its revealed result (MessageTag::kCommit) and
  // cross-checks its peers'. A mismatch — the signature of an
  // undetected fault such as a same-tag reorder — fails the scan with
  // DataLoss("result divergence ...") instead of letting parties walk
  // away with silently different numbers. One extra round of
  // 8-byte payloads; both backends run it so traffic stays comparable.
  bool commit_round = true;

  // Seed for protocol randomness (shares, masks, DH exponents).
  uint64_t seed = 0xda5b;

  // Optional transcript recorder (net/trace.h); when non-null, every
  // protocol message's metadata is appended to it. Must outlive Run().
  ProtocolTrace* trace = nullptr;
};

// Cost accounting captured from the simulated network and timers.
struct SecureScanMetrics {
  int64_t total_bytes = 0;
  int64_t total_messages = 0;
  int64_t max_link_bytes = 0;
  int rounds = 0;
  double local_compute_seconds = 0.0;  // QR, Q_p, statistics kernels
  double protocol_seconds = 0.0;       // R combination + secure sums
  // True when a cached Phase-1 state was reused (party_runner.h
  // Phase1State): the sample-count and R-combination rounds were
  // replaced by a single kPhase1Probe round.
  bool phase1_cache_hit = false;
  // Out-of-core accounting (RunPartySecureScanStreamed only; see
  // core/streaming_stats.h). resumed_from_panel > 0 means this run
  // continued a prior run's checkpoint instead of starting at panel 0.
  bool streamed = false;
  int64_t resumed_from_panel = 0;
  int64_t panels_streamed = 0;
  int64_t checkpoints_written = 0;
};

struct SecureScanOutput {
  ScanResult result;
  SecureScanMetrics metrics;
};

class SecureAssociationScan {
 public:
  explicit SecureAssociationScan(const SecureScanOptions& options = {});

  // Runs the full protocol across all parties in-process (over a private
  // InProcessTransport) and returns the revealed scan (identical at
  // every party) plus cost metrics.
  Result<SecureScanOutput> Run(const std::vector<PartyData>& parties) const;

  // Same, but over a caller-supplied transport, so callers can inspect
  // per-link metrics or attach a trace at the transport level. The
  // transport must carry all parties in-process (local_party() == -1)
  // and have one slot per party; to run ONE party of the protocol over a
  // real network, use RunPartySecureScan (transport/party_runner.h).
  Result<SecureScanOutput> Run(const std::vector<PartyData>& parties,
                               Transport* transport) const;

  const SecureScanOptions& options() const { return options_; }

 private:
  SecureScanOptions options_;
};

// Extends FinalizeScan with preprocessing-absorbed parameters: dof =
// N − K − 1 − absorbed_params (absorbed_params = P when per-party
// centering stands in for P batch indicators).
Result<ScanResult> FinalizeScanWithAbsorbedParams(
    const ScanSufficientStats& totals, int64_t absorbed_params);

}  // namespace dash

#endif  // DASH_CORE_SECURE_SCAN_H_
