// Leave-one-party-out sensitivity analysis.
//
// Consortium QC question: is a hit driven by every cohort, or by one?
// Because the compressed statistics are additive, the scan excluding any
// single party is "aggregate of everyone minus that party" — computable
// from the per-party accumulators with NO additional data access. The
// full analysis (P leave-one-out scans plus the all-party scan) costs
// one pass of local arithmetic.
//
// Privacy note: in the secure setting, publishing leave-one-out results
// reveals per-party differences by construction — this is an opt-in
// diagnostic for consortia that already exchange per-cohort summary
// statistics (as meta-analyses do).

#ifndef DASH_CORE_SENSITIVITY_H_
#define DASH_CORE_SENSITIVITY_H_

#include <vector>

#include "core/compressed_study.h"
#include "core/scan_result.h"
#include "util/status.h"

namespace dash {

struct LeaveOneOutResult {
  ScanResult all_parties;
  // leave_out[p] = scan with party p's samples removed.
  std::vector<ScanResult> leave_out;

  // Influence of party p on variant m: |beta_all - beta_without_p| in
  // units of the all-party standard error. NaN where either scan is
  // untestable.
  double Influence(size_t party, int64_t variant) const;

  // For one variant, the party whose removal moves beta the most.
  int64_t MostInfluentialParty(int64_t variant) const;
};

// Runs the all-party and every leave-one-out scan for `phenotype` with
// the given covariate subset (empty vector = no covariates; use
// ScanAllCovariates semantics by passing all indices). Requires >= 2
// parties and enough samples remaining in every leave-one-out subset.
Result<LeaveOneOutResult> LeaveOnePartyOut(
    const std::vector<CompressedStudy>& party_accumulators,
    int64_t phenotype, const std::vector<int64_t>& covariate_subset);

}  // namespace dash

#endif  // DASH_CORE_SENSITIVITY_H_
