#include "core/mixed_model.h"

#include <cmath>

#include "linalg/eigen_sym.h"
#include "stats/descriptive.h"

namespace dash {

Matrix ComputeGrm(const Matrix& genotypes) {
  const int64_t n = genotypes.rows();
  const int64_t m = genotypes.cols();
  // Column-standardize, skipping monomorphic variants.
  Matrix z(n, m);
  int64_t used = 0;
  for (int64_t j = 0; j < m; ++j) {
    double mean = 0.0;
    for (int64_t i = 0; i < n; ++i) mean += genotypes(i, j);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double d = genotypes(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<double>(n > 1 ? n - 1 : 1);
    if (var <= 0.0) continue;
    const double inv_sd = 1.0 / std::sqrt(var);
    for (int64_t i = 0; i < n; ++i) {
      z(i, used) = (genotypes(i, j) - mean) * inv_sd;
    }
    ++used;
  }
  const Matrix zu = SliceCols(z, 0, used);
  Matrix grm = MatMul(zu, Transpose(zu));
  const double scale = used > 0 ? 1.0 / static_cast<double>(used) : 0.0;
  for (int64_t i = 0; i < grm.size(); ++i) grm.data()[i] *= scale;
  return grm;
}

Result<MixedModelTransform> MixedModelTransform::Build(const Matrix& kinship,
                                                       double delta) {
  if (kinship.rows() != kinship.cols()) {
    return InvalidArgumentError("kinship matrix must be square");
  }
  if (!(delta >= 0.0)) {
    return InvalidArgumentError("delta must be non-negative");
  }
  DASH_ASSIGN_OR_RETURN(SymmetricEigen eig, JacobiEigenSymmetric(kinship));

  const int64_t n = kinship.rows();
  MixedModelTransform t;
  t.delta_ = delta;
  t.eigenvalues_ = eig.eigenvalues;
  t.rotation_ = Matrix(n, n);
  for (int64_t i = 0; i < n; ++i) {
    const double s = eig.eigenvalues[static_cast<size_t>(i)];
    const double denom = delta * s + 1.0;
    if (!(denom > 1e-10)) {
      return FailedPreconditionError(
          "delta * eigenvalue + 1 is not positive; kinship is too "
          "negative-definite for this delta");
    }
    const double w = 1.0 / std::sqrt(denom);
    // Row i of the rotation is w_i * (column i of U)ᵀ.
    for (int64_t j = 0; j < n; ++j) {
      t.rotation_(i, j) = w * eig.eigenvectors(j, i);
    }
  }
  return t;
}

Vector MixedModelTransform::ApplyToVector(const Vector& v) const {
  return MatVec(rotation_, v);
}

Matrix MixedModelTransform::ApplyToMatrix(const Matrix& m) const {
  return MatMul(rotation_, m);
}

Result<ScanResult> MixedModelScan(const Matrix& x, const Vector& y,
                                  const Matrix& c, const Matrix& kinship,
                                  double delta, const ScanOptions& options) {
  if (kinship.rows() != x.rows()) {
    return InvalidArgumentError("kinship must match the sample count");
  }
  DASH_ASSIGN_OR_RETURN(MixedModelTransform t,
                        MixedModelTransform::Build(kinship, delta));
  const Matrix wx = t.ApplyToMatrix(x);
  const Vector wy = t.ApplyToVector(y);
  const Matrix wc = t.ApplyToMatrix(c);
  return AssociationScan(wx, wy, wc, options);
}

}  // namespace dash
