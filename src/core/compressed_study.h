// Cᵀ-compressed study: post-hoc covariate and phenotype selection
// (paper §5: "one can alternatively compress using Cᵀ rather than Qᵀ to
// preserve the ability to select phenotypes and covariates
// post-compression").
//
// Compressing with Qᵀ bakes the covariate set into the statistics (Q is
// an orthonormal basis of a FIXED C). Compressing with Cᵀ instead stores
//
//   YᵀY (T x T)   CᵀY (K x T)   CᵀC (K x K)
//   XᵀY (M x T)   diag(XᵀX) (M)  CᵀX (K x M)
//
// — all additive across parties and batches — from which the scan for
// ANY covariate subset S and ANY phenotype t is recovered exactly:
// with CᵀC[S,S] = L Lᵀ, the Qᵀ-statistics are L⁻¹·(Cᵀ·)[S]. One secure
// aggregation therefore supports an entire downstream analysis session
// (sensitivity analyses, covariate ablations, per-phenotype scans)
// with no further communication.

#ifndef DASH_CORE_COMPRESSED_STUDY_H_
#define DASH_CORE_COMPRESSED_STUDY_H_

#include <cstdint>
#include <vector>

#include "core/multi_phenotype_scan.h"
#include "core/scan_result.h"
#include "core/secure_scan.h"
#include "data/party_split.h"
#include "util/status.h"

namespace dash {

class CompressedStudy {
 public:
  // Builds the compressed statistics from pooled data (single site).
  static Result<CompressedStudy> Compress(const Matrix& x, const Matrix& ys,
                                          const Matrix& c);

  // Secure multi-party compression: one aggregation round over the
  // configured secure-sum mode; the resulting object is public (it is
  // exactly what the protocol reveals). See SecureCompressOutput below.
  struct SecureOutput;
  static Result<SecureOutput> SecureCompress(
      const std::vector<MultiPhenotypePartyData>& parties,
      const SecureScanOptions& options = {});

  // Securely aggregates per-party compressed accumulators (all shapes
  // must match) into one public study. This is the communication step of
  // the online setting (core/secure_online_scan.h): parties keep merging
  // local batches into their accumulator and re-aggregate whenever a
  // fresh result is wanted.
  static Result<SecureOutput> SecureAggregate(
      const std::vector<CompressedStudy>& locals,
      const SecureScanOptions& options = {});

  // Same, over a caller-supplied in-process transport (one slot per
  // accumulator); the default overload creates a private one.
  static Result<SecureOutput> SecureAggregate(
      const std::vector<CompressedStudy>& locals,
      const SecureScanOptions& options, Transport* transport);

  int64_t num_samples() const { return n_; }
  int64_t num_variants() const { return m_; }
  int64_t num_covariates() const { return k_; }
  int64_t num_phenotypes() const { return t_; }

  // Scan phenotype `phenotype` adjusting for the covariate columns in
  // `covariate_subset` (indices into the original C; empty = none).
  // Fails on out-of-range indices, duplicate indices, or a singular
  // selected Gram block.
  Result<ScanResult> Scan(int64_t phenotype,
                          const std::vector<int64_t>& covariate_subset) const;

  // Convenience: all covariates.
  Result<ScanResult> ScanAllCovariates(int64_t phenotype = 0) const;

  // Merges another compressed block (more samples) into this one;
  // shapes must match. This is what makes the online setting work.
  Status Merge(const CompressedStudy& other);

 private:
  CompressedStudy() = default;

  static CompressedStudy FromBlock(const Matrix& x, const Matrix& ys,
                                   const Matrix& c);
  Vector Flatten() const;
  static Result<CompressedStudy> Unflatten(const Vector& flat, int64_t n,
                                           int64_t m, int64_t k, int64_t t);
  int64_t FlatLength() const;

  int64_t n_ = 0;
  int64_t m_ = 0;
  int64_t k_ = 0;
  int64_t t_ = 0;
  Matrix yty_;  // T x T
  Matrix cty_;  // K x T
  Matrix ctc_;  // K x K
  Matrix xty_;  // M x T
  Vector xx_;   // M
  Matrix ctx_;  // K x M
};

struct CompressedStudy::SecureOutput {
  CompressedStudy study;
  SecureScanMetrics metrics;
};

}  // namespace dash

#endif  // DASH_CORE_COMPRESSED_STUDY_H_
