// Secure online GWAS: the preface's "secure multi-party GWAS ... done on
// a public cloud in online fashion as new batches of samples come
// online".
//
// Each party folds enrollment batches into a local Cᵀ-compressed
// accumulator (additive, each batch touched once — core/online_scan.h);
// whenever a fresh genome-wide result is wanted, one secure aggregation
// of the accumulators is run and the scan finalized. Between
// re-aggregations there is ZERO communication; each re-aggregation costs
// the usual O(M) bytes regardless of how many samples have accumulated.

#ifndef DASH_CORE_SECURE_ONLINE_SCAN_H_
#define DASH_CORE_SECURE_ONLINE_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/compressed_study.h"
#include "core/scan_result.h"
#include "core/secure_scan.h"
#include "util/status.h"

namespace dash {

class SecureOnlineScan {
 public:
  // Fixes the study shape: `num_parties` institutions, M variants,
  // K permanent covariates.
  SecureOnlineScan(int num_parties, int64_t num_variants,
                   int64_t num_covariates,
                   const SecureScanOptions& options = {});

  // Folds a batch of party `party`'s new samples into its local
  // accumulator. Purely local — no communication.
  Status AddBatch(int party, const Matrix& x, const Vector& y,
                  const Matrix& c);

  // Runs one secure aggregation of the current accumulators and returns
  // the scan over everything seen so far. Callable repeatedly; requires
  // N > K + 1 accumulated samples overall.
  Result<SecureScanOutput> Finalize() const;

  // Same, over a caller-supplied in-process transport (transport-level
  // metrics/trace accumulate across repeated finalizations).
  Result<SecureScanOutput> Finalize(Transport* transport) const;

  int64_t samples_seen() const;
  int64_t batches_seen() const { return batches_; }
  int num_parties() const { return static_cast<int>(accumulators_.size()); }

 private:
  int64_t num_variants_;
  int64_t num_covariates_;
  SecureScanOptions options_;
  std::vector<CompressedStudy> accumulators_;  // one per party
  std::vector<bool> has_data_;
  int64_t batches_ = 0;
};

}  // namespace dash

#endif  // DASH_CORE_SECURE_ONLINE_SCAN_H_
