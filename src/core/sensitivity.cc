#include "core/sensitivity.h"

#include <cmath>
#include <string>

#include "util/check.h"

namespace dash {

double LeaveOneOutResult::Influence(size_t party, int64_t variant) const {
  DASH_CHECK(party < leave_out.size());
  const size_t i = static_cast<size_t>(variant);
  const double base = all_parties.beta[i];
  const double without = leave_out[party].beta[i];
  const double se = all_parties.se[i];
  if (std::isnan(base) || std::isnan(without) || !(se > 0.0)) {
    return std::nan("");
  }
  return std::fabs(base - without) / se;
}

int64_t LeaveOneOutResult::MostInfluentialParty(int64_t variant) const {
  int64_t best = -1;
  double best_influence = -1.0;
  for (size_t p = 0; p < leave_out.size(); ++p) {
    const double inf = Influence(p, variant);
    if (!std::isnan(inf) && inf > best_influence) {
      best_influence = inf;
      best = static_cast<int64_t>(p);
    }
  }
  return best;
}

Result<LeaveOneOutResult> LeaveOnePartyOut(
    const std::vector<CompressedStudy>& party_accumulators,
    int64_t phenotype, const std::vector<int64_t>& covariate_subset) {
  if (party_accumulators.size() < 2) {
    return InvalidArgumentError(
        "leave-one-out needs at least two parties");
  }
  // Total = fold of all accumulators.
  CompressedStudy total = party_accumulators[0];
  for (size_t p = 1; p < party_accumulators.size(); ++p) {
    DASH_RETURN_IF_ERROR(total.Merge(party_accumulators[p]));
  }

  LeaveOneOutResult out;
  DASH_ASSIGN_OR_RETURN(out.all_parties,
                        total.Scan(phenotype, covariate_subset));
  out.leave_out.reserve(party_accumulators.size());
  for (size_t skip = 0; skip < party_accumulators.size(); ++skip) {
    // Rebuild without party `skip` (statistics are additive; summing the
    // others is numerically cleaner than subtracting).
    size_t first = (skip == 0) ? 1 : 0;
    CompressedStudy without = party_accumulators[first];
    for (size_t p = first + 1; p < party_accumulators.size(); ++p) {
      if (p == skip) continue;
      DASH_RETURN_IF_ERROR(without.Merge(party_accumulators[p]));
    }
    auto scan = without.Scan(phenotype, covariate_subset);
    if (!scan.ok()) {
      return Status(scan.status().code(),
                    "leave-one-out scan without party " +
                        std::to_string(skip) + ": " +
                        scan.status().message());
    }
    out.leave_out.push_back(std::move(scan).value());
  }
  return out;
}

}  // namespace dash
