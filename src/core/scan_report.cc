#include "core/scan_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "stats/multiple_testing.h"
#include "stats/pca.h"

namespace dash {

std::string RenderScanReport(const ScanResult& scan,
                             const ScanReportOptions& options) {
  std::ostringstream os;
  const int64_t m = scan.num_variants();
  os << "DASH association scan report\n";
  os << "============================\n";
  os << "variants tested : " << (m - scan.num_untestable) << " of " << m;
  if (scan.num_untestable > 0) {
    os << "  (" << scan.num_untestable << " untestable)";
  }
  os << "\n";
  os << "degrees of freedom : " << scan.dof << "\n";

  bool any_finite = false;
  for (const double t : scan.tstat) any_finite = any_finite || !std::isnan(t);
  if (any_finite) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", GenomicControlLambda(scan.tstat));
    os << "genomic control lambda : " << buf << "\n";
  }

  const Vector bonferroni = BonferroniAdjust(scan.pval);
  const Vector bh = BenjaminiHochbergAdjust(scan.pval);
  os << "significant at alpha=" << options.alpha << " : "
     << SignificantAt(bonferroni, options.alpha).size() << " (Bonferroni), "
     << SignificantAt(bh, options.alpha).size() << " (BH FDR)\n\n";

  // Top hits by raw p-value.
  std::vector<int64_t> order;
  for (int64_t j = 0; j < m; ++j) {
    if (!std::isnan(scan.pval[static_cast<size_t>(j)])) order.push_back(j);
  }
  std::sort(order.begin(), order.end(), [&scan](int64_t a, int64_t b) {
    return scan.pval[static_cast<size_t>(a)] < scan.pval[static_cast<size_t>(b)];
  });
  const int64_t rows =
      std::min<int64_t>(options.top_hits, static_cast<int64_t>(order.size()));
  const int ci_pct = static_cast<int>(std::lround(100 * options.confidence_level));
  os << "top " << rows << " hits (CI at " << ci_pct << "%):\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-10s %12s %24s %12s %12s\n", "variant",
                "beta", "confidence interval", "p", "p (BH)");
  os << line;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t j = order[static_cast<size_t>(r)];
    const size_t i = static_cast<size_t>(j);
    const double hw =
        ConfidenceHalfWidth(scan.se[i], scan.dof, options.confidence_level);
    char ci[64];
    std::snprintf(ci, sizeof(ci), "[%+.4f, %+.4f]", scan.beta[i] - hw,
                  scan.beta[i] + hw);
    std::snprintf(line, sizeof(line), "%-10lld %+12.5f %24s %12.3e %12.3e\n",
                  static_cast<long long>(j), scan.beta[i], ci, scan.pval[i],
                  bh[i]);
    os << line;
  }
  return os.str();
}

Status WriteScanReport(const ScanResult& scan, const std::string& path,
                       const ScanReportOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return IoError("cannot open '" + path + "' for writing");
  out << RenderScanReport(scan, options);
  if (!out) return IoError("write to '" + path + "' failed");
  return Status::Ok();
}

}  // namespace dash
