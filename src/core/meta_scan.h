// Meta-analysis scan: the status-quo baseline DASH is compared against.
//
// Each party runs the association scan on its own data; per variant the
// within-party (beta_p, se_p) are combined by inverse-variance
// meta-analysis (fixed-effect, plus DerSimonian-Laird random-effects).
// Only the per-party summary statistics cross the trust boundary — the
// same disclosure model under which consortia meta-analyze today.
//
// Experiment E5 quantifies the cost relative to pooled DASH: noisier
// standard errors (each party estimates its own residual variance and
// covariate projection) and vulnerability to between-party heterogeneity
// (Simpson's paradox) when the pooled analysis is run naively.

#ifndef DASH_CORE_META_SCAN_H_
#define DASH_CORE_META_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/association_scan.h"
#include "data/party_split.h"
#include "util/status.h"

namespace dash {

struct MetaScanResult {
  // Fixed-effect combination per variant.
  Vector beta;
  Vector se;
  Vector z;
  Vector pval;
  // Heterogeneity diagnostics.
  Vector cochran_q;
  Vector q_pval;
  // Random-effects (DerSimonian-Laird) combination per variant.
  Vector re_beta;
  Vector re_se;
  Vector re_pval;
  Vector tau2;

  int64_t num_variants() const { return static_cast<int64_t>(beta.size()); }
};

// Runs per-party scans and combines them. Every party needs
// N_p > K + 1 samples; variants untestable in any party are NaN.
Result<MetaScanResult> MetaAnalysisScan(const std::vector<PartyData>& parties,
                                        const ScanOptions& options = {});

}  // namespace dash

#endif  // DASH_CORE_META_SCAN_H_
