// Runtime ISA probe and the function-pointer dispatch table.
//
// DASH_HAVE_X86_KERNELS is defined by the build exactly when the AVX2 /
// AVX-512 translation units are compiled in (x86-64 targets); on other
// architectures only the portable table exists and the probe reports it
// as the sole available ISA.

#include "core/kernels/stats_kernels.h"

#include <cstdlib>

#include "util/check.h"

namespace dash {
namespace kernels {
namespace {

const StatsKernelTable kPortableTable{StatsIsa::kPortable, DensePanelPortable,
                                      PackedColumnsPortable};
#ifdef DASH_HAVE_X86_KERNELS
const StatsKernelTable kAvx2Table{StatsIsa::kAvx2, DensePanelAvx2,
                                  PackedColumnsAvx2};
const StatsKernelTable kAvx512Table{StatsIsa::kAvx512, DensePanelAvx512,
                                    PackedColumnsAvx512};
#endif

// The testing override; read by ActiveStatsKernels on every call so a
// test can flip ISAs between scans. Plain pointer, tests only.
const StatsKernelTable* g_forced_table = nullptr;

bool CpuSupports(StatsIsa isa) {
  switch (isa) {
    case StatsIsa::kPortable:
      return true;
    case StatsIsa::kAvx2:
#ifdef DASH_HAVE_X86_KERNELS
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case StatsIsa::kAvx512:
#ifdef DASH_HAVE_X86_KERNELS
      // The AVX-512 unit is compiled with f+bw+dq+vl; require them all.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
  }
  return false;
}

const StatsKernelTable* TableFor(StatsIsa isa) {
  switch (isa) {
    case StatsIsa::kPortable:
      return &kPortableTable;
#ifdef DASH_HAVE_X86_KERNELS
    case StatsIsa::kAvx2:
      return &kAvx2Table;
    case StatsIsa::kAvx512:
      return &kAvx512Table;
#else
    case StatsIsa::kAvx2:
    case StatsIsa::kAvx512:
      break;
#endif
  }
  return nullptr;
}

// Resolves DASH_FORCE_ISA / the cpuid probe exactly once.
const StatsKernelTable* ResolveDefaultTable() {
  const char* forced = std::getenv("DASH_FORCE_ISA");
  if (forced != nullptr && forced[0] != '\0') {
    StatsIsa isa;
    DASH_CHECK(ParseStatsIsa(forced, &isa))
        << "DASH_FORCE_ISA must be portable, avx2 or avx512; got '" << forced
        << "'";
    DASH_CHECK(CpuSupports(isa))
        << "DASH_FORCE_ISA=" << forced
        << " requests an ISA this build/CPU does not support";
    return TableFor(isa);
  }
  if (CpuSupports(StatsIsa::kAvx512)) return TableFor(StatsIsa::kAvx512);
  if (CpuSupports(StatsIsa::kAvx2)) return TableFor(StatsIsa::kAvx2);
  return &kPortableTable;
}

}  // namespace

const char* StatsIsaName(StatsIsa isa) {
  switch (isa) {
    case StatsIsa::kPortable:
      return "portable";
    case StatsIsa::kAvx2:
      return "avx2";
    case StatsIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseStatsIsa(const std::string& name, StatsIsa* isa) {
  if (name == "portable") {
    *isa = StatsIsa::kPortable;
  } else if (name == "avx2") {
    *isa = StatsIsa::kAvx2;
  } else if (name == "avx512") {
    *isa = StatsIsa::kAvx512;
  } else {
    return false;
  }
  return true;
}

const StatsKernelTable& ActiveStatsKernels() {
  if (g_forced_table != nullptr) return *g_forced_table;
  static const StatsKernelTable* table = ResolveDefaultTable();
  return *table;
}

std::vector<StatsIsa> AvailableStatsIsas() {
  std::vector<StatsIsa> isas{StatsIsa::kPortable};
  if (CpuSupports(StatsIsa::kAvx2)) isas.push_back(StatsIsa::kAvx2);
  if (CpuSupports(StatsIsa::kAvx512)) isas.push_back(StatsIsa::kAvx512);
  return isas;
}

void ForceStatsIsaForTesting(StatsIsa isa) {
  DASH_CHECK(CpuSupports(isa))
      << "cannot force " << StatsIsaName(isa)
      << ": not available in this build/CPU";
  g_forced_table = TableFor(isa);
}

void ResetStatsIsaForTesting() { g_forced_table = nullptr; }

}  // namespace kernels
}  // namespace dash
