// Runtime-dispatched sufficient-statistics kernels (DESIGN.md §13).
//
// The scan hot path has two inner kernels: the dense row-panel kernel
// behind ComputeStatsColumns (X·y, X·X, QᵀX over a column block) and
// the packed-genotype column-range kernel that accumulates the same
// statistics from 2-bit packed words with popcount class counts and
// per-nonzero gathers. Each exists in up to three implementations —
// portable C++, AVX2, AVX-512 — compiled in per-ISA translation units
// (src/core/kernels/stats_kernels_*.cc) with per-file -mavx2 /
// -mavx512f flags, so the binary itself stays runnable on any x86-64
// (and on non-x86, where only the portable unit is built).
//
// Dispatch is a function-pointer table chosen once per process:
//   1. DASH_FORCE_ISA=portable|avx2|avx512 pins the table (and aborts
//      if the requested ISA is not available — a forced ISA that
//      silently fell back would invalidate what a test claims to cover);
//   2. otherwise the best ISA the CPU supports (cpuid via
//      __builtin_cpu_supports, probed once).
// Tests iterate AvailableStatsIsas() and pin each in-process via
// ForceStatsIsaForTesting, so one machine exercises every path it can.
//
// Every implementation is BIT-IDENTICAL to the scalar reference kernel
// (ComputeLocalStatsScalar): SIMD lanes map to distinct output columns
// (never to partial sums of one column), multiplies and adds stay
// separate instructions (the ISA units are compiled with
// -ffp-contract=off so no FMA contraction changes rounding), and the
// packed kernels replay nonzeros in ascending row order. See
// tests/core_kernel_identity_test.cc.

#ifndef DASH_CORE_KERNELS_STATS_KERNELS_H_
#define DASH_CORE_KERNELS_STATS_KERNELS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dash {
class Matrix;
class PackedGenotypeMatrix;
struct StatsBlockView;
}  // namespace dash

namespace dash {
namespace kernels {

enum class StatsIsa { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

const char* StatsIsaName(StatsIsa isa);

// Parses "portable" / "avx2" / "avx512"; false on anything else.
bool ParseStatsIsa(const std::string& name, StatsIsa* isa);

// Adds rows [0, rows) of one row panel into a column block's resident
// accumulators: xy[jj] += x(i,jj)·y[i], xx[jj] += x(i,jj)², and the
// covariate-major K x w tile tile[kk*w + jj] += x(i,jj)·q(i,kk).
// `x` points at (panel start, block start); x_stride is the parent
// matrix's row length; q is row-major with k columns.
using DensePanelFn = void (*)(const double* x, int64_t x_stride, int64_t rows,
                              const double* y, const double* q, int64_t k,
                              int64_t w, double* xy, double* xx, double* tile);

// ACCUMULATES xy/xx/qtx for packed columns [col_begin, col_end) into
// `out` (column j lands at offset j - col_begin; the caller zeroes the
// destination before the first call). y has x.rows() entries; q is
// row-major x.rows() x K. The accumulate contract — per-column proj
// lanes seeded from `out`, X·X added as an exact per-call integer
// count — lets the out-of-core path feed row panels through repeated
// calls while every output element keeps the one unbroken add chain of
// a full in-memory sweep.
using PackedColumnsFn = void (*)(const PackedGenotypeMatrix& x,
                                 const double* y, const Matrix& q,
                                 int64_t col_begin, int64_t col_end,
                                 const StatsBlockView& out);

struct StatsKernelTable {
  StatsIsa isa = StatsIsa::kPortable;
  DensePanelFn dense_panel = nullptr;
  PackedColumnsFn packed_columns = nullptr;
};

// The table the scan kernels dispatch through: the testing override if
// one is pinned, else the DASH_FORCE_ISA choice, else the best ISA the
// CPU supports. Stable after first call (aside from the test override).
const StatsKernelTable& ActiveStatsKernels();

// ISAs usable in this process (portable first, then ascending), i.e.
// compiled in AND supported by the CPU. Ignores DASH_FORCE_ISA.
std::vector<StatsIsa> AvailableStatsIsas();

// Pins / unpins the dispatch table in-process. CHECK-fails when `isa`
// is not in AvailableStatsIsas(). Not thread-safe; tests and benches
// only — call with no concurrent scans running.
void ForceStatsIsaForTesting(StatsIsa isa);
void ResetStatsIsaForTesting();

// Cache-block geometry of the packed kernels: column blocks whose
// xy / class-count / QᵀX-slab accumulators stay register- or
// L1-resident across the sweep, and short word panels (32 rows per
// word) so the y and Q rows a panel touches stay cache-hot for all
// columns of the block.
inline constexpr int64_t kPackedColBlock = 128;
inline constexpr int64_t kPackedPanelWords = 8;

// --- per-ISA entry points (implementation detail) ---------------------
// One pair per translation unit; ActiveStatsKernels() is the supported
// way to reach them. The AVX declarations exist on every platform; the
// symbols are only linked in when the build includes the x86 units.
void DensePanelPortable(const double* x, int64_t x_stride, int64_t rows,
                        const double* y, const double* q, int64_t k, int64_t w,
                        double* xy, double* xx, double* tile);
void PackedColumnsPortable(const PackedGenotypeMatrix& x, const double* y,
                           const Matrix& q, int64_t col_begin, int64_t col_end,
                           const StatsBlockView& out);
void DensePanelAvx2(const double* x, int64_t x_stride, int64_t rows,
                    const double* y, const double* q, int64_t k, int64_t w,
                    double* xy, double* xx, double* tile);
void PackedColumnsAvx2(const PackedGenotypeMatrix& x, const double* y,
                       const Matrix& q, int64_t col_begin, int64_t col_end,
                       const StatsBlockView& out);
void DensePanelAvx512(const double* x, int64_t x_stride, int64_t rows,
                      const double* y, const double* q, int64_t k, int64_t w,
                      double* xy, double* xx, double* tile);
void PackedColumnsAvx512(const PackedGenotypeMatrix& x, const double* y,
                         const Matrix& q, int64_t col_begin, int64_t col_end,
                         const StatsBlockView& out);

}  // namespace kernels
}  // namespace dash

#endif  // DASH_CORE_KERNELS_STATS_KERNELS_H_
