// AVX-512 sufficient-statistics kernels. This translation unit is
// compiled with per-file flags -mavx512f -mavx512bw -mavx512dq
// -mavx512vl and -ffp-contract=off (see src/CMakeLists.txt); the
// contract flag matters for bit-identity — with FMA available the
// compiler would otherwise fuse the explicit mul+add intrinsic pairs
// below into FMAs, which round once instead of twice and diverge from
// the scalar reference.
#ifndef __AVX512F__
#error "stats_kernels_avx512.cc requires -mavx512f (per-file flag in src/CMakeLists.txt)"
#endif

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/kernels/stats_kernels.h"
#include "core/suff_stats.h"
#include "linalg/packed_matrix.h"

namespace dash {
namespace kernels {

// Dense row-panel kernel, 8 columns per zmm lane-group. Lanes map to
// DISTINCT output columns — never to partial sums of one column — so
// each output element still accumulates over rows in exactly the
// scalar reference's order. Scalar tails (w not a multiple of 8) run
// in the same row-major order.
void DensePanelAvx512(const double* x, int64_t x_stride, int64_t rows,
                      const double* y, const double* q, int64_t k, int64_t w,
                      double* xy, double* xx, double* tile) {
  for (int64_t i = 0; i < rows; ++i) {
    const double* xi = x + i * x_stride;
    const double yi = y[i];
    const __m512d yv = _mm512_set1_pd(yi);
    int64_t jj = 0;
    for (; jj + 8 <= w; jj += 8) {
      const __m512d v = _mm512_loadu_pd(xi + jj);
      _mm512_storeu_pd(xy + jj, _mm512_add_pd(_mm512_loadu_pd(xy + jj),
                                              _mm512_mul_pd(v, yv)));
      _mm512_storeu_pd(xx + jj, _mm512_add_pd(_mm512_loadu_pd(xx + jj),
                                              _mm512_mul_pd(v, v)));
    }
    for (; jj < w; ++jj) {
      const double v = xi[jj];
      xy[jj] += v * yi;
      xx[jj] += v * v;
    }
    const double* qi = q + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const double qik = qi[kk];
      const __m512d qv = _mm512_set1_pd(qik);
      double* t = tile + kk * w;
      int64_t j2 = 0;
      for (; j2 + 8 <= w; j2 += 8) {
        const __m512d v = _mm512_loadu_pd(xi + j2);
        _mm512_storeu_pd(t + j2, _mm512_add_pd(_mm512_loadu_pd(t + j2),
                                               _mm512_mul_pd(v, qv)));
      }
      for (; j2 < w; ++j2) t[j2] += xi[j2] * qik;
    }
  }
}

namespace {

constexpr uint64_t kEvenBits = 0x5555555555555555ULL;
constexpr double kDosage[4] = {0.0, 1.0, 2.0, 0.0};

// One column's QᵀX + X·y accumulator: KP padded lanes (K covariates,
// then the phenotype — X·y is just one more projection, so it rides
// the same vector ops instead of paying its own scalar mul+add chain
// per nonzero) held in KP/8 zmm registers plus one ymm for a 4-wide
// remainder. KP <= 24 so at most 3 zmm per column — the pair kernel
// keeps two of these (6 zmm + 2 ymm) register-resident across a whole
// word panel.
template <int KP>
struct ProjAcc {
  static constexpr int kNz = KP / 8;
  static constexpr bool kHasTail = (KP % 8) != 0;
  __m512d z[kNz == 0 ? 1 : kNz];
  __m256d tail;

  void Load(const double* p) {
    for (int c = 0; c < kNz; ++c) z[c] = _mm512_loadu_pd(p + 8 * c);
    if constexpr (kHasTail) tail = _mm256_loadu_pd(p + 8 * kNz);
  }
  void Store(double* p) const {
    for (int c = 0; c < kNz; ++c) _mm512_storeu_pd(p + 8 * c, z[c]);
    if constexpr (kHasTail) _mm256_storeu_pd(p + 8 * kNz, tail);
  }
  void Add(double v, const double* qrow) {
    // Separate zmm/ymm broadcasts: GCC's _mm512_castpd512_pd256 trips
    // -Wmaybe-uninitialized through _mm256_undefined_pd, and the extra
    // vbroadcastsd is free next to the FP-add chain.
    if constexpr (kNz > 0) {
      const __m512d vb = _mm512_set1_pd(v);
      for (int c = 0; c < kNz; ++c) {
        z[c] = _mm512_add_pd(z[c],
                             _mm512_mul_pd(vb, _mm512_loadu_pd(qrow + 8 * c)));
      }
    }
    if constexpr (kHasTail) {
      const __m256d vt = _mm256_set1_pd(v);
      tail = _mm256_add_pd(tail,
                           _mm256_mul_pd(vt, _mm256_loadu_pd(qrow + 8 * kNz)));
    }
  }
};

// Pair-interleaved packed kernel. Two adjacent columns share the word
// loop so their per-nonzero add chains interleave: one column's chain
// (~4-cycle add latency per nonzero) leaves the FP ports mostly idle,
// and the second independent chain fills them — measured ~1.4x over
// the single-column form on the 100k x 10k scan shape.
//
// q and y are copied once into a KP-padded row-major scratch
// ([q(i,0..k-1), y[i], 0...] per row) so a row's vector loads never
// cross into the next row or read past the allocation (padding lanes
// accumulate into proj entries > k that are never written back).
// Bit-identity: each column's nonzeros are replayed in ascending row
// order (ctz over the nonzero mask), each output element — X·y's lane
// k included — has its own accumulator lane seeing exactly the scalar
// reference's add chain, dosage multiplies by 1.0/2.0 are exact, and
// X·X is an exact popcount sum.
template <int KP>
void PackedColumnsImpl(const PackedGenotypeMatrix& x, const double* y,
                       const Matrix& q, int64_t col_begin, int64_t col_end,
                       const StatsBlockView& out) {
  const int64_t k = q.cols();
  const int64_t n = x.rows();
  const int64_t wpc = x.words_per_column();

  std::vector<double> qpad(static_cast<size_t>(n * KP), 0.0);
  {
    const double* qd = q.data();
    double* dst = qpad.data();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t kk = 0; kk < k; ++kk) dst[i * KP + kk] = qd[i * k + kk];
      dst[i * KP + k] = y[i];
    }
  }
  const double* qp = qpad.data();

  std::vector<double> proj(static_cast<size_t>(kPackedColBlock * KP), 0.0);
  std::vector<int64_t> het(static_cast<size_t>(kPackedColBlock), 0);
  std::vector<int64_t> hom(static_cast<size_t>(kPackedColBlock), 0);
  double* const projd = proj.data();
  int64_t* const hetd = het.data();
  int64_t* const homd = hom.data();

  for (int64_t j0 = col_begin; j0 < col_end; j0 += kPackedColBlock) {
    const int64_t j1 = std::min(col_end, j0 + kPackedColBlock);
    // Seed proj from `out` (lane kk = QᵀX, lane k = X·y, padding lanes
    // 0): the kernel ACCUMULATES into its destination (callers zero the
    // arena before the first call), so an out-of-core sweep feeding row
    // panels through repeated calls continues the exact per-element add
    // chain of a single full-matrix sweep. het/hom stay per-call
    // integer counts; out.xx picks them up with an exact integer add.
    for (int64_t j = j0; j < j1; ++j) {
      const int64_t off = j - col_begin;
      double* pr = projd + (j - j0) * KP;
      for (int64_t kk = 0; kk < k; ++kk) {
        pr[kk] = out.qtx[kk * out.qtx_stride + off];
      }
      pr[k] = out.xy[off];
      for (int64_t kk = k + 1; kk < KP; ++kk) pr[kk] = 0.0;
    }
    std::fill(het.begin(), het.end(), 0);
    std::fill(hom.begin(), hom.end(), 0);

    for (int64_t w0 = 0; w0 < wpc; w0 += kPackedPanelWords) {
      const int64_t w1 = std::min(wpc, w0 + kPackedPanelWords);
      int64_t j = j0;
      for (; j + 2 <= j1; j += 2) {
        const uint64_t* cwa = x.column_words(j);
        const uint64_t* cwb = x.column_words(j + 1);
        double* pra = projd + (j - j0) * KP;
        double* prb = pra + KP;
        ProjAcc<KP> pa;
        ProjAcc<KP> pb;
        pa.Load(pra);
        pb.Load(prb);
        int64_t hetsa = 0, homsa = 0, hetsb = 0, homsb = 0;
        for (int64_t wi = w0; wi < w1; ++wi) {
          const uint64_t worda = cwa[wi];
          const uint64_t wordb = cwb[wi];
          if ((worda | wordb) == 0) continue;
          const int64_t base = wi * PackedGenotypeMatrix::kRowsPerWord;
          const uint64_t loa = worda & kEvenBits;
          const uint64_t hia = (worda >> 1) & kEvenBits;
          uint64_t nza = (loa | hia) & ~(loa & hia);
          hetsa += __builtin_popcountll(loa & ~hia);
          homsa += __builtin_popcountll(hia & ~loa);
          const uint64_t lob = wordb & kEvenBits;
          const uint64_t hib = (wordb >> 1) & kEvenBits;
          uint64_t nzb = (lob | hib) & ~(lob & hib);
          hetsb += __builtin_popcountll(lob & ~hib);
          homsb += __builtin_popcountll(hib & ~lob);
          while ((nza | nzb) != 0) {
            if (nza != 0) {
              const int b = __builtin_ctzll(nza);
              nza &= nza - 1;
              const int64_t i = base + (b >> 1);
              pa.Add(kDosage[(worda >> b) & 3u], qp + i * KP);
            }
            if (nzb != 0) {
              const int b = __builtin_ctzll(nzb);
              nzb &= nzb - 1;
              const int64_t i = base + (b >> 1);
              pb.Add(kDosage[(wordb >> b) & 3u], qp + i * KP);
            }
          }
        }
        hetd[j - j0] += hetsa;
        homd[j - j0] += homsa;
        hetd[j - j0 + 1] += hetsb;
        homd[j - j0 + 1] += homsb;
        pa.Store(pra);
        pb.Store(prb);
      }
      for (; j < j1; ++j) {  // odd last column of the block
        const uint64_t* cw = x.column_words(j);
        double* pr = projd + (j - j0) * KP;
        ProjAcc<KP> pacc;
        pacc.Load(pr);
        int64_t hets = 0, homs = 0;
        for (int64_t wi = w0; wi < w1; ++wi) {
          const uint64_t word = cw[wi];
          if (word == 0) continue;
          const uint64_t lo = word & kEvenBits;
          const uint64_t hi = (word >> 1) & kEvenBits;
          uint64_t nz = (lo | hi) & ~(lo & hi);
          hets += __builtin_popcountll(lo & ~hi);
          homs += __builtin_popcountll(hi & ~lo);
          const int64_t base = wi * PackedGenotypeMatrix::kRowsPerWord;
          while (nz != 0) {
            const int b = __builtin_ctzll(nz);
            nz &= nz - 1;
            const int64_t i = base + (b >> 1);
            pacc.Add(kDosage[(word >> b) & 3u], qp + i * KP);
          }
        }
        hetd[j - j0] += hets;
        homd[j - j0] += homs;
        pacc.Store(pr);
      }
    }

    for (int64_t j = j0; j < j1; ++j) {
      const int64_t off = j - col_begin;
      const double* pr = projd + (j - j0) * KP;
      out.xy[off] = pr[k];
      out.xx[off] += static_cast<double>(hetd[j - j0]) +
                     4.0 * static_cast<double>(homd[j - j0]);
      for (int64_t kk = 0; kk < k; ++kk) {
        out.qtx[kk * out.qtx_stride + off] = pr[kk];
      }
    }
  }
}

}  // namespace

void PackedColumnsAvx512(const PackedGenotypeMatrix& x, const double* y,
                         const Matrix& q, int64_t col_begin, int64_t col_end,
                         const StatsBlockView& out) {
  // KP must fit the K covariates plus the phenotype lane (k + 1).
  switch (const int64_t k = q.cols(); (k + 4) / 4) {
    case 1:
      PackedColumnsImpl<4>(x, y, q, col_begin, col_end, out);
      break;
    case 2:
      PackedColumnsImpl<8>(x, y, q, col_begin, col_end, out);
      break;
    case 3:
      PackedColumnsImpl<12>(x, y, q, col_begin, col_end, out);
      break;
    case 4:
      PackedColumnsImpl<16>(x, y, q, col_begin, col_end, out);
      break;
    case 5:
      PackedColumnsImpl<20>(x, y, q, col_begin, col_end, out);
      break;
    case 6:
      PackedColumnsImpl<24>(x, y, q, col_begin, col_end, out);
      break;
    default:
      // k > 23 (more covariates than the register-resident
      // accumulators cover): the portable kernel handles any K.
      PackedColumnsPortable(x, y, q, col_begin, col_end, out);
      break;
  }
}

}  // namespace kernels
}  // namespace dash
