// Portable (any-ISA) sufficient-statistics kernels: the guaranteed
// fallback of the dispatch table, and the accumulation-order reference
// the SIMD units must reproduce bit for bit.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/kernels/stats_kernels.h"
#include "core/suff_stats.h"
#include "linalg/packed_matrix.h"

namespace dash {
namespace kernels {

// Branchless dense row-panel kernel; the compiler auto-vectorizes the
// unit-stride loops. Bit-identity with the scalar reference holds
// because every output element accumulates over rows in order and an
// added ±0.0 product cannot change an accumulator that started at +0.0
// (IEEE-754 round-to-nearest).
void DensePanelPortable(const double* DASH_RESTRICT x, int64_t x_stride,
                        int64_t rows, const double* DASH_RESTRICT y,
                        const double* DASH_RESTRICT q, int64_t k, int64_t w,
                        double* DASH_RESTRICT xy, double* DASH_RESTRICT xx,
                        double* DASH_RESTRICT tile) {
  for (int64_t i = 0; i < rows; ++i) {
    const double* DASH_RESTRICT xi = x + i * x_stride;
    const double yi = y[i];
    for (int64_t jj = 0; jj < w; ++jj) {
      const double v = xi[jj];
      xy[jj] += v * yi;
      xx[jj] += v * v;
    }
    const double* DASH_RESTRICT qi = q + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const double qik = qi[kk];
      double* DASH_RESTRICT t = tile + kk * w;
      for (int64_t jj = 0; jj < w; ++jj) t[jj] += xi[jj] * qik;
    }
  }
}

namespace {

constexpr uint64_t kEvenBits = 0x5555555555555555ULL;

// Dosage of a nonzero 2-bit code (1 -> 1.0, 2 -> 2.0). Indexing with
// the raw code is safe: the nonzero mask excludes codes 0 and 3.
constexpr double kDosage[4] = {0.0, 1.0, 2.0, 0.0};

}  // namespace

// Packed column-range kernel, portable scalar flavor. Same blocked
// geometry as the SIMD units: column blocks of kPackedColBlock whose
// accumulators (xy, integer het/hom counts, a K-per-column QᵀX slab)
// stay L1-resident across the whole row sweep, and word panels of
// kPackedPanelWords words (32 rows each) so the y / Q rows one panel
// touches are shared cache-hot across all columns of the block.
//
// Per word: split into heterozygote / homozygote / missing masks with
// bit math, count classes with popcount (X·X is exactly #het + 4·#hom
// — every partial sum is a small integer, so the float result is exact
// regardless of order), and replay only the nonzero rows — in
// ascending row order, so X·y and QᵀX accumulate in exactly the
// scalar reference's order. Multiplying by a dosage of 1.0 or 2.0 is
// exact, so the products match the scalar reference's bit for bit.
void PackedColumnsPortable(const PackedGenotypeMatrix& x, const double* y,
                           const Matrix& q, int64_t col_begin, int64_t col_end,
                           const StatsBlockView& out) {
  const int64_t k = q.cols();
  const int64_t wpc = x.words_per_column();
  const double* DASH_RESTRICT qd = q.data();
  std::vector<double> proj(
      static_cast<size_t>(kPackedColBlock * std::max<int64_t>(k, 1)), 0.0);
  std::vector<double> xyacc(static_cast<size_t>(kPackedColBlock), 0.0);
  std::vector<int64_t> het(static_cast<size_t>(kPackedColBlock), 0);
  std::vector<int64_t> hom(static_cast<size_t>(kPackedColBlock), 0);

  for (int64_t j0 = col_begin; j0 < col_end; j0 += kPackedColBlock) {
    const int64_t j1 = std::min(col_end, j0 + kPackedColBlock);
    // Seed the block's accumulators from `out`: the kernel ACCUMULATES
    // into its destination (callers zero the arena before the first
    // call), so an out-of-core sweep that feeds row panels through
    // repeated calls continues the exact per-element add chain a single
    // full-matrix sweep produces. het/hom are per-call integer counts;
    // out.xx picks them up with an exact integer add at the store.
    for (int64_t j = j0; j < j1; ++j) {
      const size_t c = static_cast<size_t>(j - j0);
      const int64_t off = j - col_begin;
      xyacc[c] = out.xy[off];
      for (int64_t kk = 0; kk < k; ++kk) {
        proj[c * static_cast<size_t>(k) + static_cast<size_t>(kk)] =
            out.qtx[kk * out.qtx_stride + off];
      }
    }
    std::fill(het.begin(), het.end(), 0);
    std::fill(hom.begin(), hom.end(), 0);

    for (int64_t w0 = 0; w0 < wpc; w0 += kPackedPanelWords) {
      const int64_t w1 = std::min(wpc, w0 + kPackedPanelWords);
      for (int64_t j = j0; j < j1; ++j) {
        const uint64_t* DASH_RESTRICT words = x.column_words(j);
        const size_t c = static_cast<size_t>(j - j0);
        double acc = xyacc[c];
        double* DASH_RESTRICT pr = proj.data() + static_cast<size_t>(j - j0) * k;
        int64_t hets = 0;
        int64_t homs = 0;
        for (int64_t wi = w0; wi < w1; ++wi) {
          const uint64_t word = words[wi];
          if (word == 0) continue;
          const uint64_t lo = word & kEvenBits;
          const uint64_t hi = (word >> 1) & kEvenBits;
          uint64_t nz = (lo | hi) & ~(lo & hi);
          hets += __builtin_popcountll(lo & ~hi);
          homs += __builtin_popcountll(hi & ~lo);
          const int64_t base = wi * PackedGenotypeMatrix::kRowsPerWord;
          while (nz != 0) {
            const int b = __builtin_ctzll(nz);
            nz &= nz - 1;
            const int64_t i = base + (b >> 1);
            const double v = kDosage[(word >> b) & 3u];
            acc += v * y[i];
            const double* DASH_RESTRICT qrow = qd + i * k;
            for (int64_t kk = 0; kk < k; ++kk) pr[kk] += v * qrow[kk];
          }
        }
        xyacc[c] = acc;
        het[c] += hets;
        hom[c] += homs;
      }
    }

    for (int64_t j = j0; j < j1; ++j) {
      const size_t c = static_cast<size_t>(j - j0);
      const int64_t off = j - col_begin;
      out.xy[off] = xyacc[c];
      out.xx[off] += static_cast<double>(het[c]) +
                     4.0 * static_cast<double>(hom[c]);
      for (int64_t kk = 0; kk < k; ++kk) {
        out.qtx[kk * out.qtx_stride + off] =
            proj[static_cast<size_t>(j - j0) * k + static_cast<size_t>(kk)];
      }
    }
  }
}

}  // namespace kernels
}  // namespace dash
