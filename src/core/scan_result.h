// Scan output and the Lemma 2.1 finalization step.
//
// FinalizeScan turns aggregated sufficient statistics into the paper's
// closed-form estimates:
//
//   beta_m    = (X_m.y − QᵀX_m.Qᵀy) / (X_m.X_m − QᵀX_m.QᵀX_m)
//   sigma_m²  = ((y.y − Qᵀy.Qᵀy) / (X_m.X_m − QᵀX_m.QᵀX_m) − beta_m²) / D
//   t_m       = beta_m / sigma_m,  p_m = 2 pt(−|t_m|, D),  D = N − K − 1
//
// Columns whose residual variation X_m.X_m − ‖QᵀX_m‖² is numerically
// zero (X_m lies in the span of the permanent covariates, e.g. a
// monomorphic variant against an intercept) produce NaN rows, mirroring
// how GWAS tools flag untestable variants; num_untestable counts them.

#ifndef DASH_CORE_SCAN_RESULT_H_
#define DASH_CORE_SCAN_RESULT_H_

#include <cstdint>
#include <string>

#include "core/suff_stats.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace dash {

struct ScanResult {
  Vector beta;    // effect estimates, length M
  Vector se;      // standard errors
  Vector tstat;   // t-statistics
  Vector pval;    // two-sided p-values
  int64_t dof = 0;
  int64_t num_untestable = 0;

  int64_t num_variants() const { return static_cast<int64_t>(beta.size()); }

  // Index of the smallest p-value (NaNs skipped); -1 if none.
  int64_t TopHit() const;

  // Writes variant,beta,se,tstat,pval rows.
  Status WriteCsv(const std::string& path) const;
};

// Applies Lemma 2.1 to aggregated totals. Fails if the degrees of
// freedom N − K − 1 are not positive.
Result<ScanResult> FinalizeScan(const ScanSufficientStats& totals);

// FNV-1a over the exact IEEE-754 bit patterns of beta/se/tstat/pval:
// equal checksums mean bit-identical scans. This is what the commit
// round broadcasts (MessageTag::kCommit) so parties can verify they
// revealed the same result, and what dash_party prints.
uint64_t ScanResultChecksum(const ScanResult& result);

// The projected form of the sufficient statistics: what remains when
// the K-vectors Qᵀy and QᵀX are never revealed and only their dot
// products are (the Beaver-secured aggregation of
// mpc/secure_projection.h). Lemma 2.1 needs nothing more.
struct ProjectedSufficientStats {
  int64_t num_samples = 0;
  int64_t num_covariates = 0;  // K (public shape information)
  double yy = 0.0;             // y.y (plain-summed)
  Vector xy;                   // X.y, length M
  Vector xx;                   // X.X, length M
  double qty_qty = 0.0;        // Qᵀy.Qᵀy
  Vector qtx_qty;              // QᵀX_m.Qᵀy, length M
  Vector qtx_qtx;              // QᵀX_m.QᵀX_m, length M
};

// Lemma 2.1 on the projected statistics.
Result<ScanResult> FinalizeScanProjected(const ProjectedSufficientStats& s);

}  // namespace dash

#endif  // DASH_CORE_SCAN_RESULT_H_
