// Human-readable scan reports: top hits, multiple-testing summaries,
// calibration diagnostics — the text a consortium analyst actually reads
// after the protocol finishes.

#ifndef DASH_CORE_SCAN_REPORT_H_
#define DASH_CORE_SCAN_REPORT_H_

#include <cstdint>
#include <string>

#include "core/scan_result.h"
#include "util/status.h"

namespace dash {

struct ScanReportOptions {
  // Rows in the top-hits table.
  int64_t top_hits = 10;
  // Family-wise alpha for the Bonferroni line and FDR for the BH line.
  double alpha = 0.05;
  // Confidence level for the per-hit Wald intervals.
  double confidence_level = 0.95;
};

// Renders a plain-text report: study shape, genomic-control lambda,
// counts significant under Bonferroni and Benjamini-Hochberg, and a
// top-hits table with confidence intervals.
std::string RenderScanReport(const ScanResult& scan,
                             const ScanReportOptions& options = {});

// Renders and writes to a file.
Status WriteScanReport(const ScanResult& scan, const std::string& path,
                       const ScanReportOptions& options = {});

}  // namespace dash

#endif  // DASH_CORE_SCAN_REPORT_H_
