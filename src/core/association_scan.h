// Plaintext association scan (paper §2): M simple regressions with
// shared permanent covariates, in O(NK² + NKM / threads).
//
// This is both the single-site tool and the per-party compute kernel of
// the secure protocol: the secure scan's per-party work is exactly one
// call to the same ComputeLocalStats path, which is why DASH runs "at
// plaintext speed".

#ifndef DASH_CORE_ASSOCIATION_SCAN_H_
#define DASH_CORE_ASSOCIATION_SCAN_H_

#include "core/scan_result.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "util/status.h"

namespace dash {

struct ScanOptions {
  // Worker threads for the column-parallel statistics pass.
  int num_threads = 1;
};

// Scans dense X against y with permanent covariates c (include an
// intercept column in c if desired). Requires N > K + 1 and
// full-column-rank c.
Result<ScanResult> AssociationScan(const Matrix& x, const Vector& y,
                                   const Matrix& c,
                                   const ScanOptions& options = {});

// Sparse-X variant; identical statistics, O(nnz) column kernels.
Result<ScanResult> AssociationScanSparse(const SparseColumnMatrix& x,
                                         const Vector& y, const Matrix& c,
                                         const ScanOptions& options = {});

}  // namespace dash

#endif  // DASH_CORE_ASSOCIATION_SCAN_H_
