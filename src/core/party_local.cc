#include "core/party_local.h"

#include "linalg/qr.h"

namespace dash {

Result<Matrix> PartyLocalRFactor(const PartyData& party) {
  return QrRFactor(party.c);
}

Matrix PartyLocalQ(const PartyData& party, const Matrix& r_inverse) {
  return MatMul(party.c, r_inverse);
}

ScanSufficientStats PartyLocalStats(const PartyData& party, const Matrix& q_p,
                                    ThreadPool* pool) {
  return ComputeLocalStats(party.x, party.y, q_p, pool);
}

Vector PartyLocalStatsFlat(const PartyData& party, const Matrix& q_p,
                           ThreadPool* pool) {
  return ComputeLocalStatsFlat(party.x, party.y, q_p, pool);
}

}  // namespace dash
