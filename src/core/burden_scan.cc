#include "core/burden_scan.h"

#include <string>

namespace dash {

Result<Matrix> BurdenWeightsFromGeneAssignment(
    const std::vector<int64_t>& gene_of_variant, int64_t num_genes) {
  if (num_genes <= 0) return InvalidArgumentError("num_genes must be positive");
  Matrix w(static_cast<int64_t>(gene_of_variant.size()), num_genes);
  for (size_t v = 0; v < gene_of_variant.size(); ++v) {
    const int64_t g = gene_of_variant[v];
    if (g < 0 || g >= num_genes) {
      return OutOfRangeError("variant " + std::to_string(v) +
                             " assigned to gene " + std::to_string(g) +
                             " outside [0, " + std::to_string(num_genes) + ")");
    }
    w(static_cast<int64_t>(v), g) = 1.0;
  }
  return w;
}

Result<std::vector<PartyData>> ApplyBurdenWeights(
    const std::vector<PartyData>& parties, const Matrix& weights) {
  DASH_RETURN_IF_ERROR(ValidateParties(parties));
  if (parties[0].x.cols() != weights.rows()) {
    return InvalidArgumentError(
        "weights have " + std::to_string(weights.rows()) +
        " rows but parties have " + std::to_string(parties[0].x.cols()) +
        " variants");
  }
  std::vector<PartyData> out;
  out.reserve(parties.size());
  for (const auto& p : parties) {
    PartyData b;
    b.x = MatMul(p.x, weights);
    b.y = p.y;
    b.c = p.c;
    out.push_back(std::move(b));
  }
  return out;
}

Result<ScanResult> BurdenScan(const Matrix& x, const Matrix& weights,
                              const Vector& y, const Matrix& c,
                              const ScanOptions& options) {
  if (x.cols() != weights.rows()) {
    return InvalidArgumentError("weight rows must match variant count");
  }
  return AssociationScan(MatMul(x, weights), y, c, options);
}

Result<SecureScanOutput> SecureBurdenScan(
    const std::vector<PartyData>& parties, const Matrix& weights,
    const SecureScanOptions& options) {
  DASH_ASSIGN_OR_RETURN(std::vector<PartyData> projected,
                        ApplyBurdenWeights(parties, weights));
  return SecureAssociationScan(options).Run(projected);
}

}  // namespace dash
