// Block schedule of the pipelined secure scan (compute/communication
// overlap), shared by the in-process driver (core/secure_scan.cc) and
// the party-bound runner (transport/party_runner.cc).
//
// When SecureScanOptions::pipeline_block_variants > 0, the single
// sufficient-statistics secure-sum round is replaced by
//
//   round 0:        header  [yy | qty(K)]                  (1+K values)
//   round 1..B:     block b [xy(w) | xx(w) | qtx(K x w)]   ((2+K)*w values)
//
// over the variant blocks [b*block, min(M, (b+1)*block)). A party can
// therefore compute block b+1 with the scan kernel while block b's
// aggregate is in flight on the transport. Both drivers MUST derive the
// identical schedule from (M, K, block) — the cross-backend tests pin
// their traces equal as multisets — which is why the plan lives here.
//
// The revealed totals are bit-identical to the one-shot aggregation in
// every mode: the ring (Z_2^64) and field (F_2^61-1) sums are exact per
// element and the public mode sums doubles per element in ascending
// party order, so how elements are grouped into rounds cannot change
// any total. (Pairwise masks differ per round but cancel exactly.)

#ifndef DASH_CORE_SCAN_PIPELINE_H_
#define DASH_CORE_SCAN_PIPELINE_H_

#include <algorithm>
#include <cstdint>

#include "core/suff_stats.h"
#include "linalg/vector_ops.h"
#include "util/check.h"

namespace dash {

struct PipelinePlan {
  int64_t m = 0;      // variants
  int64_t k = 0;      // covariates
  int64_t block = 0;  // variants per block (> 0)

  int64_t num_blocks() const { return block > 0 ? (m + block - 1) / block : 0; }
  int64_t begin(int64_t b) const { return b * block; }
  int64_t end(int64_t b) const { return std::min(m, (b + 1) * block); }
  int64_t width(int64_t b) const { return end(b) - begin(b); }

  int64_t header_len() const { return 1 + k; }
  int64_t block_len(int64_t b) const { return (2 + k) * width(b); }
};

// View of a block buffer laid out [xy(w) | xx(w) | qtx row-major K x w],
// as the column-range kernels write it. `buf` must hold block_len(b)
// doubles.
inline StatsBlockView PipelineBlockView(double* buf, int64_t w) {
  return StatsBlockView{buf, buf + w, buf + 2 * w, w};
}

// Scatters a revealed header round into the full wire-order vector.
inline void ScatterHeaderTotals(const Vector& header, const PipelinePlan& plan,
                                Vector* flat) {
  const StatsWireLayout layout{plan.m, plan.k};
  DASH_CHECK_EQ(static_cast<int64_t>(header.size()), plan.header_len());
  DASH_CHECK_EQ(static_cast<int64_t>(flat->size()), layout.total_len());
  (*flat)[static_cast<size_t>(layout.yy_offset())] = header[0];
  std::copy(header.begin() + 1, header.end(),
            flat->begin() + layout.qty_offset());
}

// Scatters a revealed block round into the full wire-order vector.
inline void ScatterBlockTotals(const Vector& blk, const PipelinePlan& plan,
                               int64_t b, Vector* flat) {
  const StatsWireLayout layout{plan.m, plan.k};
  const int64_t j0 = plan.begin(b);
  const int64_t w = plan.width(b);
  DASH_CHECK_EQ(static_cast<int64_t>(blk.size()), plan.block_len(b));
  std::copy(blk.begin(), blk.begin() + w,
            flat->begin() + layout.xy_offset() + j0);
  std::copy(blk.begin() + w, blk.begin() + 2 * w,
            flat->begin() + layout.xx_offset() + j0);
  for (int64_t kk = 0; kk < plan.k; ++kk) {
    std::copy(blk.begin() + (2 + kk) * w, blk.begin() + (3 + kk) * w,
              flat->begin() + layout.qtx_offset() + kk * plan.m + j0);
  }
}

}  // namespace dash

#endif  // DASH_CORE_SCAN_PIPELINE_H_
