#include "core/distributed_qr.h"

#include <string>
#include <utility>

#include "linalg/qr.h"
#include "linalg/tsqr.h"
#include "net/round_annotations.h"
#include "net/serialization.h"

namespace dash {
namespace {

Status ValidateInputs(Transport* network, const std::vector<Matrix>& local_r) {
  if (static_cast<int>(local_r.size()) != network->num_parties()) {
    return InvalidArgumentError("one R factor per party required");
  }
  const int64_t k = local_r[0].cols();
  for (const auto& r : local_r) {
    if (r.rows() != k || r.cols() != k) {
      return InvalidArgumentError("R factors must all be K x K");
    }
  }
  return Status::Ok();
}

Result<DistributedQrResult> RunBroadcastStack(
    Transport* network, const std::vector<Matrix>& local_r) {
  const int p = network->num_parties();
  network->BeginRound();
  for (int i = 0; i < p; ++i) {
    ByteWriter w;
    w.PutMatrix(local_r[static_cast<size_t>(i)]);
    DASH_ROUND(phase1_rfactor, kRFactor);
    DASH_RETURN_IF_ERROR(network->Broadcast(i, MessageTag::kRFactor, w.Take()));
  }
  // Each party stacks what it received (plus its own) and factors; the
  // results agree because the sign convention makes R unique. We compute
  // party 0's view and drain the symmetric messages.
  std::vector<Matrix> stack(static_cast<size_t>(p));
  stack[0] = local_r[0];
  for (int q = 1; q < p; ++q) {
    DASH_ROUND(phase1_rfactor, kRFactor);
    DASH_ASSIGN_OR_RETURN(Message msg,
                          network->Receive(0, q, MessageTag::kRFactor));
    ByteReader r(msg.payload);
    DASH_ASSIGN_OR_RETURN(stack[static_cast<size_t>(q)], r.GetMatrix());
  }
  for (int i = 1; i < p; ++i) {
    for (int q = 0; q < p; ++q) {
      if (q == i) continue;
      DASH_ROUND_DRAIN(phase1_rfactor, kRFactor);
      DASH_RETURN_IF_ERROR(
          network->Receive(i, q, MessageTag::kRFactor).status());
    }
  }
  DistributedQrResult out;
  DASH_ASSIGN_OR_RETURN(out.r, CombineRFactors(stack));
  DASH_ASSIGN_OR_RETURN(out.r_inverse, InvertUpperTriangular(out.r));
  out.rounds = 1;
  return out;
}

Result<DistributedQrResult> RunBinaryTree(Transport* network,
                                          const std::vector<Matrix>& local_r) {
  const int p = network->num_parties();
  // active[i] is party i's current merged factor; parties drop out as
  // their factor is absorbed by a lower-indexed partner.
  std::vector<Matrix> current = local_r;
  std::vector<bool> active(static_cast<size_t>(p), true);
  int rounds = 0;
  for (int stride = 1; stride < p; stride *= 2) {
    network->BeginRound();
    ++rounds;
    // Senders first (all messages of the round go out before any merge).
    for (int i = 0; i < p; ++i) {
      if (!active[static_cast<size_t>(i)]) continue;
      if ((i / stride) % 2 == 1 && i - stride >= 0) {
        ByteWriter w;
        w.PutMatrix(current[static_cast<size_t>(i)]);
        DASH_ROUND(phase1_tree_merge, kTreeR);
        DASH_RETURN_IF_ERROR(
            network->Send(i, i - stride, MessageTag::kTreeR, w.Take()));
      }
    }
    for (int i = 0; i < p; ++i) {
      if (!active[static_cast<size_t>(i)]) continue;
      if ((i / stride) % 2 == 1 && i - stride >= 0) {
        active[static_cast<size_t>(i)] = false;
      } else if (i + stride < p && active[static_cast<size_t>(i + stride)]) {
        DASH_ROUND(phase1_tree_merge, kTreeR);
        DASH_ASSIGN_OR_RETURN(
            Message msg, network->Receive(i, i + stride, MessageTag::kTreeR));
        ByteReader r(msg.payload);
        DASH_ASSIGN_OR_RETURN(Matrix peer, r.GetMatrix());
        DASH_ASSIGN_OR_RETURN(
            current[static_cast<size_t>(i)],
            QrRFactor(VStack({current[static_cast<size_t>(i)], peer})));
      }
    }
  }
  // Party 0 holds the pooled R; broadcast it so every party can proceed.
  if (p > 1) {
    network->BeginRound();
    ++rounds;
    ByteWriter w;
    w.PutMatrix(current[0]);
    DASH_ROUND(phase1_tree_root, kRFactor);
    DASH_RETURN_IF_ERROR(network->Broadcast(0, MessageTag::kRFactor, w.Take()));
    for (int i = 1; i < p; ++i) {
      DASH_ROUND(phase1_tree_root, kRFactor);
      DASH_RETURN_IF_ERROR(
          network->Receive(i, 0, MessageTag::kRFactor).status());
    }
  }
  DistributedQrResult out;
  out.r = std::move(current[0]);
  DASH_ASSIGN_OR_RETURN(out.r_inverse, InvertUpperTriangular(out.r));
  out.rounds = rounds;
  return out;
}

}  // namespace

const char* RCombineModeName(RCombineMode mode) {
  switch (mode) {
    case RCombineMode::kBroadcastStack:
      return "broadcast-stack";
    case RCombineMode::kBinaryTree:
      return "binary-tree";
  }
  return "unknown";
}

Result<DistributedQrResult> CombineRFactorsOverNetwork(
    Transport* network, const std::vector<Matrix>& local_r, RCombineMode mode) {
  DASH_RETURN_IF_ERROR(ValidateInputs(network, local_r));
  if (network->num_parties() == 1) {
    DistributedQrResult out;
    out.r = local_r[0];
    DASH_ASSIGN_OR_RETURN(out.r_inverse, InvertUpperTriangular(out.r));
    return out;
  }
  switch (mode) {
    case RCombineMode::kBroadcastStack:
      return RunBroadcastStack(network, local_r);
    case RCombineMode::kBinaryTree:
      return RunBinaryTree(network, local_r);
  }
  return InternalError("unknown R-combine mode");
}

}  // namespace dash
