#include "core/secure_scan.h"

#include <memory>
#include <string>
#include <utility>

#include "core/party_local.h"
#include "core/scan_pipeline.h"
#include "mpc/secure_projection.h"
#include "net/network.h"
#include "net/round_annotations.h"
#include "net/serialization.h"
#include "core/suff_stats.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace dash {

const char* ProjectionSecurityName(ProjectionSecurity security) {
  switch (security) {
    case ProjectionSecurity::kRevealProjectedSums:
      return "reveal-sums";
    case ProjectionSecurity::kBeaverDotProducts:
      return "beaver-dot-products";
  }
  return "unknown";
}

SecureAssociationScan::SecureAssociationScan(const SecureScanOptions& options)
    : options_(options) {}

Result<ScanResult> FinalizeScanWithAbsorbedParams(
    const ScanSufficientStats& totals, int64_t absorbed_params) {
  // dof = N − K − 1 − absorbed; fold the absorbed parameters into the
  // sample count seen by the standard finalization.
  ScanSufficientStats adjusted = totals;
  adjusted.num_samples -= absorbed_params;
  return FinalizeScan(adjusted);
}

Result<SecureScanOutput> SecureAssociationScan::Run(
    const std::vector<PartyData>& input_parties) const {
  DASH_RETURN_IF_ERROR(ValidateParties(input_parties));
  InProcessTransport transport(static_cast<int>(input_parties.size()));
  return Run(input_parties, &transport);
}

Result<SecureScanOutput> SecureAssociationScan::Run(
    const std::vector<PartyData>& input_parties, Transport* transport) const {
  DASH_CHECK(transport != nullptr);
  DASH_RETURN_IF_ERROR(ValidateParties(input_parties));
  if (transport->local_party() != -1) {
    return InvalidArgumentError(
        "SecureAssociationScan::Run drives all parties and needs an "
        "in-process transport; party-bound transports go through "
        "RunPartySecureScan (transport/party_runner.h)");
  }
  if (transport->num_parties() != static_cast<int>(input_parties.size())) {
    return InvalidArgumentError("transport has " +
                                std::to_string(transport->num_parties()) +
                                " party slots for " +
                                std::to_string(input_parties.size()) +
                                " parties");
  }
  if (options_.pipeline_block_variants > 0 &&
      options_.projection == ProjectionSecurity::kBeaverDotProducts) {
    return InvalidArgumentError(
        "pipeline_block_variants requires kRevealProjectedSums; the Beaver "
        "projection consumes whole K-vectors and cannot be blocked");
  }
  const int num_parties = static_cast<int>(input_parties.size());
  const int64_t m = input_parties[0].x.cols();
  const int64_t k = input_parties[0].c.cols();

  // Per-party preprocessing (the batch-indicator equivalence).
  const std::vector<PartyData>* parties = &input_parties;
  std::vector<PartyData> centered;
  int64_t absorbed_params = 0;
  if (options_.center_per_party) {
    for (const auto& p : input_parties) {
      for (int64_t j = 0; j < p.c.cols(); ++j) {
        // A constant column would become zero after centering; catch the
        // common mistake of passing an explicit intercept in this mode.
        bool constant = p.c.rows() > 0;
        for (int64_t i = 1; i < p.c.rows() && constant; ++i) {
          constant = (p.c(i, j) == p.c(0, j));
        }
        if (constant && p.c.rows() > 0) {
          return InvalidArgumentError(
              "center_per_party absorbs the intercept; remove constant "
              "column " + std::to_string(j) + " from C");
        }
      }
    }
    centered = input_parties;
    CenterPerParty(&centered);
    parties = &centered;
    absorbed_params = num_parties;
  }

  Transport& network = *transport;
  if (options_.trace != nullptr) network.AttachTrace(options_.trace);
  Stopwatch protocol_timer;
  double local_seconds = 0.0;
  double protocol_seconds = 0.0;
  Stopwatch local_timer;

  // Stage 0 (network): exchange the public per-party sample counts. The
  // pooled N enters the revealed output (degrees of freedom), so a real
  // deployment has to communicate it; keeping it on the wire here makes
  // the in-process and TCP message patterns identical.
  int64_t total_samples = 0;
  if (num_parties > 1) {
    network.BeginRound();
    for (int i = 0; i < num_parties; ++i) {
      ByteWriter w;
      w.PutI64((*parties)[static_cast<size_t>(i)].num_samples());
      DASH_ROUND(phase0_samplecount, kSampleCount);
      DASH_RETURN_IF_ERROR(
          network.Broadcast(i, MessageTag::kSampleCount, w.Take()));
    }
    total_samples = (*parties)[0].num_samples();
    for (int q = 1; q < num_parties; ++q) {
      DASH_ROUND(phase0_samplecount, kSampleCount);
      DASH_ASSIGN_OR_RETURN(Message msg,
                            network.Receive(0, q, MessageTag::kSampleCount));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(int64_t n_q, r.GetI64());
      total_samples += n_q;
    }
    for (int i = 1; i < num_parties; ++i) {
      for (int q = 0; q < num_parties; ++q) {
        if (q == i) continue;
        DASH_ROUND_DRAIN(phase0_samplecount, kSampleCount);
        DASH_RETURN_IF_ERROR(
            network.Receive(i, q, MessageTag::kSampleCount).status());
      }
    }
  } else {
    total_samples = (*parties)[0].num_samples();
  }

  // Stage 1 (local): K x K R factors.
  std::vector<Matrix> local_r;
  local_r.reserve(static_cast<size_t>(num_parties));
  if (k > 0) {
    for (const auto& p : *parties) {
      DASH_ASSIGN_OR_RETURN(Matrix r, PartyLocalRFactor(p));
      local_r.push_back(std::move(r));
    }
  }
  local_seconds += local_timer.ElapsedSeconds();

  // Stage 2 (network): combine R factors; every party learns R⁻¹.
  Matrix r_inverse(0, 0);
  protocol_timer.Reset();
  if (k > 0) {
    DASH_ASSIGN_OR_RETURN(
        DistributedQrResult qr,
        CombineRFactorsOverNetwork(&network, local_r, options_.r_combine));
    r_inverse = std::move(qr.r_inverse);
  }
  protocol_seconds += protocol_timer.ElapsedSeconds();

  // Stage 3 (local): Q_p rows. A single pool is shared across parties;
  // within a real deployment each party would use its own cores, so
  // this models total core usage.
  local_timer.Reset();
  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }
  std::vector<Matrix> q_ps;
  q_ps.reserve(static_cast<size_t>(num_parties));
  for (const auto& p : *parties) {
    q_ps.push_back((k > 0) ? PartyLocalQ(p, r_inverse)
                           : Matrix(p.num_samples(), 0));
  }
  local_seconds += local_timer.ElapsedSeconds();

  SecureSumOptions sum_options;
  sum_options.mode = options_.aggregation;
  sum_options.frac_bits = options_.frac_bits;
  sum_options.seed = options_.seed;
  SecureVectorSum secure_sum(&network, sum_options);

  ScanResult result;
  if (options_.projection == ProjectionSecurity::kRevealProjectedSums) {
    Vector flat_totals;
    if (options_.pipeline_block_variants > 0) {
      // Stage 3+4 (pipelined): header round, then one round per variant
      // block; block b+1 is computed while block b's aggregate is in
      // flight (core/scan_pipeline.h). Overlapped compute hides inside
      // protocol_seconds by construction.
      const PipelinePlan plan{m, k, options_.pipeline_block_variants};
      const int64_t num_blocks = plan.num_blocks();

      local_timer.Reset();
      std::vector<Vector> headers(static_cast<size_t>(num_parties));
      for (int p = 0; p < num_parties; ++p) {
        const auto& pd = (*parties)[static_cast<size_t>(p)];
        Vector h;
        h.reserve(static_cast<size_t>(plan.header_len()));
        h.push_back(SquaredNorm(pd.y));
        const Vector qty = TransposeMatVec(q_ps[static_cast<size_t>(p)], pd.y);
        h.insert(h.end(), qty.begin(), qty.end());
        headers[static_cast<size_t>(p)] = std::move(h);
      }
      local_seconds += local_timer.ElapsedSeconds();

      protocol_timer.Reset();
      DASH_ASSIGN_OR_RETURN(Vector header_totals,
                            secure_sum.Run(ToSecretInputs(std::move(headers))));
      flat_totals.assign(
          static_cast<size_t>(StatsWireLayout{m, k}.total_len()), 0.0);
      ScatterHeaderTotals(header_totals, plan, &flat_totals);

      std::vector<Vector> cur(static_cast<size_t>(num_parties));
      std::vector<Vector> next(static_cast<size_t>(num_parties));
      const auto compute_block = [&](int64_t b, std::vector<Vector>* bufs) {
        const int64_t w = plan.width(b);
        for (int p = 0; p < num_parties; ++p) {
          Vector& buf = (*bufs)[static_cast<size_t>(p)];
          buf.assign(static_cast<size_t>(plan.block_len(b)), 0.0);
          const auto& pd = (*parties)[static_cast<size_t>(p)];
          ComputeStatsColumns(pd.x, pd.y, q_ps[static_cast<size_t>(p)],
                              plan.begin(b), plan.end(b),
                              PipelineBlockView(buf.data(), w),
                              /*pool=*/nullptr);
        }
      };
      if (num_blocks > 0) compute_block(0, &cur);
      for (int64_t b = 0; b < num_blocks; ++b) {
        const bool has_next = b + 1 < num_blocks;
        if (has_next) {
          if (pool != nullptr) {
            pool->Schedule([&compute_block, &next, b] {
              compute_block(b + 1, &next);
            });
          } else {
            compute_block(b + 1, &next);
          }
        }
        Result<Vector> block_totals = secure_sum.Run(ToSecretInputs(cur));
        // Join the in-flight compute before any early return can tear
        // down the buffers it writes.
        if (has_next && pool != nullptr) pool->Wait();
        if (!block_totals.ok()) return block_totals.status();
        ScatterBlockTotals(block_totals.value(), plan, b, &flat_totals);
        cur.swap(next);
      }
      protocol_seconds += protocol_timer.ElapsedSeconds();
    } else {
      // Stage 3 (local): summands, computed directly into wire-order
      // arenas (zero-copy flatten).
      local_timer.Reset();
      std::vector<Vector> flattened;
      flattened.reserve(static_cast<size_t>(num_parties));
      for (int p = 0; p < num_parties; ++p) {
        flattened.push_back(PartyLocalStatsFlat(
            (*parties)[static_cast<size_t>(p)], q_ps[static_cast<size_t>(p)],
            pool.get()));
      }
      local_seconds += local_timer.ElapsedSeconds();

      // Stage 4 (network): one secure-sum aggregation of everything.
      protocol_timer.Reset();
      DASH_ASSIGN_OR_RETURN(
          flat_totals, secure_sum.Run(ToSecretInputs(std::move(flattened))));
      protocol_seconds += protocol_timer.ElapsedSeconds();
    }

    // Stage 5 (local, public): Lemma 2.1 finalization.
    local_timer.Reset();
    DASH_ASSIGN_OR_RETURN(ScanSufficientStats totals,
                          UnflattenStats(flat_totals, m, k));
    totals.num_samples = total_samples;
    DASH_ASSIGN_OR_RETURN(
        result, FinalizeScanWithAbsorbedParams(totals, absorbed_params));
    local_seconds += local_timer.ElapsedSeconds();
  } else {
    // Beaver variant: the orthogonal statistics (y.y, X.y, X.X) are
    // summed as before, but the projected K-vectors never leave the
    // parties — only their dot products are opened. Needs the structured
    // summands, so no zero-copy arena here.
    local_timer.Reset();
    std::vector<ScanSufficientStats> party_stats;
    party_stats.reserve(static_cast<size_t>(num_parties));
    for (int p = 0; p < num_parties; ++p) {
      party_stats.push_back(PartyLocalStats((*parties)[static_cast<size_t>(p)],
                                            q_ps[static_cast<size_t>(p)],
                                            pool.get()));
    }
    local_seconds += local_timer.ElapsedSeconds();

    protocol_timer.Reset();
    std::vector<Vector> plain_parts;
    // The projected summands are per-party private data and only ever
    // enter the Beaver protocol — Secret from the moment they exist.
    std::vector<Secret<Vector>> qty_summands;
    std::vector<Secret<Matrix>> qtx_summands;
    plain_parts.reserve(static_cast<size_t>(num_parties));
    for (const auto& stats : party_stats) {
      Vector flat;
      flat.reserve(static_cast<size_t>(1 + 2 * m));
      flat.push_back(stats.yy);
      flat.insert(flat.end(), stats.xy.begin(), stats.xy.end());
      flat.insert(flat.end(), stats.xx.begin(), stats.xx.end());
      plain_parts.push_back(std::move(flat));
      qty_summands.push_back(Secret<Vector>(stats.qty));
      qtx_summands.push_back(Secret<Matrix>(stats.qtx));
    }
    DASH_ASSIGN_OR_RETURN(
        Vector plain_totals,
        secure_sum.Run(ToSecretInputs(std::move(plain_parts))));

    SecureProjectionOptions proj_options;
    proj_options.frac_bits = options_.projection_frac_bits;
    proj_options.seed = options_.seed ^ 0xbea7e5;
    SecureProjectedAggregation projector(&network, proj_options);
    DASH_ASSIGN_OR_RETURN(ProjectedStats projected,
                          projector.Run(qty_summands, qtx_summands));
    protocol_seconds += protocol_timer.ElapsedSeconds();

    local_timer.Reset();
    ProjectedSufficientStats totals;
    totals.num_samples = total_samples - absorbed_params;
    totals.num_covariates = k;
    totals.yy = plain_totals[0];
    totals.xy.assign(plain_totals.begin() + 1, plain_totals.begin() + 1 + m);
    totals.xx.assign(plain_totals.begin() + 1 + m,
                     plain_totals.begin() + 1 + 2 * m);
    totals.qty_qty = projected.qty_qty;
    totals.qtx_qty = std::move(projected.qtx_qty);
    totals.qtx_qtx = std::move(projected.qtx_qtx);
    DASH_ASSIGN_OR_RETURN(result, FinalizeScanProjected(totals));
    local_seconds += local_timer.ElapsedSeconds();
  }

  // Commit round: all parties broadcast the checksum of the result they
  // are about to reveal and cross-check. In-process every party holds
  // the same `result` object, so the checksums agree trivially; the
  // round still goes over the transport to keep the wire pattern (and
  // the per-link byte ledger) identical to the TCP deployment.
  if (options_.commit_round && num_parties > 1) {
    protocol_timer.Reset();
    network.BeginRound();
    const uint64_t checksum = ScanResultChecksum(result);
    ByteWriter w;
    w.PutU64(checksum);
    const std::vector<uint8_t> payload = w.Take();
    for (int i = 0; i < num_parties; ++i) {
      DASH_ROUND(phase4_commit, kCommit);
      DASH_RETURN_IF_ERROR(
          network.Broadcast(i, MessageTag::kCommit, payload));
    }
    for (int i = 0; i < num_parties; ++i) {
      for (int q = 0; q < num_parties; ++q) {
        if (q == i) continue;
        DASH_ROUND(phase4_commit, kCommit);
        DASH_ASSIGN_OR_RETURN(Message msg,
                              network.Receive(i, q, MessageTag::kCommit));
        ByteReader r(msg.payload);
        DASH_ASSIGN_OR_RETURN(uint64_t peer_sum, r.GetU64());
        if (peer_sum != checksum) {
          return DataLossError(
              "result divergence: party " + std::to_string(q) +
              " committed checksum " + std::to_string(peer_sum) +
              ", party " + std::to_string(i) + " computed " +
              std::to_string(checksum));
        }
      }
    }
    protocol_seconds += protocol_timer.ElapsedSeconds();
  }

  SecureScanOutput out;
  out.result = std::move(result);
  out.metrics.total_bytes = network.metrics().total_bytes();
  out.metrics.total_messages = network.metrics().total_messages();
  out.metrics.max_link_bytes = network.metrics().MaxLinkBytes();
  out.metrics.rounds = network.metrics().rounds();
  out.metrics.local_compute_seconds = local_seconds;
  out.metrics.protocol_seconds = protocol_seconds;
  DASH_LOG(Info) << "secure scan: P=" << num_parties << " N=" << total_samples
                 << " M=" << m << " K=" << k << " mode="
                 << AggregationModeName(options_.aggregation) << " bytes="
                 << out.metrics.total_bytes;
  return out;
}

}  // namespace dash
