#include "core/scan_checkpoint.h"

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "data/panel_stream.h"

namespace dash {
namespace {

constexpr char kCkptMagic[8] = {'D', 'A', 'S', 'H', 'C', 'K', 'P', 'T'};
constexpr uint64_t kCkptVersion = 1;
// magic + version + key + panels_done + len, then payload, then sum.
constexpr size_t kCkptHeaderBytes = 40;
// A checkpoint is one wire-order accumulator; anything past this bound
// (8 GiB of doubles) is a corrupt length field, not a real snapshot.
constexpr int64_t kMaxCkptDoubles = int64_t{1} << 30;

void PutU64(unsigned char* p, uint64_t v) { std::memcpy(p, &v, 8); }

uint64_t GetU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

uint64_t ScanCheckpointKey(uint64_t study_fingerprint, int64_t num_variants,
                           int64_t num_covariates) {
  const int64_t shape[2] = {num_variants, num_covariates};
  uint64_t h = Fnv1aBytes(&study_fingerprint, sizeof(study_fingerprint));
  h = Fnv1aBytes(shape, sizeof(shape), h);
  h = Fnv1aBytes(&kCkptVersion, sizeof(kCkptVersion), h);
  return h;
}

Status SaveScanCheckpoint(const std::string& path,
                          const ScanCheckpoint& ckpt) {
  const size_t payload = ckpt.flat.size() * sizeof(double);
  std::vector<unsigned char> buf(kCkptHeaderBytes + payload + 8);
  unsigned char* p = buf.data();
  std::memcpy(p, kCkptMagic, 8);
  PutU64(p + 8, kCkptVersion);
  PutU64(p + 16, ckpt.key);
  PutU64(p + 24, static_cast<uint64_t>(ckpt.panels_done));
  PutU64(p + 32, static_cast<uint64_t>(ckpt.flat.size()));
  std::memcpy(p + kCkptHeaderBytes, ckpt.flat.data(), payload);
  PutU64(p + kCkptHeaderBytes + payload,
         Fnv1aBytes(p, kCkptHeaderBytes + payload));
  return AtomicWriteFile(path, buf.data(), buf.size());
}

Result<ScanCheckpoint> LoadScanCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("no checkpoint at " + path);
  std::vector<unsigned char> buf((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (in.bad()) return IoError("read " + path);
  if (buf.size() < kCkptHeaderBytes + 8) {
    return DataLossError("truncated checkpoint: " + path);
  }
  const unsigned char* p = buf.data();
  if (std::memcmp(p, kCkptMagic, 8) != 0) {
    return DataLossError("bad checkpoint magic: " + path);
  }
  if (GetU64(p + 8) != kCkptVersion) {
    return DataLossError("unsupported checkpoint version: " + path);
  }
  const int64_t panels_done = static_cast<int64_t>(GetU64(p + 24));
  const int64_t len = static_cast<int64_t>(GetU64(p + 32));
  if (panels_done < 0 || len < 0 || len > kMaxCkptDoubles ||
      buf.size() != kCkptHeaderBytes + static_cast<size_t>(len) * 8 + 8) {
    return DataLossError("checkpoint size mismatch: " + path);
  }
  const size_t payload = static_cast<size_t>(len) * 8;
  if (Fnv1aBytes(p, kCkptHeaderBytes + payload) !=
      GetU64(p + kCkptHeaderBytes + payload)) {
    return DataLossError("checkpoint checksum mismatch: " + path);
  }
  ScanCheckpoint ckpt;
  ckpt.key = GetU64(p + 16);
  ckpt.panels_done = panels_done;
  ckpt.flat.resize(static_cast<size_t>(len));
  std::memcpy(ckpt.flat.data(), p + kCkptHeaderBytes, payload);
  return ckpt;
}

void RemoveScanCheckpoint(const std::string& path) {
  (void)::unlink(path.c_str());
}

}  // namespace dash
