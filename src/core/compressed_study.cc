#include "core/compressed_study.h"

#include <algorithm>
#include <string>
#include <utility>

#include "linalg/cholesky.h"
#include "linalg/qr.h"
#include "net/network.h"

namespace dash {

CompressedStudy CompressedStudy::FromBlock(const Matrix& x, const Matrix& ys,
                                           const Matrix& c) {
  CompressedStudy s;
  s.n_ = x.rows();
  s.m_ = x.cols();
  s.k_ = c.cols();
  s.t_ = ys.cols();
  s.yty_ = TransposeMatMul(ys, ys);
  s.cty_ = TransposeMatMul(c, ys);
  s.ctc_ = TransposeMatMul(c, c);
  s.xty_ = TransposeMatMul(x, ys);
  s.xx_.assign(static_cast<size_t>(s.m_), 0.0);
  for (int64_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_data(i);
    for (int64_t j = 0; j < s.m_; ++j) s.xx_[static_cast<size_t>(j)] += row[j] * row[j];
  }
  s.ctx_ = TransposeMatMul(c, x);
  return s;
}

Result<CompressedStudy> CompressedStudy::Compress(const Matrix& x,
                                                  const Matrix& ys,
                                                  const Matrix& c) {
  if (x.rows() != ys.rows() || c.rows() != x.rows()) {
    return InvalidArgumentError("x, ys, c disagree on sample count");
  }
  if (ys.cols() < 1) return InvalidArgumentError("need at least one phenotype");
  return FromBlock(x, ys, c);
}

int64_t CompressedStudy::FlatLength() const {
  return t_ * t_ + k_ * t_ + k_ * k_ + m_ * t_ + m_ + k_ * m_;
}

Vector CompressedStudy::Flatten() const {
  Vector flat;
  flat.reserve(static_cast<size_t>(FlatLength()));
  const auto append = [&flat](const Matrix& m) {
    flat.insert(flat.end(), m.data(), m.data() + m.size());
  };
  append(yty_);
  append(cty_);
  append(ctc_);
  append(xty_);
  flat.insert(flat.end(), xx_.begin(), xx_.end());
  append(ctx_);
  return flat;
}

Result<CompressedStudy> CompressedStudy::Unflatten(const Vector& flat,
                                                   int64_t n, int64_t m,
                                                   int64_t k, int64_t t) {
  CompressedStudy s;
  s.n_ = n;
  s.m_ = m;
  s.k_ = k;
  s.t_ = t;
  if (static_cast<int64_t>(flat.size()) != s.FlatLength()) {
    return InternalError("compressed statistics have unexpected length");
  }
  size_t pos = 0;
  const auto take = [&flat, &pos](int64_t rows, int64_t cols) {
    Matrix out(rows, cols);
    for (int64_t i = 0; i < out.size(); ++i) out.data()[i] = flat[pos++];
    return out;
  };
  s.yty_ = take(t, t);
  s.cty_ = take(k, t);
  s.ctc_ = take(k, k);
  s.xty_ = take(m, t);
  s.xx_.assign(flat.begin() + pos, flat.begin() + pos + m);
  pos += static_cast<size_t>(m);
  s.ctx_ = take(k, m);
  return s;
}

Result<CompressedStudy::SecureOutput> CompressedStudy::SecureCompress(
    const std::vector<MultiPhenotypePartyData>& parties,
    const SecureScanOptions& options) {
  if (parties.empty()) return InvalidArgumentError("no parties given");
  const int64_t m = parties[0].x.cols();
  const int64_t k = parties[0].c.cols();
  const int64_t t = parties[0].ys.cols();
  std::vector<CompressedStudy> locals;
  for (size_t p = 0; p < parties.size(); ++p) {
    const auto& pd = parties[p];
    if (pd.x.cols() != m || pd.c.cols() != k || pd.ys.cols() != t ||
        pd.ys.rows() != pd.x.rows() || pd.c.rows() != pd.x.rows()) {
      return InvalidArgumentError("party " + std::to_string(p) +
                                  " has inconsistent shapes");
    }
    locals.push_back(FromBlock(pd.x, pd.ys, pd.c));
  }
  return SecureAggregate(locals, options);
}

Result<CompressedStudy::SecureOutput> CompressedStudy::SecureAggregate(
    const std::vector<CompressedStudy>& locals,
    const SecureScanOptions& options) {
  if (locals.empty()) return InvalidArgumentError("no parties given");
  InProcessTransport transport(static_cast<int>(locals.size()));
  return SecureAggregate(locals, options, &transport);
}

Result<CompressedStudy::SecureOutput> CompressedStudy::SecureAggregate(
    const std::vector<CompressedStudy>& locals,
    const SecureScanOptions& options, Transport* transport) {
  DASH_CHECK(transport != nullptr);
  if (locals.empty()) return InvalidArgumentError("no parties given");
  if (transport->num_parties() != static_cast<int>(locals.size()) ||
      transport->local_party() != -1) {
    return InvalidArgumentError(
        "SecureAggregate needs an in-process transport with one slot per "
        "accumulator");
  }
  const int64_t m = locals[0].m_;
  const int64_t k = locals[0].k_;
  const int64_t t = locals[0].t_;
  std::vector<Vector> flats;
  int64_t total = 0;
  for (size_t p = 0; p < locals.size(); ++p) {
    if (locals[p].m_ != m || locals[p].k_ != k || locals[p].t_ != t) {
      return InvalidArgumentError("party " + std::to_string(p) +
                                  " accumulator has inconsistent shape");
    }
    flats.push_back(locals[p].Flatten());
    total += locals[p].n_;
  }

  Transport& network = *transport;
  if (options.trace != nullptr) network.AttachTrace(options.trace);
  SecureSumOptions sum_options;
  sum_options.mode = options.aggregation;
  sum_options.frac_bits = options.frac_bits;
  sum_options.seed = options.seed ^ 0xc0435;
  SecureVectorSum secure_sum(&network, sum_options);
  DASH_ASSIGN_OR_RETURN(Vector totals,
                        secure_sum.Run(ToSecretInputs(std::move(flats))));

  SecureOutput out;
  DASH_ASSIGN_OR_RETURN(out.study, Unflatten(totals, total, m, k, t));
  out.metrics.total_bytes = network.metrics().total_bytes();
  out.metrics.total_messages = network.metrics().total_messages();
  out.metrics.max_link_bytes = network.metrics().MaxLinkBytes();
  out.metrics.rounds = network.metrics().rounds();
  return out;
}

Result<ScanResult> CompressedStudy::Scan(
    int64_t phenotype, const std::vector<int64_t>& covariate_subset) const {
  if (phenotype < 0 || phenotype >= t_) {
    return OutOfRangeError("phenotype index out of range");
  }
  std::vector<int64_t> subset = covariate_subset;
  std::sort(subset.begin(), subset.end());
  for (size_t i = 0; i < subset.size(); ++i) {
    if (subset[i] < 0 || subset[i] >= k_) {
      return OutOfRangeError("covariate index " + std::to_string(subset[i]) +
                             " out of range");
    }
    if (i > 0 && subset[i] == subset[i - 1]) {
      return InvalidArgumentError("duplicate covariate index");
    }
  }
  const int64_t ks = static_cast<int64_t>(subset.size());

  ProjectedSufficientStats stats;
  stats.num_samples = n_;
  stats.num_covariates = ks;
  stats.yy = yty_(phenotype, phenotype);
  stats.xy.resize(static_cast<size_t>(m_));
  stats.xx = xx_;
  for (int64_t j = 0; j < m_; ++j) stats.xy[static_cast<size_t>(j)] = xty_(j, phenotype);

  if (ks == 0) {
    stats.qty_qty = 0.0;
    stats.qtx_qty.assign(static_cast<size_t>(m_), 0.0);
    stats.qtx_qtx.assign(static_cast<size_t>(m_), 0.0);
    return FinalizeScanProjected(stats);
  }

  // Selected Gram block and cross-products.
  Matrix gram(ks, ks);
  Vector cy(static_cast<size_t>(ks));
  Matrix cx(ks, m_);
  for (int64_t a = 0; a < ks; ++a) {
    const int64_t sa = subset[static_cast<size_t>(a)];
    cy[static_cast<size_t>(a)] = cty_(sa, phenotype);
    for (int64_t b = 0; b < ks; ++b) {
      gram(a, b) = ctc_(sa, subset[static_cast<size_t>(b)]);
    }
    for (int64_t j = 0; j < m_; ++j) cx(a, j) = ctx_(sa, j);
  }
  DASH_ASSIGN_OR_RETURN(Matrix l, Cholesky(gram));
  // Qᵀ· = L⁻¹ Cᵀ· over the selected block.
  DASH_ASSIGN_OR_RETURN(Vector qty, SolveLowerTriangular(l, cy));
  stats.qty_qty = SquaredNorm(qty);
  stats.qtx_qty.assign(static_cast<size_t>(m_), 0.0);
  stats.qtx_qtx.assign(static_cast<size_t>(m_), 0.0);
  Vector col(static_cast<size_t>(ks));
  for (int64_t j = 0; j < m_; ++j) {
    for (int64_t a = 0; a < ks; ++a) col[static_cast<size_t>(a)] = cx(a, j);
    DASH_ASSIGN_OR_RETURN(Vector q, SolveLowerTriangular(l, col));
    stats.qtx_qty[static_cast<size_t>(j)] = Dot(q, qty);
    stats.qtx_qtx[static_cast<size_t>(j)] = SquaredNorm(q);
  }
  return FinalizeScanProjected(stats);
}

Result<ScanResult> CompressedStudy::ScanAllCovariates(int64_t phenotype) const {
  std::vector<int64_t> all(static_cast<size_t>(k_));
  for (int64_t i = 0; i < k_; ++i) all[static_cast<size_t>(i)] = i;
  return Scan(phenotype, all);
}

Status CompressedStudy::Merge(const CompressedStudy& other) {
  if (other.m_ != m_ || other.k_ != k_ || other.t_ != t_) {
    return InvalidArgumentError("cannot merge studies with different shapes");
  }
  n_ += other.n_;
  yty_ = MatAdd(yty_, other.yty_);
  cty_ = MatAdd(cty_, other.cty_);
  ctc_ = MatAdd(ctc_, other.ctc_);
  xty_ = MatAdd(xty_, other.xty_);
  for (size_t j = 0; j < xx_.size(); ++j) xx_[j] += other.xx_[j];
  ctx_ = MatAdd(ctx_, other.ctx_);
  return Status::Ok();
}

}  // namespace dash
