#include "core/imputation.h"

#include "data/missing_data.h"
#include "mpc/secure_sum.h"
#include "net/network.h"

namespace dash {

Result<SecureImputationOutput> SecureMeanImpute(
    std::vector<PartyData>* parties, const SecureScanOptions& options) {
  DASH_RETURN_IF_ERROR(ValidateParties(*parties));
  const int num_parties = static_cast<int>(parties->size());
  const int64_t m = (*parties)[0].x.cols();

  // Each party contributes [column sums | non-missing counts].
  std::vector<Vector> contributions;
  contributions.reserve(static_cast<size_t>(num_parties));
  int64_t total_missing = 0;
  for (const auto& p : *parties) {
    const ColumnMoments moments = ColumnSumsAndCounts(p.x);
    total_missing += p.x.size();
    Vector flat;
    flat.reserve(static_cast<size_t>(2 * m));
    flat.insert(flat.end(), moments.sums.begin(), moments.sums.end());
    flat.insert(flat.end(), moments.counts.begin(), moments.counts.end());
    for (const double c : moments.counts) total_missing -= static_cast<int64_t>(c);
    contributions.push_back(std::move(flat));
  }

  Network network(num_parties);
  SecureSumOptions sum_options;
  sum_options.mode = options.aggregation;
  sum_options.frac_bits = options.frac_bits;
  sum_options.seed = options.seed ^ 0x1255;
  SecureVectorSum secure_sum(&network, sum_options);
  DASH_ASSIGN_OR_RETURN(
      Vector totals, secure_sum.Run(ToSecretInputs(std::move(contributions))));

  SecureImputationOutput out;
  out.total_missing = total_missing;
  out.means.assign(static_cast<size_t>(m), 0.0);
  out.call_rates.assign(static_cast<size_t>(m), 0.0);
  int64_t total_samples = 0;
  for (const auto& p : *parties) total_samples += p.num_samples();
  for (int64_t j = 0; j < m; ++j) {
    const double sum = totals[static_cast<size_t>(j)];
    const double count = totals[static_cast<size_t>(m + j)];
    // Secure-sum quantization can leave counts a hair off an integer.
    const double observed = (count > 0.5) ? count : 0.0;
    out.means[static_cast<size_t>(j)] =
        (observed > 0.0) ? sum / observed : 0.0;
    out.call_rates[static_cast<size_t>(j)] =
        (total_samples > 0)
            ? observed / static_cast<double>(total_samples)
            : 0.0;
  }

  for (auto& p : *parties) ImputeWithMeans(out.means, &p.x);

  out.metrics.total_bytes = network.metrics().total_bytes();
  out.metrics.total_messages = network.metrics().total_messages();
  out.metrics.max_link_bytes = network.metrics().MaxLinkBytes();
  out.metrics.rounds = network.metrics().rounds();
  return out;
}

}  // namespace dash
