// Party-local computations of the secure scan — everything a party does
// on its own data without communicating.
//
// Exposed separately from the protocol driver so that a real deployment
// (where each party is its own process) can reuse the exact kernels, and
// so tests can verify each stage in isolation.

#ifndef DASH_CORE_PARTY_LOCAL_H_
#define DASH_CORE_PARTY_LOCAL_H_

#include "core/suff_stats.h"
#include "data/party_split.h"
#include "linalg/matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dash {

// Stage 1: the K x K local R factor of the party's covariate block.
// Discloses only covariate angles, never rows (see paper §3).
Result<Matrix> PartyLocalRFactor(const PartyData& party);

// Stage 2: the party's rows of the global Q, via Q_p = C_p R⁻¹.
Matrix PartyLocalQ(const PartyData& party, const Matrix& r_inverse);

// Stage 3: the party's sufficient-statistic summand.
ScanSufficientStats PartyLocalStats(const PartyData& party, const Matrix& q_p,
                                    ThreadPool* pool = nullptr);

// Stage 3, zero-copy form: the summand computed directly into a
// wire-order arena (StatsWireLayout over the party's M, K) ready for
// the secure sum — no FlattenStats copy.
Vector PartyLocalStatsFlat(const PartyData& party, const Matrix& q_p,
                           ThreadPool* pool = nullptr);

}  // namespace dash

#endif  // DASH_CORE_PARTY_LOCAL_H_
