#include "core/online_scan.h"

#include <string>

#include "core/suff_stats.h"
#include "linalg/cholesky.h"
#include "linalg/qr.h"
#include "util/check.h"

namespace dash {

OnlineScan::OnlineScan(int64_t num_variants, int64_t num_covariates)
    : m_(num_variants), k_(num_covariates),
      cty_(static_cast<size_t>(num_covariates), 0.0),
      ctc_(num_covariates, num_covariates),
      xy_(static_cast<size_t>(num_variants), 0.0),
      xx_(static_cast<size_t>(num_variants), 0.0),
      ctx_(num_covariates, num_variants) {
  DASH_CHECK_GE(num_variants, 0);
  DASH_CHECK_GE(num_covariates, 0);
}

Status OnlineScan::AddBatch(const Matrix& x, const Vector& y,
                            const Matrix& c) {
  const int64_t n = x.rows();
  if (static_cast<int64_t>(y.size()) != n || c.rows() != n) {
    return InvalidArgumentError("batch x, y, c disagree on sample count");
  }
  if (x.cols() != m_) {
    return InvalidArgumentError("batch has " + std::to_string(x.cols()) +
                                " variants; expected " + std::to_string(m_));
  }
  if (c.cols() != k_) {
    return InvalidArgumentError("batch has " + std::to_string(c.cols()) +
                                " covariates; expected " + std::to_string(k_));
  }

  num_samples_ += n;
  ++num_batches_;
  yy_ += SquaredNorm(y);
  const Vector cty = TransposeMatVec(c, y);
  for (size_t i = 0; i < cty_.size(); ++i) cty_[i] += cty[i];
  const Matrix ctc = TransposeMatMul(c, c);
  for (int64_t i = 0; i < ctc_.size(); ++i) ctc_.data()[i] += ctc.data()[i];
  const Matrix ctx = TransposeMatMul(c, x);
  for (int64_t i = 0; i < ctx_.size(); ++i) ctx_.data()[i] += ctx.data()[i];
  for (int64_t i = 0; i < n; ++i) {
    const double* xi = x.row_data(i);
    const double yi = y[static_cast<size_t>(i)];
    for (int64_t j = 0; j < m_; ++j) {
      const double v = xi[j];
      if (v == 0.0) continue;
      xy_[static_cast<size_t>(j)] += v * yi;
      xx_[static_cast<size_t>(j)] += v * v;
    }
  }
  return Status::Ok();
}

Result<ScanResult> OnlineScan::Finalize() const {
  if (num_samples_ <= k_ + 1) {
    return FailedPreconditionError(
        "need N > K + 1 accumulated samples before finalizing (have " +
        std::to_string(num_samples_) + ")");
  }
  ScanSufficientStats s;
  s.num_samples = num_samples_;
  s.yy = yy_;
  s.xy = xy_;
  s.xx = xx_;
  if (k_ == 0) {
    s.qtx = Matrix(0, m_);
    return FinalizeScan(s);
  }

  // CᵀC = L Lᵀ; Qᵀ· = L⁻¹ Cᵀ· .
  DASH_ASSIGN_OR_RETURN(Matrix l, Cholesky(ctc_));
  DASH_ASSIGN_OR_RETURN(s.qty, SolveLowerTriangular(l, cty_));
  s.qtx = Matrix(k_, m_);
  // Column j of QᵀX solves L q = CᵀX[:, j]; do a blocked forward solve
  // across all columns at once for cache friendliness.
  Vector col(static_cast<size_t>(k_));
  for (int64_t j = 0; j < m_; ++j) {
    for (int64_t kk = 0; kk < k_; ++kk) col[static_cast<size_t>(kk)] = ctx_(kk, j);
    DASH_ASSIGN_OR_RETURN(Vector q, SolveLowerTriangular(l, col));
    for (int64_t kk = 0; kk < k_; ++kk) s.qtx(kk, j) = q[static_cast<size_t>(kk)];
  }
  return FinalizeScan(s);
}

}  // namespace dash
