#include "core/grouped_scan.h"

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "core/distributed_qr.h"
#include "core/party_local.h"
#include "linalg/cholesky.h"
#include "linalg/qr.h"
#include "net/network.h"
#include "stats/distributions.h"
#include "util/thread_pool.h"

namespace dash {
namespace {

// Flat layout of the grouped sufficient statistics:
//   [yy | qty(K) | per group: Xgᵀy(T) | XgᵀXg(T*T) | QᵀXg(K*T)]
int64_t FlatLength(int64_t groups, int64_t t, int64_t k) {
  return 1 + k + groups * (t + t * t + k * t);
}

// One block's (party's) contribution, written into `flat`.
Vector ComputeGroupedFlat(const Matrix& x, int64_t t, const Vector& y,
                          const Matrix& q) {
  const int64_t n = x.rows();
  const int64_t k = q.cols();
  const int64_t groups = x.cols() / t;
  Vector flat(static_cast<size_t>(FlatLength(groups, t, k)), 0.0);
  flat[0] = SquaredNorm(y);
  const Vector qty = TransposeMatVec(q, y);
  for (int64_t kk = 0; kk < k; ++kk) flat[static_cast<size_t>(1 + kk)] = qty[static_cast<size_t>(kk)];

  const int64_t per_group = t + t * t + k * t;
  for (int64_t g = 0; g < groups; ++g) {
    const size_t base = static_cast<size_t>(1 + k + g * per_group);
    for (int64_t i = 0; i < n; ++i) {
      const double* xi = x.row_data(i) + g * t;
      const double yi = y[static_cast<size_t>(i)];
      const double* qi = q.row_data(i);
      for (int64_t a = 0; a < t; ++a) {
        const double va = xi[a];
        if (va == 0.0) continue;
        flat[base + static_cast<size_t>(a)] += va * yi;
        for (int64_t b = 0; b < t; ++b) {
          flat[base + static_cast<size_t>(t + a * t + b)] += va * xi[b];
        }
        for (int64_t kk = 0; kk < k; ++kk) {
          flat[base + static_cast<size_t>(t + t * t + kk * t + a)] +=
              va * qi[kk];
        }
      }
    }
  }
  return flat;
}

// Lemma-2.1-style finalization of the aggregated grouped statistics.
Result<GroupedScanResult> FinalizeGrouped(const Vector& flat, int64_t n,
                                          int64_t groups, int64_t t,
                                          int64_t k) {
  if (static_cast<int64_t>(flat.size()) != FlatLength(groups, t, k)) {
    return InternalError("grouped statistics have unexpected length");
  }
  const int64_t dof2 = n - k - t;
  if (dof2 <= 0) {
    return InvalidArgumentError("need N > K + T samples for the grouped scan");
  }

  Vector qty(static_cast<size_t>(k));
  for (int64_t kk = 0; kk < k; ++kk) qty[static_cast<size_t>(kk)] = flat[static_cast<size_t>(1 + kk)];
  const double yyq = flat[0] - SquaredNorm(qty);

  GroupedScanResult out;
  out.dof1 = t;
  out.dof2 = dof2;
  out.beta = Matrix(t, groups);
  out.se = Matrix(t, groups);
  out.fstat.assign(static_cast<size_t>(groups), 0.0);
  out.pval.assign(static_cast<size_t>(groups), 0.0);

  const double nan = std::nan("");
  const int64_t per_group = t + t * t + k * t;
  for (int64_t g = 0; g < groups; ++g) {
    const size_t base = static_cast<size_t>(1 + k + g * per_group);
    // Residualized right-hand side and Gram block.
    Vector b(static_cast<size_t>(t));
    Matrix gram(t, t);
    for (int64_t a = 0; a < t; ++a) {
      double qdot = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        qdot += flat[base + static_cast<size_t>(t + t * t + kk * t + a)] *
                qty[static_cast<size_t>(kk)];
      }
      b[static_cast<size_t>(a)] = flat[base + static_cast<size_t>(a)] - qdot;
      for (int64_t c = 0; c < t; ++c) {
        double qq = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) {
          qq += flat[base + static_cast<size_t>(t + t * t + kk * t + a)] *
                flat[base + static_cast<size_t>(t + t * t + kk * t + c)];
        }
        gram(a, c) = flat[base + static_cast<size_t>(t + a * t + c)] - qq;
      }
    }

    const auto mark_untestable = [&] {
      for (int64_t a = 0; a < t; ++a) {
        out.beta(a, g) = nan;
        out.se(a, g) = nan;
      }
      out.fstat[static_cast<size_t>(g)] = nan;
      out.pval[static_cast<size_t>(g)] = nan;
      ++out.num_untestable;
    };

    const auto chol = Cholesky(gram);
    if (!chol.ok()) {
      mark_untestable();
      continue;
    }
    const Matrix& l = chol.value();
    // B = G⁻¹ b via the factor; explained SS = bᵀB.
    const auto z = SolveLowerTriangular(l, b);
    if (!z.ok()) {
      mark_untestable();
      continue;
    }
    const auto beta_g = SolveUpperTriangular(Transpose(l), z.value());
    if (!beta_g.ok()) {
      mark_untestable();
      continue;
    }
    const double explained = Dot(b, beta_g.value());
    double rss = yyq - explained;
    if (rss < 0.0) rss = 0.0;
    const double sigma2 = rss / static_cast<double>(dof2);

    // diag(G⁻¹) from the inverse factor: (G⁻¹)_aa = Σ_r (L⁻¹)_{r a}².
    Matrix linv(t, t);
    bool ok = true;
    for (int64_t col = 0; col < t; ++col) {
      Vector e(static_cast<size_t>(t), 0.0);
      e[static_cast<size_t>(col)] = 1.0;
      const auto sol = SolveLowerTriangular(l, e);
      if (!sol.ok()) {
        ok = false;
        break;
      }
      for (int64_t r = 0; r < t; ++r) linv(r, col) = sol.value()[static_cast<size_t>(r)];
    }
    if (!ok) {
      mark_untestable();
      continue;
    }
    for (int64_t a = 0; a < t; ++a) {
      double inv_diag = 0.0;
      for (int64_t r = 0; r < t; ++r) inv_diag += linv(r, a) * linv(r, a);
      out.beta(a, g) = beta_g.value()[static_cast<size_t>(a)];
      out.se(a, g) = std::sqrt(sigma2 * inv_diag);
    }
    const double f =
        (sigma2 > 0.0)
            ? (explained / static_cast<double>(t)) / sigma2
            : std::numeric_limits<double>::infinity();
    out.fstat[static_cast<size_t>(g)] = f;
    out.pval[static_cast<size_t>(g)] =
        FSf(f, static_cast<double>(t), static_cast<double>(dof2));
  }
  return out;
}

Status ValidateGroupShape(int64_t cols, int64_t group_size) {
  if (group_size < 1) return InvalidArgumentError("group_size must be >= 1");
  if (cols == 0 || cols % group_size != 0) {
    return InvalidArgumentError(
        "x.cols()=" + std::to_string(cols) +
        " is not a positive multiple of group_size=" +
        std::to_string(group_size));
  }
  return Status::Ok();
}

}  // namespace

Result<GroupedScanResult> GroupedScan(const Matrix& x, int64_t group_size,
                                      const Vector& y, const Matrix& c,
                                      const ScanOptions& /*options*/) {
  DASH_RETURN_IF_ERROR(ValidateGroupShape(x.cols(), group_size));
  if (x.rows() != static_cast<int64_t>(y.size()) || c.rows() != x.rows()) {
    return InvalidArgumentError("x, y, c disagree on sample count");
  }
  Matrix q(x.rows(), 0);
  if (c.cols() > 0) {
    DASH_ASSIGN_OR_RETURN(QrDecomposition qr, ThinQr(c));
    q = std::move(qr.q);
  }
  const Vector flat = ComputeGroupedFlat(x, group_size, y, q);
  return FinalizeGrouped(flat, x.rows(), x.cols() / group_size, group_size,
                         c.cols());
}

Result<SecureGroupedScanOutput> SecureGroupedScan(
    const std::vector<PartyData>& parties, int64_t group_size,
    const SecureScanOptions& options) {
  DASH_RETURN_IF_ERROR(ValidateParties(parties));
  DASH_RETURN_IF_ERROR(ValidateGroupShape(parties[0].x.cols(), group_size));
  const int num_parties = static_cast<int>(parties.size());
  const int64_t k = parties[0].c.cols();
  const int64_t groups = parties[0].x.cols() / group_size;

  Network network(num_parties);
  Matrix r_inverse(0, 0);
  if (k > 0) {
    std::vector<Matrix> local_r;
    for (const auto& p : parties) {
      DASH_ASSIGN_OR_RETURN(Matrix r, PartyLocalRFactor(p));
      local_r.push_back(std::move(r));
    }
    DASH_ASSIGN_OR_RETURN(
        DistributedQrResult qr,
        CombineRFactorsOverNetwork(&network, local_r, options.r_combine));
    r_inverse = std::move(qr.r_inverse);
  }

  std::vector<Vector> flats;
  int64_t total_samples = 0;
  for (const auto& p : parties) {
    const Matrix q_p =
        (k > 0) ? PartyLocalQ(p, r_inverse) : Matrix(p.num_samples(), 0);
    flats.push_back(ComputeGroupedFlat(p.x, group_size, p.y, q_p));
    total_samples += p.num_samples();
  }

  SecureSumOptions sum_options;
  sum_options.mode = options.aggregation;
  sum_options.frac_bits = options.frac_bits;
  sum_options.seed = options.seed;
  SecureVectorSum secure_sum(&network, sum_options);
  DASH_ASSIGN_OR_RETURN(Vector totals,
                        secure_sum.Run(ToSecretInputs(std::move(flats))));

  SecureGroupedScanOutput out;
  DASH_ASSIGN_OR_RETURN(
      out.result,
      FinalizeGrouped(totals, total_samples, groups, group_size, k));
  out.metrics.total_bytes = network.metrics().total_bytes();
  out.metrics.total_messages = network.metrics().total_messages();
  out.metrics.max_link_bytes = network.metrics().MaxLinkBytes();
  out.metrics.rounds = network.metrics().rounds();
  return out;
}

Result<Matrix> WithInteractionTerms(const Matrix& x, const Vector& e) {
  if (static_cast<int64_t>(e.size()) != x.rows()) {
    return InvalidArgumentError("environment vector must match sample count");
  }
  Matrix out(x.rows(), 2 * x.cols());
  for (int64_t i = 0; i < x.rows(); ++i) {
    const double ei = e[static_cast<size_t>(i)];
    for (int64_t j = 0; j < x.cols(); ++j) {
      out(i, 2 * j) = x(i, j);
      out(i, 2 * j + 1) = x(i, j) * ei;
    }
  }
  return out;
}

}  // namespace dash
