// Multiple-phenotype association scans (paper §5).
//
// For T phenotypes sharing one X and C (biobanks, eQTL studies), the
// expensive statistics X.X and QᵀX are phenotype-independent; only the
// cheap y-side statistics (y.y, Qᵀy, X.y) are per-phenotype. The secure
// variant aggregates all T phenotypes' statistics in a single secure-sum
// round, so the marginal cost of a phenotype is O(M) compute and O(M)
// bytes.

#ifndef DASH_CORE_MULTI_PHENOTYPE_SCAN_H_
#define DASH_CORE_MULTI_PHENOTYPE_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/association_scan.h"
#include "core/scan_result.h"
#include "core/secure_scan.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

// One party's block with a phenotype matrix (N_p x T) instead of a
// single vector.
struct MultiPhenotypePartyData {
  Matrix x;   // N_p x M
  Matrix ys;  // N_p x T
  Matrix c;   // N_p x K

  int64_t num_samples() const { return x.rows(); }
};

// Single-site scan of every phenotype column; result t corresponds to
// ys.Col(t).
Result<std::vector<ScanResult>> MultiPhenotypeScan(
    const Matrix& x, const Matrix& ys, const Matrix& c,
    const ScanOptions& options = {});

struct SecureMultiPhenotypeOutput {
  std::vector<ScanResult> results;  // one per phenotype
  SecureScanMetrics metrics;
};

// Secure multi-party version: one R combination plus one secure-sum
// aggregation covering all phenotypes.
Result<SecureMultiPhenotypeOutput> SecureMultiPhenotypeScan(
    const std::vector<MultiPhenotypePartyData>& parties,
    const SecureScanOptions& options = {});

}  // namespace dash

#endif  // DASH_CORE_MULTI_PHENOTYPE_SCAN_H_
