// Durable checkpoints of partial scan sufficient statistics
// (DESIGN.md §15).
//
// The streaming scan (core/streaming_stats.h) folds genotype panels
// into a wire-order accumulator; every K panels it snapshots that
// accumulator to disk so a killed party resumes from the last snapshot
// instead of panel 0. A checkpoint is a plain file:
//
//   [magic "DASHCKPT" | u64 version | u64 key | i64 panels_done |
//    i64 len | len doubles | u64 checksum]
//
// with the FNV-1a checksum closing every preceding byte. Writes are
// atomic and durable (tmp file + fsync + rename + directory fsync via
// AtomicWriteFile), so a crash mid-write leaves either the previous
// checkpoint or a complete new one under the final name — never a torn
// file. `key` binds the snapshot to the study content fingerprint plus
// the scan shape; LoadScanCheckpoint refuses anything whose key, size,
// or checksum disagrees, and resume logic treats EVERY load failure as
// "no checkpoint" (restart from panel 0) — a corrupt snapshot can cost
// time, never correctness.
//
// Secrecy note (PROTOCOL.md): the snapshot holds one party's LOCAL
// accumulator — data that party computed from its own rows and already
// holds in RAM. It is written only to that party's own disk and read
// only by that party; no new reveal point is introduced.

#ifndef DASH_CORE_SCAN_CHECKPOINT_H_
#define DASH_CORE_SCAN_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "linalg/vector_ops.h"
#include "util/status.h"

namespace dash {

struct ScanCheckpoint {
  uint64_t key = 0;          // ScanCheckpointKey() of the job
  int64_t panels_done = 0;   // panels [0, panels_done) are folded in
  Vector flat;               // wire-order accumulator (StatsWireLayout)
};

// The binding key: study content fingerprint (data/panel_stream.h)
// chained with the scan shape, so a checkpoint can never be resumed
// against different data or a different (M, K).
uint64_t ScanCheckpointKey(uint64_t study_fingerprint, int64_t num_variants,
                           int64_t num_covariates);

// Atomic, durable snapshot write (see file comment).
Status SaveScanCheckpoint(const std::string& path, const ScanCheckpoint& ckpt);

// Reads and fully validates a snapshot (magic, version, checksum,
// declared length vs file size). NotFound when absent; DataLoss when
// present but unusable.
Result<ScanCheckpoint> LoadScanCheckpoint(const std::string& path);

// Best-effort removal (success's cleanup; a leftover checkpoint is
// harmless because the key check rejects it once the study changes).
void RemoveScanCheckpoint(const std::string& path);

}  // namespace dash

#endif  // DASH_CORE_SCAN_CHECKPOINT_H_
