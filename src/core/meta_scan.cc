#include "core/meta_scan.h"

#include <cmath>

#include "stats/meta_analysis.h"

namespace dash {

Result<MetaScanResult> MetaAnalysisScan(const std::vector<PartyData>& parties,
                                        const ScanOptions& options) {
  DASH_RETURN_IF_ERROR(ValidateParties(parties));
  std::vector<ScanResult> per_party;
  per_party.reserve(parties.size());
  for (const auto& p : parties) {
    DASH_ASSIGN_OR_RETURN(ScanResult r,
                          AssociationScan(p.x, p.y, p.c, options));
    per_party.push_back(std::move(r));
  }

  const int64_t m = per_party[0].num_variants();
  MetaScanResult out;
  const auto alloc = [m](Vector* v) { v->assign(static_cast<size_t>(m), 0.0); };
  alloc(&out.beta);
  alloc(&out.se);
  alloc(&out.z);
  alloc(&out.pval);
  alloc(&out.cochran_q);
  alloc(&out.q_pval);
  alloc(&out.re_beta);
  alloc(&out.re_se);
  alloc(&out.re_pval);
  alloc(&out.tau2);

  const double nan = std::nan("");
  Vector betas(parties.size());
  Vector ses(parties.size());
  for (int64_t j = 0; j < m; ++j) {
    const size_t i = static_cast<size_t>(j);
    bool usable = true;
    for (size_t p = 0; p < parties.size(); ++p) {
      const double b = per_party[p].beta[i];
      const double s = per_party[p].se[i];
      if (std::isnan(b) || !(s > 0.0)) {
        usable = false;
        break;
      }
      betas[p] = b;
      ses[p] = s;
    }
    if (!usable) {
      out.beta[i] = out.se[i] = out.z[i] = out.pval[i] = nan;
      out.cochran_q[i] = out.q_pval[i] = nan;
      out.re_beta[i] = out.re_se[i] = out.re_pval[i] = out.tau2[i] = nan;
      continue;
    }
    DASH_ASSIGN_OR_RETURN(MetaAnalysisResult fixed, FixedEffectMeta(betas, ses));
    DASH_ASSIGN_OR_RETURN(MetaAnalysisResult random,
                          RandomEffectsMeta(betas, ses));
    out.beta[i] = fixed.beta;
    out.se[i] = fixed.se;
    out.z[i] = fixed.z;
    out.pval[i] = fixed.p_value;
    out.cochran_q[i] = fixed.cochran_q;
    out.q_pval[i] = fixed.q_p_value;
    out.re_beta[i] = random.beta;
    out.re_se[i] = random.se;
    out.re_pval[i] = random.p_value;
    out.tau2[i] = random.tau2;
  }
  return out;
}

}  // namespace dash
