#include "core/scan_result.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "stats/distributions.h"
#include "util/csv.h"
#include "util/strings.h"

namespace dash {

int64_t ScanResult::TopHit() const {
  int64_t best = -1;
  double best_p = std::numeric_limits<double>::infinity();
  for (int64_t m = 0; m < num_variants(); ++m) {
    const double p = pval[static_cast<size_t>(m)];
    if (!std::isnan(p) && p < best_p) {
      best_p = p;
      best = m;
    }
  }
  return best;
}

Status ScanResult::WriteCsv(const std::string& path) const {
  CsvTable table({"variant", "beta", "se", "tstat", "pval"});
  for (int64_t m = 0; m < num_variants(); ++m) {
    const size_t i = static_cast<size_t>(m);
    table.AddRow({std::to_string(m), DoubleToString(beta[i]),
                  DoubleToString(se[i]), DoubleToString(tstat[i]),
                  DoubleToString(pval[i])});
  }
  return table.WriteFile(path);
}

Result<ScanResult> FinalizeScanProjected(const ProjectedSufficientStats& s) {
  const int64_t m = static_cast<int64_t>(s.xy.size());
  const int64_t dof = s.num_samples - s.num_covariates - 1;
  if (dof <= 0) {
    return InvalidArgumentError(
        "non-positive degrees of freedom: N=" + std::to_string(s.num_samples) +
        ", K=" + std::to_string(s.num_covariates));
  }
  if (static_cast<int64_t>(s.xx.size()) != m ||
      static_cast<int64_t>(s.qtx_qty.size()) != m ||
      static_cast<int64_t>(s.qtx_qtx.size()) != m) {
    return InvalidArgumentError("projected statistics disagree in length");
  }

  const double yyq = s.yy - s.qty_qty;

  ScanResult out;
  out.dof = dof;
  out.beta.assign(static_cast<size_t>(m), 0.0);
  out.se.assign(static_cast<size_t>(m), 0.0);
  out.tstat.assign(static_cast<size_t>(m), 0.0);
  out.pval.assign(static_cast<size_t>(m), 0.0);

  const double nan = std::nan("");
  for (int64_t j = 0; j < m; ++j) {
    const size_t i = static_cast<size_t>(j);
    const double xxq = s.xx[i] - s.qtx_qtx[i];
    // Relative test: residual variation indistinguishable from roundoff
    // means X_j lies in the span of the permanent covariates.
    if (!(xxq > 1e-12 * (s.xx[i] + 1.0))) {
      out.beta[i] = nan;
      out.se[i] = nan;
      out.tstat[i] = nan;
      out.pval[i] = nan;
      ++out.num_untestable;
      continue;
    }
    const double xyq = s.xy[i] - s.qtx_qty[i];
    const double beta = xyq / xxq;
    double sigma2 = (yyq / xxq - beta * beta) / static_cast<double>(dof);
    if (sigma2 < 0.0) sigma2 = 0.0;  // roundoff guard for perfect fits
    const double se = std::sqrt(sigma2);
    out.beta[i] = beta;
    out.se[i] = se;
    if (se > 0.0) {
      const double t = beta / se;
      out.tstat[i] = t;
      out.pval[i] = StudentTTwoSidedPValue(t, static_cast<double>(dof));
    } else {
      out.tstat[i] = (beta == 0.0) ? 0.0 : std::copysign(
          std::numeric_limits<double>::infinity(), beta);
      out.pval[i] = (beta == 0.0) ? 1.0 : 0.0;
    }
  }
  return out;
}

Result<ScanResult> FinalizeScan(const ScanSufficientStats& totals) {
  const int64_t m = totals.num_variants();
  const int64_t k = totals.num_covariates();
  // Project the K-vector statistics down to the scalars Lemma 2.1 uses
  // and share the finalization path with the Beaver-secured aggregation.
  ProjectedSufficientStats proj;
  proj.num_samples = totals.num_samples;
  proj.num_covariates = k;
  proj.yy = totals.yy;
  proj.xy = totals.xy;
  proj.xx = totals.xx;
  proj.qty_qty = SquaredNorm(totals.qty);
  proj.qtx_qty.assign(static_cast<size_t>(m), 0.0);
  proj.qtx_qtx.assign(static_cast<size_t>(m), 0.0);
  for (int64_t j = 0; j < m; ++j) {
    double qq = 0.0;
    double qy = 0.0;
    for (int64_t kk = 0; kk < k; ++kk) {
      const double q = totals.qtx(kk, j);
      qy += q * totals.qty[static_cast<size_t>(kk)];
      qq += q * q;
    }
    proj.qtx_qty[static_cast<size_t>(j)] = qy;
    proj.qtx_qtx[static_cast<size_t>(j)] = qq;
  }
  return FinalizeScanProjected(proj);
}

namespace {

uint64_t ChecksumVector(uint64_t h, const Vector& v) {
  for (const double x : v) {
    uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    for (int b = 0; b < 64; b += 8) {
      h ^= (bits >> b) & 0xFFu;
      h *= 0x100000001B3ull;
    }
  }
  return h;
}

}  // namespace

uint64_t ScanResultChecksum(const ScanResult& result) {
  uint64_t h = 0xcbf29ce484222325ull;
  h = ChecksumVector(h, result.beta);
  h = ChecksumVector(h, result.se);
  h = ChecksumVector(h, result.tstat);
  h = ChecksumVector(h, result.pval);
  return h;
}

}  // namespace dash
