// Online / batched association scan via Cᵀ-compression (paper §5 and
// preface).
//
// The preface imagines secure GWAS running "in online fashion as new
// batches of samples come online". The §5 remark that one "can
// alternatively compress using Cᵀ rather than Qᵀ" makes this possible:
// the statistics
//
//   y.y, Cᵀy (K), CᵀC (K x K), X.y (M), X.X (M), CᵀX (K x M)
//
// are all additive over sample batches, unlike Qᵀ-statistics (Q changes
// whenever C grows). Finalize() recovers the Q-statistics from the
// Cholesky factor of CᵀC (Qᵀ = L⁻¹Cᵀ where CᵀC = LLᵀ) and applies
// Lemma 2.1 — the result is identical to rescanning all data from
// scratch, but each batch is touched once.

#ifndef DASH_CORE_ONLINE_SCAN_H_
#define DASH_CORE_ONLINE_SCAN_H_

#include <cstdint>

#include "core/scan_result.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

class OnlineScan {
 public:
  // Fixes the study shape up front; every batch must bring M transient
  // and K permanent covariates.
  OnlineScan(int64_t num_variants, int64_t num_covariates);

  // Folds a batch of samples into the running statistics.
  Status AddBatch(const Matrix& x, const Vector& y, const Matrix& c);

  // Scan over everything seen so far. Requires N > K + 1 and CᵀC
  // positive definite (full-column-rank accumulated C).
  Result<ScanResult> Finalize() const;

  int64_t samples_seen() const { return num_samples_; }
  int64_t batches_seen() const { return num_batches_; }

 private:
  int64_t m_;
  int64_t k_;
  int64_t num_samples_ = 0;
  int64_t num_batches_ = 0;
  double yy_ = 0.0;
  Vector cty_;   // K
  Matrix ctc_;   // K x K
  Vector xy_;    // M
  Vector xx_;    // M
  Matrix ctx_;   // K x M
};

}  // namespace dash

#endif  // DASH_CORE_ONLINE_SCAN_H_
