#include "core/streaming_stats.h"

#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "core/scan_checkpoint.h"
#include "core/suff_stats.h"
#include "util/check.h"

namespace dash {

// The whole design hinges on disk panels being exactly the kernels'
// row-panel granularity; see streaming_stats.h.
static_assert(kStudyPanelRows == kStatsRowPanel,
              "DASHPACK panel rows must match the kernel row panel");
static_assert(kStudyPanelRows % PackedGenotypeMatrix::kRowsPerWord == 0,
              "panels must fall on packed-word boundaries");

namespace {

// Attempts to seed the accumulator from a checkpoint. Any failure —
// absent, torn, checksum mismatch, wrong study, wrong shape — means
// "start from panel 0"; a bad checkpoint may cost time, never
// correctness.
int64_t TrySeedFromCheckpoint(const std::string& path, uint64_t key,
                              int64_t total_len, int64_t num_panels,
                              Vector* flat) {
  Result<ScanCheckpoint> loaded = LoadScanCheckpoint(path);
  if (!loaded.ok()) return 0;
  ScanCheckpoint& ckpt = loaded.value();
  if (ckpt.key != key || static_cast<int64_t>(ckpt.flat.size()) != total_len ||
      ckpt.panels_done < 0 || ckpt.panels_done > num_panels) {
    return 0;
  }
  *flat = std::move(ckpt.flat);
  return ckpt.panels_done;
}

}  // namespace

Result<StreamingStatsResult> ComputeLocalStatsStreamed(
    PanelSource* source, const Vector& y, const Matrix& q,
    const StreamingStatsOptions& options) {
  DASH_CHECK(source != nullptr);
  const int64_t n = source->num_samples();
  const int64_t m = source->num_variants();
  const int64_t k = q.cols();
  if (static_cast<int64_t>(y.size()) != n || q.rows() != n) {
    return InvalidArgumentError(
        "ComputeLocalStatsStreamed: y/q rows must match the study (" +
        std::to_string(n) + " samples, got " + std::to_string(y.size()) +
        " phenotypes, " + std::to_string(q.rows()) + " covariate rows)");
  }
  if (options.checkpoint_every_panels <= 0) {
    return InvalidArgumentError(
        "ComputeLocalStatsStreamed: checkpoint_every_panels must be >= 1");
  }

  const StatsWireLayout layout{m, k};
  const int64_t num_panels = source->num_panels();
  const uint64_t key = ScanCheckpointKey(source->fingerprint(), m, k);

  StreamingStatsResult result;
  result.num_samples = n;
  result.flat.assign(static_cast<size_t>(layout.total_len()), 0.0);

  int64_t start_panel = 0;
  if (!options.checkpoint_path.empty()) {
    start_panel = TrySeedFromCheckpoint(options.checkpoint_path, key,
                                        layout.total_len(), num_panels,
                                        &result.flat);
  }
  result.resumed_from_panel = start_panel;

  const StatsBlockView view{result.flat.data() + layout.xy_offset(),
                            result.flat.data() + layout.xx_offset(),
                            result.flat.data() + layout.qtx_offset(), m};

  // The prefetcher keeps the next panel's disk read in flight while the
  // kernels fold the current one. The non-prefetch path reads inline
  // (simpler failure surface; used by tests to isolate kernel behavior).
  std::optional<PanelPrefetcher> prefetcher;
  if (options.prefetch && start_panel < num_panels) {
    prefetcher.emplace(source, start_panel);
  }
  PackedGenotypeMatrix inline_panel(0, 0);
  Vector y_panel;
  Matrix q_panel;

  for (int64_t p = start_panel; p < num_panels; ++p) {
    const PackedGenotypeMatrix* panel = nullptr;
    if (prefetcher.has_value()) {
      DASH_ASSIGN_OR_RETURN(panel, prefetcher->Next());
    } else {
      DASH_RETURN_IF_ERROR(source->ReadPanel(p, &inline_panel));
      panel = &inline_panel;
    }
    const int64_t r0 = source->panel_begin_row(p);
    const int64_t rows = panel->rows();
    DASH_CHECK(rows == source->panel_rows(p) && panel->cols() == m)
        << "panel " << p << " shape drifted from the source's geometry";

    // Slice this panel's rows of y and q into dense scratch the packed
    // kernel can consume directly (q rows are contiguous, one memcpy).
    y_panel.assign(y.begin() + r0, y.begin() + r0 + rows);
    if (q_panel.rows() != rows || q_panel.cols() != k) {
      q_panel = Matrix(rows, k);
    }
    std::memcpy(q_panel.data(), q.row_data(r0),
                static_cast<size_t>(rows * k) * sizeof(double));

    ComputeStatsColumnsPacked(*panel, y_panel, q_panel, 0, m, view,
                              options.pool);
    ++result.panels_streamed;

    if (options.panel_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.panel_delay_ms));
    }

    const bool checkpoint_due =
        !options.checkpoint_path.empty() && p + 1 < num_panels &&
        (p + 1) % options.checkpoint_every_panels == 0;
    if (checkpoint_due) {
      ScanCheckpoint ckpt;
      ckpt.key = key;
      ckpt.panels_done = p + 1;
      ckpt.flat = result.flat;
      DASH_RETURN_IF_ERROR(
          SaveScanCheckpoint(options.checkpoint_path, ckpt));
      ++result.checkpoints_written;
    }

    // Injected crash: stop mid-stream with whatever checkpoints a real
    // SIGKILL would have left (none flushed for this partial tail).
    if (options.fail_after_panels >= 0 &&
        result.panels_streamed >= options.fail_after_panels) {
      return UnavailableError(
          "injected streaming failure after " +
          std::to_string(result.panels_streamed) + " panels (panel " +
          std::to_string(p) + ")");
    }
  }

  // Header statistics come from the RAM-resident factors, after the
  // panel loop — same expressions, same order as the in-memory path
  // (FillHeader in suff_stats.cc), so the header is bit-identical too.
  result.flat[static_cast<size_t>(layout.yy_offset())] = SquaredNorm(y);
  const Vector qty = TransposeMatVec(q, y);
  std::memcpy(result.flat.data() + layout.qty_offset(), qty.data(),
              static_cast<size_t>(k) * sizeof(double));
  return result;
}

}  // namespace dash
