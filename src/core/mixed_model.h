// Linear mixed-model extension (paper §5).
//
// With a shared kinship kernel K = U diag(s) Uᵀ and variance ratio
// delta = sigma_g² / sigma_e², the GLS model
//   y ~ Normal(X beta + C gamma, sigma² (delta K + I))
// whitens to OLS under the rotation W = diag(1/sqrt(delta s_i + 1)) Uᵀ:
// scan W X against W y with covariates W C. The paper notes this works
// "if an (eigendecomposition of) the kinship kernel can be shared" —
// the rotation mixes rows across parties, so this module provides the
// single-site/pooled form plus the GRM construction used to build K
// from genotypes.

#ifndef DASH_CORE_MIXED_MODEL_H_
#define DASH_CORE_MIXED_MODEL_H_

#include "core/association_scan.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

// Genetic relatedness matrix Z Zᵀ / M from column-standardized
// genotypes (columns with zero variance are dropped from the average).
Matrix ComputeGrm(const Matrix& genotypes);

// The whitening transform W = diag(1/sqrt(delta s + 1)) Uᵀ.
class MixedModelTransform {
 public:
  // kinship must be symmetric PSD (within roundoff); delta >= 0.
  static Result<MixedModelTransform> Build(const Matrix& kinship,
                                           double delta);

  Vector ApplyToVector(const Vector& v) const;
  Matrix ApplyToMatrix(const Matrix& m) const;

  double delta() const { return delta_; }
  const Vector& eigenvalues() const { return eigenvalues_; }

 private:
  MixedModelTransform() = default;

  Matrix rotation_;  // N x N: diag(w) Uᵀ
  Vector eigenvalues_;
  double delta_ = 0.0;
};

// Whiten-then-scan: the LMM association scan.
Result<ScanResult> MixedModelScan(const Matrix& x, const Vector& y,
                                  const Matrix& c, const Matrix& kinship,
                                  double delta,
                                  const ScanOptions& options = {});

}  // namespace dash

#endif  // DASH_CORE_MIXED_MODEL_H_
