// Gene burden tests (paper §5).
//
// A burden test collapses the M variant columns into G gene scores via a
// weight matrix W (M x G): B = X W. Because matrix multiplication is
// associative, each party can form its own B_p = X_p W locally — the
// projection acts on the variant axis, not the sample axis — and then
// the ordinary (secure) association scan runs on B. The secure variants
// therefore compose for free; this module provides the weight-matrix
// machinery and the composed scans.

#ifndef DASH_CORE_BURDEN_SCAN_H_
#define DASH_CORE_BURDEN_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/association_scan.h"
#include "core/secure_scan.h"
#include "data/party_split.h"
#include "util/status.h"

namespace dash {

// Builds an M x G 0/1 membership weight matrix from per-variant gene
// assignments (values in [0, num_genes)).
Result<Matrix> BurdenWeightsFromGeneAssignment(
    const std::vector<int64_t>& gene_of_variant, int64_t num_genes);

// Applies B_p = X_p W to every party (y and C pass through).
Result<std::vector<PartyData>> ApplyBurdenWeights(
    const std::vector<PartyData>& parties, const Matrix& weights);

// Single-site burden scan: scan of X W against y with covariates c.
Result<ScanResult> BurdenScan(const Matrix& x, const Matrix& weights,
                              const Vector& y, const Matrix& c,
                              const ScanOptions& options = {});

// Secure multi-party burden scan: local projection then the DASH
// protocol on the gene scores.
Result<SecureScanOutput> SecureBurdenScan(
    const std::vector<PartyData>& parties, const Matrix& weights,
    const SecureScanOptions& options = {});

}  // namespace dash

#endif  // DASH_CORE_BURDEN_SCAN_H_
