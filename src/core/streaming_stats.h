// Out-of-core sufficient statistics with checkpoint/resume
// (DESIGN.md §15).
//
// ComputeLocalStatsStreamed is the streaming sibling of
// ComputeLocalStatsPackedFlat: it folds the genotype matrix into the
// wire-order accumulator one kStudyPanelRows-row panel at a time from a
// PanelSource (a DASHPACK file, or an in-memory matrix), instead of
// requiring all of X resident. Its correctness contract is the strong
// one the rest of the tree relies on:
//
//   BIT-IDENTITY. The streamed flat vector equals the in-memory
//   ComputeLocalStatsPackedFlat result bit for bit, on every kernel
//   ISA. This falls out of the kernels' accumulate-into-out contract
//   (suff_stats.h): each per-element IEEE-754 add chain is spilled to
//   the arena at panel boundaries and re-seeded by the next call, and
//   panels are exactly the kernels' own row-panel granularity
//   (kStatsRowPanel == kStudyPanelRows), so streaming changes where
//   the accumulator LIVES between rows, never the order or rounding of
//   any add. X·X is integer-exact throughout. y and the covariate
//   block stay RAM-resident; the yy/Qᵀy header is computed from them
//   after the panel loop, exactly as the in-memory path does.
//
//   RESUME. With a checkpoint path set, the accumulator is snapshotted
//   every checkpoint_every_panels panels (atomic + durable;
//   core/scan_checkpoint.h). On entry, a valid snapshot whose key
//   matches this study and shape seeds the accumulator and the panel
//   cursor; anything invalid or mismatched is ignored (fresh start).
//   Because a snapshot IS the accumulator mid-chain, a resumed run's
//   result is bit-identical to an uninterrupted one.
//
// I/O overlaps compute through PanelPrefetcher (double buffering) —
// the disk analogue of scan_pipeline.h's compute/communication overlap.

#ifndef DASH_CORE_STREAMING_STATS_H_
#define DASH_CORE_STREAMING_STATS_H_

#include <cstdint>
#include <string>

#include "data/panel_stream.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dash {

struct StreamingStatsOptions {
  // Empty disables checkpointing entirely.
  std::string checkpoint_path;

  // Snapshot cadence, in panels of kStudyPanelRows rows. Each snapshot
  // is an fsynced rewrite of the accumulator, so the cadence trades
  // re-streamed panels after a crash against checkpoint I/O.
  int64_t checkpoint_every_panels = 8;

  // Fault-injection hook (tests and the kill smokes): after this many
  // NEWLY streamed panels, return Unavailable without flushing a
  // checkpoint — exactly what a SIGKILL at that point leaves behind.
  // -1 disables.
  int64_t fail_after_panels = -1;

  // Per-panel stall (test hook so the kill smokes can reliably SIGKILL
  // a party mid-stream). 0 disables.
  int64_t panel_delay_ms = 0;

  // Read panels on a background thread, double-buffered.
  bool prefetch = true;

  // Shards column blocks of each panel across the pool (bit-identity
  // is unaffected: add chains never cross column blocks). May be null.
  ThreadPool* pool = nullptr;
};

struct StreamingStatsResult {
  Vector flat;                    // wire-order summand (StatsWireLayout)
  int64_t num_samples = 0;        // == source->num_samples()
  int64_t resumed_from_panel = 0; // 0 on a fresh start
  int64_t panels_streamed = 0;    // panels folded in by THIS run
  int64_t checkpoints_written = 0;
};

// Streams the study's panels into a local wire-order summand. `y` and
// `q` are this party's RAM-resident phenotype and projected-covariate
// rows (q = Q_p, n x k); both must match source->num_samples(). The
// checkpoint (if any) is left in place on success — the caller owns
// its lifecycle (RunPartySecureScan removes it once the whole round
// has succeeded, so a crash after stats but before the secure sum
// still resumes for free).
Result<StreamingStatsResult> ComputeLocalStatsStreamed(
    PanelSource* source, const Vector& y, const Matrix& q,
    const StreamingStatsOptions& options = {});

}  // namespace dash

#endif  // DASH_CORE_STREAMING_STATS_H_
