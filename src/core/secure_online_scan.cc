#include "core/secure_online_scan.h"

#include <string>
#include <utility>

#include "net/network.h"
#include "util/check.h"

namespace dash {

SecureOnlineScan::SecureOnlineScan(int num_parties, int64_t num_variants,
                                   int64_t num_covariates,
                                   const SecureScanOptions& options)
    : num_variants_(num_variants), num_covariates_(num_covariates),
      options_(options),
      has_data_(static_cast<size_t>(num_parties), false) {
  DASH_CHECK_GE(num_parties, 1);
  DASH_CHECK_GE(num_variants, 1);
  DASH_CHECK_GE(num_covariates, 0);
  // Seed each accumulator with an empty block of the right shape.
  const Matrix empty_x(0, num_variants);
  const Matrix empty_y(0, 1);
  const Matrix empty_c(0, num_covariates);
  for (int p = 0; p < num_parties; ++p) {
    accumulators_.push_back(
        CompressedStudy::Compress(empty_x, empty_y, empty_c).value());
  }
}

Status SecureOnlineScan::AddBatch(int party, const Matrix& x, const Vector& y,
                                  const Matrix& c) {
  if (party < 0 || party >= num_parties()) {
    return InvalidArgumentError("party index out of range");
  }
  if (x.rows() != static_cast<int64_t>(y.size()) || c.rows() != x.rows()) {
    return InvalidArgumentError("batch x, y, c disagree on sample count");
  }
  if (x.cols() != num_variants_ || c.cols() != num_covariates_) {
    return InvalidArgumentError(
        "batch shape (M=" + std::to_string(x.cols()) + ", K=" +
        std::to_string(c.cols()) + ") does not match the study (M=" +
        std::to_string(num_variants_) + ", K=" +
        std::to_string(num_covariates_) + ")");
  }
  DASH_ASSIGN_OR_RETURN(
      CompressedStudy block,
      CompressedStudy::Compress(x, Matrix::ColumnVector(y), c));
  DASH_RETURN_IF_ERROR(
      accumulators_[static_cast<size_t>(party)].Merge(block));
  has_data_[static_cast<size_t>(party)] = true;
  ++batches_;
  return Status::Ok();
}

int64_t SecureOnlineScan::samples_seen() const {
  int64_t n = 0;
  for (const auto& acc : accumulators_) n += acc.num_samples();
  return n;
}

Result<SecureScanOutput> SecureOnlineScan::Finalize() const {
  InProcessTransport transport(num_parties());
  return Finalize(&transport);
}

Result<SecureScanOutput> SecureOnlineScan::Finalize(
    Transport* transport) const {
  if (samples_seen() <= num_covariates_ + 1) {
    return FailedPreconditionError(
        "need N > K + 1 accumulated samples before finalizing (have " +
        std::to_string(samples_seen()) + ")");
  }
  DASH_ASSIGN_OR_RETURN(
      CompressedStudy::SecureOutput aggregated,
      CompressedStudy::SecureAggregate(accumulators_, options_, transport));
  SecureScanOutput out;
  DASH_ASSIGN_OR_RETURN(out.result, aggregated.study.ScanAllCovariates(0));
  out.metrics = aggregated.metrics;
  return out;
}

}  // namespace dash
