// The distributed QR step of the secure scan (paper §3).
//
// Each party holds only its local upper-triangular R_p (K x K, K(K+1)/2
// numbers, independent of N — the "angles between pairs of permanent
// covariates"). The parties combine the R_p into the pooled R over the
// network, then each privately forms its rows of the global Q as
// Q_p = C_p R⁻¹ (party_local.h).
//
// Combination strategies:
//  * kBroadcastStack — every party broadcasts R_p; everyone stacks and
//    factors locally. One round, P(P-1) K x K messages.
//  * kBinaryTree     — the footnote-3 variant: parties merge pairwise in
//    ceil(log2 P) rounds, so each party shares its K x K matrix with at
//    most one peer per round; the final holder broadcasts R.

#ifndef DASH_CORE_DISTRIBUTED_QR_H_
#define DASH_CORE_DISTRIBUTED_QR_H_

#include <vector>

#include "linalg/matrix.h"
#include "transport/transport.h"
#include "util/status.h"

namespace dash {

enum class RCombineMode {
  kBroadcastStack = 0,
  kBinaryTree = 1,
};

const char* RCombineModeName(RCombineMode mode);

struct DistributedQrResult {
  Matrix r;          // pooled K x K factor (identical at every party)
  Matrix r_inverse;  // R⁻¹, used to lift C_p to Q_p
  int rounds = 0;    // network rounds consumed
};

// Runs the combination over `network`; local_r[p] is party p's R factor.
// All factors must be K x K and the network must have one slot per party.
Result<DistributedQrResult> CombineRFactorsOverNetwork(
    Transport* network, const std::vector<Matrix>& local_r, RCombineMode mode);

}  // namespace dash

#endif  // DASH_CORE_DISTRIBUTED_QR_H_
