// TCP transport: one process per party, full mesh over POSIX sockets.
//
// Connection establishment tolerates parties starting in ANY order:
// every party first opens its own listening socket, then actively dials
// every lower-numbered party (retrying with exponential backoff plus
// jitter while the peer's listener is not up yet) and accepts
// connections from every higher-numbered party. Both sides of each link
// exchange a hello frame naming their party id and cluster size, so a
// stray or stale connection (e.g. from a party killed mid-handshake and
// restarted) is identified and discarded without poisoning the mesh. A
// peer that never appears within connect_timeout_ms yields
// DeadlineExceeded, not a hang.
//
// Data flow is single-threaded and poll-driven: Send frames the message
// (transport/frame.h) and writes it to the peer's socket, draining any
// inbound frames whenever the outbound buffer is full — this is what
// prevents the classic all-parties-broadcast deadlock where every
// kernel buffer fills while every process is blocked in write(). Receive
// returns the next queued frame from the requested peer, blocking up to
// receive_timeout_ms (then DeadlineExceeded). Tag mismatches are
// FailedPrecondition, exactly as on the in-process backend.
//
// Failure semantics (PROTOCOL.md "Failure modes" has the full table):
// every post-handshake fault maps to exactly one of three codes, never
// a hang or a CHECK. A peer closing its socket (clean FIN or reset),
// including mid-frame, is Unavailable("peer N disconnected ...") on
// every later operation touching that link; a corrupted or malformed
// frame (bad magic/version/CRC/routing) is DataLoss and also poisons
// the link; silence is DeadlineExceeded. Failures are sticky per link
// and are reported only on operations that use the failed link — a dead
// link never fails a Receive on a healthy one. Additionally, Receive
// watches EVERY open link for MessageTag::kAbort notifications
// (net/abort.h): one received abort latches transport-wide and is
// returned — with the originator's status code — from every subsequent
// blocking Receive, which is how all surviving parties converge on one
// consistent status within a single receive timeout.
//
// Threading: all protocol calls (Send/Receive/Broadcast/BeginRound) must
// come from one thread, like every Transport. Because the socket reader
// runs inside Send/Receive on that same thread, TrafficMetrics updates
// are already serialized; they are additionally guarded by a mutex so a
// separate monitoring thread may call metrics()/wire_stats() while the
// protocol runs — this is the one concurrency the backend supports.
//
// Accounting: TrafficMetrics counts logical Message::WireSize() bytes at
// the sender, identically to the in-process backend, so the O(M) claim
// is checked on the same numbers. The physical truth (frame headers
// included, both directions) is reported by wire_stats().

#ifndef DASH_TRANSPORT_TCP_TRANSPORT_H_
#define DASH_TRANSPORT_TCP_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "transport/cluster_config.h"
#include "transport/transport.h"
#include "util/mutex.h"

namespace dash {

struct TcpTransportOptions {
  // Overall deadline for establishing the full mesh.
  int connect_timeout_ms = 20000;

  // Deadline for one Receive (and for draining one Send).
  int receive_timeout_ms = 30000;

  // Exponential backoff between reconnect attempts while a peer's
  // listener is not up yet; each sleep is uniformly jittered in
  // [backoff/2, backoff] so restarted parties do not dial in lockstep.
  int backoff_initial_ms = 25;
  int backoff_max_ms = 1000;
};

// Physical byte counters (frame headers included), both directions.
struct TcpWireStats {
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t frames_sent = 0;
  int64_t frames_received = 0;
};

class TcpTransport : public Transport {
 public:
  // Establishes the mesh for `local_party` per `cluster`; blocks until
  // every link is up (any start order) or the connect deadline expires.
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const ClusterConfig& cluster, int local_party,
      const TcpTransportOptions& options = {});

  ~TcpTransport() override;

  int local_party() const override { return local_party_; }

  // `from` must be the local party (a TCP endpoint can only speak for
  // itself); `to` must be a distinct valid party.
  Status Send(int from, int to, MessageTag tag,
              std::vector<uint8_t> payload) override;

  // `to` must be the local party. Blocks up to receive_timeout_ms.
  // Delivers the sessionless stream only: a frame carrying a nonzero
  // session id on this path is a desync (the peer multiplexes, we do
  // not) and fails with FailedPrecondition.
  Result<Message> Receive(int to, int from, MessageTag expected_tag) override;

  // True if a frame from -> local is already buffered or readable now.
  bool HasPending(int to, int from) override;

  // Session extension points (transport/transport.h): the frame header
  // carries the session id, aborts latch transport-wide only for the
  // sessionless stream (session aborts are scoped by the SessionMux),
  // and TryReceiveAny is the demultiplexer intake.
  Status SendOnSession(uint32_t session, int from, int to, MessageTag tag,
                       std::vector<uint8_t> payload) override;
  Result<Message> TryReceiveAny(int to, int from) override;
  Status PumpWait(int timeout_ms) override;
  Status LinkStatus(int peer) override;

  TcpWireStats wire_stats() const;

  const TcpTransportOptions& options() const { return options_; }

 private:
  struct Peer {
    int fd = -1;
    std::vector<uint8_t> rx;        // unparsed bytes off the socket
    size_t rx_consumed = 0;         // parsed prefix of rx
    std::deque<Message> inbox;      // complete frames awaiting Receive
    bool closed = false;
    // Sticky link failure (Unavailable/DataLoss); set when closed is.
    Status fail = Status::Ok();
  };

  TcpTransport(const ClusterConfig& cluster, int local_party,
               const TcpTransportOptions& options);

  Status EstablishMesh();
  Status DialPeer(int peer, int64_t deadline_ms);
  Status AcceptPeers(int64_t deadline_ms);
  Status FinishHandshake(int fd, int expected_peer, int64_t deadline_ms,
                         int* hello_party);

  // Drains whatever is readable on every open peer socket into the
  // inboxes, waiting at most `timeout_ms` for the first byte. Socket
  // and framing failures are recorded per peer (Peer::fail), never
  // propagated here, so one broken link cannot fail another link's
  // Receive.
  Status Pump(int timeout_ms);
  void ReadAvailable(int peer) DASH_EXCLUDES(stats_mutex_);
  Status ParseFrames(int peer) DASH_EXCLUDES(stats_mutex_);

  // Latches the first kAbort found in any inbox into abort_status_.
  void ScanForAborts();

  // A locally-detected link failure is often the shadow of a deliberate
  // peer abort: the peer broadcast kAbort, tore down its transport, and
  // our send/receive failed before we read the abort still sitting in
  // the socket buffer. Drain every open peer, latch aborts, and return
  // abort_status_ if set — it carries the originator's Status, so every
  // survivor reports the same code — else return `local` unchanged.
  Status PreferAbort(Status local);

  // Records one outbound frame in both the logical TrafficMetrics and
  // the physical wire counters; takes stats_mutex_ itself (callers on
  // the protocol thread hold no lock here).
  void RecordWireSend(const Message& msg, size_t frame_bytes)
      DASH_EXCLUDES(stats_mutex_);
  void CloseAll();

  ClusterConfig cluster_;
  int local_party_;
  TcpTransportOptions options_;
  int listen_fd_ = -1;
  std::vector<Peer> peers_;  // index == party id; slot local_party_ unused
  Status abort_status_ = Status::Ok();  // first peer abort, transport-wide

  // Guards the wire counters (and serializes TrafficMetrics snapshots
  // against the protocol thread) for the one supported cross-thread
  // reader: a monitor thread polling metrics()/wire_stats().
  mutable Mutex stats_mutex_{LockRank::kTransportStats};
  TcpWireStats wire_stats_ DASH_GUARDED_BY(stats_mutex_);
};

}  // namespace dash

#endif  // DASH_TRANSPORT_TCP_TRANSPORT_H_
