// Party endpoint directory for multi-process deployments.
//
// A ClusterConfig names where every party listens; the line index IS the
// party id, so all parties must be handed the same file (ordering
// included). Format, one endpoint per line:
//
//   # dash cluster: one "host:port" per party, line order = party id
//   127.0.0.1:7001
//   127.0.0.1:7002
//   127.0.0.1:7003
//
// Blank lines and '#' comments are ignored. An optional leading
// "<party> " index per line is accepted (and validated against the line
// position) so configs can be made self-describing.

#ifndef DASH_TRANSPORT_CLUSTER_CONFIG_H_
#define DASH_TRANSPORT_CLUSTER_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dash {

// Hard cap on cluster size: the fully-connected mesh is O(P^2) sockets,
// so configs beyond this are almost certainly a malformed file, and the
// parsers reject them up front.
inline constexpr int kMaxClusterParties = 64;

struct PartyEndpoint {
  std::string host;
  uint16_t port = 0;
};

struct ClusterConfig {
  std::vector<PartyEndpoint> endpoints;  // index == party id

  int num_parties() const { return static_cast<int>(endpoints.size()); }

  // Renders the config in the file format above.
  std::string ToString() const;
};

// Parses the file format above from text.
Result<ClusterConfig> ParseClusterConfig(const std::string& text);

// Reads and parses a config file.
Result<ClusterConfig> LoadClusterConfig(const std::string& path);

// Parses a compact "host:port,host:port,..." list (the --cluster flag).
Result<ClusterConfig> ParseClusterList(const std::string& list);

// All-loopback cluster on ports base_port .. base_port+num_parties-1.
ClusterConfig LoopbackCluster(int num_parties, uint16_t base_port);

}  // namespace dash

#endif  // DASH_TRANSPORT_CLUSTER_CONFIG_H_
