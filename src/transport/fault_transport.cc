#include "transport/fault_transport.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/random.h"

namespace dash {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDisconnect:
      return "disconnect";
  }
  return "unknown";
}

std::string FaultRule::ToString() const {
  std::string out = FaultKindName(kind);
  out += " round=" + std::to_string(round);
  out += " link=" + std::to_string(from) + "->" + std::to_string(to);
  out += " nth=" + std::to_string(nth);
  if (kind == FaultKind::kDelay) {
    out += " delay_ms=" + std::to_string(delay_ms);
  }
  if (kind == FaultKind::kCorrupt) {
    out += " xor=0x" + std::to_string(static_cast<int>(corrupt_xor));
  }
  return out;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultRule& rule : rules) {
    out += rule.ToString();
    out += "\n";
  }
  return out;
}

FaultPlan FaultPlan::Random(uint64_t seed, const SweepOptions& options) {
  DASH_CHECK_GE(options.num_parties, 2);
  Rng rng(seed);
  FaultPlan plan;
  const int num_rules =
      options.min_rules +
      static_cast<int>(rng.UniformInt(static_cast<uint64_t>(
          options.max_rules - options.min_rules + 1)));
  for (int i = 0; i < num_rules; ++i) {
    FaultRule rule;
    rule.kind = static_cast<FaultKind>(rng.UniformInt(6));
    rule.round =
        1 + static_cast<int>(rng.UniformInt(
                static_cast<uint64_t>(options.max_rounds)));
    rule.from = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(options.num_parties)));
    rule.to = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(options.num_parties - 1)));
    if (rule.to >= rule.from) ++rule.to;
    rule.nth = 0;
    rule.delay_ms = 50 + static_cast<int>(rng.UniformInt(1200));
    rule.corrupt_xor = static_cast<uint8_t>(1 + rng.UniformInt(255));
    plan.rules.push_back(rule);
  }
  return plan;
}

FaultInjectingTransport::FaultInjectingTransport(Transport* inner,
                                                 FaultPlan plan)
    : Transport(inner->num_parties()),
      inner_(inner),
      plan_(std::move(plan)),
      dead_pairs_(static_cast<size_t>(inner->num_parties()) *
                      static_cast<size_t>(inner->num_parties()),
                  false) {}

const FaultRule* FaultInjectingTransport::Match(int round, int from, int to,
                                                int nth) const {
  for (const FaultRule& rule : plan_.rules) {
    if (rule.round != -1 && rule.round != round) continue;
    if (rule.from != -1 && rule.from != from) continue;
    if (rule.to != -1 && rule.to != to) continue;
    if (rule.nth != -1 && rule.nth != nth) continue;
    return &rule;
  }
  return nullptr;
}

bool FaultInjectingTransport::LinkDead(int a, int b) const {
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  return dead_pairs_[static_cast<size_t>(lo) *
                         static_cast<size_t>(num_parties()) +
                     static_cast<size_t>(hi)];
}

void FaultInjectingTransport::KillLink(int a, int b) {
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  dead_pairs_[static_cast<size_t>(lo) * static_cast<size_t>(num_parties()) +
              static_cast<size_t>(hi)] = true;
}

Status FaultInjectingTransport::DeadLinkError(int from, int to) const {
  return UnavailableError("fault injection: link " + std::to_string(from) +
                          "<->" + std::to_string(to) +
                          " is disconnected (round " + std::to_string(round_) +
                          ")");
}

void FaultInjectingTransport::BeginRound() {
  ++round_;
  Transport::BeginRound();
  inner_->BeginRound();
}

// Every message actually handed to the inner backend is mirrored into
// this transport's own metrics/trace, so a driver that reads accounting
// off the decorator (the usual case — it was handed the decorator, not
// the inner transport) sees the same numbers the inner backend counts.
// Dropped messages are mirrored nowhere: they never existed on the wire.
Status FaultInjectingTransport::ForwardSend(int from, int to, MessageTag tag,
                                            std::vector<uint8_t> payload) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.tag = tag;
  msg.payload = std::move(payload);
  RecordSend(msg);
  return inner_->Send(from, to, tag, std::move(msg.payload));
}

Status FaultInjectingTransport::Send(int from, int to, MessageTag tag,
                                     std::vector<uint8_t> payload) {
  DASH_RETURN_IF_ERROR(ValidateParty(from, "sender"));
  DASH_RETURN_IF_ERROR(ValidateParty(to, "receiver"));
  if (LinkDead(from, to)) return DeadLinkError(from, to);

  const int link = from * num_parties() + to;
  const int nth = send_counts_[{round_, from, to}]++;
  const FaultRule* rule = Match(round_, from, to, nth);

  Status sent = Status::Ok();
  if (rule == nullptr) {
    sent = ForwardSend(from, to, tag, std::move(payload));
  } else {
    switch (rule->kind) {
      case FaultKind::kDrop:
        // Swallowed: the sender proceeds believing the message left.
        break;
      case FaultKind::kDelay:
        // Lockstep in-process calls have no wall clock between them, so
        // sleeping there would only slow the test down.
        if (inner_->local_party() >= 0 && rule->delay_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(rule->delay_ms));
        }
        sent = ForwardSend(from, to, tag, std::move(payload));
        break;
      case FaultKind::kDuplicate: {
        std::vector<uint8_t> copy = payload;
        sent = ForwardSend(from, to, tag, std::move(payload));
        if (sent.ok()) sent = ForwardSend(from, to, tag, std::move(copy));
        break;
      }
      case FaultKind::kReorder:
        if (held_.find(link) == held_.end()) {
          Message held;
          held.from = from;
          held.to = to;
          held.tag = tag;
          held.payload = std::move(payload);
          held_[link] = std::move(held);
          return Status::Ok();
        }
        // A message is already held on this link; fall through to a
        // plain send so the swap below still happens.
        sent = ForwardSend(from, to, tag, std::move(payload));
        break;
      case FaultKind::kCorrupt:
        if (!payload.empty()) {
          payload[payload.size() / 2] ^= rule->corrupt_xor;
        }
        sent = ForwardSend(from, to, tag, std::move(payload));
        break;
      case FaultKind::kDisconnect:
        KillLink(from, to);
        return DeadLinkError(from, to);
    }
  }
  DASH_RETURN_IF_ERROR(sent);

  // Release a held (reordered) message AFTER this one — the swap. (A
  // send that was itself just held returned early above.)
  auto held = held_.find(link);
  if (held != held_.end()) {
    Message msg = std::move(held->second);
    held_.erase(held);
    DASH_RETURN_IF_ERROR(
        ForwardSend(msg.from, msg.to, msg.tag, std::move(msg.payload)));
  }
  return Status::Ok();
}

Result<Message> FaultInjectingTransport::Receive(int to, int from,
                                                 MessageTag expected_tag) {
  DASH_RETURN_IF_ERROR(ValidateParty(to, "receiver"));
  DASH_RETURN_IF_ERROR(ValidateParty(from, "sender"));
  if (LinkDead(from, to)) return DeadLinkError(from, to);

  // The receive counter replays the sender's schedule: the protocol is
  // deterministic, so the n-th receive attempt on a link within a round
  // corresponds to the n-th send on it.
  const int nth = recv_counts_[{round_, from, to}]++;
  const FaultRule* rule = Match(round_, from, to, nth);
  if (rule == nullptr) return inner_->Receive(to, from, expected_tag);

  switch (rule->kind) {
    case FaultKind::kDrop:
      return DeadlineExceededError(
          "fault injection: " + std::string(MessageTagName(expected_tag)) +
          " " + std::to_string(from) + "->" + std::to_string(to) +
          " dropped in round " + std::to_string(round_) +
          "; receive timed out");
    case FaultKind::kDelay:
    case FaultKind::kReorder:
      // The inner backend's own timeout/tag checks surface these.
      return inner_->Receive(to, from, expected_tag);
    case FaultKind::kDuplicate: {
      DASH_ASSIGN_OR_RETURN(Message msg,
                            inner_->Receive(to, from, expected_tag));
      // Consume the duplicate copy so the stream stays aligned.
      DASH_RETURN_IF_ERROR(inner_->Receive(to, from, expected_tag).status());
      return msg;
    }
    case FaultKind::kCorrupt: {
      // Consume the mangled frame, then report what a CRC check would.
      DASH_RETURN_IF_ERROR(inner_->Receive(to, from, expected_tag).status());
      return DataLossError(
          "fault injection: frame CRC mismatch on " +
          std::string(MessageTagName(expected_tag)) + " " +
          std::to_string(from) + "->" + std::to_string(to) + " (round " +
          std::to_string(round_) + ")");
    }
    case FaultKind::kDisconnect:
      KillLink(from, to);
      return DeadLinkError(from, to);
  }
  return InternalError("unknown fault kind");
}

bool FaultInjectingTransport::HasPending(int to, int from) {
  if (to < 0 || from < 0 || to >= num_parties() || from >= num_parties() ||
      LinkDead(from, to)) {
    return false;
  }
  return inner_->HasPending(to, from);
}

}  // namespace dash
