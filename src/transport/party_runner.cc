#include "transport/party_runner.h"

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/party_local.h"
#include "core/scan_checkpoint.h"
#include "core/scan_pipeline.h"
#include "core/streaming_stats.h"
#include "core/suff_stats.h"
#include "linalg/qr.h"
#include "linalg/tsqr.h"
#include "mpc/additive_sharing.h"
#include "mpc/fixed_point.h"
#include "mpc/key_exchange.h"
#include "mpc/masked_aggregation.h"
#include "mpc/secrecy.h"
#include "mpc/shamir.h"
#include "net/abort.h"
#include "net/round_annotations.h"
#include "net/serialization.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace dash {
namespace {

// Party-local projection of SecureVectorSum (mpc/secure_sum.cc): performs
// the sends party `local` makes and the receives addressed to it, in the
// same per-link order and round structure. The bit-identity argument per
// mode:
//  * public     — every party sums the plaintext vectors in ascending
//                 party order, matching the in-process reduction;
//  * additive   — Z_2^64 wrapping adds are commutative/associative, so
//                 receive order cannot change the total;
//  * masked     — same ring argument after the pairwise masks cancel;
//  * shamir     — F_(2^61-1) adds are exact; reconstruction weights are
//                 a deterministic function of the fixed points 1..P.
//
// Secrecy discipline (mpc/secrecy.h, DESIGN.md §11): the party's
// contribution arrives as Secret<Vector> and this class never reads it
// directly — every buffer handed to the transport is produced by a
// blessed reveal point (SerializeShareForHolder, MaskAndSerialize,
// DiffieHellman::PublicValue) except the public-share baseline, whose
// plaintext broadcast is an explicit DASH_DECLASSIFY.
class PartySecureVectorSum {
 public:
  PartySecureVectorSum(Transport* transport, const SecureSumOptions& options)
      : net_(transport),
        local_(transport->local_party()),
        options_(options),
        codec_(options.frac_bits),
        rng_([&] {
          // Party i's randomness is the i-th output of the SplitMix64
          // chain over the shared seed — the exact seeding the in-process
          // driver applies to its per-party RNG array. A nonzero
          // mask_domain (the session id of a multiplexed job) perturbs
          // the chain's starting point, so concurrent sessions with the
          // same protocol seed draw DISJOINT randomness and never share
          // a DH exponent or pairwise mask key; domain 0 preserves the
          // historical chain bit for bit.
          uint64_t seed_state = options.seed;
          if (options.mask_domain != 0) {
            uint64_t domain_state = options.mask_domain;
            seed_state ^= SplitMix64(&domain_state);
          }
          uint64_t seed = SplitMix64(&seed_state);
          for (int i = 0; i < transport->local_party(); ++i) {
            seed = SplitMix64(&seed_state);
          }
          return Rng(seed);
        }()) {}

  Result<Vector> Run(const Secret<Vector>& input) {
    DASH_RETURN_IF_ERROR(Setup());
    if (net_->num_parties() == 1) {
      return DASH_DECLASSIFY(
          input, "phase2-single: a single party's total IS its own input");
    }
    ++round_nonce_;
    switch (options_.mode) {
      case AggregationMode::kPublicShare:
        return RunPublic(input);
      case AggregationMode::kAdditive:
        return RunAdditive(input);
      case AggregationMode::kMasked:
        return RunMasked(input);
      case AggregationMode::kShamir:
        return RunShamir(input);
    }
    return InternalError("unknown aggregation mode");
  }

 private:
  Status Setup() {
    if (setup_done_) return Status::Ok();
    const int p = net_->num_parties();
    if (options_.mode == AggregationMode::kMasked && p > 1) {
      net_->BeginRound();
      const Secret<uint64_t> private_key =
          DiffieHellman::GeneratePrivate(&rng_);
      ByteWriter w;
      w.PutU64(DiffieHellman::PublicValue(private_key));
      DASH_ROUND(phase0b_keyagree, kPublicKey);
      DASH_RETURN_IF_ERROR(
          net_->Broadcast(local_, MessageTag::kPublicKey, w.Take()));
      pairwise_keys_.assign(static_cast<size_t>(p),
                            Secret<ChaCha20Rng::Key>{});
      for (int q = 0; q < p; ++q) {
        if (q == local_) continue;
        DASH_ROUND(phase0b_keyagree, kPublicKey);
        DASH_ASSIGN_OR_RETURN(
            Message msg, net_->Receive(local_, q, MessageTag::kPublicKey));
        ByteReader r(msg.payload);
        DASH_ASSIGN_OR_RETURN(uint64_t peer_public, r.GetU64());
        pairwise_keys_[static_cast<size_t>(q)] = DiffieHellman::DeriveKey(
            DiffieHellman::SharedSecret(private_key, peer_public));
      }
    }
    setup_done_ = true;
    return Status::Ok();
  }

  Result<Vector> RunPublic(const Secret<Vector>& secret_input) {
    const int p = net_->num_parties();
    // The public-share baseline deliberately reveals every summand; this
    // is the protocol's documented insecure mode, not a leak.
    const Vector input = DASH_DECLASSIFY(
        secret_input, "phase2-public: baseline broadcasts plaintext summands");
    net_->BeginRound();
    ByteWriter w;
    w.PutDoubleVector(input);
    DASH_ROUND(phase2_public, kPlainStats);
    DASH_RETURN_IF_ERROR(
        net_->Broadcast(local_, MessageTag::kPlainStats, w.Take()));
    // Sum in ascending party order — float addition is order-sensitive
    // and the in-process reduction goes 0, 1, ..., P-1.
    Vector total;
    for (int q = 0; q < p; ++q) {
      Vector v;
      if (q == local_) {
        v = input;
      } else {
        DASH_ROUND(phase2_public, kPlainStats);
        DASH_ASSIGN_OR_RETURN(
            Message msg, net_->Receive(local_, q, MessageTag::kPlainStats));
        ByteReader r(msg.payload);
        DASH_ASSIGN_OR_RETURN(v, r.GetDoubleVector());
      }
      if (q == 0) {
        total = std::move(v);
      } else {
        if (v.size() != total.size()) {
          return InternalError("public-share length mismatch");
        }
        for (size_t e = 0; e < total.size(); ++e) total[e] += v[e];
      }
    }
    return total;
  }

  Result<Vector> RunAdditive(const Secret<Vector>& input) {
    const int p = net_->num_parties();

    net_->BeginRound();
    DASH_ASSIGN_OR_RETURN(Secret<RingVector> encoded,
                          codec_.EncodeSecretVector(input));
    auto shares = AdditiveShareVector(encoded, p, &rng_);
    const Secret<RingVector> own =
        std::move(shares[static_cast<size_t>(local_)]);
    for (int j = 0; j < p; ++j) {
      if (j == local_) continue;
      DASH_ROUND(phase2_additive_share, kAdditiveShare);
      DASH_RETURN_IF_ERROR(
          net_->Send(local_, j, MessageTag::kAdditiveShare,
                     SerializeShareForHolder(shares[static_cast<size_t>(j)])));
    }

    net_->BeginRound();
    std::vector<RingVector> received;
    received.reserve(static_cast<size_t>(p - 1));
    for (int i = 0; i < p; ++i) {
      if (i == local_) continue;
      DASH_ROUND(phase2_additive_share, kAdditiveShare);
      DASH_ASSIGN_OR_RETURN(
          Message msg, net_->Receive(local_, i, MessageTag::kAdditiveShare));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(RingVector share, r.GetU64Vector());
      received.push_back(std::move(share));
    }
    DASH_ASSIGN_OR_RETURN(Masked<RingVector> partial,
                          AccumulateAdditiveShares(own, received));
    DASH_ROUND(phase2_additive_reveal, kPartialSum);
    DASH_RETURN_IF_ERROR(net_->Broadcast(local_, MessageTag::kPartialSum,
                                         MaskAndSerialize(partial)));

    std::vector<RingVector> peer_partials;
    peer_partials.reserve(static_cast<size_t>(p - 1));
    for (int q = 0; q < p; ++q) {
      if (q == local_) continue;
      DASH_ROUND(phase2_additive_reveal, kPartialSum);
      DASH_ASSIGN_OR_RETURN(Message msg,
                            net_->Receive(local_, q, MessageTag::kPartialSum));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(RingVector peer, r.GetU64Vector());
      peer_partials.push_back(std::move(peer));
    }
    return OpenAdditiveTotal(partial, peer_partials, codec_);
  }

  Result<Vector> RunMasked(const Secret<Vector>& input) {
    const int p = net_->num_parties();

    net_->BeginRound();
    DASH_ASSIGN_OR_RETURN(Secret<RingVector> encoded,
                          codec_.EncodeSecretVector(input));
    const Masked<RingVector> masked =
        ApplyPairwiseMasks(local_, encoded, pairwise_keys_, round_nonce_);
    DASH_ROUND(phase2_masked, kMaskedValue);
    DASH_RETURN_IF_ERROR(net_->Broadcast(local_, MessageTag::kMaskedValue,
                                         MaskAndSerialize(masked)));

    std::vector<RingVector> peers;
    peers.reserve(static_cast<size_t>(p - 1));
    for (int q = 0; q < p; ++q) {
      if (q == local_) continue;
      DASH_ROUND(phase2_masked, kMaskedValue);
      DASH_ASSIGN_OR_RETURN(Message msg,
                            net_->Receive(local_, q, MessageTag::kMaskedValue));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(RingVector peer, r.GetU64Vector());
      peers.push_back(std::move(peer));
    }
    return OpenMaskedTotal(masked, peers, codec_);
  }

  Result<Vector> RunShamir(const Secret<Vector>& input) {
    const int p = net_->num_parties();
    if (options_.simulate_shamir_dropouts != 0) {
      return UnimplementedError(
          "Shamir dropout simulation is an in-process experiment; real "
          "dropouts surface as transport errors");
    }
    const int threshold = (options_.shamir_threshold >= 0)
                              ? options_.shamir_threshold
                              : (p - 1) / 2;
    if (threshold >= p) {
      return InvalidArgumentError("Shamir threshold must be < num parties");
    }
    // Field-encodes AND validates headroom — deliberately before
    // BeginRound so validation failures precede any traffic.
    DASH_ASSIGN_OR_RETURN(Secret<RingVector> encoded,
                          ShamirFieldEncode(codec_, input, p));

    // Phase 1: distribute shares of our input; keep our own.
    net_->BeginRound();
    DASH_ASSIGN_OR_RETURN(
        auto shares, ShamirShareVectorForParties(encoded, p, threshold, &rng_));
    const Secret<RingVector> own =
        std::move(shares[static_cast<size_t>(local_)]);
    for (int j = 0; j < p; ++j) {
      if (j == local_) continue;
      DASH_ROUND(phase2_shamir_share, kShamirShare);
      DASH_RETURN_IF_ERROR(
          net_->Send(local_, j, MessageTag::kShamirShare,
                     SerializeShareForHolder(shares[static_cast<size_t>(j)])));
    }

    // Phase 2: sum the shares we hold; exchange sum shares.
    net_->BeginRound();
    std::vector<RingVector> received;
    received.reserve(static_cast<size_t>(p - 1));
    for (int i = 0; i < p; ++i) {
      if (i == local_) continue;
      DASH_ROUND(phase2_shamir_share, kShamirShare);
      DASH_ASSIGN_OR_RETURN(Message msg,
                            net_->Receive(local_, i, MessageTag::kShamirShare));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(RingVector ys, r.GetU64Vector());
      received.push_back(std::move(ys));
    }
    DASH_ASSIGN_OR_RETURN(Masked<RingVector> held,
                          AccumulateShamirShares(own, received));
    {
      const std::vector<uint8_t> payload = MaskAndSerialize(held);
      for (int to = 0; to < p; ++to) {
        if (to == local_) continue;
        DASH_ROUND(phase2_shamir_reveal, kPartialSum);
        DASH_RETURN_IF_ERROR(
            net_->Send(local_, to, MessageTag::kPartialSum, payload));
      }
    }

    // Phase 3: reconstruct at x = 0 from all P sum shares (our own slot
    // comes from `held`; the vector's local slot stays empty).
    std::vector<RingVector> sum_shares(static_cast<size_t>(p));
    for (int q = 0; q < p; ++q) {
      if (q == local_) continue;
      DASH_ROUND(phase2_shamir_reveal, kPartialSum);
      DASH_ASSIGN_OR_RETURN(Message msg,
                            net_->Receive(local_, q, MessageTag::kPartialSum));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(sum_shares[static_cast<size_t>(q)],
                            r.GetU64Vector());
    }
    return OpenShamirTotal(held, local_, sum_shares, codec_);
  }

  Transport* net_;
  int local_;
  SecureSumOptions options_;
  FixedPointCodec codec_;
  Rng rng_;
  // [q] = mask key shared with party q; secret material (mpc/secrecy.h).
  std::vector<Secret<ChaCha20Rng::Key>> pairwise_keys_;
  uint64_t round_nonce_ = 0;
  bool setup_done_ = false;
};

// Party-local projection of CombineRFactorsOverNetwork (broadcast-stack
// mode): every party ends up factoring the identical stack.
Result<Matrix> CombineBroadcastStack(Transport* net, int local,
                                     const Matrix& own_r) {
  const int p = net->num_parties();
  net->BeginRound();
  ByteWriter w;
  w.PutMatrix(own_r);
  DASH_ROUND(phase1_rfactor, kRFactor);
  DASH_RETURN_IF_ERROR(net->Broadcast(local, MessageTag::kRFactor, w.Take()));
  std::vector<Matrix> stack(static_cast<size_t>(p));
  stack[static_cast<size_t>(local)] = own_r;
  for (int q = 0; q < p; ++q) {
    if (q == local) continue;
    DASH_ROUND(phase1_rfactor, kRFactor);
    DASH_ASSIGN_OR_RETURN(Message msg,
                          net->Receive(local, q, MessageTag::kRFactor));
    ByteReader r(msg.payload);
    DASH_ASSIGN_OR_RETURN(stack[static_cast<size_t>(q)], r.GetMatrix());
  }
  return CombineRFactors(stack);
}

// Party-local projection of the binary tree: the merge schedule is a
// deterministic function of (P, stride), so each party can replay the
// full activity pattern locally and only perform its own sends/receives.
Result<Matrix> CombineBinaryTree(Transport* net, int local,
                                 const Matrix& own_r) {
  const int p = net->num_parties();
  Matrix current = own_r;
  std::vector<bool> active(static_cast<size_t>(p), true);
  for (int stride = 1; stride < p; stride *= 2) {
    net->BeginRound();
    if (active[static_cast<size_t>(local)] && (local / stride) % 2 == 1 &&
        local - stride >= 0) {
      ByteWriter w;
      w.PutMatrix(current);
      DASH_ROUND(phase1_tree_merge, kTreeR);
      DASH_RETURN_IF_ERROR(
          net->Send(local, local - stride, MessageTag::kTreeR, w.Take()));
    } else if (active[static_cast<size_t>(local)] && local + stride < p &&
               active[static_cast<size_t>(local + stride)]) {
      DASH_ROUND(phase1_tree_merge, kTreeR);
      DASH_ASSIGN_OR_RETURN(
          Message msg, net->Receive(local, local + stride, MessageTag::kTreeR));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(Matrix peer, r.GetMatrix());
      DASH_ASSIGN_OR_RETURN(current, QrRFactor(VStack({current, peer})));
    }
    // Replay the round's deactivations for every party.
    for (int i = 0; i < p; ++i) {
      if (active[static_cast<size_t>(i)] && (i / stride) % 2 == 1 &&
          i - stride >= 0) {
        active[static_cast<size_t>(i)] = false;
      }
    }
  }
  // Party 0 broadcasts the pooled R.
  net->BeginRound();
  if (local == 0) {
    ByteWriter w;
    w.PutMatrix(current);
    DASH_ROUND(phase1_tree_root, kRFactor);
    DASH_RETURN_IF_ERROR(net->Broadcast(0, MessageTag::kRFactor, w.Take()));
    return current;
  }
  DASH_ROUND(phase1_tree_root, kRFactor);
  DASH_ASSIGN_OR_RETURN(Message msg,
                        net->Receive(local, 0, MessageTag::kRFactor));
  ByteReader r(msg.payload);
  return r.GetMatrix();
}

// Local-only digest of everything Phase 1 depends on: the party's
// (preprocessed) covariate slab, its sample count, and the Phase-1
// options that change the pooled R. FNV-1a over the raw little-endian
// double bits — bit-exact equality is the right notion, because the
// cached Q_p must reproduce the original transcript bit for bit. The
// digest never leaves the process; the kPhase1Probe round only carries
// a have/have-not bit.
uint64_t Phase1Fingerprint(const PartyData& party, int64_t absorbed_params,
                           const SecureScanOptions& options) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  const auto mix64 = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFFu;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix64(static_cast<uint64_t>(party.num_samples()));
  mix64(static_cast<uint64_t>(party.c.cols()));
  mix64(static_cast<uint64_t>(absorbed_params));
  mix64(static_cast<uint64_t>(options.r_combine));
  for (int64_t i = 0; i < party.c.rows(); ++i) {
    for (int64_t j = 0; j < party.c.cols(); ++j) {
      uint64_t bits = 0;
      const double v = party.c(i, j);
      static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
      __builtin_memcpy(&bits, &v, sizeof(bits));
      mix64(bits);
    }
  }
  return h;
}

// The protocol proper; RunPartySecureScan wraps it with the abort
// notification and round tagging. `stream` non-null switches Phase 2 to
// the out-of-core path (X from a PanelSource, checkpoint/resume).
Result<SecureScanOutput> RunPartyScanProtocol(
    Transport* transport, const PartyData& input_party,
    const SecureScanOptions& options, Phase1State* phase1,
    const StreamingPartyScan* stream) {
  const int local = transport->local_party();
  const int num_parties = transport->num_parties();
  if (options.projection == ProjectionSecurity::kBeaverDotProducts) {
    return UnimplementedError(
        "Beaver-triple projection is not wired for party-bound transports "
        "yet; use ProjectionSecurity::kRevealProjectedSums");
  }
  if (stream != nullptr) {
    if (stream->source == nullptr) {
      return InvalidArgumentError("streamed scan: no PanelSource supplied");
    }
    if (options.center_per_party) {
      return InvalidArgumentError(
          "streamed scan: center_per_party mutates X, which is immutable "
          "on disk — center before packing (dash_pack)");
    }
    if (options.pipeline_block_variants > 0) {
      return InvalidArgumentError(
          "streamed scan: pipeline_block_variants also restructures "
          "Phase 2; pick one of streaming or block pipelining");
    }
    if (stream->source->num_samples() != input_party.num_samples()) {
      return InvalidArgumentError(
          "streamed scan: study has " +
          std::to_string(stream->source->num_samples()) +
          " samples but y/C carry " +
          std::to_string(input_party.num_samples()));
    }
  }
  DASH_RETURN_IF_ERROR(ValidateParties({input_party}));
  if (options.trace != nullptr) transport->AttachTrace(options.trace);

  // Per-party preprocessing: centering is a within-party operation, so
  // the single-element call reproduces the in-process preprocessing of
  // this slice exactly.
  const PartyData* party = &input_party;
  std::vector<PartyData> centered;
  int64_t absorbed_params = 0;
  if (options.center_per_party) {
    for (int64_t j = 0; j < input_party.c.cols(); ++j) {
      bool constant = input_party.c.rows() > 0;
      for (int64_t i = 1; i < input_party.c.rows() && constant; ++i) {
        constant = (input_party.c(i, j) == input_party.c(0, j));
      }
      if (constant && input_party.c.rows() > 0) {
        return InvalidArgumentError(
            "center_per_party absorbs the intercept; remove constant "
            "column " + std::to_string(j) + " from C");
      }
    }
    centered.push_back(input_party);
    CenterPerParty(&centered);
    party = &centered[0];
    absorbed_params = num_parties;
  }

  const int64_t m =
      stream != nullptr ? stream->source->num_variants() : party->x.cols();
  const int64_t k = party->c.cols();
  Stopwatch protocol_timer;
  Stopwatch local_timer;
  double local_seconds = 0.0;
  double protocol_seconds = 0.0;

  // Phase-1 cache probe (one optional round): each party broadcasts ONE
  // public bit — "I hold valid Phase-1 state for this cohort" — and the
  // cache is used iff every party says yes. All-or-nothing keeps the
  // transcript identical at every party: a single stale peer forces the
  // full Phase 1 everywhere. The fingerprint itself never leaves the
  // process.
  uint64_t fingerprint = 0;
  bool cache_hit = false;
  if (phase1 != nullptr) {
    local_timer.Reset();
    fingerprint = Phase1Fingerprint(*party, absorbed_params, options);
    local_seconds += local_timer.ElapsedSeconds();
    const bool have =
        phase1->valid && phase1->local_fingerprint == fingerprint;
    if (num_parties > 1) {
      protocol_timer.Reset();
      transport->BeginRound();
      ByteWriter w;
      w.PutU32(have ? 1u : 0u);
      DASH_ROUND(phase1_probe, kPhase1Probe);
      DASH_RETURN_IF_ERROR(
          transport->Broadcast(local, MessageTag::kPhase1Probe, w.Take()));
      bool all_have = have;
      for (int q = 0; q < num_parties; ++q) {
        if (q == local) continue;
        DASH_ROUND(phase1_probe, kPhase1Probe);
        DASH_ASSIGN_OR_RETURN(
            Message msg,
            transport->Receive(local, q, MessageTag::kPhase1Probe));
        ByteReader r(msg.payload);
        DASH_ASSIGN_OR_RETURN(uint32_t peer_have, r.GetU32());
        all_have = all_have && (peer_have == 1);
      }
      cache_hit = all_have;
      protocol_seconds += protocol_timer.ElapsedSeconds();
    } else {
      cache_hit = have;
    }
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }

  int64_t total_samples = 0;
  Matrix r_inverse(0, 0);
  Matrix q_p(0, 0);
  if (cache_hit) {
    // Stages 0–3 replaced by the cache: N and R⁻¹ are public protocol
    // reveals, and Q_p is this party's own private material coming back
    // from its own cache — the declassified bytes feed the same local
    // statistics kernel the fresh path feeds and never reach the wire.
    total_samples = phase1->total_samples;
    r_inverse = phase1->r_inverse;
    q_p = DASH_DECLASSIFY(
        phase1->q_p,
        "phase1-cache: this party's own cached Q_p rows, reused in-process");
  } else {
    // Stage 0 (network): exchange the public per-party sample counts.
    protocol_timer.Reset();
    if (num_parties > 1) {
      transport->BeginRound();
      ByteWriter w;
      w.PutI64(party->num_samples());
      DASH_ROUND(phase0_samplecount, kSampleCount);
      DASH_RETURN_IF_ERROR(
          transport->Broadcast(local, MessageTag::kSampleCount, w.Take()));
      for (int q = 0; q < num_parties; ++q) {
        if (q == local) {
          total_samples += party->num_samples();
          continue;
        }
        DASH_ROUND(phase0_samplecount, kSampleCount);
        DASH_ASSIGN_OR_RETURN(
            Message msg,
            transport->Receive(local, q, MessageTag::kSampleCount));
        ByteReader r(msg.payload);
        DASH_ASSIGN_OR_RETURN(int64_t n_q, r.GetI64());
        total_samples += n_q;
      }
    } else {
      total_samples = party->num_samples();
    }
    protocol_seconds += protocol_timer.ElapsedSeconds();

    // Stage 1 (local): our K x K R factor.
    local_timer.Reset();
    Matrix local_r(0, 0);
    if (k > 0) {
      DASH_ASSIGN_OR_RETURN(local_r, PartyLocalRFactor(*party));
    }
    local_seconds += local_timer.ElapsedSeconds();

    // Stage 2 (network): combine R factors; we learn R⁻¹.
    protocol_timer.Reset();
    if (k > 0) {
      Matrix r(0, 0);
      if (num_parties == 1) {
        r = local_r;
      } else if (options.r_combine == RCombineMode::kBroadcastStack) {
        DASH_ASSIGN_OR_RETURN(r,
                              CombineBroadcastStack(transport, local, local_r));
      } else {
        DASH_ASSIGN_OR_RETURN(r, CombineBinaryTree(transport, local, local_r));
      }
      DASH_ASSIGN_OR_RETURN(r_inverse, InvertUpperTriangular(r));
    }
    protocol_seconds += protocol_timer.ElapsedSeconds();

    // Stage 3 (local): our Q_p rows.
    local_timer.Reset();
    q_p = (k > 0) ? PartyLocalQ(*party, r_inverse)
                  : Matrix(party->num_samples(), 0);
    local_seconds += local_timer.ElapsedSeconds();

    if (phase1 != nullptr) {
      phase1->valid = true;
      phase1->local_fingerprint = fingerprint;
      phase1->total_samples = total_samples;
      phase1->r_inverse = r_inverse;
      phase1->q_p = Secret<Matrix>(q_p);
    }
  }

  SecureSumOptions sum_options;
  sum_options.mode = options.aggregation;
  sum_options.frac_bits = options.frac_bits;
  sum_options.seed = options.seed;
  // Concurrent sessions over one mesh must never share mask keys: the
  // session id domain-separates the seed chain (see PartySecureVectorSum
  // and PROTOCOL.md's session-layer note). The sessionless stream keeps
  // domain 0 — the exact historical chain.
  sum_options.mask_domain = transport->session_id();
  PartySecureVectorSum secure_sum(transport, sum_options);

  Vector flat_totals;
  int64_t resumed_from_panel = 0;
  int64_t panels_streamed = 0;
  int64_t checkpoints_written = 0;
  if (stream != nullptr) {
    // Stage 3 (local, out-of-core): stream X's panels into the
    // wire-order summand, checkpointing as configured. Bit-identical to
    // the in-memory arena below (core/streaming_stats.h).
    local_timer.Reset();
    StreamingStatsOptions stream_opts;
    stream_opts.checkpoint_path = stream->checkpoint_path;
    stream_opts.checkpoint_every_panels = stream->checkpoint_every_panels;
    stream_opts.fail_after_panels = stream->fail_after_panels;
    stream_opts.panel_delay_ms = stream->panel_delay_ms;
    stream_opts.prefetch = stream->prefetch;
    stream_opts.pool = pool.get();
    DASH_ASSIGN_OR_RETURN(
        StreamingStatsResult streamed,
        ComputeLocalStatsStreamed(stream->source, party->y, q_p, stream_opts));
    local_seconds += local_timer.ElapsedSeconds();
    resumed_from_panel = streamed.resumed_from_panel;
    panels_streamed = streamed.panels_streamed;
    checkpoints_written = streamed.checkpoints_written;
    if (resumed_from_panel > 0) {
      DASH_LOG(Info) << "party " << local << " resumed from checkpoint at "
                     << "panel " << resumed_from_panel << "/"
                     << stream->source->num_panels();
    }

    // Stage 4 (network): one secure-sum aggregation of everything.
    protocol_timer.Reset();
    DASH_ASSIGN_OR_RETURN(flat_totals,
                          secure_sum.Run(Secret<Vector>(streamed.flat)));
    protocol_seconds += protocol_timer.ElapsedSeconds();
  } else if (options.pipeline_block_variants > 0) {
    // Stage 3+4 (pipelined): the round schedule of core/scan_pipeline.h,
    // identical to the in-process driver's — header round, then one
    // round per variant block, with block b+1 computed while block b's
    // aggregate is in flight on the transport.
    const PipelinePlan plan{m, k, options.pipeline_block_variants};
    const int64_t num_blocks = plan.num_blocks();

    local_timer.Reset();
    Vector header;
    header.reserve(static_cast<size_t>(plan.header_len()));
    header.push_back(SquaredNorm(party->y));
    const Vector qty = TransposeMatVec(q_p, party->y);
    header.insert(header.end(), qty.begin(), qty.end());
    local_seconds += local_timer.ElapsedSeconds();

    protocol_timer.Reset();
    DASH_ASSIGN_OR_RETURN(Vector header_totals,
                          secure_sum.Run(Secret<Vector>(header)));
    flat_totals.assign(static_cast<size_t>(StatsWireLayout{m, k}.total_len()),
                       0.0);
    ScatterHeaderTotals(header_totals, plan, &flat_totals);

    Vector cur;
    Vector next;
    const auto compute_block = [&](int64_t b, Vector* buf) {
      const int64_t w = plan.width(b);
      buf->assign(static_cast<size_t>(plan.block_len(b)), 0.0);
      ComputeStatsColumns(party->x, party->y, q_p, plan.begin(b), plan.end(b),
                          PipelineBlockView(buf->data(), w), /*pool=*/nullptr);
    };
    if (num_blocks > 0) compute_block(0, &cur);
    for (int64_t b = 0; b < num_blocks; ++b) {
      const bool has_next = b + 1 < num_blocks;
      if (has_next) {
        if (pool != nullptr) {
          pool->Schedule(
              [&compute_block, &next, b] { compute_block(b + 1, &next); });
        } else {
          compute_block(b + 1, &next);
        }
      }
      Result<Vector> block_totals = secure_sum.Run(Secret<Vector>(cur));
      // Join the in-flight compute before any early return can tear down
      // the buffer it writes.
      if (has_next && pool != nullptr) pool->Wait();
      if (!block_totals.ok()) return block_totals.status();
      ScatterBlockTotals(block_totals.value(), plan, b, &flat_totals);
      cur.swap(next);
    }
    protocol_seconds += protocol_timer.ElapsedSeconds();
  } else {
    // Stage 3 (local): our summand, computed directly into a wire-order
    // arena (zero-copy flatten).
    local_timer.Reset();
    const Vector flat = PartyLocalStatsFlat(*party, q_p, pool.get());
    local_seconds += local_timer.ElapsedSeconds();

    // Stage 4 (network): one secure-sum aggregation of everything.
    protocol_timer.Reset();
    DASH_ASSIGN_OR_RETURN(flat_totals, secure_sum.Run(Secret<Vector>(flat)));
    protocol_seconds += protocol_timer.ElapsedSeconds();
  }

  // Stage 5 (local, public): Lemma 2.1 finalization.
  local_timer.Reset();
  DASH_ASSIGN_OR_RETURN(ScanSufficientStats totals,
                        UnflattenStats(flat_totals, m, k));
  totals.num_samples = total_samples;
  DASH_ASSIGN_OR_RETURN(ScanResult result,
                        FinalizeScanWithAbsorbedParams(totals, absorbed_params));
  local_seconds += local_timer.ElapsedSeconds();

  // Commit round: broadcast the checksum of the result we are about to
  // reveal and require every peer's to match. This is the last line of
  // defense against faults no other layer can see (e.g. a same-tag
  // same-length reorder): instead of parties walking away with
  // different numbers, the scan fails with DataLoss at every party.
  if (options.commit_round && num_parties > 1) {
    protocol_timer.Reset();
    transport->BeginRound();
    const uint64_t checksum = ScanResultChecksum(result);
    ByteWriter w;
    w.PutU64(checksum);
    DASH_ROUND(phase4_commit, kCommit);
    DASH_RETURN_IF_ERROR(
        transport->Broadcast(local, MessageTag::kCommit, w.Take()));
    for (int q = 0; q < num_parties; ++q) {
      if (q == local) continue;
      DASH_ROUND(phase4_commit, kCommit);
      DASH_ASSIGN_OR_RETURN(Message msg,
                            transport->Receive(local, q, MessageTag::kCommit));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(uint64_t peer_sum, r.GetU64());
      if (peer_sum != checksum) {
        return DataLossError("result divergence: party " + std::to_string(q) +
                             " committed checksum " +
                             std::to_string(peer_sum) + ", party " +
                             std::to_string(local) + " computed " +
                             std::to_string(checksum));
      }
    }
    protocol_seconds += protocol_timer.ElapsedSeconds();
  }

  // The revealed (and, when enabled, commit-verified) result is in
  // hand: the checkpoint has served its purpose. A crash before this
  // point keeps the snapshot for the next run.
  if (stream != nullptr && !stream->checkpoint_path.empty()) {
    RemoveScanCheckpoint(stream->checkpoint_path);
  }

  SecureScanOutput out;
  out.result = std::move(result);
  out.metrics.total_bytes = transport->metrics().total_bytes();
  out.metrics.total_messages = transport->metrics().total_messages();
  out.metrics.max_link_bytes = transport->metrics().MaxLinkBytes();
  out.metrics.rounds = transport->metrics().rounds();
  out.metrics.local_compute_seconds = local_seconds;
  out.metrics.protocol_seconds = protocol_seconds;
  out.metrics.phase1_cache_hit = cache_hit;
  out.metrics.streamed = stream != nullptr;
  out.metrics.resumed_from_panel = resumed_from_panel;
  out.metrics.panels_streamed = panels_streamed;
  out.metrics.checkpoints_written = checkpoints_written;
  DASH_LOG(Info) << "party " << local << "/" << num_parties
                 << " secure scan: N=" << total_samples << " M=" << m
                 << " K=" << k << " mode="
                 << AggregationModeName(options.aggregation)
                 << " sent_bytes=" << out.metrics.total_bytes;
  return out;
}

// Shared tail of every public entry point: validate the transport
// binding, run the protocol, and on failure best-effort notify peers.
Result<SecureScanOutput> RunPartyScanWithAbortPropagation(
    Transport* transport, const PartyData& input_party,
    const SecureScanOptions& options, Phase1State* phase1,
    const StreamingPartyScan* stream) {
  DASH_CHECK(transport != nullptr);
  const int local = transport->local_party();
  if (local < 0) {
    return InvalidArgumentError(
        "RunPartySecureScan needs a party-bound transport "
        "(local_party() >= 0); in-process simulations go through "
        "SecureAssociationScan::Run");
  }
  Result<SecureScanOutput> out =
      RunPartyScanProtocol(transport, input_party, options, phase1, stream);
  if (out.ok()) return out;
  const Status cause = out.status();
  const int round = transport->metrics().rounds();

  // Abort propagation (PROTOCOL.md "Failure modes"): the first party to
  // observe a mid-protocol failure best-effort notifies every peer, so
  // peers stuck in Receive fail with the ORIGINATOR's status code
  // instead of waiting out their own timeouts. Aborts received from a
  // peer are not re-broadcast (no abort storms), and failures before
  // round 1 (argument validation) concern only this process.
  if (round > 0 && !IsAbortStatus(cause)) {
    AbortInfo info;
    info.origin = local;
    info.round = round;
    info.code = cause.code();
    info.message = cause.message();
    const std::vector<uint8_t> payload = EncodeAbortPayload(info);
    for (int q = 0; q < transport->num_parties(); ++q) {
      if (q == local) continue;
      // Best effort: a link that is itself down must not mask `cause`.
      DASH_ROUND(abort_notify, kAbort);
      const Status notify =
          transport->Send(local, q, MessageTag::kAbort, payload);
      (void)notify;
    }
  }
  if (IsAbortStatus(cause)) return cause;
  return Status(cause.code(),
                "round " + std::to_string(round) + ": " + cause.message());
}

}  // namespace

Result<SecureScanOutput> RunPartySecureScan(Transport* transport,
                                            const PartyData& input_party,
                                            const SecureScanOptions& options) {
  return RunPartyScanWithAbortPropagation(transport, input_party, options,
                                          /*phase1=*/nullptr,
                                          /*stream=*/nullptr);
}

Result<SecureScanOutput> RunPartySecureScan(Transport* transport,
                                            const PartyData& input_party,
                                            const SecureScanOptions& options,
                                            Phase1State* phase1) {
  return RunPartyScanWithAbortPropagation(transport, input_party, options,
                                          phase1, /*stream=*/nullptr);
}

Result<SecureScanOutput> RunPartySecureScanStreamed(
    Transport* transport, const Vector& y, const Matrix& c,
    const StreamingPartyScan& stream, const SecureScanOptions& options,
    Phase1State* phase1) {
  // Phases 0–1 consume only y and C; a zero-column X satisfies the
  // party validation while Phase 2 reads the real X from the source.
  PartyData party;
  party.x = Matrix(static_cast<int64_t>(y.size()), 0);
  party.y = y;
  party.c = c;
  return RunPartyScanWithAbortPropagation(transport, party, options, phase1,
                                          &stream);
}

}  // namespace dash
