// Deterministic fault injection for any Transport.
//
// FaultInjectingTransport decorates a backend (the in-process simulator
// or a TcpTransport endpoint) and applies a seeded FaultPlan: a list of
// rules keyed by (round, sender, receiver, nth matching message). The
// plan is pure data, so the SAME plan handed to every party of a run
// describes one global fault schedule; because the protocol's send and
// receive sequences are deterministic and every party calls BeginRound
// at the same protocol points, the sender-side decorator and the
// receiver-side decorator independently agree on which (round, link,
// nth) a given message is — no cross-party coordination channel exists
// or is needed.
//
// Fault semantics (sender transform + receiver detection):
//   kDrop        sender swallows the message; the receiver's matching
//                Receive reports DeadlineExceeded (TCP would time out)
//                without consuming anything.
//   kDelay       sender sleeps delay_ms before forwarding (skipped on
//                the in-process backend, where no wall clock exists
//                between lockstep calls). Outlasting the peer's
//                receive_timeout_ms turns this into a timeout fault.
//   kDuplicate   sender forwards the message twice; the receiver's
//                matching Receive consumes both copies and delivers
//                one. The run must stay bit-identical to fault-free.
//   kReorder     sender holds the message and releases it AFTER the
//                next message on the same link (reorder-within-tag when
//                the next send carries the same tag, e.g. pipelined
//                block rounds). Detected by tag/commit checks.
//   kCorrupt     sender XORs corrupt_xor into one payload byte; the
//                receiver's matching Receive consumes the mangled
//                message and reports DataLoss (modeling the CRC check
//                a physical wire performs; FaultProxy exercises the
//                real CRC path in tcp framing).
//   kDisconnect  the link (both directions between the two parties) is
//                dead from this message on; every later Send/Receive on
//                it reports Unavailable.
//
// A FaultInjectingTransport is single-threaded like every Transport.
// Traffic accounting is mirrored: every message actually forwarded to
// the inner backend is also recorded on the decorator's own metrics and
// trace (dropped messages on neither), so a protocol driver handed the
// decorator reads the same numbers the inner transport counts.

#ifndef DASH_TRANSPORT_FAULT_TRANSPORT_H_
#define DASH_TRANSPORT_FAULT_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "transport/transport.h"

namespace dash {

enum class FaultKind {
  kDrop = 0,
  kDelay = 1,
  kDuplicate = 2,
  kReorder = 3,
  kCorrupt = 4,
  kDisconnect = 5,
};

const char* FaultKindName(FaultKind kind);

// One fault. round/from/to of -1 match anything; nth counts messages
// that matched (round, from, to) so far, -1 matches every occurrence.
// Rounds are numbered from 1: a message sent after the k-th BeginRound
// is in round k (before any BeginRound: round 0).
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  int round = -1;
  int from = -1;
  int to = -1;
  int nth = 0;
  int delay_ms = 0;          // kDelay only
  uint8_t corrupt_xor = 0x40;  // kCorrupt only; must be nonzero

  std::string ToString() const;
};

// A deterministic fault schedule: rules are matched in order, first
// match wins. The same FaultPlan value must be given to every party's
// decorator.
struct FaultPlan {
  std::vector<FaultRule> rules;

  // Human-readable, one rule per line — printed by the sweep test so a
  // failing plan can be read straight out of the CI log.
  std::string ToString() const;

  struct SweepOptions {
    int num_parties = 3;
    int max_rounds = 6;   // rounds the random rules may target
    int min_rules = 1;
    int max_rules = 3;
  };

  // The plan is a pure function of (seed, options): re-running with a
  // logged seed reproduces a sweep case byte-for-byte.
  static FaultPlan Random(uint64_t seed, const SweepOptions& options);
};

class FaultInjectingTransport : public Transport {
 public:
  // Decorates `inner` (not owned; must outlive this object) with the
  // faults in `plan`.
  FaultInjectingTransport(Transport* inner, FaultPlan plan);

  int local_party() const override { return inner_->local_party(); }

  // Decorators must not change the session identity of the link they
  // wrap: per-session mask-key derivation reads session_id() from the
  // transport handed to the protocol, and a decorator that reported the
  // default 0 for a wrapped SessionChannel would silently put this
  // party in a different mask domain than its peers.
  uint32_t session_id() const override { return inner_->session_id(); }

  Status Send(int from, int to, MessageTag tag,
              std::vector<uint8_t> payload) override;
  Result<Message> Receive(int to, int from, MessageTag expected_tag) override;
  bool HasPending(int to, int from) override;
  void BeginRound() override;

  Transport* inner() { return inner_; }

 private:
  struct LinkKey {
    int round;
    int from;
    int to;
    bool operator<(const LinkKey& other) const {
      if (round != other.round) return round < other.round;
      if (from != other.from) return from < other.from;
      return to < other.to;
    }
  };

  // First rule matching the n-th (round, from, to) message, or nullptr.
  const FaultRule* Match(int round, int from, int to, int nth) const;

  // Records the message on this transport's metrics/trace, then hands
  // it to the inner backend.
  Status ForwardSend(int from, int to, MessageTag tag,
                     std::vector<uint8_t> payload);

  bool LinkDead(int a, int b) const;
  void KillLink(int a, int b);
  Status DeadLinkError(int from, int to) const;

  Transport* inner_;
  FaultPlan plan_;
  int round_ = 0;
  std::map<LinkKey, int> send_counts_;
  std::map<LinkKey, int> recv_counts_;
  // Held (reordered) message per directed link, keyed from*P+to.
  std::map<int, Message> held_;
  std::vector<bool> dead_pairs_;  // symmetric, indexed min*P+max
};

}  // namespace dash

#endif  // DASH_TRANSPORT_FAULT_TRANSPORT_H_
