// Abstract message transport between P parties.
//
// Transport is the seam between the protocol layer and the bytes-moving
// layer. Protocol code (distributed QR, secure sums, the secure scan
// drivers) talks only to this interface, so the same protocol runs
// unchanged over
//
//  * the in-process simulated network (net/network.h, the historical
//    `Network`, now one Transport implementation) — all P parties live
//    in one process and one thread; and
//  * a real TCP mesh (transport/tcp_transport.h) — this process is ONE
//    party and every Send/Receive crosses a socket.
//
// Accounting is part of the interface contract: every message is counted
// once, BY ITS SENDER, with Message::WireSize() bytes (payload + the
// 16-byte logical header). Both backends therefore report identical
// TrafficMetrics and ProtocolTrace entries for the same protocol run,
// which is what keeps the paper's O(M) communication claim verifiable on
// real wire bytes (a TCP party's metrics are its outgoing half of the
// global picture; union over parties == the in-process view).
//
// Threading: a Transport instance is single-threaded — all calls must
// come from one thread. Distinct instances (e.g. several TcpTransport
// endpoints in one test process) are independent. See net/network.h and
// transport/tcp_transport.h for backend-specific notes.

#ifndef DASH_TRANSPORT_TRANSPORT_H_
#define DASH_TRANSPORT_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/message.h"
#include "util/status.h"

namespace dash {

class ProtocolTrace;

// Cumulative traffic counters kept by every Transport. Counters are
// logical: each message contributes Message::WireSize() once, attributed
// to its sender, regardless of backend (physical framing overhead is
// reported separately by backends that have any; see
// TcpTransport::wire_stats).
//
// Thread safety: counters are independent relaxed atomics, so a
// monitoring thread may read them (and Reset may zero them) while the
// protocol thread records traffic — the one cross-thread access every
// backend supports. Each counter is individually exact; a reader racing
// a Record may observe one counter from before the message and another
// from after it, which is fine for monitoring. Relaxed ordering suffices
// because no reader infers other memory state from a counter value.
class TrafficMetrics {
 public:
  explicit TrafficMetrics(int num_parties);

  void Record(const Message& msg);
  void BumpRound() { rounds_.fetch_add(1, std::memory_order_relaxed); }
  void Reset();

  int64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  int64_t total_messages() const {
    return total_messages_.load(std::memory_order_relaxed);
  }
  int rounds() const { return rounds_.load(std::memory_order_relaxed); }
  int64_t LinkBytes(int from, int to) const;

  // Largest bytes sent over any single directed link.
  int64_t MaxLinkBytes() const;

  // Bytes sent by one party over all its outgoing links.
  int64_t BytesSentBy(int party) const;

 private:
  int num_parties_;
  std::atomic<int64_t> total_bytes_{0};
  std::atomic<int64_t> total_messages_{0};
  std::atomic<int> rounds_{0};
  // num_parties^2 entries, row-major [from][to].
  std::vector<std::atomic<int64_t>> link_bytes_;
};

class Transport {
 public:
  // A transport among parties 0..num_parties-1. Requires num_parties >= 1.
  explicit Transport(int num_parties);
  virtual ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  int num_parties() const { return num_parties_; }

  // The party this endpoint acts for, or -1 when the transport carries
  // every party in-process (the simulation backend). Backends bound to
  // one party reject Send with a foreign `from` and Receive with a
  // foreign `to`.
  virtual int local_party() const { return -1; }

  // Queues/transmits a message; from/to must be distinct valid party ids.
  virtual Status Send(int from, int to, MessageTag tag,
                      std::vector<uint8_t> payload) = 0;

  // Sends the same payload to every other party.
  virtual Status Broadcast(int from, MessageTag tag,
                           const std::vector<uint8_t>& payload);

  // Delivers the next message queued from -> to. Backend semantics
  // differ only in how "not there yet" is reported: the in-process
  // backend fails immediately with FailedPrecondition (an absent message
  // is a protocol bug when every party runs in one thread), while the
  // TCP backend blocks up to its configured timeout and then fails with
  // DeadlineExceeded. A tag mismatch is FailedPrecondition on every
  // backend (protocol desync).
  virtual Result<Message> Receive(int to, int from,
                                  MessageTag expected_tag) = 0;

  // True if a message from -> to is already deliverable without blocking.
  virtual bool HasPending(int to, int from) = 0;

  // --- Session extension points (transport/session_mux.h) -----------
  //
  // A backend that supports multiplexed logical sessions over its links
  // overrides these four; the defaults keep every existing backend
  // valid for the sessionless stream (session 0). The session id is
  // carried in the frame header (transport/frame.h), so the wire format
  // is fixed here and a later event-loop backend only swaps the
  // implementation behind these hooks.

  // The logical session every plain Send/Receive on this transport
  // belongs to. 0 everywhere except on a session-bound channel handed
  // out by a SessionMux.
  virtual uint32_t session_id() const { return 0; }

  // Send tagged with an explicit session id. Backends without session
  // support accept only the sessionless stream.
  virtual Status SendOnSession(uint32_t session, int from, int to,
                               MessageTag tag, std::vector<uint8_t> payload);

  // Pops the next deliverable message from -> to regardless of tag or
  // session (the demultiplexer's intake; it routes by Message::session).
  // Non-blocking: NotFound when nothing is deliverable right now.
  virtual Result<Message> TryReceiveAny(int to, int from);

  // Blocks up to timeout_ms for inbound bytes to become deliverable (a
  // poll on the backend's sockets). The default is a no-op so callers
  // over queue-backed backends simply spin on TryReceiveAny.
  virtual Status PumpWait(int timeout_ms);

  // Health of the link to `peer`: Ok while usable, else the sticky
  // failure (Unavailable/DataLoss/...). Backends without per-link state
  // report Ok.
  virtual Status LinkStatus(int peer);

  // Marks the start of a new synchronous protocol round (metrics only).
  // Virtual so decorators (transport/fault_transport.h) can observe the
  // round boundary; overrides must call the base to keep metrics right.
  virtual void BeginRound() { metrics_.BumpRound(); }

  // Attaches a transcript recorder (net/trace.h); nullptr detaches. The
  // recorder must outlive the transport or be detached first.
  void AttachTrace(ProtocolTrace* trace) { trace_ = trace; }

  TrafficMetrics& metrics() { return metrics_; }
  const TrafficMetrics& metrics() const { return metrics_; }

 protected:
  // Sender-side accounting shared by all backends: counts the message in
  // the metrics and appends it to the attached trace, tagged with the
  // current round.
  void RecordSend(const Message& msg);

  Status ValidateParty(int id, const char* what) const;

 private:
  int num_parties_;
  TrafficMetrics metrics_;
  ProtocolTrace* trace_ = nullptr;
};

}  // namespace dash

#endif  // DASH_TRANSPORT_TRANSPORT_H_
