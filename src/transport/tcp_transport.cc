#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "net/abort.h"
#include "transport/frame.h"
#include "util/check.h"
#include "util/random.h"

namespace dash {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return IoError(std::string("fcntl(O_NONBLOCK): ") + strerror(errno));
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

// Writes the whole buffer, polling for writability, until deadline_ms.
Status WriteAll(int fd, const uint8_t* data, size_t size,
                int64_t deadline_ms, const std::string& what) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n =
        ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      return IoError(what + ": send failed: " + strerror(errno));
    }
    const int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      return DeadlineExceededError(what + ": send timed out");
    }
    struct pollfd pfd = {fd, POLLOUT, 0};
    ::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(remaining, 100)));
  }
  return Status::Ok();
}

// Reads exactly `size` bytes, polling for readability, until deadline_ms.
Status ReadExactly(int fd, uint8_t* data, size_t size, int64_t deadline_ms,
                   const std::string& what) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return IoError(what + ": connection closed by peer");
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return IoError(what + ": recv failed: " + strerror(errno));
    }
    const int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      return DeadlineExceededError(what + ": recv timed out");
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    ::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(remaining, 100)));
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeHelloFrame(int from, int to, int num_parties) {
  std::vector<uint8_t> payload;
  for (const uint32_t v :
       {static_cast<uint32_t>(from), static_cast<uint32_t>(num_parties)}) {
    for (int i = 0; i < 4; ++i) {
      payload.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  FrameHeader header;
  header.tag = kFrameHelloTag;
  header.from = from;
  header.to = to;
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.crc32 = Crc32(payload.data(), payload.size());
  std::vector<uint8_t> out;
  EncodeFrameHeader(header, &out);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

constexpr size_t kHelloFrameBytes = kFrameHeaderBytes + 8;

}  // namespace

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const ClusterConfig& cluster, int local_party,
    const TcpTransportOptions& options) {
  if (cluster.num_parties() < 1) {
    return InvalidArgumentError("cluster config names no parties");
  }
  if (local_party < 0 || local_party >= cluster.num_parties()) {
    return InvalidArgumentError(
        "local party " + std::to_string(local_party) +
        " out of range [0, " + std::to_string(cluster.num_parties()) + ")");
  }
  std::unique_ptr<TcpTransport> transport(
      new TcpTransport(cluster, local_party, options));
  DASH_RETURN_IF_ERROR(transport->EstablishMesh());
  return transport;
}

TcpTransport::TcpTransport(const ClusterConfig& cluster, int local_party,
                           const TcpTransportOptions& options)
    : Transport(cluster.num_parties()),
      cluster_(cluster),
      local_party_(local_party),
      options_(options),
      peers_(static_cast<size_t>(cluster.num_parties())) {}

TcpTransport::~TcpTransport() { CloseAll(); }

void TcpTransport::CloseAll() {
  CloseFd(&listen_fd_);
  for (auto& peer : peers_) CloseFd(&peer.fd);
}

Status TcpTransport::EstablishMesh() {
  if (num_parties() == 1) return Status::Ok();
  const int64_t deadline = NowMs() + options_.connect_timeout_ms;

  // Open our own listener FIRST so peers dialing us succeed no matter
  // which process woke up earliest; the kernel backlog holds their
  // connections while we dial lower-numbered parties ourselves.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return IoError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port =
      htons(cluster_.endpoints[static_cast<size_t>(local_party_)].port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return IoError("party " + std::to_string(local_party_) +
                   " cannot bind port " +
                   std::to_string(
                       cluster_.endpoints[static_cast<size_t>(local_party_)]
                           .port) +
                   ": " + strerror(errno));
  }
  if (::listen(listen_fd_, num_parties() + 8) < 0) {
    return IoError(std::string("listen: ") + strerror(errno));
  }
  DASH_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  // Dial every lower-numbered party; accept everyone above us.
  for (int peer = 0; peer < local_party_; ++peer) {
    DASH_RETURN_IF_ERROR(DialPeer(peer, deadline));
  }
  DASH_RETURN_IF_ERROR(AcceptPeers(deadline));
  return Status::Ok();
}

Status TcpTransport::DialPeer(int peer, int64_t deadline_ms) {
  const PartyEndpoint& ep = cluster_.endpoints[static_cast<size_t>(peer)];
  const std::string what = "party " + std::to_string(local_party_) +
                           " dialing party " + std::to_string(peer) + " (" +
                           ep.host + ":" + std::to_string(ep.port) + ")";
  Rng jitter(static_cast<uint64_t>(NowMs()) ^
             (static_cast<uint64_t>(local_party_) * 0x9E3779B97F4A7C15ull));
  int64_t backoff = options_.backoff_initial_ms;

  while (true) {
    if (NowMs() >= deadline_ms) {
      return DeadlineExceededError(what + ": no listener within " +
                                   std::to_string(options_.connect_timeout_ms) +
                                   " ms");
    }

    struct addrinfo hints;
    memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* info = nullptr;
    const int rc = ::getaddrinfo(ep.host.c_str(),
                                 std::to_string(ep.port).c_str(), &hints,
                                 &info);
    if (rc != 0 || info == nullptr) {
      return IoError(what + ": getaddrinfo: " + gai_strerror(rc));
    }

    int fd = ::socket(info->ai_family, info->ai_socktype, info->ai_protocol);
    bool connected = false;
    if (fd >= 0 && SetNonBlocking(fd).ok()) {
      if (::connect(fd, info->ai_addr, info->ai_addrlen) == 0) {
        connected = true;
      } else if (errno == EINPROGRESS) {
        const int64_t remaining = deadline_ms - NowMs();
        struct pollfd pfd = {fd, POLLOUT, 0};
        if (::poll(&pfd, 1,
                   static_cast<int>(std::clamp<int64_t>(remaining, 0,
                                                        1000))) > 0) {
          int err = 0;
          socklen_t len = sizeof(err);
          getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
          connected = (err == 0);
        }
      }
    }
    ::freeaddrinfo(info);

    if (connected) {
      SetNoDelay(fd);
      // Introduce ourselves, then require the peer's hello back; a peer
      // that dies mid-handshake surfaces as EOF here and we fall through
      // to the retry path, which is exactly how a restarted party is
      // re-admitted.
      const std::vector<uint8_t> hello =
          EncodeHelloFrame(local_party_, peer, num_parties());
      Status handshake =
          WriteAll(fd, hello.data(), hello.size(), deadline_ms, what);
      int hello_party = -1;
      if (handshake.ok()) {
        handshake = FinishHandshake(fd, peer, deadline_ms, &hello_party);
      }
      if (handshake.ok()) {
        peers_[static_cast<size_t>(peer)].fd = fd;
        return Status::Ok();
      }
      CloseFd(&fd);
      if (handshake.code() == StatusCode::kDeadlineExceeded) {
        return handshake;
      }
      // else: broken handshake — back off and redial.
    } else {
      CloseFd(&fd);
    }

    const int64_t sleep_ms = std::min<int64_t>(
        backoff / 2 + static_cast<int64_t>(jitter.UniformInt(
                          static_cast<uint64_t>(backoff / 2 + 1))),
        std::max<int64_t>(deadline_ms - NowMs(), 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff = std::min<int64_t>(backoff * 2, options_.backoff_max_ms);
  }
}

Status TcpTransport::AcceptPeers(int64_t deadline_ms) {
  int missing = 0;
  for (int peer = local_party_ + 1; peer < num_parties(); ++peer) ++missing;

  while (missing > 0) {
    const int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      std::string absent;
      for (int peer = local_party_ + 1; peer < num_parties(); ++peer) {
        if (peers_[static_cast<size_t>(peer)].fd < 0) {
          if (!absent.empty()) absent += ", ";
          absent += std::to_string(peer);
        }
      }
      return DeadlineExceededError(
          "party " + std::to_string(local_party_) + " timed out after " +
          std::to_string(options_.connect_timeout_ms) +
          " ms waiting for part" + (missing > 1 ? "ies " : "y ") + absent +
          " to connect");
    }
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    if (::poll(&pfd, 1,
               static_cast<int>(std::min<int64_t>(remaining, 100))) <= 0) {
      continue;
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (!SetNonBlocking(fd).ok()) {
      CloseFd(&fd);
      continue;
    }
    SetNoDelay(fd);

    // The dialer speaks first; a connection that dies before its hello
    // (e.g. a party killed mid-handshake) is simply discarded and the
    // slot stays open for its restart.
    int hello_party = -1;
    if (!FinishHandshake(fd, -1, deadline_ms, &hello_party).ok()) {
      CloseFd(&fd);
      continue;
    }
    if (hello_party <= local_party_ || hello_party >= num_parties()) {
      CloseFd(&fd);
      continue;
    }
    const std::vector<uint8_t> reply =
        EncodeHelloFrame(local_party_, hello_party, num_parties());
    if (!WriteAll(fd, reply.data(), reply.size(), deadline_ms, "hello reply")
             .ok()) {
      CloseFd(&fd);
      continue;
    }
    Peer& slot = peers_[static_cast<size_t>(hello_party)];
    if (slot.fd >= 0) {
      // A fresh connection from a party we already hold supersedes the
      // stale one (the old process is gone).
      CloseFd(&slot.fd);
    } else {
      --missing;
    }
    slot.fd = fd;
  }
  return Status::Ok();
}

Status TcpTransport::FinishHandshake(int fd, int expected_peer,
                                     int64_t deadline_ms, int* hello_party) {
  uint8_t buf[kHelloFrameBytes];
  DASH_RETURN_IF_ERROR(
      ReadExactly(fd, buf, sizeof(buf), deadline_ms, "hello"));
  DASH_ASSIGN_OR_RETURN(FrameHeader header,
                        DecodeFrameHeader(buf, kFrameHeaderBytes));
  if (header.tag != kFrameHelloTag || header.payload_len != 8) {
    return IoError("expected a hello frame, got tag " +
                   std::to_string(header.tag));
  }
  std::vector<uint8_t> payload(buf + kFrameHeaderBytes,
                               buf + kHelloFrameBytes);
  DASH_RETURN_IF_ERROR(CheckFramePayload(header, payload));
  uint32_t party = 0;
  uint32_t parties = 0;
  for (int i = 0; i < 4; ++i) {
    party |= static_cast<uint32_t>(payload[static_cast<size_t>(i)]) << (8 * i);
    parties |= static_cast<uint32_t>(payload[static_cast<size_t>(4 + i)])
               << (8 * i);
  }
  if (parties != static_cast<uint32_t>(num_parties())) {
    return IoError("peer believes the cluster has " + std::to_string(parties) +
                   " parties, this config has " +
                   std::to_string(num_parties()));
  }
  if (expected_peer >= 0 && party != static_cast<uint32_t>(expected_peer)) {
    return IoError("dialed party " + std::to_string(expected_peer) +
                   " but party " + std::to_string(party) + " answered");
  }
  *hello_party = static_cast<int>(party);
  return Status::Ok();
}

Status TcpTransport::Send(int from, int to, MessageTag tag,
                          std::vector<uint8_t> payload) {
  return SendOnSession(0, from, to, tag, std::move(payload));
}

Status TcpTransport::SendOnSession(uint32_t session, int from, int to,
                                   MessageTag tag,
                                   std::vector<uint8_t> payload) {
  if (session > kFrameMaxSessionId) {
    return InvalidArgumentError("session id " + std::to_string(session) +
                                " exceeds the u16 frame field");
  }
  if (from != local_party_) {
    return InvalidArgumentError(
        "TCP endpoint for party " + std::to_string(local_party_) +
        " cannot send as party " + std::to_string(from));
  }
  DASH_RETURN_IF_ERROR(ValidateParty(to, "receiver"));
  if (to == local_party_) {
    return InvalidArgumentError("party " + std::to_string(from) +
                                " attempted to send a message to itself");
  }
  if (payload.size() > kFrameMaxPayloadBytes) {
    return InvalidArgumentError("payload of " +
                                std::to_string(payload.size()) +
                                " bytes exceeds the frame bound");
  }
  Peer& peer = peers_[static_cast<size_t>(to)];
  if (peer.closed || peer.fd < 0) {
    if (!peer.fail.ok()) return PreferAbort(peer.fail);
    return PreferAbort(UnavailableError("connection to party " +
                                        std::to_string(to) + " is closed"));
  }

  Message msg;
  msg.from = from;
  msg.to = to;
  msg.session = session;
  msg.tag = tag;
  msg.payload = std::move(payload);
  const std::vector<uint8_t> frame = EncodeFrame(msg);

  // Write with inbound draining: if the peer's kernel buffer (and ours)
  // is full because every party is mid-broadcast, pulling our inbound
  // frames unblocks the mesh.
  const int64_t deadline = NowMs() + options_.receive_timeout_ms;
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(peer.fd, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      peer.closed = true;
      peer.fail = UnavailableError("peer " + std::to_string(to) +
                                   " disconnected (send: " + strerror(errno) +
                                   ")");
      return PreferAbort(peer.fail);
    }
    if (NowMs() >= deadline) {
      return PreferAbort(DeadlineExceededError(
          "send to party " + std::to_string(to) + " timed out after " +
          std::to_string(options_.receive_timeout_ms) + " ms"));
    }
    DASH_RETURN_IF_ERROR(Pump(10));
  }

  RecordWireSend(msg, frame.size());
  return Status::Ok();
}

Result<Message> TcpTransport::Receive(int to, int from,
                                      MessageTag expected_tag) {
  if (to != local_party_) {
    return InvalidArgumentError(
        "TCP endpoint for party " + std::to_string(local_party_) +
        " cannot receive as party " + std::to_string(to));
  }
  DASH_RETURN_IF_ERROR(ValidateParty(from, "sender"));
  if (from == local_party_) {
    return InvalidArgumentError("party cannot receive from itself");
  }
  Peer& peer = peers_[static_cast<size_t>(from)];
  const int64_t deadline = NowMs() + options_.receive_timeout_ms;
  while (peer.inbox.empty()) {
    // A latched peer abort beats waiting out our own timeout: it names
    // the originator's code, so every survivor reports the same one.
    if (!abort_status_.ok()) return abort_status_;
    if (peer.closed) {
      if (!peer.fail.ok()) return PreferAbort(peer.fail);
      return PreferAbort(UnavailableError(
          "peer " + std::to_string(from) + " disconnected before the " +
          "expected " + MessageTagName(expected_tag) + " arrived"));
    }
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) {
      return DeadlineExceededError(
          "party " + std::to_string(local_party_) + " timed out after " +
          std::to_string(options_.receive_timeout_ms) + " ms waiting for " +
          MessageTagName(expected_tag) + " from party " +
          std::to_string(from));
    }
    DASH_RETURN_IF_ERROR(
        Pump(static_cast<int>(std::min<int64_t>(remaining, 100))));
    ScanForAborts();
  }
  Message msg = std::move(peer.inbox.front());
  peer.inbox.pop_front();
  if (msg.session != 0) {
    // The peer is multiplexing sessions over this link but this side is
    // reading the sessionless stream — a deployment mismatch (or a
    // hostile session id), not a recoverable ordering issue.
    return FailedPreconditionError(
        "protocol desync: session " + std::to_string(msg.session) +
        " frame (tag " + MessageTagName(msg.tag) +
        ") on the sessionless receive path");
  }
  if (msg.tag != expected_tag) {
    return FailedPreconditionError(
        std::string("protocol desync: expected tag ") +
        MessageTagName(expected_tag) + " but received " +
        MessageTagName(msg.tag));
  }
  return msg;
}

Result<Message> TcpTransport::TryReceiveAny(int to, int from) {
  if (to != local_party_) {
    return InvalidArgumentError(
        "TCP endpoint for party " + std::to_string(local_party_) +
        " cannot receive as party " + std::to_string(to));
  }
  DASH_RETURN_IF_ERROR(ValidateParty(from, "sender"));
  if (from == local_party_) {
    return InvalidArgumentError("party cannot receive from itself");
  }
  Peer& peer = peers_[static_cast<size_t>(from)];
  if (peer.inbox.empty()) {
    const Status pump = Pump(0);
    (void)pump;
  }
  if (peer.inbox.empty()) {
    // Link health is reported by LinkStatus, not here: the intake's only
    // question is "is a message deliverable right now".
    return NotFoundError("no message pending from party " +
                         std::to_string(from));
  }
  Message msg = std::move(peer.inbox.front());
  peer.inbox.pop_front();
  return msg;
}

Status TcpTransport::PumpWait(int timeout_ms) { return Pump(timeout_ms); }

Status TcpTransport::LinkStatus(int peer_id) {
  DASH_RETURN_IF_ERROR(ValidateParty(peer_id, "peer"));
  if (peer_id == local_party_) return Status::Ok();
  Peer& peer = peers_[static_cast<size_t>(peer_id)];
  if (!peer.fail.ok()) return peer.fail;
  if (peer.closed || peer.fd < 0) {
    return UnavailableError("connection to party " + std::to_string(peer_id) +
                            " is closed");
  }
  return Status::Ok();
}

bool TcpTransport::HasPending(int to, int from) {
  if (to != local_party_ || from < 0 || from >= num_parties() ||
      from == local_party_) {
    return false;
  }
  const Status pump = Pump(0);
  (void)pump;
  return !peers_[static_cast<size_t>(from)].inbox.empty();
}

Status TcpTransport::Pump(int timeout_ms) {
  std::vector<struct pollfd> pfds;
  std::vector<int> parties;
  for (int p = 0; p < num_parties(); ++p) {
    Peer& peer = peers_[static_cast<size_t>(p)];
    if (peer.fd >= 0 && !peer.closed) {
      pfds.push_back({peer.fd, POLLIN, 0});
      parties.push_back(p);
    }
  }
  if (pfds.empty()) return Status::Ok();
  const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (ready <= 0) return Status::Ok();
  for (size_t i = 0; i < pfds.size(); ++i) {
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      ReadAvailable(parties[i]);
    }
  }
  return Status::Ok();
}

void TcpTransport::ReadAvailable(int party) {
  Peer& peer = peers_[static_cast<size_t>(party)];
  uint8_t buf[64 * 1024];
  int64_t received = 0;
  bool dead = false;
  std::string recv_error;
  while (true) {
    const ssize_t n = ::recv(peer.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      peer.rx.insert(peer.rx.end(), buf, buf + n);
      received += n;
      continue;
    }
    if (n == 0) {
      dead = true;  // clean EOF
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    dead = true;  // hard error, e.g. ECONNRESET
    recv_error = strerror(errno);
    break;
  }
  if (received > 0) {
    MutexLock lock(&stats_mutex_);
    wire_stats_.bytes_received += received;
  }
  // Parse whatever arrived BEFORE the failure so complete frames ahead
  // of an EOF are still delivered.
  const Status parsed = ParseFrames(party);
  if (!parsed.ok()) {
    peer.closed = true;
    if (peer.fail.ok()) peer.fail = parsed;
  }
  if (dead) {
    peer.closed = true;
    if (peer.fail.ok()) {
      // A reset and a clean FIN are the same protocol event — the link
      // died — so both get the mid-frame diagnosis when a partial
      // frame is left behind; only the parenthetical differs.
      const size_t partial = peer.rx.size() - peer.rx_consumed;
      std::string what = "peer " + std::to_string(party) + " disconnected";
      if (!recv_error.empty()) what += " (recv: " + recv_error + ")";
      if (partial > 0) {
        what += " mid-frame (" + std::to_string(partial) +
                " bytes of a partial frame discarded)";
      }
      peer.fail = UnavailableError(std::move(what));
    }
  }
}

Status TcpTransport::ParseFrames(int party) {
  Peer& peer = peers_[static_cast<size_t>(party)];
  while (peer.rx.size() - peer.rx_consumed >= kFrameHeaderBytes) {
    const uint8_t* head = peer.rx.data() + peer.rx_consumed;
    DASH_ASSIGN_OR_RETURN(FrameHeader header,
                          DecodeFrameHeader(head, kFrameHeaderBytes));
    const size_t frame_bytes = kFrameHeaderBytes + header.payload_len;
    if (peer.rx.size() - peer.rx_consumed < frame_bytes) break;
    std::vector<uint8_t> payload(head + kFrameHeaderBytes,
                                 head + frame_bytes);
    peer.rx_consumed += frame_bytes;
    DASH_RETURN_IF_ERROR(CheckFramePayload(header, payload));
    if (header.tag == kFrameHelloTag || header.from != party ||
        header.to != local_party_) {
      return DataLossError("party " + std::to_string(party) +
                           " sent a malformed frame (tag " +
                           std::to_string(header.tag) + ", from " +
                           std::to_string(header.from) + ", to " +
                           std::to_string(header.to) + ")");
    }
    Message msg;
    msg.from = header.from;
    msg.to = header.to;
    msg.session = header.session;
    msg.tag = static_cast<MessageTag>(header.tag);
    msg.payload = std::move(payload);
    peer.inbox.push_back(std::move(msg));
    MutexLock lock(&stats_mutex_);
    wire_stats_.frames_received += 1;
  }
  if (peer.rx_consumed == peer.rx.size()) {
    peer.rx.clear();
    peer.rx_consumed = 0;
  } else if (peer.rx_consumed > (1u << 20)) {
    peer.rx.erase(peer.rx.begin(),
                  peer.rx.begin() + static_cast<ptrdiff_t>(peer.rx_consumed));
    peer.rx_consumed = 0;
  }
  return Status::Ok();
}

Status TcpTransport::PreferAbort(Status local) {
  // recv still yields bytes the peer wrote before closing, even after a
  // send on the same socket failed — so the abort that explains this
  // failure is usually one drain away.
  for (int p = 0; p < num_parties(); ++p) {
    if (p == local_party_) continue;
    if (peers_[static_cast<size_t>(p)].fd >= 0) ReadAvailable(p);
  }
  ScanForAborts();
  if (!abort_status_.ok()) return abort_status_;
  return local;
}

void TcpTransport::ScanForAborts() {
  if (!abort_status_.ok()) return;
  for (auto& peer : peers_) {
    for (auto it = peer.inbox.begin(); it != peer.inbox.end(); ++it) {
      // Only sessionless aborts latch transport-wide: an abort inside a
      // multiplexed session concerns that session alone and is routed
      // (and scoped) by the SessionMux via TryReceiveAny.
      if (it->tag != MessageTag::kAbort || it->session != 0) continue;
      const AbortInfo info = DecodeAbortPayload(it->payload);
      peer.inbox.erase(it);
      abort_status_ = MakeAbortStatus(info);
      return;
    }
  }
}

void TcpTransport::RecordWireSend(const Message& msg, size_t frame_bytes) {
  MutexLock lock(&stats_mutex_);
  RecordSend(msg);
  wire_stats_.bytes_sent += static_cast<int64_t>(frame_bytes);
  wire_stats_.frames_sent += 1;
}

TcpWireStats TcpTransport::wire_stats() const {
  MutexLock lock(&stats_mutex_);
  return wire_stats_;
}

}  // namespace dash
