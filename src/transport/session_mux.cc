#include "transport/session_mux.h"

#include <chrono>
#include <string>
#include <utility>

#include "net/abort.h"
#include "transport/frame.h"
#include "util/check.h"

namespace dash {

SessionMux::SessionMux(Transport* inner, SessionMuxOptions options)
    : inner_(inner),
      options_(options),
      num_parties_(inner->num_parties()),
      local_party_(inner->local_party()),
      link_fail_(static_cast<size_t>(inner->num_parties())) {
  DASH_CHECK(inner != nullptr);
  DASH_CHECK(local_party_ >= 0) << "SessionMux needs a party-bound transport";
  pump_ = std::thread([this] { PumpLoop(); });
}

SessionMux::~SessionMux() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  pump_.join();
}

int SessionMux::num_parties() const { return num_parties_; }
int SessionMux::local_party() const { return local_party_; }

Result<std::unique_ptr<SessionChannel>> SessionMux::OpenSession(
    uint32_t session_id) {
  if (session_id == 0 || session_id > kFrameMaxSessionId) {
    return InvalidArgumentError(
        "session id must be in [1, " + std::to_string(kFrameMaxSessionId) +
        "]; 0 is the sessionless stream");
  }
  MutexLock lock(&mu_);
  if (stopping_) {
    return UnavailableError("session mux shut down");
  }
  if (sessions_.count(session_id) != 0) {
    return AlreadyExistsError("session " + std::to_string(session_id) +
                              " is already open on this mux");
  }
  auto state = std::make_unique<SessionState>();
  state->id = session_id;
  state->inboxes.resize(static_cast<size_t>(num_parties_));
  SessionState* raw = state.get();
  sessions_[session_id] = std::move(state);
  stats_.sessions_opened += 1;
  stats_.open_sessions = static_cast<int>(sessions_.size());

  // A peer's scheduler may have started this job first: its frames wait
  // in the orphan buffer and are replayed now, in arrival order.
  auto orphaned = orphans_.find(session_id);
  if (orphaned != orphans_.end()) {
    for (Message& msg : orphaned->second) {
      orphan_count_ -= 1;
      DeliverLocked(raw, std::move(msg));
    }
    orphans_.erase(orphaned);
  }
  // A link that died before this session opened still dooms it.
  for (const Status& link : link_fail_) {
    if (!link.ok() && raw->fail.ok()) raw->fail = link;
  }
  return std::unique_ptr<SessionChannel>(
      new SessionChannel(this, session_id));
}

Status SessionMux::LinkHealth() const {
  MutexLock lock(&mu_);
  for (const Status& link : link_fail_) {
    if (!link.ok()) return link;
  }
  return Status::Ok();
}

SessionMuxStats SessionMux::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void SessionMux::PumpLoop() {
  while (true) {
    // Phase 1: execute queued sends. The inner transport is touched
    // WITHOUT the lock held (a send can block on a full kernel buffer
    // up to its deadline); op pointers stay valid because the enqueuing
    // thread blocks until `done`.
    std::vector<SendOp*> ops;
    bool stop = false;
    {
      MutexLock lock(&mu_);
      ops.swap(pending_sends_);
      stop = stopping_;
    }
    for (SendOp* op : ops) {
      Status result = inner_->SendOnSession(
          op->msg.session, op->msg.from, op->msg.to, op->msg.tag,
          std::move(op->msg.payload));
      MutexLock lock(&mu_);
      op->result = std::move(result);
      op->done = true;
      send_cv_.NotifyAll();
    }
    if (stop) break;

    // Phase 2: drain the intake and route by session id; note link
    // deaths so blocked sessions fail promptly instead of waiting out
    // their own deadlines.
    for (int peer = 0; peer < num_parties_; ++peer) {
      if (peer == local_party_) continue;
      while (true) {
        Result<Message> msg = inner_->TryReceiveAny(local_party_, peer);
        if (!msg.ok()) break;  // NotFound: nothing deliverable now
        MutexLock lock(&mu_);
        RouteLocked(std::move(msg).value());
      }
      Status link = inner_->LinkStatus(peer);
      if (!link.ok()) {
        MutexLock lock(&mu_);
        if (link_fail_[static_cast<size_t>(peer)].ok()) {
          link_fail_[static_cast<size_t>(peer)] = link;
          FailAllSessionsLocked(link);
        }
      }
    }

    // Phase 3: block briefly for inbound bytes (and bound the latency
    // of the next queued send).
    const Status pumped = inner_->PumpWait(options_.pump_interval_ms);
    (void)pumped;
  }

  // Shutdown: nothing may stay blocked on a thread that no longer runs.
  MutexLock lock(&mu_);
  const Status gone = UnavailableError("session mux shut down");
  for (SendOp* op : pending_sends_) {
    op->result = gone;
    op->done = true;
  }
  pending_sends_.clear();
  send_cv_.NotifyAll();
  FailAllSessionsLocked(gone);
}

void SessionMux::RouteLocked(Message msg) {
  if (msg.session == 0) {
    // A sessionless frame on a multiplexed endpoint: a peer that is not
    // muxing (deployment mismatch) or a hostile stream. Dropping it
    // cannot desync any session.
    stats_.hostile_rejects += 1;
    return;
  }
  auto it = sessions_.find(msg.session);
  if (it != sessions_.end()) {
    DeliverLocked(it->second.get(), std::move(msg));
    return;
  }
  // Unknown session: buffer until OpenSession claims the id (submit
  // races across daemons are normal), bounded so a hostile or leaky
  // peer cannot grow memory without limit.
  while (orphan_count_ >= options_.max_orphan_messages && !orphans_.empty()) {
    auto oldest = orphans_.begin();
    oldest->second.pop_front();
    orphan_count_ -= 1;
    stats_.dropped_orphans += 1;
    if (oldest->second.empty()) orphans_.erase(oldest);
  }
  orphans_[msg.session].push_back(std::move(msg));
  orphan_count_ += 1;
  stats_.orphaned_messages += 1;
}

void SessionMux::DeliverLocked(SessionState* session, Message msg) {
  if (msg.tag == MessageTag::kAbort) {
    // Scoped abort: latch THIS session only; the message itself is
    // consumed (mirrors the transport-wide latch of the sessionless
    // stream, but per session).
    if (session->fail.ok()) {
      session->fail = MakeAbortStatus(DecodeAbortPayload(msg.payload));
    }
    session->cv.NotifyAll();
    return;
  }
  session->inboxes[static_cast<size_t>(msg.from)].push_back(std::move(msg));
  stats_.routed_messages += 1;
  session->cv.NotifyAll();
}

void SessionMux::FailAllSessionsLocked(const Status& status) {
  for (auto& entry : sessions_) {
    SessionState* session = entry.second.get();
    if (session->fail.ok()) session->fail = status;
    session->cv.NotifyAll();
  }
}

Status SessionMux::ChannelSend(uint32_t session_id, Message msg) {
  SendOp op;
  op.msg = std::move(msg);
  MutexLock lock(&mu_);
  if (stopping_) return UnavailableError("session mux shut down");
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return FailedPreconditionError("session " + std::to_string(session_id) +
                                   " is not open");
  }
  // A poisoned session fails fast — except for the abort notification
  // itself, which must still reach the peers so they fail this session
  // with the originator's status instead of their own timeouts.
  if (!it->second->fail.ok() && op.msg.tag != MessageTag::kAbort) {
    return it->second->fail;
  }
  pending_sends_.push_back(&op);
  // The pump always completes every queued op (its own deadline bounds
  // a stuck send; shutdown fails the queue), so this wait terminates.
  while (!op.done) send_cv_.Wait(&mu_);
  return op.result;
}

Result<Message> SessionMux::ChannelReceive(uint32_t session_id, int from,
                                           MessageTag expected_tag) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return FailedPreconditionError("session " + std::to_string(session_id) +
                                   " is not open");
  }
  SessionState* session = it->second.get();
  auto& inbox = session->inboxes[static_cast<size_t>(from)];
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.receive_timeout_ms);
  while (inbox.empty()) {
    // A latched failure (peer abort, dead link, local poison) beats
    // waiting out the timeout — same rule as the TCP backend.
    if (!session->fail.ok()) return session->fail;
    if (session->cv.WaitUntil(&mu_, deadline) == std::cv_status::timeout &&
        inbox.empty() && session->fail.ok()) {
      return DeadlineExceededError(
          "session " + std::to_string(session_id) + ": party " +
          std::to_string(local_party_) + " timed out after " +
          std::to_string(options_.receive_timeout_ms) + " ms waiting for " +
          MessageTagName(expected_tag) + " from party " +
          std::to_string(from));
    }
  }
  Message msg = std::move(inbox.front());
  inbox.pop_front();
  if (msg.tag != expected_tag) {
    return FailedPreconditionError(
        std::string("protocol desync: expected tag ") +
        MessageTagName(expected_tag) + " but received " +
        MessageTagName(msg.tag));
  }
  return msg;
}

bool SessionMux::ChannelHasPending(uint32_t session_id, int from) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return false;
  return !it->second->inboxes[static_cast<size_t>(from)].empty();
}

void SessionMux::ChannelAbort(uint32_t session_id, Status status) {
  DASH_CHECK(!status.ok());
  MutexLock lock(&mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  if (it->second->fail.ok()) it->second->fail = std::move(status);
  it->second->cv.NotifyAll();
}

void SessionMux::CloseSession(uint32_t session_id) {
  MutexLock lock(&mu_);
  sessions_.erase(session_id);
  stats_.open_sessions = static_cast<int>(sessions_.size());
}

// --- SessionChannel --------------------------------------------------

SessionChannel::~SessionChannel() { mux_->CloseSession(session_id_); }

Status SessionChannel::Send(int from, int to, MessageTag tag,
                            std::vector<uint8_t> payload) {
  if (from != local_party()) {
    return InvalidArgumentError(
        "session channel for party " + std::to_string(local_party()) +
        " cannot send as party " + std::to_string(from));
  }
  DASH_RETURN_IF_ERROR(ValidateParty(to, "receiver"));
  if (to == from) {
    return InvalidArgumentError("party " + std::to_string(from) +
                                " attempted to send a message to itself");
  }
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.session = session_id_;
  msg.tag = tag;
  msg.payload = std::move(payload);
  // The accounting copy: ChannelSend consumes the payload, so size the
  // metrics message first (header-only; Record uses WireSize()).
  Message accounting;
  accounting.from = msg.from;
  accounting.to = msg.to;
  accounting.session = msg.session;
  accounting.tag = msg.tag;
  accounting.payload.resize(msg.payload.size());
  DASH_RETURN_IF_ERROR(mux_->ChannelSend(session_id_, std::move(msg)));
  RecordSend(accounting);
  return Status::Ok();
}

Result<Message> SessionChannel::Receive(int to, int from,
                                        MessageTag expected_tag) {
  if (to != local_party()) {
    return InvalidArgumentError(
        "session channel for party " + std::to_string(local_party()) +
        " cannot receive as party " + std::to_string(to));
  }
  DASH_RETURN_IF_ERROR(ValidateParty(from, "sender"));
  if (from == local_party()) {
    return InvalidArgumentError("party cannot receive from itself");
  }
  return mux_->ChannelReceive(session_id_, from, expected_tag);
}

bool SessionChannel::HasPending(int to, int from) {
  if (to != local_party() || from < 0 || from >= num_parties() ||
      from == local_party()) {
    return false;
  }
  return mux_->ChannelHasPending(session_id_, from);
}

void SessionChannel::Abort(Status status) {
  mux_->ChannelAbort(session_id_, std::move(status));
}

}  // namespace dash
