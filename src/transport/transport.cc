#include "transport/transport.h"

#include <algorithm>
#include <string>

#include "net/trace.h"
#include "util/check.h"

namespace dash {

TrafficMetrics::TrafficMetrics(int num_parties)
    : num_parties_(num_parties),
      link_bytes_(static_cast<size_t>(num_parties) * num_parties) {}

void TrafficMetrics::Record(const Message& msg) {
  const auto bytes = static_cast<int64_t>(msg.WireSize());
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  link_bytes_[static_cast<size_t>(msg.from) * static_cast<size_t>(num_parties_)
              + static_cast<size_t>(msg.to)]
      .fetch_add(bytes, std::memory_order_relaxed);
}

void TrafficMetrics::Reset() {
  total_bytes_.store(0, std::memory_order_relaxed);
  total_messages_.store(0, std::memory_order_relaxed);
  rounds_.store(0, std::memory_order_relaxed);
  for (auto& b : link_bytes_) b.store(0, std::memory_order_relaxed);
}

int64_t TrafficMetrics::LinkBytes(int from, int to) const {
  DASH_CHECK(0 <= from && from < num_parties_);
  DASH_CHECK(0 <= to && to < num_parties_);
  return link_bytes_[static_cast<size_t>(from) *
                         static_cast<size_t>(num_parties_) +
                     static_cast<size_t>(to)]
      .load(std::memory_order_relaxed);
}

int64_t TrafficMetrics::MaxLinkBytes() const {
  int64_t best = 0;
  for (const auto& b : link_bytes_) {
    best = std::max(best, b.load(std::memory_order_relaxed));
  }
  return best;
}

int64_t TrafficMetrics::BytesSentBy(int party) const {
  DASH_CHECK(0 <= party && party < num_parties_);
  int64_t sum = 0;
  for (int to = 0; to < num_parties_; ++to) {
    sum += link_bytes_[static_cast<size_t>(party) *
                           static_cast<size_t>(num_parties_) +
                       static_cast<size_t>(to)]
               .load(std::memory_order_relaxed);
  }
  return sum;
}

Transport::Transport(int num_parties)
    : num_parties_(num_parties), metrics_(num_parties) {
  DASH_CHECK_GE(num_parties, 1);
}

Transport::~Transport() = default;

Status Transport::Broadcast(int from, MessageTag tag,
                            const std::vector<uint8_t>& payload) {
  DASH_RETURN_IF_ERROR(ValidateParty(from, "sender"));
  for (int to = 0; to < num_parties_; ++to) {
    if (to == from) continue;
    DASH_RETURN_IF_ERROR(Send(from, to, tag, payload));
  }
  return Status::Ok();
}

Status Transport::SendOnSession(uint32_t session, int from, int to,
                                MessageTag tag,
                                std::vector<uint8_t> payload) {
  if (session != 0) {
    return UnimplementedError(
        "this transport backend carries only the sessionless stream "
        "(session 0); wrap a session-capable backend in a SessionMux");
  }
  return Send(from, to, tag, std::move(payload));
}

Result<Message> Transport::TryReceiveAny(int to, int from) {
  (void)to;
  (void)from;
  return UnimplementedError(
      "this transport backend has no session demultiplexer intake "
      "(TryReceiveAny); use Receive with the expected tag");
}

Status Transport::PumpWait(int timeout_ms) {
  (void)timeout_ms;
  return Status::Ok();
}

Status Transport::LinkStatus(int peer) {
  DASH_RETURN_IF_ERROR(ValidateParty(peer, "peer"));
  return Status::Ok();
}

void Transport::RecordSend(const Message& msg) {
  metrics_.Record(msg);
  if (trace_ != nullptr) trace_->Record(metrics_.rounds(), msg);
}

Status Transport::ValidateParty(int id, const char* what) const {
  if (id < 0 || id >= num_parties_) {
    return InvalidArgumentError(std::string(what) + " party id " +
                                std::to_string(id) + " out of range [0, " +
                                std::to_string(num_parties_) + ")");
  }
  return Status::Ok();
}

}  // namespace dash
