#include "transport/transport.h"

#include <algorithm>
#include <string>

#include "net/trace.h"
#include "util/check.h"

namespace dash {

TrafficMetrics::TrafficMetrics(int num_parties)
    : num_parties_(num_parties),
      link_bytes_(static_cast<size_t>(num_parties) * num_parties, 0) {}

void TrafficMetrics::Record(const Message& msg) {
  total_bytes_ += static_cast<int64_t>(msg.WireSize());
  total_messages_ += 1;
  link_bytes_[static_cast<size_t>(msg.from) * num_parties_ + msg.to] +=
      static_cast<int64_t>(msg.WireSize());
}

void TrafficMetrics::Reset() {
  total_bytes_ = 0;
  total_messages_ = 0;
  rounds_ = 0;
  std::fill(link_bytes_.begin(), link_bytes_.end(), 0);
}

int64_t TrafficMetrics::LinkBytes(int from, int to) const {
  DASH_CHECK(0 <= from && from < num_parties_);
  DASH_CHECK(0 <= to && to < num_parties_);
  return link_bytes_[static_cast<size_t>(from) * num_parties_ + to];
}

int64_t TrafficMetrics::MaxLinkBytes() const {
  int64_t best = 0;
  for (const int64_t b : link_bytes_) best = std::max(best, b);
  return best;
}

int64_t TrafficMetrics::BytesSentBy(int party) const {
  DASH_CHECK(0 <= party && party < num_parties_);
  int64_t sum = 0;
  for (int to = 0; to < num_parties_; ++to) {
    sum += link_bytes_[static_cast<size_t>(party) * num_parties_ + to];
  }
  return sum;
}

Transport::Transport(int num_parties)
    : num_parties_(num_parties), metrics_(num_parties) {
  DASH_CHECK_GE(num_parties, 1);
}

Transport::~Transport() = default;

Status Transport::Broadcast(int from, MessageTag tag,
                            const std::vector<uint8_t>& payload) {
  DASH_RETURN_IF_ERROR(ValidateParty(from, "sender"));
  for (int to = 0; to < num_parties_; ++to) {
    if (to == from) continue;
    DASH_RETURN_IF_ERROR(Send(from, to, tag, payload));
  }
  return Status::Ok();
}

void Transport::RecordSend(const Message& msg) {
  metrics_.Record(msg);
  if (trace_ != nullptr) trace_->Record(metrics_.rounds(), msg);
}

Status Transport::ValidateParty(int id, const char* what) const {
  if (id < 0 || id >= num_parties_) {
    return InvalidArgumentError(std::string(what) + " party id " +
                                std::to_string(id) + " out of range [0, " +
                                std::to_string(num_parties_) + ")");
  }
  return Status::Ok();
}

}  // namespace dash
