#include "transport/fault_proxy.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

namespace dash {
namespace {

constexpr int kPollMs = 50;

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

int DialTarget(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<std::unique_ptr<FaultProxy>> FaultProxy::Start(
    const std::string& target_host, uint16_t target_port,
    const FaultProxyOptions& options) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return IoError(std::string("fault proxy: socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status fail =
        IoError(std::string("fault proxy: bind: ") + strerror(errno));
    CloseFd(&listen_fd);
    return fail;
  }
  if (::listen(listen_fd, 4) < 0) {
    const Status fail =
        IoError(std::string("fault proxy: listen: ") + strerror(errno));
    CloseFd(&listen_fd);
    return fail;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    const Status fail =
        IoError(std::string("fault proxy: getsockname: ") + strerror(errno));
    CloseFd(&listen_fd);
    return fail;
  }
  const uint16_t listen_port = ntohs(bound.sin_port);
  return std::unique_ptr<FaultProxy>(new FaultProxy(
      listen_fd, listen_port, target_host, target_port, options));
}

FaultProxy::FaultProxy(int listen_fd, uint16_t listen_port,
                       std::string target_host, uint16_t target_port,
                       const FaultProxyOptions& options)
    : listen_fd_(listen_fd),
      listen_port_(listen_port),
      target_host_(std::move(target_host)),
      target_port_(target_port),
      options_(options) {
  thread_ = std::thread([this] { RelayLoop(); });
}

FaultProxy::~FaultProxy() { Stop(); }

void FaultProxy::Stop() {
  // Flag only; the relay thread owns every fd and closes them on its
  // way out, so there is no close-while-polling race to lose.
  running_.store(false, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void FaultProxy::RelayLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    int one = 1;
    setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    RelayConnection(client_fd);
  }
  CloseFd(&listen_fd_);
}

void FaultProxy::RelayConnection(int client_fd) {
  int target_fd = DialTarget(target_host_, target_port_);
  if (target_fd < 0) {
    CloseFd(&client_fd);
    return;
  }
  std::vector<uint8_t> buf(16 * 1024);
  bool stalled = false;
  while (running_.load(std::memory_order_relaxed)) {
    struct pollfd pfds[2] = {{client_fd, POLLIN, 0}, {target_fd, POLLIN, 0}};
    const int ready = ::poll(pfds, 2, kPollMs);
    if (ready < 0) break;
    if (ready == 0) continue;

    // Forward direction (dialer -> target): the faulted stream.
    if (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      const ssize_t n = ::recv(client_fd, buf.data(), buf.size(), 0);
      if (n <= 0) break;  // dialer closed (or errored): tear the link down
      int64_t offset = forwarded_.load(std::memory_order_relaxed);
      if (options_.corrupt_at_byte >= offset &&
          options_.corrupt_at_byte < offset + n &&
          options_.corrupt_xor != 0) {
        buf[static_cast<size_t>(options_.corrupt_at_byte - offset)] ^=
            options_.corrupt_xor;
      }
      ssize_t relay_n = n;
      bool close_after = false;
      if (options_.close_after_bytes >= 0 &&
          offset + n >= options_.close_after_bytes) {
        relay_n = static_cast<ssize_t>(options_.close_after_bytes - offset);
        close_after = true;
      }
      size_t off = 0;
      bool send_failed = false;
      while (off < static_cast<size_t>(relay_n)) {
        const ssize_t w = ::send(target_fd, buf.data() + off,
                                 static_cast<size_t>(relay_n) - off,
                                 MSG_NOSIGNAL);
        if (w < 0) {
          if (errno == EINTR) continue;
          send_failed = true;
          break;
        }
        off += static_cast<size_t>(w);
      }
      if (send_failed) break;
      forwarded_.store(offset + relay_n, std::memory_order_relaxed);
      if (close_after) break;
      if (!stalled && options_.stall_after_bytes >= 0 &&
          offset + relay_n >= options_.stall_after_bytes &&
          options_.stall_ms > 0) {
        stalled = true;
        // Sleep in poll-sized slices so Stop() stays responsive.
        int left = options_.stall_ms;
        while (left > 0 && running_.load(std::memory_order_relaxed)) {
          const int slice = left < kPollMs ? left : kPollMs;
          std::this_thread::sleep_for(std::chrono::milliseconds(slice));
          left -= slice;
        }
      }
    }

    // Reverse direction (target -> dialer): relayed verbatim.
    if (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) {
      const ssize_t n = ::recv(target_fd, buf.data(), buf.size(), 0);
      if (n <= 0) break;
      size_t off = 0;
      bool send_failed = false;
      while (off < static_cast<size_t>(n)) {
        const ssize_t w = ::send(client_fd, buf.data() + off,
                                 static_cast<size_t>(n) - off, MSG_NOSIGNAL);
        if (w < 0) {
          if (errno == EINTR) continue;
          send_failed = true;
          break;
        }
        off += static_cast<size_t>(w);
      }
      if (send_failed) break;
    }
  }
  CloseFd(&client_fd);
  CloseFd(&target_fd);
}

}  // namespace dash
