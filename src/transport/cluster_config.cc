#include "transport/cluster_config.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace dash {
namespace {

Result<PartyEndpoint> ParseEndpoint(std::string_view text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return InvalidArgumentError("endpoint '" + std::string(text) +
                                "' is not host:port");
  }
  DASH_ASSIGN_OR_RETURN(int64_t port,
                        ParseInt64(StripWhitespace(text.substr(colon + 1))));
  if (port < 1 || port > 65535) {
    return InvalidArgumentError("port " + std::to_string(port) +
                                " out of range [1, 65535]");
  }
  PartyEndpoint ep;
  ep.host = std::string(StripWhitespace(text.substr(0, colon)));
  ep.port = static_cast<uint16_t>(port);
  return ep;
}

// Shared tail validation for both parse entry points: size cap and
// distinct endpoints (two parties on one host:port can never form a
// mesh — one of them loses the bind and the config is a typo).
Status ValidateCluster(const ClusterConfig& config) {
  if (config.num_parties() > kMaxClusterParties) {
    return InvalidArgumentError(
        "cluster names " + std::to_string(config.num_parties()) +
        " parties; the mesh transport supports at most " +
        std::to_string(kMaxClusterParties));
  }
  for (size_t i = 0; i < config.endpoints.size(); ++i) {
    for (size_t j = i + 1; j < config.endpoints.size(); ++j) {
      if (config.endpoints[i].host == config.endpoints[j].host &&
          config.endpoints[i].port == config.endpoints[j].port) {
        return InvalidArgumentError(
            "parties " + std::to_string(i) + " and " + std::to_string(j) +
            " share endpoint " + config.endpoints[i].host + ":" +
            std::to_string(config.endpoints[i].port));
      }
    }
  }
  return Status::Ok();
}

}  // namespace

std::string ClusterConfig::ToString() const {
  std::ostringstream out;
  out << "# dash cluster: one \"host:port\" per party, line order = party "
         "id\n";
  for (const auto& ep : endpoints) {
    out << ep.host << ":" << ep.port << "\n";
  }
  return out.str();
}

Result<ClusterConfig> ParseClusterConfig(const std::string& text) {
  ClusterConfig config;
  size_t line_number = 0;
  for (const std::string& raw : StrSplit(text, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw);
    if (const size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = StripWhitespace(line.substr(0, hash));
    }
    if (line.empty()) continue;
    // Optional explicit "<party> host:port" prefix.
    if (const size_t space = line.find_first_of(" \t");
        space != std::string_view::npos) {
      DASH_ASSIGN_OR_RETURN(int64_t party,
                            ParseInt64(line.substr(0, space)));
      if (party != config.num_parties()) {
        return InvalidArgumentError(
            "line " + std::to_string(line_number) + " labels party " +
            std::to_string(party) + " but is in position " +
            std::to_string(config.num_parties()));
      }
      line = StripWhitespace(line.substr(space + 1));
    }
    auto endpoint = ParseEndpoint(line);
    if (!endpoint.ok()) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": " + endpoint.status().message());
    }
    config.endpoints.push_back(std::move(endpoint).value());
  }
  if (config.endpoints.empty()) {
    return InvalidArgumentError("cluster config names no parties");
  }
  DASH_RETURN_IF_ERROR(ValidateCluster(config));
  return config;
}

Result<ClusterConfig> LoadClusterConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open cluster config '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return ParseClusterConfig(text.str());
}

Result<ClusterConfig> ParseClusterList(const std::string& list) {
  ClusterConfig config;
  for (const std::string& item : StrSplit(list, ',')) {
    DASH_ASSIGN_OR_RETURN(PartyEndpoint ep,
                          ParseEndpoint(StripWhitespace(item)));
    config.endpoints.push_back(std::move(ep));
  }
  if (config.endpoints.empty()) {
    return InvalidArgumentError("cluster list names no parties");
  }
  DASH_RETURN_IF_ERROR(ValidateCluster(config));
  return config;
}

ClusterConfig LoopbackCluster(int num_parties, uint16_t base_port) {
  ClusterConfig config;
  for (int p = 0; p < num_parties; ++p) {
    config.endpoints.push_back(
        {"127.0.0.1", static_cast<uint16_t>(base_port + p)});
  }
  return config;
}

}  // namespace dash
