// A loopback TCP relay that injects faults at the BYTE level, under the
// real frame codec — the physical-layer complement to the logical
// FaultInjectingTransport decorator.
//
// Topology: the proxy listens on an ephemeral port and forwards every
// accepted connection to a fixed target endpoint. Interposing it on one
// directed edge of a dash mesh takes nothing but a doctored cluster
// file: give ONE party a config whose entry for its peer points at the
// proxy, and that party's dialed connection (hello handshake and all
// subsequent frames) flows through it. Faults apply to the forward
// stream (dialer -> target) at absolute byte offsets, so a test can
// aim precisely: the hello exchange occupies the first 32 bytes of the
// forward stream (24-byte header + 8-byte payload), everything after
// that is protocol frames.
//
//   corrupt_at_byte    XOR corrupt_xor into the forward byte at this
//                      offset — the target's CRC check must fire
//                      (DataLoss), proving the real wire-integrity
//                      path, not the simulated one.
//   close_after_bytes  after relaying this many forward bytes, close
//                      both sockets — a mid-frame kill if aimed inside
//                      a frame (Unavailable at both endpoints).
//   stall_after_bytes  pause the relay stall_ms once this many forward
//                      bytes have passed — a link hiccup; outlasting
//                      receive_timeout_ms makes it DeadlineExceeded.
//
// The relay runs on one background thread and handles connections
// serially (a dash mesh uses exactly one connection per directed edge,
// which is the use case). Stop() (or the destructor) shuts it down;
// only the relay thread ever touches the sockets, so teardown is
// TSan-clean by construction.

#ifndef DASH_TRANSPORT_FAULT_PROXY_H_
#define DASH_TRANSPORT_FAULT_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "util/status.h"

namespace dash {

struct FaultProxyOptions {
  int64_t corrupt_at_byte = -1;   // -1 = never
  uint8_t corrupt_xor = 0x01;     // must be nonzero to corrupt
  int64_t close_after_bytes = -1; // -1 = never
  int64_t stall_after_bytes = -1; // -1 = never
  int stall_ms = 0;
};

class FaultProxy {
 public:
  // Starts relaying to target_host:target_port; listens on an ephemeral
  // loopback port reported by listen_port().
  static Result<std::unique_ptr<FaultProxy>> Start(
      const std::string& target_host, uint16_t target_port,
      const FaultProxyOptions& options);

  ~FaultProxy();

  uint16_t listen_port() const { return listen_port_; }

  // Total forward (dialer -> target) bytes relayed so far.
  int64_t forwarded_bytes() const {
    return forwarded_.load(std::memory_order_relaxed);
  }

  void Stop();

 private:
  FaultProxy(int listen_fd, uint16_t listen_port, std::string target_host,
             uint16_t target_port, const FaultProxyOptions& options);

  void RelayLoop();
  // Relays one accepted connection until either side closes or a fault
  // says stop; returns when the connection is finished.
  void RelayConnection(int client_fd);

  int listen_fd_;
  uint16_t listen_port_;
  std::string target_host_;
  uint16_t target_port_;
  FaultProxyOptions options_;
  std::atomic<bool> running_{true};
  std::atomic<int64_t> forwarded_{0};
  std::thread thread_;
};

}  // namespace dash

#endif  // DASH_TRANSPORT_FAULT_PROXY_H_
