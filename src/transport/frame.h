// Wire framing for the TCP transport.
//
// Every message travels as one frame: a fixed 24-byte header followed by
// the payload. All header fields are little-endian:
//
//   offset  size  field
//        0     4  magic        0x48534144 ("DASH" as bytes on the wire)
//        4     2  version      kFrameVersion (1)
//        6     2  session      logical session id (0 = the default,
//                              sessionless protocol stream)
//        8     4  tag          MessageTag as u32; 0 = transport hello
//       12     2  from         sender party id
//       14     2  to           receiver party id
//       16     4  payload_len  bytes following the header
//       20     4  crc32        CRC-32 (IEEE 802.3) of the payload
//
// The magic/version pair rejects cross-version or stray-port connections
// at the first read instead of desynchronizing mid-protocol; the CRC
// turns silent corruption into a loud IoError. Tag value 0 is reserved
// for the connection-establishment hello (it is not a MessageTag), so a
// protocol message can never be mistaken for a handshake.
//
// The session field occupies what used to be the always-zero reserved
// halfword, so the layout (offsets, header size, version) is unchanged:
// a frame from a pre-session build simply carries session 0, and every
// sessionless stream this build emits is byte-identical to what the
// previous version put on the wire. Demultiplexing by session id lives
// entirely above the framing layer (transport/session_mux.h), so a
// future event-loop transport can reuse the format as is.

#ifndef DASH_TRANSPORT_FRAME_H_
#define DASH_TRANSPORT_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/message.h"
#include "util/status.h"

namespace dash {

inline constexpr uint32_t kFrameMagic = 0x48534144u;  // "DASH"
inline constexpr uint16_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;
// Raw tag value reserved for the connection hello; never a MessageTag.
inline constexpr uint32_t kFrameHelloTag = 0;
// Corruption guard: no protocol message comes close to this.
inline constexpr uint32_t kFrameMaxPayloadBytes = 1u << 30;
// The session id travels as a u16 (the former reserved halfword);
// session 0 is the sessionless default stream.
inline constexpr uint32_t kFrameMaxSessionId = 0xFFFFu;

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
uint32_t Crc32(const uint8_t* data, size_t size);

struct FrameHeader {
  uint32_t session = 0;  // logical session id; 0 = sessionless stream
  uint32_t tag = 0;      // raw; kFrameHelloTag or a MessageTag value
  int from = -1;
  int to = -1;
  uint32_t payload_len = 0;
  uint32_t crc32 = 0;
};

// Serializes a header; `out` receives exactly kFrameHeaderBytes.
void EncodeFrameHeader(const FrameHeader& header, std::vector<uint8_t>* out);

// Frames a protocol message (header + payload) ready for the wire.
std::vector<uint8_t> EncodeFrame(const Message& msg);

// Parses and validates the fixed header (magic, version, payload bound).
// `data` must hold at least kFrameHeaderBytes.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size);

// Validates a received payload against the header's CRC.
Status CheckFramePayload(const FrameHeader& header,
                         const std::vector<uint8_t>& payload);

}  // namespace dash

#endif  // DASH_TRANSPORT_FRAME_H_
