// Session multiplexer: many concurrent logical scan sessions over ONE
// party-bound transport (one TCP connection per peer).
//
// A SessionMux decorates a session-capable Transport (today
// TcpTransport; anything implementing SendOnSession / TryReceiveAny /
// PumpWait / LinkStatus) and hands out SessionChannel objects, each a
// full Transport bound to one session id. Protocol code written against
// Transport — RunPartySecureScan in particular — runs unchanged on a
// channel, and any number of channels run CONCURRENTLY from different
// threads over the same mesh: the resident daemon's substrate
// (service/job_scheduler.h).
//
// Threading model. The inner transport keeps its single-threaded
// contract: exactly one pump thread owned by the mux ever touches it.
// Job threads talk to the pump through queues:
//   * Send — the channel enqueues the message and blocks until the pump
//     has written it to the inner transport (so backpressure is real);
//   * Receive — the channel blocks on its per-(session, peer) inbox,
//     which the pump fills by draining the inner transport's intake
//     (TryReceiveAny) and routing frames by their session id.
// This is the "blocking reader feeding per-session queues" shape; the
// wire format (transport/frame.h: session id in the header) and this
// API are what a later event-loop transport must preserve — swapping
// the pump for an epoll loop is invisible to channel users.
//
// Failure scoping:
//   * a kAbort frame inside session S latches session S alone — every
//     blocked Receive on S returns the originator's status, and no
//     other session notices (the transport-wide latch of the
//     sessionless stream does not apply; tcp_transport.cc only latches
//     session-0 aborts);
//   * a DEAD LINK affects every open session (a scan needs all
//     parties), so the pump poisons all open channels with the link's
//     sticky status — but queued jobs that have not opened a session
//     yet are untouched, which is the daemon's "fail only the affected
//     sessions" guarantee;
//   * SessionChannel::Abort poisons one session locally (job deadline,
//     client cancel); the scan running on it fails on its next
//     operation and its abort broadcast still goes through, so peers
//     fail the same session with the originator's code.
//
// Frames for a session that is not open here yet (a peer's scheduler
// started the job first) wait in a bounded orphan buffer and are
// replayed when OpenSession claims the id; beyond the cap the oldest
// orphan is dropped (counted in stats). Sessionless frames reaching a
// muxed endpoint are hostile by definition and are dropped + counted.

#ifndef DASH_TRANSPORT_SESSION_MUX_H_
#define DASH_TRANSPORT_SESSION_MUX_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "transport/transport.h"
#include "util/mutex.h"

namespace dash {

class SessionChannel;

struct SessionMuxOptions {
  // Deadline for one SessionChannel::Receive (and for one queued Send
  // to reach the wire).
  int receive_timeout_ms = 30000;

  // How long the pump blocks in the inner transport's PumpWait per
  // iteration; bounds the latency of a queued send.
  int pump_interval_ms = 1;

  // Total frames buffered for sessions nobody opened yet; beyond this
  // the oldest orphan is dropped.
  size_t max_orphan_messages = 1024;
};

// Relaxed snapshot for monitors; see stats().
struct SessionMuxStats {
  int64_t routed_messages = 0;    // delivered into an open session
  int64_t orphaned_messages = 0;  // buffered for a not-yet-open session
  int64_t dropped_orphans = 0;    // discarded beyond the orphan cap
  int64_t hostile_rejects = 0;    // sessionless frames on a muxed link
  int64_t sessions_opened = 0;
  int open_sessions = 0;
};

class SessionMux {
 public:
  // `inner` is borrowed, must outlive the mux, must be party-bound
  // (local_party() >= 0) and session-capable. The constructor starts
  // the pump thread; from here on the mux owns all access to `inner`.
  explicit SessionMux(Transport* inner, SessionMuxOptions options = {});

  // Joins the pump thread. Every still-open channel is poisoned with
  // Unavailable("session mux shut down"); channels may outlive the mux
  // only to be destroyed.
  ~SessionMux();

  SessionMux(const SessionMux&) = delete;
  SessionMux& operator=(const SessionMux&) = delete;

  // Claims `session_id` (1..kFrameMaxSessionId; 0 is the sessionless
  // stream) and returns its channel. Orphaned frames for the id are
  // replayed into the new session in arrival order. AlreadyExists if
  // the id is open.
  Result<std::unique_ptr<SessionChannel>> OpenSession(uint32_t session_id);

  // First failed link's sticky status, or Ok while the mesh is whole.
  Status LinkHealth() const;

  SessionMuxStats stats() const;

  int num_parties() const;
  int local_party() const;

 private:
  friend class SessionChannel;

  // Every field of SessionState (and of SendOp once queued) is guarded
  // by the owning mux's mu_; the annotation cannot be written on the
  // nested struct (mu_ is not in its scope), so the discipline is
  // carried by DASH_REQUIRES(mu_) on every method that touches one.
  struct SessionState {
    uint32_t id = 0;
    // inboxes[peer] = frames from that peer awaiting Receive.
    std::vector<std::deque<Message>> inboxes;
    // First failure this session saw: a peer's kAbort, a dead link, a
    // local Abort() poison. Sticky.
    Status fail = Status::Ok();
    CondVar cv;
  };

  struct SendOp {
    Message msg;
    Status result = Status::Ok();
    bool done = false;
  };

  void PumpLoop();
  // Routes one intake frame to its session / orphans / drops.
  void RouteLocked(Message msg) DASH_REQUIRES(mu_);
  // Applies one frame to an open session (latches aborts).
  void DeliverLocked(SessionState* session, Message msg) DASH_REQUIRES(mu_);
  // Poisons every open session with the link failure.
  void FailAllSessionsLocked(const Status& status) DASH_REQUIRES(mu_);

  // Channel-side entry points (any job thread).
  Status ChannelSend(uint32_t session_id, Message msg);
  Result<Message> ChannelReceive(uint32_t session_id, int from,
                                 MessageTag expected_tag);
  bool ChannelHasPending(uint32_t session_id, int from);
  void ChannelAbort(uint32_t session_id, Status status);
  void CloseSession(uint32_t session_id);

  Transport* inner_;
  SessionMuxOptions options_;
  int num_parties_;
  int local_party_;

  mutable Mutex mu_{LockRank::kSessionMux};
  bool stopping_ DASH_GUARDED_BY(mu_) = false;
  std::map<uint32_t, std::unique_ptr<SessionState>> sessions_
      DASH_GUARDED_BY(mu_);
  std::map<uint32_t, std::deque<Message>> orphans_ DASH_GUARDED_BY(mu_);
  size_t orphan_count_ DASH_GUARDED_BY(mu_) = 0;
  std::vector<SendOp*> pending_sends_ DASH_GUARDED_BY(mu_);
  CondVar send_cv_;
  // Per peer; Ok while healthy.
  std::vector<Status> link_fail_ DASH_GUARDED_BY(mu_);
  SessionMuxStats stats_ DASH_GUARDED_BY(mu_);

  std::thread pump_;
};

// One logical session as a Transport. Single-threaded like every
// Transport (one job thread drives it); distinct channels of the same
// mux are independent and may run concurrently. Carries its OWN
// TrafficMetrics, so concurrent jobs get attributable bytes/messages/
// rounds while the inner transport keeps the mesh-wide totals.
class SessionChannel : public Transport {
 public:
  ~SessionChannel() override;

  int local_party() const override { return mux_->local_party(); }
  uint32_t session_id() const override { return session_id_; }

  Status Send(int from, int to, MessageTag tag,
              std::vector<uint8_t> payload) override;
  Result<Message> Receive(int to, int from, MessageTag expected_tag) override;
  bool HasPending(int to, int from) override;

  // Poisons the session with `status` (deadline expiry, client cancel):
  // every later Receive fails with it, while kAbort sends still pass so
  // the scan's abort broadcast reaches the peers.
  void Abort(Status status);

 private:
  friend class SessionMux;
  SessionChannel(SessionMux* mux, uint32_t session_id)
      : Transport(mux->num_parties()), mux_(mux), session_id_(session_id) {}

  SessionMux* mux_;
  uint32_t session_id_;
};

}  // namespace dash

#endif  // DASH_TRANSPORT_SESSION_MUX_H_
