// One party's end of the secure association scan, for party-bound
// transports (one OS process per party, e.g. TcpTransport).
//
// SecureAssociationScan::Run drives ALL parties in one address space,
// which is ideal for simulation but impossible over a real network.
// RunPartySecureScan is the per-party projection of exactly the same
// protocol: it performs the sends party `transport->local_party()` would
// perform and consumes the messages addressed to it, in the same
// per-link order, with the same round structure, so
//
//   * the revealed ScanResult matches the in-process scan bit for bit
//     (ring/field sums are order-independent; the public mode and all
//     plaintext reductions fix party-index summation order; doubles
//     travel as exact IEEE-754 bit patterns), and
//   * the union of the parties' per-link traffic equals the in-process
//     trace as a multiset of (round, from, to, tag, bytes).
//
// Protocol randomness is replicated from the shared options.seed: party
// i draws its share/mask/DH randomness from the i-th output of the
// SplitMix64 seed chain, exactly as the in-process driver seeds its
// per-party RNGs — so two deployments with equal seeds exchange
// identical ciphertexts.
//
// Not supported per-party (returns Unimplemented):
// ProjectionSecurity::kBeaverDotProducts and Shamir dropout simulation,
// both of which only exist for in-process experiments.

#ifndef DASH_TRANSPORT_PARTY_RUNNER_H_
#define DASH_TRANSPORT_PARTY_RUNNER_H_

#include <cstdint>
#include <string>

#include "core/secure_scan.h"
#include "data/panel_stream.h"
#include "data/party_split.h"
#include "linalg/matrix.h"
#include "mpc/secrecy.h"
#include "transport/transport.h"

namespace dash {

// One party's reusable Phase-1 state: everything the scan derives from
// the PERMANENT covariates alone, independent of which variants are
// tested. Repeat scans on the same cohort (same rows, same C, same
// preprocessing) skip the sample-count exchange, the QR combination,
// and the local Q_p rebuild — the per-variant Phase-2 aggregation is
// all that remains on the wire.
//
// Secrecy: Q_p's rows are derived from the party's private data, so the
// cached copy stays Secret<Matrix>; RunPartySecureScan reads it back
// through an audited DASH_DECLASSIFY (round key `phase1-cache` in
// tools/secrecy_allowlist.txt) that never moves the bytes off-process.
// R⁻¹ and the pooled sample count are public by protocol (phase0 /
// phase1 reveals), so they are stored plain.
//
// Invalidation is the caller's job: any change to the cohort's rows or
// covariates MUST either be reflected in the data (the fingerprint then
// misses by itself) or be signaled by dropping the state (valid=false /
// destroying it). The fingerprint is local-only — it is never sent —
// and the kPhase1Probe agreement round only reveals one have/have-not
// bit per party.
struct Phase1State {
  bool valid = false;
  // FNV-1a over this party's (preprocessed) covariate slab, sample
  // count, and the Phase-1 options; see Phase1Fingerprint in
  // party_runner.cc.
  uint64_t local_fingerprint = 0;
  int64_t total_samples = 0;   // pooled N (public, phase0 reveal)
  Matrix r_inverse;            // pooled R⁻¹ (public, phase1 reveal)
  Secret<Matrix> q_p;          // this party's Q_p rows (private)
};

// Runs the scan as party transport->local_party() (which must be >= 0,
// i.e. a party-bound transport) holding rows `party`. Blocks until the
// protocol completes; every party returns the identical revealed result.
// Metrics cover this party's sends only.
Result<SecureScanOutput> RunPartySecureScan(Transport* transport,
                                            const PartyData& party,
                                            const SecureScanOptions& options);

// Cache-aware variant. `phase1` (may be null = uncached) is read AND
// written: when every party arrives with matching valid state — agreed
// in one extra kPhase1Probe round of a single public have-bit each —
// Phase 1 is skipped entirely and metrics.phase1_cache_hit is set;
// otherwise the full protocol runs and `phase1` is refilled. All-or-
// nothing: one stale party forces the full Phase 1 at every party, so
// the transcript stays identical at all of them.
Result<SecureScanOutput> RunPartySecureScan(Transport* transport,
                                            const PartyData& party,
                                            const SecureScanOptions& options,
                                            Phase1State* phase1);

// Out-of-core scan configuration for RunPartySecureScanStreamed: this
// party's genotype block streams from `source` one panel at a time
// (core/streaming_stats.h) instead of living in PartyData.x, and the
// partial accumulator is durably checkpointed so a killed party
// resumes from the last snapshot. The revealed result is bit-identical
// to the in-memory scan on the same data, resumed or not.
struct StreamingPartyScan {
  PanelSource* source = nullptr;  // required; must outlive the call

  // Empty disables checkpoint/resume.
  std::string checkpoint_path;
  int64_t checkpoint_every_panels = 8;

  // Test hooks (crash injection and pacing for the kill smokes); see
  // StreamingStatsOptions.
  int64_t fail_after_panels = -1;
  int64_t panel_delay_ms = 0;

  bool prefetch = true;
};

// Streamed variant of RunPartySecureScan: y and the permanent
// covariates C stay RAM-resident (they are all Phases 0–1 need), X
// streams from stream.source during Phase 2. Incompatible with
// center_per_party (X is immutable on disk — pre-center before
// packing) and with pipeline_block_variants (both restructure Phase
// 2). On success the checkpoint file, if any, is removed; on failure
// it is left behind so the next run resumes.
Result<SecureScanOutput> RunPartySecureScanStreamed(
    Transport* transport, const Vector& y, const Matrix& c,
    const StreamingPartyScan& stream, const SecureScanOptions& options,
    Phase1State* phase1 = nullptr);

}  // namespace dash

#endif  // DASH_TRANSPORT_PARTY_RUNNER_H_
