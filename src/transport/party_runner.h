// One party's end of the secure association scan, for party-bound
// transports (one OS process per party, e.g. TcpTransport).
//
// SecureAssociationScan::Run drives ALL parties in one address space,
// which is ideal for simulation but impossible over a real network.
// RunPartySecureScan is the per-party projection of exactly the same
// protocol: it performs the sends party `transport->local_party()` would
// perform and consumes the messages addressed to it, in the same
// per-link order, with the same round structure, so
//
//   * the revealed ScanResult matches the in-process scan bit for bit
//     (ring/field sums are order-independent; the public mode and all
//     plaintext reductions fix party-index summation order; doubles
//     travel as exact IEEE-754 bit patterns), and
//   * the union of the parties' per-link traffic equals the in-process
//     trace as a multiset of (round, from, to, tag, bytes).
//
// Protocol randomness is replicated from the shared options.seed: party
// i draws its share/mask/DH randomness from the i-th output of the
// SplitMix64 seed chain, exactly as the in-process driver seeds its
// per-party RNGs — so two deployments with equal seeds exchange
// identical ciphertexts.
//
// Not supported per-party (returns Unimplemented):
// ProjectionSecurity::kBeaverDotProducts and Shamir dropout simulation,
// both of which only exist for in-process experiments.

#ifndef DASH_TRANSPORT_PARTY_RUNNER_H_
#define DASH_TRANSPORT_PARTY_RUNNER_H_

#include "core/secure_scan.h"
#include "data/party_split.h"
#include "transport/transport.h"

namespace dash {

// Runs the scan as party transport->local_party() (which must be >= 0,
// i.e. a party-bound transport) holding rows `party`. Blocks until the
// protocol completes; every party returns the identical revealed result.
// Metrics cover this party's sends only.
Result<SecureScanOutput> RunPartySecureScan(Transport* transport,
                                            const PartyData& party,
                                            const SecureScanOptions& options);

}  // namespace dash

#endif  // DASH_TRANSPORT_PARTY_RUNNER_H_
