#include "transport/frame.h"

#include <array>
#include <string>

#include "util/check.h"

namespace dash {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodeFrameHeader(const FrameHeader& header, std::vector<uint8_t>* out) {
  DASH_CHECK(out != nullptr);
  out->reserve(out->size() + kFrameHeaderBytes);
  PutU32(out, kFrameMagic);
  PutU16(out, kFrameVersion);
  PutU16(out, static_cast<uint16_t>(header.session));
  PutU32(out, header.tag);
  PutU16(out, static_cast<uint16_t>(header.from));
  PutU16(out, static_cast<uint16_t>(header.to));
  PutU32(out, header.payload_len);
  PutU32(out, header.crc32);
}

std::vector<uint8_t> EncodeFrame(const Message& msg) {
  FrameHeader header;
  header.session = msg.session;
  header.tag = static_cast<uint32_t>(msg.tag);
  header.from = msg.from;
  header.to = msg.to;
  header.payload_len = static_cast<uint32_t>(msg.payload.size());
  header.crc32 = Crc32(msg.payload.data(), msg.payload.size());
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + msg.payload.size());
  EncodeFrameHeader(header, &out);
  out.insert(out.end(), msg.payload.begin(), msg.payload.end());
  return out;
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size) {
  DASH_CHECK(data != nullptr);
  if (size < kFrameHeaderBytes) {
    return InvalidArgumentError("frame header needs " +
                                std::to_string(kFrameHeaderBytes) +
                                " bytes, got " + std::to_string(size));
  }
  const uint32_t magic = GetU32(data);
  if (magic != kFrameMagic) {
    return DataLossError("bad frame magic 0x" + [magic] {
      static const char* hex = "0123456789abcdef";
      std::string s(8, '0');
      for (int i = 0; i < 8; ++i) s[7 - i] = hex[(magic >> (4 * i)) & 0xF];
      return s;
    }() + " (not a DASH peer, or a desynchronized stream)");
  }
  const uint16_t version = GetU16(data + 4);
  if (version != kFrameVersion) {
    return DataLossError("frame version " + std::to_string(version) +
                   " unsupported (this build speaks " +
                   std::to_string(kFrameVersion) + ")");
  }
  FrameHeader header;
  header.session = GetU16(data + 6);
  header.tag = GetU32(data + 8);
  header.from = GetU16(data + 12);
  header.to = GetU16(data + 14);
  header.payload_len = GetU32(data + 16);
  header.crc32 = GetU32(data + 20);
  if (header.payload_len > kFrameMaxPayloadBytes) {
    return DataLossError("frame payload length " +
                   std::to_string(header.payload_len) +
                   " exceeds the 1 GiB bound (corrupt stream?)");
  }
  return header;
}

Status CheckFramePayload(const FrameHeader& header,
                         const std::vector<uint8_t>& payload) {
  if (payload.size() != header.payload_len) {
    return DataLossError("frame payload truncated: expected " +
                         std::to_string(header.payload_len) +
                         " bytes, have " + std::to_string(payload.size()));
  }
  const uint32_t crc = Crc32(payload.data(), payload.size());
  if (crc != header.crc32) {
    return DataLossError("frame CRC mismatch on a " +
                   std::to_string(payload.size()) +
                   "-byte payload (corruption on the wire)");
  }
  return Status::Ok();
}

}  // namespace dash
