#include "service/phase1_cache.h"

#include "util/logging.h"

namespace dash {

Phase1Cache::Phase1Cache(size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

Phase1State Phase1Cache::Take(const std::string& key) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.state.valid) {
    ++stats_.take_misses;
    if (it != entries_.end()) {
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
      stats_.entries = static_cast<int>(entries_.size());
    }
    return Phase1State{};
  }
  ++stats_.take_hits;
  Phase1State out = std::move(it->second.state);
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  stats_.entries = static_cast<int>(entries_.size());
  return out;
}

void Phase1Cache::Put(const std::string& key, Phase1State state) {
  if (!state.valid) return;
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.state = std::move(state);
    TouchLocked(key);
    return;
  }
  while (entries_.size() >= max_entries_) {
    const std::string coldest = lru_.front();
    lru_.pop_front();
    entries_.erase(coldest);
    ++stats_.evictions;
  }
  lru_.push_back(key);
  Entry entry;
  entry.state = std::move(state);
  entry.lru_pos = std::prev(lru_.end());
  entries_.emplace(key, std::move(entry));
  stats_.entries = static_cast<int>(entries_.size());
}

void Phase1Cache::Invalidate(const std::string& key) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  ++stats_.invalidations;
  stats_.entries = static_cast<int>(entries_.size());
}

void Phase1Cache::Clear() {
  MutexLock lock(&mu_);
  stats_.invalidations += static_cast<int64_t>(entries_.size());
  entries_.clear();
  lru_.clear();
  stats_.entries = 0;
}

Phase1CacheStats Phase1Cache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void Phase1Cache::TouchLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_pos);
  lru_.push_back(key);
  it->second.lru_pos = std::prev(lru_.end());
}

}  // namespace dash
