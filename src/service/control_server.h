// dash_partyd's client API: a line-oriented text protocol on a local
// TCP socket (loopback by default). One request line in, one response
// line out; responses start with `OK ` or `ERR `.
//
//   PING
//   SUBMIT <job_id> <cohort> <variants> <samples> <covariates>
//          <data_seed> <mode> <deadline_ms> [protocol_seed]
//   STATUS <job_id>        -> OK state=... checksum=... cache_hit=...
//   RESULT <job_id>        -> OK <checksum-hex>   (only when done)
//   CANCEL <job_id>
//   INVALIDATE <cohort>    -> drop the cohort's Phase-1 cache entry
//   STATS                  -> scheduler + cache counters, k=v pairs
//   SHUTDOWN               -> acknowledge, then stop the daemon
//
// The server is a thin adapter: every verb maps 1:1 onto JobScheduler /
// Phase1Cache calls, so the protocol carries no state of its own and a
// later RPC transport only has to re-wrap the same calls. Threading is
// accept-loop + thread-per-connection; fine for a control plane that
// sees tens of requests per second, not a data path.

#ifndef DASH_SERVICE_CONTROL_SERVER_H_
#define DASH_SERVICE_CONTROL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "service/job_scheduler.h"
#include "service/phase1_cache.h"
#include "util/mutex.h"
#include "util/status.h"

namespace dash {

struct ControlServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; port() reports the bound one
};

class ControlServer {
 public:
  // `scheduler` must outlive the server; `cache` may be null (the
  // INVALIDATE verb and cache counters then report unavailable);
  // `on_shutdown` runs once when a client issues SHUTDOWN (after the
  // OK is written) and is the daemon's cue to exit its main loop.
  ControlServer(JobScheduler* scheduler, Phase1Cache* cache,
                std::function<void()> on_shutdown,
                ControlServerOptions options = {});

  // Stop() + join.
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  // Binds + listens + starts the accept loop.
  Status Start();

  // The bound port (after Start).
  uint16_t port() const { return port_; }

  // Closes the listener and joins every connection thread. Idempotent.
  void Stop();

  // One request line -> one response line (no trailing newline).
  // Public for direct use in tests, bypassing the socket.
  std::string HandleLine(const std::string& line);

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  JobScheduler* const scheduler_;
  Phase1Cache* const cache_;
  const std::function<void()> on_shutdown_;
  const ControlServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  Mutex conn_mu_{LockRank::kControlServerConns};
  std::vector<std::thread> connections_ DASH_GUARDED_BY(conn_mu_);
};

}  // namespace dash

#endif  // DASH_SERVICE_CONTROL_SERVER_H_
