#include "service/control_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/logging.h"

namespace dash {
namespace {

// k=v rendering keeps the responses greppable and trivially parsable.
std::string Render(const JobRecord& record) {
  std::ostringstream out;
  out << "state=" << JobStateName(record.state)
      << " checksum=" << record.checksum
      << " cache_hit=" << (record.metrics.phase1_cache_hit ? 1 : 0)
      << " rounds=" << record.metrics.rounds
      << " bytes=" << record.metrics.total_bytes
      << " messages=" << record.metrics.total_messages
      << " queue_ms=" << record.queue_seconds * 1e3
      << " run_ms=" << record.run_seconds * 1e3;
  if (record.metrics.streamed) {
    out << " streamed=1 resumed_from=" << record.metrics.resumed_from_panel
        << " panels_streamed=" << record.metrics.panels_streamed
        << " checkpoints=" << record.metrics.checkpoints_written;
  }
  if (!record.error.ok()) {
    // Last field, free-form: everything after "error=" is the message.
    out << " error=" << StatusCodeToString(record.error.code()) << ": "
        << record.error.message();
  }
  return out.str();
}

std::string ErrLine(const Status& status) {
  return std::string("ERR ") + StatusCodeToString(status.code()) + ": " +
         status.message();
}

bool ParseMode(const std::string& token, AggregationMode* mode) {
  for (const AggregationMode m :
       {AggregationMode::kPublicShare, AggregationMode::kAdditive,
        AggregationMode::kMasked, AggregationMode::kShamir}) {
    if (token == AggregationModeName(m)) {
      *mode = m;
      return true;
    }
  }
  return false;
}

Status SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(std::string("control send: ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

ControlServer::ControlServer(JobScheduler* scheduler, Phase1Cache* cache,
                             std::function<void()> on_shutdown,
                             ControlServerOptions options)
    : scheduler_(scheduler),
      cache_(cache),
      on_shutdown_(std::move(on_shutdown)),
      options_(std::move(options)) {}

ControlServer::~ControlServer() { Stop(); }

Status ControlServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return IoError(std::string("control socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("control host must be a literal IPv4 "
                                "address, got " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return IoError("control bind " + options_.host + ":" +
                   std::to_string(options_.port) + ": " + strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    return IoError(std::string("control listen: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) < 0) {
    return IoError(std::string("control getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ControlServer::Stop() {
  const bool was_stopping = stopping_.exchange(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (!was_stopping && listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> conns;
  {
    MutexLock lock(&conn_mu_);
    conns.swap(connections_);
  }
  for (auto& t : conns) {
    if (t.joinable()) t.join();
  }
}

void ControlServer::AcceptLoop() {
  while (!stopping_.load()) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    MutexLock lock(&conn_mu_);
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void ControlServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[512];
  while (!stopping_.load()) {
    // Serve complete lines already buffered before reading more.
    size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = HandleLine(line) + "\n";
      if (!SendAll(fd, response).ok()) {
        ::close(fd);
        return;
      }
      // SHUTDOWN acknowledges first, then stops the daemon.
      if (line.rfind("SHUTDOWN", 0) == 0) {
        ::close(fd);
        if (on_shutdown_) on_shutdown_();
        return;
      }
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // peer closed or errored
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
}

std::string ControlServer::HandleLine(const std::string& line) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;

  if (verb == "PING") return "OK pong";

  if (verb == "SUBMIT") {
    JobSpec spec;
    std::string mode;
    in >> spec.job_id >> spec.cohort_key >> spec.variants >>
        spec.samples_per_party >> spec.covariates >> spec.data_seed >>
        mode >> spec.deadline_ms;
    if (in.fail()) {
      return "ERR InvalidArgument: want SUBMIT <job_id> <cohort> "
             "<variants> <samples> <covariates> <data_seed> <mode> "
             "<deadline_ms> [protocol_seed] [stream]";
    }
    if (!ParseMode(mode, &spec.mode)) {
      return "ERR InvalidArgument: unknown mode '" + mode +
             "' (public|additive|masked|shamir)";
    }
    in >> spec.protocol_seed;  // optional; keeps the default on failure
    if (in.fail()) in.clear();  // no seed; "stream" may still follow
    std::string extra;
    if (in >> extra) {
      if (extra != "stream") {
        return "ERR InvalidArgument: unknown trailing token '" + extra +
               "' (only 'stream')";
      }
      spec.stream = true;
    }
    const Status submitted = scheduler_->Submit(spec);
    if (!submitted.ok()) return ErrLine(submitted);
    return "OK submitted " + std::to_string(spec.job_id);
  }

  if (verb == "STATUS" || verb == "RESULT") {
    uint32_t job_id = 0;
    in >> job_id;
    if (in.fail()) return "ERR InvalidArgument: want " + verb + " <job_id>";
    const Result<JobRecord> record = scheduler_->Query(job_id);
    if (!record.ok()) return ErrLine(record.status());
    if (verb == "STATUS") return "OK " + Render(record.value());
    if (record.value().state != JobState::kDone) {
      return "ERR FailedPrecondition: job " + std::to_string(job_id) +
             " is " + JobStateName(record.value().state);
    }
    return "OK " + std::to_string(record.value().checksum);
  }

  if (verb == "CANCEL") {
    uint32_t job_id = 0;
    in >> job_id;
    if (in.fail()) return "ERR InvalidArgument: want CANCEL <job_id>";
    const Status cancelled = scheduler_->Cancel(job_id);
    if (!cancelled.ok()) return ErrLine(cancelled);
    return "OK cancelled " + std::to_string(job_id);
  }

  if (verb == "INVALIDATE") {
    std::string cohort;
    in >> cohort;
    if (in.fail() || cohort.empty()) {
      return "ERR InvalidArgument: want INVALIDATE <cohort>";
    }
    if (cache_ == nullptr) {
      return "ERR FailedPrecondition: Phase-1 caching is disabled";
    }
    cache_->Invalidate(cohort);
    return "OK invalidated " + cohort;
  }

  if (verb == "STATS") {
    const JobSchedulerStats s = scheduler_->stats();
    std::ostringstream out;
    out << "OK submitted=" << s.submitted << " completed=" << s.completed
        << " failed=" << s.failed << " cancelled=" << s.cancelled
        << " rejected=" << s.rejected << " running=" << s.running
        << " queued=" << s.queued
        << " phase1_cache_hits=" << s.phase1_cache_hits;
    if (cache_ != nullptr) {
      const Phase1CacheStats c = cache_->stats();
      out << " cache_entries=" << c.entries
          << " cache_take_hits=" << c.take_hits
          << " cache_take_misses=" << c.take_misses
          << " cache_evictions=" << c.evictions
          << " cache_invalidations=" << c.invalidations;
    }
    return out.str();
  }

  if (verb == "SHUTDOWN") return "OK shutting-down";

  return "ERR InvalidArgument: unknown verb '" + verb + "'";
}

}  // namespace dash
