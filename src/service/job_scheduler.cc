#include "service/job_scheduler.h"

#include <chrono>
#include <string>
#include <utility>

#include "core/scan_result.h"
#include "transport/frame.h"
#include "util/logging.h"

namespace dash {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

JobScheduler::JobScheduler(SessionFactory factory, ScanFn scan,
                           Phase1Cache* cache, JobSchedulerOptions options)
    : factory_(std::move(factory)),
      scan_(std::move(scan)),
      cache_(cache),
      options_(options) {
  DASH_CHECK(factory_ != nullptr);
  DASH_CHECK(scan_ != nullptr);
  const int workers = options_.max_concurrent > 0 ? options_.max_concurrent : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

JobScheduler::~JobScheduler() { Shutdown(); }

Status JobScheduler::Submit(const JobSpec& spec) {
  if (spec.job_id == 0 || spec.job_id > kFrameMaxSessionId) {
    return InvalidArgumentError(
        "job_id must be in [1, " + std::to_string(kFrameMaxSessionId) +
        "] (it doubles as the transport session id)");
  }
  MutexLock lock(&mu_);
  if (stopping_) {
    ++stats_.rejected;
    return UnavailableError("scheduler is shutting down");
  }
  if (jobs_.count(spec.job_id) != 0) {
    ++stats_.rejected;
    return AlreadyExistsError("job " + std::to_string(spec.job_id) +
                              " already submitted");
  }
  if (queue_.size() >= static_cast<size_t>(options_.max_queued)) {
    ++stats_.rejected;
    return UnavailableError(
        "job queue is full (" + std::to_string(options_.max_queued) +
        " waiting); retry later");
  }
  JobRecord record;
  record.spec = spec;
  record.state = JobState::kQueued;
  jobs_.emplace(spec.job_id, std::move(record));
  submit_times_.emplace(spec.job_id, Stopwatch());
  queue_.push_back(spec.job_id);
  ++stats_.submitted;
  stats_.queued = static_cast<int>(queue_.size());
  work_cv_.NotifyOne();
  return Status::Ok();
}

Result<JobRecord> JobScheduler::Query(uint32_t job_id) const {
  MutexLock lock(&mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return NotFoundError("no job " + std::to_string(job_id));
  }
  return it->second;
}

Status JobScheduler::Cancel(uint32_t job_id) {
  MutexLock lock(&mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return NotFoundError("no job " + std::to_string(job_id));
  }
  switch (it->second.state) {
    case JobState::kQueued: {
      for (auto q = queue_.begin(); q != queue_.end(); ++q) {
        if (*q == job_id) {
          queue_.erase(q);
          break;
        }
      }
      stats_.queued = static_cast<int>(queue_.size());
      submit_times_.erase(job_id);
      const Status cancelled =
          UnavailableError("cancelled by client while queued");
      FinishLocked(job_id, JobState::kCancelled, cancelled);
      return Status::Ok();
    }
    case JobState::kRunning: {
      auto run = running_.find(job_id);
      if (run != running_.end()) {
        run->second.cancel_requested = true;
        if (run->second.abort) {
          run->second.abort(
              UnavailableError("job " + std::to_string(job_id) +
                               " cancelled by client"));
        }
      }
      return Status::Ok();
    }
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled:
      return FailedPreconditionError("job " + std::to_string(job_id) +
                                     " is already " +
                                     JobStateName(it->second.state));
  }
  return InternalError("unreachable");
}

JobSchedulerStats JobScheduler::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void JobScheduler::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (!stopping_) {
      stopping_ = true;
      while (!queue_.empty()) {
        const uint32_t id = queue_.front();
        queue_.pop_front();
        submit_times_.erase(id);
        const Status stopping = UnavailableError("daemon shutting down");
        FinishLocked(id, JobState::kCancelled, stopping);
      }
      stats_.queued = 0;
      for (auto& [id, run] : running_) {
        (void)id;
        run.cancel_requested = true;
        if (run.abort) run.abort(UnavailableError("daemon shutting down"));
      }
    }
    work_cv_.NotifyAll();
    watchdog_cv_.NotifyAll();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

void JobScheduler::WorkerLoop() {
  for (;;) {
    uint32_t job_id = 0;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(&mu_);
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job_id = queue_.front();
      queue_.pop_front();
      stats_.queued = static_cast<int>(queue_.size());
      JobRecord& record = jobs_.at(job_id);
      record.state = JobState::kRunning;
      const auto submit = submit_times_.find(job_id);
      if (submit != submit_times_.end()) {
        record.queue_seconds = submit->second.ElapsedSeconds();
        submit_times_.erase(submit);
      }
      RunningJob run;
      run.deadline_ms = record.spec.deadline_ms;
      running_.emplace(job_id, std::move(run));
      stats_.running = static_cast<int>(running_.size());
    }
    RunJob(job_id);
  }
}

void JobScheduler::RunJob(uint32_t job_id) {
  JobSpec spec;
  {
    MutexLock lock(&mu_);
    spec = jobs_.at(job_id).spec;
  }

  // Check the cohort's Phase-1 state out for exclusive use; a fresh
  // (invalid) state simply means the scan runs the full Phase 1.
  Phase1State phase1;
  if (cache_ != nullptr) phase1 = cache_->Take(spec.cohort_key);

  Result<ScanSession> session = factory_(spec);
  if (!session.ok()) {
    if (cache_ != nullptr) cache_->Put(spec.cohort_key, std::move(phase1));
    MutexLock lock(&mu_);
    const auto run = running_.find(job_id);
    const bool cancelled =
        run != running_.end() && run->second.cancel_requested;
    if (run != running_.end()) {
      jobs_.at(job_id).run_seconds = run->second.started.ElapsedSeconds();
      running_.erase(run);
      stats_.running = static_cast<int>(running_.size());
    }
    FinishLocked(job_id, cancelled ? JobState::kCancelled : JobState::kFailed,
                 session.status());
    return;
  }

  {
    MutexLock lock(&mu_);
    const auto run = running_.find(job_id);
    if (run != running_.end()) {
      run->second.abort = session.value().abort;
      // A cancel that raced session setup lands now, before the scan
      // blocks on the transport.
      if (run->second.cancel_requested && run->second.abort) {
        run->second.abort(UnavailableError(
            "job " + std::to_string(job_id) + " cancelled by client"));
      }
    }
  }

  Result<SecureScanOutput> out =
      scan_(session.value().transport.get(), spec, &phase1);
  if (cache_ != nullptr) cache_->Put(spec.cohort_key, std::move(phase1));

  {
    MutexLock lock(&mu_);
    const auto run = running_.find(job_id);
    bool cancelled = false;
    if (run != running_.end()) {
      cancelled = run->second.cancel_requested;
      jobs_.at(job_id).run_seconds = run->second.started.ElapsedSeconds();
      running_.erase(run);
      stats_.running = static_cast<int>(running_.size());
    }
    if (out.ok()) {
      JobRecord& record = jobs_.at(job_id);
      record.checksum = ScanResultChecksum(out.value().result);
      record.metrics = out.value().metrics;
      if (record.metrics.phase1_cache_hit) ++stats_.phase1_cache_hits;
      FinishLocked(job_id, JobState::kDone, Status::Ok());
    } else {
      FinishLocked(job_id,
                   cancelled ? JobState::kCancelled : JobState::kFailed,
                   out.status());
    }
  }
  // `session` (and with it the SessionChannel) is destroyed here,
  // outside mu_, closing the session on the mux.
}

void JobScheduler::FinishLocked(uint32_t job_id, JobState state,
                                const Status& error) {
  JobRecord& record = jobs_.at(job_id);
  record.state = state;
  record.error = error;
  switch (state) {
    case JobState::kDone:
      ++stats_.completed;
      break;
    case JobState::kFailed:
      ++stats_.failed;
      DASH_LOG(Warning) << "job " << job_id << " failed: " << error;
      break;
    case JobState::kCancelled:
      ++stats_.cancelled;
      break;
    default:
      break;
  }
}

void JobScheduler::WatchdogLoop() {
  for (;;) {
    MutexLock lock(&mu_);
    // Own condition variable: sharing work_cv_ would let the watchdog
    // steal Submit's notify_one and leave a worker asleep with a job
    // queued (there is no later notify to recover it).
    const auto poll_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.watchdog_interval_ms);
    while (!stopping_ && watchdog_cv_.WaitUntil(&mu_, poll_deadline) !=
                             std::cv_status::timeout) {
    }
    if (stopping_) return;
    for (auto& [id, run] : running_) {
      if (run.deadline_ms <= 0 || run.deadline_fired) continue;
      if (run.started.ElapsedMillis() <
          static_cast<double>(run.deadline_ms)) {
        continue;
      }
      run.deadline_fired = true;
      if (run.abort) {
        run.abort(DeadlineExceededError(
            "job " + std::to_string(id) + ": deadline of " +
            std::to_string(run.deadline_ms) + " ms exceeded"));
      }
    }
  }
}

}  // namespace dash
