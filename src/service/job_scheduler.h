// Admission control and execution for the resident daemon's scan jobs.
//
// The scheduler owns a small worker pool (max_concurrent sessions on
// the mesh) and a bounded FIFO queue; beyond both, Submit rejects with
// Unavailable — the client retries later, the mesh is never
// oversubscribed. Each admitted job:
//
//   1. waits in the queue for a worker (state kQueued);
//   2. checks its cohort's Phase-1 state out of the Phase1Cache;
//   3. opens its own transport session via the injected SessionFactory
//      (in the daemon: SessionMux::OpenSession(job_id) on the shared
//      mesh) and runs the injected ScanFn on it (state kRunning);
//   4. checks the refreshed Phase-1 state back in and lands in kDone /
//      kFailed / kCancelled, with per-job metrics attributed by the
//      session's own TrafficMetrics.
//
// Deadlines and cancellation ride the existing abort path: the
// watchdog (per-job deadline_ms) and Cancel() invoke the session's
// abort hook, which poisons ONLY that session — the running scan fails
// with the given status, its abort broadcast fails the same session at
// the peers, and every other job on the mesh is untouched.
//
// The scheduler is deliberately transport- and protocol-agnostic (both
// are injected) so tests drive it with a single-party mesh or a fake
// scan without a daemon around it.

#ifndef DASH_SERVICE_JOB_SCHEDULER_H_
#define DASH_SERVICE_JOB_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "service/job.h"
#include "service/phase1_cache.h"
#include "transport/transport.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace dash {

// One job's live protocol endpoint, as produced by the SessionFactory.
struct ScanSession {
  // Party-bound, session-scoped transport the scan runs on. Owned by
  // the job for its duration.
  std::unique_ptr<Transport> transport;

  // Poisons the session with the given status (deadline, cancel,
  // shutdown); must be safe to call from another thread while the scan
  // is blocked in the transport, and after the scan returned. May be
  // empty when the backend cannot abort (the job then runs to its
  // transport timeout instead).
  std::function<void(const Status&)> abort;
};

// Opens the per-job session; called on the worker thread, may block
// (e.g. while the daemon re-establishes a torn mesh).
using SessionFactory = std::function<Result<ScanSession>(const JobSpec&)>;

// Runs one party's scan for `spec` over the session transport, with
// the checked-out Phase-1 state (never null). The daemon binds this to
// RunPartySecureScan over the spec's synthetic cohort.
using ScanFn = std::function<Result<SecureScanOutput>(
    Transport*, const JobSpec&, Phase1State*)>;

struct JobSchedulerOptions {
  // Worker pool size = concurrent sessions on the mesh.
  int max_concurrent = 4;

  // Jobs waiting beyond the running ones; Submit rejects past this.
  int max_queued = 16;

  // Deadline-watchdog poll interval.
  int watchdog_interval_ms = 20;
};

struct JobSchedulerStats {
  int64_t submitted = 0;
  int64_t rejected = 0;   // queue-full / duplicate-id submissions
  int64_t completed = 0;  // kDone
  int64_t failed = 0;     // kFailed
  int64_t cancelled = 0;  // kCancelled
  int64_t phase1_cache_hits = 0;
  int running = 0;
  int queued = 0;
};

class JobScheduler {
 public:
  // `cache` may be null (Phase-1 caching disabled); when non-null it
  // must outlive the scheduler.
  JobScheduler(SessionFactory factory, ScanFn scan, Phase1Cache* cache,
               JobSchedulerOptions options = {});

  // Shutdown() + join.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  // Admits `spec` (client-chosen job_id in 1..kFrameMaxSessionId).
  // InvalidArgument on a bad id, AlreadyExists on a reused one,
  // Unavailable when the queue is full or the scheduler is stopping.
  Status Submit(const JobSpec& spec);

  // Snapshot of the job's record; NotFound for unknown ids.
  Result<JobRecord> Query(uint32_t job_id) const;

  // Queued jobs leave the queue immediately; running jobs have their
  // session aborted and settle as kCancelled shortly after. NotFound
  // for unknown ids, FailedPrecondition for already-terminal jobs.
  Status Cancel(uint32_t job_id);

  JobSchedulerStats stats() const;

  // Rejects new work, cancels the queue, aborts running sessions with
  // Unavailable, joins all threads. Idempotent.
  void Shutdown();

 private:
  struct RunningJob {
    std::function<void(const Status&)> abort;
    Stopwatch started;
    int64_t deadline_ms = 0;
    bool cancel_requested = false;
    bool deadline_fired = false;
  };

  void WorkerLoop();
  void WatchdogLoop();
  void RunJob(uint32_t job_id);
  // Moves a job to its terminal state and updates counters.
  void FinishLocked(uint32_t job_id, JobState state, const Status& error)
      DASH_REQUIRES(mu_);

  const SessionFactory factory_;
  const ScanFn scan_;
  Phase1Cache* const cache_;
  const JobSchedulerOptions options_;

  // Rank kJobScheduler nests OUTSIDE kSessionMux: Cancel/Shutdown/the
  // watchdog call a running job's abort hook (SessionMux::ChannelAbort
  // takes the mux lock) while holding mu_.
  mutable Mutex mu_{LockRank::kJobScheduler};
  CondVar work_cv_;      // workers: queue / stopping
  CondVar watchdog_cv_;  // watchdog only (see WatchdogLoop)
  bool stopping_ DASH_GUARDED_BY(mu_) = false;
  std::map<uint32_t, JobRecord> jobs_ DASH_GUARDED_BY(mu_);
  std::map<uint32_t, Stopwatch> submit_times_ DASH_GUARDED_BY(mu_);
  std::deque<uint32_t> queue_ DASH_GUARDED_BY(mu_);
  std::map<uint32_t, RunningJob> running_ DASH_GUARDED_BY(mu_);
  JobSchedulerStats stats_ DASH_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace dash

#endif  // DASH_SERVICE_JOB_SCHEDULER_H_
