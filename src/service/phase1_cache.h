// Cross-scan Phase-1 cache: cohort_key -> Phase1State (pooled-QR and
// permanent-covariate state, transport/party_runner.h).
//
// Repeat scans on the same cohort reuse the state and skip Phase 1
// entirely — the kPhase1Probe agreement round replaces the sample-count
// and R-combination rounds. The cache is check-out/check-in rather than
// shared-reference: Take() REMOVES the entry, the job runs the scan
// with exclusive ownership (RunPartySecureScan mutates the state), and
// Put() returns the refreshed state. Two concurrent jobs on one cohort
// therefore never race on the matrices; the second simply misses and
// recomputes, and last-in wins the slot.
//
// Secrecy: the cached Q_p stays Secret<Matrix> end to end (the state is
// stored as party_runner.h hands it back); this container never reads
// it. Eviction/invalidation destroys the Secret wrapper and its
// contents with it.
//
// Invalidation: Invalidate(key) when a cohort's data changes out from
// under its key, Clear() on remesh or reload. Mislabeled keys are safe
// regardless — Phase1State carries a content fingerprint that
// RunPartySecureScan checks before trusting the state.

#ifndef DASH_SERVICE_PHASE1_CACHE_H_
#define DASH_SERVICE_PHASE1_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <utility>

#include "transport/party_runner.h"
#include "util/mutex.h"

namespace dash {

// Relaxed snapshot for the control plane's STATS verb.
struct Phase1CacheStats {
  int64_t take_hits = 0;     // Take() found a valid entry
  int64_t take_misses = 0;   // Take() handed out a fresh state
  int64_t evictions = 0;     // LRU pressure
  int64_t invalidations = 0; // explicit Invalidate/Clear
  int entries = 0;
};

// Thread-safe LRU. All methods lock; none block on anything but the
// internal mutex.
class Phase1Cache {
 public:
  explicit Phase1Cache(size_t max_entries = 8);

  // Removes and returns the state cached under `key`; a fresh (invalid)
  // state when there is none. The caller owns the result exclusively
  // until it Put()s it back.
  Phase1State Take(const std::string& key);

  // Caches `state` under `key` (only valid states are kept), evicting
  // the least-recently-used entry beyond capacity.
  void Put(const std::string& key, Phase1State state);

  // Drops `key` (no-op when absent): the cohort's data changed.
  void Invalidate(const std::string& key);

  // Drops everything (remesh, reload).
  void Clear();

  Phase1CacheStats stats() const;

 private:
  // Moves `key` to the back of the recency list.
  void TouchLocked(const std::string& key) DASH_REQUIRES(mu_);

  struct Entry {
    Phase1State state;
    std::list<std::string>::iterator lru_pos;
  };

  const size_t max_entries_;
  mutable Mutex mu_{LockRank::kPhase1Cache};
  std::map<std::string, Entry> entries_ DASH_GUARDED_BY(mu_);
  // front = coldest
  std::list<std::string> lru_ DASH_GUARDED_BY(mu_);
  Phase1CacheStats stats_ DASH_GUARDED_BY(mu_);
};

}  // namespace dash

#endif  // DASH_SERVICE_PHASE1_CACHE_H_
