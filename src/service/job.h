// Scan jobs as the resident daemon (examples/dash_partyd.cpp) sees
// them: what a client submits, what the scheduler tracks, what the
// control plane reports back.
//
// A job names a deterministic synthetic cohort (the same
// data/workloads.h generator every example and test uses), so all P
// daemons — and the in-process simulator the CI job cross-checks
// against — derive identical party slices from the spec alone. The
// job id doubles as the transport session id (transport/session_mux.h):
// clients submit the SAME id to every daemon, and that id is what keeps
// concurrent jobs' frames and mask keys apart on the shared mesh.

#ifndef DASH_SERVICE_JOB_H_
#define DASH_SERVICE_JOB_H_

#include <cstdint>
#include <string>

#include "core/secure_scan.h"
#include "util/status.h"

namespace dash {

struct JobSpec {
  // Logical session id on the mesh (1..kFrameMaxSessionId). Chosen by
  // the CLIENT and submitted identically to every party's daemon — the
  // parties of one job must agree on it, exactly like a port number.
  uint32_t job_id = 0;

  // Client-declared cohort identity, the Phase-1 cache key. Jobs that
  // share a cohort_key (and genuinely the same cohort data) reuse
  // pooled-QR state and skip Phase 1. A mislabeled key is safe: the
  // cache's content fingerprint misses and the full protocol runs.
  std::string cohort_key = "default";

  // Synthetic-cohort shape (data/workloads.h). The PERMANENT covariates
  // and samples are a function of (cohort_key's data below), while
  // variants may differ between scans of one cohort.
  int64_t variants = 64;
  int64_t samples_per_party = 96;
  int64_t covariates = 3;
  uint64_t data_seed = 7;

  // Protocol knobs.
  AggregationMode mode = AggregationMode::kMasked;
  uint64_t protocol_seed = 0xda5b;

  // Run this party's side out-of-core: pack the cohort slice to a
  // DASHPACK study under the daemon's --checkpoint-dir (reusing the
  // file when its fingerprint already matches), stream the genotype
  // panels through the checkpointed scan loop, and resume from the last
  // durable checkpoint if a previous daemon died mid-job on this
  // cohort. The revealed result is bit-identical to the in-memory path,
  // so streamed and non-streamed daemons may serve the same job.
  bool stream = false;

  // Wall-clock budget for the RUNNING phase; 0 = none. On expiry the
  // scheduler aborts the job's session, which surfaces as
  // DeadlineExceeded here and as a scoped session abort at the peers.
  int64_t deadline_ms = 0;
};

enum class JobState {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
};

// Stable name, e.g. "running".
const char* JobStateName(JobState state);

// Everything the control plane can say about one job.
struct JobRecord {
  JobSpec spec;
  JobState state = JobState::kQueued;

  // Failure cause when kFailed / kCancelled.
  Status error = Status::Ok();

  // Result identity (core/scan_result.h FNV-1a) when kDone — what the
  // client compares across parties and against the simulator.
  uint64_t checksum = 0;

  // Per-job protocol cost, attributed by the job's own SessionChannel
  // metrics (not the mesh-wide totals). phase1_cache_hit is the
  // observable "Phase 1 was skipped" signal.
  SecureScanMetrics metrics;

  double queue_seconds = 0.0;  // submit -> worker pickup
  double run_seconds = 0.0;    // worker pickup -> terminal state
};

}  // namespace dash

#endif  // DASH_SERVICE_JOB_H_
