#include "linalg/packed_matrix.h"

#include <algorithm>

#include "util/check.h"

namespace dash {
namespace {

// Even-bit masks over a packed word: lo holds the low bit of every
// 2-bit code, hi the high bit, both left in the even positions.
constexpr uint64_t kEvenBits = 0x5555555555555555ULL;

}  // namespace

PackedGenotypeMatrix::PackedGenotypeMatrix(int64_t rows, int64_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_column_((rows + kRowsPerWord - 1) / kRowsPerWord),
      words_(static_cast<size_t>(cols * words_per_column_), 0) {
  DASH_CHECK_GE(rows, 0);
  DASH_CHECK_GE(cols, 0);
}

bool PackedGenotypeMatrix::IsDosageMatrix(const Matrix& dense) {
  const double* p = dense.data();
  const int64_t total = dense.size();
  for (int64_t i = 0; i < total; ++i) {
    if (!IsDosageValue(p[i])) return false;
  }
  return true;
}

std::optional<PackedGenotypeMatrix> PackedGenotypeMatrix::TryFromDense(
    const Matrix& dense) {
  PackedGenotypeMatrix packed(dense.rows(), dense.cols());
  const int64_t wpc = packed.words_per_column_;
  // Row-major sweep of the source: each of the cols() current words
  // stays hot for 32 consecutive rows.
  for (int64_t i = 0; i < dense.rows(); ++i) {
    const double* row = dense.row_data(i);
    const int64_t word_index = i / kRowsPerWord;
    const int shift = static_cast<int>(2 * (i % kRowsPerWord));
    for (int64_t j = 0; j < dense.cols(); ++j) {
      const double v = row[j];
      if (!IsDosageValue(v)) return std::nullopt;
      packed.words_[static_cast<size_t>(j * wpc + word_index)] |=
          static_cast<uint64_t>(v) << shift;
    }
  }
  return packed;
}

std::optional<PackedGenotypeMatrix> PackedGenotypeMatrix::TryFromSparse(
    const SparseColumnMatrix& sparse) {
  PackedGenotypeMatrix packed(sparse.rows(), sparse.cols());
  const int64_t wpc = packed.words_per_column_;
  for (int64_t j = 0; j < sparse.cols(); ++j) {
    uint64_t* words = packed.words_.data() + static_cast<size_t>(j * wpc);
    for (const auto& e : sparse.ColumnEntries(j)) {
      if (e.value == 0.0) continue;  // an explicitly stored zero
      if (e.value != 1.0 && e.value != 2.0) return std::nullopt;
      words[e.row / kRowsPerWord] |= static_cast<uint64_t>(e.value)
                                     << (2 * (e.row % kRowsPerWord));
    }
  }
  return packed;
}

PackedGenotypeMatrix PackedGenotypeMatrix::FromDense(const Matrix& dense) {
  auto packed = TryFromDense(dense);
  DASH_CHECK(packed.has_value())
      << "FromDense requires every entry in {0, 1, 2}";
  return *std::move(packed);
}

PackedGenotypeMatrix PackedGenotypeMatrix::FromSparse(
    const SparseColumnMatrix& sparse) {
  auto packed = TryFromSparse(sparse);
  DASH_CHECK(packed.has_value())
      << "FromSparse requires every stored value in {0, 1, 2}";
  return *std::move(packed);
}

Matrix PackedGenotypeMatrix::ToDense() const {
  Matrix dense(rows_, cols_);
  for (int64_t j = 0; j < cols_; ++j) {
    const uint64_t* words = column_words(j);
    for (int64_t i = 0; i < rows_; ++i) {
      const uint8_t code = static_cast<uint8_t>(
          (words[i / kRowsPerWord] >> (2 * (i % kRowsPerWord))) & 3u);
      dense(i, j) =
          code == kMissingCode ? 0.0 : static_cast<double>(code);
    }
  }
  return dense;
}

void PackedGenotypeMatrix::Set(int64_t i, int64_t j, uint8_t code) {
  DASH_CHECK(0 <= i && i < rows_ && 0 <= j && j < cols_);
  DASH_CHECK_LE(code, 3);
  uint64_t& word =
      words_[static_cast<size_t>(j * words_per_column_ + i / kRowsPerWord)];
  const int shift = static_cast<int>(2 * (i % kRowsPerWord));
  word = (word & ~(3ULL << shift)) | (static_cast<uint64_t>(code) << shift);
}

void PackedGenotypeMatrix::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

PackedGenotypeMatrix::ColumnCounts PackedGenotypeMatrix::Counts(
    int64_t j) const {
  ColumnCounts c;
  const uint64_t* words = column_words(j);
  for (int64_t w = 0; w < words_per_column_; ++w) {
    const uint64_t lo = words[w] & kEvenBits;
    const uint64_t hi = (words[w] >> 1) & kEvenBits;
    c.het += __builtin_popcountll(lo & ~hi);
    c.hom += __builtin_popcountll(hi & ~lo);
    c.missing += __builtin_popcountll(lo & hi);
  }
  return c;
}

int64_t PackedGenotypeMatrix::TotalNnz() const {
  int64_t total = 0;
  for (int64_t j = 0; j < cols_; ++j) total += ColumnNnz(j);
  return total;
}

double PackedGenotypeMatrix::Density() const {
  const int64_t total = rows_ * cols_;
  return total == 0 ? 0.0
                    : static_cast<double>(TotalNnz()) /
                          static_cast<double>(total);
}

}  // namespace dash
