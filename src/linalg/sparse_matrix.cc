#include "linalg/sparse_matrix.h"

#include "util/check.h"

namespace dash {

SparseColumnMatrix::SparseColumnMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols),
      col_entries_(static_cast<size_t>(cols)) {
  DASH_CHECK_GE(rows, 0);
  DASH_CHECK_GE(cols, 0);
}

SparseColumnMatrix SparseColumnMatrix::FromDense(const Matrix& dense) {
  SparseColumnMatrix out(dense.rows(), dense.cols());
  for (int64_t j = 0; j < dense.cols(); ++j) {
    for (int64_t i = 0; i < dense.rows(); ++i) {
      const double v = dense(i, j);
      if (v != 0.0) out.PushEntry(j, i, v);
    }
  }
  return out;
}

void SparseColumnMatrix::PushEntry(int64_t j, int64_t row, double value) {
  DASH_CHECK(0 <= j && j < cols_);
  DASH_CHECK(0 <= row && row < rows_);
  auto& col = col_entries_[static_cast<size_t>(j)];
  DASH_DCHECK(col.empty() || col.back().row < row)
      << "rows must be pushed in increasing order";
  col.push_back(Entry{row, value});
}

int64_t SparseColumnMatrix::TotalNnz() const {
  int64_t total = 0;
  for (const auto& col : col_entries_) total += static_cast<int64_t>(col.size());
  return total;
}

double SparseColumnMatrix::Density() const {
  const int64_t cells = rows_ * cols_;
  if (cells == 0) return 0.0;
  return static_cast<double>(TotalNnz()) / static_cast<double>(cells);
}

double SparseColumnMatrix::ColumnDot(int64_t j, const Vector& y) const {
  DASH_CHECK(0 <= j && j < cols_);
  DASH_CHECK_EQ(static_cast<int64_t>(y.size()), rows_);
  double sum = 0.0;
  for (const Entry& e : col_entries_[static_cast<size_t>(j)]) {
    sum += e.value * y[static_cast<size_t>(e.row)];
  }
  return sum;
}

double SparseColumnMatrix::ColumnSquaredNorm(int64_t j) const {
  DASH_CHECK(0 <= j && j < cols_);
  double sum = 0.0;
  for (const Entry& e : col_entries_[static_cast<size_t>(j)]) {
    sum += e.value * e.value;
  }
  return sum;
}

Vector SparseColumnMatrix::ColumnProject(int64_t j, const Matrix& q) const {
  DASH_CHECK(0 <= j && j < cols_);
  DASH_CHECK_EQ(q.rows(), rows_);
  Vector acc(static_cast<size_t>(q.cols()), 0.0);
  for (const Entry& e : col_entries_[static_cast<size_t>(j)]) {
    const double* qrow = q.row_data(e.row);
    for (int64_t k = 0; k < q.cols(); ++k) {
      acc[static_cast<size_t>(k)] += e.value * qrow[k];
    }
  }
  return acc;
}

Matrix SparseColumnMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int64_t j = 0; j < cols_; ++j) {
    for (const Entry& e : col_entries_[static_cast<size_t>(j)]) {
      out(e.row, j) = e.value;
    }
  }
  return out;
}

}  // namespace dash
