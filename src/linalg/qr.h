// Householder QR factorization and triangular kernels.
//
// ThinQr factors a tall N x K matrix (N >= K) as A = Q R with Q having
// orthonormal columns (N x K) and R upper triangular (K x K). We fix the
// sign convention diag(R) >= 0, which makes R unique for full-column-rank
// A; this is what lets per-party R factors be compared and combined in
// TSQR (linalg/tsqr.h).
//
// Rank deficiency is reported as FailedPrecondition, mirroring the
// paper's assumption that each party's permanent covariates have full
// column rank.

#ifndef DASH_LINALG_QR_H_
#define DASH_LINALG_QR_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

struct QrDecomposition {
  Matrix q;  // N x K, orthonormal columns
  Matrix r;  // K x K, upper triangular, non-negative diagonal
};

// Full thin QR of a tall matrix. Requires a.rows() >= a.cols() > 0.
Result<QrDecomposition> ThinQr(const Matrix& a);

// R factor only (what each party discloses). Cheaper: never forms Q.
Result<Matrix> QrRFactor(const Matrix& a);

// Solves R x = b for upper-triangular R. Fails on a (near-)zero diagonal.
Result<Vector> SolveUpperTriangular(const Matrix& r, const Vector& b);

// Solves L x = b for lower-triangular L.
Result<Vector> SolveLowerTriangular(const Matrix& l, const Vector& b);

// Inverse of an upper-triangular matrix via back substitution.
Result<Matrix> InvertUpperTriangular(const Matrix& r);

}  // namespace dash

#endif  // DASH_LINALG_QR_H_
