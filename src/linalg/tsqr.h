// Tall-skinny QR (TSQR) combination of per-block R factors.
//
// This is the paper's §3 "QR algorithm": each party factors its local
// covariate block C_p = Q_p^loc R_p, and only the tiny K x K R_p factors
// are combined. The R of the stacked [R_1; ...; R_P] equals the R of the
// pooled C (up to the diag(R) >= 0 sign convention, which linalg/qr.h
// enforces), so each party can recover its rows of the global Q as
// Q_p = C_p R^{-1}.
//
// Two combination strategies are provided:
//  * CombineRFactors       — stack all R_p and factor once (one round);
//  * TreeCombineRFactors   — pairwise binary-tree merges, ceil(log2 P)
//                            rounds, the footnote-3 variant in which each
//                            party only ever shares a K x K matrix with
//                            one peer per round.

#ifndef DASH_LINALG_TSQR_H_
#define DASH_LINALG_TSQR_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

// R factor of the vertical stack of the given upper-triangular blocks.
// All blocks must be K x K for the same K.
Result<Matrix> CombineRFactors(const std::vector<Matrix>& r_factors);

struct TreeTsqrResult {
  Matrix r;            // final K x K factor
  int rounds = 0;      // tree depth actually used (= ceil(log2 P))
  int merges = 0;      // number of pairwise QR merges performed
};

// Binary-tree pairwise combination. Equivalent to CombineRFactors but
// exposes the communication structure (rounds/merges) the paper's
// footnote describes.
Result<TreeTsqrResult> TreeCombineRFactors(std::vector<Matrix> r_factors);

}  // namespace dash

#endif  // DASH_LINALG_TSQR_H_
