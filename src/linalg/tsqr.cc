#include "linalg/tsqr.h"

#include <string>
#include <utility>

#include "linalg/qr.h"

namespace dash {
namespace {

Status ValidateBlocks(const std::vector<Matrix>& r_factors) {
  if (r_factors.empty()) {
    return InvalidArgumentError("no R factors to combine");
  }
  const int64_t k = r_factors[0].cols();
  for (const auto& r : r_factors) {
    if (r.rows() != k || r.cols() != k) {
      return InvalidArgumentError(
          "R factors must all be K x K; got " + std::to_string(r.rows()) +
          " x " + std::to_string(r.cols()) + " with K=" + std::to_string(k));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Matrix> CombineRFactors(const std::vector<Matrix>& r_factors) {
  DASH_RETURN_IF_ERROR(ValidateBlocks(r_factors));
  if (r_factors.size() == 1) return r_factors[0];
  return QrRFactor(VStack(r_factors));
}

Result<TreeTsqrResult> TreeCombineRFactors(std::vector<Matrix> r_factors) {
  DASH_RETURN_IF_ERROR(ValidateBlocks(r_factors));
  TreeTsqrResult out;
  while (r_factors.size() > 1) {
    ++out.rounds;
    std::vector<Matrix> next;
    next.reserve((r_factors.size() + 1) / 2);
    for (size_t i = 0; i + 1 < r_factors.size(); i += 2) {
      DASH_ASSIGN_OR_RETURN(
          Matrix merged,
          QrRFactor(VStack({r_factors[i], r_factors[i + 1]})));
      next.push_back(std::move(merged));
      ++out.merges;
    }
    if (r_factors.size() % 2 == 1) {
      next.push_back(std::move(r_factors.back()));
    }
    r_factors = std::move(next);
  }
  out.r = std::move(r_factors[0]);
  return out;
}

}  // namespace dash
