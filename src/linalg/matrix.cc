#include "linalg/matrix.h"

#include <cmath>

namespace dash {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(static_cast<int64_t>(rows.size())), cols_(0) {
  for (const auto& r : rows) {
    if (cols_ == 0) cols_ = static_cast<int64_t>(r.size());
    DASH_CHECK_EQ(static_cast<int64_t>(r.size()), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(const Vector& v) {
  Matrix m(static_cast<int64_t>(v.size()), 1);
  for (size_t i = 0; i < v.size(); ++i) m.data_[i] = v[i];
  return m;
}

Vector Matrix::Row(int64_t i) const {
  DASH_CHECK(0 <= i && i < rows_);
  return Vector(row_data(i), row_data(i) + cols_);
}

Vector Matrix::Col(int64_t j) const {
  DASH_CHECK(0 <= j && j < cols_);
  Vector out(static_cast<size_t>(rows_));
  for (int64_t i = 0; i < rows_; ++i) out[static_cast<size_t>(i)] = (*this)(i, j);
  return out;
}

void Matrix::SetRow(int64_t i, const Vector& v) {
  DASH_CHECK(0 <= i && i < rows_);
  DASH_CHECK_EQ(static_cast<int64_t>(v.size()), cols_);
  for (int64_t j = 0; j < cols_; ++j) (*this)(i, j) = v[static_cast<size_t>(j)];
}

void Matrix::SetCol(int64_t j, const Vector& v) {
  DASH_CHECK(0 <= j && j < cols_);
  DASH_CHECK_EQ(static_cast<int64_t>(v.size()), rows_);
  for (int64_t i = 0; i < rows_; ++i) (*this)(i, j) = v[static_cast<size_t>(i)];
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  DASH_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  const int64_t cols = b.cols();
  // i-k-j order keeps B and C accesses sequential; restrict on the row
  // pointers lets the j loop auto-vectorize (B and C never alias).
  for (int64_t i = 0; i < a.rows(); ++i) {
    double* DASH_RESTRICT ci = c.row_data(i);
    for (int64_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* DASH_RESTRICT bk = b.row_data(k);
      for (int64_t j = 0; j < cols; ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

Matrix TransposeMatMul(const Matrix& a, const Matrix& b) {
  DASH_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  const int64_t cols = b.cols();
  for (int64_t k = 0; k < a.rows(); ++k) {
    const double* ak = a.row_data(k);
    const double* DASH_RESTRICT bk = b.row_data(k);
    for (int64_t i = 0; i < a.cols(); ++i) {
      const double aki = ak[i];
      if (aki == 0.0) continue;
      double* DASH_RESTRICT ci = c.row_data(i);
      for (int64_t j = 0; j < cols; ++j) ci[j] += aki * bk[j];
    }
  }
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  DASH_CHECK_EQ(a.cols(), static_cast<int64_t>(x.size()));
  Vector y(static_cast<size_t>(a.rows()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    y[static_cast<size_t>(i)] = DotN(a.row_data(i), x.data(), a.cols());
  }
  return y;
}

Vector TransposeMatVec(const Matrix& a, const Vector& x) {
  DASH_CHECK_EQ(a.rows(), static_cast<int64_t>(x.size()));
  Vector y(static_cast<size_t>(a.cols()), 0.0);
  const int64_t cols = a.cols();
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double xi = x[static_cast<size_t>(i)];
    if (xi == 0.0) continue;
    const double* DASH_RESTRICT ai = a.row_data(i);
    double* DASH_RESTRICT yd = y.data();
    for (int64_t j = 0; j < cols; ++j) yd[j] += ai[j] * xi;
  }
  return y;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

Matrix MatAdd(const Matrix& a, const Matrix& b) {
  DASH_CHECK_EQ(a.rows(), b.rows());
  DASH_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] + b.data()[i];
  return c;
}

Matrix MatSub(const Matrix& a, const Matrix& b) {
  DASH_CHECK_EQ(a.rows(), b.rows());
  DASH_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] - b.data()[i];
  return c;
}

Matrix MatScale(double alpha, const Matrix& a) {
  Matrix c(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) c.data()[i] = alpha * a.data()[i];
  return c;
}

Matrix VStack(const std::vector<Matrix>& blocks) {
  DASH_CHECK(!blocks.empty());
  const int64_t cols = blocks[0].cols();
  int64_t rows = 0;
  for (const auto& b : blocks) {
    DASH_CHECK_EQ(b.cols(), cols);
    rows += b.rows();
  }
  Matrix out(rows, cols);
  int64_t r = 0;
  for (const auto& b : blocks) {
    for (int64_t i = 0; i < b.rows(); ++i, ++r) {
      for (int64_t j = 0; j < cols; ++j) out(r, j) = b(i, j);
    }
  }
  return out;
}

Matrix SliceRows(const Matrix& a, int64_t row_begin, int64_t row_end) {
  DASH_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= a.rows());
  Matrix out(row_end - row_begin, a.cols());
  for (int64_t i = row_begin; i < row_end; ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) out(i - row_begin, j) = a(i, j);
  }
  return out;
}

Matrix SliceCols(const Matrix& a, int64_t col_begin, int64_t col_end) {
  DASH_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= a.cols());
  Matrix out(a.rows(), col_end - col_begin);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = col_begin; j < col_end; ++j) out(i, j - col_begin) = a(i, j);
  }
  return out;
}

Matrix WithInterceptColumn(const Matrix& a) {
  Matrix out(a.rows(), a.cols() + 1);
  for (int64_t i = 0; i < a.rows(); ++i) {
    out(i, 0) = 1.0;
    for (int64_t j = 0; j < a.cols(); ++j) out(i, j + 1) = a(i, j);
  }
  return out;
}

double FrobeniusNorm(const Matrix& a) {
  double sum = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) sum += a.data()[i] * a.data()[i];
  return std::sqrt(sum);
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  DASH_CHECK_EQ(a.rows(), b.rows());
  DASH_CHECK_EQ(a.cols(), b.cols());
  double worst = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double d = std::fabs(a.data()[i] - b.data()[i]);
    if (d > worst) worst = d;
  }
  return worst;
}

void CenterColumnsInPlace(Matrix* a) {
  if (a->rows() == 0) return;
  for (int64_t j = 0; j < a->cols(); ++j) {
    double mean = 0.0;
    for (int64_t i = 0; i < a->rows(); ++i) mean += (*a)(i, j);
    mean /= static_cast<double>(a->rows());
    for (int64_t i = 0; i < a->rows(); ++i) (*a)(i, j) -= mean;
  }
}

}  // namespace dash
