#include "linalg/qr.h"

#include <cmath>
#include <limits>
#include <string>

namespace dash {
namespace {

// Relative tolerance under which a Householder column or triangular pivot
// counts as zero (rank deficiency).
constexpr double kRankTolerance = 1e-12;

// Applies the Householder reflections in place. On return `a` holds R in
// its upper triangle and the reflector vectors below the diagonal;
// `taus[k]` holds 2/vᵀv for reflector k (0 when the column was already
// triangular). Returns FailedPrecondition on rank deficiency.
Status HouseholderFactor(Matrix* a, Vector* taus, Vector* diag) {
  const int64_t n = a->rows();
  const int64_t k_cols = a->cols();
  taus->assign(static_cast<size_t>(k_cols), 0.0);
  diag->assign(static_cast<size_t>(k_cols), 0.0);

  // Rank deficiency is judged per column: the residual after projecting
  // out earlier columns must be non-negligible relative to the column's
  // own original norm (columns may legitimately differ in scale by many
  // orders of magnitude, e.g. intercept vs. principal components).
  Vector original_norms(static_cast<size_t>(k_cols), 0.0);
  for (int64_t k = 0; k < k_cols; ++k) {
    double norm2 = 0.0;
    for (int64_t i = 0; i < n; ++i) norm2 += (*a)(i, k) * (*a)(i, k);
    original_norms[static_cast<size_t>(k)] = std::sqrt(norm2);
  }

  for (int64_t k = 0; k < k_cols; ++k) {
    // sigma = ||a[k:, k]||.
    double sigma2 = 0.0;
    for (int64_t i = k; i < n; ++i) sigma2 += (*a)(i, k) * (*a)(i, k);
    const double sigma = std::sqrt(sigma2);
    const double scale = original_norms[static_cast<size_t>(k)];
    if (sigma <= kRankTolerance * (scale > 0 ? scale : 1.0)) {
      return FailedPreconditionError(
          "matrix is rank deficient at column " + std::to_string(k));
    }
    const double akk = (*a)(k, k);
    const double alpha = (akk >= 0.0) ? -sigma : sigma;
    // v = a[k:, k] with v[0] -= alpha, stored in place below the diagonal.
    (*a)(k, k) = akk - alpha;
    double vtv = 0.0;
    for (int64_t i = k; i < n; ++i) vtv += (*a)(i, k) * (*a)(i, k);
    const double tau = (vtv == 0.0) ? 0.0 : 2.0 / vtv;
    (*taus)[static_cast<size_t>(k)] = tau;
    (*diag)[static_cast<size_t>(k)] = alpha;
    if (tau != 0.0) {
      for (int64_t j = k + 1; j < k_cols; ++j) {
        double s = 0.0;
        for (int64_t i = k; i < n; ++i) s += (*a)(i, k) * (*a)(i, j);
        s *= tau;
        for (int64_t i = k; i < n; ++i) (*a)(i, j) -= s * (*a)(i, k);
      }
    }
  }
  return Status::Ok();
}

// Extracts R (with the reflected diagonal) from the factored storage.
Matrix ExtractR(const Matrix& a, const Vector& diag) {
  const int64_t k_cols = a.cols();
  Matrix r(k_cols, k_cols);
  for (int64_t i = 0; i < k_cols; ++i) {
    r(i, i) = diag[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < k_cols; ++j) r(i, j) = a(i, j);
  }
  return r;
}

// Flips signs so diag(R) >= 0; mirrors the flip into Q's columns if given.
void NormalizeSigns(Matrix* r, Matrix* q) {
  for (int64_t k = 0; k < r->cols(); ++k) {
    if ((*r)(k, k) < 0.0) {
      for (int64_t j = k; j < r->cols(); ++j) (*r)(k, j) = -(*r)(k, j);
      if (q != nullptr) {
        for (int64_t i = 0; i < q->rows(); ++i) (*q)(i, k) = -(*q)(i, k);
      }
    }
  }
}

Status ValidateTallInput(const Matrix& a) {
  if (a.cols() == 0) return InvalidArgumentError("QR of a matrix with 0 columns");
  if (a.rows() < a.cols()) {
    return InvalidArgumentError(
        "QR requires rows >= cols; got " + std::to_string(a.rows()) + " x " +
        std::to_string(a.cols()));
  }
  return Status::Ok();
}

}  // namespace

Result<QrDecomposition> ThinQr(const Matrix& a) {
  DASH_RETURN_IF_ERROR(ValidateTallInput(a));
  Matrix work = a;
  Vector taus;
  Vector diag;
  DASH_RETURN_IF_ERROR(HouseholderFactor(&work, &taus, &diag));

  const int64_t n = a.rows();
  const int64_t k_cols = a.cols();
  // Form thin Q by applying H_{K-1} ... H_0 to the first K identity columns.
  Matrix q(n, k_cols);
  for (int64_t i = 0; i < k_cols; ++i) q(i, i) = 1.0;
  for (int64_t k = k_cols - 1; k >= 0; --k) {
    const double tau = taus[static_cast<size_t>(k)];
    if (tau == 0.0) continue;
    for (int64_t j = 0; j < k_cols; ++j) {
      double s = 0.0;
      for (int64_t i = k; i < n; ++i) s += work(i, k) * q(i, j);
      s *= tau;
      for (int64_t i = k; i < n; ++i) q(i, j) -= s * work(i, k);
    }
  }

  QrDecomposition out;
  out.r = ExtractR(work, diag);
  out.q = std::move(q);
  NormalizeSigns(&out.r, &out.q);
  return out;
}

Result<Matrix> QrRFactor(const Matrix& a) {
  DASH_RETURN_IF_ERROR(ValidateTallInput(a));
  Matrix work = a;
  Vector taus;
  Vector diag;
  DASH_RETURN_IF_ERROR(HouseholderFactor(&work, &taus, &diag));
  Matrix r = ExtractR(work, diag);
  NormalizeSigns(&r, nullptr);
  return r;
}

Result<Vector> SolveUpperTriangular(const Matrix& r, const Vector& b) {
  DASH_CHECK_EQ(r.rows(), r.cols());
  DASH_CHECK_EQ(static_cast<int64_t>(b.size()), r.rows());
  const int64_t n = r.rows();
  Vector x(b);
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = x[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < n; ++j) sum -= r(i, j) * x[static_cast<size_t>(j)];
    const double piv = r(i, i);
    if (std::fabs(piv) < std::numeric_limits<double>::min() * 4) {
      return FailedPreconditionError("singular triangular system");
    }
    x[static_cast<size_t>(i)] = sum / piv;
  }
  return x;
}

Result<Vector> SolveLowerTriangular(const Matrix& l, const Vector& b) {
  DASH_CHECK_EQ(l.rows(), l.cols());
  DASH_CHECK_EQ(static_cast<int64_t>(b.size()), l.rows());
  const int64_t n = l.rows();
  Vector x(b);
  for (int64_t i = 0; i < n; ++i) {
    double sum = x[static_cast<size_t>(i)];
    for (int64_t j = 0; j < i; ++j) sum -= l(i, j) * x[static_cast<size_t>(j)];
    const double piv = l(i, i);
    if (std::fabs(piv) < std::numeric_limits<double>::min() * 4) {
      return FailedPreconditionError("singular triangular system");
    }
    x[static_cast<size_t>(i)] = sum / piv;
  }
  return x;
}

Result<Matrix> InvertUpperTriangular(const Matrix& r) {
  DASH_CHECK_EQ(r.rows(), r.cols());
  const int64_t n = r.rows();
  Matrix inv(n, n);
  // Solve R * inv[:, j] = e_j column by column.
  for (int64_t j = 0; j < n; ++j) {
    Vector e(static_cast<size_t>(n), 0.0);
    e[static_cast<size_t>(j)] = 1.0;
    DASH_ASSIGN_OR_RETURN(Vector col, SolveUpperTriangular(r, e));
    inv.SetCol(j, col);
  }
  return inv;
}

}  // namespace dash
