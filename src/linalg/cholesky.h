// Cholesky factorization of symmetric positive-definite matrices.
//
// Used by the normal-equations variants (the Cᵀ-compression generalization
// of §5 solves small K x K Gram systems) and by tests as an independent
// check on QR-based solvers.

#ifndef DASH_LINALG_CHOLESKY_H_
#define DASH_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

// Lower-triangular L with A = L Lᵀ. Fails (FailedPrecondition) if A is
// not positive definite within roundoff.
Result<Matrix> Cholesky(const Matrix& a);

// Solves A x = b for SPD A via Cholesky.
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

}  // namespace dash

#endif  // DASH_LINALG_CHOLESKY_H_
