#include "linalg/vector_ops.h"

#include <cmath>

#include "util/check.h"

namespace dash {

double Dot(const Vector& a, const Vector& b) {
  DASH_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double SquaredNorm(const Vector& v) {
  double sum = 0.0;
  for (const double x : v) sum += x * x;
  return sum;
}

double Norm(const Vector& v) { return std::sqrt(SquaredNorm(v)); }

void Axpy(double alpha, const Vector& x, Vector* y) {
  DASH_CHECK_EQ(x.size(), y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vector* v) {
  for (double& x : *v) x *= alpha;
}

Vector Add(const Vector& a, const Vector& b) {
  DASH_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  DASH_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double Mean(const Vector& v) {
  DASH_CHECK(!v.empty());
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

void CenterInPlace(Vector* v) {
  const double m = Mean(*v);
  for (double& x : *v) x -= m;
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  DASH_CHECK_EQ(a.size(), b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = std::fabs(a[i] - b[i]);
    if (d > worst) worst = d;
  }
  return worst;
}

double MaxAbs(const Vector& v) {
  double worst = 0.0;
  for (const double x : v) {
    const double d = std::fabs(x);
    if (d > worst) worst = d;
  }
  return worst;
}

}  // namespace dash
