#include "linalg/vector_ops.h"

#include <cmath>

#include "util/check.h"

namespace dash {

double DotN(const double* DASH_RESTRICT a, const double* DASH_RESTRICT b,
            int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double SquaredNormN(const double* DASH_RESTRICT v, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) sum += v[i] * v[i];
  return sum;
}

void AxpyN(double alpha, const double* DASH_RESTRICT x,
           double* DASH_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double Dot(const Vector& a, const Vector& b) {
  DASH_CHECK_EQ(a.size(), b.size());
  return DotN(a.data(), b.data(), static_cast<int64_t>(a.size()));
}

double SquaredNorm(const Vector& v) {
  return SquaredNormN(v.data(), static_cast<int64_t>(v.size()));
}

double Norm(const Vector& v) { return std::sqrt(SquaredNorm(v)); }

void Axpy(double alpha, const Vector& x, Vector* y) {
  DASH_CHECK_EQ(x.size(), y->size());
  AxpyN(alpha, x.data(), y->data(), static_cast<int64_t>(x.size()));
}

void Scale(double alpha, Vector* v) {
  for (double& x : *v) x *= alpha;
}

Vector Add(const Vector& a, const Vector& b) {
  DASH_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  DASH_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double Mean(const Vector& v) {
  DASH_CHECK(!v.empty());
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

void CenterInPlace(Vector* v) {
  const double m = Mean(*v);
  for (double& x : *v) x -= m;
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  DASH_CHECK_EQ(a.size(), b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = std::fabs(a[i] - b[i]);
    if (d > worst) worst = d;
  }
  return worst;
}

double MaxAbs(const Vector& v) {
  double worst = 0.0;
  for (const double x : v) {
    const double d = std::fabs(x);
    if (d > worst) worst = d;
  }
  return worst;
}

}  // namespace dash
