// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Needed by the linear mixed-model generalization (§5): the parties share
// an eigendecomposition of the kinship kernel K = U diag(s) Uᵀ and rotate
// their data into the eigenbasis. Jacobi is O(n³) per sweep but robust
// and accurate, which is the right trade-off for the kernel sizes the
// examples use (n up to a few hundred).

#ifndef DASH_LINALG_EIGEN_SYM_H_
#define DASH_LINALG_EIGEN_SYM_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

struct SymmetricEigen {
  Vector eigenvalues;  // ascending
  Matrix eigenvectors; // columns, matching eigenvalue order
};

// Eigendecomposition of a symmetric matrix. Symmetry is enforced by
// averaging a with its transpose; convergence failure (which does not
// happen for finite inputs within the generous sweep cap) reports
// Internal.
Result<SymmetricEigen> JacobiEigenSymmetric(const Matrix& a);

}  // namespace dash

#endif  // DASH_LINALG_EIGEN_SYM_H_
