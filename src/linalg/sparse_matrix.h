// Column-compressed sparse matrix for the transient covariates X.
//
// Genotype columns are mostly zeros when minor alleles are rare; the
// paper notes (§2) that packing X sparsely cuts the flop count for QᵀX
// in proportion to sparsity. SparseColumnMatrix stores, per column, the
// nonzero (row, value) pairs and exposes exactly the per-column kernels
// the association scan needs, so the scan's cost per column is
// O(nnz(X_m) * K) instead of O(N * K).

#ifndef DASH_LINALG_SPARSE_MATRIX_H_
#define DASH_LINALG_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace dash {

class SparseColumnMatrix {
 public:
  // An empty rows x cols matrix.
  SparseColumnMatrix(int64_t rows, int64_t cols);

  // Compresses a dense matrix, dropping exact zeros.
  static SparseColumnMatrix FromDense(const Matrix& dense);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  // Appends a nonzero to column j; rows must be added in increasing order
  // per column (checked in debug builds).
  void PushEntry(int64_t j, int64_t row, double value);

  // Number of stored nonzeros in column j / overall.
  int64_t ColumnNnz(int64_t j) const {
    return static_cast<int64_t>(col_entries_[static_cast<size_t>(j)].size());
  }
  int64_t TotalNnz() const;

  // Fraction of entries stored (0 for an empty matrix).
  double Density() const;

  // X_j . y  for a dense y of length rows().
  double ColumnDot(int64_t j, const Vector& y) const;

  // X_j . X_j.
  double ColumnSquaredNorm(int64_t j) const;

  // Qᵀ X_j: accumulates value * Q.row(i) over the column's nonzeros.
  // q must have rows() rows; the result has q.cols() entries.
  Vector ColumnProject(int64_t j, const Matrix& q) const;

  // Expands to dense (tests and small examples).
  Matrix ToDense() const;

  struct Entry {
    int64_t row;
    double value;
  };
  const std::vector<Entry>& ColumnEntries(int64_t j) const {
    return col_entries_[static_cast<size_t>(j)];
  }

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<std::vector<Entry>> col_entries_;
};

}  // namespace dash

#endif  // DASH_LINALG_SPARSE_MATRIX_H_
