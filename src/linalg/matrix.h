// Dense row-major matrix and BLAS-2/3 style kernels.
//
// Matrix stores doubles contiguously by row. Shapes use int64_t; element
// access is DASH_DCHECK-bounds-checked. The kernels here are the ones the
// association scan, QR, and OLS reference need; they are written for
// clarity with cache-aware loop orders rather than for peak FLOPS.

#ifndef DASH_LINALG_MATRIX_H_
#define DASH_LINALG_MATRIX_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "linalg/vector_ops.h"
#include "util/check.h"

namespace dash {

class Matrix {
 public:
  // An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  // A rows x cols matrix of zeros.
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {
    DASH_CHECK_GE(rows, 0);
    DASH_CHECK_GE(cols, 0);
  }

  // Builds from nested initializer lists: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  // The n x n identity.
  static Matrix Identity(int64_t n);

  // A matrix whose single column is `v`.
  static Matrix ColumnVector(const Vector& v);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(int64_t i, int64_t j) {
    DASH_DCHECK(0 <= i && i < rows_ && 0 <= j && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  double operator()(int64_t i, int64_t j) const {
    DASH_DCHECK(0 <= i && i < rows_ && 0 <= j && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  // Raw row-major storage.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  // Pointer to the start of row i.
  double* row_data(int64_t i) { return data_.data() + i * cols_; }
  const double* row_data(int64_t i) const { return data_.data() + i * cols_; }

  // Copies of a row / column.
  Vector Row(int64_t i) const;
  Vector Col(int64_t j) const;

  // Overwrites a row / column.
  void SetRow(int64_t i, const Vector& v);
  void SetCol(int64_t j, const Vector& v);

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

// C = A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);

// C = Aᵀ * B (computed without materializing Aᵀ).
Matrix TransposeMatMul(const Matrix& a, const Matrix& b);

// y = A * x.
Vector MatVec(const Matrix& a, const Vector& x);

// y = Aᵀ * x.
Vector TransposeMatVec(const Matrix& a, const Vector& x);

// Explicit transpose.
Matrix Transpose(const Matrix& a);

// Element-wise sum / difference; shapes must match.
Matrix MatAdd(const Matrix& a, const Matrix& b);
Matrix MatSub(const Matrix& a, const Matrix& b);

// B = alpha * A.
Matrix MatScale(double alpha, const Matrix& a);

// Stacks blocks vertically; all must share a column count.
Matrix VStack(const std::vector<Matrix>& blocks);

// Copies rows [row_begin, row_end) into a new matrix.
Matrix SliceRows(const Matrix& a, int64_t row_begin, int64_t row_end);

// Copies columns [col_begin, col_end) into a new matrix.
Matrix SliceCols(const Matrix& a, int64_t col_begin, int64_t col_end);

// Appends a column of ones (intercept covariate).
Matrix WithInterceptColumn(const Matrix& a);

// sqrt(sum of squared entries).
double FrobeniusNorm(const Matrix& a);

// max |a_ij - b_ij|; shapes must match.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

// Centers every column to mean zero, in place.
void CenterColumnsInPlace(Matrix* a);

}  // namespace dash

#endif  // DASH_LINALG_MATRIX_H_
