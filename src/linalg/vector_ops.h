// Dense vector primitives.
//
// The library represents vectors as std::vector<double> (alias
// dash::Vector) and provides the handful of BLAS-1 style kernels the
// association scan needs. All functions DASH_CHECK dimension agreement.
//
// The raw-pointer forms take DASH_RESTRICT-qualified operands so
// GCC/Clang can prove non-aliasing and auto-vectorize the loops; the
// Vector overloads forward to them. Reductions (Dot, SquaredNorm) keep
// strict left-to-right summation order — the bit-identity contract of
// the secure scan forbids reassociating them.

#ifndef DASH_LINALG_VECTOR_OPS_H_
#define DASH_LINALG_VECTOR_OPS_H_

#include <cstdint>
#include <vector>

// Non-aliasing qualifier for kernel pointer arguments.
#if defined(__GNUC__) || defined(__clang__)
#define DASH_RESTRICT __restrict__
#else
#define DASH_RESTRICT
#endif

namespace dash {

using Vector = std::vector<double>;

// Raw-pointer kernels over n contiguous doubles. Operands must not
// alias (the DASH_RESTRICT promise the compiler vectorizes against).
double DotN(const double* DASH_RESTRICT a, const double* DASH_RESTRICT b,
            int64_t n);
double SquaredNormN(const double* DASH_RESTRICT v, int64_t n);
void AxpyN(double alpha, const double* DASH_RESTRICT x,
           double* DASH_RESTRICT y, int64_t n);

// Dot product a.b; requires equal sizes.
double Dot(const Vector& a, const Vector& b);

// Squared Euclidean norm v.v (the paper's `dot(x)` helper).
double SquaredNorm(const Vector& v);

// Euclidean norm.
double Norm(const Vector& v);

// y += alpha * x.
void Axpy(double alpha, const Vector& x, Vector* y);

// v *= alpha.
void Scale(double alpha, Vector* v);

// Element-wise a + b / a - b.
Vector Add(const Vector& a, const Vector& b);
Vector Sub(const Vector& a, const Vector& b);

// Arithmetic mean; requires non-empty input.
double Mean(const Vector& v);

// Subtracts the mean in place (the paper's intercept-as-centering trick).
void CenterInPlace(Vector* v);

// Largest |a[i] - b[i]|; requires equal sizes.
double MaxAbsDiff(const Vector& a, const Vector& b);

// Largest |v[i]|.
double MaxAbs(const Vector& v);

}  // namespace dash

#endif  // DASH_LINALG_VECTOR_OPS_H_
