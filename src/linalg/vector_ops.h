// Dense vector primitives.
//
// The library represents vectors as std::vector<double> (alias
// dash::Vector) and provides the handful of BLAS-1 style kernels the
// association scan needs. All functions DASH_CHECK dimension agreement.

#ifndef DASH_LINALG_VECTOR_OPS_H_
#define DASH_LINALG_VECTOR_OPS_H_

#include <cstdint>
#include <vector>

namespace dash {

using Vector = std::vector<double>;

// Dot product a.b; requires equal sizes.
double Dot(const Vector& a, const Vector& b);

// Squared Euclidean norm v.v (the paper's `dot(x)` helper).
double SquaredNorm(const Vector& v);

// Euclidean norm.
double Norm(const Vector& v);

// y += alpha * x.
void Axpy(double alpha, const Vector& x, Vector* y);

// v *= alpha.
void Scale(double alpha, Vector* v);

// Element-wise a + b / a - b.
Vector Add(const Vector& a, const Vector& b);
Vector Sub(const Vector& a, const Vector& b);

// Arithmetic mean; requires non-empty input.
double Mean(const Vector& v);

// Subtracts the mean in place (the paper's intercept-as-centering trick).
void CenterInPlace(Vector* v);

// Largest |a[i] - b[i]|; requires equal sizes.
double MaxAbsDiff(const Vector& a, const Vector& b);

// Largest |v[i]|.
double MaxAbs(const Vector& v);

}  // namespace dash

#endif  // DASH_LINALG_VECTOR_OPS_H_
