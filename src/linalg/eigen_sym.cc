#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dash {

Result<SymmetricEigen> JacobiEigenSymmetric(const Matrix& a_in) {
  DASH_CHECK_EQ(a_in.rows(), a_in.cols());
  const int64_t n = a_in.rows();
  // Symmetrize to absorb roundoff in the caller's Gram computations.
  Matrix a(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) a(i, j) = 0.5 * (a_in(i, j) + a_in(j, i));
  }
  Matrix v = Matrix::Identity(n);

  constexpr int kMaxSweeps = 100;
  constexpr double kTol = 1e-14;

  double off = 0.0;
  double diag_norm = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    diag_norm += a(i, i) * a(i, i);
    for (int64_t j = i + 1; j < n; ++j) off += 2.0 * a(i, j) * a(i, j);
  }
  const double scale = std::sqrt(off + diag_norm) + 1e-300;

  int sweep = 0;
  while (std::sqrt(off) > kTol * scale && sweep < kMaxSweeps) {
    ++sweep;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (int64_t i = 0; i < n; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (int64_t j = 0; j < n; ++j) {
          const double apj = a(p, j);
          const double aqj = a(q, j);
          a(p, j) = c * apj - s * aqj;
          a(q, j) = s * apj + c * aqj;
        }
        for (int64_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
    off = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) off += 2.0 * a(i, j) * a(i, j);
    }
  }
  if (sweep >= kMaxSweeps && std::sqrt(off) > kTol * scale * 1e3) {
    return InternalError("Jacobi eigensolver failed to converge");
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns to match.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&a](int64_t x, int64_t y) { return a(x, x) < a(y, y); });

  SymmetricEigen out;
  out.eigenvalues.resize(static_cast<size_t>(n));
  out.eigenvectors = Matrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    out.eigenvalues[static_cast<size_t>(j)] = a(src, src);
    for (int64_t i = 0; i < n; ++i) out.eigenvectors(i, j) = v(i, src);
  }
  return out;
}

}  // namespace dash
