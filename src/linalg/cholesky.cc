#include "linalg/cholesky.h"

#include <cmath>
#include <string>

#include "linalg/qr.h"

namespace dash {

Result<Matrix> Cholesky(const Matrix& a) {
  DASH_CHECK_EQ(a.rows(), a.cols());
  const int64_t n = a.rows();
  Matrix l(n, n);
  for (int64_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int64_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0) {
      return FailedPreconditionError(
          "matrix is not positive definite at pivot " + std::to_string(j));
    }
    l(j, j) = std::sqrt(d);
    for (int64_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int64_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  DASH_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  DASH_ASSIGN_OR_RETURN(Vector y, SolveLowerTriangular(l, b));
  return SolveUpperTriangular(Transpose(l), y);
}

}  // namespace dash
