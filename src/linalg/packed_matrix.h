// 2-bit packed genotype matrix (paper §2, claim C6).
//
// Hard-called genotypes take values {0, 1, 2}; PackedGenotypeMatrix
// stores them 4-per-byte as 2-bit codes, column-major, 32 genotypes per
// uint64 word. Code 3 marks a missing call. The packed form is what the
// popcount scan kernels (src/core/kernels/) consume: per 64-bit word
// they derive heterozygote / homozygote / missing / nonzero masks with
// three bit operations each, count dosage classes with popcount, and
// touch y / Q rows only at nonzero genotypes — so the flop count of the
// sufficient-statistics scan is proportional to sparsity instead of N.
//
// Word layout: column j occupies words_per_column() consecutive words;
// row i lives in word i / 32 at bit offset 2 * (i % 32) (little-endian
// within the word). Rows beyond rows() in the final word are always
// code 0, so kernels may consume whole words without a tail guard.
//
// Missing semantics: a missing call (code 3) contributes nothing to any
// statistic — identical to dosage 0. Callers that want mean imputation
// or any other policy must apply it before packing (data/missing_data);
// the kernels themselves never invent values.

#ifndef DASH_LINALG_PACKED_MATRIX_H_
#define DASH_LINALG_PACKED_MATRIX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"

namespace dash {

class PackedGenotypeMatrix {
 public:
  static constexpr uint8_t kMissingCode = 3;
  static constexpr int64_t kRowsPerWord = 32;

  // An all-zero (all reference-homozygote) rows x cols matrix.
  PackedGenotypeMatrix(int64_t rows, int64_t cols);

  // True iff v is a hard-call dosage representable in 2 bits.
  static bool IsDosageValue(double v) {
    return v == 0.0 || v == 1.0 || v == 2.0;
  }

  // True iff every entry of `dense` is 0.0, 1.0 or 2.0.
  static bool IsDosageMatrix(const Matrix& dense);

  // Packs a dense dosage matrix; nullopt when any entry is not {0,1,2}.
  static std::optional<PackedGenotypeMatrix> TryFromDense(const Matrix& dense);

  // Packs the nonzeros of a sparse dosage matrix; nullopt when any
  // stored value is not 1.0 or 2.0 (an explicit stored 0 is fine).
  static std::optional<PackedGenotypeMatrix> TryFromSparse(
      const SparseColumnMatrix& sparse);

  // CHECK-failing forms of the converters above, for callers that have
  // already validated their data.
  static PackedGenotypeMatrix FromDense(const Matrix& dense);
  static PackedGenotypeMatrix FromSparse(const SparseColumnMatrix& sparse);

  // Expands back to dense doubles; missing calls expand to 0.0 (the
  // contribution they make to every statistic).
  Matrix ToDense() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t words_per_column() const { return words_per_column_; }

  // The packed words of column j (words_per_column() of them).
  const uint64_t* column_words(int64_t j) const {
    DASH_DCHECK(0 <= j && j < cols_);
    return words_.data() + static_cast<size_t>(j * words_per_column_);
  }
  uint64_t* mutable_column_words(int64_t j) {
    DASH_DCHECK(0 <= j && j < cols_);
    return words_.data() + static_cast<size_t>(j * words_per_column_);
  }

  // Single-element access; code is one of {0, 1, 2, kMissingCode}.
  uint8_t Code(int64_t i, int64_t j) const {
    DASH_DCHECK(0 <= i && i < rows_ && 0 <= j && j < cols_);
    const uint64_t word =
        column_words(j)[static_cast<size_t>(i / kRowsPerWord)];
    return static_cast<uint8_t>((word >> (2 * (i % kRowsPerWord))) & 3u);
  }
  void Set(int64_t i, int64_t j, uint8_t code);

  // Resets every entry to code 0 without reallocating (kernel scratch
  // reuse when packing one column block at a time).
  void Clear();

  // Per-column dosage-class counts, derived by popcount over the packed
  // words (O(rows / 32); nothing is cached, so the counts can never go
  // stale through Set or mutable_column_words).
  struct ColumnCounts {
    int64_t het = 0;      // code 1
    int64_t hom = 0;      // code 2
    int64_t missing = 0;  // code 3
    int64_t nnz() const { return het + hom; }
  };
  ColumnCounts Counts(int64_t j) const;

  // Stored nonzero (dosage 1 or 2) calls in column j / overall, and the
  // nonzero fraction (0 for an empty matrix). Missing calls are not
  // nonzeros: they contribute nothing to any statistic.
  int64_t ColumnNnz(int64_t j) const { return Counts(j).nnz(); }
  int64_t TotalNnz() const;
  double Density() const;

 private:
  int64_t rows_;
  int64_t cols_;
  int64_t words_per_column_;
  std::vector<uint64_t> words_;
};

}  // namespace dash

#endif  // DASH_LINALG_PACKED_MATRIX_H_
