// Missing-genotype handling.
//
// Real cohort data has missing calls. The standard GWAS practice for
// linear-algebra scan paths (PLINK, Hail) is per-variant mean dosage
// imputation, which preserves the variant's mean and attenuates rather
// than biases the test. In the multi-party setting the *global* column
// means are needed, and they are themselves just sums — so they fit the
// same secure-aggregation machinery (core/imputation.h).
//
// Missing entries are represented as NaN.

#ifndef DASH_DATA_MISSING_DATA_H_
#define DASH_DATA_MISSING_DATA_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "util/random.h"

namespace dash {

// Per-column sums and non-missing counts, skipping NaNs.
struct ColumnMoments {
  Vector sums;    // length M
  Vector counts;  // length M (as doubles so they aggregate like the rest)
};
ColumnMoments ColumnSumsAndCounts(const Matrix& x);

// Replaces NaNs in column j with means[j], in place. means must have
// one entry per column.
void ImputeWithMeans(const Vector& means, Matrix* x);

// Number of NaN entries.
int64_t CountMissing(const Matrix& x);

// Test/bench helper: marks each entry missing independently with
// probability `rate`.
void InjectMissingness(double rate, Rng* rng, Matrix* x);

}  // namespace dash

#endif  // DASH_DATA_MISSING_DATA_H_
