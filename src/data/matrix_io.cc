#include "data/matrix_io.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace dash {
namespace {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Result<Matrix> ReadMatrixCsv(const std::string& path) {
  DASH_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  std::istringstream in(text);
  std::string line;
  std::vector<Vector> rows;
  int64_t cols = -1;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    const auto fields = StrSplit(std::string(stripped), ',');
    if (cols < 0) {
      cols = static_cast<int64_t>(fields.size());
    } else if (static_cast<int64_t>(fields.size()) != cols) {
      return InvalidArgumentError(path + ":" + std::to_string(line_no) +
                                  ": expected " + std::to_string(cols) +
                                  " fields, got " +
                                  std::to_string(fields.size()));
    }
    Vector row(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      auto value = ParseDouble(fields[i]);
      if (!value.ok()) {
        return InvalidArgumentError(path + ":" + std::to_string(line_no) +
                                    ": " + value.status().message());
      }
      row[i] = value.value();
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return InvalidArgumentError(path + ": empty matrix file");
  Matrix m(static_cast<int64_t>(rows.size()), cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      m(static_cast<int64_t>(i), j) = rows[i][static_cast<size_t>(j)];
    }
  }
  return m;
}

Result<Vector> ReadVectorCsv(const std::string& path) {
  DASH_ASSIGN_OR_RETURN(Matrix m, ReadMatrixCsv(path));
  if (m.cols() != 1) {
    return InvalidArgumentError(path + ": expected a single column, got " +
                                std::to_string(m.cols()));
  }
  return m.Col(0);
}

Status WriteMatrixCsv(const Matrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return IoError("cannot open '" + path + "' for writing");
  for (int64_t i = 0; i < m.rows(); ++i) {
    for (int64_t j = 0; j < m.cols(); ++j) {
      if (j > 0) out << ',';
      out << DoubleToString(m(i, j));
    }
    out << '\n';
  }
  if (!out) return IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Status WriteVectorCsv(const Vector& v, const std::string& path) {
  return WriteMatrixCsv(Matrix::ColumnVector(v), path);
}

Result<PartyData> ReadPartyCsv(const std::string& x_path,
                               const std::string& y_path,
                               const std::string& c_path) {
  PartyData p;
  DASH_ASSIGN_OR_RETURN(p.x, ReadMatrixCsv(x_path));
  DASH_ASSIGN_OR_RETURN(p.y, ReadVectorCsv(y_path));
  if (!c_path.empty()) {
    DASH_ASSIGN_OR_RETURN(p.c, ReadMatrixCsv(c_path));
  } else {
    p.c = Matrix(p.x.rows(), 0);
  }
  const int64_t n = p.x.rows();
  if (static_cast<int64_t>(p.y.size()) != n || p.c.rows() != n) {
    return InvalidArgumentError("party files disagree on sample count (x: " +
                                std::to_string(n) + ", y: " +
                                std::to_string(p.y.size()) + ", c: " +
                                std::to_string(p.c.rows()) + ")");
  }
  return p;
}

}  // namespace dash
