// Synthetic genotype and Gaussian design matrices.
//
// The paper's target workload is GWAS: N samples by M variants, each
// variant an additive dosage in {0, 1, 2} drawn under Hardy-Weinberg
// equilibrium at a variant-specific minor-allele frequency (MAF). Low
// MAF makes columns sparse, which is what the sparse scan path (E6)
// exploits. Gaussian matrices reproduce the paper's §4 rnorm demo.

#ifndef DASH_DATA_GENOTYPE_GENERATOR_H_
#define DASH_DATA_GENOTYPE_GENERATOR_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "util/random.h"

namespace dash {

struct GenotypeOptions {
  int64_t num_samples = 0;
  int64_t num_variants = 0;
  // Per-variant MAF is drawn uniformly from [maf_min, maf_max].
  double maf_min = 0.05;
  double maf_max = 0.5;
  uint64_t seed = 1;
};

// Dense dosage matrix (entries 0/1/2). The per-variant MAFs are written
// to *mafs when non-null.
Matrix GenerateGenotypes(const GenotypeOptions& options, Vector* mafs = nullptr);

// Same distribution, stored sparse (zeros dropped). With rare variants
// the density is roughly 2 * average MAF.
SparseColumnMatrix GenerateSparseGenotypes(const GenotypeOptions& options,
                                           Vector* mafs = nullptr);

// N x M matrix of standard normals (the paper's matrix(rnorm(...), N, M)).
Matrix GaussianMatrix(int64_t rows, int64_t cols, Rng* rng);

// Length-n vector of standard normals.
Vector GaussianVector(int64_t n, Rng* rng);

}  // namespace dash

#endif  // DASH_DATA_GENOTYPE_GENERATOR_H_
