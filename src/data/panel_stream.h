// Out-of-core packed study format and panel streaming (DESIGN.md §15).
//
// A scan over a biobank-scale X cannot assume the genotype matrix fits
// in RAM. This module gives the core scan an out-of-core data path:
//
//   - DASHPACK ("DASHPK01"), an on-disk packed study: a checksummed
//     header, the RAM-resident small factors (y and the N x K covariate
//     block C — those two stay in memory by design; only X streams),
//     and the 2-bit packed genotype panel blocks, one block per row
//     panel of kStudyPanelRows rows, each with its own FNV-1a checksum.
//     Panel p of the file is exactly the word image of rows
//     [p*kStudyPanelRows, ...) of the full PackedGenotypeMatrix:
//     kStudyPanelRows is a multiple of PackedGenotypeMatrix::kRowsPerWord,
//     so panel slices fall on word boundaries and the streamed kernels
//     consume the same words the in-memory kernel would.
//
//   - PanelSource, the abstraction the streaming scan kernel consumes:
//     "give me panel p as a PackedGenotypeMatrix". PackedStudyReader
//     serves panels from a DASHPACK file (pread-sized chunk reads, or
//     one mmap of the whole file); InMemoryPanelSource slices an
//     in-memory matrix (the bit-identity oracle in tests).
//
//   - PanelPrefetcher, a double-buffered background reader that
//     overlaps disk I/O with kernel compute the same way
//     scan_pipeline.h overlaps compute with communication: while the
//     scan folds panel p into its accumulators, the I/O thread is
//     already filling the other buffer with panel p+1.
//
// Every multi-byte field is stored in the host's native byte order
// (little-endian on every supported target); the format is an on-disk
// cache, not an interchange format.

#ifndef DASH_DATA_PANEL_STREAM_H_
#define DASH_DATA_PANEL_STREAM_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "linalg/matrix.h"
#include "linalg/packed_matrix.h"
#include "linalg/vector_ops.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dash {

// Rows per on-disk panel block. Must equal the core kernels' row-panel
// granularity (kStatsRowPanel) so a streamed sweep spills its
// accumulators at exactly the row boundaries the in-memory sweep does —
// that alignment is what makes streamed results bit-identical
// (core/streaming_stats.cc static_asserts the two constants agree).
inline constexpr int64_t kStudyPanelRows = 256;

// FNV-1a over raw bytes; the same parameters as core's WireChecksum so
// checksums of a panel's word image are comparable across layers.
uint64_t Fnv1aBytes(const void* data, size_t len,
                    uint64_t h = 1469598103934665603ULL);

// Atomic durable small-file write: the bytes land under `path` via
// tmp-file write + fsync + rename + directory fsync, so a crash at any
// point leaves either the old file or the complete new one — never a
// torn mix. The checkpoint layer (core/scan_checkpoint.h) builds on it.
Status AtomicWriteFile(const std::string& path, const void* data, size_t len);

// --- PanelSource ------------------------------------------------------

// A study whose genotype matrix is consumed one row panel at a time.
// Panels partition the rows: panel p covers rows
// [p * kStudyPanelRows, min(n, (p+1) * kStudyPanelRows)).
class PanelSource {
 public:
  virtual ~PanelSource() = default;

  virtual int64_t num_samples() const = 0;
  virtual int64_t num_variants() const = 0;

  // Content fingerprint of the study (dimensions + data). Checkpoints
  // are keyed by it, so a checkpoint written against one study can
  // never be resumed against another.
  virtual uint64_t fingerprint() const = 0;

  // Fills `out` with panel p (resizing it if needed). Implementations
  // validate integrity where they can (PackedStudyReader verifies the
  // stored panel checksum) and return DataLoss / Io errors on bad or
  // short data. Thread-compatible: one panel read at a time per source.
  virtual Status ReadPanel(int64_t panel, PackedGenotypeMatrix* out) = 0;

  int64_t num_panels() const {
    const int64_t n = num_samples();
    return (n + kStudyPanelRows - 1) / kStudyPanelRows;
  }
  int64_t panel_begin_row(int64_t panel) const {
    return panel * kStudyPanelRows;
  }
  int64_t panel_rows(int64_t panel) const {
    const int64_t begin = panel_begin_row(panel);
    const int64_t n = num_samples();
    return begin >= n ? 0 : std::min<int64_t>(kStudyPanelRows, n - begin);
  }
};

// --- DASHPACK writer --------------------------------------------------

// Writes path as a DASHPACK study: x packed genotypes, y phenotype,
// c covariates (n x k, row-major; k may be 0). `tag` is a free-form
// caller identifier folded into the fingerprint (cohort hash, data
// seed). Durable on success: data and containing directory are fsynced
// behind an atomic tmp-write + rename, so a crashed writer never leaves
// a half-written file under the final name.
Status WritePackedStudy(const std::string& path, const PackedGenotypeMatrix& x,
                        const Vector& y, const Matrix& c, uint64_t tag = 0);

// --- DASHPACK reader --------------------------------------------------

enum class StudyReadMode {
  kChunked,  // pread one panel block per ReadPanel call
  kMmap,     // map the whole file once; ReadPanel copies out of the map
};

class PackedStudyReader final : public PanelSource {
 public:
  // Opens and fully validates the header (magic, version, dimension
  // bounds, header checksum, exact file size) and the y/C block
  // checksum; loads y and C into RAM. Panel payloads are validated
  // lazily, per ReadPanel.
  static Result<std::unique_ptr<PackedStudyReader>> Open(
      const std::string& path, StudyReadMode mode = StudyReadMode::kChunked);

  ~PackedStudyReader() override;
  PackedStudyReader(const PackedStudyReader&) = delete;
  PackedStudyReader& operator=(const PackedStudyReader&) = delete;

  int64_t num_samples() const override { return n_; }
  int64_t num_variants() const override { return m_; }
  int64_t num_covariates() const { return k_; }
  uint64_t tag() const { return tag_; }
  uint64_t fingerprint() const override { return fingerprint_; }
  StudyReadMode mode() const { return mode_; }

  // The RAM-resident factors (loaded at Open).
  const Vector& phenotype() const { return y_; }
  const Matrix& covariates() const { return c_; }

  Status ReadPanel(int64_t panel, PackedGenotypeMatrix* out) override;

 private:
  PackedStudyReader() = default;

  int fd_ = -1;
  StudyReadMode mode_ = StudyReadMode::kChunked;
  const unsigned char* map_ = nullptr;  // kMmap only
  size_t map_len_ = 0;
  std::string path_;

  int64_t n_ = 0;
  int64_t m_ = 0;
  int64_t k_ = 0;
  uint64_t tag_ = 0;
  uint64_t fingerprint_ = 0;
  Vector y_;
  Matrix c_;
};

// --- In-memory source -------------------------------------------------

// Slices panels out of a resident PackedGenotypeMatrix. The streamed
// oracle for bit-identity tests, and the path that lets the streaming
// scan loop run against in-RAM data (checkpointing without a file).
class InMemoryPanelSource final : public PanelSource {
 public:
  // Borrows x (and y/c for the fingerprint); they must outlive the
  // source. `tag` as in WritePackedStudy, so the in-memory and on-disk
  // fingerprints of the same study agree.
  InMemoryPanelSource(const PackedGenotypeMatrix& x, const Vector& y,
                      const Matrix& c, uint64_t tag = 0);

  int64_t num_samples() const override { return x_->rows(); }
  int64_t num_variants() const override { return x_->cols(); }
  uint64_t fingerprint() const override { return fingerprint_; }

  Status ReadPanel(int64_t panel, PackedGenotypeMatrix* out) override;

 private:
  const PackedGenotypeMatrix* x_;
  uint64_t fingerprint_ = 0;
};

// Fingerprint of a study's content as both sources compute it, exposed
// so checkpoint tooling can derive it without constructing a source.
uint64_t StudyFingerprint(const PackedGenotypeMatrix& x, const Vector& y,
                          const Matrix& c, uint64_t tag);

// --- Prefetcher -------------------------------------------------------

// Double-buffered read-ahead over a PanelSource: a background thread
// keeps up to two panels decoded while the consumer folds the previous
// one into its accumulators, hiding disk latency behind kernel compute
// (the I/O analogue of scan_pipeline.h's compute/communication
// overlap). Panels are consumed strictly in order, first_panel first —
// exactly what the streaming scan loop wants for checkpoint/resume.
class PanelPrefetcher {
 public:
  // Starts the I/O thread; panels [first_panel, source->num_panels())
  // will be served by successive Next() calls. `source` must outlive
  // the prefetcher and must not be read by anyone else meanwhile.
  explicit PanelPrefetcher(PanelSource* source, int64_t first_panel = 0);

  // Joins the I/O thread (unblocking it if the consumer stopped early).
  ~PanelPrefetcher();
  PanelPrefetcher(const PanelPrefetcher&) = delete;
  PanelPrefetcher& operator=(const PanelPrefetcher&) = delete;

  // The next panel in order, or the source's error for it. The pointer
  // stays valid until the following Next() call (the slot is recycled
  // then). Calling Next() after the last panel is a CHECK failure.
  Result<const PackedGenotypeMatrix*> Next();

  // Index of the panel the next Next() call returns.
  int64_t next_panel() const { return next_consume_; }

 private:
  void IoLoop();

  PanelSource* const source_;
  const int64_t end_panel_;
  const int64_t first_panel_;
  int64_t next_consume_;  // consumer-thread only

  // Slot buffers are handed off between the I/O thread and the consumer
  // through slot_full_ (mutex release/acquire orders the payload): the
  // I/O thread writes buffers_[s] only while slot_full_[s] is false and
  // the consumer reads it only after observing true, so the buffers
  // themselves need no lock.
  PackedGenotypeMatrix buffers_[2] = {{0, 0}, {0, 0}};
  Mutex mu_{LockRank::kPanelPrefetch};
  CondVar cv_;
  bool slot_full_[2] DASH_GUARDED_BY(mu_) = {false, false};
  int64_t slot_panel_[2] DASH_GUARDED_BY(mu_) = {-1, -1};
  Status slot_status_[2] DASH_GUARDED_BY(mu_);  // default-OK
  Status io_failed_ DASH_GUARDED_BY(mu_);       // sticky first I/O error
  bool stopping_ DASH_GUARDED_BY(mu_) = false;
  std::thread io_thread_;
};

}  // namespace dash

#endif  // DASH_DATA_PANEL_STREAM_H_
