// Workload presets shared by tests, benches, and examples.
//
// Three families:
//  * MakeRDemoWorkload     — the paper's §4 demo: all-Gaussian data for
//    parties of sizes (1000, 2000, 1500), M transient covariates, K=3.
//  * MakeGwasWorkload      — HWE genotypes, intercept + Gaussian
//    covariates, a planted set of causal variants.
//  * MakeConfoundedWorkload — a Simpson's-paradox construction: the
//    tested variant's allele frequency and the phenotype mean both rise
//    across parties, so a pooled analysis that ignores party structure
//    finds a spurious association while the within-party effect is the
//    configured (e.g. zero) value. Used by experiment E5.

#ifndef DASH_DATA_WORKLOADS_H_
#define DASH_DATA_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "data/party_split.h"
#include "util/status.h"

namespace dash {

struct ScanWorkload {
  std::vector<PartyData> parties;
  // Ground truth (empty when the workload is pure null, like the R demo).
  std::vector<int64_t> causal_variants;
  Vector effect_sizes;

  int64_t num_variants() const {
    return parties.empty() ? 0 : parties[0].x.cols();
  }
  int64_t num_covariates() const {
    return parties.empty() ? 0 : parties[0].c.cols();
  }
  int64_t total_samples() const {
    int64_t n = 0;
    for (const auto& p : parties) n += p.num_samples();
    return n;
  }
};

struct RDemoOptions {
  int64_t n1 = 1000;
  int64_t n2 = 2000;
  int64_t n3 = 1500;
  int64_t num_variants = 10000;
  int64_t num_covariates = 3;
  uint64_t seed = 0;
};

// The §4 demo (our deterministic generator stands in for R's rnorm;
// seed 0 is the paper's set.seed(0)).
ScanWorkload MakeRDemoWorkload(const RDemoOptions& options = {});

struct GwasWorkloadOptions {
  std::vector<int64_t> party_sizes = {1000, 2000, 1500};
  int64_t num_variants = 5000;
  int64_t num_covariates = 4;  // includes the intercept column
  int64_t num_causal = 10;
  double effect_size = 0.15;
  double maf_min = 0.05;
  double maf_max = 0.5;
  double noise_sd = 1.0;
  uint64_t seed = 42;
};

// GWAS-shaped workload with planted causal variants (evenly spaced).
Result<ScanWorkload> MakeGwasWorkload(const GwasWorkloadOptions& options);

struct ConfoundedWorkloadOptions {
  std::vector<int64_t> party_sizes = {400, 400, 400};
  int64_t num_variants = 100;
  // True within-party effect of variant 0 (0 = pure Simpson's paradox).
  double within_effect = 0.0;
  // Phenotype mean shift added per party index.
  double party_shift = 1.5;
  // Variant 0's MAF for party p is maf_base + p * maf_gradient.
  double maf_base = 0.10;
  double maf_gradient = 0.15;
  double noise_sd = 1.0;
  uint64_t seed = 99;
};

// Party-confounded workload; covariates are a lone intercept, so only
// per-party handling (centering / batch indicators) removes the
// confounding.
Result<ScanWorkload> MakeConfoundedWorkload(
    const ConfoundedWorkloadOptions& options);

}  // namespace dash

#endif  // DASH_DATA_WORKLOADS_H_
