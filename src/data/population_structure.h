// Ancestry-structured genotypes under the Balding-Nichols model.
//
// Subpopulation allele frequencies diverge from an ancestral frequency p
// as Beta(p(1-F)/F, (1-p)(1-F)/F) with Fst parameter F. When each party
// enrolls from a different subpopulation and the phenotype carries a
// subpopulation-level shift, every differentiated variant becomes
// spuriously associated — the confounding that principal components (or
// in the secure setting, the Cho-Wu-Berger secure PCA the paper builds
// on) are added to C to absorb. Used by the `population_structure`
// example and the E11 bench.

#ifndef DASH_DATA_POPULATION_STRUCTURE_H_
#define DASH_DATA_POPULATION_STRUCTURE_H_

#include <cstdint>
#include <vector>

#include "data/workloads.h"
#include "util/status.h"

namespace dash {

struct StructuredPopulationOptions {
  // One party per subpopulation.
  std::vector<int64_t> subpop_sizes = {300, 300, 300};
  int64_t num_variants = 1000;
  // Wright's fixation index: divergence between subpopulations.
  double fst = 0.05;
  // Ancestral MAF range.
  double maf_min = 0.1;
  double maf_max = 0.5;
  // Phenotype mean shift added per subpopulation index (the confounder).
  double pheno_shift = 0.6;
  // Optional true effect on variant 0 (0 = pure confounding null).
  double causal_effect = 0.0;
  double noise_sd = 1.0;
  uint64_t seed = 404;
};

// Builds the workload; parties carry an intercept-only C so the
// structure is unadjusted until the caller appends PCs.
Result<ScanWorkload> MakeStructuredWorkload(
    const StructuredPopulationOptions& options);

// Appends the given per-sample component scores (N_total x k, rows in
// party order) to every party's covariate block.
Result<std::vector<PartyData>> AppendComponentCovariates(
    const std::vector<PartyData>& parties, const Matrix& components);

}  // namespace dash

#endif  // DASH_DATA_POPULATION_STRUCTURE_H_
