// Phenotype simulation: y = X beta + C gamma + noise, with optional
// per-party shifts for heterogeneity/confounding experiments.

#ifndef DASH_DATA_PHENOTYPE_SIMULATOR_H_
#define DASH_DATA_PHENOTYPE_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/random.h"
#include "util/status.h"

namespace dash {

struct PhenotypeOptions {
  // Sparse effect specification: effect_sizes[i] applies to column
  // causal_variants[i] of X. Variants not listed have effect 0.
  std::vector<int64_t> causal_variants;
  Vector effect_sizes;

  // Effects of the permanent covariates (empty = all zero).
  Vector covariate_effects;

  // Residual noise standard deviation.
  double noise_sd = 1.0;

  uint64_t seed = 7;
};

// Simulates y for one design (x, c). Fails on out-of-range causal
// indices or mismatched effect vectors.
Result<Vector> SimulatePhenotype(const Matrix& x, const Matrix& c,
                                 const PhenotypeOptions& options);

}  // namespace dash

#endif  // DASH_DATA_PHENOTYPE_SIMULATOR_H_
