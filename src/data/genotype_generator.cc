#include "data/genotype_generator.h"

#include "util/check.h"

namespace dash {
namespace {

// One HWE dosage draw: Bernoulli(maf) + Bernoulli(maf).
inline double DrawDosage(double maf, Rng* rng) {
  return (rng->Bernoulli(maf) ? 1.0 : 0.0) + (rng->Bernoulli(maf) ? 1.0 : 0.0);
}

void ValidateOptions(const GenotypeOptions& o) {
  DASH_CHECK_GE(o.num_samples, 0);
  DASH_CHECK_GE(o.num_variants, 0);
  DASH_CHECK(0.0 <= o.maf_min && o.maf_min <= o.maf_max && o.maf_max <= 0.5)
      << "invalid MAF range [" << o.maf_min << ", " << o.maf_max << "]";
}

}  // namespace

Matrix GenerateGenotypes(const GenotypeOptions& options, Vector* mafs) {
  ValidateOptions(options);
  Rng rng(options.seed);
  Matrix g(options.num_samples, options.num_variants);
  if (mafs != nullptr) mafs->assign(static_cast<size_t>(options.num_variants), 0.0);
  for (int64_t j = 0; j < options.num_variants; ++j) {
    const double maf = rng.Uniform(options.maf_min, options.maf_max);
    if (mafs != nullptr) (*mafs)[static_cast<size_t>(j)] = maf;
    for (int64_t i = 0; i < options.num_samples; ++i) {
      g(i, j) = DrawDosage(maf, &rng);
    }
  }
  return g;
}

SparseColumnMatrix GenerateSparseGenotypes(const GenotypeOptions& options,
                                           Vector* mafs) {
  ValidateOptions(options);
  Rng rng(options.seed);
  SparseColumnMatrix g(options.num_samples, options.num_variants);
  if (mafs != nullptr) mafs->assign(static_cast<size_t>(options.num_variants), 0.0);
  for (int64_t j = 0; j < options.num_variants; ++j) {
    const double maf = rng.Uniform(options.maf_min, options.maf_max);
    if (mafs != nullptr) (*mafs)[static_cast<size_t>(j)] = maf;
    for (int64_t i = 0; i < options.num_samples; ++i) {
      const double dosage = DrawDosage(maf, &rng);
      if (dosage != 0.0) g.PushEntry(j, i, dosage);
    }
  }
  return g;
}

Matrix GaussianMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Gaussian();
  return m;
}

Vector GaussianVector(int64_t n, Rng* rng) {
  Vector v(static_cast<size_t>(n));
  for (auto& x : v) x = rng->Gaussian();
  return v;
}

}  // namespace dash
