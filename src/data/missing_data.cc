#include "data/missing_data.h"

#include <cmath>

#include "util/check.h"

namespace dash {

ColumnMoments ColumnSumsAndCounts(const Matrix& x) {
  ColumnMoments m;
  m.sums.assign(static_cast<size_t>(x.cols()), 0.0);
  m.counts.assign(static_cast<size_t>(x.cols()), 0.0);
  for (int64_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_data(i);
    for (int64_t j = 0; j < x.cols(); ++j) {
      if (std::isnan(row[j])) continue;
      m.sums[static_cast<size_t>(j)] += row[j];
      m.counts[static_cast<size_t>(j)] += 1.0;
    }
  }
  return m;
}

void ImputeWithMeans(const Vector& means, Matrix* x) {
  DASH_CHECK_EQ(static_cast<int64_t>(means.size()), x->cols());
  for (int64_t i = 0; i < x->rows(); ++i) {
    double* row = x->row_data(i);
    for (int64_t j = 0; j < x->cols(); ++j) {
      if (std::isnan(row[j])) row[j] = means[static_cast<size_t>(j)];
    }
  }
}

int64_t CountMissing(const Matrix& x) {
  int64_t count = 0;
  for (int64_t i = 0; i < x.size(); ++i) count += std::isnan(x.data()[i]);
  return count;
}

void InjectMissingness(double rate, Rng* rng, Matrix* x) {
  DASH_CHECK(rate >= 0.0 && rate <= 1.0);
  for (int64_t i = 0; i < x->size(); ++i) {
    if (rng->Bernoulli(rate)) x->data()[i] = std::nan("");
  }
}

}  // namespace dash
