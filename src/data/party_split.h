// The horizontal partition of a study across parties.
//
// PartyData is the library's central input type: one party's private
// block (X_p, y_p, C_p) of the row-partitioned (X, y, C). SplitRows
// slices a pooled study into parties; PoolParties undoes it (for
// validation against the pooled "primary analysis" only — the secure
// protocols never pool raw data).

#ifndef DASH_DATA_PARTY_SPLIT_H_
#define DASH_DATA_PARTY_SPLIT_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace dash {

struct PartyData {
  Matrix x;  // N_p x M transient covariates
  Vector y;  // N_p responses
  Matrix c;  // N_p x K permanent covariates

  int64_t num_samples() const { return static_cast<int64_t>(y.size()); }
};

// Validates a party set: consistent M and K, matching row counts, and
// each party tall enough for a local QR (N_p >= K >= 1).
Status ValidateParties(const std::vector<PartyData>& parties);

// Slices rows of a pooled study into |counts| parties; counts must sum
// to the row count.
Result<std::vector<PartyData>> SplitRows(const Matrix& x, const Vector& y,
                                         const Matrix& c,
                                         const std::vector<int64_t>& counts);

struct PooledData {
  Matrix x;
  Vector y;
  Matrix c;
};

// Stacks parties back into one study (test/validation use only).
Result<PooledData> PoolParties(const std::vector<PartyData>& parties);

// Centers y and the columns of c and x within each party, in place.
// By Frisch-Waugh this is exactly equivalent to adding one indicator
// covariate per party (batch effects); see the paper's §3 closing note.
void CenterPerParty(std::vector<PartyData>* parties);

}  // namespace dash

#endif  // DASH_DATA_PARTY_SPLIT_H_
