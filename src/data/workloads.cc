#include "data/workloads.h"

#include <string>

#include "data/genotype_generator.h"
#include "data/phenotype_simulator.h"
#include "util/check.h"

namespace dash {

ScanWorkload MakeRDemoWorkload(const RDemoOptions& options) {
  Rng rng(options.seed);
  ScanWorkload w;
  for (const int64_t n : {options.n1, options.n2, options.n3}) {
    PartyData p;
    p.y = GaussianVector(n, &rng);
    p.x = GaussianMatrix(n, options.num_variants, &rng);
    p.c = GaussianMatrix(n, options.num_covariates, &rng);
    w.parties.push_back(std::move(p));
  }
  return w;
}

Result<ScanWorkload> MakeGwasWorkload(const GwasWorkloadOptions& options) {
  if (options.party_sizes.empty()) {
    return InvalidArgumentError("need at least one party");
  }
  if (options.num_covariates < 1) {
    return InvalidArgumentError("need at least the intercept covariate");
  }
  if (options.num_causal > options.num_variants) {
    return InvalidArgumentError("more causal variants than variants");
  }
  int64_t n = 0;
  for (const int64_t s : options.party_sizes) {
    if (s <= options.num_covariates) {
      return InvalidArgumentError(
          "each party needs more samples than covariates");
    }
    n += s;
  }

  GenotypeOptions geno;
  geno.num_samples = n;
  geno.num_variants = options.num_variants;
  geno.maf_min = options.maf_min;
  geno.maf_max = options.maf_max;
  geno.seed = options.seed;
  const Matrix x = GenerateGenotypes(geno);

  Rng rng(options.seed + 0x9e3779b9);
  Matrix c(n, options.num_covariates);
  for (int64_t i = 0; i < n; ++i) {
    c(i, 0) = 1.0;
    for (int64_t j = 1; j < options.num_covariates; ++j) c(i, j) = rng.Gaussian();
  }

  PhenotypeOptions pheno;
  pheno.noise_sd = options.noise_sd;
  pheno.seed = options.seed + 0x1234;
  // Evenly spaced causal variants with alternating-sign effects.
  if (options.num_causal > 0) {
    const int64_t stride = options.num_variants / options.num_causal;
    for (int64_t i = 0; i < options.num_causal; ++i) {
      pheno.causal_variants.push_back(i * stride);
      pheno.effect_sizes.push_back((i % 2 == 0) ? options.effect_size
                                                : -options.effect_size);
    }
  }
  // Mild covariate effects so the projection step has work to do.
  pheno.covariate_effects.assign(static_cast<size_t>(options.num_covariates),
                                 0.0);
  for (int64_t j = 0; j < options.num_covariates; ++j) {
    pheno.covariate_effects[static_cast<size_t>(j)] = 0.3 * rng.Gaussian();
  }
  DASH_ASSIGN_OR_RETURN(Vector y, SimulatePhenotype(x, c, pheno));

  ScanWorkload w;
  DASH_ASSIGN_OR_RETURN(w.parties, SplitRows(x, y, c, options.party_sizes));
  w.causal_variants = pheno.causal_variants;
  w.effect_sizes = pheno.effect_sizes;
  return w;
}

Result<ScanWorkload> MakeConfoundedWorkload(
    const ConfoundedWorkloadOptions& options) {
  if (options.party_sizes.empty()) {
    return InvalidArgumentError("need at least one party");
  }
  const int64_t num_parties = static_cast<int64_t>(options.party_sizes.size());
  const double top_maf =
      options.maf_base + static_cast<double>(num_parties - 1) * options.maf_gradient;
  if (options.maf_base <= 0.0 || top_maf > 0.5) {
    return InvalidArgumentError(
        "confounded MAF gradient leaves [0, 0.5]: base=" +
        std::to_string(options.maf_base) +
        " top=" + std::to_string(top_maf));
  }

  ScanWorkload w;
  Rng rng(options.seed);
  for (int64_t p = 0; p < num_parties; ++p) {
    const int64_t np = options.party_sizes[static_cast<size_t>(p)];
    PartyData pd;
    pd.x = Matrix(np, options.num_variants);
    // Variant 0: the party-graded allele frequency.
    const double maf0 =
        options.maf_base + static_cast<double>(p) * options.maf_gradient;
    for (int64_t i = 0; i < np; ++i) {
      pd.x(i, 0) = (rng.Bernoulli(maf0) ? 1.0 : 0.0) +
                   (rng.Bernoulli(maf0) ? 1.0 : 0.0);
    }
    // Remaining variants: common frequency across parties (null).
    for (int64_t j = 1; j < options.num_variants; ++j) {
      const double maf = rng.Uniform(0.1, 0.5);
      for (int64_t i = 0; i < np; ++i) {
        pd.x(i, j) = (rng.Bernoulli(maf) ? 1.0 : 0.0) +
                     (rng.Bernoulli(maf) ? 1.0 : 0.0);
      }
    }
    // Intercept-only permanent covariates: the confounder (party) is NOT
    // observable inside the pooled design.
    pd.c = Matrix(np, 1);
    for (int64_t i = 0; i < np; ++i) pd.c(i, 0) = 1.0;
    // Phenotype: within-party effect plus the party-level shift.
    pd.y.resize(static_cast<size_t>(np));
    for (int64_t i = 0; i < np; ++i) {
      pd.y[static_cast<size_t>(i)] =
          options.within_effect * pd.x(i, 0) +
          options.party_shift * static_cast<double>(p) +
          rng.Gaussian(0.0, options.noise_sd);
    }
    w.parties.push_back(std::move(pd));
  }
  w.causal_variants = {0};
  w.effect_sizes = {options.within_effect};
  return w;
}

}  // namespace dash
