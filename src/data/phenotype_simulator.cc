#include "data/phenotype_simulator.h"

#include <string>

namespace dash {

Result<Vector> SimulatePhenotype(const Matrix& x, const Matrix& c,
                                 const PhenotypeOptions& options) {
  const int64_t n = x.rows();
  if (c.rows() != n) {
    return InvalidArgumentError("x and c disagree on sample count");
  }
  if (options.causal_variants.size() != options.effect_sizes.size()) {
    return InvalidArgumentError(
        "causal_variants and effect_sizes differ in length");
  }
  if (!options.covariate_effects.empty() &&
      static_cast<int64_t>(options.covariate_effects.size()) != c.cols()) {
    return InvalidArgumentError("covariate_effects must match c's columns");
  }
  if (!(options.noise_sd >= 0.0)) {
    return InvalidArgumentError("noise_sd must be non-negative");
  }

  Vector y(static_cast<size_t>(n), 0.0);
  for (size_t i = 0; i < options.causal_variants.size(); ++i) {
    const int64_t m = options.causal_variants[i];
    if (m < 0 || m >= x.cols()) {
      return OutOfRangeError("causal variant index " + std::to_string(m) +
                             " out of range");
    }
    const double beta = options.effect_sizes[i];
    for (int64_t r = 0; r < n; ++r) y[static_cast<size_t>(r)] += beta * x(r, m);
  }
  if (!options.covariate_effects.empty()) {
    const Vector cg = MatVec(c, options.covariate_effects);
    for (int64_t r = 0; r < n; ++r) y[static_cast<size_t>(r)] += cg[static_cast<size_t>(r)];
  }
  Rng rng(options.seed);
  if (options.noise_sd > 0.0) {
    for (auto& v : y) v += rng.Gaussian(0.0, options.noise_sd);
  }
  return y;
}

}  // namespace dash
