#include "data/population_structure.h"

#include <string>

#include "util/random.h"

namespace dash {

Result<ScanWorkload> MakeStructuredWorkload(
    const StructuredPopulationOptions& options) {
  if (options.subpop_sizes.empty()) {
    return InvalidArgumentError("need at least one subpopulation");
  }
  if (!(options.fst > 0.0 && options.fst < 1.0)) {
    return InvalidArgumentError("Fst must lie in (0, 1)");
  }
  if (!(0.0 < options.maf_min && options.maf_min <= options.maf_max &&
        options.maf_max <= 0.5)) {
    return InvalidArgumentError("invalid ancestral MAF range");
  }

  const int64_t num_pops = static_cast<int64_t>(options.subpop_sizes.size());
  Rng rng(options.seed);
  const double beta_scale = (1.0 - options.fst) / options.fst;

  // Per-variant ancestral frequency, then per-subpopulation divergence.
  std::vector<Vector> subpop_freqs(
      static_cast<size_t>(num_pops),
      Vector(static_cast<size_t>(options.num_variants), 0.0));
  for (int64_t v = 0; v < options.num_variants; ++v) {
    const double p = rng.Uniform(options.maf_min, options.maf_max);
    for (int64_t s = 0; s < num_pops; ++s) {
      double f = rng.Beta(p * beta_scale, (1.0 - p) * beta_scale);
      // Clamp away from fixation so variants stay polymorphic.
      if (f < 0.001) f = 0.001;
      if (f > 0.999) f = 0.999;
      subpop_freqs[static_cast<size_t>(s)][static_cast<size_t>(v)] = f;
    }
  }

  ScanWorkload w;
  for (int64_t s = 0; s < num_pops; ++s) {
    const int64_t n = options.subpop_sizes[static_cast<size_t>(s)];
    PartyData pd;
    pd.x = Matrix(n, options.num_variants);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t v = 0; v < options.num_variants; ++v) {
        const double f = subpop_freqs[static_cast<size_t>(s)][static_cast<size_t>(v)];
        pd.x(i, v) = (rng.Bernoulli(f) ? 1.0 : 0.0) +
                     (rng.Bernoulli(f) ? 1.0 : 0.0);
      }
    }
    pd.c = Matrix(n, 1);
    pd.y.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      pd.c(i, 0) = 1.0;
      pd.y[static_cast<size_t>(i)] =
          options.causal_effect * pd.x(i, 0) +
          options.pheno_shift * static_cast<double>(s) +
          rng.Gaussian(0.0, options.noise_sd);
    }
    w.parties.push_back(std::move(pd));
  }
  if (options.causal_effect != 0.0) {
    w.causal_variants = {0};
    w.effect_sizes = {options.causal_effect};
  }
  return w;
}

Result<std::vector<PartyData>> AppendComponentCovariates(
    const std::vector<PartyData>& parties, const Matrix& components) {
  DASH_RETURN_IF_ERROR(ValidateParties(parties));
  int64_t total = 0;
  for (const auto& p : parties) total += p.num_samples();
  if (components.rows() != total) {
    return InvalidArgumentError(
        "components have " + std::to_string(components.rows()) +
        " rows; parties hold " + std::to_string(total) + " samples");
  }
  std::vector<PartyData> out = parties;
  int64_t row = 0;
  for (auto& p : out) {
    Matrix c(p.num_samples(), p.c.cols() + components.cols());
    for (int64_t i = 0; i < p.num_samples(); ++i) {
      for (int64_t j = 0; j < p.c.cols(); ++j) c(i, j) = p.c(i, j);
      for (int64_t j = 0; j < components.cols(); ++j) {
        c(i, p.c.cols() + j) = components(row + i, j);
      }
    }
    p.c = std::move(c);
    row += p.num_samples();
  }
  return out;
}

}  // namespace dash
