// Numeric matrix/vector file I/O (headerless CSV) and PartyData loading
// — the on-disk interface used by the dash_scan_cli example so each
// institution can run the protocol from its own flat files.

#ifndef DASH_DATA_MATRIX_IO_H_
#define DASH_DATA_MATRIX_IO_H_

#include <string>

#include "data/party_split.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace dash {

// Reads a headerless CSV of doubles; all rows must have equal width.
Result<Matrix> ReadMatrixCsv(const std::string& path);

// Reads one double per line (or a single-column CSV).
Result<Vector> ReadVectorCsv(const std::string& path);

// Writes with round-trip-exact formatting.
Status WriteMatrixCsv(const Matrix& m, const std::string& path);
Status WriteVectorCsv(const Vector& v, const std::string& path);

// Loads one party's block from three files; row counts must agree.
// An empty c_path yields a covariate-free block (K = 0).
Result<PartyData> ReadPartyCsv(const std::string& x_path,
                               const std::string& y_path,
                               const std::string& c_path);

}  // namespace dash

#endif  // DASH_DATA_MATRIX_IO_H_
