#include "data/party_split.h"

#include <string>

namespace dash {

Status ValidateParties(const std::vector<PartyData>& parties) {
  if (parties.empty()) return InvalidArgumentError("no parties given");
  const int64_t m = parties[0].x.cols();
  // K = 0 is permitted: the per-party-centering mode absorbs the
  // intercept(s) into preprocessing, leaving no explicit covariates.
  const int64_t k = parties[0].c.cols();
  for (size_t p = 0; p < parties.size(); ++p) {
    const PartyData& pd = parties[p];
    const std::string who = "party " + std::to_string(p);
    if (pd.x.cols() != m) {
      return InvalidArgumentError(who + " has " + std::to_string(pd.x.cols()) +
                                  " transient covariates; expected " +
                                  std::to_string(m));
    }
    if (pd.c.cols() != k) {
      return InvalidArgumentError(who + " has " + std::to_string(pd.c.cols()) +
                                  " permanent covariates; expected " +
                                  std::to_string(k));
    }
    const int64_t n = pd.num_samples();
    if (pd.x.rows() != n || pd.c.rows() != n) {
      return InvalidArgumentError(who + " has inconsistent row counts");
    }
    if (n < k) {
      return InvalidArgumentError(
          who + " has fewer samples (" + std::to_string(n) +
          ") than permanent covariates (" + std::to_string(k) +
          "); its local QR would be rank deficient");
    }
  }
  return Status::Ok();
}

Result<std::vector<PartyData>> SplitRows(const Matrix& x, const Vector& y,
                                         const Matrix& c,
                                         const std::vector<int64_t>& counts) {
  const int64_t n = x.rows();
  if (static_cast<int64_t>(y.size()) != n || c.rows() != n) {
    return InvalidArgumentError("x, y, c disagree on sample count");
  }
  int64_t total = 0;
  for (const int64_t cnt : counts) {
    if (cnt < 0) return InvalidArgumentError("negative party size");
    total += cnt;
  }
  if (total != n) {
    return InvalidArgumentError("party sizes sum to " + std::to_string(total) +
                                " but there are " + std::to_string(n) +
                                " samples");
  }
  std::vector<PartyData> parties;
  parties.reserve(counts.size());
  int64_t row = 0;
  for (const int64_t cnt : counts) {
    PartyData pd;
    pd.x = SliceRows(x, row, row + cnt);
    pd.c = SliceRows(c, row, row + cnt);
    pd.y.assign(y.begin() + row, y.begin() + row + cnt);
    parties.push_back(std::move(pd));
    row += cnt;
  }
  return parties;
}

Result<PooledData> PoolParties(const std::vector<PartyData>& parties) {
  DASH_RETURN_IF_ERROR(ValidateParties(parties));
  std::vector<Matrix> xs;
  std::vector<Matrix> cs;
  PooledData pooled;
  for (const auto& p : parties) {
    xs.push_back(p.x);
    cs.push_back(p.c);
    pooled.y.insert(pooled.y.end(), p.y.begin(), p.y.end());
  }
  pooled.x = VStack(xs);
  pooled.c = VStack(cs);
  return pooled;
}

void CenterPerParty(std::vector<PartyData>* parties) {
  for (auto& p : *parties) {
    CenterInPlace(&p.y);
    CenterColumnsInPlace(&p.c);
    CenterColumnsInPlace(&p.x);
  }
}

}  // namespace dash
