#include "data/panel_stream.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace dash {
namespace {

// --- DASHPACK layout --------------------------------------------------
// [magic "DASHPK01" | u64 version | i64 n | i64 m | i64 k |
//  i64 panel_rows | u64 tag | u64 fingerprint | u64 header_checksum]
// [y: n doubles] [C: n*k doubles row-major] [u64 yc_checksum]
// for each panel p (rows [p*256, min(n, (p+1)*256))):
//   [m * wp(p) u64 words, column-major] [u64 panel_checksum]
// wp(p) = ceil(rows_p / 32); every panel but the last has wp = 8, so
// panel offsets are a closed-form seek. All checksums are FNV-1a over
// the raw bytes of the region they close.

constexpr char kMagic[8] = {'D', 'A', 'S', 'H', 'P', 'K', '0', '1'};
constexpr uint64_t kFormatVersion = 1;
// magic + (version, n, m, k, panel_rows, tag, fingerprint, checksum).
constexpr int64_t kHeaderBytes = 72;
// Dimension sanity bounds: large enough for any real study, small
// enough that every size expression below fits comfortably in 128-bit
// intermediate arithmetic.
constexpr int64_t kMaxDim = int64_t{1} << 40;
constexpr int64_t kMaxCovariates = int64_t{1} << 20;

int64_t WordsPerPanel(int64_t panel_rows) {
  return (panel_rows + PackedGenotypeMatrix::kRowsPerWord - 1) /
         PackedGenotypeMatrix::kRowsPerWord;
}

struct StudyShape {
  int64_t n = 0;
  int64_t m = 0;
  int64_t k = 0;

  int64_t num_panels() const {
    return (n + kStudyPanelRows - 1) / kStudyPanelRows;
  }
  int64_t panel_rows(int64_t p) const {
    return std::min<int64_t>(kStudyPanelRows, n - p * kStudyPanelRows);
  }
  int64_t panel_payload_bytes(int64_t p) const {
    return m * WordsPerPanel(panel_rows(p)) * 8;
  }
  // Full panels all share one stride, so any panel's offset is O(1).
  int64_t full_panel_stride() const { return m * kStudyPanelRows / 4 + 8; }
  int64_t panels_offset() const { return kHeaderBytes + (n + n * k) * 8 + 8; }
  int64_t panel_offset(int64_t p) const {
    return panels_offset() + p * full_panel_stride();
  }
  unsigned __int128 total_bytes() const {
    unsigned __int128 total = static_cast<unsigned __int128>(panels_offset());
    const int64_t panels = num_panels();
    for (int64_t p = 0; p < panels; ++p) {
      total += static_cast<unsigned __int128>(panel_payload_bytes(p)) + 8;
    }
    return total;
  }
};

void AppendU64(std::vector<unsigned char>* buf, uint64_t v) {
  unsigned char b[8];
  std::memcpy(b, &v, 8);
  buf->insert(buf->end(), b, b + 8);
}

void AppendI64(std::vector<unsigned char>* buf, int64_t v) {
  AppendU64(buf, static_cast<uint64_t>(v));
}

uint64_t LoadU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

int64_t LoadI64(const unsigned char* p) {
  return static_cast<int64_t>(LoadU64(p));
}

std::string ErrnoText() { return std::strerror(errno); }

Status WriteAll(int fd, const void* data, size_t len, const std::string& path) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IoError("write " + path + ": " + ErrnoText());
    }
    p += w;
    len -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status ReadAllAt(int fd, void* data, size_t len, int64_t off,
                 const std::string& path) {
  unsigned char* p = static_cast<unsigned char*>(data);
  while (len > 0) {
    const ssize_t r = ::pread(fd, p, len, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("pread " + path + ": " + ErrnoText());
    }
    if (r == 0) {
      return DataLossError("short read (truncated file?): " + path);
    }
    p += r;
    len -= static_cast<size_t>(r);
    off += r;
  }
  return Status::Ok();
}

Status FsyncDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return IoError("open dir " + dir + ": " + ErrnoText());
  const int rc = ::fsync(dfd);
  const int saved = errno;
  ::close(dfd);
  if (rc != 0) {
    return IoError("fsync dir " + dir + ": " + std::strerror(saved));
  }
  return Status::Ok();
}

}  // namespace

uint64_t Fnv1aBytes(const void* data, size_t len, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

Status AtomicWriteFile(const std::string& path, const void* data, size_t len) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("open " + tmp + ": " + ErrnoText());
  Status st = WriteAll(fd, data, len, tmp);
  if (st.ok() && ::fsync(fd) != 0) {
    st = IoError("fsync " + tmp + ": " + ErrnoText());
  }
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    st = IoError("rename " + tmp + " -> " + path + ": " + ErrnoText());
    ::unlink(tmp.c_str());
    return st;
  }
  return FsyncDirOf(path);
}

uint64_t StudyFingerprint(const PackedGenotypeMatrix& x, const Vector& y,
                          const Matrix& c, uint64_t tag) {
  const int64_t dims[4] = {x.rows(), x.cols(), c.cols(), kStudyPanelRows};
  uint64_t h = Fnv1aBytes(dims, sizeof(dims));
  h = Fnv1aBytes(&tag, sizeof(tag), h);
  h = Fnv1aBytes(y.data(), y.size() * sizeof(double), h);
  h = Fnv1aBytes(c.data(), static_cast<size_t>(c.rows() * c.cols()) * 8, h);
  for (int64_t j = 0; j < x.cols(); ++j) {
    h = Fnv1aBytes(x.column_words(j),
                   static_cast<size_t>(x.words_per_column()) * 8, h);
  }
  return h;
}

// --- Writer -----------------------------------------------------------

Status WritePackedStudy(const std::string& path, const PackedGenotypeMatrix& x,
                        const Vector& y, const Matrix& c, uint64_t tag) {
  const StudyShape shape{x.rows(), x.cols(), c.cols()};
  if (static_cast<int64_t>(y.size()) != shape.n || c.rows() != shape.n) {
    return InvalidArgumentError(
        "WritePackedStudy: x/y/c row counts disagree (" +
        std::to_string(shape.n) + " genotype rows, " +
        std::to_string(y.size()) + " phenotypes, " +
        std::to_string(c.rows()) + " covariate rows)");
  }
  if (shape.n > kMaxDim || shape.m > kMaxDim || shape.k > kMaxCovariates) {
    return InvalidArgumentError("WritePackedStudy: dimensions out of range");
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return IoError("open " + tmp + ": " + ErrnoText());
  Status st = Status::Ok();
  {
    // Header.
    std::vector<unsigned char> header;
    header.reserve(kHeaderBytes);
    header.insert(header.end(), kMagic, kMagic + 8);
    AppendU64(&header, kFormatVersion);
    AppendI64(&header, shape.n);
    AppendI64(&header, shape.m);
    AppendI64(&header, shape.k);
    AppendI64(&header, kStudyPanelRows);
    AppendU64(&header, tag);
    AppendU64(&header, StudyFingerprint(x, y, c, tag));
    AppendU64(&header, Fnv1aBytes(header.data(), header.size()));
    DASH_CHECK(static_cast<int64_t>(header.size()) == kHeaderBytes);
    st = WriteAll(fd, header.data(), header.size(), tmp);

    // y and C, closed by one checksum.
    uint64_t yc = Fnv1aBytes(y.data(), y.size() * 8);
    yc = Fnv1aBytes(c.data(), static_cast<size_t>(shape.n * shape.k) * 8, yc);
    if (st.ok()) st = WriteAll(fd, y.data(), y.size() * 8, tmp);
    if (st.ok()) {
      st = WriteAll(fd, c.data(), static_cast<size_t>(shape.n * shape.k) * 8,
                    tmp);
    }
    if (st.ok()) st = WriteAll(fd, &yc, 8, tmp);

    // Panel blocks. kStudyPanelRows is a multiple of kRowsPerWord, so
    // panel p of column j is words [p*8, p*8 + wp) — a straight copy.
    std::vector<uint64_t> block;
    const int64_t panels = shape.num_panels();
    for (int64_t p = 0; st.ok() && p < panels; ++p) {
      const int64_t wp = WordsPerPanel(shape.panel_rows(p));
      const int64_t w0 = p * (kStudyPanelRows / PackedGenotypeMatrix::kRowsPerWord);
      block.resize(static_cast<size_t>(shape.m * wp));
      for (int64_t j = 0; j < shape.m; ++j) {
        std::memcpy(block.data() + j * wp, x.column_words(j) + w0,
                    static_cast<size_t>(wp) * 8);
      }
      const uint64_t sum = Fnv1aBytes(block.data(), block.size() * 8);
      st = WriteAll(fd, block.data(), block.size() * 8, tmp);
      if (st.ok()) st = WriteAll(fd, &sum, 8, tmp);
    }

    if (st.ok() && ::fsync(fd) != 0) {
      st = IoError("fsync " + tmp + ": " + ErrnoText());
    }
  }
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    st = IoError("rename " + tmp + " -> " + path + ": " + ErrnoText());
    ::unlink(tmp.c_str());
    return st;
  }
  return FsyncDirOf(path);
}

// --- Reader -----------------------------------------------------------

Result<std::unique_ptr<PackedStudyReader>> PackedStudyReader::Open(
    const std::string& path, StudyReadMode mode) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const Status st = errno == ENOENT
                          ? NotFoundError("no such study: " + path)
                          : IoError("open " + path + ": " + ErrnoText());
    return st;
  }
  std::unique_ptr<PackedStudyReader> reader(new PackedStudyReader());
  reader->fd_ = fd;
  reader->mode_ = mode;
  reader->path_ = path;

  struct stat sb;
  if (::fstat(fd, &sb) != 0) return IoError("fstat " + path + ": " + ErrnoText());
  if (sb.st_size < kHeaderBytes) {
    return DataLossError("truncated DASHPACK header: " + path);
  }

  unsigned char header[kHeaderBytes];
  DASH_RETURN_IF_ERROR(ReadAllAt(fd, header, sizeof(header), 0, path));
  if (std::memcmp(header, kMagic, 8) != 0) {
    return InvalidArgumentError("not a DASHPACK file (bad magic): " + path);
  }
  if (const uint64_t version = LoadU64(header + 8); version != kFormatVersion) {
    return InvalidArgumentError("unsupported DASHPACK version " +
                                std::to_string(version) + ": " + path);
  }
  const uint64_t stored_header_sum = LoadU64(header + kHeaderBytes - 8);
  if (Fnv1aBytes(header, kHeaderBytes - 8) != stored_header_sum) {
    return DataLossError("DASHPACK header checksum mismatch: " + path);
  }
  const StudyShape shape{LoadI64(header + 16), LoadI64(header + 24),
                         LoadI64(header + 32)};
  const int64_t panel_rows = LoadI64(header + 40);
  if (shape.n < 0 || shape.m < 0 || shape.k < 0 || shape.n > kMaxDim ||
      shape.m > kMaxDim || shape.k > kMaxCovariates) {
    return DataLossError("DASHPACK dimensions out of range: " + path);
  }
  if (panel_rows != kStudyPanelRows) {
    return InvalidArgumentError(
        "DASHPACK panel_rows " + std::to_string(panel_rows) +
        " != " + std::to_string(kStudyPanelRows) + ": " + path);
  }
  if (shape.total_bytes() != static_cast<unsigned __int128>(sb.st_size)) {
    return DataLossError("DASHPACK size mismatch (truncated or grown): " +
                         path);
  }
  reader->n_ = shape.n;
  reader->m_ = shape.m;
  reader->k_ = shape.k;
  reader->tag_ = LoadU64(header + 48);
  reader->fingerprint_ = LoadU64(header + 56);

  // y and C live in RAM for the whole scan; only X streams.
  reader->y_.resize(static_cast<size_t>(shape.n));
  reader->c_ = Matrix(shape.n, shape.k);
  int64_t off = kHeaderBytes;
  DASH_RETURN_IF_ERROR(ReadAllAt(fd, reader->y_.data(),
                                 static_cast<size_t>(shape.n) * 8, off, path));
  off += shape.n * 8;
  DASH_RETURN_IF_ERROR(
      ReadAllAt(fd, reader->c_.data(),
                static_cast<size_t>(shape.n * shape.k) * 8, off, path));
  off += shape.n * shape.k * 8;
  uint64_t stored_yc = 0;
  DASH_RETURN_IF_ERROR(ReadAllAt(fd, &stored_yc, 8, off, path));
  uint64_t yc = Fnv1aBytes(reader->y_.data(), reader->y_.size() * 8);
  yc = Fnv1aBytes(reader->c_.data(),
                  static_cast<size_t>(shape.n * shape.k) * 8, yc);
  if (yc != stored_yc) {
    return DataLossError("DASHPACK y/C checksum mismatch: " + path);
  }

  if (mode == StudyReadMode::kMmap) {
    void* map = ::mmap(nullptr, static_cast<size_t>(sb.st_size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      return IoError("mmap " + path + ": " + ErrnoText());
    }
    reader->map_ = static_cast<const unsigned char*>(map);
    reader->map_len_ = static_cast<size_t>(sb.st_size);
  }
  return reader;
}

PackedStudyReader::~PackedStudyReader() {
  if (map_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(map_), map_len_);
  }
  if (fd_ >= 0) ::close(fd_);
}

Status PackedStudyReader::ReadPanel(int64_t panel, PackedGenotypeMatrix* out) {
  const StudyShape shape{n_, m_, k_};
  if (panel < 0 || panel >= shape.num_panels()) {
    return OutOfRangeError("panel " + std::to_string(panel) + " of " +
                           std::to_string(shape.num_panels()) + ": " + path_);
  }
  const int64_t rows = shape.panel_rows(panel);
  if (out->rows() != rows || out->cols() != m_) {
    *out = PackedGenotypeMatrix(rows, m_);
  }
  const int64_t payload = shape.panel_payload_bytes(panel);
  const int64_t off = shape.panel_offset(panel);
  uint64_t* words = payload > 0 ? out->mutable_column_words(0) : nullptr;
  uint64_t stored_sum = 0;
  if (mode_ == StudyReadMode::kMmap) {
    if (payload > 0) {
      std::memcpy(words, map_ + off, static_cast<size_t>(payload));
    }
    std::memcpy(&stored_sum, map_ + off + payload, 8);
  } else {
    if (payload > 0) {
      DASH_RETURN_IF_ERROR(
          ReadAllAt(fd_, words, static_cast<size_t>(payload), off, path_));
    }
    DASH_RETURN_IF_ERROR(ReadAllAt(fd_, &stored_sum, 8, off + payload, path_));
  }
  if (Fnv1aBytes(words, static_cast<size_t>(payload)) != stored_sum) {
    return DataLossError("DASHPACK panel " + std::to_string(panel) +
                         " checksum mismatch: " + path_);
  }
  return Status::Ok();
}

// --- In-memory source -------------------------------------------------

InMemoryPanelSource::InMemoryPanelSource(const PackedGenotypeMatrix& x,
                                         const Vector& y, const Matrix& c,
                                         uint64_t tag)
    : x_(&x), fingerprint_(StudyFingerprint(x, y, c, tag)) {}

Status InMemoryPanelSource::ReadPanel(int64_t panel,
                                      PackedGenotypeMatrix* out) {
  if (panel < 0 || panel >= num_panels()) {
    return OutOfRangeError("panel " + std::to_string(panel) + " of " +
                           std::to_string(num_panels()));
  }
  const int64_t rows = panel_rows(panel);
  const int64_t m = x_->cols();
  if (out->rows() != rows || out->cols() != m) {
    *out = PackedGenotypeMatrix(rows, m);
  }
  const int64_t wp = WordsPerPanel(rows);
  const int64_t w0 =
      panel * (kStudyPanelRows / PackedGenotypeMatrix::kRowsPerWord);
  for (int64_t j = 0; j < m; ++j) {
    std::memcpy(out->mutable_column_words(j), x_->column_words(j) + w0,
                static_cast<size_t>(wp) * 8);
  }
  return Status::Ok();
}

// --- Prefetcher -------------------------------------------------------

PanelPrefetcher::PanelPrefetcher(PanelSource* source, int64_t first_panel)
    : source_(source),
      end_panel_(source->num_panels()),
      first_panel_(first_panel),
      next_consume_(first_panel) {
  DASH_CHECK(first_panel >= 0 && first_panel <= end_panel_)
      << "first_panel " << first_panel << " outside [0, " << end_panel_ << "]";
  io_thread_ = std::thread(&PanelPrefetcher::IoLoop, this);
}

PanelPrefetcher::~PanelPrefetcher() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  if (io_thread_.joinable()) io_thread_.join();
}

void PanelPrefetcher::IoLoop() {
  for (int64_t p = first_panel_; p < end_panel_; ++p) {
    const int s = static_cast<int>(p & 1);
    {
      MutexLock lock(&mu_);
      while (slot_full_[s] && !stopping_) cv_.Wait(&mu_);
      if (stopping_) return;
    }
    // The slot is ours until we publish it: the consumer flips
    // slot_full_[s] back to false only after it is done with the
    // buffer, and it never reads a slot it has not seen published.
    Status st = source_->ReadPanel(p, &buffers_[s]);
    const bool failed = !st.ok();
    {
      MutexLock lock(&mu_);
      slot_status_[s] = std::move(st);
      slot_panel_[s] = p;
      slot_full_[s] = true;
      if (failed) io_failed_ = slot_status_[s];
    }
    cv_.NotifyOne();
    // After an I/O error the remaining panels cannot be trusted (and
    // the consumer stops at the first error anyway).
    if (failed) return;
  }
}

Result<const PackedGenotypeMatrix*> PanelPrefetcher::Next() {
  DASH_CHECK(next_consume_ < end_panel_)
      << "PanelPrefetcher::Next() past the last panel";
  const int64_t p = next_consume_;
  const int s = static_cast<int>(p & 1);
  {
    MutexLock lock(&mu_);
    // Recycle the previously returned panel's slot; its pointer is
    // invalidated now, as documented.
    if (p > first_panel_) {
      slot_full_[(p - 1) & 1] = false;
      cv_.NotifyOne();
    }
    while (!slot_full_[s] || slot_panel_[s] != p) {
      if (!io_failed_.ok()) {
        // The I/O thread died before reaching panel p.
        return io_failed_;
      }
      cv_.Wait(&mu_);
    }
    ++next_consume_;
    if (!slot_status_[s].ok()) return slot_status_[s];
  }
  return static_cast<const PackedGenotypeMatrix*>(&buffers_[s]);
}

}  // namespace dash
