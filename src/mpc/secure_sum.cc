#include "mpc/secure_sum.h"

#include <cmath>
#include <string>
#include <utility>

#include "mpc/additive_sharing.h"
#include "mpc/key_exchange.h"
#include "mpc/masked_aggregation.h"
#include "mpc/shamir.h"
#include "net/round_annotations.h"
#include "net/serialization.h"
#include "util/check.h"
#include "util/logging.h"

namespace dash {

const char* AggregationModeName(AggregationMode mode) {
  switch (mode) {
    case AggregationMode::kPublicShare:
      return "public";
    case AggregationMode::kAdditive:
      return "additive";
    case AggregationMode::kMasked:
      return "masked";
    case AggregationMode::kShamir:
      return "shamir";
  }
  return "unknown";
}

SecureVectorSum::SecureVectorSum(Transport* network,
                                 const SecureSumOptions& options)
    : network_(network), options_(options), codec_(options.frac_bits) {
  DASH_CHECK(network != nullptr);
  const int p = network->num_parties();
  party_rngs_.reserve(static_cast<size_t>(p));
  uint64_t seed_state = options.seed;
  for (int i = 0; i < p; ++i) {
    party_rngs_.emplace_back(SplitMix64(&seed_state));
  }
}

Status SecureVectorSum::Setup() {
  if (setup_done_) return Status::Ok();
  const int p = network_->num_parties();
  if (options_.mode == AggregationMode::kMasked && p > 1) {
    // Diffie-Hellman: every party broadcasts g^a_p, then derives one key
    // per peer. One 8-byte message per ordered pair.
    network_->BeginRound();
    std::vector<Secret<uint64_t>> privates(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i) {
      privates[static_cast<size_t>(i)] =
          DiffieHellman::GeneratePrivate(&party_rngs_[static_cast<size_t>(i)]);
      ByteWriter w;
      w.PutU64(DiffieHellman::PublicValue(privates[static_cast<size_t>(i)]));
      DASH_ROUND(phase0b_keyagree, kPublicKey);
      DASH_RETURN_IF_ERROR(
          network_->Broadcast(i, MessageTag::kPublicKey, w.Take()));
    }
    pairwise_keys_.assign(
        static_cast<size_t>(p),
        std::vector<Secret<ChaCha20Rng::Key>>(static_cast<size_t>(p)));
    for (int i = 0; i < p; ++i) {
      for (int q = 0; q < p; ++q) {
        if (q == i) continue;
        DASH_ROUND(phase0b_keyagree, kPublicKey);
        DASH_ASSIGN_OR_RETURN(Message msg,
                              network_->Receive(i, q, MessageTag::kPublicKey));
        ByteReader r(msg.payload);
        DASH_ASSIGN_OR_RETURN(uint64_t peer_public, r.GetU64());
        const Secret<uint64_t> shared = DiffieHellman::SharedSecret(
            privates[static_cast<size_t>(i)], peer_public);
        pairwise_keys_[static_cast<size_t>(i)][static_cast<size_t>(q)] =
            DiffieHellman::DeriveKey(shared);
      }
    }
    DASH_LOG(Info) << "masked-aggregation key agreement complete for " << p
                   << " parties";
  }
  setup_done_ = true;
  return Status::Ok();
}

std::vector<Secret<Vector>> ToSecretInputs(std::vector<Vector> inputs) {
  std::vector<Secret<Vector>> out;
  out.reserve(inputs.size());
  for (auto& v : inputs) out.emplace_back(std::move(v));
  return out;
}

Status SecureVectorSum::ValidateInputs(
    const std::vector<Secret<Vector>>& inputs) const {
  if (static_cast<int>(inputs.size()) != network_->num_parties()) {
    return InvalidArgumentError(
        "expected one input vector per party (" +
        std::to_string(network_->num_parties()) + "), got " +
        std::to_string(inputs.size()));
  }
  // Shape is public metadata; reading it stays inside the MPC layer.
  const size_t len = inputs[0].Reveal(MpcPass::Get()).size();
  for (const auto& v : inputs) {
    if (v.Reveal(MpcPass::Get()).size() != len) {
      return InvalidArgumentError("party inputs disagree in length");
    }
  }
  return Status::Ok();
}

Result<Vector> SecureVectorSum::Run(const std::vector<Secret<Vector>>& inputs) {
  DASH_RETURN_IF_ERROR(Setup());
  DASH_RETURN_IF_ERROR(ValidateInputs(inputs));
  if (network_->num_parties() == 1) {
    return DASH_DECLASSIFY(
        inputs[0], "phase2-single: a single party's total IS its own input");
  }
  ++round_nonce_;
  switch (options_.mode) {
    case AggregationMode::kPublicShare:
      return RunPublic(inputs);
    case AggregationMode::kAdditive:
      return RunAdditive(inputs);
    case AggregationMode::kMasked:
      return RunMasked(inputs);
    case AggregationMode::kShamir:
      return RunShamir(inputs);
  }
  return InternalError("unknown aggregation mode");
}

Result<double> SecureVectorSum::RunScalar(const std::vector<double>& inputs) {
  std::vector<Secret<Vector>> wrapped;
  wrapped.reserve(inputs.size());
  for (const double x : inputs) wrapped.emplace_back(Vector{x});
  DASH_ASSIGN_OR_RETURN(Vector total, Run(wrapped));
  return total[0];
}

Result<Vector> SecureVectorSum::RunPublic(
    const std::vector<Secret<Vector>>& inputs) {
  const int p = network_->num_parties();
  // The public-share baseline deliberately reveals every summand; this
  // is the protocol's documented insecure mode, not a leak.
  std::vector<Vector> plain;
  plain.reserve(inputs.size());
  for (const auto& input : inputs) {
    plain.push_back(DASH_DECLASSIFY(
        input, "phase2-public: baseline broadcasts plaintext summands"));
  }
  network_->BeginRound();
  for (int i = 0; i < p; ++i) {
    ByteWriter w;
    w.PutDoubleVector(plain[static_cast<size_t>(i)]);
    DASH_ROUND(phase2_public, kPlainStats);
    DASH_RETURN_IF_ERROR(
        network_->Broadcast(i, MessageTag::kPlainStats, w.Take()));
  }
  // Every party computes the identical total; we return party 0's view.
  Vector total = plain[0];
  for (int q = 1; q < p; ++q) {
    DASH_ROUND(phase2_public, kPlainStats);
    DASH_ASSIGN_OR_RETURN(Message msg,
                          network_->Receive(0, q, MessageTag::kPlainStats));
    ByteReader r(msg.payload);
    DASH_ASSIGN_OR_RETURN(Vector v, r.GetDoubleVector());
    if (v.size() != total.size()) {
      return InternalError("public-share length mismatch");
    }
    for (size_t e = 0; e < total.size(); ++e) total[e] += v[e];
  }
  // Drain the symmetric copies the other parties received.
  for (int i = 1; i < p; ++i) {
    for (int q = 0; q < p; ++q) {
      if (q == i) continue;
      DASH_ROUND_DRAIN(phase2_public, kPlainStats);
      DASH_RETURN_IF_ERROR(
          network_->Receive(i, q, MessageTag::kPlainStats).status());
    }
  }
  return total;
}

Result<Vector> SecureVectorSum::RunAdditive(
    const std::vector<Secret<Vector>>& inputs) {
  const int p = network_->num_parties();

  // Phase 1: share distribution. Party i keeps its own share and sends
  // share j to party j (one share per holder — the sanctioned
  // SerializeShareForHolder reveal point).
  network_->BeginRound();
  std::vector<Secret<RingVector>> kept(static_cast<size_t>(p));
  for (int i = 0; i < p; ++i) {
    DASH_ASSIGN_OR_RETURN(
        Secret<RingVector> encoded,
        codec_.EncodeSecretVector(inputs[static_cast<size_t>(i)]));
    auto shares =
        AdditiveShareVector(encoded, p, &party_rngs_[static_cast<size_t>(i)]);
    kept[static_cast<size_t>(i)] = std::move(shares[static_cast<size_t>(i)]);
    for (int j = 0; j < p; ++j) {
      if (j == i) continue;
      DASH_ROUND(phase2_additive_share, kAdditiveShare);
      DASH_RETURN_IF_ERROR(
          network_->Send(i, j, MessageTag::kAdditiveShare,
                         SerializeShareForHolder(shares[static_cast<size_t>(j)])));
    }
  }

  // Phase 2: each party sums the shares it holds and broadcasts the
  // partial; partials are uniformly random individually (hence Masked).
  network_->BeginRound();
  std::vector<Masked<RingVector>> partials(static_cast<size_t>(p));
  for (int j = 0; j < p; ++j) {
    std::vector<RingVector> received;
    received.reserve(static_cast<size_t>(p - 1));
    for (int i = 0; i < p; ++i) {
      if (i == j) continue;
      DASH_ROUND(phase2_additive_share, kAdditiveShare);
      DASH_ASSIGN_OR_RETURN(
          Message msg, network_->Receive(j, i, MessageTag::kAdditiveShare));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(RingVector share, r.GetU64Vector());
      received.push_back(std::move(share));
    }
    DASH_ASSIGN_OR_RETURN(
        Masked<RingVector> partial,
        AccumulateAdditiveShares(kept[static_cast<size_t>(j)], received));
    DASH_ROUND(phase2_additive_reveal, kPartialSum);
    DASH_RETURN_IF_ERROR(network_->Broadcast(j, MessageTag::kPartialSum,
                                             MaskAndSerialize(partial)));
    partials[static_cast<size_t>(j)] = std::move(partial);
  }

  // Phase 3: everyone opens the total from the partials; we return
  // party 0's view and drain the symmetric messages.
  std::vector<RingVector> peer_partials;
  peer_partials.reserve(static_cast<size_t>(p - 1));
  for (int q = 1; q < p; ++q) {
    DASH_ROUND(phase2_additive_reveal, kPartialSum);
    DASH_ASSIGN_OR_RETURN(Message msg,
                          network_->Receive(0, q, MessageTag::kPartialSum));
    ByteReader r(msg.payload);
    DASH_ASSIGN_OR_RETURN(RingVector partial, r.GetU64Vector());
    peer_partials.push_back(std::move(partial));
  }
  for (int i = 1; i < p; ++i) {
    for (int q = 0; q < p; ++q) {
      if (q == i) continue;
      DASH_ROUND_DRAIN(phase2_additive_reveal, kPartialSum);
      DASH_RETURN_IF_ERROR(
          network_->Receive(i, q, MessageTag::kPartialSum).status());
    }
  }
  return OpenAdditiveTotal(partials[0], peer_partials, codec_);
}

Result<Vector> SecureVectorSum::RunMasked(
    const std::vector<Secret<Vector>>& inputs) {
  const int p = network_->num_parties();

  // Single round: broadcast masked contributions. Party 0's sealed
  // vector doubles as its own summand when opening the total below
  // (ChaCha20 streams are deterministic, so this is bit-identical to
  // recomputing it).
  network_->BeginRound();
  Masked<RingVector> own_masked;
  for (int i = 0; i < p; ++i) {
    DASH_ASSIGN_OR_RETURN(
        Secret<RingVector> encoded,
        codec_.EncodeSecretVector(inputs[static_cast<size_t>(i)]));
    Masked<RingVector> masked = ApplyPairwiseMasks(
        i, encoded, pairwise_keys_[static_cast<size_t>(i)], round_nonce_);
    DASH_ROUND(phase2_masked, kMaskedValue);
    DASH_RETURN_IF_ERROR(network_->Broadcast(i, MessageTag::kMaskedValue,
                                             MaskAndSerialize(masked)));
    if (i == 0) own_masked = std::move(masked);
  }

  // Every party sums all P masked vectors (its own included); the masks
  // cancel pairwise. Party 0's view is returned, the rest drained.
  std::vector<RingVector> peer_masked;
  peer_masked.reserve(static_cast<size_t>(p - 1));
  for (int q = 1; q < p; ++q) {
    DASH_ROUND(phase2_masked, kMaskedValue);
    DASH_ASSIGN_OR_RETURN(Message msg,
                          network_->Receive(0, q, MessageTag::kMaskedValue));
    ByteReader r(msg.payload);
    DASH_ASSIGN_OR_RETURN(RingVector masked, r.GetU64Vector());
    peer_masked.push_back(std::move(masked));
  }
  for (int i = 1; i < p; ++i) {
    for (int q = 0; q < p; ++q) {
      if (q == i) continue;
      DASH_ROUND_DRAIN(phase2_masked, kMaskedValue);
      DASH_RETURN_IF_ERROR(
          network_->Receive(i, q, MessageTag::kMaskedValue).status());
    }
  }
  return OpenMaskedTotal(own_masked, peer_masked, codec_);
}

Result<Vector> SecureVectorSum::RunShamir(
    const std::vector<Secret<Vector>>& inputs) {
  const int p = network_->num_parties();
  const int threshold =
      (options_.shamir_threshold >= 0) ? options_.shamir_threshold
                                       : (p - 1) / 2;
  if (threshold >= p) {
    return InvalidArgumentError("Shamir threshold must be < num parties");
  }
  // The 61-bit field offers less headroom than the 64-bit ring.
  const double field_max =
      std::ldexp(1.0, 60 - options_.frac_bits) / static_cast<double>(p);
  for (const auto& input : inputs) {
    for (const double x : input.Reveal(MpcPass::Get())) {
      if (!(x > -field_max && x < field_max)) {
        return OutOfRangeError(
            "input exceeds Shamir field headroom; lower frac_bits");
      }
    }
  }

  // Phase 1: distribute shares (party j gets the evaluation at x = j+1,
  // one share per holder via SerializeShareForHolder).
  network_->BeginRound();
  std::vector<Secret<RingVector>> own_kept(static_cast<size_t>(p));
  for (int i = 0; i < p; ++i) {
    // Field-encode the fixed-point quantization of each element.
    DASH_ASSIGN_OR_RETURN(
        Secret<RingVector> encoded,
        ShamirFieldEncode(codec_, inputs[static_cast<size_t>(i)], p));
    DASH_ASSIGN_OR_RETURN(
        auto shares,
        ShamirShareVectorForParties(encoded, p, threshold,
                                    &party_rngs_[static_cast<size_t>(i)]));
    for (int j = 0; j < p; ++j) {
      if (j == i) {
        own_kept[static_cast<size_t>(j)] =
            std::move(shares[static_cast<size_t>(j)]);
      } else {
        DASH_ROUND(phase2_shamir_share, kShamirShare);
        DASH_RETURN_IF_ERROR(network_->Send(
            i, j, MessageTag::kShamirShare,
            SerializeShareForHolder(shares[static_cast<size_t>(j)])));
      }
    }
  }

  // Fault injection: the last `dropouts` parties crash here — after
  // their inputs were share-distributed, before contributing sum shares.
  const int dropouts = options_.simulate_shamir_dropouts;
  if (dropouts < 0 || (dropouts > 0 && p - dropouts < threshold + 1)) {
    return InvalidArgumentError(
        "cannot drop " + std::to_string(dropouts) + " of " +
        std::to_string(p) + " parties at threshold " +
        std::to_string(threshold) + "; need >= t+1 survivors");
  }
  const int survivors = p - dropouts;

  // Phase 2: each surviving party sums the shares it holds (a share of
  // the total by linearity — individually uniform, hence Masked) and
  // broadcasts it to the other survivors.
  network_->BeginRound();
  std::vector<Masked<RingVector>> held(static_cast<size_t>(survivors));
  for (int j = 0; j < survivors; ++j) {
    std::vector<RingVector> received;
    received.reserve(static_cast<size_t>(p - 1));
    for (int i = 0; i < p; ++i) {
      if (i == j) continue;
      DASH_ROUND(phase2_shamir_share, kShamirShare);
      DASH_ASSIGN_OR_RETURN(Message msg,
                            network_->Receive(j, i, MessageTag::kShamirShare));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(RingVector ys, r.GetU64Vector());
      received.push_back(std::move(ys));
    }
    DASH_ASSIGN_OR_RETURN(
        held[static_cast<size_t>(j)],
        AccumulateShamirShares(own_kept[static_cast<size_t>(j)], received));
    const std::vector<uint8_t> payload =
        MaskAndSerialize(held[static_cast<size_t>(j)]);
    for (int to = 0; to < survivors; ++to) {
      if (to == j) continue;
      DASH_ROUND(phase2_shamir_reveal, kPartialSum);
      DASH_RETURN_IF_ERROR(
          network_->Send(j, to, MessageTag::kPartialSum, payload));
    }
  }
  // Crashed parties' queued incoming shares are abandoned, as they would
  // be on a real network; drain them so the simulation's bookkeeping
  // stays clean.
  for (int j = survivors; j < p; ++j) {
    for (int i = 0; i < p; ++i) {
      if (i == j) continue;
      while (network_->HasPending(j, i)) {
        DASH_ROUND_DRAIN(phase2_shamir_share, kShamirShare);
        DASH_RETURN_IF_ERROR(
            network_->Receive(j, i, MessageTag::kShamirShare).status());
      }
    }
  }

  // Phase 3: survivors reconstruct at x = 0 from their own evaluation
  // points. The crashed parties' INPUTS are still in the total: every
  // survivor's sum share already includes the shares those parties
  // distributed in phase 1.
  std::vector<RingVector> sum_shares(static_cast<size_t>(survivors));
  for (int q = 1; q < survivors; ++q) {
    DASH_ROUND(phase2_shamir_reveal, kPartialSum);
    DASH_ASSIGN_OR_RETURN(Message msg,
                          network_->Receive(0, q, MessageTag::kPartialSum));
    ByteReader r(msg.payload);
    DASH_ASSIGN_OR_RETURN(sum_shares[static_cast<size_t>(q)], r.GetU64Vector());
  }
  for (int i = 1; i < survivors; ++i) {
    for (int q = 0; q < survivors; ++q) {
      if (q == i) continue;
      DASH_ROUND_DRAIN(phase2_shamir_reveal, kPartialSum);
      DASH_RETURN_IF_ERROR(
          network_->Receive(i, q, MessageTag::kPartialSum).status());
    }
  }
  return OpenShamirTotal(held[0], /*own_index=*/0, sum_shares, codec_);
}

}  // namespace dash
