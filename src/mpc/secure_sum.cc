#include "mpc/secure_sum.h"

#include <cmath>
#include <string>
#include <utility>

#include "mpc/additive_sharing.h"
#include "mpc/key_exchange.h"
#include "mpc/masked_aggregation.h"
#include "mpc/prime_field.h"
#include "mpc/shamir.h"
#include "net/serialization.h"
#include "util/check.h"
#include "util/logging.h"

namespace dash {

const char* AggregationModeName(AggregationMode mode) {
  switch (mode) {
    case AggregationMode::kPublicShare:
      return "public";
    case AggregationMode::kAdditive:
      return "additive";
    case AggregationMode::kMasked:
      return "masked";
    case AggregationMode::kShamir:
      return "shamir";
  }
  return "unknown";
}

SecureVectorSum::SecureVectorSum(Transport* network,
                                 const SecureSumOptions& options)
    : network_(network), options_(options), codec_(options.frac_bits) {
  DASH_CHECK(network != nullptr);
  const int p = network->num_parties();
  party_rngs_.reserve(static_cast<size_t>(p));
  uint64_t seed_state = options.seed;
  for (int i = 0; i < p; ++i) {
    party_rngs_.emplace_back(SplitMix64(&seed_state));
  }
}

Status SecureVectorSum::Setup() {
  if (setup_done_) return Status::Ok();
  const int p = network_->num_parties();
  if (options_.mode == AggregationMode::kMasked && p > 1) {
    // Diffie-Hellman: every party broadcasts g^a_p, then derives one key
    // per peer. One 8-byte message per ordered pair.
    network_->BeginRound();
    std::vector<uint64_t> privates(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i) {
      privates[static_cast<size_t>(i)] =
          DiffieHellman::GeneratePrivate(&party_rngs_[static_cast<size_t>(i)]);
      ByteWriter w;
      w.PutU64(DiffieHellman::PublicValue(privates[static_cast<size_t>(i)]));
      DASH_RETURN_IF_ERROR(
          network_->Broadcast(i, MessageTag::kPublicKey, w.Take()));
    }
    pairwise_keys_.assign(
        static_cast<size_t>(p),
        std::vector<ChaCha20Rng::Key>(static_cast<size_t>(p)));
    for (int i = 0; i < p; ++i) {
      for (int q = 0; q < p; ++q) {
        if (q == i) continue;
        DASH_ASSIGN_OR_RETURN(Message msg,
                              network_->Receive(i, q, MessageTag::kPublicKey));
        ByteReader r(msg.payload);
        DASH_ASSIGN_OR_RETURN(uint64_t peer_public, r.GetU64());
        const uint64_t shared = DiffieHellman::SharedSecret(
            privates[static_cast<size_t>(i)], peer_public);
        pairwise_keys_[static_cast<size_t>(i)][static_cast<size_t>(q)] =
            DiffieHellman::DeriveKey(shared);
      }
    }
    DASH_LOG(Info) << "masked-aggregation key agreement complete for " << p
                   << " parties";
  }
  setup_done_ = true;
  return Status::Ok();
}

Status SecureVectorSum::ValidateInputs(
    const std::vector<Vector>& inputs) const {
  if (static_cast<int>(inputs.size()) != network_->num_parties()) {
    return InvalidArgumentError(
        "expected one input vector per party (" +
        std::to_string(network_->num_parties()) + "), got " +
        std::to_string(inputs.size()));
  }
  for (const auto& v : inputs) {
    if (v.size() != inputs[0].size()) {
      return InvalidArgumentError("party inputs disagree in length");
    }
  }
  return Status::Ok();
}

Result<Vector> SecureVectorSum::Run(const std::vector<Vector>& inputs) {
  DASH_RETURN_IF_ERROR(Setup());
  DASH_RETURN_IF_ERROR(ValidateInputs(inputs));
  if (network_->num_parties() == 1) return inputs[0];
  ++round_nonce_;
  switch (options_.mode) {
    case AggregationMode::kPublicShare:
      return RunPublic(inputs);
    case AggregationMode::kAdditive:
      return RunAdditive(inputs);
    case AggregationMode::kMasked:
      return RunMasked(inputs);
    case AggregationMode::kShamir:
      return RunShamir(inputs);
  }
  return InternalError("unknown aggregation mode");
}

Result<double> SecureVectorSum::RunScalar(const std::vector<double>& inputs) {
  std::vector<Vector> wrapped(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) wrapped[i] = Vector{inputs[i]};
  DASH_ASSIGN_OR_RETURN(Vector total, Run(wrapped));
  return total[0];
}

Result<Vector> SecureVectorSum::RunPublic(const std::vector<Vector>& inputs) {
  const int p = network_->num_parties();
  network_->BeginRound();
  for (int i = 0; i < p; ++i) {
    ByteWriter w;
    w.PutDoubleVector(inputs[static_cast<size_t>(i)]);
    DASH_RETURN_IF_ERROR(
        network_->Broadcast(i, MessageTag::kPlainStats, w.Take()));
  }
  // Every party computes the identical total; we return party 0's view.
  Vector total = inputs[0];
  for (int q = 1; q < p; ++q) {
    DASH_ASSIGN_OR_RETURN(Message msg,
                          network_->Receive(0, q, MessageTag::kPlainStats));
    ByteReader r(msg.payload);
    DASH_ASSIGN_OR_RETURN(Vector v, r.GetDoubleVector());
    if (v.size() != total.size()) {
      return InternalError("public-share length mismatch");
    }
    for (size_t e = 0; e < total.size(); ++e) total[e] += v[e];
  }
  // Drain the symmetric copies the other parties received.
  for (int i = 1; i < p; ++i) {
    for (int q = 0; q < p; ++q) {
      if (q == i) continue;
      DASH_RETURN_IF_ERROR(
          network_->Receive(i, q, MessageTag::kPlainStats).status());
    }
  }
  return total;
}

Result<Vector> SecureVectorSum::RunAdditive(const std::vector<Vector>& inputs) {
  const int p = network_->num_parties();
  const size_t len = inputs[0].size();

  // Phase 1: share distribution. Party i keeps its own share and sends
  // share j to party j.
  network_->BeginRound();
  std::vector<std::vector<uint64_t>> kept(static_cast<size_t>(p));
  for (int i = 0; i < p; ++i) {
    DASH_ASSIGN_OR_RETURN(std::vector<uint64_t> encoded,
                          codec_.EncodeVector(inputs[static_cast<size_t>(i)]));
    auto shares =
        AdditiveShareVector(encoded, p, &party_rngs_[static_cast<size_t>(i)]);
    kept[static_cast<size_t>(i)] = std::move(shares[static_cast<size_t>(i)]);
    for (int j = 0; j < p; ++j) {
      if (j == i) continue;
      ByteWriter w;
      w.PutU64Vector(shares[static_cast<size_t>(j)]);
      DASH_RETURN_IF_ERROR(
          network_->Send(i, j, MessageTag::kAdditiveShare, w.Take()));
    }
  }

  // Phase 2: each party sums the shares it holds and broadcasts the
  // partial; partials are uniformly random individually.
  network_->BeginRound();
  std::vector<std::vector<uint64_t>> partials(static_cast<size_t>(p));
  for (int j = 0; j < p; ++j) {
    std::vector<uint64_t> partial = std::move(kept[static_cast<size_t>(j)]);
    for (int i = 0; i < p; ++i) {
      if (i == j) continue;
      DASH_ASSIGN_OR_RETURN(
          Message msg, network_->Receive(j, i, MessageTag::kAdditiveShare));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(std::vector<uint64_t> share, r.GetU64Vector());
      if (share.size() != len) {
        return InternalError("additive share length mismatch");
      }
      for (size_t e = 0; e < len; ++e) partial[e] += share[e];
    }
    ByteWriter w;
    w.PutU64Vector(partial);
    DASH_RETURN_IF_ERROR(
        network_->Broadcast(j, MessageTag::kPartialSum, w.Take()));
    partials[static_cast<size_t>(j)] = std::move(partial);
  }

  // Phase 3: everyone sums the partials; we return party 0's view and
  // drain the symmetric messages.
  std::vector<uint64_t> total = partials[0];
  for (int q = 1; q < p; ++q) {
    DASH_ASSIGN_OR_RETURN(Message msg,
                          network_->Receive(0, q, MessageTag::kPartialSum));
    ByteReader r(msg.payload);
    DASH_ASSIGN_OR_RETURN(std::vector<uint64_t> partial, r.GetU64Vector());
    for (size_t e = 0; e < len; ++e) total[e] += partial[e];
  }
  for (int i = 1; i < p; ++i) {
    for (int q = 0; q < p; ++q) {
      if (q == i) continue;
      DASH_RETURN_IF_ERROR(
          network_->Receive(i, q, MessageTag::kPartialSum).status());
    }
  }
  return codec_.DecodeVector(total);
}

Result<Vector> SecureVectorSum::RunMasked(const std::vector<Vector>& inputs) {
  const int p = network_->num_parties();
  const size_t len = inputs[0].size();

  // Single round: broadcast masked contributions.
  network_->BeginRound();
  for (int i = 0; i < p; ++i) {
    DASH_ASSIGN_OR_RETURN(std::vector<uint64_t> encoded,
                          codec_.EncodeVector(inputs[static_cast<size_t>(i)]));
    std::vector<uint64_t> masked = ApplyPairwiseMasks(
        i, encoded, pairwise_keys_[static_cast<size_t>(i)], round_nonce_);
    ByteWriter w;
    w.PutU64Vector(masked);
    DASH_RETURN_IF_ERROR(
        network_->Broadcast(i, MessageTag::kMaskedValue, w.Take()));
  }

  // Every party sums all P masked vectors (its own included); the masks
  // cancel pairwise. Party 0's view is returned, the rest drained.
  DASH_ASSIGN_OR_RETURN(
      std::vector<uint64_t> own,
      codec_.EncodeVector(inputs[0]));
  std::vector<uint64_t> total =
      ApplyPairwiseMasks(0, own, pairwise_keys_[0], round_nonce_);
  for (int q = 1; q < p; ++q) {
    DASH_ASSIGN_OR_RETURN(Message msg,
                          network_->Receive(0, q, MessageTag::kMaskedValue));
    ByteReader r(msg.payload);
    DASH_ASSIGN_OR_RETURN(std::vector<uint64_t> masked, r.GetU64Vector());
    if (masked.size() != len) {
      return InternalError("masked vector length mismatch");
    }
    for (size_t e = 0; e < len; ++e) total[e] += masked[e];
  }
  for (int i = 1; i < p; ++i) {
    for (int q = 0; q < p; ++q) {
      if (q == i) continue;
      DASH_RETURN_IF_ERROR(
          network_->Receive(i, q, MessageTag::kMaskedValue).status());
    }
  }
  return codec_.DecodeVector(total);
}

Result<Vector> SecureVectorSum::RunShamir(const std::vector<Vector>& inputs) {
  const int p = network_->num_parties();
  const size_t len = inputs[0].size();
  const int threshold =
      (options_.shamir_threshold >= 0) ? options_.shamir_threshold
                                       : (p - 1) / 2;
  if (threshold >= p) {
    return InvalidArgumentError("Shamir threshold must be < num parties");
  }
  // The 61-bit field offers less headroom than the 64-bit ring.
  const double field_max =
      std::ldexp(1.0, 60 - options_.frac_bits) / static_cast<double>(p);
  for (const auto& v : inputs) {
    for (const double x : v) {
      if (!(x > -field_max && x < field_max)) {
        return OutOfRangeError(
            "input exceeds Shamir field headroom; lower frac_bits");
      }
    }
  }

  // Phase 1: distribute shares (party j gets the evaluation at x = j+1).
  network_->BeginRound();
  std::vector<std::vector<uint64_t>> held(
      static_cast<size_t>(p), std::vector<uint64_t>(len, 0));
  for (int i = 0; i < p; ++i) {
    // Field-encode the fixed-point quantization of each element.
    std::vector<uint64_t> encoded(len);
    for (size_t e = 0; e < len; ++e) {
      DASH_ASSIGN_OR_RETURN(uint64_t ring,
                            codec_.TryEncode(inputs[static_cast<size_t>(i)][e]));
      encoded[e] = FieldEncodeSigned(static_cast<int64_t>(ring));
    }
    DASH_ASSIGN_OR_RETURN(
        auto shares,
        ShamirSplitVector(encoded, p, threshold,
                          &party_rngs_[static_cast<size_t>(i)]));
    for (int j = 0; j < p; ++j) {
      std::vector<uint64_t> ys(len);
      for (size_t e = 0; e < len; ++e) ys[e] = shares[static_cast<size_t>(j)][e].y;
      if (j == i) {
        for (size_t e = 0; e < len; ++e) {
          held[static_cast<size_t>(j)][e] =
              FieldAdd(held[static_cast<size_t>(j)][e], ys[e]);
        }
      } else {
        ByteWriter w;
        w.PutU64Vector(ys);
        DASH_RETURN_IF_ERROR(
            network_->Send(i, j, MessageTag::kShamirShare, w.Take()));
      }
    }
  }

  // Fault injection: the last `dropouts` parties crash here — after
  // their inputs were share-distributed, before contributing sum shares.
  const int dropouts = options_.simulate_shamir_dropouts;
  if (dropouts < 0 || (dropouts > 0 && p - dropouts < threshold + 1)) {
    return InvalidArgumentError(
        "cannot drop " + std::to_string(dropouts) + " of " +
        std::to_string(p) + " parties at threshold " +
        std::to_string(threshold) + "; need >= t+1 survivors");
  }
  const int survivors = p - dropouts;

  // Phase 2: each surviving party sums the shares it holds (a share of
  // the total by linearity) and broadcasts it to the other survivors.
  network_->BeginRound();
  for (int j = 0; j < survivors; ++j) {
    for (int i = 0; i < p; ++i) {
      if (i == j) continue;
      DASH_ASSIGN_OR_RETURN(Message msg,
                            network_->Receive(j, i, MessageTag::kShamirShare));
      ByteReader r(msg.payload);
      DASH_ASSIGN_OR_RETURN(std::vector<uint64_t> ys, r.GetU64Vector());
      if (ys.size() != len) return InternalError("Shamir share length mismatch");
      for (size_t e = 0; e < len; ++e) {
        held[static_cast<size_t>(j)][e] =
            FieldAdd(held[static_cast<size_t>(j)][e], ys[e]);
      }
    }
    ByteWriter w;
    w.PutU64Vector(held[static_cast<size_t>(j)]);
    const std::vector<uint8_t> payload = w.Take();
    for (int to = 0; to < survivors; ++to) {
      if (to == j) continue;
      DASH_RETURN_IF_ERROR(
          network_->Send(j, to, MessageTag::kPartialSum, payload));
    }
  }
  // Crashed parties' queued incoming shares are abandoned, as they would
  // be on a real network; drain them so the simulation's bookkeeping
  // stays clean.
  for (int j = survivors; j < p; ++j) {
    for (int i = 0; i < p; ++i) {
      if (i == j) continue;
      while (network_->HasPending(j, i)) {
        DASH_RETURN_IF_ERROR(
            network_->Receive(j, i, MessageTag::kShamirShare).status());
      }
    }
  }

  // Phase 3: survivors reconstruct at x = 0 from their own evaluation
  // points. The crashed parties' INPUTS are still in the total: every
  // survivor's sum share already includes the shares those parties
  // distributed in phase 1.
  std::vector<uint64_t> xs(static_cast<size_t>(survivors));
  for (int j = 0; j < survivors; ++j) xs[static_cast<size_t>(j)] = static_cast<uint64_t>(j) + 1;
  DASH_ASSIGN_OR_RETURN(std::vector<uint64_t> weights, LagrangeWeightsAtZero(xs));

  std::vector<std::vector<uint64_t>> sum_shares(static_cast<size_t>(survivors));
  sum_shares[0] = held[0];
  for (int q = 1; q < survivors; ++q) {
    DASH_ASSIGN_OR_RETURN(Message msg,
                          network_->Receive(0, q, MessageTag::kPartialSum));
    ByteReader r(msg.payload);
    DASH_ASSIGN_OR_RETURN(sum_shares[static_cast<size_t>(q)], r.GetU64Vector());
  }
  for (int i = 1; i < survivors; ++i) {
    for (int q = 0; q < survivors; ++q) {
      if (q == i) continue;
      DASH_RETURN_IF_ERROR(
          network_->Receive(i, q, MessageTag::kPartialSum).status());
    }
  }

  Vector result(len);
  for (size_t e = 0; e < len; ++e) {
    uint64_t acc = 0;
    for (int j = 0; j < survivors; ++j) {
      acc = FieldAdd(acc, FieldMul(weights[static_cast<size_t>(j)],
                                   sum_shares[static_cast<size_t>(j)][e]));
    }
    const int64_t signed_ring = FieldDecodeSigned(acc);
    result[e] = codec_.Decode(static_cast<uint64_t>(signed_ring));
  }
  return result;
}

}  // namespace dash
