#include "mpc/shamir.h"

#include <cmath>
#include <string>
#include <utility>

#include "mpc/prime_field.h"

namespace dash {
namespace {

Status ValidateParams(int n, int t) {
  if (n < 1) return InvalidArgumentError("need at least one share");
  if (t < 0 || t >= n) {
    return InvalidArgumentError("threshold t=" + std::to_string(t) +
                                " must satisfy 0 <= t < n=" +
                                std::to_string(n));
  }
  return Status::Ok();
}

// Evaluates sum_k coeffs[k] * x^k by Horner's rule.
uint64_t PolyEval(const std::vector<uint64_t>& coeffs, uint64_t x) {
  uint64_t acc = 0;
  for (size_t k = coeffs.size(); k-- > 0;) {
    acc = FieldAdd(FieldMul(acc, x), coeffs[k]);
  }
  return acc;
}

}  // namespace

Result<std::vector<ShamirShare>> ShamirSplit(uint64_t secret, int n, int t,
                                             Rng* rng) {
  DASH_RETURN_IF_ERROR(ValidateParams(n, t));
  if (secret >= kFieldPrime) {
    return InvalidArgumentError("secret is not a field element");
  }
  std::vector<uint64_t> coeffs(static_cast<size_t>(t) + 1);
  coeffs[0] = secret;
  for (int k = 1; k <= t; ++k) coeffs[static_cast<size_t>(k)] = FieldUniform(rng);
  std::vector<ShamirShare> shares(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const uint64_t x = static_cast<uint64_t>(i) + 1;
    shares[static_cast<size_t>(i)] = ShamirShare{x, PolyEval(coeffs, x)};
  }
  return shares;
}

Result<uint64_t> ShamirReconstruct(const std::vector<ShamirShare>& shares) {
  if (shares.empty()) return InvalidArgumentError("no shares given");
  for (size_t i = 0; i < shares.size(); ++i) {
    for (size_t j = i + 1; j < shares.size(); ++j) {
      if (shares[i].x == shares[j].x) {
        return InvalidArgumentError("duplicate share evaluation point");
      }
    }
  }
  // Lagrange basis at 0: l_i = prod_{j != i} x_j / (x_j - x_i).
  uint64_t secret = 0;
  for (size_t i = 0; i < shares.size(); ++i) {
    uint64_t num = 1;
    uint64_t den = 1;
    for (size_t j = 0; j < shares.size(); ++j) {
      if (j == i) continue;
      num = FieldMul(num, shares[j].x);
      den = FieldMul(den, FieldSub(shares[j].x, shares[i].x));
    }
    const uint64_t li = FieldMul(num, FieldInv(den));
    secret = FieldAdd(secret, FieldMul(shares[i].y, li));
  }
  return secret;
}

Result<std::vector<std::vector<ShamirShare>>> ShamirSplitVector(
    const std::vector<uint64_t>& secrets, int n, int t, Rng* rng) {
  DASH_RETURN_IF_ERROR(ValidateParams(n, t));
  std::vector<std::vector<ShamirShare>> out(
      static_cast<size_t>(n), std::vector<ShamirShare>(secrets.size()));
  for (size_t e = 0; e < secrets.size(); ++e) {
    DASH_ASSIGN_OR_RETURN(std::vector<ShamirShare> shares,
                          ShamirSplit(secrets[e], n, t, rng));
    for (int j = 0; j < n; ++j) out[static_cast<size_t>(j)][e] = shares[static_cast<size_t>(j)];
  }
  return out;
}

Result<std::vector<uint64_t>> LagrangeWeightsAtZero(
    const std::vector<uint64_t>& xs) {
  if (xs.empty()) return InvalidArgumentError("no evaluation points");
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] == 0 || xs[i] >= kFieldPrime) {
      return InvalidArgumentError("evaluation points must be nonzero field elements");
    }
    for (size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[i] == xs[j]) {
        return InvalidArgumentError("duplicate evaluation point");
      }
    }
  }
  std::vector<uint64_t> weights(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    uint64_t num = 1;
    uint64_t den = 1;
    for (size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      num = FieldMul(num, xs[j]);
      den = FieldMul(den, FieldSub(xs[j], xs[i]));
    }
    weights[i] = FieldMul(num, FieldInv(den));
  }
  return weights;
}

Result<Secret<RingVector>> ShamirFieldEncode(const FixedPointCodec& codec,
                                             const Secret<Vector>& input,
                                             int num_parties) {
  if (num_parties < 1) return InvalidArgumentError("need at least one party");
  // The 61-bit field offers less headroom than the 64-bit ring.
  const double field_max = std::ldexp(1.0, 60 - codec.frac_bits()) /
                           static_cast<double>(num_parties);
  const Vector& raw = input.Reveal(MpcPass::Get());
  for (const double x : raw) {
    if (!(x > -field_max && x < field_max)) {
      return OutOfRangeError(
          "input exceeds Shamir field headroom; lower frac_bits");
    }
  }
  RingVector encoded(raw.size());
  for (size_t e = 0; e < raw.size(); ++e) {
    DASH_ASSIGN_OR_RETURN(uint64_t ring, codec.TryEncode(raw[e]));
    encoded[e] = FieldEncodeSigned(static_cast<int64_t>(ring));
  }
  return Secret<RingVector>(std::move(encoded));
}

Result<std::vector<Secret<RingVector>>> ShamirShareVectorForParties(
    const Secret<RingVector>& field_secrets, int n, int t, Rng* rng) {
  DASH_ASSIGN_OR_RETURN(
      auto shares,
      ShamirSplitVector(field_secrets.Reveal(MpcPass::Get()), n, t, rng));
  std::vector<Secret<RingVector>> out;
  out.reserve(shares.size());
  for (const auto& party_shares : shares) {
    RingVector ys(party_shares.size());
    for (size_t e = 0; e < party_shares.size(); ++e) ys[e] = party_shares[e].y;
    out.emplace_back(std::move(ys));
  }
  return out;
}

Result<Masked<RingVector>> AccumulateShamirShares(
    const Secret<RingVector>& own_share,
    const std::vector<RingVector>& received_shares) {
  RingVector held = own_share.Reveal(MpcPass::Get());
  for (const RingVector& ys : received_shares) {
    if (ys.size() != held.size()) {
      return InternalError("Shamir share length mismatch");
    }
    for (size_t e = 0; e < held.size(); ++e) held[e] = FieldAdd(held[e], ys[e]);
  }
  return Masked<RingVector>::Seal(std::move(held), MpcPass::Get());
}

Result<Vector> OpenShamirTotal(const Masked<RingVector>& own_partial,
                               int own_index,
                               const std::vector<RingVector>& partials_by_party,
                               const FixedPointCodec& codec) {
  const int survivors = static_cast<int>(partials_by_party.size());
  if (own_index < 0 || own_index >= survivors) {
    return InvalidArgumentError("own_index outside the survivor set");
  }
  const RingVector& own = own_partial.wire();
  const size_t len = own.size();
  std::vector<uint64_t> xs(static_cast<size_t>(survivors));
  for (int j = 0; j < survivors; ++j) {
    xs[static_cast<size_t>(j)] = static_cast<uint64_t>(j) + 1;
  }
  DASH_ASSIGN_OR_RETURN(std::vector<uint64_t> weights,
                        LagrangeWeightsAtZero(xs));
  for (int j = 0; j < survivors; ++j) {
    if (j == own_index) continue;
    if (partials_by_party[static_cast<size_t>(j)].size() != len) {
      return InternalError("Shamir sum share length mismatch");
    }
  }
  Vector result(len);
  for (size_t e = 0; e < len; ++e) {
    uint64_t acc = 0;
    for (int j = 0; j < survivors; ++j) {
      const uint64_t y = (j == own_index)
                             ? own[e]
                             : partials_by_party[static_cast<size_t>(j)][e];
      acc = FieldAdd(acc, FieldMul(weights[static_cast<size_t>(j)], y));
    }
    const int64_t signed_ring = FieldDecodeSigned(acc);
    result[e] = codec.Decode(static_cast<uint64_t>(signed_ring));
  }
  return result;
}

Result<std::vector<uint64_t>> ShamirReconstructVector(
    const std::vector<std::vector<ShamirShare>>& share_vectors) {
  if (share_vectors.empty()) {
    return InvalidArgumentError("no share vectors given");
  }
  const size_t len = share_vectors[0].size();
  for (const auto& sv : share_vectors) {
    if (sv.size() != len) {
      return InvalidArgumentError("share vectors disagree in length");
    }
  }
  std::vector<uint64_t> out(len);
  std::vector<ShamirShare> column(share_vectors.size());
  for (size_t e = 0; e < len; ++e) {
    for (size_t j = 0; j < share_vectors.size(); ++j) column[j] = share_vectors[j][e];
    DASH_ASSIGN_OR_RETURN(out[e], ShamirReconstruct(column));
  }
  return out;
}

}  // namespace dash
