#include "mpc/fixed_point.h"

#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/strings.h"

namespace dash {

FixedPointCodec::FixedPointCodec(int frac_bits) : frac_bits_(frac_bits) {
  DASH_CHECK(1 <= frac_bits && frac_bits <= 62) << "frac_bits=" << frac_bits;
  scale_ = std::ldexp(1.0, frac_bits);
  max_magnitude_ = std::ldexp(1.0, 63 - frac_bits);
  resolution_ = 1.0 / scale_;
}

uint64_t FixedPointCodec::Encode(double value) const {
  Result<uint64_t> r = TryEncode(value);
  DASH_CHECK(r.ok()) << r.status().ToString();
  return r.value();
}

Result<uint64_t> FixedPointCodec::TryEncode(double value) const {
  if (!std::isfinite(value)) {
    return InvalidArgumentError("cannot fixed-point encode non-finite value");
  }
  const double scaled = value * scale_;
  // Strict bound: int64 range is [-2^63, 2^63).
  if (!(scaled >= -9.223372036854775808e18 && scaled < 9.223372036854775808e18)) {
    return OutOfRangeError("value " + DoubleToString(value) +
                           " exceeds fixed-point range (frac_bits=" +
                           std::to_string(frac_bits_) + ")");
  }
  const int64_t q = static_cast<int64_t>(std::llround(scaled));
  return static_cast<uint64_t>(q);
}

double FixedPointCodec::Decode(uint64_t ring_value) const {
  return static_cast<double>(static_cast<int64_t>(ring_value)) * resolution_;
}

Result<std::vector<uint64_t>> FixedPointCodec::EncodeVector(
    const Vector& values) const {
  std::vector<uint64_t> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    DASH_ASSIGN_OR_RETURN(out[i], TryEncode(values[i]));
  }
  return out;
}

Result<Secret<RingVector>> FixedPointCodec::EncodeSecretVector(
    const Secret<Vector>& values) const {
  DASH_ASSIGN_OR_RETURN(RingVector encoded,
                        EncodeVector(values.Reveal(MpcPass::Get())));
  return Secret<RingVector>(std::move(encoded));
}

Vector FixedPointCodec::DecodeVector(
    const std::vector<uint64_t>& ring_values) const {
  Vector out(ring_values.size());
  for (size_t i = 0; i < ring_values.size(); ++i) out[i] = Decode(ring_values[i]);
  return out;
}

}  // namespace dash
