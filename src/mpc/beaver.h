// Beaver multiplication triples over the ring Z_2^64.
//
// A triple is an additive sharing of (a, b, c = a*b) with a, b uniform.
// Holding shares [x], [y], parties open the masked values d = x - a and
// e = y - b (each uniform, so nothing leaks) and locally form
//
//   [x*y] = d*e + d*[b] + e*[a] + [c]       (d*e added by one party)
//
// which is an additive sharing of the product. This is the workhorse of
// the paper's "more sophisticated SMC algorithm to only share ... two
// dot products of K-vectors for each m" (§3): with multiplication on
// shares, the parties never reveal QᵀX or Qᵀy themselves, only the
// final projected scalars.
//
// Triples are produced by a trusted-dealer simulation (the standard
// "offline phase" abstraction; production systems generate them with OT
// or homomorphic encryption, which is orthogonal to the protocol above).

#ifndef DASH_MPC_BEAVER_H_
#define DASH_MPC_BEAVER_H_

#include <cstdint>
#include <vector>

#include "mpc/secrecy.h"
#include "util/random.h"
#include "util/status.h"

namespace dash {

struct BeaverTripleShare {
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};

// Dealer-simulated triple source: Deal(n) returns, for each party, n
// triple shares such that the per-index share sums satisfy c = a * b
// (mod 2^64) with a, b uniform. Triple shares are Secret: a party's
// (a, b, c) must never leave the process, only the masked d = x - a,
// e = y - b openings do.
class DealerTripleProvider {
 public:
  // num_parties >= 1; seed drives the dealer's randomness.
  DealerTripleProvider(int num_parties, uint64_t seed);

  // shares[p][i] is party p's share of triple i.
  std::vector<std::vector<Secret<BeaverTripleShare>>> Deal(int64_t count);

  int num_parties() const { return num_parties_; }

 private:
  int num_parties_;
  Rng rng_;
};

// Local Beaver reconstruction step: given the OPENED d and e and this
// party's triple share, returns the party's additive share of x*y.
// `include_de` must be true for exactly one party (it contributes the
// public d*e term). The result is a share — secret material despite
// its plain type.
DASH_SECRET_SOURCE
[[nodiscard]] uint64_t BeaverProductShare(
    uint64_t d, uint64_t e, const Secret<BeaverTripleShare>& triple,
    bool include_de);

}  // namespace dash

#endif  // DASH_MPC_BEAVER_H_
