// Fixed-point encoding of reals into the ring Z_2^64.
//
// Ring-based secure aggregation (additive shares, PRG masks) operates on
// uint64 ring elements; real-valued statistics are quantized as
// round(x * 2^frac_bits) in two's complement. Addition in the ring then
// corresponds exactly to fixed-point addition as long as the true sum
// stays inside the representable range |x| < 2^(63 - frac_bits).
//
// The default of 40 fractional bits gives ~9e-13 resolution with
// headroom to ~8.4e6 in magnitude, comfortable for the scan's sufficient
// statistics (see experiment E10 for the precision/headroom ablation).

#ifndef DASH_MPC_FIXED_POINT_H_
#define DASH_MPC_FIXED_POINT_H_

#include <cstdint>
#include <vector>

#include "linalg/vector_ops.h"
#include "mpc/secrecy.h"
#include "util/status.h"

namespace dash {

class FixedPointCodec {
 public:
  static constexpr int kDefaultFracBits = 40;

  // frac_bits must lie in [1, 62].
  explicit FixedPointCodec(int frac_bits = kDefaultFracBits);

  int frac_bits() const { return frac_bits_; }

  // Largest magnitude representable without wrapping.
  double MaxMagnitude() const { return max_magnitude_; }

  // Quantization step 2^-frac_bits.
  double Resolution() const { return resolution_; }

  // Encodes; DASH_CHECKs that |value| is in range and finite. Use
  // TryEncode when the input is not already validated.
  uint64_t Encode(double value) const;
  Result<uint64_t> TryEncode(double value) const;

  // Inverse of Encode (interprets the ring element as two's complement).
  double Decode(uint64_t ring_value) const;

  // Element-wise vector forms.
  Result<std::vector<uint64_t>> EncodeVector(const Vector& values) const;
  Vector DecodeVector(const std::vector<uint64_t>& ring_values) const;

  // Secrecy-preserving vector encode: a Secret in, a Secret out. This
  // is the entry point protocol code uses on a party's private
  // contribution; the raw EncodeVector remains for already-public data.
  Result<Secret<RingVector>> EncodeSecretVector(
      const Secret<Vector>& values) const;

 private:
  int frac_bits_;
  double scale_;
  double max_magnitude_;
  double resolution_;
};

// Ring addition/subtraction (wrapping); spelled out for readability at
// protocol call sites.
inline uint64_t RingAdd(uint64_t a, uint64_t b) { return a + b; }
inline uint64_t RingSub(uint64_t a, uint64_t b) { return a - b; }

}  // namespace dash

#endif  // DASH_MPC_FIXED_POINT_H_
