// Secure multi-party vector summation over the simulated network.
//
// This is the protocol the paper's §3 invokes to combine the parties'
// sufficient-statistic summands "by computing their internal summands and
// either sharing them to sum or by applying an SMC sum protocol which
// only reveals the overall sum". Four interchangeable modes:
//
//  * kPublicShare — every party broadcasts its plaintext contribution;
//    not secure, exact in doubles; the baseline the secure modes are
//    measured against ("sharing them to sum").
//  * kAdditive — each party additively secret-shares its fixed-point
//    contribution among all parties; parties broadcast their share sums;
//    only the total is revealed. Two vector rounds.
//  * kMasked — pairwise ChaCha20 masks that cancel in the total
//    (Bonawitz-style); one vector round after a one-time key agreement.
//  * kShamir — Shamir sharing over F_(2^61-1) with threshold
//    floor((P-1)/2); tolerates dropouts; two vector rounds.
//
// All modes reveal exactly the element-wise sum to every party and cost
// O(length) bytes per link, independent of the per-party sample counts —
// the communication property experiment E3 verifies.

#ifndef DASH_MPC_SECURE_SUM_H_
#define DASH_MPC_SECURE_SUM_H_

#include <cstdint>
#include <vector>

#include "linalg/vector_ops.h"
#include "mpc/fixed_point.h"
#include "mpc/secrecy.h"
#include "transport/transport.h"
#include "util/chacha20.h"
#include "util/random.h"
#include "util/status.h"

namespace dash {

enum class AggregationMode {
  kPublicShare = 0,
  kAdditive = 1,
  kMasked = 2,
  kShamir = 3,
};

// Stable name, e.g. "masked".
const char* AggregationModeName(AggregationMode mode);

struct SecureSumOptions {
  AggregationMode mode = AggregationMode::kMasked;

  // Fixed-point fractional bits for the ring/field encodings. Note the
  // Shamir field is 61 bits wide, so its headroom is 2^(60 - frac_bits)
  // rather than 2^(63 - frac_bits).
  int frac_bits = FixedPointCodec::kDefaultFracBits;

  // Shamir reconstruction threshold; -1 selects floor((P-1)/2).
  int shamir_threshold = -1;

  // Fault-injection: this many parties (the highest-indexed ones) crash
  // after distributing their input shares but before broadcasting their
  // sum shares. Shamir mode still recovers the full total — including
  // the crashed parties' inputs — as long as
  // P - dropouts >= threshold + 1; other modes cannot tolerate any.
  int simulate_shamir_dropouts = 0;

  // Seed for the per-party randomness (shares, masks, DH exponents).
  uint64_t seed = 0xda5b;

  // Domain separator mixed into the seed chain (0 = none, the exact
  // historical chain). Concurrent logical sessions over one mesh set
  // this to their session id so no two sessions ever derive the same DH
  // exponents — and therefore never share pairwise mask keys — even
  // when every job runs with the same protocol seed. The revealed total
  // is independent of the randomness (ring/field sums are exact), so
  // results stay bit-identical across domains.
  uint64_t mask_domain = 0;
};

// Wraps each party's plaintext contribution for Run(). Wrapping is
// always safe — it is reading BACK that the secrecy types gate — so
// this is the standard bridge for in-process drivers and tests whose
// per-party inputs are generated locally.
[[nodiscard]] std::vector<Secret<Vector>> ToSecretInputs(
    std::vector<Vector> inputs);

// Drives all parties of the sum protocol in-process over `network`.
// The object owns per-party state (RNGs, pairwise keys) so repeated
// Run() calls reuse the one-time setup, as a long-lived deployment would.
class SecureVectorSum {
 public:
  // `network` must outlive this object.
  SecureVectorSum(Transport* network, const SecureSumOptions& options);

  // One-time setup. For kMasked this runs the Diffie-Hellman pairwise
  // key agreement over the network; other modes are no-ops. Idempotent.
  Status Setup();

  // inputs[p] is party p's PRIVATE contribution (mpc/secrecy.h); all
  // must share one length. Returns the element-wise total — the one
  // value the protocol declares public — as revealed to every party.
  // Runs Setup() on first use if the caller did not.
  Result<Vector> Run(const std::vector<Secret<Vector>>& inputs);

  // Scalar convenience (tests and small drivers); wraps each summand
  // before any protocol work.
  Result<double> RunScalar(const std::vector<double>& inputs);

  const SecureSumOptions& options() const { return options_; }

 private:
  Status ValidateInputs(const std::vector<Secret<Vector>>& inputs) const;
  Result<Vector> RunPublic(const std::vector<Secret<Vector>>& inputs);
  Result<Vector> RunAdditive(const std::vector<Secret<Vector>>& inputs);
  Result<Vector> RunMasked(const std::vector<Secret<Vector>>& inputs);
  Result<Vector> RunShamir(const std::vector<Secret<Vector>>& inputs);

  Transport* network_;
  SecureSumOptions options_;
  FixedPointCodec codec_;
  std::vector<Rng> party_rngs_;
  // pairwise_keys_[p][q]: key party p shares with party q (kMasked only).
  // Mask keys are secret material (mpc/secrecy.h).
  std::vector<std::vector<Secret<ChaCha20Rng::Key>>> pairwise_keys_;
  uint64_t round_nonce_ = 0;
  bool setup_done_ = false;
};

}  // namespace dash

#endif  // DASH_MPC_SECURE_SUM_H_
