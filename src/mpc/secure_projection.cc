#include "mpc/secure_projection.h"

#include <cmath>
#include <string>
#include <utility>

#include "net/round_annotations.h"
#include "util/check.h"

namespace dash {
namespace {

// Encodes a double with `frac_bits` fractional bits into the ring.
inline uint64_t RingEncode(double v, double scale) {
  return static_cast<uint64_t>(static_cast<int64_t>(std::llround(v * scale)));
}

// Decodes a ring value carrying 2*frac_bits fractional bits.
inline double RingDecodeProduct(uint64_t v, double inv_scale2) {
  return static_cast<double>(static_cast<int64_t>(v)) * inv_scale2;
}

}  // namespace

SecureProjectedAggregation::SecureProjectedAggregation(
    Transport* network, const SecureProjectionOptions& options)
    : network_(network), options_(options),
      dealer_(network->num_parties(), options.seed) {
  DASH_CHECK(network != nullptr);
  DASH_CHECK(options.frac_bits >= 1 && options.frac_bits <= 30)
      << "frac_bits=" << options.frac_bits;
}

Result<ProjectedStats> SecureProjectedAggregation::Run(
    const std::vector<Secret<Vector>>& qty_summands,
    const std::vector<Secret<Matrix>>& qtx_summands) {
  const int p = network_->num_parties();
  if (static_cast<int>(qty_summands.size()) != p ||
      static_cast<int>(qtx_summands.size()) != p) {
    return InvalidArgumentError("expected one summand per party");
  }
  constexpr MpcPass pass = MpcPass::Get();
  const int64_t k = static_cast<int64_t>(qty_summands[0].Reveal(pass).size());
  const int64_t m = qtx_summands[0].Reveal(pass).cols();
  for (int i = 0; i < p; ++i) {
    if (static_cast<int64_t>(
            qty_summands[static_cast<size_t>(i)].Reveal(pass).size()) != k ||
        qtx_summands[static_cast<size_t>(i)].Reveal(pass).rows() != k ||
        qtx_summands[static_cast<size_t>(i)].Reveal(pass).cols() != m) {
      return InvalidArgumentError("summand shapes disagree across parties");
    }
  }
  if (k == 0) {
    ProjectedStats empty;
    empty.qtx_qty.assign(static_cast<size_t>(m), 0.0);
    empty.qtx_qtx.assign(static_cast<size_t>(m), 0.0);
    return empty;
  }

  // Headroom: the opened products sum K terms of (P * bound)^2 * 2^(2f);
  // require the worst case to stay inside the signed 63-bit range.
  const double scale = std::ldexp(1.0, options_.frac_bits);
  const double inv_scale2 = std::ldexp(1.0, -2 * options_.frac_bits);
  const double bound =
      std::sqrt(std::ldexp(1.0, 62 - 2 * options_.frac_bits) /
                static_cast<double>(k)) /
      static_cast<double>(p);
  for (int i = 0; i < p; ++i) {
    double worst = MaxAbs(qty_summands[static_cast<size_t>(i)].Reveal(pass));
    const Matrix& qtx_i = qtx_summands[static_cast<size_t>(i)].Reveal(pass);
    for (int64_t e = 0; e < qtx_i.size(); ++e) {
      worst = std::max(worst, std::fabs(qtx_i.data()[e]));
    }
    if (!(worst <= bound)) {
      // The offending magnitude is secret-derived and deliberately kept
      // out of the (loggable) error message; only the public bound is
      // reported.
      return OutOfRangeError(
          "projected summand magnitude exceeds Beaver fixed-point headroom " +
          std::to_string(bound) + "; lower frac_bits");
    }
  }

  // Multiplication layout (all element-wise, summed locally afterwards):
  //   [0, K)                   : qty_k   * qty_k
  //   [K + m*2K, K + m*2K + K) : qtx_km  * qty_k
  //   [... + K, ... + 2K)      : qtx_km  * qtx_km
  const int64_t total_mults = k + 2 * k * m;
  const auto triples = dealer_.Deal(total_mults);

  // Per-party ring encodings of the (x, y) operands per multiplication.
  const auto operands_for = [&](int party, int64_t mult,
                                uint64_t* x, uint64_t* y) {
    const Vector& qty = qty_summands[static_cast<size_t>(party)].Reveal(pass);
    const Matrix& qtx = qtx_summands[static_cast<size_t>(party)].Reveal(pass);
    if (mult < k) {
      const uint64_t u = RingEncode(qty[static_cast<size_t>(mult)], scale);
      *x = u;
      *y = u;
      return;
    }
    const int64_t rem = mult - k;
    const int64_t col = rem / (2 * k);
    const int64_t within = rem % (2 * k);
    if (within < k) {
      *x = RingEncode(qtx(within, col), scale);
      *y = RingEncode(qty[static_cast<size_t>(within)], scale);
    } else {
      const uint64_t v = RingEncode(qtx(within - k, col), scale);
      *x = v;
      *y = v;
    }
  };

  // Round 1: every party broadcasts its shares of d = x - a, e = y - b.
  // Each d/e share is offset by a uniform triple component, so it is
  // individually uniform — sealed Masked for the wire.
  network_->BeginRound();
  std::vector<Masked<RingVector>> de_shares(static_cast<size_t>(p));
  for (int i = 0; i < p; ++i) {
    RingVector mine(static_cast<size_t>(2 * total_mults));
    for (int64_t t = 0; t < total_mults; ++t) {
      uint64_t x = 0;
      uint64_t y = 0;
      operands_for(i, t, &x, &y);
      const BeaverTripleShare& share =
          triples[static_cast<size_t>(i)][static_cast<size_t>(t)].Reveal(pass);
      mine[static_cast<size_t>(2 * t)] = x - share.a;
      mine[static_cast<size_t>(2 * t + 1)] = y - share.b;
    }
    de_shares[static_cast<size_t>(i)] =
        Masked<RingVector>::Seal(std::move(mine), pass);
    DASH_ROUND(beaver_open_operands, kMaskedValue);
    DASH_RETURN_IF_ERROR(
        network_->Broadcast(i, MessageTag::kMaskedValue,
                            MaskAndSerialize(de_shares[static_cast<size_t>(i)])));
  }
  // Open d, e (every party computes the same sums; we drain symmetric
  // copies after computing the canonical view).
  std::vector<uint64_t> opened(static_cast<size_t>(2 * total_mults), 0);
  for (int i = 0; i < p; ++i) {
    const auto& mine = de_shares[static_cast<size_t>(i)].wire();
    for (size_t e = 0; e < opened.size(); ++e) opened[e] += mine[e];
  }
  for (int to = 0; to < p; ++to) {
    for (int from = 0; from < p; ++from) {
      if (from == to) continue;
      DASH_ROUND(beaver_open_operands, kMaskedValue);
      DASH_RETURN_IF_ERROR(
          network_->Receive(to, from, MessageTag::kMaskedValue).status());
    }
  }

  // Local: product shares, folded into each party's share of the three
  // result families.
  const size_t result_len = static_cast<size_t>(2 * m + 1);
  std::vector<Masked<RingVector>> result_shares(static_cast<size_t>(p));
  for (int i = 0; i < p; ++i) {
    RingVector mine(result_len, 0);
    const bool adds_de = (i == 0);
    for (int64_t t = 0; t < total_mults; ++t) {
      const uint64_t d = opened[static_cast<size_t>(2 * t)];
      const uint64_t e = opened[static_cast<size_t>(2 * t + 1)];
      const uint64_t prod = BeaverProductShare(
          d, e, triples[static_cast<size_t>(i)][static_cast<size_t>(t)],
          adds_de);
      size_t slot;
      if (t < k) {
        slot = 0;  // qty.qty
      } else {
        const int64_t rem = t - k;
        const int64_t col = rem / (2 * k);
        slot = (rem % (2 * k) < k) ? static_cast<size_t>(1 + col)
                                   : static_cast<size_t>(1 + m + col);
      }
      mine[slot] += prod;
    }
    result_shares[static_cast<size_t>(i)] =
        Masked<RingVector>::Seal(std::move(mine), pass);
  }

  // Round 2: open the results. A result share is one additive share of
  // the revealed scalars — individually uniform, hence Masked.
  network_->BeginRound();
  for (int i = 0; i < p; ++i) {
    DASH_ROUND(beaver_open_result, kPartialSum);
    DASH_RETURN_IF_ERROR(
        network_->Broadcast(i, MessageTag::kPartialSum,
                            MaskAndSerialize(result_shares[static_cast<size_t>(i)])));
  }
  std::vector<uint64_t> totals(result_len, 0);
  for (int i = 0; i < p; ++i) {
    for (size_t e = 0; e < result_len; ++e) {
      totals[e] += result_shares[static_cast<size_t>(i)].wire()[e];
    }
  }
  for (int to = 0; to < p; ++to) {
    for (int from = 0; from < p; ++from) {
      if (from == to) continue;
      DASH_ROUND(beaver_open_result, kPartialSum);
      DASH_RETURN_IF_ERROR(
          network_->Receive(to, from, MessageTag::kPartialSum).status());
    }
  }

  ProjectedStats out;
  out.qty_qty = RingDecodeProduct(totals[0], inv_scale2);
  out.qtx_qty.resize(static_cast<size_t>(m));
  out.qtx_qtx.resize(static_cast<size_t>(m));
  for (int64_t j = 0; j < m; ++j) {
    out.qtx_qty[static_cast<size_t>(j)] =
        RingDecodeProduct(totals[static_cast<size_t>(1 + j)], inv_scale2);
    out.qtx_qtx[static_cast<size_t>(j)] =
        RingDecodeProduct(totals[static_cast<size_t>(1 + m + j)], inv_scale2);
  }
  return out;
}

}  // namespace dash
