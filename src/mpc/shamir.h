// Shamir secret sharing over F_p, p = 2^61 - 1.
//
// A secret s becomes the constant term of a uniformly random degree-t
// polynomial f; party i (1-indexed evaluation point) receives f(i). Any
// t+1 shares reconstruct s by Lagrange interpolation at 0; any t shares
// reveal nothing. Compared with additive sharing this tolerates up to
// n - (t+1) dropouts, at the cost of field arithmetic — experiment E8
// measures the difference.

#ifndef DASH_MPC_SHAMIR_H_
#define DASH_MPC_SHAMIR_H_

#include <cstdint>
#include <vector>

#include "mpc/fixed_point.h"
#include "mpc/secrecy.h"
#include "util/random.h"
#include "util/status.h"

namespace dash {

struct ShamirShare {
  uint64_t x = 0;  // evaluation point (party index + 1), in F_p
  uint64_t y = 0;  // polynomial value, in F_p
};

// Splits `secret` (an F_p element) into n shares with threshold t:
// any t+1 shares reconstruct. Requires 0 <= t < n and secret < p.
// Scalar legacy primitive kept for the unit tests; the returned shares
// are secret material despite their plain type.
DASH_SECRET_SOURCE
Result<std::vector<ShamirShare>> ShamirSplit(uint64_t secret, int n, int t,
                                             Rng* rng);

// Lagrange interpolation at 0 over the given shares (all x distinct,
// at least one share). The caller must supply >= t+1 honest shares for a
// correct result; the math itself only needs the points given.
Result<uint64_t> ShamirReconstruct(const std::vector<ShamirShare>& shares);

// Vector forms: result[j] holds party j's share of every element.
// Scalar-struct legacy form for the unit tests (see ShamirSplit).
DASH_SECRET_SOURCE
Result<std::vector<std::vector<ShamirShare>>> ShamirSplitVector(
    const std::vector<uint64_t>& secrets, int n, int t, Rng* rng);

Result<std::vector<uint64_t>> ShamirReconstructVector(
    const std::vector<std::vector<ShamirShare>>& share_vectors);

// Lagrange basis weights at 0 for fixed evaluation points (all distinct,
// nonzero): reconstruct(y) = sum_i weights[i] * y[i]. Precomputing these
// turns per-element reconstruction into one multiply-add per share.
Result<std::vector<uint64_t>> LagrangeWeightsAtZero(
    const std::vector<uint64_t>& xs);

// --- Typed protocol API (mpc/secrecy.h) ------------------------------
//
// The per-party secure-sum flow: field-encode the private contribution,
// split it (party j's share is the evaluation at x = j+1, carried as a
// bare y-vector), accumulate the shares a party holds into its partial
// (individually uniform, hence Masked), and open the total from every
// survivor's partial.

// Fixed-point + field encoding of a private contribution, with the
// headroom check for the 61-bit field shared among `num_parties`.
Result<Secret<RingVector>> ShamirFieldEncode(const FixedPointCodec& codec,
                                             const Secret<Vector>& input,
                                             int num_parties);

// Splits every element of `field_secrets` for n parties at threshold t.
// result[j] holds the y-values destined for party j (x = j+1 implied).
Result<std::vector<Secret<RingVector>>> ShamirShareVectorForParties(
    const Secret<RingVector>& field_secrets, int n, int t, Rng* rng);

// Field-adds the y-vectors received from peers into the party's own
// kept share; by linearity the result is the party's share of the
// total — individually uniform, sealed Masked for broadcast.
Result<Masked<RingVector>> AccumulateShamirShares(
    const Secret<RingVector>& own_share,
    const std::vector<RingVector>& received_shares);

// Lagrange-reconstructs the total at x = 0 from the survivors'
// partials and decodes it. partials_by_party has one slot per survivor
// (evaluation point j+1); the slot at `own_index` is taken from
// own_partial and may be left empty. Reveal point (round-key
// phase2-shamir): >= t+1 sum shares interpolate to exactly the
// aggregate total the protocol reveals.
Result<Vector> OpenShamirTotal(const Masked<RingVector>& own_partial,
                               int own_index,
                               const std::vector<RingVector>& partials_by_party,
                               const FixedPointCodec& codec);

}  // namespace dash

#endif  // DASH_MPC_SHAMIR_H_
