// Shamir secret sharing over F_p, p = 2^61 - 1.
//
// A secret s becomes the constant term of a uniformly random degree-t
// polynomial f; party i (1-indexed evaluation point) receives f(i). Any
// t+1 shares reconstruct s by Lagrange interpolation at 0; any t shares
// reveal nothing. Compared with additive sharing this tolerates up to
// n - (t+1) dropouts, at the cost of field arithmetic — experiment E8
// measures the difference.

#ifndef DASH_MPC_SHAMIR_H_
#define DASH_MPC_SHAMIR_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace dash {

struct ShamirShare {
  uint64_t x = 0;  // evaluation point (party index + 1), in F_p
  uint64_t y = 0;  // polynomial value, in F_p
};

// Splits `secret` (an F_p element) into n shares with threshold t:
// any t+1 shares reconstruct. Requires 0 <= t < n and secret < p.
Result<std::vector<ShamirShare>> ShamirSplit(uint64_t secret, int n, int t,
                                             Rng* rng);

// Lagrange interpolation at 0 over the given shares (all x distinct,
// at least one share). The caller must supply >= t+1 honest shares for a
// correct result; the math itself only needs the points given.
Result<uint64_t> ShamirReconstruct(const std::vector<ShamirShare>& shares);

// Vector forms: result[j] holds party j's share of every element.
Result<std::vector<std::vector<ShamirShare>>> ShamirSplitVector(
    const std::vector<uint64_t>& secrets, int n, int t, Rng* rng);

Result<std::vector<uint64_t>> ShamirReconstructVector(
    const std::vector<std::vector<ShamirShare>>& share_vectors);

// Lagrange basis weights at 0 for fixed evaluation points (all distinct,
// nonzero): reconstruct(y) = sum_i weights[i] * y[i]. Precomputing these
// turns per-element reconstruction into one multiply-add per share.
Result<std::vector<uint64_t>> LagrangeWeightsAtZero(
    const std::vector<uint64_t>& xs);

}  // namespace dash

#endif  // DASH_MPC_SHAMIR_H_
