#include "mpc/secrecy.h"

#include <algorithm>
#include <atomic>

#include "net/serialization.h"
#include "util/mutex.h"

namespace dash {
namespace {

// Keep the site list bounded: a pipelined scan declassifies once per
// block in public mode, and the audit must not grow without limit.
constexpr size_t kMaxRecordedSites = 256;

std::atomic<int64_t> g_declassify_count{0};

// Process-wide audit state behind one ranked mutex (a function-local
// static so it works from any thread at any time, including before
// main). kSecrecyAudit is near-innermost: Record runs inside scan jobs
// that may already hold scheduler and mux locks.
struct AuditRegistry {
  Mutex mu{LockRank::kSecrecyAudit};
  std::vector<std::string> sites DASH_GUARDED_BY(mu);

  static AuditRegistry& Instance() {
    static AuditRegistry registry;
    return registry;
  }
};

}  // namespace

int64_t SecrecyAudit::count() {
  return g_declassify_count.load(std::memory_order_relaxed);
}

std::vector<std::string> SecrecyAudit::Sites() {
  AuditRegistry& registry = AuditRegistry::Instance();
  MutexLock lock(&registry.mu);
  return registry.sites;
}

void SecrecyAudit::Record(const DeclassifyContext& ctx) {
  g_declassify_count.fetch_add(1, std::memory_order_relaxed);
  AuditRegistry& registry = AuditRegistry::Instance();
  MutexLock lock(&registry.mu);
  if (registry.sites.size() >= kMaxRecordedSites) return;
  std::string site = std::string(ctx.file) + ":" + std::to_string(ctx.line) +
                     ": " + ctx.reason;
  if (std::find(registry.sites.begin(), registry.sites.end(), site) ==
      registry.sites.end()) {
    registry.sites.push_back(std::move(site));
  }
}

void SecrecyAudit::ResetForTest() {
  g_declassify_count.store(0, std::memory_order_relaxed);
  AuditRegistry& registry = AuditRegistry::Instance();
  MutexLock lock(&registry.mu);
  registry.sites.clear();
}

std::vector<uint8_t> MaskAndSerialize(const Masked<RingVector>& masked) {
  ByteWriter w;
  w.PutU64Vector(masked.wire());
  return w.Take();
}

std::vector<uint8_t> SerializeShareForHolder(const Secret<RingVector>& share) {
  ByteWriter w;
  w.PutU64Vector(share.Reveal(MpcPass::Get()));
  return w.Take();
}

}  // namespace dash
