#include "mpc/secrecy.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "net/serialization.h"

namespace dash {
namespace {

// Keep the site list bounded: a pipelined scan declassifies once per
// block in public mode, and the audit must not grow without limit.
constexpr size_t kMaxRecordedSites = 256;

std::atomic<int64_t> g_declassify_count{0};

std::mutex& SitesMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<std::string>& SitesLocked() {
  static std::vector<std::string> sites;
  return sites;
}

}  // namespace

int64_t SecrecyAudit::count() {
  return g_declassify_count.load(std::memory_order_relaxed);
}

std::vector<std::string> SecrecyAudit::Sites() {
  std::lock_guard<std::mutex> lock(SitesMutex());
  return SitesLocked();
}

void SecrecyAudit::Record(const DeclassifyContext& ctx) {
  g_declassify_count.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(SitesMutex());
  auto& sites = SitesLocked();
  if (sites.size() >= kMaxRecordedSites) return;
  std::string site = std::string(ctx.file) + ":" + std::to_string(ctx.line) +
                     ": " + ctx.reason;
  if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
    sites.push_back(std::move(site));
  }
}

void SecrecyAudit::ResetForTest() {
  g_declassify_count.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(SitesMutex());
  SitesLocked().clear();
}

std::vector<uint8_t> MaskAndSerialize(const Masked<RingVector>& masked) {
  ByteWriter w;
  w.PutU64Vector(masked.wire());
  return w.Take();
}

std::vector<uint8_t> SerializeShareForHolder(const Secret<RingVector>& share) {
  ByteWriter w;
  w.PutU64Vector(share.Reveal(MpcPass::Get()));
  return w.Take();
}

}  // namespace dash
