// Pairwise key agreement for the masked-aggregation secure sum.
//
// Classic Diffie-Hellman over the multiplicative group of F_p,
// p = 2^61 - 1, generator 3: each party publishes g^a; a pair (i, j)
// derives the shared ChaCha20 key from (g^{a_j})^{a_i} = g^{a_i a_j}.
//
// NOTE on security level: a 61-bit group is appropriate for this
// simulation substrate (it exercises the real protocol flow and byte
// costs); a production deployment would swap in X25519. The protocol
// layers above are agnostic to the key-agreement mechanism.
//
// Types (mpc/secrecy.h): the private exponent, the shared group
// element, and the derived mask key are Secret; only PublicValue()
// crosses the wire (round-key phase0b-keyagree).

#ifndef DASH_MPC_KEY_EXCHANGE_H_
#define DASH_MPC_KEY_EXCHANGE_H_

#include <cstdint>

#include "mpc/secrecy.h"
#include "util/chacha20.h"
#include "util/random.h"

namespace dash {

class DiffieHellman {
 public:
  static constexpr uint64_t kGenerator = 3;

  // Samples a private exponent in [1, p-1).
  static Secret<uint64_t> GeneratePrivate(Rng* rng);

  // g^private mod p. Reveal point (round-key phase0b-keyagree): the
  // public value hides the exponent behind the discrete log.
  [[nodiscard]] static uint64_t PublicValue(
      const Secret<uint64_t>& private_key);

  // (peer_public)^private mod p.
  static Secret<uint64_t> SharedSecret(const Secret<uint64_t>& private_key,
                                       uint64_t peer_public);

  // Expands the shared group element into a 256-bit ChaCha20 key.
  static Secret<ChaCha20Rng::Key> DeriveKey(
      const Secret<uint64_t>& shared_secret);
};

}  // namespace dash

#endif  // DASH_MPC_KEY_EXCHANGE_H_
