#include "mpc/masked_aggregation.h"

#include "util/check.h"

namespace dash {

std::vector<uint64_t> ApplyPairwiseMasks(
    int party_index, const std::vector<uint64_t>& values,
    const std::vector<ChaCha20Rng::Key>& pairwise_keys, uint64_t round_nonce) {
  const int num_parties = static_cast<int>(pairwise_keys.size());
  DASH_CHECK(0 <= party_index && party_index < num_parties);
  std::vector<uint64_t> out = values;
  for (int q = 0; q < num_parties; ++q) {
    if (q == party_index) continue;
    // Both endpoints derive the same stream from the shared key and the
    // round nonce; the lower-indexed party adds, the higher subtracts.
    ChaCha20Rng prg(pairwise_keys[static_cast<size_t>(q)], round_nonce);
    if (party_index < q) {
      for (auto& v : out) v += prg.NextU64();
    } else {
      for (auto& v : out) v -= prg.NextU64();
    }
  }
  return out;
}

}  // namespace dash
