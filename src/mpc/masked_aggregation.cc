#include "mpc/masked_aggregation.h"

#include <utility>

#include "util/check.h"

namespace dash {

Masked<RingVector> ApplyPairwiseMasks(
    int party_index, const Secret<RingVector>& values,
    const std::vector<Secret<ChaCha20Rng::Key>>& pairwise_keys,
    uint64_t round_nonce) {
  const int num_parties = static_cast<int>(pairwise_keys.size());
  DASH_CHECK(0 <= party_index && party_index < num_parties);
  RingVector out = values.Reveal(MpcPass::Get());
  for (int q = 0; q < num_parties; ++q) {
    if (q == party_index) continue;
    // Both endpoints derive the same stream from the shared key and the
    // round nonce; the lower-indexed party adds, the higher subtracts.
    ChaCha20Rng prg(pairwise_keys[static_cast<size_t>(q)].Reveal(
                        MpcPass::Get()),
                    round_nonce);
    if (party_index < q) {
      for (auto& v : out) v += prg.NextU64();
    } else {
      for (auto& v : out) v -= prg.NextU64();
    }
  }
  return Masked<RingVector>::Seal(std::move(out), MpcPass::Get());
}

Result<Vector> OpenMaskedTotal(const Masked<RingVector>& own_masked,
                               const std::vector<RingVector>& peer_masked,
                               const FixedPointCodec& codec) {
  RingVector total = own_masked.wire();
  for (const RingVector& peer : peer_masked) {
    if (peer.size() != total.size()) {
      return InternalError("masked vector length mismatch");
    }
    for (size_t e = 0; e < total.size(); ++e) total[e] += peer[e];
  }
  return codec.DecodeVector(total);
}

}  // namespace dash
