// Secrecy type discipline for the MPC layer (DESIGN.md §11).
//
// The paper's security argument is that a party only ever releases
// masked or aggregated material: raw shares, pairwise masks, and
// pre-reveal accumulators must never cross the process boundary. Two
// wrapper types make that invariant a compile-time property instead of
// a convention:
//
//  * Secret<T>  — material derived from a party's private data (ring
//    encodings, share vectors, DH exponents, Beaver triples). Anyone
//    may CREATE a Secret (wrapping your own data costs nothing), but
//    READING one requires either the MPC-layer passkey (MpcPass, only
//    constructible inside dash_mpc) or the audited DASH_DECLASSIFY
//    escape hatch.
//  * Masked<T>  — material that is safe to put on the wire because the
//    MPC layer already masked/aggregated it (a pairwise-masked vector,
//    a partial share-sum that is individually uniform, an opened Beaver
//    d/e). The duality of Secret: anyone may READ a Masked value, but
//    only the MPC layer can SEAL one.
//
// Escape hatches, in decreasing order of preference:
//  * MaskAndSerialize(masked)       — wire bytes of sealed material.
//  * SerializeShareForHolder(share) — wire bytes of ONE share destined
//    for its holder; a single additive/Shamir share is marginally
//    uniform, so sending it to exactly one party reveals nothing.
//  * DASH_DECLASSIFY(expr, reason)  — audited raw access. Every use is
//    recorded in the SecrecyAudit registry and must be justified by an
//    entry in tools/secrecy_allowlist.txt naming the PROTOCOL.md round
//    that makes the reveal safe. tools/dash_taint.py enforces this.
//
// The passkey is gated on the DASH_MPC_INTERNAL preprocessor define,
// which the build system sets PRIVATE to the dash_mpc target only (see
// src/CMakeLists.txt); code outside src/mpc/ that tries to take the
// raw value of a share simply does not compile
// (tests/secrecy_compile_fail.cc demonstrates).

#ifndef DASH_MPC_SECRECY_H_
#define DASH_MPC_SECRECY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dash {

// Ring-encoded payloads (Z_2^64 or F_(2^61-1) elements).
using RingVector = std::vector<uint64_t>;

// Passkey for MPC-internal access to Secret values. The constructor is
// private and Get() is only declared when DASH_MPC_INTERNAL is defined,
// i.e. when compiling the dash_mpc library itself. The class is empty
// and every member is constexpr, so the conditional declaration has no
// linkage footprint.
class MpcPass {
 public:
#if defined(DASH_MPC_INTERNAL)
  static constexpr MpcPass Get() { return MpcPass{}; }
#endif

 private:
  constexpr MpcPass() = default;
};

// Where and why a Secret was declassified; captured by DASH_DECLASSIFY.
struct DeclassifyContext {
  const char* reason;
  const char* file;
  int line;
};

// Process-wide audit trail of declassifications. Thread-safe: party
// threads declassify concurrently under the TSan job.
class SecrecyAudit {
 public:
  // Number of declassifications since start / last reset.
  static int64_t count();

  // "file:line: reason" for the recorded sites (deduplicated, capped).
  static std::vector<std::string> Sites();

  static void Record(const DeclassifyContext& ctx);
  static void ResetForTest();
};

template <typename T>
class Secret;

template <typename T>
T Declassify(const Secret<T>& secret, const DeclassifyContext& ctx);

// Secret material. Free to construct, gated to read.
template <typename T>
class [[nodiscard]] Secret {
 public:
  Secret() = default;
  explicit Secret(T value) : value_(std::move(value)) {}

  // MPC-layer access; MpcPass is only constructible inside dash_mpc.
  const T& Reveal(MpcPass) const { return value_; }
  T& MutableReveal(MpcPass) { return value_; }

 private:
  template <typename U>
  friend U Declassify(const Secret<U>&, const DeclassifyContext&);

  T value_{};
};

// Wire-safe material. Free to read, gated to seal: only the MPC layer
// can certify that a buffer is masked/aggregated.
template <typename T>
class [[nodiscard]] Masked {
 public:
  Masked() = default;

  static Masked Seal(T wire_safe, MpcPass) {
    return Masked(std::move(wire_safe));
  }

  const T& wire() const { return value_; }

 private:
  explicit Masked(T value) : value_(std::move(value)) {}

  T value_{};
};

// Audited raw read. Prefer the DASH_DECLASSIFY macro, which records the
// call site; direct calls are flagged by dash_taint unless allowlisted.
template <typename T>
T Declassify(const Secret<T>& secret, const DeclassifyContext& ctx) {
  SecrecyAudit::Record(ctx);
  return secret.value_;
}

// The `"" reason` concatenation forces `reason` to be a string literal,
// so the audit trail can never carry a computed (possibly secret-
// derived) justification.
#define DASH_DECLASSIFY(expr, reason)         \
  ::dash::Declassify((expr), ::dash::DeclassifyContext{ \
                                 "" reason, __FILE__, __LINE__})

// Marks a function whose RETURN VALUE is secret material even though
// its type is a plain scalar/vector (legacy scalar primitives kept for
// the dealer and the unit tests). tools/dash_taint.py seeds taint at
// calls to annotated functions. Expands to nothing.
#define DASH_SECRET_SOURCE

// --- Serialization escape hatches (reveal points) --------------------
//
// These are the only sanctioned paths from wrapper types to wire bytes;
// tools/secrecy_allowlist.txt maps each to its PROTOCOL.md round.

// Wire bytes of sealed (already masked/aggregated) material.
[[nodiscard]] std::vector<uint8_t> MaskAndSerialize(
    const Masked<RingVector>& masked);

// Wire bytes of a single share, destined for its holder only. Any one
// share is marginally uniform; sending the same share to two parties
// would break the secrecy argument, which is why this returns bytes for
// a point-to-point Send and not a Broadcast payload.
[[nodiscard]] std::vector<uint8_t> SerializeShareForHolder(
    const Secret<RingVector>& share);

}  // namespace dash

#endif  // DASH_MPC_SECRECY_H_
