// Pairwise-masked aggregation (Bonawitz et al. style secure sum).
//
// Each ordered pair (i, j), i < j, shares a ChaCha20 key k_ij. Party i
// adds PRG(k_ij) to its ring-encoded contribution and party j subtracts
// the identical stream, so all masks cancel in the sum:
//
//   masked_p = v_p + sum_{q > p} PRG(k_pq) - sum_{q < p} PRG(k_qp)
//   sum_p masked_p = sum_p v_p  (mod 2^64)
//
// A single broadcast of masked_p per party then reveals only the total —
// one message per party per sum, the cheapest of the secure modes.
//
// `round_nonce` must change between protocol invocations that reuse the
// same pairwise keys; it selects a fresh ChaCha20 stream so masks are
// never reused.
//
// Types (mpc/secrecy.h): the input contribution and the pairwise keys
// are Secret; the output carries the masks and is sealed Masked — the
// one buffer of this mode that is safe to broadcast.

#ifndef DASH_MPC_MASKED_AGGREGATION_H_
#define DASH_MPC_MASKED_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "mpc/fixed_point.h"
#include "mpc/secrecy.h"
#include "util/chacha20.h"

namespace dash {

// Applies party `party_index`'s masks for one aggregation round.
// pairwise_keys[q] is the key shared with party q (entry `party_index`
// itself is ignored). Returns values + masks (wrapping), sealed for the
// wire.
Masked<RingVector> ApplyPairwiseMasks(
    int party_index, const Secret<RingVector>& values,
    const std::vector<Secret<ChaCha20Rng::Key>>& pairwise_keys,
    uint64_t round_nonce);

// Opens the total from the party's own masked vector and every peer's
// broadcast one, and decodes it. Reveal point (round-key phase2-masked):
// the pairwise masks cancel in the sum of ALL vectors, so the output is
// exactly the aggregate the protocol reveals.
Result<Vector> OpenMaskedTotal(const Masked<RingVector>& own_masked,
                               const std::vector<RingVector>& peer_masked,
                               const FixedPointCodec& codec);

}  // namespace dash

#endif  // DASH_MPC_MASKED_AGGREGATION_H_
