// Pairwise-masked aggregation (Bonawitz et al. style secure sum).
//
// Each ordered pair (i, j), i < j, shares a ChaCha20 key k_ij. Party i
// adds PRG(k_ij) to its ring-encoded contribution and party j subtracts
// the identical stream, so all masks cancel in the sum:
//
//   masked_p = v_p + sum_{q > p} PRG(k_pq) - sum_{q < p} PRG(k_qp)
//   sum_p masked_p = sum_p v_p  (mod 2^64)
//
// A single broadcast of masked_p per party then reveals only the total —
// one message per party per sum, the cheapest of the secure modes.
//
// `round_nonce` must change between protocol invocations that reuse the
// same pairwise keys; it selects a fresh ChaCha20 stream so masks are
// never reused.

#ifndef DASH_MPC_MASKED_AGGREGATION_H_
#define DASH_MPC_MASKED_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "util/chacha20.h"

namespace dash {

// Applies party `party_index`'s masks for one aggregation round.
// pairwise_keys[q] is the key shared with party q (entry `party_index`
// itself is ignored). Returns values + masks (wrapping).
std::vector<uint64_t> ApplyPairwiseMasks(
    int party_index, const std::vector<uint64_t>& values,
    const std::vector<ChaCha20Rng::Key>& pairwise_keys, uint64_t round_nonce);

}  // namespace dash

#endif  // DASH_MPC_MASKED_AGGREGATION_H_
