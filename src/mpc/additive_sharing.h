// Additive secret sharing over the ring Z_2^64.
//
// A value v is split into n shares s_1..s_n, uniformly random subject to
// s_1 + ... + s_n = v (mod 2^64). Any n-1 shares are jointly uniform and
// carry no information about v; only the full set reconstructs it. This
// is the "simple secret sharing on tiny data" the paper's §3 invokes for
// the secure sums.
//
// Share vectors are Secret<RingVector>: protocol code outside src/mpc/
// can route them to SerializeShareForHolder (one share, to its holder)
// or through the accumulate/open reveal points below, but cannot read
// the raw words — see mpc/secrecy.h and DESIGN.md §11.

#ifndef DASH_MPC_ADDITIVE_SHARING_H_
#define DASH_MPC_ADDITIVE_SHARING_H_

#include <cstdint>
#include <vector>

#include "mpc/fixed_point.h"
#include "mpc/secrecy.h"
#include "util/random.h"
#include "util/status.h"

namespace dash {

// Splits `value` into `n` ring shares. Requires n >= 1. Scalar legacy
// primitive kept for the Beaver dealer and the unit tests; the return
// vector is secret material despite its plain type.
DASH_SECRET_SOURCE
[[nodiscard]] std::vector<uint64_t> AdditiveShare(uint64_t value, int n,
                                                  Rng* rng);

// Sum of all shares (mod 2^64). Reveal point: requires the full set.
[[nodiscard]] uint64_t AdditiveReconstruct(
    const std::vector<uint64_t>& shares);

// Element-wise sharing of a vector: result[j] is the j-th party's share
// vector, result[j][i] a share of values[i]. Requires n >= 1.
[[nodiscard]] std::vector<Secret<RingVector>> AdditiveShareVector(
    const Secret<RingVector>& values, int n, Rng* rng);

// Element-wise reconstruction; all share vectors must have equal length.
// Reveal point (round-key phase2-additive): consumes the FULL share set,
// so the output is exactly the value the protocol reveals anyway.
Result<RingVector> AdditiveReconstructVector(
    const std::vector<Secret<RingVector>>& share_vectors);

// Folds the shares received from peers into the party's own kept share.
// The result is a partial share-sum — individually uniform, hence
// sealed Masked and safe to broadcast.
Result<Masked<RingVector>> AccumulateAdditiveShares(
    const Secret<RingVector>& own_share,
    const std::vector<RingVector>& received_shares);

// Opens the total from the party's own partial and every peer's
// broadcast partial, and decodes it. Reveal point (round-key
// phase2-additive): the sum of ALL partials is the aggregate total,
// which is the protocol's declared output.
Result<Vector> OpenAdditiveTotal(const Masked<RingVector>& own_partial,
                                 const std::vector<RingVector>& peer_partials,
                                 const FixedPointCodec& codec);

}  // namespace dash

#endif  // DASH_MPC_ADDITIVE_SHARING_H_
