// Additive secret sharing over the ring Z_2^64.
//
// A value v is split into n shares s_1..s_n, uniformly random subject to
// s_1 + ... + s_n = v (mod 2^64). Any n-1 shares are jointly uniform and
// carry no information about v; only the full set reconstructs it. This
// is the "simple secret sharing on tiny data" the paper's §3 invokes for
// the secure sums.

#ifndef DASH_MPC_ADDITIVE_SHARING_H_
#define DASH_MPC_ADDITIVE_SHARING_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace dash {

// Splits `value` into `n` ring shares. Requires n >= 1.
std::vector<uint64_t> AdditiveShare(uint64_t value, int n, Rng* rng);

// Sum of all shares (mod 2^64).
uint64_t AdditiveReconstruct(const std::vector<uint64_t>& shares);

// Element-wise sharing of a vector: result[j] is the j-th party's share
// vector, result[j][i] a share of values[i]. Requires n >= 1.
std::vector<std::vector<uint64_t>> AdditiveShareVector(
    const std::vector<uint64_t>& values, int n, Rng* rng);

// Element-wise reconstruction; all share vectors must have equal length.
Result<std::vector<uint64_t>> AdditiveReconstructVector(
    const std::vector<std::vector<uint64_t>>& share_vectors);

}  // namespace dash

#endif  // DASH_MPC_ADDITIVE_SHARING_H_
