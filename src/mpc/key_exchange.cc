#include "mpc/key_exchange.h"

#include "mpc/prime_field.h"

namespace dash {

uint64_t DiffieHellman::GeneratePrivate(Rng* rng) {
  for (;;) {
    const uint64_t a = FieldUniform(rng);
    if (a >= 1 && a < kFieldPrime - 1) return a;
  }
}

uint64_t DiffieHellman::PublicValue(uint64_t private_key) {
  return FieldPow(kGenerator, private_key);
}

uint64_t DiffieHellman::SharedSecret(uint64_t private_key,
                                     uint64_t peer_public) {
  return FieldPow(peer_public, private_key);
}

ChaCha20Rng::Key DiffieHellman::DeriveKey(uint64_t shared_secret) {
  // SplitMix expansion of the group element into 256 bits.
  return ChaCha20Rng::KeyFromSeed(shared_secret);
}

}  // namespace dash
