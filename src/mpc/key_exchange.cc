#include "mpc/key_exchange.h"

#include "mpc/prime_field.h"

namespace dash {

Secret<uint64_t> DiffieHellman::GeneratePrivate(Rng* rng) {
  for (;;) {
    const uint64_t a = FieldUniform(rng);
    if (a >= 1 && a < kFieldPrime - 1) return Secret<uint64_t>(a);
  }
}

uint64_t DiffieHellman::PublicValue(const Secret<uint64_t>& private_key) {
  return FieldPow(kGenerator, private_key.Reveal(MpcPass::Get()));
}

Secret<uint64_t> DiffieHellman::SharedSecret(
    const Secret<uint64_t>& private_key, uint64_t peer_public) {
  return Secret<uint64_t>(
      FieldPow(peer_public, private_key.Reveal(MpcPass::Get())));
}

Secret<ChaCha20Rng::Key> DiffieHellman::DeriveKey(
    const Secret<uint64_t>& shared_secret) {
  // SplitMix expansion of the group element into 256 bits.
  return Secret<ChaCha20Rng::Key>(
      ChaCha20Rng::KeyFromSeed(shared_secret.Reveal(MpcPass::Get())));
}

}  // namespace dash
