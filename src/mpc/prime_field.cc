#include "mpc/prime_field.h"

namespace dash {

uint64_t FieldMul(uint64_t a, uint64_t b) {
  DASH_DCHECK(a < kFieldPrime);
  DASH_DCHECK(b < kFieldPrime);
  const unsigned __int128 prod =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  // Split at 61 bits and fold: 2^61 ≡ 1 (mod p).
  const uint64_t lo = static_cast<uint64_t>(prod) & kFieldPrime;
  const uint64_t hi = static_cast<uint64_t>(prod >> 61);
  return FieldReduce(lo + FieldReduce(hi));
}

uint64_t FieldPow(uint64_t a, uint64_t e) {
  uint64_t base = FieldReduce(a);
  uint64_t result = 1;
  while (e != 0) {
    if (e & 1) result = FieldMul(result, base);
    base = FieldMul(base, base);
    e >>= 1;
  }
  return result;
}

uint64_t FieldInv(uint64_t a) {
  a = FieldReduce(a);
  DASH_CHECK(a != 0u) << "0 has no inverse";
  return FieldPow(a, kFieldPrime - 2);
}

uint64_t FieldUniform(Rng* rng) {
  // Rejection from 61 random bits keeps the distribution exactly uniform.
  for (;;) {
    const uint64_t v = rng->NextU64() >> 3;
    if (v < kFieldPrime) return v;
  }
}

}  // namespace dash
