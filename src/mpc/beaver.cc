#include "mpc/beaver.h"

#include "mpc/additive_sharing.h"
#include "util/check.h"

namespace dash {

DealerTripleProvider::DealerTripleProvider(int num_parties, uint64_t seed)
    : num_parties_(num_parties), rng_(seed) {
  DASH_CHECK_GE(num_parties, 1);
}

std::vector<std::vector<Secret<BeaverTripleShare>>> DealerTripleProvider::Deal(
    int64_t count) {
  DASH_CHECK_GE(count, 0);
  std::vector<std::vector<Secret<BeaverTripleShare>>> shares(
      static_cast<size_t>(num_parties_),
      std::vector<Secret<BeaverTripleShare>>(static_cast<size_t>(count)));
  for (int64_t i = 0; i < count; ++i) {
    const uint64_t a = rng_.NextU64();
    const uint64_t b = rng_.NextU64();
    const uint64_t c = a * b;  // ring product
    const auto sa = AdditiveShare(a, num_parties_, &rng_);
    const auto sb = AdditiveShare(b, num_parties_, &rng_);
    const auto sc = AdditiveShare(c, num_parties_, &rng_);
    for (int p = 0; p < num_parties_; ++p) {
      shares[static_cast<size_t>(p)][static_cast<size_t>(i)] =
          Secret<BeaverTripleShare>(
              BeaverTripleShare{sa[static_cast<size_t>(p)],
                                sb[static_cast<size_t>(p)],
                                sc[static_cast<size_t>(p)]});
    }
  }
  return shares;
}

uint64_t BeaverProductShare(uint64_t d, uint64_t e,
                            const Secret<BeaverTripleShare>& triple,
                            bool include_de) {
  const BeaverTripleShare& t = triple.Reveal(MpcPass::Get());
  uint64_t share = d * t.b + e * t.a + t.c;
  if (include_de) share += d * e;
  return share;
}

}  // namespace dash
