#include "mpc/additive_sharing.h"

#include "util/check.h"

namespace dash {

std::vector<uint64_t> AdditiveShare(uint64_t value, int n, Rng* rng) {
  DASH_CHECK_GE(n, 1);
  std::vector<uint64_t> shares(static_cast<size_t>(n));
  uint64_t acc = 0;
  for (int i = 1; i < n; ++i) {
    shares[static_cast<size_t>(i)] = rng->NextU64();
    acc += shares[static_cast<size_t>(i)];
  }
  shares[0] = value - acc;  // wrapping
  return shares;
}

uint64_t AdditiveReconstruct(const std::vector<uint64_t>& shares) {
  uint64_t sum = 0;
  for (const uint64_t s : shares) sum += s;
  return sum;
}

std::vector<std::vector<uint64_t>> AdditiveShareVector(
    const std::vector<uint64_t>& values, int n, Rng* rng) {
  DASH_CHECK_GE(n, 1);
  std::vector<std::vector<uint64_t>> out(
      static_cast<size_t>(n), std::vector<uint64_t>(values.size()));
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t acc = 0;
    for (int j = 1; j < n; ++j) {
      const uint64_t s = rng->NextU64();
      out[static_cast<size_t>(j)][i] = s;
      acc += s;
    }
    out[0][i] = values[i] - acc;
  }
  return out;
}

Result<std::vector<uint64_t>> AdditiveReconstructVector(
    const std::vector<std::vector<uint64_t>>& share_vectors) {
  if (share_vectors.empty()) {
    return InvalidArgumentError("no share vectors to reconstruct");
  }
  const size_t len = share_vectors[0].size();
  std::vector<uint64_t> out(len, 0);
  for (const auto& shares : share_vectors) {
    if (shares.size() != len) {
      return InvalidArgumentError("share vectors disagree in length");
    }
    for (size_t i = 0; i < len; ++i) out[i] += shares[i];
  }
  return out;
}

}  // namespace dash
