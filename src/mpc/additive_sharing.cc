#include "mpc/additive_sharing.h"

#include <utility>

#include "util/check.h"

namespace dash {

std::vector<uint64_t> AdditiveShare(uint64_t value, int n, Rng* rng) {
  DASH_CHECK_GE(n, 1);
  std::vector<uint64_t> shares(static_cast<size_t>(n));
  uint64_t acc = 0;
  for (int i = 1; i < n; ++i) {
    shares[static_cast<size_t>(i)] = rng->NextU64();
    acc += shares[static_cast<size_t>(i)];
  }
  shares[0] = value - acc;  // wrapping
  return shares;
}

uint64_t AdditiveReconstruct(const std::vector<uint64_t>& shares) {
  uint64_t sum = 0;
  for (const uint64_t s : shares) sum += s;
  return sum;
}

std::vector<Secret<RingVector>> AdditiveShareVector(
    const Secret<RingVector>& values, int n, Rng* rng) {
  DASH_CHECK_GE(n, 1);
  const RingVector& raw = values.Reveal(MpcPass::Get());
  std::vector<RingVector> out(static_cast<size_t>(n),
                              RingVector(raw.size()));
  for (size_t i = 0; i < raw.size(); ++i) {
    uint64_t acc = 0;
    for (int j = 1; j < n; ++j) {
      const uint64_t s = rng->NextU64();
      out[static_cast<size_t>(j)][i] = s;
      acc += s;
    }
    out[0][i] = raw[i] - acc;
  }
  std::vector<Secret<RingVector>> wrapped;
  wrapped.reserve(out.size());
  for (auto& share : out) {
    wrapped.emplace_back(std::move(share));
  }
  return wrapped;
}

Result<RingVector> AdditiveReconstructVector(
    const std::vector<Secret<RingVector>>& share_vectors) {
  if (share_vectors.empty()) {
    return InvalidArgumentError("no share vectors to reconstruct");
  }
  const size_t len = share_vectors[0].Reveal(MpcPass::Get()).size();
  RingVector out(len, 0);
  for (const auto& wrapped : share_vectors) {
    const RingVector& shares = wrapped.Reveal(MpcPass::Get());
    if (shares.size() != len) {
      return InvalidArgumentError("share vectors disagree in length");
    }
    for (size_t i = 0; i < len; ++i) out[i] += shares[i];
  }
  return out;
}

Result<Masked<RingVector>> AccumulateAdditiveShares(
    const Secret<RingVector>& own_share,
    const std::vector<RingVector>& received_shares) {
  RingVector partial = own_share.Reveal(MpcPass::Get());
  for (const RingVector& share : received_shares) {
    if (share.size() != partial.size()) {
      return InternalError("additive share length mismatch");
    }
    for (size_t e = 0; e < partial.size(); ++e) partial[e] += share[e];
  }
  return Masked<RingVector>::Seal(std::move(partial), MpcPass::Get());
}

Result<Vector> OpenAdditiveTotal(const Masked<RingVector>& own_partial,
                                 const std::vector<RingVector>& peer_partials,
                                 const FixedPointCodec& codec) {
  RingVector total = own_partial.wire();
  for (const RingVector& peer : peer_partials) {
    if (peer.size() != total.size()) {
      return InternalError("partial sum length mismatch");
    }
    for (size_t e = 0; e < total.size(); ++e) total[e] += peer[e];
  }
  return codec.DecodeVector(total);
}

}  // namespace dash
