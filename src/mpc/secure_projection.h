// Secure computation of the scan's projected statistics (paper §3,
// "for even greater security, they can use a more sophisticated SMC
// algorithm to only share the three right-hand quantities (two dot
// products of K-vectors for each m)").
//
// The parties hold additive summands of the global Qᵀy (K-vector) and
// QᵀX (K x M). The baseline protocol reveals those sums; this protocol
// reveals ONLY the scalars Lemma 2.1 actually consumes:
//
//   Qᵀy.Qᵀy          (one scalar)
//   QᵀX_m.Qᵀy        (one scalar per m)
//   QᵀX_m.QᵀX_m      (one scalar per m)
//
// using Beaver-triple multiplication on the summands themselves (a
// party's summand IS its additive share of the global vector). Two
// online rounds: one opening of the 2(K + 2KM) masked values, one
// opening of the 2M + 1 results. Communication is O(KM) — larger than
// the reveal-the-sums baseline's O(M) by the factor K the paper accepts
// for the stronger privacy — still independent of N and parallel in m.
//
// Fixed-point note: products carry 2*frac_bits fractional bits and are
// only rescaled after the final opening (no intermediate truncation, so
// the integer arithmetic is exact). Headroom therefore shrinks twice as
// fast in frac_bits; Validate() enforces the bound and the default of
// 20 bits covers |summand| up to ~480 per entry at K=8, P=4.

#ifndef DASH_MPC_SECURE_PROJECTION_H_
#define DASH_MPC_SECURE_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "mpc/beaver.h"
#include "mpc/secrecy.h"
#include "transport/transport.h"
#include "util/status.h"

namespace dash {

struct SecureProjectionOptions {
  // Fractional bits of the ring encoding; results carry 2x this.
  int frac_bits = 20;
  // Seed for the dealer's triple randomness.
  uint64_t seed = 0xbea7e5;
};

// The quantities revealed to every party.
struct ProjectedStats {
  double qty_qty = 0.0;
  Vector qtx_qty;  // length M
  Vector qtx_qtx;  // length M
};

class SecureProjectedAggregation {
 public:
  // `network` must outlive this object; one slot per party.
  SecureProjectedAggregation(Transport* network,
                             const SecureProjectionOptions& options);

  // qty_summands[p] is party p's K-vector summand of Qᵀy;
  // qtx_summands[p] its K x M summand of QᵀX. Shapes must agree across
  // parties; values must fit the fixed-point headroom (OutOfRange
  // otherwise). Summands are per-party private data, hence Secret
  // (mpc/secrecy.h); only the masked d/e openings and the opened result
  // scalars cross the wire.
  Result<ProjectedStats> Run(
      const std::vector<Secret<Vector>>& qty_summands,
      const std::vector<Secret<Matrix>>& qtx_summands);

 private:
  Transport* network_;
  SecureProjectionOptions options_;
  DealerTripleProvider dealer_;
};

}  // namespace dash

#endif  // DASH_MPC_SECURE_PROJECTION_H_
