// Arithmetic in the Mersenne prime field F_p, p = 2^61 - 1.
//
// Shamir secret sharing and the Diffie-Hellman seed agreement both work
// over this field. The Mersenne modulus admits a fast reduction (fold the
// high bits), and 61 bits leaves room for the fixed-point encodings the
// secure sums transport (signed values are mapped to [0, p) with the
// upper half representing negatives).

#ifndef DASH_MPC_PRIME_FIELD_H_
#define DASH_MPC_PRIME_FIELD_H_

#include <cstdint>

#include "util/check.h"
#include "util/random.h"

namespace dash {

// 2^61 - 1, prime.
inline constexpr uint64_t kFieldPrime = (uint64_t{1} << 61) - 1;

// Reduces an arbitrary 64-bit value modulo p.
inline uint64_t FieldReduce(uint64_t x) {
  x = (x & kFieldPrime) + (x >> 61);
  if (x >= kFieldPrime) x -= kFieldPrime;
  return x;
}

inline uint64_t FieldAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;  // < 2^62, no overflow
  if (s >= kFieldPrime) s -= kFieldPrime;
  return s;
}

inline uint64_t FieldSub(uint64_t a, uint64_t b) {
  return (a >= b) ? a - b : a + kFieldPrime - b;
}

// Product via 128-bit intermediate and Mersenne folding.
uint64_t FieldMul(uint64_t a, uint64_t b);

// a^e mod p by square-and-multiply.
uint64_t FieldPow(uint64_t a, uint64_t e);

// Multiplicative inverse (Fermat); requires a != 0 mod p.
uint64_t FieldInv(uint64_t a);

// Uniform field element.
uint64_t FieldUniform(Rng* rng);

// Signed fixed-point embeddings: values in (-p/2, p/2) round-trip.
inline uint64_t FieldEncodeSigned(int64_t v) {
  return (v >= 0) ? FieldReduce(static_cast<uint64_t>(v))
                  : FieldSub(0, FieldReduce(static_cast<uint64_t>(-v)));
}

inline int64_t FieldDecodeSigned(uint64_t f) {
  DASH_DCHECK(f < kFieldPrime);
  return (f > kFieldPrime / 2) ? -static_cast<int64_t>(kFieldPrime - f)
                               : static_cast<int64_t>(f);
}

}  // namespace dash

#endif  // DASH_MPC_PRIME_FIELD_H_
