// dash_partyd: ONE party of the secure association scan as a RESIDENT
// daemon. Where dash_party connects, runs one scan, and exits,
// dash_partyd keeps the TCP mesh up, multiplexes any number of
// concurrent scan sessions over it (transport/session_mux.h), and takes
// scan jobs over a small line-based control API (service/
// control_server.h) until told to SHUTDOWN:
//
//   $ dash_partyd --party 0 --cluster 127.0.0.1:7101,... --control-port 7201 &
//   $ dash_partyd --party 1 --cluster 127.0.0.1:7101,... --control-port 7202 &
//   $ dash_partyd --party 2 --cluster 127.0.0.1:7101,... --control-port 7203 &
//   $ tools/dash_jobctl.py --ports 7201,7202,7203 submit --job 1 --cohort a
//
// Clients submit the SAME job (same job_id = session id, same spec) to
// every party's daemon; each daemon derives its own slice of the
// deterministic synthetic cohort from the spec, so the revealed result
// and checksum are bit-identical across daemons AND to the in-process
// simulator (`--simulate-job` prints the reference checksum).
//
// Repeat jobs on one cohort_key reuse the pooled-QR Phase-1 state
// (service/phase1_cache.h) and skip Phase 1; watch `cache_hit=1` and
// the smaller `rounds=` in STATUS output.
//
// If a peer daemon dies, only the scan sessions that were running are
// failed; queued jobs wait while this daemon re-establishes the mesh
// (retrying until the peer returns) and then run normally.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/secure_scan.h"
#include "data/panel_stream.h"
#include "data/workloads.h"
#include "linalg/packed_matrix.h"
#include "service/control_server.h"
#include "service/job.h"
#include "service/job_scheduler.h"
#include "service/phase1_cache.h"
#include "transport/cluster_config.h"
#include "transport/party_runner.h"
#include "transport/session_mux.h"
#include "transport/tcp_transport.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/strings.h"

namespace {

using namespace dash;

// ---------------------------------------------------------------------
// JobSpec -> workload / options. ONE definition shared by the daemon
// path and the --simulate-job reference path, so both derive the exact
// same cohort and protocol configuration from a spec.

Result<ScanWorkload> WorkloadForSpec(const JobSpec& spec, int num_parties) {
  GwasWorkloadOptions data;
  data.party_sizes.assign(static_cast<size_t>(num_parties),
                          spec.samples_per_party);
  data.num_variants = spec.variants;
  data.num_covariates = spec.covariates;
  data.num_causal = spec.variants < 2 ? spec.variants : 2;
  data.seed = spec.data_seed;
  return MakeGwasWorkload(data);
}

SecureScanOptions ScanOptionsForSpec(const JobSpec& spec) {
  SecureScanOptions options;
  options.aggregation = spec.mode;
  options.seed = spec.protocol_seed;
  return options;
}

// Knobs for streamed jobs (spec.stream), set by daemon flags: where the
// packed studies and checkpoints live, how often the scan checkpoints,
// and an optional per-panel delay so the kill smokes can reliably
// SIGKILL a daemon mid-stream.
struct StreamingConfig {
  std::string checkpoint_dir;
  int64_t checkpoint_every_panels = 1;
  int64_t panel_delay_ms = 0;
};

// The streamed side of the scheduler's ScanFn: derive this party's
// cohort slice exactly like the in-memory path, pack it to a DASHPACK
// study on first touch (a restarted daemon finds the prior file — the
// fingerprint check guarantees it is byte-for-byte the same study and
// therefore that any leftover checkpoint is resumable), then stream the
// panels through the checkpointed scan loop.
Result<SecureScanOutput> RunStreamedJob(Transport* transport,
                                        const JobSpec& spec, int party,
                                        int num_parties,
                                        const StreamingConfig& config,
                                        Phase1State* phase1) {
  if (config.checkpoint_dir.empty()) {
    return FailedPreconditionError(
        "job asks for streaming but this daemon was started without "
        "--checkpoint-dir");
  }
  DASH_ASSIGN_OR_RETURN(ScanWorkload workload,
                        WorkloadForSpec(spec, num_parties));
  PartyData mine =
      std::move(workload.parties[static_cast<size_t>(party)]);
  std::optional<PackedGenotypeMatrix> packed =
      PackedGenotypeMatrix::TryFromDense(mine.x);
  if (!packed.has_value()) {
    return InvalidArgumentError(
        "streamed job: cohort genotypes are not 2-bit hard calls");
  }
  const uint64_t tag = spec.data_seed;
  const uint64_t fingerprint = StudyFingerprint(*packed, mine.y, mine.c, tag);
  const std::string stem = config.checkpoint_dir + "/" + spec.cohort_key +
                           "_p" + std::to_string(party);
  const std::string study_path = stem + ".dpk";
  bool have_study = false;
  {
    auto existing = PackedStudyReader::Open(study_path);
    have_study =
        existing.ok() && existing.value()->fingerprint() == fingerprint;
  }
  if (!have_study) {
    DASH_RETURN_IF_ERROR(
        WritePackedStudy(study_path, *packed, mine.y, mine.c, tag));
  }
  DASH_ASSIGN_OR_RETURN(std::unique_ptr<PackedStudyReader> reader,
                        PackedStudyReader::Open(study_path));
  StreamingPartyScan stream;
  stream.source = reader.get();
  stream.checkpoint_path = stem + ".dck";
  stream.checkpoint_every_panels = config.checkpoint_every_panels;
  stream.panel_delay_ms = config.panel_delay_ms;
  return RunPartySecureScanStreamed(transport, reader->phenotype(),
                                    reader->covariates(), stream,
                                    ScanOptionsForSpec(spec), phase1);
}

// ---------------------------------------------------------------------
// Mesh management: one TCP connection per peer, shared by every job
// through the SessionMux. A dead link fails only the open sessions; the
// daemon then drops the mesh and re-dials until the peer comes back, so
// queued jobs survive a peer crash + restart.

struct Mesh {
  std::unique_ptr<TcpTransport> tcp;
  std::unique_ptr<SessionMux> mux;
};

// The per-job transport the scheduler's ScanFn runs on: forwards to the
// job's SessionChannel while (a) keeping the whole Mesh alive through a
// shared_ptr — a remesh must not pull the mux out from under a running
// scan — and (b) mirroring traffic into its OWN TrafficMetrics so the
// job's metrics are attributable (party_runner reads the metrics of the
// transport it is handed).
class JobTransport : public Transport {
 public:
  JobTransport(std::shared_ptr<Mesh> mesh,
               std::unique_ptr<SessionChannel> channel)
      : Transport(channel->num_parties()),
        mesh_(std::move(mesh)),
        channel_(std::move(channel)) {}

  int local_party() const override { return channel_->local_party(); }
  uint32_t session_id() const override { return channel_->session_id(); }

  Status Send(int from, int to, MessageTag tag,
              std::vector<uint8_t> payload) override {
    Message accounting;
    accounting.from = from;
    accounting.to = to;
    accounting.tag = tag;
    accounting.payload.resize(payload.size());
    DASH_RETURN_IF_ERROR(channel_->Send(from, to, tag, std::move(payload)));
    RecordSend(accounting);
    return Status::Ok();
  }

  Result<Message> Receive(int to, int from, MessageTag expected_tag) override {
    return channel_->Receive(to, from, expected_tag);
  }

  bool HasPending(int to, int from) override {
    return channel_->HasPending(to, from);
  }

  void BeginRound() override {
    Transport::BeginRound();
    channel_->BeginRound();
  }

  SessionChannel* channel() { return channel_.get(); }

 private:
  std::shared_ptr<Mesh> mesh_;
  std::unique_ptr<SessionChannel> channel_;
};

class MeshManager {
 public:
  MeshManager(ClusterConfig cluster, int party, TcpTransportOptions tcp)
      : cluster_(std::move(cluster)), party_(party), tcp_options_(tcp) {}

  ~MeshManager() { Shutdown(); }

  // Eager first connect (full connect timeout), then starts the monitor
  // thread, which from then on is the ONLY dialer: it watches link
  // health and re-dials a torn mesh until the peers come back. Eager
  // re-dialing matters for recovery — a restarted peer's own Connect
  // can only complete once the survivors dial too, so waiting for the
  // next job to notice the dead link would deadlock the restart.
  Status Connect() {
    auto mesh = Dial(tcp_options_);
    if (!mesh.ok()) return mesh.status();
    {
      MutexLock lock(&mu_);
      mesh_ = std::move(mesh).value();
    }
    monitor_ = std::thread([this] { MonitorLoop(); });
    return Status::Ok();
  }

  void Shutdown() {
    {
      MutexLock lock(&mu_);
      shutting_down_ = true;
      mesh_.reset();
      mesh_cv_.NotifyAll();
    }
    if (monitor_.joinable()) monitor_.join();
  }

  // The scheduler's SessionFactory: opens the job's session on the
  // current mesh, waiting (bounded) for the monitor to restore a torn
  // one. Runs on a worker thread; blocking here delays jobs, it never
  // fails the daemon.
  Result<ScanSession> OpenJobSession(const JobSpec& spec) {
    const Stopwatch waited;
    for (;;) {
      std::shared_ptr<Mesh> mesh;
      {
        MutexLock lock(&mu_);
        const auto poll_deadline = std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(200);
        while (!shutting_down_ && mesh_ == nullptr &&
               mesh_cv_.WaitUntil(&mu_, poll_deadline) !=
                   std::cv_status::timeout) {
        }
        if (shutting_down_) {
          return UnavailableError("daemon shutting down");
        }
        mesh = mesh_;
      }
      if (mesh == nullptr || !mesh->mux->LinkHealth().ok()) {
        if (waited.ElapsedSeconds() * 1e3 >
            static_cast<double>(remesh_budget_ms_)) {
          return UnavailableError("mesh down for " +
                                  std::to_string(remesh_budget_ms_) +
                                  " ms; giving up on job " +
                                  std::to_string(spec.job_id));
        }
        continue;  // monitor is re-dialing
      }

      Result<std::unique_ptr<SessionChannel>> channel =
          mesh->mux->OpenSession(spec.job_id);
      if (!channel.ok()) {
        if (channel.status().code() == StatusCode::kAlreadyExists) {
          return channel.status();  // client reused a live job id
        }
        // Mux raced link death / teardown: loop for the next mesh.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      auto transport = std::make_unique<JobTransport>(
          mesh, std::move(channel).value());
      ScanSession session;
      SessionChannel* raw = transport->channel();
      session.transport = std::move(transport);
      // Safe lifetime: the scheduler only invokes abort while the job is
      // in its running table, which it leaves before the transport (and
      // channel) is destroyed.
      session.abort = [raw](const Status& status) { raw->Abort(status); };
      return session;
    }
  }

 private:
  Result<std::shared_ptr<Mesh>> Dial(const TcpTransportOptions& options) {
    auto tcp = TcpTransport::Connect(cluster_, party_, options);
    if (!tcp.ok()) return tcp.status();
    auto mesh = std::make_shared<Mesh>();
    mesh->tcp = std::move(tcp).value();
    SessionMuxOptions mux_options;
    mux_options.receive_timeout_ms = tcp_options_.receive_timeout_ms;
    mesh->mux = std::make_unique<SessionMux>(mesh->tcp.get(), mux_options);
    return mesh;
  }

  void MonitorLoop() {
    // Short per-attempt deadline so a dead peer does not pin one dial
    // for the full connect timeout; the loop itself retries forever.
    TcpTransportOptions redial = tcp_options_;
    if (redial.connect_timeout_ms > 3000) redial.connect_timeout_ms = 3000;
    for (;;) {
      {
        MutexLock lock(&mu_);
        const auto poll_deadline = std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(300);
        while (!shutting_down_ &&
               mesh_cv_.WaitUntil(&mu_, poll_deadline) !=
                   std::cv_status::timeout) {
        }
        if (shutting_down_) return;
        if (mesh_ != nullptr) {
          const Status health = mesh_->mux->LinkHealth();
          if (health.ok()) continue;
          DASH_LOG(Warning) << "[partyd " << party_ << "] mesh lost ("
                            << health << "); re-dialing peers";
          // Running sessions were already failed by the mux; the old
          // mesh dies when the last JobTransport releases it.
          mesh_.reset();
        }
      }
      auto mesh = Dial(redial);
      MutexLock lock(&mu_);
      if (shutting_down_) return;
      if (mesh.ok() && mesh_ == nullptr) {
        mesh_ = std::move(mesh).value();
        // stderr (not DASH_LOG) so the kill smoke can grep it at any
        // log level, like the startup "mesh up" line.
        std::fprintf(stderr, "[partyd %d] mesh restored (%d parties)\n",
                     party_, cluster_.num_parties());
        mesh_cv_.NotifyAll();
      }
    }
  }

  const ClusterConfig cluster_;
  const int party_;
  const TcpTransportOptions tcp_options_;
  const int64_t remesh_budget_ms_ = 120000;

  // Rank kMeshManager nests OUTSIDE kSessionMux: the monitor probes
  // LinkHealth() and Shutdown/remesh destroy the mux under mu_.
  Mutex mu_{LockRank::kMeshManager};
  CondVar mesh_cv_;
  bool shutting_down_ DASH_GUARDED_BY(mu_) = false;
  std::shared_ptr<Mesh> mesh_ DASH_GUARDED_BY(mu_);
  std::thread monitor_;
};

// ---------------------------------------------------------------------

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: dash_partyd --party P (--cluster h:p,h:p,... | --config FILE)\n"
      "                   --control-port PORT [--control-host H]\n"
      "                   [--max-concurrent N] [--max-queued N]\n"
      "                   [--cache-entries N]\n"
      "                   [--checkpoint-dir DIR] [--checkpoint-every K]\n"
      "                   [--stream-delay-ms T]\n"
      "                   [--connect-timeout-ms T] [--receive-timeout-ms T]\n"
      "       dash_partyd --simulate-job \"<submit-args>\" --parties P\n"
      "\n"
      "--checkpoint-dir enables streamed jobs (SUBMIT's trailing 'stream'\n"
      "token): the cohort is packed to DIR as a DASHPACK study and the\n"
      "scan checkpoints its accumulators there every K panels, so a\n"
      "killed+restarted daemon resumes the job instead of recomputing.\n"
      "--stream-delay-ms stretches each panel (crash-test knob).\n"
      "\n"
      "--simulate-job runs the job in-process (the simulator) and prints\n"
      "the reference checksum; <submit-args> are the SUBMIT verb's\n"
      "arguments, e.g. \"7 cohortA 64 96 3 42 masked 0\". A trailing\n"
      "'stream' token is accepted and ignored: streamed results are\n"
      "bit-identical, so the reference checksum is the same.\n");
}

// Parses the SUBMIT verb's argument list (shared with --simulate-job so
// the reference path accepts the exact client spec).
bool ParseSubmitArgs(const std::string& args, JobSpec* spec) {
  std::istringstream in(args);
  std::string mode;
  in >> spec->job_id >> spec->cohort_key >> spec->variants >>
      spec->samples_per_party >> spec->covariates >> spec->data_seed >>
      mode >> spec->deadline_ms;
  if (in.fail()) return false;
  for (const AggregationMode m :
       {AggregationMode::kPublicShare, AggregationMode::kAdditive,
        AggregationMode::kMasked, AggregationMode::kShamir}) {
    if (mode == AggregationModeName(m)) {
      spec->mode = m;
      in >> spec->protocol_seed;  // optional
      if (in.fail()) in.clear();
      std::string extra;
      if (in >> extra && extra == "stream") spec->stream = true;
      return true;
    }
  }
  return false;
}

int SimulateJob(const std::string& args, int parties) {
  JobSpec spec;
  if (!ParseSubmitArgs(args, &spec)) {
    std::fprintf(stderr, "--simulate-job: cannot parse \"%s\"\n",
                 args.c_str());
    return 2;
  }
  auto workload = WorkloadForSpec(spec, parties);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  const auto out =
      SecureAssociationScan(ScanOptionsForSpec(spec))
          .Run(workload.value().parties);
  if (!out.ok()) {
    std::fprintf(stderr, "simulate: %s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("job %u checksum %" PRIu64 "\n", spec.job_id,
              ScanResultChecksum(out.value().result));
  return 0;
}

int RealMain(int argc, char** argv) {
  int party = -1;
  ClusterConfig cluster;
  TcpTransportOptions tcp_options;
  ControlServerOptions control_options;
  JobSchedulerOptions scheduler_options;
  StreamingConfig streaming;
  int64_t cache_entries = 8;
  std::string simulate_args;
  int64_t simulate_parties = 3;
  bool simulate = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const auto next_i64 = [&](int64_t* out) {
      const char* value = next();
      if (value == nullptr) return false;
      auto parsed = ParseInt64(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", arg.c_str(),
                     parsed.status().ToString().c_str());
        return false;
      }
      *out = parsed.value();
      return true;
    };
    int64_t v = 0;
    if (arg == "--party") {
      if (!next_i64(&v)) return 2;
      party = static_cast<int>(v);
    } else if (arg == "--cluster") {
      const char* value = next();
      if (value == nullptr) return 2;
      auto parsed = ParseClusterList(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--cluster: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      cluster = std::move(parsed).value();
    } else if (arg == "--config") {
      const char* value = next();
      if (value == nullptr) return 2;
      auto parsed = LoadClusterConfig(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--config: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      cluster = std::move(parsed).value();
    } else if (arg == "--control-port") {
      if (!next_i64(&v)) return 2;
      control_options.port = static_cast<uint16_t>(v);
    } else if (arg == "--control-host") {
      const char* value = next();
      if (value == nullptr) return 2;
      control_options.host = value;
    } else if (arg == "--max-concurrent") {
      if (!next_i64(&v)) return 2;
      scheduler_options.max_concurrent = static_cast<int>(v);
    } else if (arg == "--max-queued") {
      if (!next_i64(&v)) return 2;
      scheduler_options.max_queued = static_cast<int>(v);
    } else if (arg == "--cache-entries") {
      if (!next_i64(&cache_entries)) return 2;
    } else if (arg == "--checkpoint-dir") {
      const char* value = next();
      if (value == nullptr) return 2;
      streaming.checkpoint_dir = value;
    } else if (arg == "--checkpoint-every") {
      if (!next_i64(&streaming.checkpoint_every_panels)) return 2;
    } else if (arg == "--stream-delay-ms") {
      if (!next_i64(&streaming.panel_delay_ms)) return 2;
    } else if (arg == "--connect-timeout-ms") {
      if (!next_i64(&v)) return 2;
      tcp_options.connect_timeout_ms = static_cast<int>(v);
    } else if (arg == "--receive-timeout-ms") {
      if (!next_i64(&v)) return 2;
      tcp_options.receive_timeout_ms = static_cast<int>(v);
    } else if (arg == "--simulate-job") {
      const char* value = next();
      if (value == nullptr) return 2;
      simulate_args = value;
      simulate = true;
    } else if (arg == "--parties") {
      if (!next_i64(&v)) return 2;
      simulate_parties = v;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (simulate) {
    return SimulateJob(simulate_args, static_cast<int>(simulate_parties));
  }

  if (cluster.num_parties() == 0) {
    std::fprintf(stderr, "one of --cluster or --config is required\n");
    PrintUsage();
    return 2;
  }
  if (party < 0 || party >= cluster.num_parties()) {
    std::fprintf(stderr, "--party must be in [0, %d)\n",
                 cluster.num_parties());
    return 2;
  }

  MeshManager mesh(cluster, party, tcp_options);
  std::fprintf(stderr, "[partyd %d] connecting to %d peers...\n", party,
               cluster.num_parties() - 1);
  const Status connected = mesh.Connect();
  if (!connected.ok()) {
    std::fprintf(stderr, "[partyd %d] connect: %s\n", party,
                 connected.ToString().c_str());
    return 1;
  }

  Phase1Cache cache(static_cast<size_t>(cache_entries));
  const int num_parties = cluster.num_parties();
  JobScheduler scheduler(
      [&mesh](const JobSpec& spec) { return mesh.OpenJobSession(spec); },
      [party, num_parties, streaming](Transport* transport,
                                      const JobSpec& spec,
                                      Phase1State* phase1)
          -> Result<SecureScanOutput> {
        if (spec.stream) {
          return RunStreamedJob(transport, spec, party, num_parties,
                                streaming, phase1);
        }
        DASH_ASSIGN_OR_RETURN(ScanWorkload workload,
                              WorkloadForSpec(spec, num_parties));
        return RunPartySecureScan(
            transport, workload.parties[static_cast<size_t>(party)],
            ScanOptionsForSpec(spec), phase1);
      },
      &cache, scheduler_options);

  Mutex shutdown_mu(LockRank::kLeaf);
  CondVar shutdown_cv;
  bool shutdown_requested = false;
  ControlServer control(&scheduler, &cache,
                        [&] {
                          MutexLock lock(&shutdown_mu);
                          shutdown_requested = true;
                          shutdown_cv.NotifyAll();
                        },
                        control_options);
  const Status started = control.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "[partyd %d] control: %s\n", party,
                 started.ToString().c_str());
    return 1;
  }

  // The line smoke tests grep for: mesh up + control port, one line.
  std::fprintf(stderr,
               "[partyd %d] mesh up; control listening on %s:%u "
               "(max %d concurrent, %d queued)\n",
               party, control_options.host.c_str(), control.port(),
               scheduler_options.max_concurrent,
               scheduler_options.max_queued);

  {
    MutexLock lock(&shutdown_mu);
    while (!shutdown_requested) shutdown_cv.Wait(&shutdown_mu);
  }
  std::fprintf(stderr, "[partyd %d] SHUTDOWN received; draining...\n", party);
  control.Stop();
  scheduler.Shutdown();
  mesh.Shutdown();
  std::fprintf(stderr, "[partyd %d] bye\n", party);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
