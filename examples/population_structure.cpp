// Population-structure confounding and PC correction (paper preface).
//
//   $ ./examples/population_structure
//
// Three cohorts enroll from genetically diverged subpopulations
// (Balding-Nichols, Fst = 0.05) whose phenotype means also differ. An
// unadjusted scan is inflated genome-wide (lambda_GC >> 1); adding the
// top principal components of the GRM to the permanent covariates
// restores calibration — the role the paper assigns to secure multiparty
// PCA (Cho, Wu, Berger) upstream of DASH. Here the PCA runs in the clear
// as a stand-in for that substrate (see DESIGN.md substitutions).

#include <cmath>
#include <cstdio>

#include "core/mixed_model.h"
#include "core/secure_scan.h"
#include "data/population_structure.h"
#include "stats/pca.h"

namespace {

int RealMain() {
  using namespace dash;

  StructuredPopulationOptions opts;
  opts.subpop_sizes = {250, 250, 250};
  opts.num_variants = 800;
  opts.fst = 0.05;
  opts.pheno_shift = 0.6;
  opts.causal_effect = 0.0;  // pure null: every hit is confounding
  const auto workload = MakeStructuredWorkload(opts);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const ScanWorkload& w = workload.value();

  SecureScanOptions scan_opts;
  scan_opts.aggregation = AggregationMode::kMasked;

  // 1. Unadjusted scan: genome-wide inflation.
  const auto naive = SecureAssociationScan(scan_opts).Run(w.parties);
  const double lambda_naive = GenomicControlLambda(naive->result.tstat);

  // 2. PCs of the GRM as ancestry covariates. (Stand-in for secure PCA.)
  const PooledData pooled = PoolParties(w.parties).value();
  const Matrix grm = ComputeGrm(pooled.x);
  const auto pca = TopPrincipalComponents(grm, 2);
  if (!pca.ok()) {
    std::fprintf(stderr, "%s\n", pca.status().ToString().c_str());
    return 1;
  }
  const auto adjusted_parties =
      AppendComponentCovariates(w.parties, pca->components).value();
  const auto adjusted = SecureAssociationScan(scan_opts).Run(adjusted_parties);
  const double lambda_adjusted = GenomicControlLambda(adjusted->result.tstat);

  std::printf("3 subpopulations (Fst=%.2f), phenotype shift %.1f/pop, "
              "%lld null variants\n\n",
              opts.fst, opts.pheno_shift,
              static_cast<long long>(opts.num_variants));
  std::printf("%-26s %10s %16s\n", "analysis", "lambda_GC",
              "hits at p<1e-4");
  const auto count_hits = [](const ScanResult& r) {
    int hits = 0;
    for (const double p : r.pval) hits += (!std::isnan(p) && p < 1e-4);
    return hits;
  };
  std::printf("%-26s %10.3f %16d   <- inflated\n", "unadjusted",
              lambda_naive, count_hits(naive->result));
  std::printf("%-26s %10.3f %16d   <- calibrated\n", "with 2 ancestry PCs",
              lambda_adjusted, count_hits(adjusted->result));

  std::printf("\nPCA: top eigenvalues %.2f, %.2f (%d subspace iterations)\n",
              pca->eigenvalues[0], pca->eigenvalues[1], pca->iterations);
  std::printf("every variant is truly null: all unadjusted hits above are\n"
              "ancestry confounding, absorbed once PCs join the covariates.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
