// dash_pack: writes one party's slice of the deterministic GWAS
// workload as a DASHPACK packed study file (data/panel_stream.h) — the
// input of dash_party --stream and the daemon's streamed jobs.
//
//   $ dash_pack --party 0 --parties 3 --variants 2000 --samples 500 \
//               --data-seed 42 --out party0.dpk
//
// The same (--parties, --variants, --samples, --data-seed) tuple that
// dash_party uses to self-generate its data yields the same pooled
// study here, so a packed file and an in-memory run describe identical
// bytes: the file carries this party's y, covariate block C, and the
// 2-bit packed genotype panels, all checksummed. Alternatively
// --x/--y/--c read CSV inputs (data/matrix_io.h) for real data.

#include <cinttypes>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

#include "data/matrix_io.h"
#include "data/panel_stream.h"
#include "data/workloads.h"
#include "linalg/packed_matrix.h"
#include "util/strings.h"

namespace {

using namespace dash;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: dash_pack --out FILE\n"
      "  workload mode: --party P --parties N [--variants M]\n"
      "                 [--samples N-per-party] [--data-seed S]\n"
      "  csv mode:      --x genotypes.csv --y phenotype.csv --c covars.csv\n"
      "  [--tag T]  extra fingerprint salt (defaults to the data seed)\n");
}

int RealMain(int argc, char** argv) {
  int64_t party = -1;
  int64_t parties = 3;
  int64_t variants = 2000;
  int64_t samples_per_party = 500;
  int64_t data_seed = 42;
  int64_t tag = -1;
  std::string out_path, x_path, y_path, c_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const auto next_i64 = [&](int64_t* out) {
      const char* value = next();
      if (value == nullptr) return false;
      auto parsed = ParseInt64(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", arg.c_str(),
                     parsed.status().ToString().c_str());
        return false;
      }
      *out = parsed.value();
      return true;
    };
    const auto next_str = [&](std::string* out) {
      const char* value = next();
      if (value == nullptr) return false;
      *out = value;
      return true;
    };
    if (arg == "--party") {
      if (!next_i64(&party)) return 2;
    } else if (arg == "--parties") {
      if (!next_i64(&parties)) return 2;
    } else if (arg == "--variants") {
      if (!next_i64(&variants)) return 2;
    } else if (arg == "--samples") {
      if (!next_i64(&samples_per_party)) return 2;
    } else if (arg == "--data-seed") {
      if (!next_i64(&data_seed)) return 2;
    } else if (arg == "--tag") {
      if (!next_i64(&tag)) return 2;
    } else if (arg == "--out") {
      if (!next_str(&out_path)) return 2;
    } else if (arg == "--x") {
      if (!next_str(&x_path)) return 2;
    } else if (arg == "--y") {
      if (!next_str(&y_path)) return 2;
    } else if (arg == "--c") {
      if (!next_str(&c_path)) return 2;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "--out is required\n");
    PrintUsage();
    return 2;
  }

  Matrix x(0, 0);
  Vector y;
  Matrix c(0, 0);
  const bool csv_mode = !x_path.empty() || !y_path.empty() || !c_path.empty();
  if (csv_mode) {
    if (x_path.empty() || y_path.empty() || c_path.empty()) {
      std::fprintf(stderr, "csv mode needs all of --x, --y, --c\n");
      return 2;
    }
    auto xr = ReadMatrixCsv(x_path);
    auto yr = ReadVectorCsv(y_path);
    auto cr = ReadMatrixCsv(c_path);
    for (const Status& s :
         {xr.ok() ? Status::Ok() : xr.status(),
          yr.ok() ? Status::Ok() : yr.status(),
          cr.ok() ? Status::Ok() : cr.status()}) {
      if (!s.ok()) {
        std::fprintf(stderr, "read: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    x = std::move(xr).value();
    y = std::move(yr).value();
    c = std::move(cr).value();
  } else {
    if (party < 0 || party >= parties) {
      std::fprintf(stderr, "--party must be in [0, %" PRId64 ")\n", parties);
      return 2;
    }
    GwasWorkloadOptions data_options;
    data_options.party_sizes.assign(static_cast<size_t>(parties),
                                    samples_per_party);
    data_options.num_variants = variants;
    data_options.seed = static_cast<uint64_t>(data_seed);
    auto workload = MakeGwasWorkload(data_options);
    if (!workload.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   workload.status().ToString().c_str());
      return 1;
    }
    PartyData mine =
        std::move(workload.value().parties[static_cast<size_t>(party)]);
    x = std::move(mine.x);
    y = std::move(mine.y);
    c = std::move(mine.c);
  }

  std::optional<PackedGenotypeMatrix> packed =
      PackedGenotypeMatrix::TryFromDense(x);
  if (!packed.has_value()) {
    std::fprintf(stderr,
                 "genotypes are not hard calls (values outside {0,1,2}); "
                 "DASHPACK stores 2-bit dosages only\n");
    return 1;
  }
  const uint64_t file_tag =
      tag >= 0 ? static_cast<uint64_t>(tag) : static_cast<uint64_t>(data_seed);
  const Status st = WritePackedStudy(out_path, *packed, y, c, file_tag);
  if (!st.ok()) {
    std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("packed study     %s\n", out_path.c_str());
  std::printf("samples          %" PRId64 "\n", packed->rows());
  std::printf("variants         %" PRId64 "\n", packed->cols());
  std::printf("covariates       %" PRId64 "\n", c.cols());
  std::printf("panels           %" PRId64 " x %" PRId64 " rows\n",
              (packed->rows() + kStudyPanelRows - 1) / kStudyPanelRows,
              kStudyPanelRows);
  std::printf("fingerprint      %016" PRIx64 "\n",
              StudyFingerprint(*packed, y, c, file_tag));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
