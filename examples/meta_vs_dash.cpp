// Simpson's paradox demo: why pooling beats meta-analysis (paper §3).
//
//   $ ./examples/meta_vs_dash
//
// Three parties differ in both the tested variant's allele frequency and
// the phenotype mean (a classic between-cohort confound). The true
// within-party effect is zero. Three analyses:
//
//   1. naive pooled scan (intercept only)      -> spurious association;
//   2. per-party meta-analysis                 -> unbiased, noisier;
//   3. DASH with per-party centering           -> unbiased, pooled power,
//      and it never moves raw data.

#include <cmath>
#include <cstdio>

#include "core/association_scan.h"
#include "core/meta_scan.h"
#include "core/secure_scan.h"
#include "data/workloads.h"

namespace {

int RealMain() {
  using namespace dash;

  ConfoundedWorkloadOptions opts;
  opts.party_sizes = {600, 600, 600};
  opts.num_variants = 50;
  opts.within_effect = 0.0;  // variant 0 truly does nothing
  opts.party_shift = 2.0;
  opts.seed = 17;
  const auto workload = MakeConfoundedWorkload(opts);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const ScanWorkload& w = workload.value();
  std::printf(
      "variant 0: MAF rises 0.10 -> 0.25 -> 0.40 across parties while the\n"
      "phenotype mean rises 0 -> 2 -> 4; true within-party effect = 0\n\n");

  // 1. Naive pooled analysis (would also require illegally pooling data).
  const auto pooled = PoolParties(w.parties).value();
  const ScanResult naive =
      AssociationScan(pooled.x, pooled.y, pooled.c).value();
  std::printf("naive pooled:      beta = %+7.4f  p = %9.2e   <- SPURIOUS\n",
              naive.beta[0], naive.pval[0]);

  // 2. Status quo: per-party estimates, inverse-variance meta-analysis.
  const MetaScanResult meta = MetaAnalysisScan(w.parties).value();
  std::printf("meta-analysis:     beta = %+7.4f  p = %9.2e   (Q p = %.2e)\n",
              meta.beta[0], meta.pval[0], meta.q_pval[0]);

  // 3. DASH with per-party centering == pooled batch-indicator model.
  std::vector<PartyData> centered = w.parties;
  for (auto& p : centered) p.c = Matrix(p.num_samples(), 0);
  SecureScanOptions scan_opts;
  scan_opts.aggregation = AggregationMode::kMasked;
  scan_opts.center_per_party = true;
  const auto dash_out = SecureAssociationScan(scan_opts).Run(centered);
  const ScanResult& dash = dash_out->result;
  std::printf("DASH (secure):     beta = %+7.4f  p = %9.2e   <- correct\n\n",
              dash.beta[0], dash.pval[0]);

  // Power comparison on a variant with a real but modest effect: rerun
  // with within_effect > 0 and compare meta vs DASH p-values.
  opts.within_effect = 0.08;
  opts.seed = 18;
  const ScanWorkload w2 = MakeConfoundedWorkload(opts).value();
  const MetaScanResult meta2 = MetaAnalysisScan(w2.parties).value();
  std::vector<PartyData> centered2 = w2.parties;
  for (auto& p : centered2) p.c = Matrix(p.num_samples(), 0);
  const ScanResult dash2 =
      SecureAssociationScan(scan_opts).Run(centered2)->result;
  std::printf("with a true within-party effect of 0.08 on variant 0:\n");
  std::printf("meta-analysis:     beta = %+7.4f  se = %.4f  p = %9.2e\n",
              meta2.beta[0], meta2.se[0], meta2.pval[0]);
  std::printf("DASH (secure):     beta = %+7.4f  se = %.4f  p = %9.2e\n",
              dash2.beta[0], dash2.se[0], dash2.pval[0]);
  std::printf("\nDASH pools the full N for power AND adjusts for the batch\n"
              "structure, without any party disclosing individual data.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
