// Online GWAS over streaming sample batches (paper preface + §5).
//
//   $ ./examples/online_gwas
//
// The preface imagines secure GWAS running "in online fashion as new
// batches of samples come online". The Cᵀ-compression form of the scan
// makes every sufficient statistic additive over batches, so each batch
// is touched exactly once and the scan can be re-finalized at any time.
// This example streams five enrollment waves and watches a planted hit's
// p-value sharpen as samples accumulate.

#include <cstdio>

#include "core/association_scan.h"
#include "core/online_scan.h"
#include "data/genotype_generator.h"
#include "util/random.h"

namespace {

int RealMain() {
  using namespace dash;

  constexpr int64_t kVariants = 500;
  constexpr int64_t kCovariates = 3;  // intercept + 2 components
  constexpr int64_t kCausal = 77;

  OnlineScan online(kVariants, kCovariates);
  Rng rng(11);

  std::printf("streaming enrollment waves (true effect 0.15 on variant %lld)\n",
              static_cast<long long>(kCausal));
  std::printf("%-8s %10s %14s %14s\n", "wave", "N so far", "beta[77]",
              "p[77]");

  int64_t total = 0;
  for (int wave = 1; wave <= 5; ++wave) {
    const int64_t n = 400 * wave;  // growing enrollment waves
    GenotypeOptions geno;
    geno.num_samples = n;
    geno.num_variants = kVariants;
    geno.seed = 100 + static_cast<uint64_t>(wave);
    const Matrix x = GenerateGenotypes(geno);
    Matrix c(n, kCovariates);
    Vector y(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      c(i, 0) = 1.0;
      c(i, 1) = rng.Gaussian();
      c(i, 2) = rng.Gaussian();
      y[static_cast<size_t>(i)] = 0.15 * x(i, kCausal) + 0.4 * c(i, 1) +
                                  rng.Gaussian();
    }
    const Status s = online.AddBatch(x, y, c);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    total += n;

    const auto scan = online.Finalize();
    if (!scan.ok()) {
      std::fprintf(stderr, "%s\n", scan.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8d %10lld %14.4f %14.3e\n", wave,
                static_cast<long long>(total),
                scan->beta[kCausal], scan->pval[kCausal]);
  }

  std::printf("\neach batch was touched once; re-finalization is O(K^2 M)\n");
  std::printf("and never revisits raw genotypes (Cᵀ compression, §5).\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
