// Capstone: a full consortium analysis session, end to end.
//
//   $ ./examples/consortium_workflow
//
// Three biobanks enrolling from diverged subpopulations, with missing
// genotype calls, run the complete pipeline:
//
//   1. secure mean imputation of missing calls (global column means);
//   2. ancestry PCs appended to the covariates (stand-in for secure
//      multiparty PCA, per DESIGN.md);
//   3. the DASH secure scan, with a full protocol transcript recorded;
//   4. a human-readable report (lambda_GC, Bonferroni/BH, CIs);
//   5. leave-one-cohort-out sensitivity analysis on the top hit.

#include <cmath>
#include <cstdio>

#include "core/compressed_study.h"
#include "core/imputation.h"
#include "core/mixed_model.h"
#include "core/scan_report.h"
#include "core/secure_scan.h"
#include "core/sensitivity.h"
#include "data/missing_data.h"
#include "data/population_structure.h"
#include "net/trace.h"
#include "stats/pca.h"
#include "util/random.h"

namespace {

int RealMain() {
  using namespace dash;

  // --- The cohorts: structured ancestry + a real effect + missingness --
  StructuredPopulationOptions pop;
  pop.subpop_sizes = {300, 300, 300};
  pop.num_variants = 600;
  pop.fst = 0.05;
  pop.pheno_shift = 0.5;       // ancestry-confounded phenotype
  pop.causal_effect = 0.35;    // true effect on variant 0
  pop.seed = 42;
  ScanWorkload w = MakeStructuredWorkload(pop).value();
  Rng rng(43);
  for (auto& p : w.parties) InjectMissingness(0.03, &rng, &p.x);
  std::printf("3 cohorts x 300 samples, 600 variants, Fst=%.2f, 3%% "
              "missing calls, true effect %.2f on variant 0\n\n",
              pop.fst, pop.causal_effect);

  // --- 1. Secure imputation ------------------------------------------
  SecureScanOptions opts;
  opts.aggregation = AggregationMode::kMasked;
  const auto imputed = SecureMeanImpute(&w.parties, opts).value();
  std::printf("[1] imputed %lld missing calls via secure global means\n",
              static_cast<long long>(imputed.total_missing));

  // --- 2. Ancestry PCs -------------------------------------------------
  const PooledData pooled = PoolParties(w.parties).value();
  const Matrix grm = ComputeGrm(pooled.x);
  const PcaResult pca = TopPrincipalComponents(grm, 2).value();
  const auto adjusted =
      AppendComponentCovariates(w.parties, pca.components).value();
  std::printf("[2] appended 2 ancestry PCs (eigenvalues %.1f, %.1f)\n",
              pca.eigenvalues[0], pca.eigenvalues[1]);

  // --- 3. The secure scan, transcript recorded ------------------------
  ProtocolTrace trace;
  opts.trace = &trace;
  const auto out = SecureAssociationScan(opts).Run(adjusted).value();
  std::printf("[3] secure scan: %lld bytes in %d rounds; transcript:\n%s",
              static_cast<long long>(out.metrics.total_bytes),
              out.metrics.rounds, trace.Summary().c_str());

  // --- 4. The report ---------------------------------------------------
  ScanReportOptions report_opts;
  report_opts.top_hits = 5;
  std::printf("\n[4] %s\n",
              RenderScanReport(out.result, report_opts).c_str());

  // --- 5. Sensitivity: which cohort drives the top hit? ----------------
  std::vector<CompressedStudy> accumulators;
  for (const auto& p : adjusted) {
    accumulators.push_back(
        CompressedStudy::Compress(p.x, Matrix::ColumnVector(p.y), p.c)
            .value());
  }
  std::vector<int64_t> all_covs;
  for (int64_t j = 0; j < adjusted[0].c.cols(); ++j) all_covs.push_back(j);
  const LeaveOneOutResult loo =
      LeaveOnePartyOut(accumulators, 0, all_covs).value();
  const int64_t hit = out.result.TopHit();
  std::printf("[5] leave-one-cohort-out for the top hit (variant %lld):\n",
              static_cast<long long>(hit));
  for (size_t p = 0; p < loo.leave_out.size(); ++p) {
    std::printf("    without cohort %zu: beta %+0.4f (influence %.2f se)\n",
                p, loo.leave_out[p].beta[static_cast<size_t>(hit)],
                loo.Influence(p, hit));
  }
  std::printf("    -> no single cohort drives the association: the hit "
              "replicates.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
