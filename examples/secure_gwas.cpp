// Secure multi-biobank GWAS: the paper's motivating scenario.
//
//   $ ./examples/secure_gwas [output.csv]
//
// Three "biobanks" hold disjoint cohorts of Hardy-Weinberg genotypes with
// shared covariates (intercept + 3 ancestry-like components). Ten causal
// variants are planted. The banks run DASH with masked aggregation and a
// binary-tree R combination, then report genome-wide significant hits,
// the exact protocol traffic, and a WAN time estimate from the link cost
// model.

#include <cstdio>
#include <string>

#include "core/secure_scan.h"
#include "data/workloads.h"
#include "net/network.h"
#include "util/stopwatch.h"

namespace {

int RealMain(int argc, char** argv) {
  using namespace dash;

  GwasWorkloadOptions workload;
  workload.party_sizes = {800, 1600, 1200};
  workload.num_variants = 8000;
  workload.num_covariates = 4;
  workload.num_causal = 10;
  workload.effect_size = 0.12;
  workload.seed = 7;
  std::printf("generating cohorts: N=(800, 1600, 1200), M=%lld, K=%lld\n",
              static_cast<long long>(workload.num_variants),
              static_cast<long long>(workload.num_covariates));
  const auto maybe_workload = MakeGwasWorkload(workload);
  if (!maybe_workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 maybe_workload.status().ToString().c_str());
    return 1;
  }
  const ScanWorkload& w = maybe_workload.value();

  SecureScanOptions options;
  options.aggregation = AggregationMode::kMasked;
  options.r_combine = RCombineMode::kBinaryTree;
  Stopwatch total;
  const auto out = SecureAssociationScan(options).Run(w.parties);
  if (!out.ok()) {
    std::fprintf(stderr, "scan: %s\n", out.status().ToString().c_str());
    return 1;
  }
  const ScanResult& scan = out->result;
  std::printf("secure scan finished in %.2fs (local %.2fs, protocol %.2fs)\n",
              total.ElapsedSeconds(), out->metrics.local_compute_seconds,
              out->metrics.protocol_seconds);

  // Genome-wide significance with a Bonferroni threshold.
  const double alpha = 0.05 / static_cast<double>(scan.num_variants());
  std::printf("\nhits at Bonferroni alpha = %.2e:\n", alpha);
  std::printf("%-10s %10s %10s %12s %8s\n", "variant", "beta", "se", "p",
              "causal?");
  int hits = 0;
  int true_positives = 0;
  for (int64_t m = 0; m < scan.num_variants(); ++m) {
    const size_t i = static_cast<size_t>(m);
    if (!(scan.pval[i] < alpha)) continue;
    ++hits;
    bool causal = false;
    for (const int64_t c : w.causal_variants) causal = causal || (c == m);
    true_positives += causal;
    std::printf("%-10lld %10.4f %10.4f %12.3e %8s\n",
                static_cast<long long>(m), scan.beta[i], scan.se[i],
                scan.pval[i], causal ? "yes" : "NO");
  }
  std::printf("%d hits, %d of %zu planted causal variants recovered\n", hits,
              true_positives, w.causal_variants.size());

  // Communication accounting: this is what crossed institutional lines.
  std::printf("\ninter-party traffic: %lld bytes (%lld messages, %d rounds)\n",
              static_cast<long long>(out->metrics.total_bytes),
              static_cast<long long>(out->metrics.total_messages),
              out->metrics.rounds);
  std::printf("busiest link carried %lld bytes\n",
              static_cast<long long>(out->metrics.max_link_bytes));
  // Modeled WAN wall-clock: 30 ms RTT, 100 Mbit/s.
  TrafficMetrics modeled(static_cast<int>(w.parties.size()));
  LinkCostModel wan{0.030, 100e6 / 8.0};
  const double wan_seconds =
      out->metrics.rounds * wan.latency_seconds +
      static_cast<double>(out->metrics.total_bytes) /
          wan.bandwidth_bytes_per_second;
  std::printf("modeled WAN protocol time (30ms, 100Mbit/s): %.2fs\n",
              wan_seconds);

  if (argc > 1) {
    const Status s = scan.WriteCsv(argv[1]);
    if (!s.ok()) {
      std::fprintf(stderr, "write csv: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("full results written to %s\n", argv[1]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
