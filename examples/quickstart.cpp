// Quickstart: three parties run a secure association scan and compare
// against the pooled plaintext analysis they could never actually run.
//
//   $ ./examples/quickstart
//
// Walks through the library's core API: building PartyData, configuring
// SecureAssociationScan, and reading ScanResult.

#include <cstdio>

#include "core/association_scan.h"
#include "core/secure_scan.h"
#include "data/genotype_generator.h"
#include "data/party_split.h"
#include "util/random.h"

namespace {

int RealMain() {
  using namespace dash;

  // --- Each party's private data (never leaves the party) -------------
  // 3 parties, 12 variants, covariates = intercept + age-like column.
  Rng rng(2024);
  std::vector<PartyData> parties;
  for (const int64_t n : {int64_t{150}, int64_t{220}, int64_t{180}}) {
    PartyData p;
    p.x = GaussianMatrix(n, 12, &rng);
    p.c = WithInterceptColumn(GaussianMatrix(n, 1, &rng));
    p.y.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      // Variant 4 carries a real effect; everything else is null.
      p.y[static_cast<size_t>(i)] =
          0.35 * p.x(i, 4) + 0.5 * p.c(i, 1) + rng.Gaussian();
    }
    parties.push_back(std::move(p));
  }

  // --- The secure multi-party scan -------------------------------------
  SecureScanOptions options;
  options.aggregation = AggregationMode::kMasked;  // 1-round secure sum
  const auto secure = SecureAssociationScan(options).Run(parties);
  if (!secure.ok()) {
    std::fprintf(stderr, "secure scan failed: %s\n",
                 secure.status().ToString().c_str());
    return 1;
  }
  const ScanResult& result = secure->result;

  std::printf("Secure 3-party association scan (N=550, M=12, K=2)\n");
  std::printf("%-8s %10s %10s %10s %12s\n", "variant", "beta", "se", "t",
              "p");
  for (int64_t m = 0; m < result.num_variants(); ++m) {
    const size_t i = static_cast<size_t>(m);
    std::printf("%-8lld %10.4f %10.4f %10.3f %12.3e\n",
                static_cast<long long>(m), result.beta[i], result.se[i],
                result.tstat[i], result.pval[i]);
  }
  std::printf("\ntop hit: variant %lld (true causal variant is 4)\n",
              static_cast<long long>(result.TopHit()));
  std::printf("inter-party traffic: %lld bytes in %d rounds\n",
              static_cast<long long>(secure->metrics.total_bytes),
              secure->metrics.rounds);

  // --- Sanity: the pooled plaintext scan gives the same answer ---------
  const auto pooled = PoolParties(parties);
  const auto plain =
      AssociationScan(pooled->x, pooled->y, pooled->c);
  std::printf("max |beta_secure - beta_pooled| = %.3e\n",
              MaxAbsDiff(result.beta, plain->beta));
  return 0;
}

}  // namespace

int main() { return RealMain(); }
