// dash_simulate_cli: generate a synthetic multi-party GWAS dataset as
// flat CSV files — the companion to dash_scan_cli for trying the system
// without real data.
//
//   $ dash_simulate_cli --out-dir /tmp/study --parties 500,800,700
//         [--variants 2000] [--covariates 3] [--causal 5]
//         [--effect 0.2] [--missing-rate 0.02] [--seed 42]
//
// Writes, per party p: x<p>.csv, y<p>.csv, c<p>.csv; plus truth.csv with
// the planted causal variants and effects. Then:
//
//   $ dash_scan_cli --party x0.csv:y0.csv:c0.csv ... --out results.csv

#include <cstdio>
#include <string>
#include <vector>

#include "data/matrix_io.h"
#include "data/missing_data.h"
#include "data/workloads.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/strings.h"

namespace {

using namespace dash;

int RealMain(int argc, char** argv) {
  GwasWorkloadOptions options;
  options.num_variants = 2000;
  options.num_covariates = 3;
  options.num_causal = 5;
  options.effect_size = 0.2;
  options.seed = 42;
  std::string out_dir;
  double missing_rate = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--out-dir" && (value = next())) {
      out_dir = value;
    } else if (arg == "--parties" && (value = next())) {
      options.party_sizes.clear();
      for (const auto& field : StrSplit(value, ',')) {
        auto n = ParseInt64(field);
        if (!n.ok() || n.value() <= 0) {
          std::fprintf(stderr, "--parties expects positive sizes\n");
          return 2;
        }
        options.party_sizes.push_back(n.value());
      }
    } else if (arg == "--variants" && (value = next())) {
      options.num_variants = ParseInt64(value).value();
    } else if (arg == "--covariates" && (value = next())) {
      options.num_covariates = ParseInt64(value).value();
    } else if (arg == "--causal" && (value = next())) {
      options.num_causal = ParseInt64(value).value();
    } else if (arg == "--effect" && (value = next())) {
      options.effect_size = ParseDouble(value).value();
    } else if (arg == "--missing-rate" && (value = next())) {
      missing_rate = ParseDouble(value).value();
    } else if (arg == "--seed" && (value = next())) {
      options.seed = static_cast<uint64_t>(ParseInt64(value).value());
    } else {
      std::fprintf(stderr,
                   "usage: dash_simulate_cli --out-dir DIR "
                   "[--parties N1,N2,...] [--variants M] [--covariates K] "
                   "[--causal C] [--effect B] [--missing-rate R] "
                   "[--seed S]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "--out-dir is required\n");
    return 2;
  }

  auto workload = MakeGwasWorkload(options);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  ScanWorkload& w = workload.value();

  Rng missing_rng(options.seed ^ 0x3177);
  for (size_t p = 0; p < w.parties.size(); ++p) {
    if (missing_rate > 0.0) {
      InjectMissingness(missing_rate, &missing_rng, &w.parties[p].x);
    }
    const std::string suffix = std::to_string(p) + ".csv";
    const Status sx =
        WriteMatrixCsv(w.parties[p].x, out_dir + "/x" + suffix);
    const Status sy = WriteVectorCsv(w.parties[p].y, out_dir + "/y" + suffix);
    const Status sc =
        WriteMatrixCsv(w.parties[p].c, out_dir + "/c" + suffix);
    for (const Status& s : {sx, sy, sc}) {
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    std::printf("party %zu: %lld samples -> %s/{x,y,c}%zu.csv\n", p,
                static_cast<long long>(w.parties[p].num_samples()),
                out_dir.c_str(), p);
  }

  CsvTable truth({"variant", "effect"});
  for (size_t i = 0; i < w.causal_variants.size(); ++i) {
    truth.AddRow({std::to_string(w.causal_variants[i]),
                  DoubleToString(w.effect_sizes[i])});
  }
  const Status st = truth.WriteFile(out_dir + "/truth.csv");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%lld variants (%lld causal), K=%lld covariates, "
              "missing rate %.3f -> %s/truth.csv\n",
              static_cast<long long>(options.num_variants),
              static_cast<long long>(options.num_causal),
              static_cast<long long>(options.num_covariates), missing_rate,
              out_dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
