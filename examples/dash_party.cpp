// dash_party: ONE party of the secure association scan as its own OS
// process, talking to the other parties over TCP — the deployment shape
// the in-process simulator models. Run one instance per party (any start
// order; stragglers are awaited with retry + backoff):
//
//   $ dash_party --party 0 --cluster 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 &
//   $ dash_party --party 1 --cluster 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 &
//   $ dash_party --party 2 --cluster 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103
//
// Every instance deterministically generates the same pooled GWAS
// workload from --data-seed and takes its own slice, so the demo needs
// no input files; all parties print the identical revealed result and a
// result checksum that also matches the in-process scan bit for bit.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/secure_scan.h"
#include "data/panel_stream.h"
#include "data/workloads.h"
#include "transport/cluster_config.h"
#include "transport/party_runner.h"
#include "transport/tcp_transport.h"
#include "util/strings.h"

namespace {

using namespace dash;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: dash_party --party P (--cluster h:p,h:p,... | --config FILE)\n"
      "                  [--mode masked|additive|shamir|public]\n"
      "                  [--r-combine stack|tree] [--center]\n"
      "                  [--variants M] [--samples N-per-party]\n"
      "                  [--frac-bits N] [--seed S] [--data-seed S]\n"
      "                  [--pipeline-block B]\n"
      "                  [--connect-timeout-ms T] [--receive-timeout-ms T]\n"
      "                  [--stall-ms T] [--out results.csv]\n"
      "  out-of-core (X streams from a dash_pack file instead of RAM):\n"
      "                  [--stream study.dpk] [--stream-mmap]\n"
      "                  [--checkpoint ckpt.dck] [--checkpoint-every K]\n"
      "                  [--stream-delay-ms T] [--fail-after-panels J]\n");
}

int RealMain(int argc, char** argv) {
  int party = -1;
  ClusterConfig cluster;
  SecureScanOptions scan_options;
  TcpTransportOptions tcp_options;
  GwasWorkloadOptions data_options;
  int64_t variants = 2000;
  int64_t samples_per_party = 500;
  uint64_t data_seed = 42;
  int64_t stall_ms = 0;
  std::string out_path;
  std::string stream_path;
  bool stream_mmap = false;
  StreamingPartyScan stream_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const auto next_i64 = [&](int64_t* out) {
      const char* value = next();
      if (value == nullptr) return false;
      auto parsed = ParseInt64(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", arg.c_str(),
                     parsed.status().ToString().c_str());
        return false;
      }
      *out = parsed.value();
      return true;
    };
    int64_t v = 0;
    if (arg == "--party") {
      if (!next_i64(&v)) return 2;
      party = static_cast<int>(v);
    } else if (arg == "--cluster") {
      const char* value = next();
      if (value == nullptr) return 2;
      auto parsed = ParseClusterList(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--cluster: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      cluster = std::move(parsed).value();
    } else if (arg == "--config") {
      const char* value = next();
      if (value == nullptr) return 2;
      auto parsed = LoadClusterConfig(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--config: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      cluster = std::move(parsed).value();
    } else if (arg == "--mode") {
      const char* value = next();
      if (value == nullptr) return 2;
      const std::string s = value;
      if (s == "masked") {
        scan_options.aggregation = AggregationMode::kMasked;
      } else if (s == "additive") {
        scan_options.aggregation = AggregationMode::kAdditive;
      } else if (s == "shamir") {
        scan_options.aggregation = AggregationMode::kShamir;
      } else if (s == "public") {
        scan_options.aggregation = AggregationMode::kPublicShare;
      } else {
        std::fprintf(stderr, "unknown --mode '%s'\n", value);
        return 2;
      }
    } else if (arg == "--r-combine") {
      const char* value = next();
      if (value == nullptr) return 2;
      const std::string s = value;
      if (s == "stack") {
        scan_options.r_combine = RCombineMode::kBroadcastStack;
      } else if (s == "tree") {
        scan_options.r_combine = RCombineMode::kBinaryTree;
      } else {
        std::fprintf(stderr, "unknown --r-combine '%s'\n", value);
        return 2;
      }
    } else if (arg == "--center") {
      scan_options.center_per_party = true;
    } else if (arg == "--variants") {
      if (!next_i64(&variants)) return 2;
    } else if (arg == "--samples") {
      if (!next_i64(&samples_per_party)) return 2;
    } else if (arg == "--frac-bits") {
      if (!next_i64(&v)) return 2;
      scan_options.frac_bits = static_cast<int>(v);
    } else if (arg == "--pipeline-block") {
      // Block-pipelined aggregation: overlap computing block b+1 with
      // block b's secure-sum round. Bit-identical to the one-shot path.
      if (!next_i64(&scan_options.pipeline_block_variants)) return 2;
    } else if (arg == "--seed") {
      if (!next_i64(&v)) return 2;
      scan_options.seed = static_cast<uint64_t>(v);
    } else if (arg == "--data-seed") {
      if (!next_i64(&v)) return 2;
      data_seed = static_cast<uint64_t>(v);
    } else if (arg == "--connect-timeout-ms") {
      if (!next_i64(&v)) return 2;
      tcp_options.connect_timeout_ms = static_cast<int>(v);
    } else if (arg == "--receive-timeout-ms") {
      if (!next_i64(&v)) return 2;
      tcp_options.receive_timeout_ms = static_cast<int>(v);
    } else if (arg == "--stream") {
      const char* value = next();
      if (value == nullptr) return 2;
      stream_path = value;
    } else if (arg == "--stream-mmap") {
      stream_mmap = true;
    } else if (arg == "--checkpoint") {
      const char* value = next();
      if (value == nullptr) return 2;
      stream_config.checkpoint_path = value;
    } else if (arg == "--checkpoint-every") {
      if (!next_i64(&stream_config.checkpoint_every_panels)) return 2;
    } else if (arg == "--stream-delay-ms") {
      // Test hook: stretch the panel loop so the kill smokes can
      // reliably SIGKILL this process mid-stream.
      if (!next_i64(&stream_config.panel_delay_ms)) return 2;
    } else if (arg == "--fail-after-panels") {
      // Test hook: simulated crash after this many newly streamed
      // panels (see StreamingStatsOptions::fail_after_panels).
      if (!next_i64(&stream_config.fail_after_panels)) return 2;
    } else if (arg == "--stall-ms") {
      // Test hook: sleep between mesh-up and the scan, so fault tests
      // can kill this process at a deterministic protocol point.
      if (!next_i64(&stall_ms)) return 2;
    } else if (arg == "--out") {
      const char* value = next();
      if (value == nullptr) return 2;
      out_path = value;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (cluster.num_parties() == 0) {
    std::fprintf(stderr, "one of --cluster or --config is required\n");
    PrintUsage();
    return 2;
  }
  if (party < 0 || party >= cluster.num_parties()) {
    std::fprintf(stderr, "--party must be in [0, %d)\n",
                 cluster.num_parties());
    return 2;
  }

  // Out-of-core mode: y/C/X all come from the packed study file; the
  // self-generated workload is bypassed entirely.
  std::unique_ptr<PackedStudyReader> reader;
  if (!stream_path.empty()) {
    if (scan_options.center_per_party) {
      std::fprintf(stderr,
                   "--center is incompatible with --stream (X is immutable "
                   "on disk; center before dash_pack)\n");
      return 2;
    }
    auto opened = PackedStudyReader::Open(
        stream_path,
        stream_mmap ? StudyReadMode::kMmap : StudyReadMode::kChunked);
    if (!opened.ok()) {
      std::fprintf(stderr, "--stream: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    reader = std::move(opened).value();
  }

  // Same seed + same cluster size => every process generates the same
  // pooled study; each keeps only its own slice.
  data_options.party_sizes.assign(static_cast<size_t>(cluster.num_parties()),
                                  samples_per_party);
  data_options.num_variants = variants;
  data_options.seed = data_seed;
  if (scan_options.center_per_party) data_options.num_covariates = 3;
  PartyData my_data;
  if (reader == nullptr) {
    auto workload = MakeGwasWorkload(data_options);
    if (!workload.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   workload.status().ToString().c_str());
      return 1;
    }
    my_data =
        std::move(workload.value().parties[static_cast<size_t>(party)]);
    if (scan_options.center_per_party) {
      // The GWAS workload's first covariate column is an intercept, which
      // per-party centering absorbs; drop it.
      Matrix c(my_data.c.rows(), my_data.c.cols() - 1);
      for (int64_t r = 0; r < c.rows(); ++r) {
        for (int64_t j = 0; j < c.cols(); ++j) c(r, j) = my_data.c(r, j + 1);
      }
      my_data.c = std::move(c);
    }
  }
  const int64_t my_samples =
      reader != nullptr ? reader->num_samples() : my_data.num_samples();
  const int64_t my_variants =
      reader != nullptr ? reader->num_variants() : variants;

  std::fprintf(stderr, "[party %d] listening on %s:%u, connecting to %d peers...\n",
               party, cluster.endpoints[static_cast<size_t>(party)].host.c_str(),
               cluster.endpoints[static_cast<size_t>(party)].port,
               cluster.num_parties() - 1);
  auto transport = TcpTransport::Connect(cluster, party, tcp_options);
  if (!transport.ok()) {
    std::fprintf(stderr, "[party %d] connect: %s\n", party,
                 transport.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[party %d] mesh up; running %s scan (M=%" PRId64
               ", N_p=%" PRId64 "%s)\n",
               party, AggregationModeName(scan_options.aggregation),
               my_variants, my_samples,
               reader != nullptr ? ", streamed" : "");
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }

  Result<SecureScanOutput> output =
      reader != nullptr
          ? [&]() -> Result<SecureScanOutput> {
              stream_config.source = reader.get();
              return RunPartySecureScanStreamed(
                  transport.value().get(), reader->phenotype(),
                  reader->covariates(), stream_config, scan_options);
            }()
          : RunPartySecureScan(transport.value().get(), my_data,
                               scan_options);
  if (!output.ok()) {
    // One-line diagnosis for scripts and operators: which party, which
    // round (carried in the Status message), and what failed.
    std::fprintf(stderr, "[party %d] scan FAILED after %d rounds: %s\n",
                 party, transport.value()->metrics().rounds(),
                 output.status().ToString().c_str());
    return 1;
  }

  const ScanResult& result = output.value().result;
  const SecureScanMetrics& metrics = output.value().metrics;
  const TcpWireStats wire = transport.value()->wire_stats();
  const int64_t top = result.TopHit();
  std::printf("party            %d / %d\n", party, cluster.num_parties());
  std::printf("variants         %" PRId64 "  (dof %" PRId64
              ", untestable %" PRId64 ")\n",
              result.num_variants(), result.dof, result.num_untestable);
  if (top >= 0) {
    std::printf("top hit          variant %" PRId64 "  beta=%.6g  p=%.3g\n",
                top, result.beta[static_cast<size_t>(top)],
                result.pval[static_cast<size_t>(top)]);
  }
  std::printf("result checksum  %016" PRIx64 "  (identical at every party)\n",
              ScanResultChecksum(result));
  if (metrics.streamed) {
    // STREAM line is machine-read by the kill smokes: resumed_from > 0
    // proves this run continued a prior run's checkpoint.
    std::printf("STREAM panels_streamed=%" PRId64 " resumed_from=%" PRId64
                " checkpoints=%" PRId64 "\n",
                metrics.panels_streamed, metrics.resumed_from_panel,
                metrics.checkpoints_written);
  }
  std::printf("logical traffic  %" PRId64 " bytes in %" PRId64
              " messages, %d rounds (this party's sends)\n",
              metrics.total_bytes, metrics.total_messages, metrics.rounds);
  std::printf("wire traffic     %" PRId64 " B out / %" PRId64
              " B in (%" PRId64 " / %" PRId64 " frames)\n",
              wire.bytes_sent, wire.bytes_received, wire.frames_sent,
              wire.frames_received);
  if (!out_path.empty()) {
    const Status s = result.WriteCsv(out_path);
    if (!s.ok()) {
      std::fprintf(stderr, "--out: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote            %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
