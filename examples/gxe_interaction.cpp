// Gene-environment interaction scan (paper §5: "multiple transient
// covariates (such as interaction terms)").
//
//   $ ./examples/gxe_interaction
//
// For each variant the parties jointly test (genotype, genotype x E)
// with a 2-degree-of-freedom F test, securely. A variant whose effect
// exists only in exposed individuals is invisible to the marginal
// 1-dof scan but lights up in the joint test.

#include <cstdio>

#include "core/association_scan.h"
#include "core/grouped_scan.h"
#include "core/secure_scan.h"
#include "data/genotype_generator.h"
#include "data/party_split.h"
#include "util/random.h"

namespace {

int RealMain() {
  using namespace dash;

  constexpr int64_t kN = 1800;
  constexpr int64_t kVariants = 300;
  constexpr int64_t kGxeVariant = 42;

  Rng rng(2718);
  GenotypeOptions geno;
  geno.num_samples = kN;
  geno.num_variants = kVariants;
  geno.seed = 5;
  const Matrix x = GenerateGenotypes(geno);

  // Exposure E (centered) and covariates (intercept + E itself, so the
  // interaction test is not confounded by the main effect of E).
  Vector e(kN);
  Matrix c(kN, 2);
  for (int64_t i = 0; i < kN; ++i) {
    e[static_cast<size_t>(i)] = rng.Bernoulli(0.5) ? 0.5 : -0.5;
    c(i, 0) = 1.0;
    c(i, 1) = e[static_cast<size_t>(i)];
  }
  // Phenotype: variant 42 acts ONLY through the interaction.
  Vector y(kN);
  for (int64_t i = 0; i < kN; ++i) {
    y[static_cast<size_t>(i)] =
        0.45 * x(i, kGxeVariant) * e[static_cast<size_t>(i)] + rng.Gaussian();
  }

  // Marginal 1-dof scan misses it.
  const ScanResult marginal = AssociationScan(x, y, c).value();
  std::printf("marginal scan:   p[%lld] = %.3e  (top hit: variant %lld)\n",
              static_cast<long long>(kGxeVariant),
              marginal.pval[kGxeVariant],
              static_cast<long long>(marginal.TopHit()));

  // Joint (genotype, genotype x E) secure grouped scan.
  const Matrix x_gxe = WithInteractionTerms(x, e).value();
  const auto parties = SplitRows(x_gxe, y, c, {600, 600, 600}).value();
  SecureScanOptions opts;
  opts.aggregation = AggregationMode::kMasked;
  const auto joint = SecureGroupedScan(parties, 2, opts);
  if (!joint.ok()) {
    std::fprintf(stderr, "%s\n", joint.status().ToString().c_str());
    return 1;
  }
  const GroupedScanResult& g = joint->result;
  std::printf("joint 2-dof F:   p[%lld] = %.3e  "
              "(beta_main=%.3f, beta_gxe=%.3f)\n",
              static_cast<long long>(kGxeVariant), g.pval[kGxeVariant],
              g.beta(0, kGxeVariant), g.beta(1, kGxeVariant));

  int64_t best = 0;
  for (int64_t j = 1; j < g.num_groups(); ++j) {
    if (g.pval[static_cast<size_t>(j)] < g.pval[static_cast<size_t>(best)]) best = j;
  }
  std::printf("joint scan's top group: %lld (planted GxE variant is %lld)\n",
              static_cast<long long>(best),
              static_cast<long long>(kGxeVariant));
  std::printf("F dof = (%lld, %lld); traffic %lld bytes\n",
              static_cast<long long>(g.dof1), static_cast<long long>(g.dof2),
              static_cast<long long>(joint->metrics.total_bytes));
  return 0;
}

}  // namespace

int main() { return RealMain(); }
