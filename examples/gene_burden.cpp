// Secure gene burden testing (paper §5).
//
//   $ ./examples/gene_burden
//
// Rare variants are collapsed into per-gene burden scores B = X W by each
// party locally (matrix multiplication is associative, so the projection
// commutes with the horizontal partition), then the ordinary DASH
// protocol runs on the G gene scores instead of the M variants —
// shrinking both the multiple-testing burden and the traffic.

#include <cstdio>
#include <vector>

#include "core/burden_scan.h"
#include "core/secure_scan.h"
#include "data/genotype_generator.h"
#include "data/party_split.h"
#include "util/random.h"

namespace {

int RealMain() {
  using namespace dash;

  constexpr int64_t kVariants = 2000;
  constexpr int64_t kGenes = 100;
  constexpr int64_t kCausalGene = 13;

  // Rare variants (low MAF) across three parties.
  GenotypeOptions geno;
  geno.num_samples = 1500;
  geno.num_variants = kVariants;
  geno.maf_min = 0.002;
  geno.maf_max = 0.02;
  geno.seed = 3;
  const Matrix x = GenerateGenotypes(geno);

  // 20 variants per gene, in order.
  std::vector<int64_t> gene_of_variant(kVariants);
  for (int64_t v = 0; v < kVariants; ++v) gene_of_variant[static_cast<size_t>(v)] = v / 20;
  const Matrix weights =
      BurdenWeightsFromGeneAssignment(gene_of_variant, kGenes).value();

  // Phenotype driven by the causal gene's total burden.
  Rng rng(4);
  const Matrix burden = MatMul(x, weights);
  Matrix c(1500, 1);
  Vector y(1500);
  for (int64_t i = 0; i < 1500; ++i) {
    c(i, 0) = 1.0;
    y[static_cast<size_t>(i)] = 0.6 * burden(i, kCausalGene) + rng.Gaussian();
  }

  const auto parties = SplitRows(x, y, c, {500, 500, 500}).value();

  SecureScanOptions options;
  options.aggregation = AggregationMode::kMasked;
  const auto out = SecureBurdenScan(parties, weights, options);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }
  const ScanResult& scan = out->result;

  std::printf("secure burden scan: %lld variants -> %lld genes\n",
              static_cast<long long>(kVariants),
              static_cast<long long>(kGenes));
  std::printf("top genes by p-value:\n%-8s %10s %12s\n", "gene", "beta", "p");
  // Print the 5 smallest p-values.
  std::vector<int64_t> order;
  for (int64_t g = 0; g < kGenes; ++g) order.push_back(g);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return scan.pval[static_cast<size_t>(a)] < scan.pval[static_cast<size_t>(b)];
  });
  for (int rank = 0; rank < 5; ++rank) {
    const int64_t g = order[static_cast<size_t>(rank)];
    std::printf("%-8lld %10.4f %12.3e%s\n", static_cast<long long>(g),
                scan.beta[static_cast<size_t>(g)],
                scan.pval[static_cast<size_t>(g)],
                g == kCausalGene ? "   <- planted causal gene" : "");
  }
  std::printf("\ntraffic: %lld bytes (vs ~20x more for a per-variant scan)\n",
              static_cast<long long>(out->metrics.total_bytes));
  return 0;
}

}  // namespace

int main() { return RealMain(); }
