// dash_scan_cli: run the secure multi-party association scan from flat
// files — the adoption path for users who are not linking the library.
//
//   $ dash_scan_cli --party x1.csv:y1.csv:c1.csv
//                   --party x2.csv:y2.csv:c2.csv
//                   [--mode masked|additive|shamir|public]
//                   [--projection sums|beaver]
//                   [--r-combine stack|tree] [--impute]
//                   [--center] [--frac-bits N] [--threads N]
//                   [--out results.csv] [--report report.txt]
//
// Each --party names headerless CSVs: X (N_p x M), y (N_p x 1),
// C (N_p x K; omit the third path for K = 0). Prints the top hits and
// protocol traffic; --out writes the full per-variant table.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/imputation.h"
#include "core/scan_report.h"
#include "core/secure_scan.h"
#include "data/matrix_io.h"
#include "util/strings.h"

namespace {

using namespace dash;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: dash_scan_cli --party X.csv:y.csv[:C.csv] [--party ...]\n"
      "                     [--mode masked|additive|shamir|public]\n"
      "                     [--projection sums|beaver]\n"
      "                     [--r-combine stack|tree] [--center] [--impute]\n"
      "                     [--frac-bits N] [--threads N] [--out FILE]\n"
      "                     [--report FILE]\n");
}

Result<AggregationMode> ParseMode(const std::string& s) {
  if (s == "masked") return AggregationMode::kMasked;
  if (s == "additive") return AggregationMode::kAdditive;
  if (s == "shamir") return AggregationMode::kShamir;
  if (s == "public") return AggregationMode::kPublicShare;
  return InvalidArgumentError("unknown --mode '" + s + "'");
}

int RealMain(int argc, char** argv) {
  std::vector<PartyData> parties;
  SecureScanOptions options;
  std::string out_path;
  std::string report_path;
  bool impute = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--party") {
      const char* value = next();
      if (value == nullptr) return 2;
      const auto paths = StrSplit(value, ':');
      if (paths.size() != 2 && paths.size() != 3) {
        std::fprintf(stderr, "--party expects X.csv:y.csv[:C.csv]\n");
        return 2;
      }
      auto party = ReadPartyCsv(paths[0], paths[1],
                                paths.size() == 3 ? paths[2] : "");
      if (!party.ok()) {
        std::fprintf(stderr, "loading party %zu: %s\n", parties.size(),
                     party.status().ToString().c_str());
        return 1;
      }
      parties.push_back(std::move(party).value());
    } else if (arg == "--mode") {
      const char* value = next();
      if (value == nullptr) return 2;
      auto mode = ParseMode(value);
      if (!mode.ok()) {
        std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
        return 2;
      }
      options.aggregation = mode.value();
    } else if (arg == "--projection") {
      const char* value = next();
      if (value == nullptr) return 2;
      if (std::strcmp(value, "sums") == 0) {
        options.projection = ProjectionSecurity::kRevealProjectedSums;
      } else if (std::strcmp(value, "beaver") == 0) {
        options.projection = ProjectionSecurity::kBeaverDotProducts;
      } else {
        std::fprintf(stderr, "unknown --projection '%s'\n", value);
        return 2;
      }
    } else if (arg == "--r-combine") {
      const char* value = next();
      if (value == nullptr) return 2;
      if (std::strcmp(value, "stack") == 0) {
        options.r_combine = RCombineMode::kBroadcastStack;
      } else if (std::strcmp(value, "tree") == 0) {
        options.r_combine = RCombineMode::kBinaryTree;
      } else {
        std::fprintf(stderr, "unknown --r-combine '%s'\n", value);
        return 2;
      }
    } else if (arg == "--center") {
      options.center_per_party = true;
    } else if (arg == "--impute") {
      impute = true;
    } else if (arg == "--frac-bits") {
      const char* value = next();
      if (value == nullptr) return 2;
      auto bits = ParseInt64(value);
      if (!bits.ok() || bits.value() < 1 || bits.value() > 62) {
        std::fprintf(stderr, "--frac-bits expects an integer in [1, 62]\n");
        return 2;
      }
      options.frac_bits = static_cast<int>(bits.value());
    } else if (arg == "--threads") {
      const char* value = next();
      if (value == nullptr) return 2;
      auto threads = ParseInt64(value);
      if (!threads.ok() || threads.value() < 1) {
        std::fprintf(stderr, "--threads expects a positive integer\n");
        return 2;
      }
      options.num_threads = static_cast<int>(threads.value());
    } else if (arg == "--out") {
      const char* value = next();
      if (value == nullptr) return 2;
      out_path = value;
    } else if (arg == "--report") {
      const char* value = next();
      if (value == nullptr) return 2;
      report_path = value;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (parties.empty()) {
    PrintUsage();
    return 2;
  }

  if (impute) {
    const auto imputed = SecureMeanImpute(&parties, options);
    if (!imputed.ok()) {
      std::fprintf(stderr, "imputation failed: %s\n",
                   imputed.status().ToString().c_str());
      return 1;
    }
    std::printf("imputed %lld missing entries (secure global means)\n",
                static_cast<long long>(imputed->total_missing));
  }

  const auto out = SecureAssociationScan(options).Run(parties);
  if (!out.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", out.status().ToString().c_str());
    return 1;
  }
  const ScanResult& scan = out->result;

  int64_t n = 0;
  for (const auto& p : parties) n += p.num_samples();
  std::printf("scanned %lld variants over %lld samples in %zu parties "
              "(mode=%s, projection=%s)\n",
              static_cast<long long>(scan.num_variants()),
              static_cast<long long>(n), parties.size(),
              AggregationModeName(options.aggregation),
              ProjectionSecurityName(options.projection));
  std::printf("traffic: %lld bytes, %d rounds; dof = %lld\n",
              static_cast<long long>(out->metrics.total_bytes),
              out->metrics.rounds, static_cast<long long>(scan.dof));

  const int64_t top = scan.TopHit();
  if (top >= 0) {
    std::printf("top hit: variant %lld  beta=%.6f  se=%.6f  p=%.3e\n",
                static_cast<long long>(top),
                scan.beta[static_cast<size_t>(top)],
                scan.se[static_cast<size_t>(top)],
                scan.pval[static_cast<size_t>(top)]);
  }
  if (!report_path.empty()) {
    const Status s = WriteScanReport(scan, report_path);
    if (!s.ok()) {
      std::fprintf(stderr, "writing %s: %s\n", report_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  if (!out_path.empty()) {
    const Status s = scan.WriteCsv(out_path);
    if (!s.ok()) {
      std::fprintf(stderr, "writing %s: %s\n", out_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("results written to %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
