// E12 / Table 6 — Cᵀ-compression: one aggregation, many analyses
// (paper §5: "one can alternatively compress using Cᵀ rather than Qᵀ to
// preserve the ability to select phenotypes and covariates
// post-compression").
//
// A Qᵀ-compressed protocol must re-run its aggregation for every
// covariate set; a Cᵀ-compressed study pays one aggregation and then
// answers any (phenotype, covariate-subset) scan locally. This bench
// compares the communication of an analysis session with S downstream
// scans under both designs, and times the local post-hoc scans.

#include <cstdio>
#include <vector>

#include "core/association_scan.h"
#include "core/compressed_study.h"
#include "core/secure_scan.h"
#include "data/genotype_generator.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using namespace dash;

int RealMain() {
  std::printf("=== E12 (Table 6): Ct-compression, post-hoc selection ===\n");
  constexpr int64_t kM = 4000;
  constexpr int64_t kK = 6;
  constexpr int64_t kT = 3;
  std::printf("P = 3, N = 1200, M = %lld, K = %lld, T = %lld phenotypes\n\n",
              static_cast<long long>(kM), static_cast<long long>(kK),
              static_cast<long long>(kT));

  Rng rng(121);
  std::vector<MultiPhenotypePartyData> parties;
  std::vector<PartyData> single_pheno;
  for (const int64_t n : {int64_t{400}, int64_t{400}, int64_t{400}}) {
    MultiPhenotypePartyData pd;
    pd.x = GaussianMatrix(n, kM, &rng);
    pd.c = GaussianMatrix(n, kK, &rng);
    pd.ys = GaussianMatrix(n, kT, &rng);
    PartyData sp;
    sp.x = pd.x;
    sp.c = pd.c;
    sp.y = pd.ys.Col(0);
    single_pheno.push_back(std::move(sp));
    parties.push_back(std::move(pd));
  }

  SecureScanOptions opts;
  opts.aggregation = AggregationMode::kMasked;

  // One Ct-compression round.
  Stopwatch t_compress;
  const auto compressed = CompressedStudy::SecureCompress(parties, opts).value();
  const double compress_seconds = t_compress.ElapsedSeconds();

  // An analysis session: 6 covariate subsets x 3 phenotypes.
  const std::vector<std::vector<int64_t>> subsets = {
      {0, 1, 2, 3, 4, 5}, {0, 1, 2}, {0}, {0, 3, 4}, {1, 2, 5}, {}};
  Stopwatch t_scans;
  int scans = 0;
  for (int64_t t = 0; t < kT; ++t) {
    for (const auto& subset : subsets) {
      const auto scan = compressed.study.Scan(t, subset);
      DASH_CHECK(scan.ok()) << scan.status();
      ++scans;
    }
  }
  const double scan_seconds = t_scans.ElapsedSeconds();

  // The Qᵀ design re-aggregates per analysis (single-phenotype secure
  // scans; subsets change Q, so every subset is a fresh protocol run).
  const auto one_scan =
      SecureAssociationScan(opts).Run(single_pheno).value();

  std::printf("%-34s %14s %12s\n", "design", "session bytes", "wall(s)");
  std::printf("%-34s %14lld %12.3f\n",
              "Ct-compress once + 18 local scans",
              static_cast<long long>(compressed.metrics.total_bytes),
              compress_seconds + scan_seconds);
  std::printf("%-34s %14lld %12s\n", "Qt protocol x 18 analyses",
              static_cast<long long>(18 * one_scan.metrics.total_bytes),
              "-");
  std::printf("\nper-analysis marginal cost after compression: %.1f ms, "
              "0 bytes\n", 1e3 * scan_seconds / scans);

  // Correctness spot check: compressed scan == direct scan.
  std::vector<Matrix> xs, cs;
  Vector y0;
  for (const auto& p : parties) {
    xs.push_back(p.x);
    cs.push_back(p.c);
    const Vector col = p.ys.Col(0);
    y0.insert(y0.end(), col.begin(), col.end());
  }
  const ScanResult direct =
      AssociationScan(VStack(xs), y0, VStack(cs)).value();
  const ScanResult posthoc = compressed.study.ScanAllCovariates(0).value();
  std::printf("max|Δbeta| vs direct scan: %.2e\n",
              MaxAbsDiff(posthoc.beta, direct.beta));
  std::printf(
      "\nexpected shape: the compressed session costs ~1/18th of the\n"
      "per-analysis protocol in bytes (one aggregation, slightly larger\n"
      "because it carries K x M Ct-statistics and T phenotypes), with\n"
      "millisecond, zero-byte post-hoc scans.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
