// E4 / Figure 3 — compute scaling O(NK² + NKM/C) of the scan kernel
// (paper §2, equations (4)-(5)).
//
// google-benchmark micro-benchmarks over N, M, K and worker threads.
// Expected shape: time linear in N at fixed (M, K); linear in M at fixed
// (N, K); linear in K at fixed (N, M); and decreasing in threads
// (on multi-core hosts) since the column shards are independent.

#include <benchmark/benchmark.h>

#include "core/association_scan.h"
#include "linalg/qr.h"
#include "data/genotype_generator.h"
#include "util/random.h"

namespace {

using namespace dash;

struct Study {
  Matrix x;
  Vector y;
  Matrix c;
};

Study MakeStudy(int64_t n, int64_t m, int64_t k) {
  Rng rng(static_cast<uint64_t>(n * 31 + m * 7 + k));
  Study s;
  s.x = GaussianMatrix(n, m, &rng);
  s.c = GaussianMatrix(n, k, &rng);
  s.y = GaussianVector(n, &rng);
  return s;
}

void BM_ScanSweepN(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Study s = MakeStudy(n, 500, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssociationScan(s.x, s.y, s.c).value());
  }
  state.SetItemsProcessed(state.iterations() * n * 500);
  state.counters["N"] = static_cast<double>(n);
}
BENCHMARK(BM_ScanSweepN)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000);

void BM_ScanSweepM(benchmark::State& state) {
  const int64_t m = state.range(0);
  const Study s = MakeStudy(2000, m, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssociationScan(s.x, s.y, s.c).value());
  }
  state.SetItemsProcessed(state.iterations() * 2000 * m);
  state.counters["M"] = static_cast<double>(m);
}
BENCHMARK(BM_ScanSweepM)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000);

void BM_ScanSweepK(benchmark::State& state) {
  const int64_t k = state.range(0);
  const Study s = MakeStudy(2000, 500, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssociationScan(s.x, s.y, s.c).value());
  }
  state.counters["K"] = static_cast<double>(k);
}
BENCHMARK(BM_ScanSweepK)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ScanThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Study s = MakeStudy(3000, 1500, 4);
  ScanOptions opts;
  opts.num_threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssociationScan(s.x, s.y, s.c, opts).value());
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ScanThreads)->Arg(1)->Arg(2)->Arg(4);

// The QR step is O(NK²): negligible next to the O(NKM) statistics pass,
// which is why the paper treats reading the data as the bound.
void BM_CovariateQr(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(static_cast<uint64_t>(n));
  const Matrix c = GaussianMatrix(n, 8, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThinQr(c).value());
  }
  state.counters["N"] = static_cast<double>(n);
}
BENCHMARK(BM_CovariateQr)->Arg(1000)->Arg(4000)->Arg(16000);

}  // namespace

BENCHMARK_MAIN();
