// E9 / Table 4 — the §5 generalizations, each validated against its
// pooled reference and costed:
//
//   burden:     secure gene-burden scan == pooled scan of X W;
//   phenotypes: T-phenotype secure scan == T single scans, with
//               sub-linear marginal traffic per phenotype;
//   online:     Cᵀ-compression streaming scan == batch scan;
//   LMM:        whitened scan reduces to OLS at delta = 0 and whitens
//               the induced covariance at delta > 0.

#include <cmath>
#include <cstdio>

#include "core/association_scan.h"
#include "core/burden_scan.h"
#include "core/grouped_scan.h"
#include "core/mixed_model.h"
#include "core/multi_phenotype_scan.h"
#include "core/online_scan.h"
#include "core/secure_scan.h"
#include "data/genotype_generator.h"
#include "data/workloads.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using namespace dash;

void BurdenRow() {
  GwasWorkloadOptions opts;
  opts.party_sizes = {300, 400, 300};
  opts.num_variants = 2000;
  opts.num_covariates = 3;
  opts.num_causal = 0;
  opts.seed = 91;
  const ScanWorkload w = MakeGwasWorkload(opts).value();
  std::vector<int64_t> genes(2000);
  for (size_t v = 0; v < genes.size(); ++v) genes[v] = static_cast<int64_t>(v / 20);
  const Matrix weights = BurdenWeightsFromGeneAssignment(genes, 100).value();

  SecureScanOptions scan_opts;
  scan_opts.aggregation = AggregationMode::kMasked;
  Stopwatch timer;
  const auto secure = SecureBurdenScan(w.parties, weights, scan_opts).value();
  const double seconds = timer.ElapsedSeconds();

  const PooledData pooled = PoolParties(w.parties).value();
  const ScanResult plain =
      BurdenScan(pooled.x, weights, pooled.y, pooled.c).value();
  std::printf("%-12s %8s %14.2e %12.3fs %14lld\n", "burden", "2000->100",
              MaxAbsDiff(secure.result.beta, plain.beta), seconds,
              static_cast<long long>(secure.metrics.total_bytes));
}

void MultiPhenotypeRows() {
  Rng rng(92);
  for (const int64_t t_count : {1, 4, 16}) {
    std::vector<MultiPhenotypePartyData> parties;
    std::vector<Matrix> xs, cs, yss;
    for (const int64_t n : {int64_t{200}, int64_t{300}}) {
      MultiPhenotypePartyData pd;
      pd.x = GaussianMatrix(n, 1000, &rng);
      pd.c = GaussianMatrix(n, 3, &rng);
      pd.ys = GaussianMatrix(n, t_count, &rng);
      xs.push_back(pd.x);
      cs.push_back(pd.c);
      yss.push_back(pd.ys);
      parties.push_back(std::move(pd));
    }
    SecureScanOptions opts;
    opts.aggregation = AggregationMode::kMasked;
    Stopwatch timer;
    const auto secure = SecureMultiPhenotypeScan(parties, opts).value();
    const double seconds = timer.ElapsedSeconds();

    const auto plain =
        MultiPhenotypeScan(VStack(xs), VStack(yss), VStack(cs)).value();
    double worst = 0.0;
    for (size_t t = 0; t < static_cast<size_t>(t_count); ++t) {
      worst = std::max(worst,
                       MaxAbsDiff(secure.results[t].beta, plain[t].beta));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "pheno T=%lld",
                  static_cast<long long>(t_count));
    std::printf("%-12s %8s %14.2e %12.3fs %14lld\n", label, "M=1000", worst,
                seconds, static_cast<long long>(secure.metrics.total_bytes));
  }
}

void OnlineRow() {
  Rng rng(93);
  const Matrix x = GaussianMatrix(2000, 800, &rng);
  const Matrix c = WithInterceptColumn(GaussianMatrix(2000, 2, &rng));
  const Vector y = GaussianVector(2000, &rng);

  Stopwatch timer;
  OnlineScan online(800, 3);
  for (int64_t start = 0; start < 2000; start += 250) {
    const Matrix xb = SliceRows(x, start, start + 250);
    const Matrix cb = SliceRows(c, start, start + 250);
    const Vector yb(y.begin() + start, y.begin() + start + 250);
    DASH_CHECK(online.AddBatch(xb, yb, cb).ok());
  }
  const ScanResult incr = online.Finalize().value();
  const double seconds = timer.ElapsedSeconds();
  const ScanResult full = AssociationScan(x, y, c).value();
  std::printf("%-12s %8s %14.2e %12.3fs %14s\n", "online", "8 waves",
              MaxAbsDiff(incr.beta, full.beta), seconds, "n/a");
}

void MixedModelRow() {
  Rng rng(94);
  GenotypeOptions geno;
  geno.num_samples = 150;
  geno.num_variants = 400;
  geno.seed = 95;
  const Matrix g = GenerateGenotypes(geno);
  const Matrix kinship = ComputeGrm(g);
  const Matrix c = WithInterceptColumn(GaussianMatrix(150, 1, &rng));
  const Vector y = GaussianVector(150, &rng);

  Stopwatch timer;
  const ScanResult lmm0 = MixedModelScan(g, y, c, kinship, 0.0).value();
  const double seconds = timer.ElapsedSeconds();
  const ScanResult plain = AssociationScan(g, y, c).value();
  double worst = 0.0;
  for (int64_t j = 0; j < 400; ++j) {
    const size_t i = static_cast<size_t>(j);
    if (std::isnan(plain.beta[i]) || std::isnan(lmm0.beta[i])) continue;
    worst = std::max(worst, std::fabs(plain.beta[i] - lmm0.beta[i]));
  }
  std::printf("%-12s %8s %14.2e %12.3fs %14s\n", "lmm d=0", "N=150", worst,
              seconds, "n/a");

  // Whitening check at delta = 1.5.
  const MixedModelTransform t = MixedModelTransform::Build(kinship, 1.5).value();
  Matrix v(150, 150);
  for (int64_t i = 0; i < 150; ++i) {
    for (int64_t j = 0; j < 150; ++j) {
      v(i, j) = 1.5 * kinship(i, j) + (i == j ? 1.0 : 0.0);
    }
  }
  const Matrix w = t.ApplyToMatrix(Matrix::Identity(150));
  const double whiten_err =
      MaxAbsDiff(MatMul(MatMul(w, v), Transpose(w)), Matrix::Identity(150));
  std::printf("%-12s %8s %14.2e %12s %14s\n", "lmm whiten", "d=1.5",
              whiten_err, "-", "n/a");
}

void GroupedRow() {
  Rng rng(96);
  const int64_t n = 900;
  const Matrix x = GaussianMatrix(n, 600, &rng);  // 300 groups of 2
  const Matrix c = WithInterceptColumn(GaussianMatrix(n, 2, &rng));
  const Vector y = GaussianVector(n, &rng);
  const auto parties = SplitRows(x, y, c, {300, 300, 300}).value();

  SecureScanOptions opts;
  opts.aggregation = AggregationMode::kMasked;
  Stopwatch timer;
  const auto secure = SecureGroupedScan(parties, 2, opts).value();
  const double seconds = timer.ElapsedSeconds();
  const GroupedScanResult plain = GroupedScan(x, 2, y, c).value();
  std::printf("%-12s %8s %14.2e %12.3fs %14lld\n", "grouped T=2", "G=300",
              MaxAbsDiff(secure.result.fstat, plain.fstat), seconds,
              static_cast<long long>(secure.metrics.total_bytes));
}

int RealMain() {
  std::printf("=== E9 (Table 4): the paper's SS5 generalizations ===\n\n");
  std::printf("%-12s %8s %14s %12s %14s\n", "variant", "shape",
              "max|Δ vs ref|", "wall", "bytes");
  BurdenRow();
  MultiPhenotypeRows();
  GroupedRow();
  OnlineRow();
  MixedModelRow();
  std::printf(
      "\nexpected shape: deviations at quantization/roundoff level; the\n"
      "T=16 phenotype bytes well under 16x the T=1 bytes (shared X-side\n"
      "statistics dominate).\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
