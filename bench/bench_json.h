// Machine-readable bench output (bench/compare_bench.py reads these).
//
// Schema: {"bench": <suite>, "isas": ["portable", ...], "entries":
// [{"name", "n", "m", "k", "p", "ns", "gb_per_s", "checksum"}, ...]}.
// `ns` is wall nanoseconds for one run (best of reps), `gb_per_s` the
// effective streaming rate over the primary operand, `checksum` the
// FNV-1a hex of the result's wire image so two bench runs can be
// compared for bit-identity as well as speed. `isas` lists the kernel
// ISAs the producing machine could run, so compare_bench.py can tell
// "entry skipped because this runner lacks AVX-512" apart from "entry
// silently disappeared" when gating against a baseline from a bigger
// machine.

#ifndef DASH_BENCH_BENCH_JSON_H_
#define DASH_BENCH_BENCH_JSON_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dash_bench {

struct BenchEntry {
  std::string name;
  int64_t n = 0;
  int64_t m = 0;
  int64_t k = 0;
  int64_t p = 1;
  double ns = 0.0;
  double gb_per_s = 0.0;
  uint64_t checksum = 0;
};

inline bool WriteBenchJson(const std::string& path, const std::string& suite,
                           const std::vector<BenchEntry>& entries,
                           const std::vector<std::string>& isas = {}) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", suite.c_str());
  if (!isas.empty()) {
    std::fprintf(f, "  \"isas\": [");
    for (size_t i = 0; i < isas.size(); ++i) {
      std::fprintf(f, "%s\"%s\"", i > 0 ? ", " : "", isas[i].c_str());
    }
    std::fprintf(f, "],\n");
  }
  std::fprintf(f, "  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"n\": %" PRId64 ", \"m\": %" PRId64
                 ", \"k\": %" PRId64 ", \"p\": %" PRId64
                 ", \"ns\": %.1f, \"gb_per_s\": %.3f, "
                 "\"checksum\": \"%016" PRIx64 "\"}%s\n",
                 e.name.c_str(), e.n, e.m, e.k, e.p, e.ns, e.gb_per_s,
                 e.checksum, i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace dash_bench

#endif  // DASH_BENCH_BENCH_JSON_H_
