// E5 / Table 2 — DASH vs meta-analysis vs naive pooling.
//
// The paper motivates DASH by the two failure modes of the status quo:
// meta-analysis "loss of power due to noisy standard errors as well as
// between-group heterogeneity (c.f. Simpson's paradox)". Two
// sub-experiments over Monte-Carlo replicates:
//
//  (a) POWER: many small parties, homogeneous true effect. Power at
//      alpha = 0.05 of per-party meta vs pooled DASH, by effect size.
//      DASH should dominate, most visibly at small per-party N.
//  (b) BIAS: the Simpson's-paradox construction (party-graded allele
//      frequency and phenotype mean, zero true effect). Mean estimated
//      beta and type-I error rate for naive pooling (biased), meta,
//      and DASH with per-party centering (both unbiased; DASH tighter).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/association_scan.h"
#include "core/meta_scan.h"
#include "core/secure_scan.h"
#include "data/genotype_generator.h"
#include "data/workloads.h"
#include "util/random.h"

namespace {

using namespace dash;

constexpr int kReplicates = 120;
constexpr double kAlpha = 0.05;

// (a) power experiment: many small parties, one tested variant with a
// homogeneous effect, intercept + 2 covariates per party.
//
// Fairness note: fixed-effect meta-analysis uses normal p-values that
// ignore the noise in each tiny party's estimated standard error, which
// inflates its type-I error. We therefore also report CALIBRATED power:
// each method's 5% critical value is taken from its own null (effect=0)
// distribution, so the comparison is at matched type-I error — the
// paper's "loss of power due to noisy standard errors" in its honest
// form.
struct PowerCell {
  double meta_nominal = 0.0;
  double dash_nominal = 0.0;
  Vector meta_stats;
  Vector dash_stats;
};

PowerCell RunPowerCell(double effect, Rng* seeder) {
  constexpr int kParties = 12;
  constexpr int64_t kPerParty = 14;
  PowerCell cell;
  for (int rep = 0; rep < kReplicates; ++rep) {
    Rng rng(seeder->NextU64());
    std::vector<PartyData> parties;
    for (int p = 0; p < kParties; ++p) {
      PartyData pd;
      pd.x = GaussianMatrix(kPerParty, 1, &rng);
      pd.c = WithInterceptColumn(GaussianMatrix(kPerParty, 2, &rng));
      pd.y.resize(static_cast<size_t>(kPerParty));
      for (int64_t i = 0; i < kPerParty; ++i) {
        pd.y[static_cast<size_t>(i)] =
            effect * pd.x(i, 0) + 0.3 * pd.c(i, 1) + rng.Gaussian();
      }
      parties.push_back(std::move(pd));
    }
    const MetaScanResult meta = MetaAnalysisScan(parties).value();
    cell.meta_nominal += (meta.pval[0] < kAlpha);
    cell.meta_stats.push_back(std::fabs(meta.z[0]));

    SecureScanOptions opts;
    opts.aggregation = AggregationMode::kPublicShare;
    const ScanResult dash =
        SecureAssociationScan(opts).Run(parties).value().result;
    cell.dash_nominal += (dash.pval[0] < kAlpha);
    cell.dash_stats.push_back(std::fabs(dash.tstat[0]));
  }
  cell.meta_nominal /= kReplicates;
  cell.dash_nominal /= kReplicates;
  return cell;
}

double EmpiricalQuantile(Vector values, double q) {
  std::sort(values.begin(), values.end());
  const size_t idx =
      static_cast<size_t>(q * static_cast<double>(values.size() - 1));
  return values[idx];
}

double CalibratedPower(const Vector& stats, double critical) {
  int hits = 0;
  for (const double s : stats) hits += (s > critical);
  return static_cast<double>(hits) / static_cast<double>(stats.size());
}

void PowerExperiment() {
  std::printf("-- (a) homogeneous effect, 12 parties of 14 samples, K=3 --\n");
  Rng seeder(501);
  const PowerCell null_cell = RunPowerCell(0.0, &seeder);
  const double meta_crit = EmpiricalQuantile(null_cell.meta_stats, 0.95);
  const double dash_crit = EmpiricalQuantile(null_cell.dash_stats, 0.95);
  std::printf("type-I at nominal alpha=0.05: meta %.3f (anti-conservative), "
              "dash %.3f\n",
              null_cell.meta_nominal, null_cell.dash_nominal);
  std::printf("%-10s | %10s %10s | %12s %12s\n", "effect", "meta@5%",
              "dash@5%", "meta(calib)", "dash(calib)");
  for (const double effect : {0.2, 0.35, 0.5}) {
    const PowerCell cell = RunPowerCell(effect, &seeder);
    std::printf("%-10.2f | %10.3f %10.3f | %12.3f %12.3f\n", effect,
                cell.meta_nominal, cell.dash_nominal,
                CalibratedPower(cell.meta_stats, meta_crit),
                CalibratedPower(cell.dash_stats, dash_crit));
  }
}

// (b) bias experiment: Simpson's-paradox workload with zero true effect.
void BiasExperiment() {
  std::printf("\n-- (b) Simpson's paradox, true effect = 0 --\n");
  std::printf("%-14s %12s %14s\n", "analysis", "mean beta",
              "type-I @ 0.05");
  double naive_beta = 0.0;
  double meta_beta = 0.0;
  double dash_beta = 0.0;
  int naive_fp = 0;
  int meta_fp = 0;
  int dash_fp = 0;
  Rng seeder(733);
  for (int rep = 0; rep < kReplicates; ++rep) {
    ConfoundedWorkloadOptions opts;
    opts.party_sizes = {150, 150, 150};
    opts.num_variants = 1;
    opts.within_effect = 0.0;
    opts.party_shift = 1.5;
    opts.seed = seeder.NextU64();
    const ScanWorkload w = MakeConfoundedWorkload(opts).value();

    const PooledData pooled = PoolParties(w.parties).value();
    const ScanResult naive =
        AssociationScan(pooled.x, pooled.y, pooled.c).value();
    naive_beta += naive.beta[0];
    naive_fp += (naive.pval[0] < kAlpha);

    const MetaScanResult meta = MetaAnalysisScan(w.parties).value();
    meta_beta += meta.beta[0];
    meta_fp += (meta.pval[0] < kAlpha);

    std::vector<PartyData> centered = w.parties;
    for (auto& p : centered) p.c = Matrix(p.num_samples(), 0);
    SecureScanOptions scan_opts;
    scan_opts.aggregation = AggregationMode::kPublicShare;
    scan_opts.center_per_party = true;
    const ScanResult dash =
        SecureAssociationScan(scan_opts).Run(centered).value().result;
    dash_beta += dash.beta[0];
    dash_fp += (dash.pval[0] < kAlpha);
  }
  std::printf("%-14s %12.4f %14.3f   <- biased\n", "naive pooled",
              naive_beta / kReplicates,
              static_cast<double>(naive_fp) / kReplicates);
  std::printf("%-14s %12.4f %14.3f\n", "meta-analysis",
              meta_beta / kReplicates,
              static_cast<double>(meta_fp) / kReplicates);
  std::printf("%-14s %12.4f %14.3f\n", "DASH+center",
              dash_beta / kReplicates,
              static_cast<double>(dash_fp) / kReplicates);
}

int RealMain() {
  std::printf("=== E5 (Table 2): DASH vs the status-quo alternatives ===\n");
  std::printf("%d Monte-Carlo replicates per cell\n\n", kReplicates);
  PowerExperiment();
  BiasExperiment();
  std::printf(
      "\nexpected shape: (a) dash power >= meta power, gap widest at\n"
      "moderate effects; (b) naive pooled beta far from 0 with ~100%%\n"
      "type-I error, meta and DASH near 0 with ~5%% type-I error.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
