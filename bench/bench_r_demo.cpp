// E1 / Table 1 — the paper's §4 R demo, reproduced end to end.
//
// Workload: parties of (1000, 2000, 1500) samples, M = 10000 Gaussian
// transient covariates, K = 3 Gaussian permanent covariates, seed 0.
// The paper's script checks `all.equal(df[1:M0,], df2)` — the secure
// multi-party results equal the pooled per-column lm() fit. This bench
// prints the first M0 = 5 rows from both analyses, the full-M maximum
// deviations between the secure scan and the pooled plaintext scan, and
// the equivalent of the all.equal verdict.

#include <cmath>
#include <cstdio>

#include "core/association_scan.h"
#include "core/secure_scan.h"
#include "data/workloads.h"
#include "stats/ols.h"
#include "util/stopwatch.h"

namespace {

int RealMain() {
  using namespace dash;

  std::printf("=== E1 (Table 1): the paper's R demo, at full size ===\n");
  std::printf("N = (1000, 2000, 1500), M = 10000, K = 3, seed 0\n\n");

  Stopwatch gen;
  const ScanWorkload w = MakeRDemoWorkload();
  std::printf("data generated in %.2fs\n", gen.ElapsedSeconds());

  // Secure multi-party scan (exact public aggregation, like the demo's
  // plain sums, plus the masked SMC mode for the secure variant).
  SecureScanOptions public_opts;
  public_opts.aggregation = AggregationMode::kPublicShare;
  Stopwatch t_public;
  const SecureScanOutput dash_public =
      SecureAssociationScan(public_opts).Run(w.parties).value();
  const double public_seconds = t_public.ElapsedSeconds();

  SecureScanOptions masked_opts;
  masked_opts.aggregation = AggregationMode::kMasked;
  const SecureScanOutput dash_masked =
      SecureAssociationScan(masked_opts).Run(w.parties).value();

  // Primary analysis: pooled per-column OLS on the first M0 columns.
  const PooledData pooled = PoolParties(w.parties).value();
  constexpr int64_t kM0 = 5;
  std::printf("\nfirst %lld columns, DASH vs pooled lm(y ~ X[,m] + C - 1):\n",
              static_cast<long long>(kM0));
  std::printf("%-3s %12s %12s %12s %12s | %12s %12s\n", "m", "beta(dash)",
              "sigma(dash)", "tstat", "pval", "beta(lm)", "pval(lm)");
  double worst_m0 = 0.0;
  for (int64_t m = 0; m < kM0; ++m) {
    const size_t i = static_cast<size_t>(m);
    const SingleCoefficientFit lm =
        FitTransientCoefficient(pooled.x.Col(m), pooled.c, pooled.y).value();
    std::printf("%-3lld %12.6f %12.6f %12.4f %12.4e | %12.6f %12.4e\n",
                static_cast<long long>(m), dash_public.result.beta[i],
                dash_public.result.se[i], dash_public.result.tstat[i],
                dash_public.result.pval[i], lm.beta, lm.p_value);
    worst_m0 = std::max(worst_m0,
                        std::fabs(dash_public.result.beta[i] - lm.beta));
    worst_m0 = std::max(
        worst_m0, std::fabs(dash_public.result.se[i] - lm.standard_error));
    worst_m0 =
        std::max(worst_m0, std::fabs(dash_public.result.pval[i] - lm.p_value));
  }

  // Full-M agreement against the pooled plaintext scan.
  const ScanResult plain =
      AssociationScan(pooled.x, pooled.y, pooled.c).value();
  std::printf("\nfull-M agreement with the pooled plaintext scan:\n");
  std::printf("  public aggregation : max|Δbeta| = %.3e  max|Δpval| = %.3e\n",
              MaxAbsDiff(dash_public.result.beta, plain.beta),
              MaxAbsDiff(dash_public.result.pval, plain.pval));
  std::printf("  masked SMC (40 fb) : max|Δbeta| = %.3e  max|Δpval| = %.3e\n",
              MaxAbsDiff(dash_masked.result.beta, plain.beta),
              MaxAbsDiff(dash_masked.result.pval, plain.pval));

  const bool all_equal =
      worst_m0 < 1e-8 && MaxAbsDiff(dash_public.result.beta, plain.beta) < 1e-9;
  std::printf("\nall.equal(df[1:M0,], df2)  ->  %s\n",
              all_equal ? "TRUE" : "FALSE");
  std::printf("degrees of freedom D = %lld (paper: N1+N2+N3-K-1 = 4496)\n",
              static_cast<long long>(dash_public.result.dof));
  std::printf("secure scan wall time: %.2fs; traffic %lld bytes\n",
              public_seconds,
              static_cast<long long>(dash_masked.metrics.total_bytes));
  return all_equal ? 0 : 1;
}

}  // namespace

int main() { return RealMain(); }
