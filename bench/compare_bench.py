#!/usr/bin/env python3
"""Compare two machine-readable bench JSON files (bench/bench_json.h schema).

Usage:
  compare_bench.py CANDIDATE.json                      # pretty-print one file
  compare_bench.py BASELINE.json CANDIDATE.json        # compare, ratio table
  compare_bench.py BASELINE.json CANDIDATE.json --max-regression 1.10
  compare_bench.py BASELINE.json CANDIDATE.json --gate-speedup

Entries are matched by name. In compare mode the exit code is non-zero
when any matched entry got slower than baseline by more than
--max-regression (wall-time ratio candidate/baseline), or when matched
entries disagree on their result checksum at equal shape — bit-identity
is part of the contract, not just speed.

--gate-speedup compares MACHINE-NORMALIZED speedups instead of raw wall
times: each entry's time is divided by its scalar reference in the SAME
file (`blocked/gaussian` vs `scalar/gaussian`, `sparse_packed/…` vs
`sparse_scalar/…`), so the checked-in baseline from one machine gates CI
runs on another. Only the `packed*` popcount kernels are GATED — their
speedup is compute-bound and holds across problem sizes (~7.5x at both
the 100k x 10k reference and the 20k x 2k CI smoke). The dense and
repack entries are printed for information but never fail this gate:
they are memory-geometry-bound, and their speedup over scalar legit-
imately swings with the working-set size (blocked/gaussian measures
1.4x at 8 GB and 0.9x at 320 MB on the same machine). The out-of-core
`stream_*` entries (bench --stream: the checkpointed panel loop fed
from a DASHPACK file) are a third family: I/O-BOUND. Their wall time
is dominated by the page cache, the filesystem, and whatever else the
runner is doing to the disk, so they are info rows under BOTH gates —
never a wall-time regression, never a speedup regression. Their
checksums ARE still enforced: streamed results must stay bit-identical
to the in-memory kernels whatever the disk does. A gated kernel
fails when its candidate speedup falls below baseline_speedup /
max-regression. Checksums are still compared whenever shapes match.

ISA-specific entries (`avx2/…`, `avx512/…`, `packed_avx512/…`) exist
only when the producing machine supports that ISA; the file's top-level
`isas` list records what it could run. An entry missing from the
candidate because the runner lacks the ISA is SKIPPED with a note, not
failed — a portable-only runner must stay green.
"""

import argparse
import json
import sys


def load(path):
    """Returns ({name: entry}, isas or None)."""
    with open(path) as f:
        doc = json.load(f)
    return {e["name"]: e for e in doc.get("entries", [])}, doc.get("isas")


def required_isa(name):
    """The ISA an entry needs on the running machine, or None."""
    variant = name.split("/", 1)[0]
    if "avx512" in variant:
        return "avx512"
    if "avx2" in variant:
        return "avx2"
    return None


def absence_reason(name, isas):
    """Why `name` may legitimately be missing from a file, or None."""
    isa = required_isa(name)
    if isa is None:
        return None
    if isas is None:
        # Pre-`isas` files (older bench runs) can't say what the machine
        # supported; be explicit that this is a skip, not a silent pass.
        return ("requires %s, but the file has no `isas` field "
                "(older bench run) — skipped, not failed" % isa)
    if isa in isas:
        return None
    return "requires %s, absent on that machine" % isa


def fmt_ns(ns):
    if ns >= 1e9:
        return "%.3f s" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2f ms" % (ns / 1e6)
    return "%.1f us" % (ns / 1e3)


def show(entries):
    print("%-28s %10s %10s  %s" % ("name", "time", "GB/s", "checksum"))
    for name in sorted(entries):
        e = entries[name]
        print("%-28s %10s %10.2f  %s"
              % (name, fmt_ns(e["ns"]), e["gb_per_s"], e["checksum"]))


def same_shape(a, b):
    return all(a.get(key) == b.get(key) for key in ("n", "m", "k", "p"))


def scalar_reference(name):
    """Name of the scalar entry an optimized kernel is normalized by.

    `blocked/gaussian` -> `scalar/gaussian`; `sparse_blocked/genotype`
    -> `sparse_scalar/genotype`. Returns None for the references
    themselves (nothing to gate) and for unrecognized layouts.
    """
    if "/" not in name:
        return None
    variant, dataset = name.split("/", 1)
    if variant in ("scalar", "sparse_scalar"):
        return None
    prefix = "sparse_scalar" if variant.startswith("sparse_") else "scalar"
    return "%s/%s" % (prefix, dataset)


def shape_stable(name):
    """True for entries whose speedup-over-scalar is gateable across
    problem sizes: the `packed*` popcount kernels, which are
    compute-bound per nonzero. Dense/repack kernels are memory-bound
    and their normalized speedup shifts with working-set size."""
    return name.split("/", 1)[0].startswith("packed")


def io_bound(name):
    """True for the out-of-core `stream_*` entries (stream_file,
    stream_mmap, stream_resume, ...). Their wall time measures the
    disk and the page cache, not the kernels, so neither the raw
    wall-time gate nor --gate-speedup may fail on them — info rows
    only. Checksums are still enforced elsewhere."""
    return name.split("/", 1)[0].startswith("stream")


def gate_speedups(base, cand, names, max_regression, cand_isas):
    """Machine-normalized regression gate; returns a list of failures."""
    failures = []
    print("%-28s %10s %10s  %s"
          % ("name", "base-spdup", "cand-spdup", "verdict"))
    gated = 0
    for name in sorted(set(base) - set(cand)):
        reason = absence_reason(name, cand_isas)
        if reason is not None:
            print("%-28s (skipped: %s)" % (name, reason))
    for name in names:
        ref = scalar_reference(name)
        if ref is None:
            continue
        if ref not in base or ref not in cand:
            print("%-28s (no %s reference; skipped)" % (name, ref))
            continue
        base_speedup = base[ref]["ns"] / base[name]["ns"]
        cand_speedup = cand[ref]["ns"] / cand[name]["ns"]
        if io_bound(name):
            print("%-28s %9.2fx %9.2fx  info (I/O-bound; not gated)"
                  % (name, base_speedup, cand_speedup))
            continue
        if not shape_stable(name):
            print("%-28s %9.2fx %9.2fx  info (memory-bound; not gated)"
                  % (name, base_speedup, cand_speedup))
            continue
        floor = base_speedup / max_regression
        ok = cand_speedup >= floor
        gated += 1
        print("%-28s %9.2fx %9.2fx  %s"
              % (name, base_speedup, cand_speedup,
                 "ok" if ok else "REGRESSION (floor %.2fx)" % floor))
        if not ok:
            failures.append(
                "%s: speedup over %s fell to %.2fx (baseline %.2fx, "
                "floor %.2fx)" % (name, ref, cand_speedup, base_speedup,
                                  floor))
    if gated == 0:
        failures.append("gate matched no optimized-kernel entries")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument("--max-regression", type=float, default=1.10,
                        help="fail when candidate/baseline wall time exceeds "
                             "this ratio (default 1.10); under "
                             "--gate-speedup, the allowed shrink factor of "
                             "the normalized speedup instead")
    parser.add_argument("--gate-speedup", action="store_true",
                        help="gate on machine-normalized speedups vs the "
                             "in-file scalar reference instead of raw wall "
                             "times (for cross-machine baselines)")
    args = parser.parse_args()

    if args.candidate is None:
        show(load(args.baseline)[0])
        return 0

    base, _ = load(args.baseline)
    cand, cand_isas = load(args.candidate)
    names = sorted(set(base) & set(cand))
    if not names:
        print("no common entries between %s and %s"
              % (args.baseline, args.candidate), file=sys.stderr)
        return 2

    failures = []
    print("%-28s %10s %10s %8s  %s"
          % ("name", "baseline", "candidate", "ratio", "checksum"))
    for name in names:
        b, c = base[name], cand[name]
        ratio = c["ns"] / b["ns"] if b["ns"] > 0 else float("inf")
        if same_shape(b, c):
            check = "ok" if b["checksum"] == c["checksum"] else "MISMATCH"
            if check == "MISMATCH":
                failures.append("%s: checksum drift (%s -> %s)"
                                % (name, b["checksum"], c["checksum"]))
        else:
            check = "shape-differs"
        flag = ""
        if not args.gate_speedup and ratio > args.max_regression:
            if io_bound(name):
                flag = "  (slower, but I/O-bound; info only)"
            else:
                flag = "  <-- regression"
                failures.append("%s: %.2fx slower than baseline"
                                % (name, ratio))
        print("%-28s %10s %10s %7.2fx  %s%s"
              % (name, fmt_ns(b["ns"]), fmt_ns(c["ns"]), ratio, check, flag))

    if args.gate_speedup:
        print()
        failures += gate_speedups(base, cand, names, args.max_regression,
                                  cand_isas)

    for name in sorted(set(base) ^ set(cand)):
        which = "baseline" if name in base else "candidate"
        reason = absence_reason(name, cand_isas) if which == "baseline" \
            else None
        note = "; %s" % reason if reason else ""
        print("%-28s (only in %s%s)" % (name, which, note))

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("\nOK: no regressions beyond %.2fx, checksums stable"
          % args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
