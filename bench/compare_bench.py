#!/usr/bin/env python3
"""Compare two machine-readable bench JSON files (bench/bench_json.h schema).

Usage:
  compare_bench.py CANDIDATE.json                      # pretty-print one file
  compare_bench.py BASELINE.json CANDIDATE.json        # compare, ratio table
  compare_bench.py BASELINE.json CANDIDATE.json --max-regression 1.10

Entries are matched by name. In compare mode the exit code is non-zero
when any matched entry got slower than baseline by more than
--max-regression (wall-time ratio candidate/baseline), or when matched
entries disagree on their result checksum at equal shape — bit-identity
is part of the contract, not just speed.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {e["name"]: e for e in doc.get("entries", [])}


def fmt_ns(ns):
    if ns >= 1e9:
        return "%.3f s" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2f ms" % (ns / 1e6)
    return "%.1f us" % (ns / 1e3)


def show(entries):
    print("%-28s %10s %10s  %s" % ("name", "time", "GB/s", "checksum"))
    for name in sorted(entries):
        e = entries[name]
        print("%-28s %10s %10.2f  %s"
              % (name, fmt_ns(e["ns"]), e["gb_per_s"], e["checksum"]))


def same_shape(a, b):
    return all(a.get(key) == b.get(key) for key in ("n", "m", "k", "p"))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument("--max-regression", type=float, default=1.10,
                        help="fail when candidate/baseline wall time exceeds "
                             "this ratio (default 1.10)")
    args = parser.parse_args()

    if args.candidate is None:
        show(load(args.baseline))
        return 0

    base = load(args.baseline)
    cand = load(args.candidate)
    names = sorted(set(base) & set(cand))
    if not names:
        print("no common entries between %s and %s"
              % (args.baseline, args.candidate), file=sys.stderr)
        return 2

    failures = []
    print("%-28s %10s %10s %8s  %s"
          % ("name", "baseline", "candidate", "ratio", "checksum"))
    for name in names:
        b, c = base[name], cand[name]
        ratio = c["ns"] / b["ns"] if b["ns"] > 0 else float("inf")
        if same_shape(b, c):
            check = "ok" if b["checksum"] == c["checksum"] else "MISMATCH"
            if check == "MISMATCH":
                failures.append("%s: checksum drift (%s -> %s)"
                                % (name, b["checksum"], c["checksum"]))
        else:
            check = "shape-differs"
        flag = ""
        if ratio > args.max_regression:
            flag = "  <-- regression"
            failures.append("%s: %.2fx slower than baseline" % (name, ratio))
        print("%-28s %10s %10s %7.2fx  %s%s"
              % (name, fmt_ns(b["ns"]), fmt_ns(c["ns"]), ratio, check, flag))

    for name in sorted(set(base) ^ set(cand)):
        which = "baseline" if name in base else "candidate"
        print("%-28s (only in %s)" % (name, which))

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("\nOK: no regressions beyond %.2fx, checksums stable"
          % args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
