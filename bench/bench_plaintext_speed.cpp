// E2 / Figure 1 — "at plaintext speed": secure-vs-plaintext runtime
// ratio as N and M grow, per aggregation mode — plus the scan-kernel
// micro-bench behind it (--kernel-bench).
//
// The paper's claim is that DASH's secure scan costs essentially the
// same as the plaintext distributed scan: per-party compute is identical
// and the SMC layer touches only O(M) aggregates, independent of N. The
// E2 series should show the ratio tending to ~1 as N grows.
//
// --kernel-bench times the sufficient-statistics kernels themselves:
// the original scalar kernel (ComputeLocalStatsScalar), the portable
// blocked kernel pinned to the portable ISA (`blocked/*` — the
// machine-normalization denominator), the auto-dispatched zero-copy
// arena form (`flat/*`), every SIMD dense path this CPU can run
// (`avx2/*`, `avx512/*`), and the 2-bit packed-genotype popcount
// kernels in pre-packed steady state (`packed/*`,
// `packed_<isa>/genotype`) — plus the sparse-storage kernels, where
// `sparse_packed/genotype` is ComputeLocalStatsSparse's dosage repack
// path. Every variant's result checksum is asserted equal to the
// scalar kernel's — the bench doubles as a bit-identity smoke test.
// With --json PATH the numbers are written in the bench_json.h schema
// for bench/compare_bench.py; the JSON carries an `isas` list so the
// gate can skip (not fail) ISA entries a smaller runner cannot produce.
//
// --stream (with --kernel-bench) adds the out-of-core path: the
// genotype draw is written to a temporary DASHPACK study and streamed
// back through the checkpointed panel loop (core/streaming_stats.h) in
// both read modes — `stream_file/genotype` (chunked pread) and
// `stream_mmap/genotype` (one mmap). Both checksums are asserted equal
// to the scalar kernel's, extending the bit-identity smoke across the
// disk round trip. compare_bench.py treats `stream_*` as I/O-bound
// info rows: reported, checksum-compared, never speed-gated.
//
// Usage:
//   bench_plaintext_speed                      # E2 ratio series
//   bench_plaintext_speed --kernel-bench [--stream]
//     [--n 100000] [--m 10000] [--k 10] [--reps 1] [--json BENCH_scan.json]

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/association_scan.h"
#include "core/kernels/stats_kernels.h"
#include "core/secure_scan.h"
#include "core/streaming_stats.h"
#include "core/suff_stats.h"
#include "data/genotype_generator.h"
#include "data/panel_stream.h"
#include "data/workloads.h"
#include "linalg/packed_matrix.h"
#include "util/stopwatch.h"

namespace {

using namespace dash;

// ---------------------------------------------------------------- E2 --

struct Row {
  int64_t n;
  int64_t m;
  double plain_seconds;
  double ratio[4];
};

double TimePlain(const ScanWorkload& w) {
  const PooledData pooled = PoolParties(w.parties).value();
  Stopwatch timer;
  const auto r = AssociationScan(pooled.x, pooled.y, pooled.c);
  DASH_CHECK(r.ok());
  return timer.ElapsedSeconds();
}

double TimeSecure(const ScanWorkload& w, AggregationMode mode) {
  SecureScanOptions opts;
  opts.aggregation = mode;
  opts.frac_bits = 32;  // leaves ring headroom for the largest N here
  const SecureAssociationScan scan(opts);
  Stopwatch timer;
  const auto r = scan.Run(w.parties);
  DASH_CHECK(r.ok()) << r.status();
  return timer.ElapsedSeconds();
}

ScanWorkload MakeSized(int64_t n_total, int64_t m, uint64_t seed) {
  RDemoOptions opts;
  opts.n1 = n_total * 2 / 9;
  opts.n2 = n_total * 4 / 9;
  opts.n3 = n_total - opts.n1 - opts.n2;
  opts.num_variants = m;
  opts.num_covariates = 4;
  opts.seed = seed;
  return MakeRDemoWorkload(opts);
}

void PrintRows(const std::vector<Row>& rows) {
  std::printf("%-8s %-8s %12s | %9s %9s %9s %9s\n", "N", "M", "plain(s)",
              "public", "additive", "masked", "shamir");
  for (const Row& r : rows) {
    std::printf("%-8lld %-8lld %12.4f | %9.3f %9.3f %9.3f %9.3f\n",
                static_cast<long long>(r.n), static_cast<long long>(r.m),
                r.plain_seconds, r.ratio[0], r.ratio[1], r.ratio[2],
                r.ratio[3]);
  }
}

Row Measure(int64_t n, int64_t m, uint64_t seed) {
  const ScanWorkload w = MakeSized(n, m, seed);
  Row row;
  row.n = n;
  row.m = m;
  row.plain_seconds = TimePlain(w);
  const AggregationMode modes[4] = {
      AggregationMode::kPublicShare, AggregationMode::kAdditive,
      AggregationMode::kMasked, AggregationMode::kShamir};
  for (int i = 0; i < 4; ++i) {
    row.ratio[i] = TimeSecure(w, modes[i]) / row.plain_seconds;
  }
  return row;
}

int RunE2() {
  std::printf("=== E2 (Figure 1): secure/plaintext runtime ratio ===\n");
  std::printf("P = 3 parties, K = 4; ratio = secure wall / plaintext wall\n\n");

  std::printf("-- sweep N (M = 2000) --\n");
  std::vector<Row> by_n;
  for (const int64_t n : {2000, 4000, 8000, 16000}) {
    by_n.push_back(Measure(n, 2000, 11 + static_cast<uint64_t>(n)));
  }
  PrintRows(by_n);

  std::printf("\n-- sweep M (N = 4500) --\n");
  std::vector<Row> by_m;
  for (const int64_t m : {500, 2000, 8000}) {
    by_m.push_back(Measure(4500, m, 29 + static_cast<uint64_t>(m)));
  }
  PrintRows(by_m);

  std::printf(
      "\nexpected shape: ratios -> ~1 as N grows (per-party compute is the\n"
      "same kernel as plaintext; SMC cost is O(M), independent of N).\n");
  return 0;
}

// ------------------------------------------------------ kernel bench --

struct KernelArgs {
  int64_t n = 100000;
  int64_t m = 10000;
  int64_t k = 10;
  int reps = 1;
  bool stream = false;
  std::string json_path;
};

// Best-of-reps wall time for one kernel invocation; the result checksum
// of the last run is returned through *checksum.
template <typename Fn>
double TimeBest(int reps, uint64_t* checksum, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    *checksum = fn();
    const double s = timer.ElapsedSeconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

void AddEntry(std::vector<dash_bench::BenchEntry>* entries,
              const KernelArgs& a, const std::string& name, double seconds,
              uint64_t checksum) {
  dash_bench::BenchEntry e;
  e.name = name;
  e.n = a.n;
  e.m = a.m;
  e.k = a.k;
  e.ns = seconds * 1e9;
  // Effective streaming rate over the N x M design sweep.
  e.gb_per_s = static_cast<double>(a.n) * static_cast<double>(a.m) * 8.0 /
               (seconds * 1e9);
  e.checksum = checksum;
  entries->push_back(e);
  std::printf("  %-24s %10.3f s  %8.2f GB/s  checksum %016" PRIx64 "\n",
              name.c_str(), seconds, e.gb_per_s, checksum);
}

// Pins the kernel dispatch table to one ISA for the enclosing scope.
struct ScopedIsa {
  explicit ScopedIsa(kernels::StatsIsa isa) {
    kernels::ForceStatsIsaForTesting(isa);
  }
  ~ScopedIsa() { kernels::ResetStatsIsaForTesting(); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;
};

// Times scalar vs portable-blocked vs auto-flat vs each SIMD dense path
// this CPU can run, and asserts all produce the identical wire image.
// Returns the scalar reference checksum.
uint64_t BenchDense(const KernelArgs& a, const std::string& dataset,
                    const Matrix& x, const Vector& y, const Matrix& q,
                    std::vector<dash_bench::BenchEntry>* entries) {
  std::printf("-- %s (N=%lld M=%lld K=%lld) --\n", dataset.c_str(),
              static_cast<long long>(a.n), static_cast<long long>(a.m),
              static_cast<long long>(a.k));
  uint64_t scalar_sum = 0;
  uint64_t blocked_sum = 0;
  uint64_t flat_sum = 0;
  const double scalar_s = TimeBest(a.reps, &scalar_sum, [&] {
    return StatsChecksum(ComputeLocalStatsScalar(x, y, q));
  });
  AddEntry(entries, a, "scalar/" + dataset, scalar_s, scalar_sum);
  // `blocked/*` is the pre-SIMD portable blocked kernel, pinned to the
  // portable table and the dense (no-repack) path: the denominator the
  // packed kernels' >=5x claim is measured against.
  double blocked_s = 0.0;
  {
    ScopedIsa pin(kernels::StatsIsa::kPortable);
    blocked_s = TimeBest(a.reps, &blocked_sum, [&] {
      return StatsChecksum(ComputeLocalStatsDense(x, y, q));
    });
  }
  AddEntry(entries, a, "blocked/" + dataset, blocked_s, blocked_sum);
  const double flat_s = TimeBest(a.reps, &flat_sum, [&] {
    return WireChecksum(ComputeLocalStatsFlat(x, y, q));
  });
  AddEntry(entries, a, "flat/" + dataset, flat_s, flat_sum);
  DASH_CHECK(scalar_sum == blocked_sum)
      << "blocked kernel diverged from scalar on " << dataset;
  DASH_CHECK(scalar_sum == flat_sum)
      << "flat kernel diverged from scalar on " << dataset;
  for (const kernels::StatsIsa isa : kernels::AvailableStatsIsas()) {
    if (isa == kernels::StatsIsa::kPortable) continue;
    ScopedIsa pin(isa);
    uint64_t isa_sum = 0;
    const double isa_s = TimeBest(a.reps, &isa_sum, [&] {
      return StatsChecksum(ComputeLocalStatsDense(x, y, q));
    });
    AddEntry(entries, a,
             std::string(kernels::StatsIsaName(isa)) + "/" + dataset, isa_s,
             isa_sum);
    DASH_CHECK(scalar_sum == isa_sum)
        << kernels::StatsIsaName(isa) << " dense kernel diverged from "
        << "scalar on " << dataset;
  }
  std::printf("  speedup blocked/scalar: %.2fx, flat/scalar: %.2fx\n\n",
              scalar_s / blocked_s, scalar_s / flat_s);
  return scalar_sum;
}

// Times the packed-genotype popcount kernel in pre-packed steady state
// (the resident scan service packs once per cohort in Phase 1 and
// reuses the packed matrix across scans) on every ISA this CPU can
// run, plus the auto-dispatched default.
void BenchPacked(const KernelArgs& a, const Matrix& x_geno, const Vector& y,
                 const Matrix& q, uint64_t scalar_sum,
                 std::vector<dash_bench::BenchEntry>* entries) {
  const PackedGenotypeMatrix packed = PackedGenotypeMatrix::FromDense(x_geno);
  std::printf("-- genotype, 2-bit packed storage (density %.2f) --\n",
              packed.Density());
  uint64_t packed_sum = 0;
  const double packed_s = TimeBest(a.reps, &packed_sum, [&] {
    return StatsChecksum(ComputeLocalStatsPacked(packed, y, q));
  });
  AddEntry(entries, a, "packed/genotype", packed_s, packed_sum);
  DASH_CHECK(scalar_sum == packed_sum)
      << "packed kernel diverged from scalar";
  for (const kernels::StatsIsa isa : kernels::AvailableStatsIsas()) {
    ScopedIsa pin(isa);
    uint64_t isa_sum = 0;
    const double isa_s = TimeBest(a.reps, &isa_sum, [&] {
      return StatsChecksum(ComputeLocalStatsPacked(packed, y, q));
    });
    AddEntry(entries, a,
             std::string("packed_") + kernels::StatsIsaName(isa) +
                 "/genotype",
             isa_s, isa_sum);
    DASH_CHECK(scalar_sum == isa_sum)
        << "packed " << kernels::StatsIsaName(isa)
        << " kernel diverged from scalar";
  }
  std::printf("\n");
}

// Round-trips the genotype draw through a temporary DASHPACK study and
// times the out-of-core panel loop in both read modes. The interesting
// assertion is not the wall time (I/O-bound; compare_bench.py reports
// `stream_*` rows as info only) but the checksum: streamed-from-disk
// must equal the in-memory scalar kernel bit for bit.
void BenchStream(const KernelArgs& a, const Matrix& x_geno, const Vector& y,
                 const Matrix& q, uint64_t scalar_sum,
                 std::vector<dash_bench::BenchEntry>* entries) {
  const PackedGenotypeMatrix packed = PackedGenotypeMatrix::FromDense(x_geno);
  const std::string path =
      "/tmp/dash_bench_stream_" + std::to_string(getpid()) + ".dpk";
  const Status written = WritePackedStudy(path, packed, y, q, /*tag=*/0xbe9c5);
  DASH_CHECK(written.ok()) << written;
  std::printf("-- genotype, out-of-core DASHPACK stream --\n");
  const struct {
    const char* name;
    StudyReadMode mode;
  } kModes[] = {{"stream_file", StudyReadMode::kChunked},
                {"stream_mmap", StudyReadMode::kMmap}};
  for (const auto& m : kModes) {
    uint64_t stream_sum = 0;
    // Open inside the timed region: the reader's header/factor load is
    // part of what an out-of-core scan pays per study.
    const double stream_s = TimeBest(a.reps, &stream_sum, [&] {
      auto reader = PackedStudyReader::Open(path, m.mode);
      DASH_CHECK(reader.ok()) << reader.status();
      const auto r = ComputeLocalStatsStreamed(reader.value().get(), y, q);
      DASH_CHECK(r.ok()) << r.status();
      return WireChecksum(r.value().flat);
    });
    AddEntry(entries, a, std::string(m.name) + "/genotype", stream_s,
             stream_sum);
    DASH_CHECK(scalar_sum == stream_sum)
        << m.name << " streamed result diverged from scalar";
  }
  std::remove(path.c_str());
  std::printf("\n");
}

int RunKernelBench(const KernelArgs& a) {
#ifndef __OPTIMIZE__
  std::printf(
      "WARNING: unoptimized build — kernel numbers are meaningless; "
      "configure with -DDASH_RELEASE_FLAGS=\"-O3 -DNDEBUG\" and "
      "-DCMAKE_BUILD_TYPE=Release.\n\n");
#endif
  std::printf("=== scan-kernel bench: scalar vs blocked/zero-copy ===\n\n");
  std::vector<dash_bench::BenchEntry> entries;
  Rng rng(0xbe9c5);
  const Vector y = GaussianVector(a.n, &rng);
  const Matrix q = GaussianMatrix(a.n, a.k, &rng);

  {
    const Matrix x = GaussianMatrix(a.n, a.m, &rng);
    BenchDense(a, "gaussian", x, y, q, &entries);
  }

  GenotypeOptions gopts;
  gopts.num_samples = a.n;
  gopts.num_variants = a.m;
  gopts.seed = 0x9e107;
  const Matrix x_geno = GenerateGenotypes(gopts);
  const uint64_t geno_scalar_sum =
      BenchDense(a, "genotype", x_geno, y, q, &entries);

  BenchPacked(a, x_geno, y, q, geno_scalar_sum, &entries);

  // Sparse-storage kernels on the same genotype draw. The optimized
  // path (ComputeLocalStatsSparse) repacks dosage columns into the
  // 2-bit layout and runs the popcount kernel.
  const SparseColumnMatrix x_sparse = SparseColumnMatrix::FromDense(x_geno);
  std::printf("-- genotype, sparse storage (density %.2f) --\n",
              x_sparse.Density());
  uint64_t sp_scalar_sum = 0;
  uint64_t sp_packed_sum = 0;
  const double sp_scalar_s = TimeBest(a.reps, &sp_scalar_sum, [&] {
    return StatsChecksum(ComputeLocalStatsSparseScalar(x_sparse, y, q));
  });
  AddEntry(&entries, a, "sparse_scalar/genotype", sp_scalar_s, sp_scalar_sum);
  const double sp_packed_s = TimeBest(a.reps, &sp_packed_sum, [&] {
    return StatsChecksum(ComputeLocalStatsSparse(x_sparse, y, q));
  });
  AddEntry(&entries, a, "sparse_packed/genotype", sp_packed_s,
           sp_packed_sum);
  DASH_CHECK(sp_scalar_sum == sp_packed_sum)
      << "sparse packed kernel diverged from sparse scalar";
  DASH_CHECK(sp_scalar_sum == geno_scalar_sum)
      << "sparse scalar diverged from dense scalar on the same data";
  std::printf("  speedup sparse packed/scalar: %.2fx\n\n",
              sp_scalar_s / sp_packed_s);

  if (a.stream) {
    BenchStream(a, x_geno, y, q, geno_scalar_sum, &entries);
  }

  if (!a.json_path.empty()) {
    std::vector<std::string> isa_names;
    for (const kernels::StatsIsa isa : kernels::AvailableStatsIsas()) {
      isa_names.emplace_back(kernels::StatsIsaName(isa));
    }
    if (!dash_bench::WriteBenchJson(a.json_path, "scan_kernels", entries,
                                    isa_names)) {
      std::fprintf(stderr, "failed to write %s\n", a.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", a.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool kernel_bench = false;
  KernelArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_i64 = [&](int64_t* out) {
      DASH_CHECK(i + 1 < argc) << arg << " needs a value";
      *out = std::strtoll(argv[++i], nullptr, 10);
    };
    if (arg == "--kernel-bench") {
      kernel_bench = true;
    } else if (arg == "--stream") {
      args.stream = true;
    } else if (arg == "--n") {
      next_i64(&args.n);
    } else if (arg == "--m") {
      next_i64(&args.m);
    } else if (arg == "--k") {
      next_i64(&args.k);
    } else if (arg == "--reps") {
      int64_t r = 1;
      next_i64(&r);
      args.reps = static_cast<int>(r);
    } else if (arg == "--json") {
      DASH_CHECK(i + 1 < argc) << "--json needs a path";
      args.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  return kernel_bench ? RunKernelBench(args) : RunE2();
}
