// E2 / Figure 1 — "at plaintext speed": secure-vs-plaintext runtime
// ratio as N and M grow, per aggregation mode.
//
// The paper's claim is that DASH's secure scan costs essentially the
// same as the plaintext distributed scan: per-party compute is identical
// and the SMC layer touches only O(M) aggregates, independent of N. The
// series below should show the ratio tending to ~1 as N grows (compute
// dominates) for every mode.

#include <cstdio>
#include <vector>

#include "core/association_scan.h"
#include "core/secure_scan.h"
#include "data/workloads.h"
#include "util/stopwatch.h"

namespace {

using namespace dash;

struct Row {
  int64_t n;
  int64_t m;
  double plain_seconds;
  double ratio[4];
};

double TimePlain(const ScanWorkload& w) {
  const PooledData pooled = PoolParties(w.parties).value();
  Stopwatch timer;
  const auto r = AssociationScan(pooled.x, pooled.y, pooled.c);
  DASH_CHECK(r.ok());
  return timer.ElapsedSeconds();
}

double TimeSecure(const ScanWorkload& w, AggregationMode mode) {
  SecureScanOptions opts;
  opts.aggregation = mode;
  opts.frac_bits = 32;  // leaves ring headroom for the largest N here
  const SecureAssociationScan scan(opts);
  Stopwatch timer;
  const auto r = scan.Run(w.parties);
  DASH_CHECK(r.ok()) << r.status();
  return timer.ElapsedSeconds();
}

ScanWorkload MakeSized(int64_t n_total, int64_t m, uint64_t seed) {
  RDemoOptions opts;
  opts.n1 = n_total * 2 / 9;
  opts.n2 = n_total * 4 / 9;
  opts.n3 = n_total - opts.n1 - opts.n2;
  opts.num_variants = m;
  opts.num_covariates = 4;
  opts.seed = seed;
  return MakeRDemoWorkload(opts);
}

void PrintRows(const std::vector<Row>& rows) {
  std::printf("%-8s %-8s %12s | %9s %9s %9s %9s\n", "N", "M", "plain(s)",
              "public", "additive", "masked", "shamir");
  for (const Row& r : rows) {
    std::printf("%-8lld %-8lld %12.4f | %9.3f %9.3f %9.3f %9.3f\n",
                static_cast<long long>(r.n), static_cast<long long>(r.m),
                r.plain_seconds, r.ratio[0], r.ratio[1], r.ratio[2],
                r.ratio[3]);
  }
}

Row Measure(int64_t n, int64_t m, uint64_t seed) {
  const ScanWorkload w = MakeSized(n, m, seed);
  Row row;
  row.n = n;
  row.m = m;
  row.plain_seconds = TimePlain(w);
  const AggregationMode modes[4] = {
      AggregationMode::kPublicShare, AggregationMode::kAdditive,
      AggregationMode::kMasked, AggregationMode::kShamir};
  for (int i = 0; i < 4; ++i) {
    row.ratio[i] = TimeSecure(w, modes[i]) / row.plain_seconds;
  }
  return row;
}

int RealMain() {
  std::printf("=== E2 (Figure 1): secure/plaintext runtime ratio ===\n");
  std::printf("P = 3 parties, K = 4; ratio = secure wall / plaintext wall\n\n");

  std::printf("-- sweep N (M = 2000) --\n");
  std::vector<Row> by_n;
  for (const int64_t n : {2000, 4000, 8000, 16000}) {
    by_n.push_back(Measure(n, 2000, 11 + static_cast<uint64_t>(n)));
  }
  PrintRows(by_n);

  std::printf("\n-- sweep M (N = 4500) --\n");
  std::vector<Row> by_m;
  for (const int64_t m : {500, 2000, 8000}) {
    by_m.push_back(Measure(4500, m, 29 + static_cast<uint64_t>(m)));
  }
  PrintRows(by_m);

  std::printf(
      "\nexpected shape: ratios -> ~1 as N grows (per-party compute is the\n"
      "same kernel as plaintext; SMC cost is O(M), independent of N).\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
