// E8 / Table 3 — cost of the secure-sum primitive by mode and party
// count (the paper's "these SMC protocols (if needed at all!) are fast
// because they require only simple secret sharing on tiny data").
//
// google-benchmark timings of one vector aggregation per (mode, P, len),
// with the exact wire bytes attached as counters.

#include <benchmark/benchmark.h>

#include <memory>

#include "mpc/secure_sum.h"
#include "net/network.h"
#include "util/random.h"

namespace {

using namespace dash;

std::vector<Vector> MakeInputs(int parties, int64_t len, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> inputs(static_cast<size_t>(parties),
                             Vector(static_cast<size_t>(len)));
  for (auto& v : inputs) {
    for (auto& x : v) x = rng.Uniform(-100.0, 100.0);
  }
  return inputs;
}

void RunMode(benchmark::State& state, AggregationMode mode) {
  const int parties = static_cast<int>(state.range(0));
  const int64_t len = state.range(1);
  Network net(parties);
  SecureSumOptions opts;
  opts.mode = mode;
  opts.frac_bits = 32;
  SecureVectorSum sum(&net, opts);
  auto setup = sum.Setup();
  DASH_CHECK(setup.ok());
  const auto inputs = ToSecretInputs(MakeInputs(parties, len, 42));

  net.metrics().Reset();
  int64_t runs = 0;
  for (auto _ : state) {
    auto r = sum.Run(inputs);
    benchmark::DoNotOptimize(r);
    DASH_CHECK(r.ok());
    ++runs;
  }
  state.SetItemsProcessed(state.iterations() * len);
  state.counters["P"] = parties;
  state.counters["len"] = static_cast<double>(len);
  state.counters["bytes_per_run"] =
      runs > 0 ? static_cast<double>(net.metrics().total_bytes()) /
                     static_cast<double>(runs)
               : 0.0;
}

void BM_SecureSumPublic(benchmark::State& state) {
  RunMode(state, AggregationMode::kPublicShare);
}
void BM_SecureSumAdditive(benchmark::State& state) {
  RunMode(state, AggregationMode::kAdditive);
}
void BM_SecureSumMasked(benchmark::State& state) {
  RunMode(state, AggregationMode::kMasked);
}
void BM_SecureSumShamir(benchmark::State& state) {
  RunMode(state, AggregationMode::kShamir);
}

#define DASH_SUM_ARGS                       \
  ->Args({3, 1000})                         \
      ->Args({3, 10000})                    \
      ->Args({8, 10000})                    \
      ->Args({16, 10000})

BENCHMARK(BM_SecureSumPublic) DASH_SUM_ARGS;
BENCHMARK(BM_SecureSumAdditive) DASH_SUM_ARGS;
BENCHMARK(BM_SecureSumMasked) DASH_SUM_ARGS;
BENCHMARK(BM_SecureSumShamir) DASH_SUM_ARGS;

// One-time masked-aggregation key agreement (the setup the steady-state
// rounds amortize away).
void BM_MaskedKeyAgreement(benchmark::State& state) {
  const int parties = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Network net(parties);
    SecureSumOptions opts;
    opts.mode = AggregationMode::kMasked;
    SecureVectorSum sum(&net, opts);
    auto r = sum.Setup();
    DASH_CHECK(r.ok());
    benchmark::DoNotOptimize(net);
  }
  state.counters["P"] = parties;
}
BENCHMARK(BM_MaskedKeyAgreement)->Arg(3)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
