// E3 / Figure 2 — inter-party communication is O(M) and independent of N.
//
// The paper: "securely determine beta-hat and sigma-hat ... while
// communicating only O(M) bits inter-party. Note that O(M) is best
// possible since all parties must receive the results."
//
// Series 1 sweeps N at fixed M: bytes must be flat.
// Series 2 sweeps M at fixed N: bytes must grow linearly, and we report
// bytes/M against the information-theoretic floor of 16 bytes/M (every
// party must receive beta and se).

#include <cstdio>
#include <vector>

#include "core/secure_scan.h"
#include "data/workloads.h"

namespace {

using namespace dash;

ScanWorkload MakeSized(int64_t n_total, int64_t m, uint64_t seed) {
  RDemoOptions opts;
  opts.n1 = n_total / 3;
  opts.n2 = n_total / 3;
  opts.n3 = n_total - 2 * (n_total / 3);
  opts.num_variants = m;
  opts.num_covariates = 4;
  opts.seed = seed;
  return MakeRDemoWorkload(opts);
}

SecureScanMetrics Metrics(const ScanWorkload& w, AggregationMode mode) {
  SecureScanOptions opts;
  opts.aggregation = mode;
  opts.frac_bits = 32;
  const auto out = SecureAssociationScan(opts).Run(w.parties);
  DASH_CHECK(out.ok()) << out.status();
  return out->metrics;
}

int RealMain() {
  std::printf("=== E3 (Figure 2): communication scaling ===\n");
  std::printf("P = 3 parties, K = 4; total bytes over all links\n\n");

  const AggregationMode modes[4] = {
      AggregationMode::kPublicShare, AggregationMode::kAdditive,
      AggregationMode::kMasked, AggregationMode::kShamir};

  std::printf("-- series 1: sweep N, M = 1000 (bytes must be flat in N) --\n");
  std::printf("%-8s | %12s %12s %12s %12s\n", "N", "public", "additive",
              "masked", "shamir");
  for (const int64_t n : {300, 3000, 30000}) {
    const ScanWorkload w = MakeSized(n, 1000, 3 + static_cast<uint64_t>(n));
    std::printf("%-8lld |", static_cast<long long>(n));
    for (const auto mode : modes) {
      std::printf(" %12lld",
                  static_cast<long long>(Metrics(w, mode).total_bytes));
    }
    std::printf("\n");
  }

  std::printf("\n-- series 2: sweep M, N = 3000 (bytes linear in M) --\n");
  std::printf("%-8s | %12s %9s | %12s %9s | %12s %9s\n", "M", "additive",
              "bytes/M", "masked", "bytes/M", "shamir", "bytes/M");
  for (const int64_t m : {250, 1000, 4000, 16000}) {
    const ScanWorkload w = MakeSized(3000, m, 7 + static_cast<uint64_t>(m));
    std::printf("%-8lld |", static_cast<long long>(m));
    for (const auto mode : {AggregationMode::kAdditive,
                            AggregationMode::kMasked,
                            AggregationMode::kShamir}) {
      const int64_t bytes = Metrics(w, mode).total_bytes;
      std::printf(" %12lld %9.1f |", static_cast<long long>(bytes),
                  static_cast<double>(bytes) / static_cast<double>(m));
    }
    std::printf("\n");
  }

  std::printf("\n-- per-link view (masked, N = 3000, M = 4000) --\n");
  const ScanWorkload w = MakeSized(3000, 4000, 99);
  const SecureScanMetrics m = Metrics(w, AggregationMode::kMasked);
  std::printf("total %lld bytes, busiest link %lld bytes, %d rounds, "
              "%lld messages\n",
              static_cast<long long>(m.total_bytes),
              static_cast<long long>(m.max_link_bytes), m.rounds,
              static_cast<long long>(m.total_messages));
  std::printf(
      "\nexpected shape: series 1 rows identical down the column; series 2\n"
      "bytes/M constant per mode (the O(M) claim), with masked cheapest.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
