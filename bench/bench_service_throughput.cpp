// Resident-service throughput: the full daemon data path — TCP mesh,
// SessionMux, JobScheduler, Phase-1 cache — driven in-process by three
// party threads, so the numbers isolate the service layer from process
// startup and the control socket.
//
// Two waves of jobs run through each party's scheduler. The COLD wave
// uses a distinct cohort per job (every job pays Phase 1); the REPEAT
// wave resubmits the same cohorts, so every job must hit the Phase-1
// cache. Reported per wave: jobs/sec (slowest party's wall clock over
// the whole wave) and the p50/p95 of per-job latency (submit ->
// terminal, queue time included). With --json PATH the numbers land in
// the bench_json.h schema for bench/compare_bench.py; the checksum is
// the FNV-1a combination of every job's result checksum, which the
// comparison uses to hold the service path bit-identical across runs.
//
//   bench_service_throughput [--jobs 12] [--concurrent 4]
//     [--variants 32] [--samples 64] [--covariates 3]
//     [--json BENCH_service.json]

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/scan_result.h"
#include "data/workloads.h"
#include "service/job.h"
#include "service/job_scheduler.h"
#include "service/phase1_cache.h"
#include "transport/cluster_config.h"
#include "transport/party_runner.h"
#include "transport/session_mux.h"
#include "transport/tcp_transport.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace {

using namespace dash;

std::vector<uint16_t> FreePorts(int count) {
  std::vector<uint16_t> ports;
  std::vector<int> fds;
  for (int i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    DASH_CHECK(fd >= 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    DASH_CHECK(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)) == 0);
    socklen_t len = sizeof(addr);
    DASH_CHECK(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                             &len) == 0);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

struct Args {
  int64_t jobs = 12;
  int64_t concurrent = 4;
  int64_t variants = 32;
  int64_t samples = 64;
  int64_t covariates = 3;
  std::string json_path;
};

// All party threads rendezvous here so a wave's clock starts together.
class Barrier {
 public:
  explicit Barrier(int count) : count_(count) {}
  void Arrive() {
    MutexLock lock(&mu_);
    const int64_t generation = generation_;
    if (++arrived_ == count_) {
      arrived_ = 0;
      ++generation_;
      cv_.NotifyAll();
    } else {
      while (generation_ == generation) cv_.Wait(&mu_);
    }
  }

 private:
  Mutex mu_{LockRank::kLeaf};
  CondVar cv_;
  const int count_;
  int arrived_ DASH_GUARDED_BY(mu_) = 0;
  int64_t generation_ DASH_GUARDED_BY(mu_) = 0;
};

// One wave as one party's scheduler saw it.
struct WaveResult {
  double seconds = 0.0;                 // first submit -> last terminal
  std::vector<double> latency_seconds;  // per job, submit -> terminal
  std::vector<uint64_t> checksums;      // per job, result identity
  int64_t cache_hits = 0;
};

JobSpec SpecFor(uint32_t job_id, const std::string& cohort, const Args& a) {
  JobSpec spec;
  spec.job_id = job_id;
  spec.cohort_key = cohort;
  spec.variants = a.variants;
  spec.samples_per_party = a.samples;
  spec.covariates = a.covariates;
  // The cohort decides the data; repeat jobs must regenerate it exactly.
  spec.data_seed = 100 + std::hash<std::string>{}(cohort) % 1000;
  return spec;
}

// Submits `specs` back-to-back and polls until every job settles.
WaveResult RunWave(JobScheduler* scheduler, const std::vector<JobSpec>& specs) {
  WaveResult wave;
  Stopwatch timer;
  for (const JobSpec& spec : specs) {
    const Status s = scheduler->Submit(spec);
    DASH_CHECK(s.ok()) << "submit " << spec.job_id << ": " << s;
  }
  for (const JobSpec& spec : specs) {
    for (;;) {
      const auto record = scheduler->Query(spec.job_id);
      DASH_CHECK(record.ok()) << record.status();
      if (record->state == JobState::kDone) {
        wave.latency_seconds.push_back(record->queue_seconds +
                                       record->run_seconds);
        wave.checksums.push_back(record->checksum);
        if (record->metrics.phase1_cache_hit) ++wave.cache_hits;
        break;
      }
      DASH_CHECK(record->state == JobState::kQueued ||
                 record->state == JobState::kRunning)
          << "job " << spec.job_id << " failed: " << record->error;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  wave.seconds = timer.ElapsedSeconds();
  return wave;
}

double Percentile(std::vector<double> values, double pct) {
  DASH_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

uint64_t CombineChecksums(const std::vector<uint64_t>& checksums) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const uint64_t c : checksums) {
    h = (h ^ c) * 1099511628211ull;
  }
  return h;
}

void AddEntry(std::vector<dash_bench::BenchEntry>* entries, const Args& a,
              const std::string& name, double seconds, double jobs_per_sec,
              uint64_t checksum) {
  dash_bench::BenchEntry e;
  // No "/" in the name: these rows are identity- and regression-tracked
  // by compare_bench.py but exempt from the kernel speedup gate.
  e.name = name;
  e.n = a.samples;
  e.m = a.variants;
  e.k = a.covariates;
  e.p = a.jobs;
  e.ns = seconds * 1e9;
  e.gb_per_s = jobs_per_sec;  // jobs/sec for throughput rows, else 0
  e.checksum = checksum;
  entries->push_back(e);
}

int RunBench(const Args& a) {
  constexpr int kParties = 3;
  ClusterConfig cluster;
  for (const uint16_t port : FreePorts(kParties)) {
    cluster.endpoints.push_back({"127.0.0.1", port});
  }

  // Wave 1 (cold): a distinct cohort per job. Wave 2 (repeat): the same
  // cohorts under fresh job ids — all Phase-1 state comes from cache.
  std::vector<JobSpec> cold;
  std::vector<JobSpec> repeat;
  for (int64_t j = 0; j < a.jobs; ++j) {
    const std::string cohort = "bench-cohort-" + std::to_string(j);
    cold.push_back(SpecFor(static_cast<uint32_t>(1 + j), cohort, a));
    repeat.push_back(SpecFor(static_cast<uint32_t>(1 + a.jobs + j), cohort, a));
  }

  Barrier barrier(kParties);
  std::vector<WaveResult> cold_waves(kParties);
  std::vector<WaveResult> repeat_waves(kParties);
  std::vector<std::thread> threads;
  for (int party = 0; party < kParties; ++party) {
    threads.emplace_back([&, party] {
      TcpTransportOptions tcp_options;
      tcp_options.connect_timeout_ms = 10000;
      auto tcp = TcpTransport::Connect(cluster, party, tcp_options);
      DASH_CHECK(tcp.ok()) << tcp.status();
      SessionMux mux(tcp.value().get());
      Phase1Cache cache(static_cast<size_t>(a.jobs) + 4);

      JobSchedulerOptions scheduler_options;
      scheduler_options.max_concurrent = static_cast<int>(a.concurrent);
      scheduler_options.max_queued = static_cast<int>(2 * a.jobs);
      JobScheduler scheduler(
          [&](const JobSpec& spec) -> Result<ScanSession> {
            DASH_ASSIGN_OR_RETURN(auto channel, mux.OpenSession(spec.job_id));
            ScanSession session;
            SessionChannel* raw = channel.get();
            session.transport = std::move(channel);
            session.abort = [raw](const Status& s) { raw->Abort(s); };
            return session;
          },
          [&](Transport* transport, const JobSpec& spec,
              Phase1State* phase1) -> Result<SecureScanOutput> {
            GwasWorkloadOptions data;
            data.party_sizes.assign(kParties, spec.samples_per_party);
            data.num_variants = spec.variants;
            data.num_covariates = spec.covariates;
            data.num_causal = spec.variants < 2 ? spec.variants : 2;
            data.seed = spec.data_seed;
            DASH_ASSIGN_OR_RETURN(const ScanWorkload workload,
                                  MakeGwasWorkload(data));
            SecureScanOptions options;
            options.aggregation = spec.mode;
            options.seed = spec.protocol_seed;
            return RunPartySecureScan(
                transport, workload.parties[static_cast<size_t>(party)],
                options, phase1);
          },
          &cache, scheduler_options);

      barrier.Arrive();
      cold_waves[static_cast<size_t>(party)] = RunWave(&scheduler, cold);
      barrier.Arrive();
      repeat_waves[static_cast<size_t>(party)] = RunWave(&scheduler, repeat);
      scheduler.Shutdown();
    });
  }
  for (auto& t : threads) t.join();

  // The wave is done when the SLOWEST party settled its last job.
  double cold_s = 0.0;
  double repeat_s = 0.0;
  for (int party = 0; party < kParties; ++party) {
    cold_s = std::max(cold_s, cold_waves[static_cast<size_t>(party)].seconds);
    repeat_s =
        std::max(repeat_s, repeat_waves[static_cast<size_t>(party)].seconds);
    // Bit-identity across parties, wave by wave, job by job.
    DASH_CHECK(cold_waves[static_cast<size_t>(party)].checksums ==
               cold_waves[0].checksums)
        << "cold-wave checksums diverged between parties";
    DASH_CHECK(repeat_waves[static_cast<size_t>(party)].checksums ==
               repeat_waves[0].checksums)
        << "repeat-wave checksums diverged between parties";
  }
  // The repeat wave reuses identical cohorts, so results must match the
  // cold wave bit for bit AND every repeat job must have skipped
  // Phase 1 via the cache.
  DASH_CHECK(repeat_waves[0].checksums == cold_waves[0].checksums)
      << "repeat wave diverged from the cold wave";
  for (int party = 0; party < kParties; ++party) {
    DASH_CHECK(repeat_waves[static_cast<size_t>(party)].cache_hits == a.jobs)
        << "party " << party << " missed the Phase-1 cache on the repeat wave";
    DASH_CHECK(cold_waves[static_cast<size_t>(party)].cache_hits == 0)
        << "party " << party << " claims a cache hit on a fresh cohort";
  }

  const uint64_t checksum = CombineChecksums(cold_waves[0].checksums);
  const double cold_rate = static_cast<double>(a.jobs) / cold_s;
  const double repeat_rate = static_cast<double>(a.jobs) / repeat_s;
  const double cold_p50 = Percentile(cold_waves[0].latency_seconds, 50.0);
  const double cold_p95 = Percentile(cold_waves[0].latency_seconds, 95.0);
  const double repeat_p50 = Percentile(repeat_waves[0].latency_seconds, 50.0);
  const double repeat_p95 = Percentile(repeat_waves[0].latency_seconds, 95.0);

  std::printf("=== resident service: %lld jobs, %lld concurrent, 3 parties "
              "(in-process mesh) ===\n",
              static_cast<long long>(a.jobs),
              static_cast<long long>(a.concurrent));
  std::printf("%-12s | %9s %10s %10s %10s\n", "wave", "wall s", "jobs/s",
              "p50 ms", "p95 ms");
  std::printf("%-12s | %9.3f %10.2f %10.2f %10.2f\n", "cold", cold_s,
              cold_rate, cold_p50 * 1e3, cold_p95 * 1e3);
  std::printf("%-12s | %9.3f %10.2f %10.2f %10.2f\n", "repeat(cached)",
              repeat_s, repeat_rate, repeat_p50 * 1e3, repeat_p95 * 1e3);
  std::printf("combined checksum %016" PRIx64 "\n", checksum);
  std::printf(
      "\nexpected shape: repeat >= cold on jobs/s (Phase 1 skipped via the\n"
      "cache), identical checksums wave-to-wave and party-to-party; p95\n"
      "tracks queueing once jobs > concurrent.\n");

  if (!a.json_path.empty()) {
    std::vector<dash_bench::BenchEntry> entries;
    AddEntry(&entries, a, "service_cold_jobs_per_sec", cold_s, cold_rate,
             checksum);
    AddEntry(&entries, a, "service_cold_latency_p50", cold_p50, 0.0, checksum);
    AddEntry(&entries, a, "service_cold_latency_p95", cold_p95, 0.0, checksum);
    AddEntry(&entries, a, "service_cached_jobs_per_sec", repeat_s, repeat_rate,
             checksum);
    AddEntry(&entries, a, "service_cached_latency_p50", repeat_p50, 0.0,
             checksum);
    AddEntry(&entries, a, "service_cached_latency_p95", repeat_p95, 0.0,
             checksum);
    if (!dash_bench::WriteBenchJson(a.json_path, "service_throughput",
                                    entries)) {
      std::fprintf(stderr, "failed to write %s\n", a.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", a.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_i64 = [&](int64_t* out) {
      DASH_CHECK(i + 1 < argc) << arg << " needs a value";
      *out = std::strtoll(argv[++i], nullptr, 10);
    };
    if (arg == "--jobs") {
      next_i64(&args.jobs);
    } else if (arg == "--concurrent") {
      next_i64(&args.concurrent);
    } else if (arg == "--variants") {
      next_i64(&args.variants);
    } else if (arg == "--samples") {
      next_i64(&args.samples);
    } else if (arg == "--covariates") {
      next_i64(&args.covariates);
    } else if (arg == "--json") {
      DASH_CHECK(i + 1 < argc) << "--json needs a path";
      args.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  DASH_CHECK(args.jobs > 0 && args.concurrent > 0);
  return RunBench(args);
}
