// Transport-layer cost: the secure scan over real loopback TCP (one
// endpoint per thread, kernel sockets, framing, CRC) versus the
// in-process queue backend, on identical workloads.
//
// Reports the same counters as bench_communication.cpp so the numbers
// line up: logical bytes (Message::WireSize at the sender) are REQUIRED
// to match between backends — that is the cross-backend test's
// invariant — while the TCP rows add physical wire bytes (24-byte frame
// headers) and wall-clock protocol time, i.e. what the simulation
// abstracts away.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/secure_scan.h"
#include "data/workloads.h"
#include "transport/cluster_config.h"
#include "transport/party_runner.h"
#include "transport/tcp_transport.h"
#include "util/stopwatch.h"

namespace {

using namespace dash;

std::vector<uint16_t> FreePorts(int count) {
  std::vector<uint16_t> ports;
  std::vector<int> fds;
  for (int i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    DASH_CHECK(fd >= 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    DASH_CHECK(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)) == 0);
    socklen_t len = sizeof(addr);
    DASH_CHECK(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                             &len) == 0);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

ScanWorkload MakeSized(int64_t m, uint64_t seed) {
  RDemoOptions opts;
  opts.n1 = 400;
  opts.n2 = 400;
  opts.n3 = 400;
  opts.num_variants = m;
  opts.num_covariates = 4;
  opts.seed = seed;
  return MakeRDemoWorkload(opts);
}

struct TcpRun {
  int64_t logical_bytes = 0;   // sum over parties of sender-side WireSize
  int64_t wire_bytes = 0;      // physical frames, sum of bytes_sent
  int64_t frames = 0;
  int64_t messages = 0;
  double seconds = 0.0;        // slowest party, mesh setup included
};

TcpRun RunTcp(const ScanWorkload& w, AggregationMode mode) {
  const int p = static_cast<int>(w.parties.size());
  ClusterConfig cluster;
  for (const uint16_t port : FreePorts(p)) {
    cluster.endpoints.push_back({"127.0.0.1", port});
  }
  SecureScanOptions options;
  options.aggregation = mode;
  options.frac_bits = 32;
  TcpTransportOptions tcp_options;
  tcp_options.connect_timeout_ms = 10000;

  TcpRun run;
  std::vector<TcpWireStats> wire(static_cast<size_t>(p));
  std::vector<int64_t> logical(static_cast<size_t>(p), 0);
  std::vector<int64_t> messages(static_cast<size_t>(p), 0);
  std::vector<double> seconds(static_cast<size_t>(p), 0.0);
  std::vector<std::thread> threads;
  for (int i = 0; i < p; ++i) {
    threads.emplace_back([&, i] {
      Stopwatch timer;
      auto transport = TcpTransport::Connect(cluster, i, tcp_options);
      DASH_CHECK(transport.ok()) << transport.status();
      const auto out = RunPartySecureScan(
          transport.value().get(), w.parties[static_cast<size_t>(i)], options);
      DASH_CHECK(out.ok()) << out.status();
      seconds[static_cast<size_t>(i)] = timer.ElapsedSeconds();
      wire[static_cast<size_t>(i)] = transport.value()->wire_stats();
      logical[static_cast<size_t>(i)] = out->metrics.total_bytes;
      messages[static_cast<size_t>(i)] = out->metrics.total_messages;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < p; ++i) {
    run.logical_bytes += logical[static_cast<size_t>(i)];
    run.messages += messages[static_cast<size_t>(i)];
    run.wire_bytes += wire[static_cast<size_t>(i)].bytes_sent;
    run.frames += wire[static_cast<size_t>(i)].frames_sent;
    run.seconds = std::max(run.seconds, seconds[static_cast<size_t>(i)]);
  }
  return run;
}

int RealMain() {
  std::printf("=== transport layer: loopback TCP vs in-process queues ===\n");
  std::printf("P = 3 parties (threads), N = 1200, K = 4, masked unless "
              "noted\n\n");

  std::printf("%-8s | %12s | %12s %12s %8s | %9s %10s\n", "M",
              "in-proc B", "tcp logical", "tcp wire", "frames", "tcp ms",
              "overhead");
  for (const int64_t m : {250, 1000, 4000, 16000}) {
    const ScanWorkload w = MakeSized(m, 11 + static_cast<uint64_t>(m));
    SecureScanOptions options;
    options.aggregation = AggregationMode::kMasked;
    options.frac_bits = 32;
    const auto inproc = SecureAssociationScan(options).Run(w.parties);
    DASH_CHECK(inproc.ok()) << inproc.status();
    const TcpRun tcp = RunTcp(w, AggregationMode::kMasked);
    DASH_CHECK(tcp.logical_bytes == inproc->metrics.total_bytes)
        << "logical byte accounting diverged between backends";
    std::printf("%-8lld | %12lld | %12lld %12lld %8lld | %9.2f %9.2f%%\n",
                static_cast<long long>(m),
                static_cast<long long>(inproc->metrics.total_bytes),
                static_cast<long long>(tcp.logical_bytes),
                static_cast<long long>(tcp.wire_bytes),
                static_cast<long long>(tcp.frames), tcp.seconds * 1e3,
                100.0 * static_cast<double>(tcp.wire_bytes -
                                            tcp.logical_bytes) /
                    static_cast<double>(tcp.logical_bytes));
  }

  std::printf("\n-- per-message overhead by mode (M = 4000) --\n");
  std::printf("%-10s | %9s %12s %12s | %12s %9s\n", "mode", "messages",
              "tcp logical", "tcp wire", "B/message", "tcp ms");
  const ScanWorkload w = MakeSized(4000, 21);
  for (const auto mode :
       {AggregationMode::kPublicShare, AggregationMode::kAdditive,
        AggregationMode::kMasked, AggregationMode::kShamir}) {
    const TcpRun tcp = RunTcp(w, mode);
    std::printf("%-10s | %9lld %12lld %12lld | %12.1f %9.2f\n",
                AggregationModeName(mode),
                static_cast<long long>(tcp.messages),
                static_cast<long long>(tcp.logical_bytes),
                static_cast<long long>(tcp.wire_bytes),
                static_cast<double>(tcp.wire_bytes) /
                    static_cast<double>(tcp.messages),
                tcp.seconds * 1e3);
  }

  std::printf(
      "\nexpected shape: tcp logical == in-proc B on every row (the\n"
      "accounting invariant); wire overhead shrinks as M grows because the\n"
      "fixed 24-byte frame header amortizes over O(M) payloads; masked\n"
      "stays the cheapest secure mode over a real stack too.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
