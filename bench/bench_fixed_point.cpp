// E10 / Figure 6 — fixed-point precision ablation for the ring/field
// secure sums.
//
// Ring aggregation quantizes each statistic to 2^-f; the revealed totals
// deviate from exact doubles by at most P quantization steps, while the
// usable magnitude shrinks as 2^(63-f) (ring) / 2^(60-f)/P (field).
// This bench sweeps f on an R-demo-shaped workload and reports the
// observed end-to-end error in beta and p-values, justifying the
// library default of f = 40.

#include <cmath>
#include <cstdio>

#include "core/association_scan.h"
#include "core/secure_scan.h"
#include "data/workloads.h"

namespace {

using namespace dash;

int RealMain() {
  std::printf("=== E10 (Figure 6): fixed-point bits vs scan accuracy ===\n");
  RDemoOptions demo;
  demo.n1 = 300;
  demo.n2 = 500;
  demo.n3 = 400;
  demo.num_variants = 400;
  demo.num_covariates = 3;
  demo.seed = 5;
  const ScanWorkload w = MakeRDemoWorkload(demo);
  const PooledData pooled = PoolParties(w.parties).value();
  const ScanResult exact =
      AssociationScan(pooled.x, pooled.y, pooled.c).value();
  std::printf("N = 1200, M = 400, K = 3, masked aggregation\n\n");
  std::printf("%-6s %14s %14s %14s %16s\n", "bits", "resolution",
              "ring headroom", "max|Δbeta|", "max|Δpval|");

  for (const int bits : {16, 24, 32, 40, 48}) {
    SecureScanOptions opts;
    opts.aggregation = AggregationMode::kMasked;
    opts.frac_bits = bits;
    const auto out = SecureAssociationScan(opts).Run(w.parties);
    if (!out.ok()) {
      std::printf("%-6d %14.1e %14.1e %14s %16s (%s)\n", bits,
                  std::ldexp(1.0, -bits), std::ldexp(1.0, 63 - bits),
                  "overflow", "-", out.status().ToString().c_str());
      continue;
    }
    std::printf("%-6d %14.1e %14.1e %14.2e %16.2e\n", bits,
                std::ldexp(1.0, -bits), std::ldexp(1.0, 63 - bits),
                MaxAbsDiff(out->result.beta, exact.beta),
                MaxAbsDiff(out->result.pval, exact.pval));
  }

  std::printf("\n-- Shamir field headroom (61-bit) at the same sizes --\n");
  std::printf("%-6s %14s %16s\n", "bits", "field headroom", "status");
  for (const int bits : {16, 24, 32, 40}) {
    SecureScanOptions opts;
    opts.aggregation = AggregationMode::kShamir;
    opts.frac_bits = bits;
    const auto out = SecureAssociationScan(opts).Run(w.parties);
    std::printf("%-6d %14.1e %16s\n", bits,
                std::ldexp(1.0, 60 - bits) / 3.0,
                out.ok() ? "ok" : "overflow");
  }

  std::printf(
      "\nexpected shape: error halves per extra bit until double roundoff;\n"
      "f = 40 gives ~1e-12 scan error with 8.4e6 headroom (the default).\n"
      "Shamir needs smaller f at the same magnitudes (61-bit field).\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
