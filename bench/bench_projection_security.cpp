// E11 / Table 5 — what the stronger privacy of the Beaver variant costs.
//
// The paper (§3): the parties can reveal the summed K-vectors Qᵀy, QᵀX
// ("reveal-sums"), or "for even greater security ... use a more
// sophisticated SMC algorithm to only share the three right-hand
// quantities (two dot products of K-vectors for each m)" — the
// Beaver-triple dot-product protocol. This bench quantifies the
// trade-off: traffic (O(M) -> O(KM)), wall time, rounds, and end-to-end
// accuracy, across K.

#include <cstdio>

#include "core/association_scan.h"
#include "core/secure_scan.h"
#include "data/workloads.h"
#include "util/stopwatch.h"

namespace {

using namespace dash;

int RealMain() {
  std::printf("=== E11 (Table 5): reveal-sums vs Beaver dot products ===\n");
  std::printf("P = 3, N = 1500, M = 2000, masked aggregation\n\n");
  std::printf("%-4s %-12s %12s %8s %10s %14s\n", "K", "projection",
              "bytes", "rounds", "wall(s)", "max|Δbeta|");

  for (const int64_t k : {2, 4, 8}) {
    RDemoOptions demo;
    demo.n1 = 500;
    demo.n2 = 500;
    demo.n3 = 500;
    demo.num_variants = 2000;
    demo.num_covariates = k;
    demo.seed = 77 + static_cast<uint64_t>(k);
    const ScanWorkload w = MakeRDemoWorkload(demo);
    const PooledData pooled = PoolParties(w.parties).value();
    const ScanResult exact =
        AssociationScan(pooled.x, pooled.y, pooled.c).value();

    for (const ProjectionSecurity proj :
         {ProjectionSecurity::kRevealProjectedSums,
          ProjectionSecurity::kBeaverDotProducts}) {
      SecureScanOptions opts;
      opts.aggregation = AggregationMode::kMasked;
      opts.projection = proj;
      opts.projection_frac_bits = 20;
      Stopwatch timer;
      const auto out = SecureAssociationScan(opts).Run(w.parties);
      if (!out.ok()) {
        std::printf("%-4lld %-12s failed: %s\n", static_cast<long long>(k),
                    ProjectionSecurityName(proj),
                    out.status().ToString().c_str());
        continue;
      }
      std::printf("%-4lld %-12s %12lld %8d %10.3f %14.2e\n",
                  static_cast<long long>(k), ProjectionSecurityName(proj),
                  static_cast<long long>(out->metrics.total_bytes),
                  out->metrics.rounds, timer.ElapsedSeconds(),
                  MaxAbsDiff(out->result.beta, exact.beta));
    }
  }

  std::printf(
      "\nexpected shape: Beaver traffic ~ 2K x the reveal-sums traffic\n"
      "(the opened d/e pairs per multiplication), same round count +1,\n"
      "accuracy limited by the 2x-fraction-bit products (~1e-6 here);\n"
      "what is hidden: the K-vectors Qᵀy and QᵀX never leave the parties.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
