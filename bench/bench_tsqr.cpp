// E7 / Figure 5 — distributed TSQR: correctness of the R combination and
// the binary-tree round structure (paper §3 + footnote 3).
//
// For P parties: the combined R (stacked and tree) must match the pooled
// QR of the full covariate matrix; the tree needs ceil(log2 P) rounds;
// and each party only ever discloses a K x K triangle. Timings cover the
// per-merge cost (a 2K x K QR, independent of N).

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/distributed_qr.h"
#include "data/genotype_generator.h"
#include "linalg/qr.h"
#include "linalg/tsqr.h"
#include "net/network.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using namespace dash;

int RealMain() {
  std::printf("=== E7 (Figure 5): TSQR combination across parties ===\n");
  constexpr int64_t kK = 6;
  constexpr int64_t kPerParty = 64;
  std::printf("K = %lld, %lld samples per party\n\n",
              static_cast<long long>(kK), static_cast<long long>(kPerParty));
  std::printf("%-6s %8s %8s %14s %14s %14s\n", "P", "rounds", "merges",
              "max|R-Rpool|", "stack bytes", "tree bytes");

  for (const int p : {2, 4, 8, 16, 32, 64}) {
    Rng rng(100 + static_cast<uint64_t>(p));
    std::vector<Matrix> blocks;
    std::vector<Matrix> local_r;
    for (int i = 0; i < p; ++i) {
      blocks.push_back(GaussianMatrix(kPerParty, kK, &rng));
      local_r.push_back(QrRFactor(blocks.back()).value());
    }
    const Matrix pooled_r = QrRFactor(VStack(blocks)).value();

    Network stack_net(p);
    const DistributedQrResult stacked =
        CombineRFactorsOverNetwork(&stack_net, local_r,
                                   RCombineMode::kBroadcastStack)
            .value();
    Network tree_net(p);
    const DistributedQrResult tree =
        CombineRFactorsOverNetwork(&tree_net, local_r,
                                   RCombineMode::kBinaryTree)
            .value();

    const double err = std::max(MaxAbsDiff(stacked.r, pooled_r),
                                MaxAbsDiff(tree.r, pooled_r));
    std::printf("%-6d %8d %8d %14.2e %14lld %14lld\n", p, tree.rounds,
                p - 1, err,
                static_cast<long long>(stack_net.metrics().total_bytes()),
                static_cast<long long>(tree_net.metrics().total_bytes()));
  }

  std::printf("\n-- merge kernel timing (2K x K QR per merge) --\n");
  std::printf("%-6s %14s\n", "K", "merge (us)");
  for (const int64_t k : {2, 4, 8, 16, 32}) {
    Rng rng(200 + static_cast<uint64_t>(k));
    const Matrix r1 = QrRFactor(GaussianMatrix(4 * k, k, &rng)).value();
    const Matrix r2 = QrRFactor(GaussianMatrix(4 * k, k, &rng)).value();
    constexpr int kIters = 2000;
    Stopwatch timer;
    for (int i = 0; i < kIters; ++i) {
      const auto merged = QrRFactor(VStack({r1, r2}));
      DASH_CHECK(merged.ok());
    }
    std::printf("%-6lld %14.2f\n", static_cast<long long>(k),
                timer.ElapsedMicros() / kIters);
  }

  std::printf(
      "\nexpected shape: error at machine precision for every P; rounds =\n"
      "ceil(log2 P) + 1 (final broadcast); tree traffic < stack traffic\n"
      "for large P; merge cost depends only on K, never on N.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
