// E6 / Figure 4 — sparse packing of X cuts the scan's flops in
// proportion to sparsity (paper §2: "the columns of X can be packed
// sparsely so that the flop count for QᵀX is reduced in proportion to
// the sparsity of X").
//
// MAF sweep: lower minor-allele frequency -> sparser genotype columns ->
// larger dense/sparse speedup. The two paths must agree numerically.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/association_scan.h"
#include "data/genotype_generator.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using namespace dash;

int RealMain() {
  std::printf("=== E6 (Figure 4): dense vs sparse scan by MAF ===\n");
  constexpr int64_t kN = 3000;
  constexpr int64_t kM = 2000;
  constexpr int64_t kK = 4;
  std::printf("N = %lld, M = %lld, K = %lld\n\n", static_cast<long long>(kN),
              static_cast<long long>(kM), static_cast<long long>(kK));
  std::printf("%-10s %10s %12s %12s %10s %12s\n", "MAF", "density",
              "dense(s)", "sparse(s)", "speedup", "max|Δbeta|");

  Rng rng(61);
  const Matrix c = WithInterceptColumn(GaussianMatrix(kN, kK - 1, &rng));
  const Vector y = GaussianVector(kN, &rng);

  for (const double maf : {0.001, 0.005, 0.02, 0.08, 0.25}) {
    GenotypeOptions geno;
    geno.num_samples = kN;
    geno.num_variants = kM;
    geno.maf_min = maf;
    geno.maf_max = maf;
    geno.seed = static_cast<uint64_t>(maf * 1e6) + 17;
    const Matrix dense = GenerateGenotypes(geno);
    const SparseColumnMatrix sparse = SparseColumnMatrix::FromDense(dense);

    Stopwatch t_dense;
    const ScanResult dense_result = AssociationScan(dense, y, c).value();
    const double dense_seconds = t_dense.ElapsedSeconds();

    Stopwatch t_sparse;
    const ScanResult sparse_result =
        AssociationScanSparse(sparse, y, c).value();
    const double sparse_seconds = t_sparse.ElapsedSeconds();

    // Agreement over testable variants (rare variants may be absent in a
    // draw and flagged NaN identically by both paths).
    double worst = 0.0;
    for (int64_t j = 0; j < kM; ++j) {
      const size_t i = static_cast<size_t>(j);
      if (std::isnan(dense_result.beta[i]) || std::isnan(sparse_result.beta[i]))
        continue;
      worst = std::max(worst,
                       std::fabs(dense_result.beta[i] - sparse_result.beta[i]));
    }

    std::printf("%-10.3f %10.4f %12.4f %12.4f %9.1fx %12.2e\n", maf,
                sparse.Density(), dense_seconds, sparse_seconds,
                dense_seconds / sparse_seconds, worst);
  }

  std::printf(
      "\nexpected shape: speedup ~ 1/density for rare variants, tending\n"
      "to ~1x as density approaches the dense layout's efficiency.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
