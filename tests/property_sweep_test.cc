// Randomized property sweeps across the protocol configuration space —
// the "does the central equivalence survive everything we throw at it"
// suite, plus statistical invariances of the scan itself.

#include <gtest/gtest.h>

#include <cmath>

#include "core/association_scan.h"
#include "core/secure_scan.h"
#include "data/genotype_generator.h"
#include "data/party_split.h"
#include "stats/ols.h"
#include "util/random.h"

namespace dash {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: the central equivalence over random shapes and configs.
// ---------------------------------------------------------------------

struct SweepConfig {
  uint64_t seed;
  int parties;
  int64_t k;
  AggregationMode mode;
};

class EquivalenceSweepTest : public testing::TestWithParam<SweepConfig> {};

TEST_P(EquivalenceSweepTest, SecureEqualsPooledOls) {
  const SweepConfig cfg = GetParam();
  Rng rng(cfg.seed);
  // Random per-party sizes in [k+2, k+40].
  std::vector<PartyData> parties;
  const int64_t m = 8 + static_cast<int64_t>(rng.UniformInt(10));
  for (int p = 0; p < cfg.parties; ++p) {
    const int64_t n = cfg.k + 2 + static_cast<int64_t>(rng.UniformInt(39));
    PartyData pd;
    pd.x = GaussianMatrix(n, m, &rng);
    pd.c = GaussianMatrix(n, cfg.k, &rng);
    pd.y = GaussianVector(n, &rng);
    parties.push_back(std::move(pd));
  }

  SecureScanOptions opts;
  opts.aggregation = cfg.mode;
  opts.seed = cfg.seed * 31 + 7;
  const auto out = SecureAssociationScan(opts).Run(parties);
  ASSERT_TRUE(out.ok()) << out.status();

  const PooledData pooled = PoolParties(parties).value();
  // Spot-check three random columns against full per-column OLS.
  for (int check = 0; check < 3; ++check) {
    const int64_t j = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(m)));
    const SingleCoefficientFit ols =
        FitTransientCoefficient(pooled.x.Col(j), pooled.c, pooled.y).value();
    const size_t i = static_cast<size_t>(j);
    EXPECT_NEAR(out->result.beta[i], ols.beta, 1e-5) << "col " << j;
    EXPECT_NEAR(out->result.se[i], ols.standard_error, 1e-5) << "col " << j;
    EXPECT_EQ(out->result.dof, ols.dof);
  }
}

std::vector<SweepConfig> MakeSweep() {
  std::vector<SweepConfig> configs;
  const AggregationMode modes[] = {
      AggregationMode::kPublicShare, AggregationMode::kAdditive,
      AggregationMode::kMasked, AggregationMode::kShamir};
  uint64_t seed = 1000;
  for (const auto mode : modes) {
    for (const int parties : {2, 4, 7}) {
      for (const int64_t k : {int64_t{1}, int64_t{3}}) {
        configs.push_back({++seed, parties, k, mode});
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Configs, EquivalenceSweepTest,
                         testing::ValuesIn(MakeSweep()));

// ---------------------------------------------------------------------
// Sweep 2: statistical invariances of the scan.
// ---------------------------------------------------------------------

struct Study {
  Matrix x;
  Vector y;
  Matrix c;
};

Study MakeStudy(uint64_t seed) {
  Rng rng(seed);
  Study s;
  s.x = GaussianMatrix(80, 10, &rng);
  s.c = WithInterceptColumn(GaussianMatrix(80, 2, &rng));
  s.y.resize(80);
  for (int64_t i = 0; i < 80; ++i) {
    s.y[static_cast<size_t>(i)] = 0.3 * s.x(i, 4) + rng.Gaussian();
  }
  return s;
}

class InvarianceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(InvarianceTest, ScalingX) {
  const Study s = MakeStudy(GetParam());
  const ScanResult base = AssociationScan(s.x, s.y, s.c).value();
  Matrix scaled = s.x;
  for (int64_t i = 0; i < scaled.size(); ++i) scaled.data()[i] *= 4.0;
  const ScanResult out = AssociationScan(scaled, s.y, s.c).value();
  for (int64_t j = 0; j < 10; ++j) {
    const size_t i = static_cast<size_t>(j);
    // beta scales by 1/4, t and p are invariant.
    EXPECT_NEAR(out.beta[i], base.beta[i] / 4.0, 1e-10);
    EXPECT_NEAR(out.tstat[i], base.tstat[i], 1e-8);
    EXPECT_NEAR(out.pval[i], base.pval[i], 1e-10);
  }
}

TEST_P(InvarianceTest, ScalingY) {
  const Study s = MakeStudy(GetParam() + 100);
  const ScanResult base = AssociationScan(s.x, s.y, s.c).value();
  Vector scaled = s.y;
  Scale(2.5, &scaled);
  const ScanResult out = AssociationScan(s.x, scaled, s.c).value();
  for (int64_t j = 0; j < 10; ++j) {
    const size_t i = static_cast<size_t>(j);
    EXPECT_NEAR(out.beta[i], 2.5 * base.beta[i], 1e-9);
    EXPECT_NEAR(out.tstat[i], base.tstat[i], 1e-8);
  }
}

TEST_P(InvarianceTest, ShiftingYWithInterceptPresent) {
  const Study s = MakeStudy(GetParam() + 200);
  const ScanResult base = AssociationScan(s.x, s.y, s.c).value();
  Vector shifted = s.y;
  for (auto& v : shifted) v += 100.0;
  const ScanResult out = AssociationScan(s.x, shifted, s.c).value();
  // The intercept absorbs the shift entirely.
  for (int64_t j = 0; j < 10; ++j) {
    const size_t i = static_cast<size_t>(j);
    EXPECT_NEAR(out.beta[i], base.beta[i], 1e-7);
    EXPECT_NEAR(out.pval[i], base.pval[i], 1e-7);
  }
}

TEST_P(InvarianceTest, CovariateBasisChange) {
  // Replacing C by C*T for invertible T changes nothing (same span).
  const Study s = MakeStudy(GetParam() + 300);
  const ScanResult base = AssociationScan(s.x, s.y, s.c).value();
  Rng rng(GetParam() + 400);
  Matrix t(3, 3);
  do {
    t = GaussianMatrix(3, 3, &rng);
  } while (std::fabs(t(0, 0) * (t(1, 1) * t(2, 2) - t(1, 2) * t(2, 1)) -
                     t(0, 1) * (t(1, 0) * t(2, 2) - t(1, 2) * t(2, 0)) +
                     t(0, 2) * (t(1, 0) * t(2, 1) - t(1, 1) * t(2, 0))) <
           0.1);
  const Matrix transformed = MatMul(s.c, t);
  const ScanResult out = AssociationScan(s.x, s.y, transformed).value();
  EXPECT_LT(MaxAbsDiff(out.beta, base.beta), 1e-8);
  EXPECT_LT(MaxAbsDiff(out.pval, base.pval), 1e-8);
}

TEST_P(InvarianceTest, RowPermutation) {
  // Sample order is statistically irrelevant.
  const Study s = MakeStudy(GetParam() + 500);
  const ScanResult base = AssociationScan(s.x, s.y, s.c).value();
  // Reverse all rows.
  Study rev = s;
  for (int64_t i = 0; i < 80; ++i) {
    for (int64_t j = 0; j < 10; ++j) rev.x(i, j) = s.x(79 - i, j);
    for (int64_t j = 0; j < 3; ++j) rev.c(i, j) = s.c(79 - i, j);
    rev.y[static_cast<size_t>(i)] = s.y[static_cast<size_t>(79 - i)];
  }
  const ScanResult out = AssociationScan(rev.x, rev.y, rev.c).value();
  EXPECT_LT(MaxAbsDiff(out.beta, base.beta), 1e-10);
  EXPECT_LT(MaxAbsDiff(out.tstat, base.tstat), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvarianceTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------
// Sweep 3: numerical stress.
// ---------------------------------------------------------------------

TEST(NumericalStressTest, NearCollinearCovariatesStillFactor) {
  Rng rng(7);
  for (const double eps : {1e-2, 1e-4, 1e-6}) {
    Matrix c(60, 3);
    for (int64_t i = 0; i < 60; ++i) {
      const double base = rng.Gaussian();
      c(i, 0) = 1.0;
      c(i, 1) = base;
      c(i, 2) = base + eps * rng.Gaussian();  // nearly collinear
    }
    const Matrix x = GaussianMatrix(60, 4, &rng);
    const Vector y = GaussianVector(60, &rng);
    const auto scan = AssociationScan(x, y, c);
    ASSERT_TRUE(scan.ok()) << "eps=" << eps << ": " << scan.status();
    for (const double p : scan->pval) {
      EXPECT_FALSE(std::isnan(p)) << "eps=" << eps;
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(NumericalStressTest, WildlyScaledCovariates) {
  // Columns spanning 12 orders of magnitude (e.g. raw age vs genotype
  // PCs) must not destabilize the QR-based path.
  Rng rng(8);
  Matrix c(100, 3);
  for (int64_t i = 0; i < 100; ++i) {
    c(i, 0) = 1.0;
    c(i, 1) = 1e6 * rng.Gaussian();
    c(i, 2) = 1e-6 * rng.Gaussian();
  }
  const Matrix x = GaussianMatrix(100, 5, &rng);
  Vector y(100);
  for (int64_t i = 0; i < 100; ++i) {
    y[static_cast<size_t>(i)] = 0.4 * x(i, 1) + rng.Gaussian();
  }
  const ScanResult scan = AssociationScan(x, y, c).value();
  EXPECT_EQ(scan.TopHit(), 1);
  EXPECT_LT(scan.pval[1], 1e-3);
  // Cross-check one column against OLS at these scales.
  const SingleCoefficientFit ols =
      FitTransientCoefficient(x.Col(1), c, y).value();
  EXPECT_NEAR(scan.beta[1], ols.beta, 1e-7);
}

TEST(NumericalStressTest, TinyResidualVarianceStaysFinite) {
  // y almost exactly in the span of [x_m, C]: sigma² near zero must not
  // produce negative variances or NaN p-values.
  Rng rng(9);
  const Matrix x = GaussianMatrix(50, 2, &rng);
  const Matrix c = WithInterceptColumn(GaussianMatrix(50, 1, &rng));
  Vector y(50);
  for (int64_t i = 0; i < 50; ++i) {
    y[static_cast<size_t>(i)] =
        2.0 * x(i, 0) + c(i, 1) + 1e-9 * rng.Gaussian();
  }
  const ScanResult scan = AssociationScan(x, y, c).value();
  EXPECT_NEAR(scan.beta[0], 2.0, 1e-6);
  EXPECT_GE(scan.se[0], 0.0);
  EXPECT_LE(scan.pval[0], 1e-30);
}

}  // namespace
}  // namespace dash
