#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace dash {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("bad K");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad K");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad K");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == InternalError("a"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValuesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, NonDefaultConstructibleValuesWork) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  Result<NoDefault> ok = NoDefault(3);
  EXPECT_EQ(ok->value, 3);
  Result<NoDefault> err = InternalError("nope");
  EXPECT_FALSE(err.ok());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DASH_ASSIGN_OR_RETURN(int h, Half(x));
  DASH_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

Status RequireEven(int x) {
  DASH_RETURN_IF_ERROR(Half(x).status());
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(RequireEven(4).ok());
  EXPECT_FALSE(RequireEven(3).ok());
}

TEST(CheckDeathTest, CheckAborts) {
  EXPECT_DEATH(DASH_CHECK(1 == 2) << "boom", "DASH_CHECK failed");
  EXPECT_DEATH(DASH_CHECK_EQ(1, 2), "1 == 2");
}

}  // namespace
}  // namespace dash
