#include "transport/tcp_transport.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/serialization.h"
#include "transport/cluster_config.h"
#include "transport/frame.h"

namespace dash {
namespace {

// Asks the kernel for free ephemeral ports. The sockets are closed
// before the transports bind, so a parallel process could in principle
// steal one, but loopback CI contention makes that vanishingly rare.
std::vector<uint16_t> FreePorts(int count) {
  std::vector<uint16_t> ports;
  std::vector<int> fds;
  for (int i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                            &len),
              0);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

ClusterConfig MakeCluster(const std::vector<uint16_t>& ports) {
  ClusterConfig cluster;
  for (const uint16_t port : ports) {
    cluster.endpoints.push_back({"127.0.0.1", port});
  }
  return cluster;
}

using TransportOrError = Result<std::unique_ptr<TcpTransport>>;

TEST(TcpTransportTest, TwoPartyRoundTrip) {
  const ClusterConfig cluster = MakeCluster(FreePorts(2));
  TcpTransportOptions options;
  options.connect_timeout_ms = 5000;

  std::unique_ptr<TcpTransport> t1;
  std::thread peer([&] {
    auto r = TcpTransport::Connect(cluster, 1, options);
    ASSERT_TRUE(r.ok()) << r.status();
    t1 = std::move(r).value();
  });
  auto r0 = TcpTransport::Connect(cluster, 0, options);
  peer.join();
  ASSERT_TRUE(r0.ok()) << r0.status();
  std::unique_ptr<TcpTransport> t0 = std::move(r0).value();

  EXPECT_EQ(t0->local_party(), 0);
  EXPECT_EQ(t1->local_party(), 1);

  ASSERT_TRUE(t0->Send(0, 1, MessageTag::kPlainStats, {1, 2, 3}).ok());
  ASSERT_TRUE(t1->Send(1, 0, MessageTag::kMaskedValue, {9}).ok());

  auto m1 = t1->Receive(1, 0, MessageTag::kPlainStats);
  ASSERT_TRUE(m1.ok()) << m1.status();
  EXPECT_EQ(m1->payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(m1->from, 0);
  EXPECT_EQ(m1->to, 1);

  auto m0 = t0->Receive(0, 1, MessageTag::kMaskedValue);
  ASSERT_TRUE(m0.ok()) << m0.status();
  EXPECT_EQ(m0->payload, (std::vector<uint8_t>{9}));

  // Logical metrics count WireSize at the sender, like the in-process
  // backend; physical counters include the 24-byte frame headers.
  EXPECT_EQ(t0->metrics().total_messages(), 1);
  EXPECT_EQ(t0->metrics().total_bytes(),
            static_cast<int64_t>(3 + Message::kHeaderBytes));
  EXPECT_EQ(t0->wire_stats().bytes_sent,
            static_cast<int64_t>(3 + kFrameHeaderBytes));
  EXPECT_EQ(t0->wire_stats().frames_sent, 1);
  EXPECT_EQ(t0->wire_stats().frames_received, 1);
}

TEST(TcpTransportTest, LargePayloadSurvivesFraming) {
  const ClusterConfig cluster = MakeCluster(FreePorts(2));
  TcpTransportOptions options;
  options.connect_timeout_ms = 5000;

  std::unique_ptr<TcpTransport> t1;
  std::thread peer([&] {
    auto r = TcpTransport::Connect(cluster, 1, options);
    ASSERT_TRUE(r.ok()) << r.status();
    t1 = std::move(r).value();
  });
  auto r0 = TcpTransport::Connect(cluster, 0, options);
  peer.join();
  ASSERT_TRUE(r0.ok()) << r0.status();
  std::unique_ptr<TcpTransport> t0 = std::move(r0).value();

  // > 1 MiB, larger than any kernel socket buffer default, so the send
  // is forced through the partial-write/drain path.
  std::vector<uint64_t> values(200'000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 0x0123456789ABCDEFull ^ (static_cast<uint64_t>(i) * 0x9E37u);
  }
  ByteWriter w;
  w.PutU64Vector(values);
  const std::vector<uint8_t> payload = w.Take();
  ASSERT_GT(payload.size(), static_cast<size_t>(1) << 20);

  std::thread sender([&] {
    ASSERT_TRUE(t0->Send(0, 1, MessageTag::kAdditiveShare, payload).ok());
  });
  auto msg = t1->Receive(1, 0, MessageTag::kAdditiveShare);
  sender.join();
  ASSERT_TRUE(msg.ok()) << msg.status();
  ByteReader r(msg->payload);
  auto decoded = r.GetU64Vector();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), values);
}

TEST(TcpTransportTest, ToleratesAnyStartOrder) {
  const ClusterConfig cluster = MakeCluster(FreePorts(3));
  TcpTransportOptions options;
  options.connect_timeout_ms = 10000;
  options.backoff_initial_ms = 10;

  // Parties 1 and 2 dial party 0 long before it exists: their connects
  // fail and must retry with backoff until party 0's listener appears.
  std::vector<std::unique_ptr<TcpTransport>> transports(3);
  std::thread p1([&] {
    auto r = TcpTransport::Connect(cluster, 1, options);
    ASSERT_TRUE(r.ok()) << r.status();
    transports[1] = std::move(r).value();
  });
  std::thread p2([&] {
    auto r = TcpTransport::Connect(cluster, 2, options);
    ASSERT_TRUE(r.ok()) << r.status();
    transports[2] = std::move(r).value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto r0 = TcpTransport::Connect(cluster, 0, options);
  p1.join();
  p2.join();
  ASSERT_TRUE(r0.ok()) << r0.status();
  transports[0] = std::move(r0).value();

  // Full-mesh sanity: everyone messages everyone.
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (to == from) continue;
      ASSERT_TRUE(transports[static_cast<size_t>(from)]
                      ->Send(from, to, MessageTag::kPlainStats,
                             {static_cast<uint8_t>(from)})
                      .ok());
    }
  }
  for (int to = 0; to < 3; ++to) {
    for (int from = 0; from < 3; ++from) {
      if (to == from) continue;
      auto msg = transports[static_cast<size_t>(to)]->Receive(
          to, from, MessageTag::kPlainStats);
      ASSERT_TRUE(msg.ok()) << msg.status();
      EXPECT_EQ(msg->payload[0], static_cast<uint8_t>(from));
    }
  }
}

TEST(TcpTransportTest, AbsentPeerYieldsDeadlineExceeded) {
  const ClusterConfig cluster = MakeCluster(FreePorts(2));
  TcpTransportOptions options;
  options.connect_timeout_ms = 300;
  options.backoff_initial_ms = 10;

  // Party 1 dials party 0, which never starts.
  const auto dialer = TcpTransport::Connect(cluster, 1, options);
  ASSERT_FALSE(dialer.ok());
  EXPECT_EQ(dialer.status().code(), StatusCode::kDeadlineExceeded)
      << dialer.status();

  // Party 0 awaits party 1, which never dials.
  const auto acceptor = TcpTransport::Connect(cluster, 0, options);
  ASSERT_FALSE(acceptor.ok());
  EXPECT_EQ(acceptor.status().code(), StatusCode::kDeadlineExceeded)
      << acceptor.status();
}

TEST(TcpTransportTest, SurvivesPeerKilledMidHandshake) {
  const ClusterConfig cluster = MakeCluster(FreePorts(2));
  TcpTransportOptions options;
  options.connect_timeout_ms = 10000;
  options.backoff_initial_ms = 10;

  std::unique_ptr<TcpTransport> t0;
  std::thread acceptor([&] {
    auto r = TcpTransport::Connect(cluster, 0, options);
    ASSERT_TRUE(r.ok()) << r.status();
    t0 = std::move(r).value();
  });

  // A "party" that connects and dies before sending its hello — exactly
  // what a kill -9 mid-handshake looks like to the acceptor.
  {
    int stale = -1;
    for (int attempt = 0; attempt < 200 && stale < 0; ++attempt) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      struct sockaddr_in addr = {};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(cluster.endpoints[0].port);
      if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        stale = fd;
      } else {
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    ASSERT_GE(stale, 0) << "could not reach party 0's listener";
    ::close(stale);  // die without a hello
  }

  // The restarted real party 1 must still be admitted.
  auto r1 = TcpTransport::Connect(cluster, 1, options);
  acceptor.join();
  ASSERT_TRUE(r1.ok()) << r1.status();
  std::unique_ptr<TcpTransport> t1 = std::move(r1).value();

  ASSERT_TRUE(t1->Send(1, 0, MessageTag::kPlainStats, {7}).ok());
  auto msg = t0->Receive(0, 1, MessageTag::kPlainStats);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_EQ(msg->payload, (std::vector<uint8_t>{7}));
}

TEST(TcpTransportTest, ReceiveTimesOutCleanly) {
  const ClusterConfig cluster = MakeCluster(FreePorts(2));
  TcpTransportOptions options;
  options.connect_timeout_ms = 5000;
  options.receive_timeout_ms = 200;

  std::unique_ptr<TcpTransport> t1;
  std::thread peer([&] {
    auto r = TcpTransport::Connect(cluster, 1, options);
    ASSERT_TRUE(r.ok()) << r.status();
    t1 = std::move(r).value();
  });
  auto r0 = TcpTransport::Connect(cluster, 0, options);
  peer.join();
  ASSERT_TRUE(r0.ok()) << r0.status();

  const auto msg = r0.value()->Receive(0, 1, MessageTag::kPlainStats);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kDeadlineExceeded)
      << msg.status();
}

TEST(TcpTransportTest, TagMismatchIsFailedPrecondition) {
  const ClusterConfig cluster = MakeCluster(FreePorts(2));
  TcpTransportOptions options;
  options.connect_timeout_ms = 5000;

  std::unique_ptr<TcpTransport> t1;
  std::thread peer([&] {
    auto r = TcpTransport::Connect(cluster, 1, options);
    ASSERT_TRUE(r.ok()) << r.status();
    t1 = std::move(r).value();
  });
  auto r0 = TcpTransport::Connect(cluster, 0, options);
  peer.join();
  ASSERT_TRUE(r0.ok()) << r0.status();

  ASSERT_TRUE(t1->Send(1, 0, MessageTag::kTreeR, {1}).ok());
  const auto msg = r0.value()->Receive(0, 1, MessageTag::kRFactor);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TcpTransportTest, EnforcesPartyBinding) {
  const ClusterConfig cluster = MakeCluster(FreePorts(2));
  TcpTransportOptions options;
  options.connect_timeout_ms = 5000;
  options.receive_timeout_ms = 200;

  std::unique_ptr<TcpTransport> t1;
  std::thread peer([&] {
    auto r = TcpTransport::Connect(cluster, 1, options);
    ASSERT_TRUE(r.ok()) << r.status();
    t1 = std::move(r).value();
  });
  auto r0 = TcpTransport::Connect(cluster, 0, options);
  peer.join();
  ASSERT_TRUE(r0.ok()) << r0.status();
  std::unique_ptr<TcpTransport> t0 = std::move(r0).value();

  // A TCP endpoint can only speak and listen as itself.
  EXPECT_EQ(t0->Send(1, 0, MessageTag::kPlainStats, {1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t0->Send(0, 0, MessageTag::kPlainStats, {1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t0->Receive(1, 0, MessageTag::kPlainStats).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(t0->HasPending(1, 0));

  ASSERT_TRUE(t1->Send(1, 0, MessageTag::kPlainStats, {1}).ok());
  // Poll until the frame lands in party 0's inbox.
  bool pending = false;
  for (int i = 0; i < 100 && !pending; ++i) {
    pending = t0->HasPending(0, 1);
    if (!pending) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(pending);
}

TEST(TcpTransportTest, RejectsMismatchedClusterSizes) {
  const std::vector<uint16_t> ports = FreePorts(3);
  const ClusterConfig two = MakeCluster({ports[0], ports[1]});
  ClusterConfig three = MakeCluster(ports);
  TcpTransportOptions options;
  options.connect_timeout_ms = 2000;
  options.backoff_initial_ms = 10;

  // Party 1 believes the cluster has 3 parties; party 0 believes 2. The
  // hello exchange detects the disagreement instead of desyncing later.
  TransportOrError r1 = InvalidArgumentError("unset");
  std::thread peer([&] { r1 = TcpTransport::Connect(three, 1, options); });
  const auto r0 = TcpTransport::Connect(two, 0, options);
  peer.join();
  EXPECT_FALSE(r0.ok());
  EXPECT_FALSE(r1.ok());
}

TEST(TcpTransportTest, ConnectValidatesArguments) {
  const ClusterConfig cluster = MakeCluster(FreePorts(2));
  EXPECT_EQ(TcpTransport::Connect(cluster, -1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TcpTransport::Connect(cluster, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TcpTransport::Connect(ClusterConfig{}, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TcpTransportTest, SinglePartyClusterNeedsNoNetwork) {
  ClusterConfig cluster;
  cluster.endpoints.push_back({"127.0.0.1", 1});  // never dialed
  auto r = TcpTransport::Connect(cluster, 0);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value()->num_parties(), 1);
}

}  // namespace
}  // namespace dash
