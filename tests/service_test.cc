// Service layer in isolation: Phase1Cache check-out/check-in + LRU,
// JobScheduler admission/cancel/deadline/shutdown against fake sessions
// and scans, and the control protocol's line handling (no sockets —
// ControlServer::HandleLine is called directly).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/control_server.h"
#include "service/job.h"
#include "service/job_scheduler.h"
#include "service/phase1_cache.h"
#include "transport/frame.h"
#include "transport/transport.h"
#include "util/mutex.h"

namespace dash {
namespace {

// ---------------------------------------------------------------------
// Phase1Cache

Phase1State ValidState(uint64_t fingerprint) {
  Phase1State state;
  state.valid = true;
  state.local_fingerprint = fingerprint;
  state.total_samples = 100;
  return state;
}

TEST(Phase1CacheTest, TakeChecksOutExclusively) {
  Phase1Cache cache(4);
  cache.Put("a", ValidState(1));

  // First Take wins the entry; a concurrent same-cohort job misses and
  // recomputes instead of racing on shared state.
  const Phase1State first = cache.Take("a");
  EXPECT_TRUE(first.valid);
  const Phase1State second = cache.Take("a");
  EXPECT_FALSE(second.valid);

  const Phase1CacheStats stats = cache.stats();
  EXPECT_EQ(stats.take_hits, 1);
  EXPECT_EQ(stats.take_misses, 1);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(Phase1CacheTest, PutIgnoresInvalidStates) {
  Phase1Cache cache(4);
  cache.Put("a", Phase1State());  // never ran Phase 1: nothing to keep
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.Take("a").valid);
}

TEST(Phase1CacheTest, LruEvictsTheColdestCohort) {
  Phase1Cache cache(2);
  cache.Put("a", ValidState(1));
  cache.Put("b", ValidState(2));
  cache.Put("a", ValidState(3));  // refresh: "a" is now warmest
  cache.Put("c", ValidState(4));  // evicts "b", the coldest

  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_FALSE(cache.Take("b").valid);
  EXPECT_TRUE(cache.Take("a").valid);
  EXPECT_TRUE(cache.Take("c").valid);
}

TEST(Phase1CacheTest, InvalidateAndClearDropEntries) {
  Phase1Cache cache(4);
  cache.Put("a", ValidState(1));
  cache.Put("b", ValidState(2));
  cache.Invalidate("a");
  EXPECT_FALSE(cache.Take("a").valid);
  EXPECT_EQ(cache.stats().invalidations, 1);
  cache.Clear();
  EXPECT_FALSE(cache.Take("b").valid);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------
// JobScheduler, with a fake session factory and scan function.

class FakeTransport : public Transport {
 public:
  FakeTransport() : Transport(1) {}
  int local_party() const override { return 0; }
  Status Send(int, int, MessageTag, std::vector<uint8_t>) override {
    return Status::Ok();
  }
  Result<Message> Receive(int, int, MessageTag) override {
    return NotFoundError("fake transport holds no messages");
  }
  bool HasPending(int, int) override { return false; }
};

// Lets a test hold a "scan" mid-flight until the scheduler aborts it
// (deadline, cancel) or the test releases it.
struct JobGate {
  Mutex mu{LockRank::kLeaf};
  CondVar cv;
  Status abort_status DASH_GUARDED_BY(mu) = Status::Ok();
  bool released DASH_GUARDED_BY(mu) = false;

  void Abort(const Status& status) {
    MutexLock lock(&mu);
    abort_status = status;
    cv.NotifyAll();
  }
  void Release() {
    MutexLock lock(&mu);
    released = true;
    cv.NotifyAll();
  }
  // Blocks like a scan blocked on its transport; returns the abort
  // status (or Ok when released normally).
  Status Wait() {
    MutexLock lock(&mu);
    while (!released && abort_status.ok()) cv.Wait(&mu);
    return abort_status;
  }
};

SessionFactory GateFactory(std::shared_ptr<JobGate> gate) {
  return [gate](const JobSpec&) -> Result<ScanSession> {
    ScanSession session;
    session.transport = std::make_unique<FakeTransport>();
    session.abort = [gate](const Status& status) { gate->Abort(status); };
    return session;
  };
}

ScanFn GateScan(std::shared_ptr<JobGate> gate) {
  return [gate](Transport*, const JobSpec&,
                Phase1State*) -> Result<SecureScanOutput> {
    const Status aborted = gate->Wait();
    if (!aborted.ok()) return aborted;
    SecureScanOutput out;
    out.metrics.rounds = 5;
    return out;
  };
}

JobSpec Spec(uint32_t id, const std::string& cohort = "c") {
  JobSpec spec;
  spec.job_id = id;
  spec.cohort_key = cohort;
  return spec;
}

JobRecord WaitSettled(JobScheduler* scheduler, uint32_t id) {
  for (int i = 0; i < 2000; ++i) {
    auto record = scheduler->Query(id);
    EXPECT_TRUE(record.ok()) << record.status();
    if (!record.ok()) return JobRecord();
    if (record.value().state == JobState::kDone ||
        record.value().state == JobState::kFailed ||
        record.value().state == JobState::kCancelled) {
      return record.value();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ADD_FAILURE() << "job " << id << " never settled";
  return JobRecord();
}

TEST(JobSchedulerTest, AdmissionControl) {
  auto gate = std::make_shared<JobGate>();
  JobSchedulerOptions options;
  options.max_concurrent = 1;
  options.max_queued = 1;
  JobScheduler scheduler(GateFactory(gate), GateScan(gate), nullptr,
                         options);

  EXPECT_EQ(scheduler.Submit(Spec(0)).code(), StatusCode::kInvalidArgument);
  JobSpec oversized = Spec(1);
  oversized.job_id = kFrameMaxSessionId + 1;
  EXPECT_EQ(scheduler.Submit(oversized).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(scheduler.Submit(Spec(1)).ok());  // occupies the worker
  EXPECT_EQ(scheduler.Submit(Spec(1)).code(), StatusCode::kAlreadyExists);

  // Wait until job 1 is RUNNING so the queue is empty for job 2.
  for (int i = 0; i < 1000; ++i) {
    if (scheduler.Query(1).value().state == JobState::kRunning) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(scheduler.Submit(Spec(2)).ok());  // fills the queue
  const Status full = scheduler.Submit(Spec(3));
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);
  EXPECT_NE(full.message().find("queue is full"), std::string::npos);
  // Out-of-range ids fail validation before admission; only the
  // duplicate and the overflow count as rejections.
  EXPECT_EQ(scheduler.stats().rejected, 2);

  gate->Release();
  EXPECT_EQ(WaitSettled(&scheduler, 1).state, JobState::kDone);
  EXPECT_EQ(WaitSettled(&scheduler, 2).state, JobState::kDone);
  EXPECT_EQ(scheduler.stats().completed, 2);
}

TEST(JobSchedulerTest, CancelQueuedAndRunning) {
  auto gate = std::make_shared<JobGate>();
  JobSchedulerOptions options;
  options.max_concurrent = 1;
  JobScheduler scheduler(GateFactory(gate), GateScan(gate), nullptr,
                         options);

  EXPECT_EQ(scheduler.Cancel(9).code(), StatusCode::kNotFound);

  ASSERT_TRUE(scheduler.Submit(Spec(1)).ok());
  for (int i = 0; i < 1000; ++i) {
    if (scheduler.Query(1).value().state == JobState::kRunning) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(scheduler.Submit(Spec(2)).ok());  // waits in the queue

  // Queued job: cancelled in place, the worker never sees it.
  ASSERT_TRUE(scheduler.Cancel(2).ok());
  EXPECT_EQ(scheduler.Query(2).value().state, JobState::kCancelled);

  // Running job: the session's abort fires and the scan unblocks.
  ASSERT_TRUE(scheduler.Cancel(1).ok());
  const JobRecord record = WaitSettled(&scheduler, 1);
  EXPECT_EQ(record.state, JobState::kCancelled);
  EXPECT_EQ(record.error.code(), StatusCode::kUnavailable);

  // A settled job cannot be cancelled again.
  EXPECT_EQ(scheduler.Cancel(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(scheduler.stats().cancelled, 2);
}

TEST(JobSchedulerTest, DeadlineFiresTheAbortPath) {
  auto gate = std::make_shared<JobGate>();
  JobSchedulerOptions options;
  options.watchdog_interval_ms = 5;
  JobScheduler scheduler(GateFactory(gate), GateScan(gate), nullptr,
                         options);

  JobSpec spec = Spec(1);
  spec.deadline_ms = 30;
  ASSERT_TRUE(scheduler.Submit(spec).ok());
  const JobRecord record = WaitSettled(&scheduler, 1);
  EXPECT_EQ(record.state, JobState::kFailed);
  EXPECT_EQ(record.error.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(record.error.message().find("deadline"), std::string::npos);
}

TEST(JobSchedulerTest, ShutdownCancelsQueuedJobsAndAbortsRunning) {
  auto gate = std::make_shared<JobGate>();
  JobSchedulerOptions options;
  options.max_concurrent = 1;
  JobScheduler scheduler(GateFactory(gate), GateScan(gate), nullptr,
                         options);

  ASSERT_TRUE(scheduler.Submit(Spec(1)).ok());
  for (int i = 0; i < 1000; ++i) {
    if (scheduler.Query(1).value().state == JobState::kRunning) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(scheduler.Submit(Spec(2)).ok());

  scheduler.Shutdown();
  EXPECT_EQ(scheduler.Query(1).value().state, JobState::kCancelled);
  EXPECT_EQ(scheduler.Query(2).value().state, JobState::kCancelled);
  EXPECT_EQ(scheduler.Submit(Spec(3)).code(), StatusCode::kUnavailable);
}

TEST(JobSchedulerTest, CacheStateFlowsThroughRepeatJobs) {
  Phase1Cache cache(4);
  // The scan marks the state valid; a repeat job on the cohort must see
  // the previous job's state.
  Mutex mu(LockRank::kLeaf);
  std::vector<bool> seen_valid;
  const ScanFn scan = [&](Transport*, const JobSpec&,
                          Phase1State* phase1) -> Result<SecureScanOutput> {
    {
      MutexLock lock(&mu);
      seen_valid.push_back(phase1->valid);
    }
    phase1->valid = true;
    phase1->local_fingerprint = 42;
    SecureScanOutput out;
    out.metrics.phase1_cache_hit = phase1->local_fingerprint == 42;
    return out;
  };
  auto gate = std::make_shared<JobGate>();
  JobSchedulerOptions options;
  options.max_concurrent = 1;
  JobScheduler scheduler(GateFactory(gate), scan, &cache, options);

  ASSERT_TRUE(scheduler.Submit(Spec(1, "cohort")).ok());
  EXPECT_EQ(WaitSettled(&scheduler, 1).state, JobState::kDone);
  ASSERT_TRUE(scheduler.Submit(Spec(2, "cohort")).ok());
  EXPECT_EQ(WaitSettled(&scheduler, 2).state, JobState::kDone);

  // Query the cache before taking mu: kPhase1Cache (30) may not be
  // acquired while a kLeaf (90) lock is held (util/lock_rank.h).
  EXPECT_EQ(cache.stats().take_hits, 1);
  MutexLock lock(&mu);
  ASSERT_EQ(seen_valid.size(), 2u);
  EXPECT_FALSE(seen_valid[0]);  // first job: cold cache
  EXPECT_TRUE(seen_valid[1]);   // repeat job: previous state checked in
}

// ---------------------------------------------------------------------
// Control protocol (HandleLine directly; no sockets).

class ControlProtocolTest : public ::testing::Test {
 protected:
  ControlProtocolTest()
      : gate_(std::make_shared<JobGate>()),
        cache_(4),
        scheduler_(GateFactory(gate_), GateScan(gate_), &cache_, {}),
        server_(&scheduler_, &cache_, [this] { ++shutdowns_; }) {
    gate_->Release();  // scans complete immediately
  }

  std::shared_ptr<JobGate> gate_;
  Phase1Cache cache_;
  JobScheduler scheduler_;
  ControlServer server_;
  int shutdowns_ = 0;
};

TEST_F(ControlProtocolTest, PingAndUnknownVerb) {
  EXPECT_EQ(server_.HandleLine("PING"), "OK pong");
  EXPECT_EQ(server_.HandleLine("FLY"),
            "ERR InvalidArgument: unknown verb 'FLY'");
}

TEST_F(ControlProtocolTest, SubmitStatusResultRoundTrip) {
  EXPECT_EQ(server_.HandleLine("SUBMIT 1 a 32 64 3 7 masked 0"),
            "OK submitted 1");
  for (int i = 0; i < 1000; ++i) {
    if (scheduler_.Query(1).value().state == JobState::kDone) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string status = server_.HandleLine("STATUS 1");
  EXPECT_NE(status.find("OK state=done"), std::string::npos) << status;
  EXPECT_NE(status.find("cache_hit="), std::string::npos) << status;
  const std::string result = server_.HandleLine("RESULT 1");
  EXPECT_EQ(result.rfind("OK ", 0), 0u) << result;

  EXPECT_NE(server_.HandleLine("STATUS 99").find("ERR NotFound"),
            std::string::npos);
}

TEST_F(ControlProtocolTest, MalformedSubmitsAreRejected) {
  EXPECT_EQ(server_.HandleLine("SUBMIT").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(server_.HandleLine("SUBMIT 1 a 32").rfind("ERR", 0), 0u);
  const std::string bad_mode =
      server_.HandleLine("SUBMIT 1 a 32 64 3 7 quantum 0");
  EXPECT_NE(bad_mode.find("unknown mode"), std::string::npos) << bad_mode;
  // job_id 0 is the sessionless stream: rejected by the scheduler.
  EXPECT_NE(server_.HandleLine("SUBMIT 0 a 32 64 3 7 masked 0")
                .find("ERR InvalidArgument"),
            std::string::npos);
}

TEST_F(ControlProtocolTest, CancelInvalidateStatsShutdown) {
  EXPECT_NE(server_.HandleLine("CANCEL 5").find("ERR NotFound"),
            std::string::npos);
  cache_.Put("a", ValidState(1));  // so INVALIDATE has something to drop
  EXPECT_EQ(server_.HandleLine("INVALIDATE a"), "OK invalidated a");
  const std::string stats = server_.HandleLine("STATS");
  EXPECT_NE(stats.find("submitted="), std::string::npos) << stats;
  EXPECT_NE(stats.find("cache_invalidations=1"), std::string::npos)
      << stats;
  EXPECT_EQ(server_.HandleLine("SHUTDOWN"), "OK shutting-down");
  // HandleLine only ACKS; the socket loop invokes the callback, so a
  // direct call must NOT have fired it.
  EXPECT_EQ(shutdowns_, 0);
}

}  // namespace
}  // namespace dash
