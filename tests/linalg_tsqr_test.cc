#include "linalg/tsqr.h"

#include <gtest/gtest.h>

#include "data/genotype_generator.h"
#include "linalg/qr.h"
#include "util/random.h"

namespace dash {
namespace {

// Generates per-party blocks and returns (blocks, pooled matrix).
std::pair<std::vector<Matrix>, Matrix> MakeBlocks(
    const std::vector<int64_t>& sizes, int64_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> blocks;
  for (const int64_t n : sizes) blocks.push_back(GaussianMatrix(n, k, &rng));
  return {blocks, VStack(blocks)};
}

TEST(TsqrTest, StackedRFactorsMatchPooledQr) {
  const auto [blocks, pooled] = MakeBlocks({10, 25, 7}, 3, 5);
  std::vector<Matrix> rs;
  for (const auto& b : blocks) rs.push_back(QrRFactor(b).value());
  const Matrix combined = CombineRFactors(rs).value();
  const Matrix direct = QrRFactor(pooled).value();
  EXPECT_LT(MaxAbsDiff(combined, direct), 1e-11);
}

TEST(TsqrTest, SingleBlockPassesThrough) {
  const auto [blocks, pooled] = MakeBlocks({12}, 2, 6);
  const Matrix r = QrRFactor(blocks[0]).value();
  EXPECT_LT(MaxAbsDiff(CombineRFactors({r}).value(), r), 1e-15);
}

TEST(TsqrTest, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(CombineRFactors({}).ok());
  EXPECT_FALSE(CombineRFactors({Matrix(2, 2), Matrix(3, 3)}).ok());
  EXPECT_FALSE(TreeCombineRFactors({Matrix(2, 2), Matrix(3, 3)}).ok());
}

TEST(TsqrTest, TreeMatchesStacked) {
  const auto [blocks, pooled] = MakeBlocks({8, 9, 10, 11, 12}, 4, 7);
  std::vector<Matrix> rs;
  for (const auto& b : blocks) rs.push_back(QrRFactor(b).value());
  const Matrix stacked = CombineRFactors(rs).value();
  const TreeTsqrResult tree = TreeCombineRFactors(rs).value();
  EXPECT_LT(MaxAbsDiff(tree.r, stacked), 1e-11);
  EXPECT_EQ(tree.rounds, 3);  // ceil(log2 5)
  EXPECT_EQ(tree.merges, 4);  // P - 1 pairwise merges
}

TEST(TsqrTest, TreeRoundsAreLogarithmic) {
  for (const int p : {1, 2, 3, 4, 7, 8, 16, 33}) {
    std::vector<int64_t> sizes(static_cast<size_t>(p), 6);
    const auto [blocks, pooled] = MakeBlocks(sizes, 2, 100 + static_cast<uint64_t>(p));
    std::vector<Matrix> rs;
    for (const auto& b : blocks) rs.push_back(QrRFactor(b).value());
    const TreeTsqrResult tree = TreeCombineRFactors(rs).value();
    int expected_rounds = 0;
    int cover = 1;
    while (cover < p) {
      cover *= 2;
      ++expected_rounds;
    }
    EXPECT_EQ(tree.rounds, expected_rounds) << "P=" << p;
    EXPECT_EQ(tree.merges, p - 1) << "P=" << p;
    // And correctness against the pooled factorization.
    EXPECT_LT(MaxAbsDiff(tree.r, QrRFactor(pooled).value()), 1e-10);
  }
}

// The protocol-critical property: each party can lift its block with the
// combined R⁻¹ and the stacked lifts form an orthonormal global Q.
TEST(TsqrTest, LiftedBlocksFormGlobalQ) {
  const auto [blocks, pooled] = MakeBlocks({15, 20, 25}, 3, 8);
  std::vector<Matrix> rs;
  for (const auto& b : blocks) rs.push_back(QrRFactor(b).value());
  const Matrix r = CombineRFactors(rs).value();
  const Matrix rinv = InvertUpperTriangular(r).value();
  std::vector<Matrix> qs;
  for (const auto& b : blocks) qs.push_back(MatMul(b, rinv));
  const Matrix q = VStack(qs);
  EXPECT_LT(MaxAbsDiff(TransposeMatMul(q, q), Matrix::Identity(3)), 1e-12);
  EXPECT_LT(MaxAbsDiff(MatMul(q, r), pooled), 1e-11);
}

// Party permutation does not change the combined R (Gram invariance).
class TsqrPermutationTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TsqrPermutationTest, OrderInvariant) {
  const auto [blocks, pooled] = MakeBlocks({9, 14, 6, 21}, 3, GetParam());
  std::vector<Matrix> rs;
  for (const auto& b : blocks) rs.push_back(QrRFactor(b).value());
  const Matrix forward = CombineRFactors(rs).value();
  std::vector<Matrix> reversed(rs.rbegin(), rs.rend());
  const Matrix backward = CombineRFactors(reversed).value();
  EXPECT_LT(MaxAbsDiff(forward, backward), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsqrPermutationTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace dash
