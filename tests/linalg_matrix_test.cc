#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "data/genotype_generator.h"
#include "linalg/vector_ops.h"
#include "util/random.h"

namespace dash {
namespace {

TEST(VectorOpsTest, DotAndNorms) {
  const Vector a = {1.0, 2.0, 3.0};
  const Vector b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(a), 14.0);
  EXPECT_DOUBLE_EQ(Norm({3.0, 4.0}), 5.0);
}

TEST(VectorOpsTest, AxpyScaleAddSub) {
  Vector y = {1.0, 1.0};
  Axpy(2.0, {3.0, 4.0}, &y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  Scale(0.5, &y);
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  const Vector s = Add({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(s[1], 6.0);
  const Vector d = Sub({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(d[0], -2.0);
}

TEST(VectorOpsTest, MeanAndCenter) {
  Vector v = {1.0, 2.0, 3.0, 6.0};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  CenterInPlace(&v);
  EXPECT_DOUBLE_EQ(Mean(v), 0.0);
  EXPECT_DOUBLE_EQ(v[3], 3.0);
}

TEST(VectorOpsTest, MaxAbsDiff) {
  const Vector a = {1.0, 2.0};
  const Vector b = {1.5, 1.0};
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 1.0);
  EXPECT_DOUBLE_EQ(MaxAbs({-3.0, 2.0}), 3.0);
}

TEST(MatrixTest, InitializerListAndAccess) {
  const Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_EQ(m.Row(1), (Vector{3.0, 4.0}));
  EXPECT_EQ(m.Col(0), (Vector{1.0, 3.0, 5.0}));
}

TEST(MatrixTest, SettersWork) {
  Matrix m(2, 2);
  m.SetRow(0, {1.0, 2.0});
  m.SetCol(1, {7.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
}

TEST(MatrixTest, IdentityAndEquality) {
  const Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 2), 0.0);
  EXPECT_TRUE(i == Matrix::Identity(3));
  EXPECT_FALSE(i == Matrix(3, 3));
}

TEST(MatrixTest, MatMulAgainstHandComputation) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, TransposeMatMulMatchesExplicit) {
  Rng rng(3);
  const Matrix a = GaussianMatrix(7, 4, &rng);
  const Matrix b = GaussianMatrix(7, 5, &rng);
  const Matrix direct = TransposeMatMul(a, b);
  const Matrix via_transpose = MatMul(Transpose(a), b);
  EXPECT_LT(MaxAbsDiff(direct, via_transpose), 1e-12);
}

TEST(MatrixTest, MatVecAndTransposeMatVec) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Vector x = {1.0, -1.0};
  const Vector ax = MatVec(a, x);
  EXPECT_EQ(ax, (Vector{-1.0, -1.0, -1.0}));
  const Vector y = {1.0, 0.0, 2.0};
  const Vector aty = TransposeMatVec(a, y);
  EXPECT_EQ(aty, (Vector{11.0, 14.0}));
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(5);
  const Matrix a = GaussianMatrix(6, 3, &rng);
  EXPECT_LT(MaxAbsDiff(Transpose(Transpose(a)), a), 0.0 + 1e-15);
}

TEST(MatrixTest, AddSubScale) {
  const Matrix a = {{1.0, 2.0}};
  const Matrix b = {{3.0, 5.0}};
  EXPECT_DOUBLE_EQ(MatAdd(a, b)(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(MatSub(a, b)(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(MatScale(2.0, a)(0, 1), 4.0);
}

TEST(MatrixTest, VStackAndSlices) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{5.0, 6.0}};
  const Matrix s = VStack({a, b});
  EXPECT_EQ(s.rows(), 3);
  EXPECT_DOUBLE_EQ(s(2, 0), 5.0);
  const Matrix top = SliceRows(s, 0, 2);
  EXPECT_TRUE(top == a);
  const Matrix right = SliceCols(s, 1, 2);
  EXPECT_EQ(right.cols(), 1);
  EXPECT_DOUBLE_EQ(right(2, 0), 6.0);
}

TEST(MatrixTest, WithInterceptColumn) {
  const Matrix a = {{2.0}, {3.0}};
  const Matrix w = WithInterceptColumn(a);
  EXPECT_EQ(w.cols(), 2);
  EXPECT_DOUBLE_EQ(w(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(w(1, 1), 3.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  const Matrix a = {{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 5.0);
}

TEST(MatrixTest, CenterColumns) {
  Matrix a = {{1.0, 10.0}, {3.0, 30.0}};
  CenterColumnsInPlace(&a);
  EXPECT_DOUBLE_EQ(a(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 10.0);
}

TEST(MatrixTest, ColumnVector) {
  const Matrix m = Matrix::ColumnVector({1.0, 2.0});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 1);
  EXPECT_DOUBLE_EQ(m(1, 0), 2.0);
}

// Property sweep: (AB)C == A(BC) across shapes.
class MatMulAssociativityTest
    : public testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(MatMulAssociativityTest, Associative) {
  const auto [n, m, k, l] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 1000 + m * 100 + k * 10 + l));
  const Matrix a = GaussianMatrix(n, m, &rng);
  const Matrix b = GaussianMatrix(m, k, &rng);
  const Matrix c = GaussianMatrix(k, l, &rng);
  EXPECT_LT(MaxAbsDiff(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c))),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulAssociativityTest,
                         testing::Values(std::make_tuple(1, 1, 1, 1),
                                         std::make_tuple(3, 4, 5, 2),
                                         std::make_tuple(10, 1, 7, 3),
                                         std::make_tuple(6, 6, 6, 6),
                                         std::make_tuple(2, 9, 4, 8)));

}  // namespace
}  // namespace dash
