// Negative compile test for the thread-safety annotations (DESIGN.md
// §14): reading a DASH_GUARDED_BY field without holding its mutex must
// NOT compile under clang's -Werror=thread-safety-analysis. Registered
// WILL_FAIL in tests/CMakeLists.txt; the _control variant defines
// DASH_TS_CONTROL, takes the lock properly, and must compile — proving
// the failure is the analysis and not an unrelated syntax error.
//
// gcc has no thread-safety analysis, so the annotations expand to
// nothing there. The #error below keeps the WILL_FAIL expectation
// honest on gcc builds: the test still fails to compile, just for a
// stated reason instead of a silent pass.

#include "util/mutex.h"

#if !defined(__clang__) && !defined(DASH_TS_CONTROL)
#error "gcc cannot run thread-safety analysis; failing deliberately so \
the WILL_FAIL expectation holds on non-clang builds"
#endif

namespace dash {
namespace {

class Counter {
 public:
  int Read() {
#ifdef DASH_TS_CONTROL
    MutexLock lock(&mu_);
#endif
    return count_;  // unguarded read: clang rejects this line
  }

 private:
  Mutex mu_{LockRank::kLeaf};
  int count_ DASH_GUARDED_BY(mu_) = 0;
};

}  // namespace
}  // namespace dash

int main() {
  dash::Counter counter;
  return counter.Read();
}
