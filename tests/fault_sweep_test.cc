// Randomized fault sweep (label: slow). Two hundred seeded FaultPlans —
// 1..3 rules each, any kind, any round, any link — run against the
// in-process backend, plus a slice of them against real TCP meshes.
// Every case must end in the weak two-outcome invariant: each party
// fails cleanly or holds bits identical to the fault-free reference.
// OK-with-wrong-bits and hangs are the only losses.
//
// Every case is a pure function of its seed. A failing seed is printed
// together with the plan (and appended to fault_sweep_failures.txt in
// the working directory), so
//   FaultPlan::Random(seed, options)
// reproduces the exact schedule in a debugger.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/scan_result.h"
#include "core/secure_scan.h"
#include "data/workloads.h"
#include "net/network.h"
#include "transport/cluster_config.h"
#include "transport/fault_transport.h"
#include "transport/party_runner.h"
#include "transport/tcp_transport.h"

namespace dash {
namespace {

std::vector<uint16_t> FreePorts(int count) {
  std::vector<uint16_t> ports;
  std::vector<int> fds;
  for (int i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                            &len),
              0);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

ScanWorkload SweepWorkload() {
  GwasWorkloadOptions options;
  options.party_sizes = {30, 45, 35};
  options.num_variants = 10;
  options.num_covariates = 3;
  options.num_causal = 1;
  options.seed = 23;
  auto workload = MakeGwasWorkload(options);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).value();
}

void RecordFailure(uint64_t seed, const FaultPlan& plan,
                   const std::string& detail) {
  ADD_FAILURE() << "fault sweep seed " << seed << ": " << detail
                << "\nplan:\n"
                << plan.ToString();
  if (std::FILE* f = std::fopen("fault_sweep_failures.txt", "a")) {
    std::fprintf(f, "seed %llu: %s\nplan:\n%s\n",
                 static_cast<unsigned long long>(seed), detail.c_str(),
                 plan.ToString().c_str());
    std::fclose(f);
  }
}

TEST(FaultSweepTest, TwoHundredRandomPlansInProcess) {
  const ScanWorkload workload = SweepWorkload();
  SecureScanOptions options;
  options.aggregation = AggregationMode::kMasked;
  const auto reference = SecureAssociationScan(options).Run(workload.parties);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const uint64_t ref_sum = ScanResultChecksum(reference->result);

  FaultPlan::SweepOptions sweep;
  sweep.num_parties = 3;
  sweep.max_rounds = reference->metrics.rounds;

  int clean_failures = 0;
  int clean_successes = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const FaultPlan plan = FaultPlan::Random(seed, sweep);
    InProcessTransport net(3);
    FaultInjectingTransport fault(&net, plan);
    const auto out = SecureAssociationScan(options).Run(workload.parties,
                                                        &fault);
    if (!out.ok()) {
      ++clean_failures;
      continue;
    }
    ++clean_successes;
    if (ScanResultChecksum(out->result) != ref_sum) {
      RecordFailure(seed, plan, "run returned OK with WRONG bits");
    }
  }
  // The sweep must actually exercise both outcomes, or the plan
  // generator has gone degenerate.
  EXPECT_GT(clean_failures, 20);
  EXPECT_GT(clean_successes, 20);
}

TEST(FaultSweepTest, RandomPlansOverTcp) {
  const ScanWorkload workload = SweepWorkload();
  SecureScanOptions options;
  options.aggregation = AggregationMode::kMasked;
  const auto reference = SecureAssociationScan(options).Run(workload.parties);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const uint64_t ref_sum = ScanResultChecksum(reference->result);

  FaultPlan::SweepOptions sweep;
  sweep.num_parties = 3;
  sweep.max_rounds = reference->metrics.rounds;

  TcpTransportOptions tcp_options;
  tcp_options.connect_timeout_ms = 10000;
  tcp_options.receive_timeout_ms = 300;

  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const FaultPlan plan = FaultPlan::Random(seed, sweep);
    ClusterConfig cluster;
    for (const uint16_t port : FreePorts(3)) {
      cluster.endpoints.push_back({"127.0.0.1", port});
    }
    std::vector<Result<SecureScanOutput>> outs(
        3, InvalidArgumentError("did not run"));
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&, i] {
        auto transport = TcpTransport::Connect(cluster, i, tcp_options);
        if (!transport.ok()) {
          outs[static_cast<size_t>(i)] = transport.status();
          return;
        }
        FaultInjectingTransport fault(transport.value().get(), plan);
        outs[static_cast<size_t>(i)] = RunPartySecureScan(
            &fault, workload.parties[static_cast<size_t>(i)], options);
      });
    }
    for (auto& t : threads) t.join();
    for (int i = 0; i < 3; ++i) {
      const auto& out = outs[static_cast<size_t>(i)];
      if (out.ok() && ScanResultChecksum(out->result) != ref_sum) {
        RecordFailure(seed, plan,
                      "party " + std::to_string(i) +
                          " returned OK with WRONG bits over TCP");
      }
    }
  }
}

}  // namespace
}  // namespace dash
