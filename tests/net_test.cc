#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "net/message.h"
#include "net/network.h"
#include "net/serialization.h"

namespace dash {
namespace {

TEST(SerializationTest, ScalarRoundTrips) {
  ByteWriter w;
  w.PutU32(0xdeadbeefu);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutDouble(3.25);
  const auto bytes = w.Take();
  EXPECT_EQ(bytes.size(), 4u + 8u + 8u + 8u);

  ByteReader r(bytes);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI64().value(), -42);
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializationTest, VectorsRoundTrip) {
  ByteWriter w;
  w.PutU64Vector({1, 2, 3});
  w.PutDoubleVector({-1.5, 2.5});
  const auto bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_EQ(r.GetU64Vector().value(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.GetDoubleVector().value(), (Vector{-1.5, 2.5}));
}

TEST(SerializationTest, MatrixRoundTrips) {
  const Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  ByteWriter w;
  w.PutMatrix(m);
  const auto bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_TRUE(r.GetMatrix().value() == m);
}

TEST(SerializationTest, SpecialDoublesSurvive) {
  ByteWriter w;
  w.PutDouble(-0.0);
  w.PutDouble(std::numeric_limits<double>::infinity());
  w.PutDouble(std::numeric_limits<double>::denorm_min());
  const auto bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_EQ(std::signbit(r.GetDouble().value()), true);
  EXPECT_TRUE(std::isinf(r.GetDouble().value()));
  EXPECT_DOUBLE_EQ(r.GetDouble().value(),
                   std::numeric_limits<double>::denorm_min());
}

TEST(SerializationTest, TruncationIsAnError) {
  ByteWriter w;
  w.PutU64(7);
  auto bytes = w.Take();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_EQ(r.GetU64().status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, TruncatedVectorIsAnError) {
  ByteWriter w;
  w.PutU64(1000);  // claims 1000 elements, provides none
  const auto bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_FALSE(r.GetU64Vector().ok());
  ByteWriter w2;
  w2.PutI64(1 << 20);
  w2.PutI64(1 << 20);  // absurd matrix shape
  const auto bytes2 = w2.Take();
  ByteReader r2(bytes2);
  EXPECT_FALSE(r2.GetMatrix().ok());
}

TEST(NetworkTest, SendReceiveFifoOrder) {
  Network net(3);
  ASSERT_TRUE(net.Send(0, 1, MessageTag::kPlainStats, {1}).ok());
  ASSERT_TRUE(net.Send(0, 1, MessageTag::kPlainStats, {2}).ok());
  const Message first = net.Receive(1, 0, MessageTag::kPlainStats).value();
  const Message second = net.Receive(1, 0, MessageTag::kPlainStats).value();
  EXPECT_EQ(first.payload[0], 1);
  EXPECT_EQ(second.payload[0], 2);
  EXPECT_EQ(first.from, 0);
  EXPECT_EQ(first.to, 1);
}

TEST(NetworkTest, ReceiveOnEmptyQueueFails) {
  Network net(2);
  EXPECT_EQ(net.Receive(0, 1, MessageTag::kPlainStats).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(NetworkTest, TagMismatchIsProtocolDesync) {
  Network net(2);
  ASSERT_TRUE(net.Send(0, 1, MessageTag::kRFactor, {}).ok());
  const auto r = net.Receive(1, 0, MessageTag::kPlainStats);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(NetworkTest, InvalidEndpointsRejected) {
  Network net(2);
  EXPECT_FALSE(net.Send(0, 0, MessageTag::kPlainStats, {}).ok());
  EXPECT_FALSE(net.Send(0, 5, MessageTag::kPlainStats, {}).ok());
  EXPECT_FALSE(net.Send(-1, 0, MessageTag::kPlainStats, {}).ok());
  EXPECT_FALSE(net.Receive(9, 0, MessageTag::kPlainStats).ok());
}

TEST(NetworkTest, BroadcastReachesEveryoneElse) {
  Network net(4);
  ASSERT_TRUE(net.Broadcast(2, MessageTag::kAggregate, {9}).ok());
  for (int to = 0; to < 4; ++to) {
    if (to == 2) {
      EXPECT_FALSE(net.HasPending(to, 2));
    } else {
      ASSERT_TRUE(net.HasPending(to, 2));
      EXPECT_EQ(net.Receive(to, 2, MessageTag::kAggregate).value().payload[0],
                9);
    }
  }
}

TEST(NetworkTest, MetricsCountWireBytes) {
  Network net(3);
  const std::vector<uint8_t> payload(100, 0);
  ASSERT_TRUE(net.Send(0, 1, MessageTag::kPlainStats, payload).ok());
  const int64_t per_msg = 100 + static_cast<int64_t>(Message::kHeaderBytes);
  EXPECT_EQ(net.metrics().total_bytes(), per_msg);
  EXPECT_EQ(net.metrics().total_messages(), 1);
  EXPECT_EQ(net.metrics().LinkBytes(0, 1), per_msg);
  EXPECT_EQ(net.metrics().LinkBytes(1, 0), 0);

  ASSERT_TRUE(net.Broadcast(1, MessageTag::kPlainStats, payload).ok());
  EXPECT_EQ(net.metrics().total_messages(), 3);
  EXPECT_EQ(net.metrics().BytesSentBy(1), 2 * per_msg);
  EXPECT_EQ(net.metrics().MaxLinkBytes(), per_msg);

  net.BeginRound();
  EXPECT_EQ(net.metrics().rounds(), 1);
  net.metrics().Reset();
  EXPECT_EQ(net.metrics().total_bytes(), 0);
  EXPECT_EQ(net.metrics().rounds(), 0);
}

TEST(NetworkTest, CostModelCombinesRoundsAndBytes) {
  Network net(2);
  ASSERT_TRUE(net.Send(0, 1, MessageTag::kPlainStats,
                       std::vector<uint8_t>(84, 0)).ok());  // 100 wire bytes
  net.BeginRound();
  net.BeginRound();
  LinkCostModel model;
  model.latency_seconds = 0.05;
  model.bandwidth_bytes_per_second = 1000.0;
  EXPECT_NEAR(model.EstimateSeconds(net.metrics()), 2 * 0.05 + 0.1, 1e-12);
}

TEST(MessageTest, TagNamesAreStable) {
  EXPECT_STREQ(MessageTagName(MessageTag::kRFactor), "RFactor");
  EXPECT_STREQ(MessageTagName(MessageTag::kShamirShare), "ShamirShare");
}

}  // namespace
}  // namespace dash
