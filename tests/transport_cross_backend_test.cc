// The load-bearing guarantee of the transport subsystem: running the
// scan as P separate TCP endpoints (one thread each here; one process
// each in deployment) produces the SAME bits as the in-process
// simulation — results, per-link traffic, and trace.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/secure_scan.h"
#include "data/workloads.h"
#include "net/network.h"
#include "net/trace.h"
#include "transport/cluster_config.h"
#include "transport/party_runner.h"
#include "transport/tcp_transport.h"

namespace dash {
namespace {

std::vector<uint16_t> FreePorts(int count) {
  std::vector<uint16_t> ports;
  std::vector<int> fds;
  for (int i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                            &len),
              0);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

ScanWorkload SmallWorkload() {
  GwasWorkloadOptions options;
  options.party_sizes = {40, 60, 50};
  options.num_variants = 25;
  options.num_covariates = 3;
  options.num_causal = 2;
  options.seed = 7;
  auto workload = MakeGwasWorkload(options);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).value();
}

// Bitwise vector equality: NaN == NaN, -0.0 != 0.0. Anything weaker
// would hide order-dependent floating-point drift between the backends.
void ExpectBitIdentical(const Vector& a, const Vector& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bits_a, bits_b;
    std::memcpy(&bits_a, &a[i], sizeof(bits_a));
    std::memcpy(&bits_b, &b[i], sizeof(bits_b));
    EXPECT_EQ(bits_a, bits_b) << what << "[" << i << "]: " << a[i]
                              << " vs " << b[i];
  }
}

// (round, from, to, tag, wire_bytes) — the sequence number is dropped
// because per-party traces interleave differently than the global one.
using EventKey = std::tuple<int, int, int, uint32_t, int64_t>;

std::vector<EventKey> EventMultiset(const std::vector<TraceEvent>& events) {
  std::vector<EventKey> keys;
  keys.reserve(events.size());
  for (const auto& e : events) {
    keys.emplace_back(e.round, e.from, e.to, static_cast<uint32_t>(e.tag),
                      e.wire_bytes);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

struct PartyRun {
  Result<SecureScanOutput> output = InvalidArgumentError("did not run");
  ProtocolTrace trace;
  int64_t sent_bytes = 0;
};

void RunBothBackends(const SecureScanOptions& base_options) {
  ScanWorkload workload = SmallWorkload();
  if (base_options.center_per_party) {
    // Centering absorbs the intercept; drop the workload's intercept
    // column (column 0 of C) as a real deployment would.
    for (auto& party : workload.parties) {
      Matrix c(party.c.rows(), party.c.cols() - 1);
      for (int64_t r = 0; r < c.rows(); ++r) {
        for (int64_t j = 0; j < c.cols(); ++j) c(r, j) = party.c(r, j + 1);
      }
      party.c = std::move(c);
    }
  }
  const int p = static_cast<int>(workload.parties.size());

  // In-process reference, with a trace on the shared transport.
  ProtocolTrace global_trace;
  SecureScanOptions inproc_options = base_options;
  inproc_options.trace = &global_trace;
  const auto reference =
      SecureAssociationScan(inproc_options).Run(workload.parties);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // TCP deployment: one endpoint per thread, each tracing its own sends.
  ClusterConfig cluster;
  for (const uint16_t port : FreePorts(p)) {
    cluster.endpoints.push_back({"127.0.0.1", port});
  }
  TcpTransportOptions tcp_options;
  tcp_options.connect_timeout_ms = 10000;
  std::vector<PartyRun> runs(static_cast<size_t>(p));
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < p; ++i) {
      threads.emplace_back([&, i] {
        auto transport = TcpTransport::Connect(cluster, i, tcp_options);
        if (!transport.ok()) {
          runs[static_cast<size_t>(i)].output = transport.status();
          return;
        }
        SecureScanOptions options = base_options;
        options.trace = &runs[static_cast<size_t>(i)].trace;
        runs[static_cast<size_t>(i)].output = RunPartySecureScan(
            transport.value().get(),
            workload.parties[static_cast<size_t>(i)], options);
        runs[static_cast<size_t>(i)].sent_bytes =
            transport.value()->metrics().total_bytes();
      });
    }
    for (auto& t : threads) t.join();
  }

  const ScanResult& expected = reference->result;
  for (int i = 0; i < p; ++i) {
    const PartyRun& run = runs[static_cast<size_t>(i)];
    ASSERT_TRUE(run.output.ok()) << "party " << i << ": "
                                 << run.output.status();
    const ScanResult& got = run.output->result;
    ExpectBitIdentical(got.beta, expected.beta, "beta");
    ExpectBitIdentical(got.se, expected.se, "se");
    ExpectBitIdentical(got.tstat, expected.tstat, "tstat");
    ExpectBitIdentical(got.pval, expected.pval, "pval");
    EXPECT_EQ(got.dof, expected.dof);
    EXPECT_EQ(got.num_untestable, expected.num_untestable);

    // Every party walks the same round schedule as the simulator.
    EXPECT_EQ(run.output->metrics.rounds, reference->metrics.rounds)
        << "party " << i;
  }

  // The union of the per-party traces is exactly the in-process trace.
  std::vector<TraceEvent> merged;
  int64_t tcp_total_bytes = 0;
  for (const auto& run : runs) {
    merged.insert(merged.end(), run.trace.events().begin(),
                  run.trace.events().end());
    tcp_total_bytes += run.output->metrics.total_bytes;
  }
  EXPECT_EQ(EventMultiset(merged), EventMultiset(global_trace.events()));
  EXPECT_EQ(tcp_total_bytes, reference->metrics.total_bytes);
}

TEST(CrossBackendTest, PublicShareBroadcastStack) {
  SecureScanOptions options;
  options.aggregation = AggregationMode::kPublicShare;
  options.r_combine = RCombineMode::kBroadcastStack;
  RunBothBackends(options);
}

TEST(CrossBackendTest, AdditiveBroadcastStack) {
  SecureScanOptions options;
  options.aggregation = AggregationMode::kAdditive;
  options.r_combine = RCombineMode::kBroadcastStack;
  RunBothBackends(options);
}

TEST(CrossBackendTest, MaskedBroadcastStack) {
  SecureScanOptions options;
  options.aggregation = AggregationMode::kMasked;
  options.r_combine = RCombineMode::kBroadcastStack;
  RunBothBackends(options);
}

TEST(CrossBackendTest, MaskedBinaryTree) {
  SecureScanOptions options;
  options.aggregation = AggregationMode::kMasked;
  options.r_combine = RCombineMode::kBinaryTree;
  RunBothBackends(options);
}

TEST(CrossBackendTest, ShamirBroadcastStack) {
  SecureScanOptions options;
  options.aggregation = AggregationMode::kShamir;
  options.r_combine = RCombineMode::kBroadcastStack;
  RunBothBackends(options);
}

TEST(CrossBackendTest, CenteredAdditiveBinaryTree) {
  SecureScanOptions options;
  options.aggregation = AggregationMode::kAdditive;
  options.r_combine = RCombineMode::kBinaryTree;
  options.center_per_party = true;
  RunBothBackends(options);
}

// Pipelined aggregation (header round + one round per variant block,
// block b+1 computed while block b is in flight) must walk the same
// round schedule on both backends and reveal the same bits. Block size
// 7 does not divide the workload's M = 25, so the last block is ragged.
TEST(CrossBackendTest, PipelinedMaskedBroadcastStack) {
  SecureScanOptions options;
  options.aggregation = AggregationMode::kMasked;
  options.r_combine = RCombineMode::kBroadcastStack;
  options.pipeline_block_variants = 7;
  RunBothBackends(options);
}

TEST(CrossBackendTest, PipelinedAdditiveBinaryTree) {
  SecureScanOptions options;
  options.aggregation = AggregationMode::kAdditive;
  options.r_combine = RCombineMode::kBinaryTree;
  options.pipeline_block_variants = 10;
  RunBothBackends(options);
}

TEST(CrossBackendTest, PipelinedPublicShareWithThreadPool) {
  // num_threads > 1 exercises the Schedule/Wait double-buffer overlap
  // on both drivers.
  SecureScanOptions options;
  options.aggregation = AggregationMode::kPublicShare;
  options.r_combine = RCombineMode::kBroadcastStack;
  options.pipeline_block_variants = 6;
  options.num_threads = 3;
  RunBothBackends(options);
}

TEST(CrossBackendTest, PerPartyMetricsMatchInProcessLedger) {
  const ScanWorkload workload = SmallWorkload();
  const int p = static_cast<int>(workload.parties.size());
  SecureScanOptions options;
  options.aggregation = AggregationMode::kMasked;

  // In-process per-sender ledger.
  InProcessTransport reference_net(p);
  const auto reference =
      SecureAssociationScan(options).Run(workload.parties, &reference_net);
  ASSERT_TRUE(reference.ok()) << reference.status();

  ClusterConfig cluster;
  for (const uint16_t port : FreePorts(p)) {
    cluster.endpoints.push_back({"127.0.0.1", port});
  }
  TcpTransportOptions tcp_options;
  tcp_options.connect_timeout_ms = 10000;
  std::vector<int64_t> sent(static_cast<size_t>(p), -1);
  std::vector<std::thread> threads;
  for (int i = 0; i < p; ++i) {
    threads.emplace_back([&, i] {
      auto transport = TcpTransport::Connect(cluster, i, tcp_options);
      ASSERT_TRUE(transport.ok()) << transport.status();
      const auto out = RunPartySecureScan(
          transport.value().get(), workload.parties[static_cast<size_t>(i)],
          options);
      ASSERT_TRUE(out.ok()) << out.status();
      sent[static_cast<size_t>(i)] = transport.value()->metrics().total_bytes();
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < p; ++i) {
    EXPECT_EQ(sent[static_cast<size_t>(i)],
              reference_net.metrics().BytesSentBy(i))
        << "party " << i;
  }
}

// The per-party runner refuses configurations that only make sense (or
// only exist) in-process.
TEST(CrossBackendTest, PartyRunnerRejectsInProcessTransport) {
  InProcessTransport net(3);
  const ScanWorkload workload = SmallWorkload();
  SecureScanOptions options;
  const auto out = RunPartySecureScan(&net, workload.parties[0], options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(CrossBackendTest, InProcessRunRejectsPartyBoundTransport) {
  // A party-bound transport cannot drive the all-party simulator; use a
  // 1-party TCP transport (needs no sockets) as the probe.
  ClusterConfig cluster;
  cluster.endpoints.push_back({"127.0.0.1", 1});
  auto transport = TcpTransport::Connect(cluster, 0);
  ASSERT_TRUE(transport.ok()) << transport.status();
  ScanWorkload workload = SmallWorkload();
  workload.parties.resize(1);
  const auto out = SecureAssociationScan().Run(workload.parties,
                                               transport.value().get());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dash
