#include "core/suff_stats.h"

#include <gtest/gtest.h>

#include <cstring>

#include "data/genotype_generator.h"
#include "linalg/qr.h"
#include "util/random.h"

namespace dash {
namespace {

struct Fixture {
  Matrix x;
  Vector y;
  Matrix q;
};

Fixture MakeFixture(int64_t n, int64_t m, int64_t k, uint64_t seed) {
  Rng rng(seed);
  Fixture f;
  f.x = GaussianMatrix(n, m, &rng);
  f.y = GaussianVector(n, &rng);
  f.q = ThinQr(GaussianMatrix(n, k, &rng)).value().q;
  return f;
}

TEST(SuffStatsTest, MatchesDirectComputation) {
  const Fixture f = MakeFixture(30, 8, 3, 1);
  const ScanSufficientStats s = ComputeLocalStats(f.x, f.y, f.q);
  EXPECT_EQ(s.num_samples, 30);
  EXPECT_NEAR(s.yy, SquaredNorm(f.y), 1e-12);
  EXPECT_LT(MaxAbsDiff(s.qty, TransposeMatVec(f.q, f.y)), 1e-12);
  for (int64_t j = 0; j < 8; ++j) {
    const Vector xj = f.x.Col(j);
    EXPECT_NEAR(s.xy[static_cast<size_t>(j)], Dot(xj, f.y), 1e-12);
    EXPECT_NEAR(s.xx[static_cast<size_t>(j)], SquaredNorm(xj), 1e-12);
    const Vector qtxj = TransposeMatVec(f.q, xj);
    for (int64_t kk = 0; kk < 3; ++kk) {
      EXPECT_NEAR(s.qtx(kk, j), qtxj[static_cast<size_t>(kk)], 1e-12);
    }
  }
}

TEST(SuffStatsTest, SparseMatchesDense) {
  GenotypeOptions geno;
  geno.num_samples = 60;
  geno.num_variants = 25;
  geno.maf_min = 0.02;
  geno.maf_max = 0.2;
  geno.seed = 2;
  const Matrix dense = GenerateGenotypes(geno);
  const SparseColumnMatrix sparse = SparseColumnMatrix::FromDense(dense);
  Rng rng(3);
  const Vector y = GaussianVector(60, &rng);
  const Matrix q = ThinQr(GaussianMatrix(60, 4, &rng)).value().q;

  const ScanSufficientStats a = ComputeLocalStats(dense, y, q);
  const ScanSufficientStats b = ComputeLocalStatsSparse(sparse, y, q);
  EXPECT_EQ(a.num_samples, b.num_samples);
  EXPECT_NEAR(a.yy, b.yy, 1e-12);
  EXPECT_LT(MaxAbsDiff(a.qty, b.qty), 1e-12);
  EXPECT_LT(MaxAbsDiff(a.xy, b.xy), 1e-12);
  EXPECT_LT(MaxAbsDiff(a.xx, b.xx), 1e-12);
  EXPECT_LT(MaxAbsDiff(a.qtx, b.qtx), 1e-12);
}

TEST(SuffStatsTest, ThreadedMatchesSerial) {
  const Fixture f = MakeFixture(40, 33, 2, 4);
  const ScanSufficientStats serial = ComputeLocalStats(f.x, f.y, f.q);
  ThreadPool pool(4);
  const ScanSufficientStats threaded = ComputeLocalStats(f.x, f.y, f.q, &pool);
  EXPECT_LT(MaxAbsDiff(serial.xy, threaded.xy), 0.0 + 1e-15);
  EXPECT_LT(MaxAbsDiff(serial.xx, threaded.xx), 0.0 + 1e-15);
  EXPECT_LT(MaxAbsDiff(serial.qtx, threaded.qtx), 0.0 + 1e-15);
}

TEST(SuffStatsTest, AddAccumulatesAcrossBlocks) {
  const Fixture a = MakeFixture(20, 5, 2, 5);
  const Fixture b = MakeFixture(30, 5, 2, 6);
  ScanSufficientStats sa = ComputeLocalStats(a.x, a.y, a.q);
  const ScanSufficientStats sb = ComputeLocalStats(b.x, b.y, b.q);
  const double yy_expected = sa.yy + sb.yy;
  sa.Add(sb);
  EXPECT_EQ(sa.num_samples, 50);
  EXPECT_NEAR(sa.yy, yy_expected, 1e-12);
}

TEST(SuffStatsTest, AddIntoEmptyCopies) {
  const Fixture a = MakeFixture(10, 4, 2, 7);
  const ScanSufficientStats sa = ComputeLocalStats(a.x, a.y, a.q);
  ScanSufficientStats acc;
  acc.Add(sa);
  EXPECT_EQ(acc.num_samples, sa.num_samples);
  EXPECT_LT(MaxAbsDiff(acc.xy, sa.xy), 0.0 + 1e-15);
}

TEST(SuffStatsTest, AddAccumulatesZeroVariantSummands) {
  // Regression: the old empty-detection (`xy.empty() && qty.empty()`)
  // only looked at shape vectors, so for an M == 0 scan every summand
  // looked "empty" and each Add OVERWROTE the accumulator instead of
  // accumulating — dropping all but the last party's yy and N.
  ScanSufficientStats a;
  a.num_samples = 10;
  a.yy = 2.0;
  a.qty = {1.0, 2.0};
  a.qtx = Matrix(2, 0);
  ScanSufficientStats b;
  b.num_samples = 5;
  b.yy = 3.0;
  b.qty = {0.5, 0.25};
  b.qtx = Matrix(2, 0);
  a.Add(b);
  EXPECT_EQ(a.num_samples, 15);
  EXPECT_EQ(a.yy, 5.0);
  EXPECT_EQ(a.qty[0], 1.5);
  EXPECT_EQ(a.qty[1], 2.25);
}

TEST(SuffStatsTest, AddAccumulatesZeroVariantZeroCovariate) {
  // M == 0 and K == 0: only yy and N carry information, and they must
  // still accumulate rather than copy.
  ScanSufficientStats a;
  a.num_samples = 3;
  a.yy = 1.5;
  ScanSufficientStats b;
  b.num_samples = 4;
  b.yy = 2.5;
  a.Add(b);
  EXPECT_EQ(a.num_samples, 7);
  EXPECT_EQ(a.yy, 4.0);
  // A genuinely never-assigned accumulator still copies.
  ScanSufficientStats fresh;
  fresh.Add(a);
  EXPECT_EQ(fresh.num_samples, 7);
  EXPECT_EQ(fresh.yy, 4.0);
}

TEST(SuffStatsTest, ChecksumDetectsSingleBitDrift) {
  const Fixture f = MakeFixture(25, 6, 2, 11);
  ScanSufficientStats s = ComputeLocalStats(f.x, f.y, f.q);
  const uint64_t before = StatsChecksum(s);
  EXPECT_EQ(before, WireChecksum(FlattenStats(s)));
  // Flip the lowest mantissa bit of one element.
  uint64_t bits;
  std::memcpy(&bits, &s.xy[3], sizeof(bits));
  bits ^= 1;
  std::memcpy(&s.xy[3], &bits, sizeof(bits));
  EXPECT_NE(StatsChecksum(s), before);
}

TEST(SuffStatsTest, FlattenUnflattenRoundTrips) {
  const Fixture f = MakeFixture(15, 6, 3, 8);
  const ScanSufficientStats s = ComputeLocalStats(f.x, f.y, f.q);
  const Vector flat = FlattenStats(s);
  EXPECT_EQ(flat.size(), static_cast<size_t>(1 + 3 + 2 * 6 + 3 * 6));
  ScanSufficientStats back = UnflattenStats(flat, 6, 3).value();
  back.num_samples = s.num_samples;
  EXPECT_NEAR(back.yy, s.yy, 0.0);
  EXPECT_LT(MaxAbsDiff(back.qty, s.qty), 0.0 + 1e-15);
  EXPECT_LT(MaxAbsDiff(back.xy, s.xy), 0.0 + 1e-15);
  EXPECT_LT(MaxAbsDiff(back.xx, s.xx), 0.0 + 1e-15);
  EXPECT_LT(MaxAbsDiff(back.qtx, s.qtx), 0.0 + 1e-15);
}

TEST(SuffStatsTest, UnflattenRejectsWrongLength) {
  EXPECT_FALSE(UnflattenStats(Vector(10), 6, 3).ok());
}

TEST(SuffStatsTest, ZeroCovariateCase) {
  Rng rng(9);
  const Matrix x = GaussianMatrix(10, 3, &rng);
  const Vector y = GaussianVector(10, &rng);
  const Matrix q(10, 0);
  const ScanSufficientStats s = ComputeLocalStats(x, y, q);
  EXPECT_EQ(s.num_covariates(), 0);
  EXPECT_EQ(s.qtx.rows(), 0);
  const Vector flat = FlattenStats(s);
  EXPECT_TRUE(UnflattenStats(flat, 3, 0).ok());
}

}  // namespace
}  // namespace dash
